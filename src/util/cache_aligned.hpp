#pragma once
// Cache-line alignment utilities.
//
// Contended atomics placed on shared cache lines suffer false sharing; every
// concurrently-touched word in this library lives on its own line.

#include <cstddef>
#include <new>
#include <utility>

namespace spdag {

// Size of the destructive-interference unit. We hardcode 64 rather than use
// std::hardware_destructive_interference_size because GCC makes the latter an
// ABI-unstable constant that warns when used in headers.
inline constexpr std::size_t cache_line_size = 64;

// A value of T alone on its own cache line(s).
template <typename T>
struct alignas(cache_line_size) cache_aligned {
  T value;

  cache_aligned() = default;
  template <typename... Args>
  explicit cache_aligned(Args&&... args) : value(std::forward<Args>(args)...) {}

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
};

// Pads T up to a full multiple of the cache line so arrays of padded<T>
// never share lines between elements.
template <typename T>
struct padded {
  alignas(cache_line_size) T value;
  char pad[(sizeof(T) % cache_line_size) == 0
               ? cache_line_size
               : cache_line_size - (sizeof(T) % cache_line_size)];

  padded() : value() {}
  template <typename... Args>
  explicit padded(Args&&... args) : value(std::forward<Args>(args)...) {}
};

}  // namespace spdag
