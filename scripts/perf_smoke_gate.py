#!/usr/bin/env python3
"""CI perf-smoke gate over BENCH_*.json telemetry.

Reads the future_churn JSON document (see harness::json_write) and fails
the job when pooled-allocator throughput drops below the malloc baseline
MEASURED IN THE SAME RUN. Comparing within one run makes the check safe on
shared CI runners: machine speed cancels out of the ratio, so the gate
catches a pool regression without pinning absolute numbers.

Exit codes: 0 pass, 1 perf regression, 2 malformed/unusable input.

Usage: perf_smoke_gate.py BENCH_future_churn.json [--min-ratio 0.9]
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"perf_smoke_gate: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    for key in ("schema", "bench", "git_sha", "records"):
        if key not in doc:
            print(f"perf_smoke_gate: {path} missing key '{key}'",
                  file=sys.stderr)
            sys.exit(2)
    return doc


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("json_path")
    ap.add_argument("--min-ratio", type=float, default=0.9,
                    help="minimum pool/malloc ops-per-second ratio "
                         "(default 0.9: a little head-room for runner noise; "
                         "steady state has measured ~1.2x on 1 core)")
    args = ap.parse_args()

    doc = load(args.json_path)
    print(f"perf_smoke_gate: {doc['bench']} @ {doc['git_sha'][:12]}, "
          f"{len(doc['records'])} records")

    # churn/<alloc-spec>/proc:<p> records; "pool" is the gated spec,
    # "pool:adaptive" is reported for the trajectory but not gated (its
    # magazines re-size mid-run, so its smoke-sized numbers are noisier).
    by_spec = {}
    for rec in doc["records"]:
        if not rec.get("name", "").startswith("churn/"):
            continue
        by_spec.setdefault(rec["spec"], {})[rec["proc"]] = rec["ops_per_s"]

    base = by_spec.get("malloc", {})
    pool = by_spec.get("pool", {})
    adaptive = by_spec.get("pool:adaptive", {})

    failed = False
    checked = 0
    for proc in sorted(base):
        if proc not in pool or base[proc] <= 0:
            continue
        checked += 1
        ratio = pool[proc] / base[proc]
        verdict = "ok" if ratio >= args.min_ratio else "REGRESSION"
        print(f"  proc {proc}: pool {pool[proc]:,.0f} vs malloc "
              f"{base[proc]:,.0f} fut/s -> ratio {ratio:.3f} [{verdict}]")
        if ratio < args.min_ratio:
            failed = True
        if proc in adaptive and base[proc] > 0:
            print(f"  proc {proc}: pool:adaptive {adaptive[proc]:,.0f} fut/s "
                  f"-> ratio {adaptive[proc] / base[proc]:.3f} [info]")

    if checked == 0:
        print("perf_smoke_gate: no comparable pool/malloc record pairs found",
              file=sys.stderr)
        sys.exit(2)
    if failed:
        print(f"perf_smoke_gate: FAIL - pool fell below "
              f"{args.min_ratio:.2f}x malloc on the same run",
              file=sys.stderr)
        sys.exit(1)
    print("perf_smoke_gate: PASS")


if __name__ == "__main__":
    main()
