#pragma once
// Structured futures on the sp-dag — the extension direction the paper's
// conclusion names ("more general, but still restricted, models of
// concurrency, such as those based on futures").
//
// A future here is STRUCTURED: its producer runs as an ordinary vertex under
// the enclosing finish, so the series-parallel discipline (and with it the
// in-counter's O(1) contention analysis) is preserved; the only new edge
// kind is producer -> consumer, represented by deferred scheduling rather
// than by a counter increment:
//
//   * fork2_future(p, c)  — parallel composition with a value: the left
//     child computes p() and completes the future, the right child runs
//     c(future) immediately. Must be the last dag action of the body.
//   * future_then(f, fn)  — schedules fn(value) as a new vertex under the
//     current finish; it runs once the future completes (immediately if it
//     already has). Must be the last dag action of the body.
//   * future<T>::ready()/get() — non-blocking inspection; get() requires
//     ready() (a consumer scheduled via future_then always sees it ready).
//
// Waiter management is delegated to a pluggable out-set (src/outset/) — the
// fan-out dual of the in-counter. The completion/registration race is
// resolved inside the out-set with per-node terminated sentinels: add()
// returns false exactly when finalize already ran, in which case the
// registrant schedules its own consumer. Which implementation a future uses
// comes from its engine's outset factory (runtime_config::outset, specs
// "outset:simple" | "outset:tree[:fanout]").

#include <atomic>
#include <cassert>
#include <memory>
#include <utility>

#include "dag/engine.hpp"
#include "outset/factory.hpp"

namespace spdag {

namespace detail {

template <typename T>
class future_state {
 public:
  explicit future_state(outset_factory& outsets)
      : outsets_(&outsets), waiters_(outsets.acquire()) {}

  ~future_state() {
    // release() scrubs registrations left behind by programs that abandoned
    // the future (its producer must still have run, or the enclosing finish
    // could never have fired) and re-pools the out-set.
    outsets_->release(waiters_);
    if (ready()) reinterpret_cast<T*>(&storage_)->~T();
  }

  bool ready() const noexcept {
    return ready_.load(std::memory_order_acquire);
  }

  const T& value() const noexcept {
    assert(ready() && "future read before completion");
    return *reinterpret_cast<const T*>(&storage_);
  }

  void complete(T v, dag_engine* engine) {
    assert(!ready() && "future completed twice");
    ::new (&storage_) T(std::move(v));
    completion_engine_ = engine;  // fallback for engine-less registrations
    // Publish the value BEFORE finalizing: every delivery path (the sink
    // below, or a registrant whose add lost to the finalize) synchronizes
    // with this store through the out-set's sentinel or the executor queue.
    ready_.store(true, std::memory_order_release);
    waiters_->finalize(&deliver, this);
  }

  // Registers `consumer` to be enqueued on completion. If the future
  // completed concurrently (or earlier), schedules it here instead.
  // `engine` must be non-null: the bypass and lost-race paths below schedule
  // on it directly (the completion-engine fallback in deliver() only covers
  // waiters that reached the out-set some other way).
  void register_waiter(vertex* consumer, dag_engine* engine) {
    assert(engine != nullptr && "registration requires an engine");
    if (ready()) {
      engine->add(consumer);
      return;
    }
    outset_waiter* w = outsets_->acquire_waiter(consumer, engine);
    if (!waiters_->add(w)) {
      // The producer finalized between our check and the add; the value is
      // published, so schedule the consumer from here — exactly once.
      outsets_->release_waiter(w);
      engine->add(consumer);
    }
  }

 private:
  static void deliver(void* ctx, outset_waiter* w) {
    auto* self = static_cast<future_state*>(ctx);
    vertex* consumer = w->consumer;
    dag_engine* engine =
        w->engine != nullptr ? w->engine : self->completion_engine_;
    self->outsets_->release_waiter(w);
    engine->add(consumer);
  }

  outset_factory* outsets_;
  outset* waiters_;
  dag_engine* completion_engine_ = nullptr;
  std::atomic<bool> ready_{false};
  alignas(T) unsigned char storage_[sizeof(T)];
};

}  // namespace detail

// Lifetime: a future's state borrows its out-set (and the factory that
// pools it) from the engine it was made under, so every copy of a future
// must be dropped before its runtime is destroyed — which structured usage
// guarantees, since consumers are gated under the enclosing finish. Only
// futures made outside any engine (default factory) may outlive runtimes.
template <typename T>
class future {
 public:
  future() = default;

  bool valid() const noexcept { return state_ != nullptr; }
  bool ready() const noexcept { return state_ != nullptr && state_->ready(); }

  // The produced value; requires ready().
  const T& get() const noexcept {
    assert(valid());
    return state_->value();
  }

  // A fresh future backed by the current engine's out-set factory, or by the
  // process-wide default (a simple out-set) outside of any engine.
  static future make() {
    dag_engine* eng = dag_engine::current_engine();
    return make(eng != nullptr ? eng->outsets() : default_outset_factory());
  }

  static future make(outset_factory& outsets) {
    future f;
    f.state_ = std::make_shared<detail::future_state<T>>(outsets);
    return f;
  }

  void complete(T v, dag_engine* engine) const {
    state_->complete(std::move(v), engine);
  }
  void register_waiter(vertex* consumer, dag_engine* engine) const {
    state_->register_waiter(consumer, engine);
  }

 private:
  std::shared_ptr<detail::future_state<T>> state_;
};

// Parallel composition with a value. Left child: computes producer() and
// completes the future. Right child: runs consumer(future) immediately
// (typically registering continuations with future_then). Must be the last
// dag action of the current body.
template <typename T, typename Producer, typename Consumer>
void fork2_future(Producer producer, Consumer consumer) {
  future<T> fut = future<T>::make();
  fork2(
      [producer = std::move(producer), fut]() mutable {
        fut.complete(producer(), dag_engine::current_engine());
      },
      [consumer = std::move(consumer), fut]() mutable { consumer(fut); });
}

// Schedules fn(value) as a fresh vertex under the current finish, gated on
// the future's completion. Must be the last dag action of the current body.
template <typename T, typename F>
void future_then(future<T> fut, F fn) {
  dag_engine* eng = dag_engine::current_engine();
  vertex* u = dag_engine::current_vertex();
  auto [consumer, filler] = eng->spawn(u);
  consumer->body = [fut, fn = std::move(fn)]() mutable { fn(fut.get()); };
  // The spawn's second vertex has no work; it just resolves its obligation.
  eng->add(filler);
  fut.register_waiter(consumer, eng);
}

}  // namespace spdag
