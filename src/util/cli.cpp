#include "util/cli.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace spdag {

namespace {

std::string env_key_for(const std::string& key) {
  std::string out = "SPDAG_";
  for (char c : key) {
    out += (c == '-') ? '_' : static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

}  // namespace

void options::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.size() >= 2 && arg[0] == '-') {
      std::string key = arg.substr(arg[1] == '-' ? 2 : 1);
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        values_[key] = argv[++i];
      } else {
        // Bare flag. Move-assign a constructed string rather than assigning
        // the literal: gcc 12 -O3 -Wrestrict false-positives (PR 105651) on
        // the char*-assignment's inlined replace under -Werror.
        values_[key] = std::string("1");
      }
    }
  }
}

std::optional<std::string> options::raw(const std::string& key) const {
  if (auto it = values_.find(key); it != values_.end()) return it->second;
  if (const char* env = std::getenv(env_key_for(key).c_str()); env != nullptr)
    return std::string(env);
  return std::nullopt;
}

bool options::has(const std::string& key) const { return raw(key).has_value(); }

std::int64_t options::get_int(const std::string& key, std::int64_t fallback) const {
  if (auto v = raw(key)) {
    return std::strtoll(v->c_str(), nullptr, 10);
  }
  return fallback;
}

double options::get_double(const std::string& key, double fallback) const {
  if (auto v = raw(key)) {
    return std::strtod(v->c_str(), nullptr);
  }
  return fallback;
}

std::string options::get_string(const std::string& key, const std::string& fallback) const {
  if (auto v = raw(key)) return *v;
  return fallback;
}

bool options::get_bool(const std::string& key, bool fallback) const {
  if (auto v = raw(key)) {
    return *v == "1" || *v == "true" || *v == "yes" || *v == "on";
  }
  return fallback;
}

std::vector<std::string> options::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, _] : values_) out.push_back(k);
  return out;
}

}  // namespace spdag
