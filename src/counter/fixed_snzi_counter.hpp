#pragma once
// Fixed-depth SNZI dependency counter: the paper's second baseline.
//
// Allocates a static SNZI tree of 2^{d+1} - 1 nodes per counter and maps
// each arrive onto a leaf by hashing a per-thread draw, so operations spread
// evenly. The decrement token is the leaf the arrive targeted — this keeps
// the SNZI invariant that surplus never goes negative at any node (paper
// section 5: "every snzi_depart call targets the same SNZI node that was
// targeted by a matching snzi_arrive call").

#include <cassert>
#include <cstdint>

#include "counter/dep_counter.hpp"
#include "snzi/fixed_tree.hpp"
#include "util/rng.hpp"

namespace spdag {

class fixed_snzi_counter final : public dep_counter {
 public:
  explicit fixed_snzi_counter(int depth, std::uint32_t initial = 0,
                              snzi::tree_stats* stats = nullptr,
                              object_pool* pairs = nullptr)
      : tree_(depth, 0, stats, pairs) {
    reset_surplus(initial);
  }

  arrive_result arrive(token /*inc_hint*/, bool /*from_left*/) override {
    snzi::node* leaf = tree_.arrive(thread_rng()());
    return {reinterpret_cast<token>(leaf), 0, 0};
  }

  arrive_result add(token /*inc_hint*/, bool /*from_left*/,
                    std::uint32_t k) override {
    assert(k >= 1 && "a batched increment covers at least one unit");
    // All k units land on one hashed leaf in one batched SNZI arrive; the
    // returned token then supports the k matching departs on that leaf.
    snzi::node* leaf = tree_.arrive(thread_rng()(), k);
    return {reinterpret_cast<token>(leaf), 0, 0};
  }

  bool depart(token dec) override {
    auto* leaf = reinterpret_cast<snzi::node*>(dec);
    assert(leaf != nullptr && "fixed SNZI depart requires the arrive's token");
    return tree_.depart(leaf);
  }

  bool is_zero() const override { return tree_.is_zero(); }

  token root_token() override { return reinterpret_cast<token>(initial_leaf_); }
  bool uses_tokens() const override { return true; }

  void reset(std::uint32_t n) override {
    // The tree structure is static; only surplus needs rebuilding. A fresh
    // counter from the pool has surplus zero everywhere after the matching
    // departs of its previous life, so arriving is sufficient.
    assert(tree_.is_zero() && "resetting a fixed SNZI counter with surplus");
    reset_surplus(n);
  }

  int depth() const noexcept { return tree_.depth(); }
  std::size_t node_count() const { return tree_.node_count(); }

 private:
  void reset_surplus(std::uint32_t n) {
    assert(n <= 1 && "token-based counters support initial surplus 0 or 1");
    initial_leaf_ = tree_.leaf_for(0);
    for (std::uint32_t i = 0; i < n; ++i) initial_leaf_->arrive();
  }

  snzi::fixed_tree tree_;
  snzi::node* initial_leaf_ = nullptr;
};

}  // namespace spdag
