// Fan-out scalability: the mirror of fig08 (fanin) on the future side.
//
// Setup: one producer completes a single future while n consumers register
// against it, varying processors and out-set algorithm ("simple" = the
// single CAS-list head every registration fights over, "tree[:f]" = the
// grow-on-contention out-set tree). Metric: out-set operations (one
// registration + one delivery per consumer) per second per core, plus the
// headline contention stat `retries/add` — failed head-CASes per successful
// registration. Expected shape: the CAS list's retry rate grows with the
// number of concurrent consumers while the tree's stays flat (its adds
// separate onto disjoint cache lines after O(log c) collisions), the exact
// fan-out analogue of Fetch & Add vs the in-counter in Figure 8.
//
// Scale knobs: -n / SPDAG_N (consumer count, default 1<<15), -proc /
// SPDAG_PROC (max workers), -runs / SPDAG_RUNS, -prodns / SPDAG_PRODNS
// (producer busy-work in ns; default scales with n so registrations pile up
// against the still-pending future instead of taking the ready bypass).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "harness/bench_runner.hpp"
#include "harness/workloads.hpp"
#include "sched/runtime.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"
#include "util/topology.hpp"

namespace {

using namespace spdag;

void register_config(const std::string& outset_spec, std::size_t workers,
                     std::uint64_t n, std::uint64_t producer_ns, int runs) {
  const std::string name =
      "fanout/" + outset_spec + "/proc:" + std::to_string(workers);
  benchmark::RegisterBenchmark(name.c_str(), [=](benchmark::State& st) {
    runtime_config cfg{workers, "dyn"};
    cfg.outset = outset_spec;
    runtime rt(cfg);
    harness::fanout(rt, n, 0, producer_ns);  // warm-up: pools, pages
    const outset_totals before = rt.outsets().totals();
    std::uint64_t delivered_sum = 0;
    for (auto _ : st) {
      wall_timer t;
      delivered_sum += harness::fanout(rt, n, 0, producer_ns);
      st.SetIterationTime(t.elapsed_s());
    }
    const outset_totals after = rt.outsets().totals();
    const double adds = static_cast<double>(after.adds - before.adds);
    const double retries =
        static_cast<double>(after.add_cas_retries - before.add_cas_retries);
    const double rejected =
        static_cast<double>(after.rejected_adds - before.rejected_adds);
    const double ops = static_cast<double>(harness::outset_ops(n));
    st.counters["ops/s"] = benchmark::Counter(
        ops, benchmark::Counter::kIsIterationInvariantRate);
    st.counters["ops/s/core"] = benchmark::Counter(
        ops / static_cast<double>(workers),
        benchmark::Counter::kIsIterationInvariantRate);
    // The contention acceptance stat: failed head-CASes per captured add.
    st.counters["retries/add"] = adds > 0 ? retries / adds : 0.0;
    // Share of registration attempts that lost the race to finalize and
    // self-delivered (grows when the producer finishes early). Numerator and
    // denominator both accumulate over the same iterations.
    const double attempts = adds + rejected;
    st.counters["rejected/add"] = attempts > 0 ? rejected / attempts : 0.0;
    if (delivered_sum != st.iterations() * n) {
      st.SkipWithError("exactly-once delivery violated");
    }
  })
      ->UseManualTime()
      ->Iterations(runs);
}

}  // namespace

int main(int argc, char** argv) {
  options opts(argc, argv);
  const auto common = harness::read_common(opts, /*default_n=*/1 << 15);
  // Give the producer roughly the time the registration wave needs, so adds
  // contend with each other rather than racing a long-completed future.
  const std::uint64_t producer_ns = static_cast<std::uint64_t>(
      opts.get_int("prodns", static_cast<std::int64_t>(common.n * 25)));

  const std::vector<std::string> algos{"simple", "tree", "tree:4"};
  for (const auto& algo : algos) {
    for (std::size_t p : harness::worker_sweep(common.max_proc)) {
      register_config(algo, p, common.n, producer_ns, common.runs);
    }
  }

  std::printf(
      "# fanout: 1 producer -> n consumers, n=%llu, max_proc=%zu, runs=%d, "
      "producer_ns=%llu (dual of fig08)\n",
      static_cast<unsigned long long>(common.n), common.max_proc, common.runs,
      static_cast<unsigned long long>(producer_ns));
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
