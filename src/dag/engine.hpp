#pragma once
// dag_engine: the sp-dag data structure (paper Figure 3).
//
// Implements make / chain / spawn / signal on top of a pluggable dependency
// counter. Scheduling is delegated through the `executor` interface: the
// engine pushes a vertex to the executor exactly once, at the moment its
// dependency counter reaches zero (readiness detection via the depart
// return value, paper section 5). Vertices and dec-pairs are drawn from the
// engine's pool registry (src/mem/), so the spawn path's bookkeeping never
// hits malloc in steady state.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "dag/vertex.hpp"
#include "incounter/factory.hpp"
#include "mem/registry.hpp"

namespace spdag {

class outset_drain_task;  // src/outset/outset.hpp

// Whoever runs ready vertices (the work-stealing scheduler, or a trivial
// serial loop in tests).
class executor {
 public:
  virtual ~executor() = default;
  virtual void enqueue(vertex* v) = 0;

  // Accepts one subtree-drain work unit from a parallel out-set finalize
  // (see outset::finalize's drain_spawner overload). Both schedulers
  // override — `ws` with a shared stealable lane, `private` with per-worker
  // queues served through its steal-request protocol (receiver-initiated
  // hand-off). The default runs the task on the calling thread through a
  // flattening trampoline, so even inline execution keeps the stack bounded
  // when tasks spawn sub-tasks (engine.cpp); it remains the serial-executor
  // path and the schedulers' single-worker/saturation fallback.
  virtual void enqueue_drain(outset_drain_task* t);
};

// Relaxed global tallies; cheap enough to keep on, and the integration tests
// use them to prove conservation laws (created == recycled, one signal per
// leaf, ...).
struct engine_stats {
  std::atomic<std::uint64_t> vertices_created{0};
  std::atomic<std::uint64_t> vertices_recycled{0};
  std::atomic<std::uint64_t> spawns{0};
  std::atomic<std::uint64_t> chains{0};
  std::atomic<std::uint64_t> signals{0};
  std::atomic<std::uint64_t> pairs_created{0};
  std::atomic<std::uint64_t> pairs_recycled{0};
  std::atomic<std::uint64_t> executions{0};
  std::atomic<std::uint64_t> drains_enqueued{0};
  // Amortization ledger. `edges` counts dependency edges (surplus units ever
  // posted on finish counters: initial obligations, spawn arrives, and the
  // k-1 units of each batched spawn). `counter_incs` counts increment
  // OPERATIONS (one per arrive/add/initial-surplus acquire) and
  // `counter_decs` depart operations (always one per edge). Unbatched
  // execution therefore measures (incs + decs) / (2 * edges) == 1.0 exactly;
  // every spawn_batch(k) adds one inc op for k-1 edges, pushing the ratio
  // strictly below 1 — the `counter_ops_per_edge` metric the application
  // benches report and CI gates.
  std::atomic<std::uint64_t> edges{0};
  std::atomic<std::uint64_t> counter_incs{0};
  std::atomic<std::uint64_t> counter_decs{0};

  void reset() noexcept {
    for (auto* p : {&vertices_created, &vertices_recycled, &spawns, &chains,
                    &signals, &pairs_created, &pairs_recycled, &executions,
                    &drains_enqueued, &edges, &counter_incs, &counter_decs}) {
      p->store(0, std::memory_order_relaxed);
    }
  }
};

class outset_factory;  // src/outset/factory.hpp

struct dag_engine_options {
  // Ablation A2: when true, the first sibling to claim a decrement handle
  // picks a random slot instead of the higher-in-the-tree one, voiding the
  // ordering invariant of Lemma 4.6. Counting stays correct, but a node can
  // then phase-change to zero while live handles still point into its
  // subtree — so this option MUST be combined with a non-reclaiming counter
  // ("dyn:<t>:noreclaim"); with reclamation it is a use-after-recycle.
  bool randomize_claim_order = false;

  // Factory futures created under this engine draw their out-sets (waiter
  // broadcast structures) from; borrowed, must outlive the engine. Null
  // means the process-wide default simple-out-set factory.
  outset_factory* outsets = nullptr;

  // Registry the engine's vertex/dec-pair pools (and the future states made
  // under it) come from; borrowed, must outlive the engine. Null means the
  // process-wide default slab registry.
  pool_registry* pools = nullptr;
};

class dag_engine {
 public:
  // The engine borrows the factory and executor; both must outlive it.
  dag_engine(counter_factory& factory, executor& exec,
             dag_engine_options options = {});
  // Requires quiescence (live_vertices() == 0, asserted): un-executed
  // vertices are pool cells whose body captures would otherwise leak.
  ~dag_engine();

  dag_engine(const dag_engine&) = delete;
  dag_engine& operator=(const dag_engine&) = delete;

  // --- the paper's operations ---

  // Creates the root vertex and its finish (final) vertex; returns
  // (root, final). The root is ready; final waits for the root's signal.
  std::pair<vertex*, vertex*> make();

  // Serial composition: nests a sequential computation under `u`.
  // Returns (v, w) where v runs first (fin = w) and w runs after v's
  // entire subtree completes. Must be the last dag operation u performs.
  std::pair<vertex*, vertex*> chain(vertex* u);

  // Parallel composition: creates two parallel vertices under u's finish,
  // incrementing the finish counter once (one of the children stands for
  // u's continuation). Must be the last dag operation u performs.
  std::pair<vertex*, vertex*> spawn(vertex* u);

  // Batched parallel composition: creates k vertices under u's finish with
  // ONE counter operation covering all of them (u's transferred obligation
  // plus a k-1-unit batched increment), fills out[0..k) WITHOUT bodies and
  // without scheduling them. The children share the batch's increment
  // handles (vertex::shared_inc) and one k-owner decrement group. Must be
  // the last dag operation u performs; the caller assigns bodies and add()s
  // every child. k == 1 degenerates to handing u's obligation to one child.
  void spawn_batch_vertices(vertex* u, std::uint32_t k, vertex** out);

  // Convenience wrapper: spawn_batch_vertices + bodies from gen(i) + add().
  // gen is invoked synchronously for i in [0, k); each returned closure is
  // moved into child i's body before ANY child is scheduled (a scheduled
  // sibling may run, signal, and finish while later bodies are still being
  // assigned — assignment must therefore never touch an added vertex).
  template <typename Gen>
  void spawn_batch(vertex* u, std::uint32_t k, Gen&& gen) {
    vertex* local[32];
    std::vector<vertex*> heap;
    vertex** vs = local;
    if (k > 32) {
      heap.resize(k);
      vs = heap.data();
    }
    spawn_batch_vertices(u, k, vs);
    for (std::uint32_t i = 0; i < k; ++i) vs[i]->body = gen(i);
    for (std::uint32_t i = 0; i < k; ++i) add(vs[i]);
  }

  // Signals completion of u: decrements u.fin's counter; when that reaches
  // zero, u.fin is handed to the executor. Called by execute() for vertices
  // that did not chain/spawn.
  void signal(vertex* u);

  // The generalized constructor (paper's new_vertex): fresh vertex with
  // `n` initial dependencies and the given handles.
  vertex* new_vertex(vertex* fin, token inc, dec_pair* dpair, std::uint32_t n,
                     bool is_left);

  // Hands v to the executor iff its counter is (already) zero. Mirrors the
  // paper's Scheduler.add: vertices with pending dependencies are enqueued
  // later by the zeroing signal.
  void add(vertex* v);

  // Hands one out-set subtree-drain work unit to the executor so an idle
  // worker can run it (future_state::complete routes its parallel finalize
  // through here). The executor owns the task from this point.
  void enqueue_drain(outset_drain_task* t);

  // Quiescent-only maintenance: trims every pool in this engine's registry
  // (flush magazines + recycle list, release fully-free slabs upstream —
  // see object_pool::trim), returning slabs released. ONLY legal between
  // run()s: every scheduler's run() drains to quiescence and parks its
  // workers before returning, which is exactly the no-racing-readers window
  // in which unmapping free slabs cannot violate the stale-read stability
  // argument live slabs rely on. Asserts live_vertices() == 0 as a cheap
  // proxy for that contract. If the registry is shared (the process-wide
  // default), the same must hold for every other engine drawing from it.
  std::size_t trim_pools();

  // Service-facing checked trim: like trim_pools(), but a mistimed call is
  // a no-op instead of an assert — returns false (without touching the
  // pools) when the engine is not quiescent, so an idle timer that loses a
  // race with an arriving submission backs off harmlessly and retries
  // later. The caller must still prevent NEW work from entering between the
  // check and the trim (the dag_service holds its admission gate across
  // this call); the check turns a mistimed fire into a clean refusal, it
  // does not license concurrent allocation. On success `*slabs_released`
  // (if non-null) receives the slab count handed back upstream.
  bool try_trim_pools(std::size_t* slabs_released = nullptr);

  // Live-mode trim: legal while this engine (and anything sharing its
  // registry) is mid-run. Does NOT demand live_vertices() == 0 — it routes
  // through pool_registry::trim_live(), which retires fully-free slabs into
  // epoch limbo and frees them only after the 2-epoch delay proves no
  // pinned worker can still reach them. Magazines stay untouched, so this
  // is strictly weaker than trim_pools() but needs no quiescence window at
  // all. Returns slabs retired this call; `*slabs_reclaimed` (if non-null)
  // receives how many limbo slabs the accompanying reclaim sweep actually
  // freed. A no-op returning 0 when the epoch layer is compiled out.
  std::size_t trim_pools_live(std::size_t* slabs_reclaimed = nullptr);

  // Runs v's body with this-vertex context, signals if v is not dead, and
  // recycles v. Called by the executor's workers.
  void execute(vertex* v);

  // --- plumbing ---
  counter_factory& factory() noexcept { return factory_; }
  outset_factory& outsets() noexcept { return *outsets_; }
  pool_registry& pools() noexcept { return *pools_; }

  // The "future_state" pool for one state geometry, memoized so the
  // fork2_future hot path is two uncontended loads instead of the
  // registry's mutexed string lookup per future creation.
  object_pool& state_pool(std::size_t bytes, std::size_t align);
  executor& exec() noexcept { return exec_; }
  engine_stats& stats() noexcept { return stats_; }
  bool uses_tokens() const noexcept { return uses_tokens_; }

  // Free cells cached for reuse in the backing pools (tests). Registry-wide:
  // engines sharing one registry see each other's cached cells.
  std::size_t pooled_vertices() const noexcept {
    return vertex_pool_->stats().cached();
  }
  std::size_t pooled_pairs() const noexcept {
    return pair_pool_->stats().cached();
  }
  std::size_t live_vertices() const noexcept {
    return stats_.vertices_created.load(std::memory_order_relaxed) -
           stats_.vertices_recycled.load(std::memory_order_relaxed);
  }

  // The vertex currently executing on this thread (the paper's this_vertex).
  static vertex* current_vertex() noexcept;
  static dag_engine* current_engine() noexcept;

 private:
  vertex* alloc_vertex();
  void recycle(vertex* v);
  dec_pair* alloc_pair(token t0, token t1, std::uint32_t owners,
                       bool grouped = false);
  void release_pair_ref(dec_pair* p);
  token claim_dec(vertex* u);

  counter_factory& factory_;
  outset_factory* outsets_;
  pool_registry* pools_;
  executor& exec_;
  dag_engine_options options_;
  bool uses_tokens_;
  engine_stats stats_;

  object_pool* vertex_pool_;
  object_pool* pair_pool_;

  // Append-only memo of state_pool() lookups: readers scan lock-free (key
  // acquire-load pairs with the installer's release-store, which follows
  // the pool store); installs take memo_mu_ (cold, once per geometry).
  struct state_pool_memo {
    std::atomic<std::uint64_t> key{0};  // bytes<<16 | align; 0 = empty
    std::atomic<object_pool*> pool{nullptr};
  };
  static constexpr std::size_t state_pool_slots = 8;
  state_pool_memo state_pools_[state_pool_slots];
  std::mutex memo_mu_;
};

// --- nested-parallelism sugar (usable inside vertex bodies) ---

// Parallel composition of two closures under the current vertex: one spawn,
// both children scheduled. Must be the last dag action of the current body.
template <typename L, typename R>
void fork2(L&& left, R&& right) {
  dag_engine* eng = dag_engine::current_engine();
  vertex* u = dag_engine::current_vertex();
  auto [v, w] = eng->spawn(u);
  v->body = std::forward<L>(left);
  w->body = std::forward<R>(right);
  eng->add(v);
  eng->add(w);
}

// Serial composition under the current vertex: runs `first`'s entire nested
// computation (a finish block), then `then`. Must be the last dag action of
// the current body.
template <typename F, typename T>
void finish_then(F&& first, T&& then) {
  dag_engine* eng = dag_engine::current_engine();
  vertex* u = dag_engine::current_vertex();
  auto [v, w] = eng->chain(u);
  v->body = std::forward<F>(first);
  w->body = std::forward<T>(then);
  // Register w BEFORE publishing v: once v is enqueued, another worker can
  // run v's entire subtree, signal w, execute and recycle it — after which
  // touching w here would be a use-after-recycle.
  eng->add(w);
  eng->add(v);
}

}  // namespace spdag
