#pragma once
// Optional instrumentation for SNZI trees.
//
// The paper's analysis (section 4) proves amortized O(1) shared-memory steps
// and O(1) contention per in-counter operation. These counters let the test
// suite and the ablation benches check the proved bounds on real executions:
//   * arrives / increments        <= 3      (Corollary 4.7, p = 1)
//   * max ops touching one node   <= 6      (proof of Theorem 4.9, p = 1)
// All counters are relaxed atomics; instrumentation is off (null pointer) in
// measurement runs so it cannot perturb the contention being measured.

#include <atomic>
#include <cstdint>

namespace spdag::snzi {

struct tree_stats {
  std::atomic<std::uint64_t> arrives{0};          // node-level arrive calls (incl. climbs)
  std::atomic<std::uint64_t> departs{0};          // node-level depart calls (incl. climbs)
  std::atomic<std::uint64_t> root_arrives{0};
  std::atomic<std::uint64_t> root_departs{0};
  std::atomic<std::uint64_t> cas_failures{0};     // failed CAS attempts anywhere
  std::atomic<std::uint64_t> undo_departs{0};     // helper arrivals undone (orig. SNZI)
  std::atomic<std::uint64_t> grow_calls{0};
  std::atomic<std::uint64_t> grow_allocs{0};      // fresh child pairs from the slab pool
  std::atomic<std::uint64_t> grow_reuses{0};      // child pairs recycled from the pool
  std::atomic<std::uint64_t> grow_lost_races{0};  // allocated a pair but lost the CAS
  std::atomic<std::uint64_t> grow_childless{0};   // grow() returned (a, a)
  std::atomic<std::uint64_t> retires{0};          // nodes whose surplus returned to 0
  std::atomic<std::uint64_t> pair_recycles{0};    // child pairs returned to the pool
  std::atomic<std::uint64_t> indicator_writes{0};

  void reset() noexcept {
    for (auto* p : {&arrives, &departs, &root_arrives, &root_departs,
                    &cas_failures, &undo_departs, &grow_calls, &grow_allocs,
                    &grow_reuses, &grow_lost_races, &grow_childless, &retires,
                    &pair_recycles, &indicator_writes}) {
      p->store(0, std::memory_order_relaxed);
    }
  }
};

// Relaxed add on an optional stats block.
inline void stat_add(tree_stats* s, std::atomic<std::uint64_t> tree_stats::*m,
                     std::uint64_t n = 1) noexcept {
  if (s != nullptr) (s->*m).fetch_add(n, std::memory_order_relaxed);
}

}  // namespace spdag::snzi
