#pragma once
// object_pool: the hot-path allocation interface every runtime bookkeeping
// structure draws from (vertices, dec-pairs, future states, SNZI child
// pairs, out-set node groups, waiter records).
//
// The paper's O(1)-amortized-contention argument for the in-counter assumes
// the runtime's own bookkeeping is cheap; on churn-heavy dags (one future or
// finish block per iteration, millions of iterations) malloc — not the
// counter — becomes the scalability ceiling. An object_pool is a fixed-cell
// allocator for exactly one object geometry (size, alignment), selected per
// process through a pool_registry (src/mem/registry.hpp) so benchmarks can
// sweep `alloc:malloc` against `alloc:pool` and watch malloc leave the
// profile.
//
// Implementations:
//   * malloc_pool  (src/mem/malloc_pool.hpp) — passthrough to operator new;
//     the ablation baseline. Every allocation is an upstream trip.
//   * slab_cache   (src/mem/slab_pool.hpp) — per-worker magazine caches over
//     block-allocated slabs with a lock-free global recycle list; in steady
//     state neither allocate nor deallocate touches the upstream allocator.
//
// The pool hands out raw storage; construction/destruction is the caller's
// (use pool_new / pool_delete below). A deallocated-then-recycled cell may
// be dereferenced by a racing reader (SNZI pair reuse, out-set node
// recycling, the recycle list's own link walks); what makes that stale read
// safe is the epoch protocol in src/mem/epoch.hpp: readers hold an epoch
// pin, and a cell's storage is only unmapped — by trim() at quiescence or
// by trim_live() after the 2-epoch limbo delay — once no pinned reader can
// still reach it. That single protocol replaces the per-structure
// "stale-but-mapped arena" arguments the SNZI and out-set trees used to
// carry.

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

namespace spdag {

// Relaxed per-pool instrumentation. Counters are monotone over the pool's
// lifetime; under concurrency a snapshot may be a few operations skewed
// between fields (each field is internally consistent).
struct pool_stats {
  std::uint64_t allocs = 0;         // allocate() calls
  std::uint64_t frees = 0;          // deallocate() calls
  std::uint64_t recycles = 0;       // allocs served from recycled storage
  std::uint64_t remote_frees = 0;   // frees by a different worker than the
                                    // cell's last allocator (cross-worker)
  std::uint64_t carved = 0;         // cells carved fresh from slabs (monotone
                                    // over the pool's lifetime, NOT reduced
                                    // by trim())
  std::uint64_t slab_growths = 0;   // trips to the upstream allocator
  std::uint64_t magazine_refills = 0;
  std::uint64_t magazine_flushes = 0;
  std::uint64_t trims = 0;          // trim() calls
  std::uint64_t slabs_released = 0; // fully-free slabs returned upstream
  std::uint64_t cells_released = 0; // cells whose storage trim() returned
                                    // upstream (they leave the carved
                                    // population for good)
  std::uint64_t mag_grows = 0;      // adaptive effective-cap doublings
  std::uint64_t mag_shrinks = 0;    // adaptive effective-cap halvings
  std::uint64_t slabs_retired = 0;  // fully-free slabs trim_live() parked in
                                    // epoch limbo (epoch reclamation)
  std::uint64_t slabs_reclaimed = 0;// limbo slabs actually freed after the
                                    // 2-epoch safety delay
  std::uint64_t eliminations = 0;   // free/alloc pairs that rendezvoused on
                                    // an elimination slot and cancelled
                                    // without touching the recycle list
                                    // (alloc:pool:elim; counted per pair)
  std::uint64_t elim_timeouts = 0;  // offers that spun out and fell through
                                    // to the Treiber list

  // Gauges (snapshots, not counters) ---------------------------------------
  std::uint64_t magazine_cells = 0; // cells currently parked in magazines
  std::uint64_t recycle_cells = 0;  // cells currently on the global recycle
                                    // list
  std::uint64_t limbo_cells = 0;    // cells in retired-but-not-yet-reclaimed
                                    // slabs (epoch limbo)
  std::uint64_t mag_cap_lo = 0;     // smallest / largest effective magazine
  std::uint64_t mag_cap_hi = 0;     // capacity across live magazines (0 =
                                    // no magazine created yet)

  // Cells currently handed out (approximate under concurrency).
  std::uint64_t live() const noexcept {
    return allocs >= frees ? allocs - frees : 0;
  }
  // Cells the POOL itself is holding for reuse: magazine-resident plus the
  // global recycle list. This — not cached() — is what trim() empties; after
  // a quiescent trim it drops to the free cells left in slabs that live
  // allocations still pin (~0 when everything was freed).
  std::uint64_t retained() const noexcept {
    return magazine_cells + recycle_cells;
  }
  // Cells carved but not currently live: cached in magazines, the global
  // recycle list, or structure-local free lists built on top of the pool.
  // Cells whose slabs trim() released are subtracted (carved itself stays
  // monotone), so after a quiescent full trim cached() == retained().
  std::uint64_t cached() const noexcept {
    const std::uint64_t gone = cells_released + live();
    return carved >= gone ? carved - gone : 0;
  }

  pool_stats& operator+=(const pool_stats& o) noexcept {
    allocs += o.allocs;
    frees += o.frees;
    recycles += o.recycles;
    remote_frees += o.remote_frees;
    carved += o.carved;
    slab_growths += o.slab_growths;
    magazine_refills += o.magazine_refills;
    magazine_flushes += o.magazine_flushes;
    trims += o.trims;
    slabs_released += o.slabs_released;
    cells_released += o.cells_released;
    mag_grows += o.mag_grows;
    mag_shrinks += o.mag_shrinks;
    slabs_retired += o.slabs_retired;
    slabs_reclaimed += o.slabs_reclaimed;
    eliminations += o.eliminations;
    elim_timeouts += o.elim_timeouts;
    magazine_cells += o.magazine_cells;
    recycle_cells += o.recycle_cells;
    limbo_cells += o.limbo_cells;
    // Capacity gauges combine as an envelope: min of set minima, max of
    // maxima (0 means "no magazines yet" and is skipped).
    if (o.mag_cap_lo != 0) {
      mag_cap_lo = mag_cap_lo == 0 ? o.mag_cap_lo
                                   : (o.mag_cap_lo < mag_cap_lo ? o.mag_cap_lo
                                                                : mag_cap_lo);
    }
    if (o.mag_cap_hi > mag_cap_hi) mag_cap_hi = o.mag_cap_hi;
    return *this;
  }
};

class object_pool {
 public:
  object_pool(std::string name, std::size_t object_bytes,
              std::size_t object_align)
      : name_(std::move(name)),
        object_bytes_(object_bytes),
        object_align_(object_align) {}

  virtual ~object_pool() = default;
  object_pool(const object_pool&) = delete;
  object_pool& operator=(const object_pool&) = delete;

  // Raw storage of the pool's cell geometry. Never null (throws bad_alloc).
  virtual void* allocate() = 0;

  // Returns a cell obtained from allocate(). The object must already be
  // destroyed; the storage may be handed to another worker immediately.
  virtual void deallocate(void* p) noexcept = 0;

  virtual pool_stats stats() const = 0;

  // Quiescent-only maintenance: flushes every per-worker magazine and the
  // recycle list back into the slabs and returns every FULLY-FREE slab to
  // the upstream allocator, returning how many slabs were released. The
  // caller must guarantee quiescence — no thread is inside allocate()/
  // deallocate() and none will be until trim returns (in the runtime:
  // between run()s, via dag_engine::trim_pools()). Live cells are legal and
  // simply pin their slab. Safety, in epoch terms (src/mem/epoch.hpp): at
  // quiescence no thread is pinned, so there is no reader the 2-epoch delay
  // would have to wait for — trim may skip limbo and free immediately. This
  // is the degenerate case of the protocol, not a separate argument, and it
  // is all that remains when the epoch layer is compiled out
  // (-DSPDAG_EPOCH=OFF). Default: nothing pooled, nothing to release.
  virtual std::size_t trim() { return 0; }

  // Live-traffic maintenance, legal under concurrent allocate()/deallocate()
  // traffic (requires the epoch subsystem; returns 0 when it is compiled
  // out). Drains the global recycle list, and every slab whose cells all
  // turned out to be free is RETIRED into epoch limbo rather than freed —
  // epoch::reclaim() frees it once two epoch advances prove no pinned
  // reader can still hold a stale pointer into it. Magazines are left
  // untouched (their cells are considered in use), so trim_live() is
  // strictly more conservative than a quiescent trim(). Returns the number
  // of slabs retired this call.
  virtual std::size_t trim_live() { return 0; }

  const std::string& name() const noexcept { return name_; }
  std::size_t object_bytes() const noexcept { return object_bytes_; }
  std::size_t object_align() const noexcept { return object_align_; }

 private:
  std::string name_;
  std::size_t object_bytes_;
  std::size_t object_align_;
};

// Typed construct/destroy sugar over the untyped cell interface.
template <typename T, typename... Args>
T* pool_new(object_pool& pool, Args&&... args) {
  void* p = pool.allocate();
  return ::new (p) T(std::forward<Args>(args)...);
}

template <typename T>
void pool_delete(object_pool& pool, T* obj) noexcept {
  obj->~T();
  pool.deallocate(obj);
}

}  // namespace spdag
