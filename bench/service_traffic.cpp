// Service traffic: open-loop arrival-rate workload for the resident
// dag_service runtime (src/service/), and the acceptance benchmark for the
// multi-tenant submission path.
//
// Setup: per configuration, one dag_service (persistent worker pool, either
// scheduler) receives n submissions per repetition from `clients` client
// threads. Arrivals are open-loop: each client draws exponential
// inter-arrival gaps (Poisson-ish process, bench PRNG) against an absolute
// schedule, so a slow service makes arrivals pile up against the admission
// cap instead of throttling the offered load. Each submission is a small
// fork2 spawn tree (3 leaves); clients collect every ticket at the end of
// the batch so each repetition ends quiescent and conservation is checkable.
//
// Metrics: completed submissions/s, plus the three service latency
// distributions that separate where time goes:
//   queue_p*   — submit → dispatch (admission + injection-queue delay)
//   exec_p*    — dispatch → completion (dag execution)
//   sojourn_p* — submit → completion (what a client experiences); this is
//                the record's lat_p50/p95/p99_ms.
// Service counters (submitted/admitted/completed/blocked/idle_trims/...)
// ride along in `extra` so the CI gate can assert conservation
// (completed == submitted - rejected) and that the idle trim fired.
//
// Busy trim: the service runs with an aggressive busy_trim_every cadence
// (knob -busytrim, default 32 here vs the production default 256) and a
// small-slab / small-magazine alloc spec (pool:4096:256 — minimum rails),
// so burst frees overflow the per-worker magazines onto the global recycle
// list where trim_live() can see whole slabs drain. That demonstrates the
// epoch reclamation path end to end — busy_trims / slabs_retired /
// slabs_reclaimed ride in `extra` next to epoch_enabled, and the CI gate
// asserts that under sustained load some slabs actually made the full
// retire -> 2-epoch-delay -> reclaim trip while submissions were in flight
// (the dispatcher never trims outside its dispatch loop). Default-geometry
// behaviour (big magazines strand cells; see the ROADMAP carry-over on
// magazine shedding) stays covered by every other bench.
//
// Scale knobs: -n / SPDAG_N (submissions per repetition, default 1<<12),
// -proc / SPDAG_PROC (workers), -runs / SPDAG_RUNS, -arrivalns (mean
// inter-arrival per client in ns, default 20000), -cap (max_inflight,
// default 256), -busytrim (busy-trim dispatch cadence, 0 disables).
// Telemetry: -json <path> / SPDAG_JSON writes one record per config
// (scripts/perf_smoke_gate.py --service consumes it).

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "harness/bench_runner.hpp"
#include "mem/epoch.hpp"
#include "obs/trace.hpp"
#include "sched/runtime.hpp"
#include "service/service.hpp"
#include "util/cli.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace spdag;

// Exponential inter-arrival draw: -ln(u) * mean, u uniform in (0, 1).
std::uint64_t exp_gap_ns(xoshiro256& rng, double mean_ns) {
  const double u = (static_cast<double>(rng() >> 11) + 0.5) * 0x1.0p-53;
  const double gap = -std::log(u) * mean_ns;
  return gap > 0 ? static_cast<std::uint64_t>(gap) : 0;
}

// One client's batch: open-loop submissions against an absolute schedule,
// then wait on every ticket. Returns how many waits reported completion.
std::uint64_t run_client(dag_service& svc, std::uint64_t count,
                         double mean_gap_ns, std::uint64_t seed,
                         std::atomic<std::uint64_t>& leaves) {
  xoshiro256 rng(seed);
  std::vector<ticket> tickets;
  tickets.reserve(static_cast<std::size_t>(count));
  auto next = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < count; ++i) {
    next += std::chrono::nanoseconds(exp_gap_ns(rng, mean_gap_ns));
    std::this_thread::sleep_until(next);  // past-due deadlines return at once
    tickets.push_back(svc.submit([&leaves] {
      fork2([&leaves] { leaves.fetch_add(1, std::memory_order_relaxed); },
            [&leaves] {
              fork2(
                  [&leaves] { leaves.fetch_add(1, std::memory_order_relaxed); },
                  [&leaves] {
                    leaves.fetch_add(1, std::memory_order_relaxed);
                  });
            });
    }));
  }
  std::uint64_t ok = 0;
  for (auto& t : tickets) {
    if (t.valid() && t.wait()) ++ok;
  }
  return ok;
}

double pct_ms(const latency_histogram& h, double q) {
  return static_cast<double>(h.percentile_ns(q)) * 1e-6;
}

void register_config(const std::string& sched_spec, std::size_t clients,
                     std::size_t workers, std::uint64_t n, double mean_gap_ns,
                     std::size_t cap, std::size_t busy_trim, int runs) {
  const std::string name =
      "service/" + sched_spec + "/clients:" + std::to_string(clients);
  benchmark::RegisterBenchmark(name.c_str(), [=](benchmark::State& st) {
    service_config cfg;
    cfg.rt.workers = workers;
    cfg.rt.sched = sched_spec;
    cfg.rt.alloc = "pool:4096:256";  // see file comment: busy-trim geometry
    cfg.max_inflight = cap;
    cfg.on_full = admission_policy::block;
    cfg.idle_trim_after = std::chrono::milliseconds(1);
    cfg.busy_trim_every = busy_trim;
    dag_service svc(cfg);
    obs::tracer::instance().reset();  // summary covers this config only

    std::atomic<std::uint64_t> leaves{0};
    std::uint64_t ok_sum = 0;
    std::uint64_t offered = 0;
    double wall_sum_s = 0;
    for (auto _ : st) {
      std::atomic<std::uint64_t> ok{0};
      wall_timer t;
      std::vector<std::thread> pool;
      pool.reserve(clients);
      for (std::size_t c = 0; c < clients; ++c) {
        // Client 0 absorbs the division remainder so each repetition offers
        // exactly n submissions.
        const std::uint64_t share =
            n / clients + (c == 0 ? n % clients : 0);
        const std::uint64_t seed = 0x5eed0000 + 131 * c + offered;
        pool.emplace_back([&svc, &leaves, &ok, share, mean_gap_ns, seed] {
          ok.fetch_add(run_client(svc, share, mean_gap_ns, seed, leaves),
                       std::memory_order_relaxed);
        });
      }
      for (auto& th : pool) th.join();
      const double el = t.elapsed_s();
      st.SetIterationTime(el);
      wall_sum_s += el;
      ok_sum += ok.load(std::memory_order_relaxed);
      offered += n;
    }

    const auto s = svc.stats();
    st.counters["subs/s"] = benchmark::Counter(
        static_cast<double>(n), benchmark::Counter::kIsIterationInvariantRate);
    st.counters["sojourn_p99_ms"] = pct_ms(svc.sojourn_latency(), 0.99);
    st.counters["queue_p99_ms"] = pct_ms(svc.queue_latency(), 0.99);
    if (ok_sum != offered || s.completed != s.submitted - s.rejected ||
        leaves.load() != 3 * s.completed) {
      st.SkipWithError("service conservation violated");
    }
    if (harness::json_enabled()) {
      harness::json_record rec;
      rec.name = name;
      rec.spec = sched_spec;
      rec.sched = sched_spec;
      rec.proc = workers;
      rec.runs = runs;
      const double iters = static_cast<double>(st.iterations());
      rec.wall_s = iters > 0 ? wall_sum_s / iters : 0.0;
      rec.ops_per_s = wall_sum_s > 0
                          ? static_cast<double>(s.completed) / wall_sum_s
                          : 0.0;
      rec.lat_p50_ms = pct_ms(svc.sojourn_latency(), 0.50);
      rec.lat_p95_ms = pct_ms(svc.sojourn_latency(), 0.95);
      rec.lat_p99_ms = pct_ms(svc.sojourn_latency(), 0.99);
      rec.pools = svc.rt().pools().rows();
      rec.pool_totals = svc.rt().pools().totals();
      rec.outsets = svc.rt().outsets().totals();
      rec.sched_totals = svc.rt().sched().totals();
      rec.extra.emplace_back("clients", static_cast<double>(clients));
      rec.extra.emplace_back("queue_p50_ms", pct_ms(svc.queue_latency(), 0.50));
      rec.extra.emplace_back("queue_p95_ms", pct_ms(svc.queue_latency(), 0.95));
      rec.extra.emplace_back("queue_p99_ms", pct_ms(svc.queue_latency(), 0.99));
      rec.extra.emplace_back("exec_p50_ms", pct_ms(svc.exec_latency(), 0.50));
      rec.extra.emplace_back("exec_p95_ms", pct_ms(svc.exec_latency(), 0.95));
      rec.extra.emplace_back("exec_p99_ms", pct_ms(svc.exec_latency(), 0.99));
      rec.extra.emplace_back("submitted", static_cast<double>(s.submitted));
      rec.extra.emplace_back("admitted", static_cast<double>(s.admitted));
      rec.extra.emplace_back("rejected", static_cast<double>(s.rejected));
      rec.extra.emplace_back("completed", static_cast<double>(s.completed));
      rec.extra.emplace_back("blocked", static_cast<double>(s.blocked));
      rec.extra.emplace_back("idle_trims", static_cast<double>(s.idle_trims));
      rec.extra.emplace_back("slabs_released",
                             static_cast<double>(s.slabs_released));
      rec.extra.emplace_back("busy_trims", static_cast<double>(s.busy_trims));
      rec.extra.emplace_back("slabs_retired",
                             static_cast<double>(s.slabs_retired));
      rec.extra.emplace_back("slabs_reclaimed",
                             static_cast<double>(s.slabs_reclaimed));
      rec.extra.emplace_back("queue_full_rejects",
                             static_cast<double>(s.queue_full_rejects));
      rec.extra.emplace_back("epoch_enabled",
                             mem::epoch::enabled() ? 1.0 : 0.0);
      rec.extra.emplace_back("peak_inflight",
                             static_cast<double>(s.peak_inflight));
      harness::json_add(std::move(rec));
    }
  })
      ->UseManualTime()
      ->Iterations(runs);
}

}  // namespace

int main(int argc, char** argv) {
  options opts(argc, argv);
  const auto common = harness::read_common(opts, /*default_n=*/1 << 12);
  harness::json_open(opts, "service_traffic");
  const double mean_gap_ns =
      static_cast<double>(opts.get_int("arrivalns", 20000));
  const std::size_t cap =
      static_cast<std::size_t>(opts.get_int("cap", 256));
  const std::size_t busy_trim =
      static_cast<std::size_t>(opts.get_int("busytrim", 32));

  // Client-count sweep against a fixed worker pool, for both schedulers:
  // the contention axis is concurrent submitters, not workers.
  const std::vector<std::string> scheds{"ws", "private"};
  const std::vector<std::size_t> client_counts{1, 2, 4};
  for (const auto& sched : scheds) {
    for (std::size_t c : client_counts) {
      register_config(sched, c, common.max_proc, common.n, mean_gap_ns, cap,
                      busy_trim, common.runs);
    }
  }

  std::printf(
      "# service: open-loop Poisson-ish arrivals into a resident dag_service; "
      "n=%llu per rep, workers=%zu, runs=%d, mean_gap=%.0fns, cap=%zu, "
      "busytrim=%zu (epoch %s); "
      "acceptance: completed == submitted - rejected, finite p99\n",
      static_cast<unsigned long long>(common.n), common.max_proc, common.runs,
      mean_gap_ns, cap, busy_trim, mem::epoch::enabled() ? "on" : "off");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return harness::json_write();
}
