// Tests for the private-deques scheduler (Acar-Charguéraud-Rainey,
// PPoPP'13), its receiver-initiated drain hand-off protocol, and
// cross-scheduler equivalence checks.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <tuple>

#include "harness/workloads.hpp"
#include "outset/outset.hpp"
#include "sched/private_deques.hpp"
#include "sched/runtime.hpp"

namespace spdag {
namespace {

runtime_config pd(std::size_t workers, const std::string& counter = "dyn") {
  runtime_config cfg{workers, counter};
  cfg.sched = "private";
  return cfg;
}

TEST(PrivateDeques, RunsTrivialDag) {
  runtime rt(pd(2));
  std::atomic<int> ran{0};
  rt.run([&ran] { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 1);
}

TEST(PrivateDeques, SingleWorkerNeverSteals) {
  runtime rt(pd(1));
  harness::fanin(rt, 1 << 10);
  EXPECT_EQ(rt.sched().totals().steals, 0u);
  EXPECT_EQ(rt.engine().live_vertices(), 0u);
}

TEST(PrivateDeques, StealsMigrateWorkAcrossWorkers) {
  runtime rt(pd(4));
  rt.sched().reset_totals();
  harness::fanin(rt, 1 << 14);
  EXPECT_GT(rt.sched().totals().steals, 0u)
      << "a wide fanin should trigger at least one successful steal request";
}

TEST(PrivateDeques, RepeatedRunsStaySound) {
  runtime rt(pd(3));
  for (int i = 0; i < 30; ++i) {
    EXPECT_EQ(harness::fib(rt, 14), 377u) << "run " << i;
    EXPECT_EQ(rt.engine().live_vertices(), 0u);
  }
}

class PrivateDequesMatrix
    : public ::testing::TestWithParam<std::tuple<std::string, std::size_t>> {};

TEST_P(PrivateDequesMatrix, FibCorrect) {
  runtime rt(pd(std::get<1>(GetParam()), std::get<0>(GetParam())));
  EXPECT_EQ(harness::fib(rt, 18), 2584u);
}

TEST_P(PrivateDequesMatrix, FaninConserves) {
  runtime rt(pd(std::get<1>(GetParam()), std::get<0>(GetParam())));
  harness::fanin(rt, 1 << 11);
  const auto& st = rt.engine().stats();
  EXPECT_EQ(st.vertices_created.load(), st.vertices_recycled.load());
  EXPECT_EQ(rt.engine().live_vertices(), 0u);
}

TEST_P(PrivateDequesMatrix, Indegree2Conserves) {
  runtime rt(pd(std::get<1>(GetParam()), std::get<0>(GetParam())));
  harness::indegree2(rt, 1 << 11);
  EXPECT_EQ(rt.engine().live_vertices(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AlgosAndWorkers, PrivateDequesMatrix,
    ::testing::Combine(::testing::Values("faa", "snzi:2", "dyn:1", "dyn"),
                       ::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{4}, std::size_t{8})),
    [](const ::testing::TestParamInfo<std::tuple<std::string, std::size_t>>& info) {
      std::string algo = std::get<0>(info.param);
      for (char& ch : algo) {
        if (ch == ':') ch = '_';
      }
      return algo + "_w" + std::to_string(std::get<1>(info.param));
    });

// --- receiver-initiated drain hand-off protocol ---

// Drain task that bumps a counter and releases itself, per the ownership
// contract (whoever receives it calls run() exactly once).
class counting_drain final : public outset_drain_task {
 public:
  explicit counting_drain(std::atomic<int>* runs) : runs_(runs) {}
  void run() override {
    runs_->fetch_add(1, std::memory_order_acq_rel);
    delete this;
  }

 private:
  std::atomic<int>* runs_;
};

// A vertex chain that keeps its worker's deque at exactly one task between
// polls: every communicate() sees no vertex to spare, so a pending steal
// request MUST be answered with a queued drain. The chain only ends once
// every drain has run, which pins the full hand-off path deterministically.
void chain_until_drained(std::atomic<int>* runs, int total) {
  if (runs->load(std::memory_order_acquire) >= total) return;
  finish_then([] {}, [runs, total] { chain_until_drained(runs, total); });
}

TEST(PrivateDequesDrains, EmptyDequeAnswersStealRequestWithQueuedDrain) {
  constexpr int kDrains = 8;
  runtime rt(pd(2));
  std::atomic<int> runs{0};
  scheduler_base& sched = rt.sched();
  rt.run([&runs, &sched] {
    // Enqueued from a worker thread: all land on THIS worker's private
    // queue. The chain below never yields a spare vertex and never goes
    // idle, so the only way the drains can run before the dag ends is the
    // other worker's steal requests being answered with them.
    for (int i = 0; i < kDrains; ++i) {
      sched.enqueue_drain(new counting_drain(&runs));
    }
    chain_until_drained(&runs, kDrains);
  });
  EXPECT_EQ(runs.load(), kDrains) << "every drain must run exactly once";
  const scheduler_totals t = rt.sched().totals();
  EXPECT_EQ(t.drains_executed, static_cast<std::uint64_t>(kDrains));
  EXPECT_EQ(t.drains_handed_off, static_cast<std::uint64_t>(kDrains))
      << "a worker with an empty deque but queued drains must answer steal "
         "requests with the drains";
  EXPECT_EQ(t.drains_stolen, static_cast<std::uint64_t>(kDrains))
      << "every handed-off drain ran on the thief, not the enqueuer";
}

TEST(PrivateDequesDrains, RunWaitsForDrainQuiescence) {
  // A drain enqueued mid-dag with no consumer gating the finish on it must
  // still be delivered before run() returns (drains count toward
  // quiescence), on any worker count — including the single-worker inline
  // path, where nothing is queued at all.
  for (std::size_t workers : {std::size_t{1}, std::size_t{3}}) {
    runtime rt(pd(workers));
    std::atomic<int> runs{0};
    scheduler_base& sched = rt.sched();
    rt.run([&runs, &sched] {
      for (int i = 0; i < 4; ++i) {
        sched.enqueue_drain(new counting_drain(&runs));
      }
    });
    EXPECT_EQ(runs.load(), 4) << "workers=" << workers;
    if (workers == 1) {
      EXPECT_EQ(rt.sched().totals().drains_executed, 0u)
          << "a single worker has no thief to hand to: drains run inline "
             "through the trampoline, invisible to the lane stats";
    }
  }
}

TEST(PrivateDequesDrains, ShutdownWithUndrainedQueuesRunsThemWithoutLeaking) {
  // Unstructured teardown: drains injected from a non-worker thread with no
  // run() to drive quiescence. Destruction must neither leak the tasks
  // (each counting_drain frees itself in run(); ASan would flag the loss)
  // nor deadlock the join — whatever idle workers did not adopt in time is
  // flushed by the destructor itself.
  constexpr int kDrains = 64;
  std::atomic<int> runs{0};
  {
    private_deque_scheduler sched(private_deque_config{2, false, 16,
                                                       std::chrono::microseconds{500}});
    for (int i = 0; i < kDrains; ++i) {
      sched.enqueue_drain(new counting_drain(&runs));
    }
  }  // destroyed immediately: queues may well still hold tasks
  EXPECT_EQ(runs.load(), kDrains)
      << "every enqueued drain must run exactly once across adoption and "
         "teardown";
}

// Both schedulers must produce identical program results and conservation
// properties on the same workloads.
class SchedulerEquivalence : public ::testing::TestWithParam<std::string> {};

TEST_P(SchedulerEquivalence, SameFibAcrossSchedulers) {
  runtime_config cfg{3, "dyn"};
  cfg.sched = GetParam();
  runtime rt(cfg);
  EXPECT_EQ(harness::fib(rt, 20), 6765u);
  EXPECT_EQ(rt.engine().live_vertices(), 0u);
}

TEST_P(SchedulerEquivalence, GranularityWorkload) {
  runtime_config cfg{2, "dyn"};
  cfg.sched = GetParam();
  runtime rt(cfg);
  harness::fanin(rt, 1 << 8, /*work_ns=*/200);
  EXPECT_EQ(rt.engine().live_vertices(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Schedulers, SchedulerEquivalence,
                         ::testing::Values("ws", "private"));

TEST(SchedulerSpec, UnknownSpecThrows) {
  runtime_config cfg{1, "dyn"};
  cfg.sched = "bogus";
  EXPECT_THROW(runtime rt(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace spdag
