#pragma once
// Small fast PRNGs for the library and the benchmark harness.
//
// The dynamic-SNZI grow operation needs a cheap thread-local biased coin
// (paper section 2: "flip a p-biased coin"); std::mt19937 is far too heavy to
// sit on the critical path of a counter increment.

#include <cstdint>

namespace spdag {

// SplitMix64: used to seed the main generator and as a standalone mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Stateless mix of a 64-bit value (useful for hashing vertex ids onto
// fixed-depth SNZI leaves, mirroring the paper's hash placement).
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  std::uint64_t s = x;
  return splitmix64(s);
}

// xoshiro256** by Blackman & Vigna: 4x64-bit state, excellent quality,
// a handful of cycles per draw.
class xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& w : state_) w = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform draw in [0, bound). Bound must be > 0. Uses the fixed-point
  // multiply trick (Lemire); bias is negligible for our bounds.
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(operator()()) * bound) >> 64);
  }

  // True with probability num/den (a p-biased coin).
  constexpr bool flip(std::uint64_t num, std::uint64_t den) noexcept {
    return below(den) < num;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

// Per-thread generator, seeded from the thread identity so workers draw
// independent streams without synchronization.
inline xoshiro256& thread_rng() noexcept {
  thread_local xoshiro256 rng{
      mix64(reinterpret_cast<std::uintptr_t>(&rng) ^ 0x2545f4914f6cdd1dULL)};
  return rng;
}

}  // namespace spdag
