#pragma once
// Deterministic single-threaded executor.
//
// Runs ready vertices from a FIFO queue on the calling thread. Used by the
// structural tests (deterministic interleaving) and as a baseline sanity
// check that a dag program's result does not depend on the scheduler.

#include <deque>

#include "dag/engine.hpp"

namespace spdag {

class serial_executor final : public executor {
 public:
  void enqueue(vertex* v) override { queue_.push_back(v); }

  // Executes until no vertex is ready. Returns the number executed.
  std::size_t run_all(dag_engine& engine) {
    std::size_t n = 0;
    while (!queue_.empty()) {
      vertex* v = queue_.front();
      queue_.pop_front();
      engine.execute(v);
      ++n;
    }
    return n;
  }

  bool idle() const noexcept { return queue_.empty(); }
  std::size_t pending() const noexcept { return queue_.size(); }

 private:
  std::deque<vertex*> queue_;
};

}  // namespace spdag
