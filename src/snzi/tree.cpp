#include "snzi/tree.hpp"

#include <algorithm>

namespace spdag::snzi {

snzi_tree::snzi_tree(std::uint64_t initial_surplus, tree_config cfg)
    : arena_(cfg.arena_chunk_bytes), root_(0, cfg.stats) {
  ctx_.root = &root_;
  ctx_.arena = &arena_;
  ctx_.stats = cfg.stats;
  ctx_.grow_threshold = cfg.grow_threshold;
  ctx_.reclaim = cfg.reclaim && cfg.grow_threshold == 1;
  base_.init(nullptr, nullptr, &ctx_);
  for (std::uint64_t i = 0; i < initial_surplus; ++i) base_.arrive();
}

void snzi_tree::reset(std::uint64_t initial_surplus) {
  // Forget every node: the recycling pool holds pointers into the arena, so
  // it must be cleared before the arena is rewound.
  while (free_pair_pop(ctx_) != nullptr) {
  }
  arena_.reset_nonconcurrent();
  root_.reset(0);
  base_.init(nullptr, nullptr, &ctx_);
  for (std::uint64_t i = 0; i < initial_surplus; ++i) base_.arrive();
}

std::size_t snzi_tree::node_count() const {
  std::size_t n = 0;
  for_each_node([&](const node&, std::size_t) { ++n; });
  return n;
}

std::size_t snzi_tree::max_depth() const {
  std::size_t d = 0;
  for_each_node([&](const node&, std::size_t depth) { d = std::max(d, depth); });
  return d;
}

std::uint32_t snzi_tree::max_node_ops() const {
  std::uint32_t m = 0;
  for_each_node([&](const node& n, std::size_t) { m = std::max(m, n.ops()); });
  return m;
}

}  // namespace spdag::snzi
