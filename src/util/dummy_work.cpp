#include "util/dummy_work.hpp"

#include <atomic>
#include <chrono>

namespace spdag {

namespace {

std::atomic<std::uint64_t> g_sink{0};

double measure_units_per_ns() {
  using clock = std::chrono::steady_clock;
  // Warm up, then time a block large enough to swamp clock granularity.
  sink(spin_work(10'000));
  constexpr std::uint64_t units = 2'000'000;
  const auto t0 = clock::now();
  sink(spin_work(units));
  const auto t1 = clock::now();
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count();
  if (ns <= 0) return 1.0;
  return static_cast<double>(units) / static_cast<double>(ns);
}

}  // namespace

std::uint64_t spin_work(std::uint64_t units) noexcept {
  // xorshift-style mixing: serial dependency chain, one multiply + shifts
  // per unit, so the work scales linearly and cannot be vectorized away.
  std::uint64_t x = units | 1;
  for (std::uint64_t i = 0; i < units; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
  }
  return x;
}

void sink(std::uint64_t v) noexcept {
  g_sink.store(v, std::memory_order_relaxed);
}

double spin_units_per_ns() noexcept {
  static const double rate = measure_units_per_ns();
  return rate;
}

void spin_ns(std::uint64_t ns) noexcept {
  if (ns == 0) return;
  const double rate = spin_units_per_ns();
  sink(spin_work(static_cast<std::uint64_t>(rate * static_cast<double>(ns)) + 1));
}

}  // namespace spdag
