#pragma once
// parallel_for: the parallel-loop pattern on top of the sp-dag.
//
// The paper's introduction motivates the in-counter with exactly this
// pattern — "a parallel-for, where a number of independent computations are
// forked to execute in parallel and synchronize at termination" — i.e., a
// fanin whose finish counter absorbs the contention. The range is split
// recursively with fork2 until it is at most `grain` wide, then executed
// serially.
//
// Like fork2/finish_then, a call must be the LAST dag action of the current
// vertex body (the loop's completion is observed by the enclosing finish,
// not by code after the call). For sequencing, pass the continuation to
// finish_then:   finish_then([..]{ parallel_for(...); }, continuation).

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>

#include "dag/engine.hpp"

namespace spdag {

namespace detail {

// Recursive range task. F is copied into both halves on every split, so it
// should be a small view (pointers/references), like any vertex body.
template <typename F>
struct pfor_range {
  std::size_t lo;
  std::size_t hi;
  std::size_t grain;
  F f;

  void operator()() {
    std::size_t a = lo;
    const std::size_t b = hi;
    if (b - a <= grain) {
      for (; a < b; ++a) f(a);
      return;
    }
    const std::size_t mid = a + (b - a) / 2;
    fork2(pfor_range<F>{a, mid, grain, f}, pfor_range<F>{mid, b, grain, f});
  }
};

// Widest batch one vertex issues: bounds the gen loop a single body runs
// and keeps spawn_batch on its stack-local vertex array.
inline constexpr std::size_t pfor_batch_width = 32;

// Blocked range task: instead of halving recursively (one counter operation
// per split), it cuts the range into up to `pfor_batch_width` pieces with ONE
// batched increment. Ranges wider than width * grain first batch out
// super-blocks, each of which recurses — so a k-chunk loop costs
// O(k / width) counter operations instead of k - 1.
template <typename F>
struct pfor_blocked {
  std::size_t lo;
  std::size_t hi;
  std::size_t grain;
  F f;

  void operator()() {
    const std::size_t n = hi - lo;
    const std::size_t chunks = (n + grain - 1) / grain;
    if (chunks <= 1) {
      for (std::size_t i = lo; i < hi; ++i) f(i);
      return;
    }
    dag_engine* eng = dag_engine::current_engine();
    vertex* u = dag_engine::current_vertex();
    // Capture fields by value: spawn_batch kills this vertex, and the body
    // that holds `this` dies with it.
    const std::size_t a0 = lo;
    const std::size_t b0 = hi;
    const std::size_t g = grain;
    if (chunks <= pfor_batch_width) {
      eng->spawn_batch(
          u, static_cast<std::uint32_t>(chunks),
          [a0, b0, g, this](std::uint32_t i) {
            const std::size_t a = a0 + static_cast<std::size_t>(i) * g;
            const std::size_t b = std::min(b0, a + g);
            F fn = f;  // gen runs before *this dies (spawn_batch is sync)
            return [a, b, fn]() mutable {
              for (std::size_t j = a; j < b; ++j) fn(j);
            };
          });
      return;
    }
    // Super-blocks: each covers `per` iterations and recurses.
    const std::size_t per =
        ((chunks + pfor_batch_width - 1) / pfor_batch_width) * g;
    const std::size_t nsup = (n + per - 1) / per;
    eng->spawn_batch(u, static_cast<std::uint32_t>(nsup),
                     [a0, b0, g, per, this](std::uint32_t i) {
                       const std::size_t a = a0 + static_cast<std::size_t>(i) * per;
                       const std::size_t b = std::min(b0, a + per);
                       return pfor_blocked<F>{a, b, g, f};
                     });
  }
};

}  // namespace detail

// Applies f(i) for every i in [lo, hi), in parallel, with serial chunks of
// at most `grain` iterations. Must be the last dag action of the current
// vertex body. A zero grain is treated as 1. Empty ranges are a no-op.
//
// f itself may perform dag operations (fork2, a nested parallel_for, ...)
// only when grain == 1: with larger grains f runs several times inside one
// chunk vertex, and a dag operation kills that vertex mid-chunk.
template <typename F>
void parallel_for(std::size_t lo, std::size_t hi, std::size_t grain, F f) {
  if (lo >= hi) return;
  detail::pfor_range<F>{lo, hi, grain == 0 ? 1 : grain, std::move(f)}();
}

// Batched variant of parallel_for: same contract (last dag action, serial
// chunks of at most `grain`, grain > 1 forbids dag operations inside f), but
// the fan-out uses spawn_batch so a loop of k chunks costs O(k / 32) counter
// increments instead of k - 1 — the amortization `counter_ops_per_edge`
// measures. The chunk vertices share increment handles (vertex::shared_inc),
// which is safe because every unclaimed chunk pins the batch's SNZI node
// positive until the whole group has departed.
template <typename F>
void parallel_for_blocked(std::size_t lo, std::size_t hi, std::size_t grain,
                          F f) {
  if (lo >= hi) return;
  detail::pfor_blocked<F>{lo, hi, grain == 0 ? 1 : grain, std::move(f)}();
}

}  // namespace spdag
