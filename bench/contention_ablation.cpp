// Contention ablation: diffusion (elimination / flat combining) vs
// tree-structuring, across the runtime's three single-cache-line hot spots.
//
// The paper (section 5) fixes in-counter contention by tree-structuring
// (SNZI); this bench charts the OTHER classic remedy — diffusing the traffic
// in place — against both the contended baseline and the tree, for each hot
// spot:
//
//   pool     {pool, pool:elim}          slab recycle-list storm: cross-thread
//                                       alloc/free pairs rendezvous on the
//                                       elimination array instead of the
//                                       Treiber list (src/mem/slab_pool.cpp)
//   outset   {simple, simple:fc, tree}  add/finalize races: the fc variant
//                                       batches adds behind one combiner CAS
//                                       (src/outset/fc_outset.cpp), the tree
//                                       spreads them structurally
//   counter  {faa, fc, dyn}             arrive/depart storms: fc batches
//                                       deltas into one fetch_add
//                                       (src/counter/fc_counter.hpp), dyn is
//                                       the paper's tree answer
//
// Every record carries exactly-once conservation evidence (attempted ==
// accounted) plus the diffusion counters (eliminations / combined_ops /
// combiner_passes / fallthroughs), and CI gates on them with
// scripts/perf_smoke_gate.py --contention: a diffused spec at procs >= 2
// must actually diffuse (eliminations + combined_ops > 0). Storms retry a
// bounded number of rounds so a scheduling fluke on the 1-core runner can't
// flake the gate; totals are cumulative across retries, so conservation
// still holds exactly.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "counter/fc_counter.hpp"
#include "harness/bench_runner.hpp"
#include "incounter/factory.hpp"
#include "mem/slab_pool.hpp"
#include "outset/factory.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"

namespace {

using namespace spdag;

// Retry rounds for the gate's diffusion requirement (see file comment).
constexpr int kMaxRounds = 8;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// --- pool storm --------------------------------------------------------------

struct pool_cell {
  std::uint64_t payload[6];
};

// Cross-thread alloc/free pairs: each thread allocates a batch, hands it to
// its neighbor, and frees whatever lands in its own queue — the free side
// overflows magazines (flush -> elimination offer / Treiber push) while the
// alloc side drains them (refill -> elimination take / Treiber pop).
void run_pool_storm(slab_pool<pool_cell>& pool, std::size_t procs,
                    std::uint64_t ops_per_thread) {
  struct handoff {
    std::mutex mu;
    std::deque<pool_cell*> q;
  };
  std::vector<handoff> queues(procs);
  std::atomic<bool> go{false};
  const std::uint64_t batch = 2u * pool.magazine_slots();
  const std::uint64_t rounds = ops_per_thread / batch + 1;

  auto worker = [&](std::size_t me) {
    while (!go.load(std::memory_order_acquire)) {
    }
    for (std::uint64_t r = 0; r < rounds; ++r) {
      std::vector<pool_cell*> mine;
      mine.reserve(batch);
      for (std::uint64_t i = 0; i < batch; ++i) mine.push_back(pool.create());
      {
        handoff& h = queues[(me + 1) % procs];
        std::lock_guard<std::mutex> lock(h.mu);
        for (pool_cell* c : mine) h.q.push_back(c);
      }
      std::vector<pool_cell*> theirs;
      {
        handoff& h = queues[me];
        std::lock_guard<std::mutex> lock(h.mu);
        theirs.assign(h.q.begin(), h.q.end());
        h.q.clear();
      }
      for (pool_cell* c : theirs) pool.destroy(c);
    }
  };

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < procs; ++t) threads.emplace_back(worker, t);
  go.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();
  // Stranded handoffs (the last batch each thread pushed) drain here.
  for (auto& h : queues) {
    for (pool_cell* c : h.q) pool.destroy(c);
    h.q.clear();
  }
}

void bench_pools(std::size_t procs, std::uint64_t n, int runs) {
  for (const bool elim : {false, true}) {
    const std::string spec = elim ? "pool:elim" : "pool";
    slab_pool<pool_cell> pool("contention", slab_cache::default_slab_bytes,
                              /*magazine_bytes=*/0, /*adaptive=*/false, elim);
    const auto t0 = std::chrono::steady_clock::now();
    int rounds = 0;
    for (; rounds < kMaxRounds; ++rounds) {
      run_pool_storm(pool, procs, n);
      if (!elim || procs < 2 || pool.stats().eliminations > 0) break;
    }
    const double wall = seconds_since(t0);
    const pool_stats s = pool.stats();
    const double attempted = static_cast<double>(s.allocs);
    // Conservation: every allocated cell was freed and none double-freed.
    const double accounted =
        s.live() == 0 ? static_cast<double>(s.frees) : -1.0;

    std::printf(
        "contention/pool/%s proc=%zu ops=%llu eliminations=%llu "
        "timeouts=%llu wall=%.3fs\n",
        spec.c_str(), procs, static_cast<unsigned long long>(s.allocs),
        static_cast<unsigned long long>(s.eliminations),
        static_cast<unsigned long long>(s.elim_timeouts), wall);

    if (harness::json_enabled()) {
      harness::json_record rec;
      rec.name = "contention/pool/";
      rec.name += spec;
      rec.name += "/proc:";
      rec.name += std::to_string(procs);
      rec.spec = spec;
      rec.proc = procs;
      rec.runs = runs;
      rec.ops_per_s = wall > 0 ? attempted / wall : 0.0;
      rec.wall_s = wall;
      rec.pool_totals = s;
      rec.extra.emplace_back("attempted", attempted);
      rec.extra.emplace_back("accounted", accounted);
      rec.extra.emplace_back("diffused", elim ? 1.0 : 0.0);
      rec.extra.emplace_back("eliminations",
                             static_cast<double>(s.eliminations));
      rec.extra.emplace_back("elim_timeouts",
                             static_cast<double>(s.elim_timeouts));
      rec.extra.emplace_back("combined_ops", 0.0);
      rec.extra.emplace_back("combiner_passes", 0.0);
      rec.extra.emplace_back("fallthroughs", 0.0);
      rec.extra.emplace_back("storm_rounds", static_cast<double>(rounds + 1));
      harness::json_add(std::move(rec));
    }
  }
}

// --- outset storm ------------------------------------------------------------

struct outset_delivery {
  outset_factory* factory = nullptr;
  std::atomic<std::uint64_t> delivered{0};

  static void sink(void* ctx, outset_waiter* w) {
    auto* d = static_cast<outset_delivery*>(ctx);
    d->delivered.fetch_add(1, std::memory_order_relaxed);
    d->factory->release_waiter(w);
  }
};

void bench_outsets(std::size_t procs, std::uint64_t n, int runs) {
  for (const std::string& spec :
       {std::string("simple"), std::string("simple:fc"),
        std::string("tree")}) {
    const bool diffused = spec == "simple:fc";
    slab_pool_registry reg;
    auto factory = make_outset_factory(spec, &reg);
    outset_delivery log{factory.get()};
    std::uint64_t attempted = 0;
    std::uint64_t self_delivered = 0;
    const auto t0 = std::chrono::steady_clock::now();
    int rounds = 0;
    for (; rounds < kMaxRounds; ++rounds) {
      // Adders race a mid-wave finalize: every waiter is either captured
      // (delivered by the finalize drain) or rejected (its adder
      // self-delivers) — exactly once either way.
      outset* o = factory->acquire();
      std::atomic<bool> go{false};
      std::atomic<std::uint64_t> selfs{0};
      std::vector<std::thread> adders;
      for (std::size_t t = 0; t < procs; ++t) {
        adders.emplace_back([&] {
          while (!go.load(std::memory_order_acquire)) {
          }
          for (std::uint64_t i = 0; i < n; ++i) {
            outset_waiter* w = factory->acquire_waiter(
                reinterpret_cast<vertex*>(0x10), nullptr);
            if (!o->add(w)) {
              selfs.fetch_add(1, std::memory_order_relaxed);
              factory->release_waiter(w);
            }
          }
        });
      }
      std::thread finalizer([&] {
        go.store(true, std::memory_order_release);
        std::this_thread::yield();
        o->finalize(&outset_delivery::sink, &log);
      });
      for (auto& th : adders) th.join();
      finalizer.join();
      factory->release(o);
      attempted += static_cast<std::uint64_t>(procs) * n;
      self_delivered += selfs.load(std::memory_order_relaxed);
      if (!diffused || procs < 2 || factory->totals().combined_ops > 0) break;
    }
    const double wall = seconds_since(t0);
    const outset_totals t = factory->totals();
    const double accounted = static_cast<double>(
        log.delivered.load(std::memory_order_relaxed) + self_delivered);

    std::printf(
        "contention/outset/%s proc=%zu adds=%llu combined=%llu passes=%llu "
        "fallthroughs=%llu retries=%llu wall=%.3fs\n",
        spec.c_str(), procs, static_cast<unsigned long long>(attempted),
        static_cast<unsigned long long>(t.combined_ops),
        static_cast<unsigned long long>(t.combiner_passes),
        static_cast<unsigned long long>(t.fallthroughs),
        static_cast<unsigned long long>(t.add_cas_retries), wall);

    if (harness::json_enabled()) {
      harness::json_record rec;
      rec.name = "contention/outset/";
      rec.name += spec;
      rec.name += "/proc:";
      rec.name += std::to_string(procs);
      rec.spec = spec;
      rec.proc = procs;
      rec.runs = runs;
      rec.ops_per_s =
          wall > 0 ? static_cast<double>(attempted) / wall : 0.0;
      rec.wall_s = wall;
      rec.outsets = t;
      rec.extra.emplace_back("attempted", static_cast<double>(attempted));
      rec.extra.emplace_back("accounted", accounted);
      rec.extra.emplace_back("diffused", diffused ? 1.0 : 0.0);
      rec.extra.emplace_back("eliminations", 0.0);
      rec.extra.emplace_back("combined_ops",
                             static_cast<double>(t.combined_ops));
      rec.extra.emplace_back("combiner_passes",
                             static_cast<double>(t.combiner_passes));
      rec.extra.emplace_back("fallthroughs",
                             static_cast<double>(t.fallthroughs));
      rec.extra.emplace_back("add_cas_retries",
                             static_cast<double>(t.add_cas_retries));
      rec.extra.emplace_back("storm_rounds", static_cast<double>(rounds + 1));
      harness::json_add(std::move(rec));
    }
  }
}

// --- counter storm -----------------------------------------------------------

void bench_counters(std::size_t procs, std::uint64_t n, int runs) {
  for (const std::string& spec :
       {std::string("faa"), std::string("fc"), std::string("dyn")}) {
    const bool diffused = spec == "fc";
    auto factory = make_counter_factory(spec);
    std::uint64_t attempted = 0;
    std::uint64_t accounted = 0;
    const auto t0 = std::chrono::steady_clock::now();
    int rounds = 0;
    for (; rounds < kMaxRounds; ++rounds) {
      // Each thread builds short arrive chains from its own handle and
      // resolves them LIFO (the disciplined claim order reclamation needs);
      // the root obligation resolves last, so exactly the final depart may
      // report zero.
      constexpr std::uint64_t kChain = 32;
      dep_counter* c = factory->acquire(1);
      std::atomic<bool> go{false};
      std::atomic<std::uint64_t> zeros{0};
      std::vector<std::thread> threads;
      for (std::size_t t = 0; t < procs; ++t) {
        threads.emplace_back([&] {
          while (!go.load(std::memory_order_acquire)) {
          }
          std::vector<token> decs;
          decs.reserve(kChain);
          for (std::uint64_t done = 0; done < n; done += kChain) {
            decs.clear();
            token inc = c->root_token();
            for (std::uint64_t i = 0; i < kChain; ++i) {
              const arrive_result r = c->arrive(inc, (i & 1) == 0);
              decs.push_back(r.dec);
              inc = r.inc_right;
            }
            for (auto it = decs.rbegin(); it != decs.rend(); ++it) {
              if (c->depart(*it)) zeros.fetch_add(1);
            }
          }
        });
      }
      go.store(true, std::memory_order_release);
      for (auto& th : threads) th.join();
      const bool root_zero = c->depart(c->root_token());
      const std::uint64_t pairs =
          static_cast<std::uint64_t>(procs) * ((n + kChain - 1) / kChain) *
          kChain;
      attempted += pairs + 1;  // + the root obligation
      // Exactly-once readiness: no storm depart saw zero (the root
      // obligation was outstanding throughout) and the root depart did.
      const bool conserved = zeros.load() == 0 && root_zero && c->is_zero();
      accounted += conserved ? pairs + 1 : 0;
      factory->release(c);
      if (!diffused || procs < 2) break;
      auto* fcf = dynamic_cast<fc_factory*>(factory.get());
      if (fcf != nullptr && fcf->combining_totals().combined_ops > 0) break;
    }
    const double wall = seconds_since(t0);
    counter_combining_totals ct;
    if (auto* fcf = dynamic_cast<fc_factory*>(factory.get())) {
      ct = fcf->combining_totals();
    }

    std::printf(
        "contention/counter/%s proc=%zu pairs=%llu combined=%llu "
        "passes=%llu fallthroughs=%llu wall=%.3fs\n",
        spec.c_str(), procs, static_cast<unsigned long long>(attempted),
        static_cast<unsigned long long>(ct.combined_ops),
        static_cast<unsigned long long>(ct.combiner_passes),
        static_cast<unsigned long long>(ct.fallthroughs), wall);

    if (harness::json_enabled()) {
      harness::json_record rec;
      rec.name = "contention/counter/";
      rec.name += spec;
      rec.name += "/proc:";
      rec.name += std::to_string(procs);
      rec.spec = spec;
      rec.proc = procs;
      rec.runs = runs;
      rec.ops_per_s =
          wall > 0 ? static_cast<double>(attempted) / wall : 0.0;
      rec.wall_s = wall;
      rec.extra.emplace_back("attempted", static_cast<double>(attempted));
      rec.extra.emplace_back("accounted", static_cast<double>(accounted));
      rec.extra.emplace_back("diffused", diffused ? 1.0 : 0.0);
      rec.extra.emplace_back("eliminations", 0.0);
      rec.extra.emplace_back("combined_ops",
                             static_cast<double>(ct.combined_ops));
      rec.extra.emplace_back("combiner_passes",
                             static_cast<double>(ct.combiner_passes));
      rec.extra.emplace_back("fallthroughs",
                             static_cast<double>(ct.fallthroughs));
      rec.extra.emplace_back("storm_rounds", static_cast<double>(rounds + 1));
      harness::json_add(std::move(rec));
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  options opts(argc, argv);
  harness::json_open(opts, "contention_ablation");
  const harness::common_options common = harness::read_common(opts, 1 << 13);

  std::printf("# contention_ablation: diffusion (elim/fc) vs tree, n=%llu "
              "per thread, procs up to %zu\n",
              static_cast<unsigned long long>(common.n), common.max_proc);

  for (const std::size_t procs : harness::worker_sweep(common.max_proc, 3)) {
    bench_pools(procs, common.n, common.runs);
    bench_outsets(procs, common.n, common.runs);
    bench_counters(procs, common.n, common.runs);
  }
  return harness::json_write();
}
