#include "mem/epoch.hpp"

#include <atomic>
#include <cassert>
#include <mutex>
#include <vector>

#include "mem/thread_slot.hpp"
#include "obs/trace.hpp"

namespace spdag::mem::epoch {

namespace {

constexpr std::uint64_t k_unpinned = ~std::uint64_t{0};

// One record per dense thread slot, cache-line isolated: the owner writes
// its epoch on pin/refresh, the advancing thread scans all of them. `depth`
// is owner-only (pin nesting), never read cross-thread.
struct alignas(64) slot_record {
  std::atomic<std::uint64_t> epoch{k_unpinned};
  std::uint32_t depth = 0;
};

slot_record g_records[max_thread_slots];
std::atomic<std::uint64_t> g_epoch{0};

// Threads past the dense-slot supply pin anonymously: no record to scan, so
// any live anonymous pin simply blocks advancement. Conservative, and rare
// by construction (mirrors the slab cache's magazine-less bypass).
std::atomic<std::uint64_t> g_anon_pins{0};
thread_local std::uint32_t tl_anon_depth = 0;

thread_local std::uint32_t tl_tick_phase = 0;

struct limbo_item {
  reclaim_fn fn;
  void* a;
  void* b;
  std::uint64_t epoch;  // global epoch when retired
};

// Limbo list + its size mirror. The count is only ever stored under the
// mutex, so it is an exact mirror readers may probe without the lock.
std::mutex g_limbo_mu;
std::vector<limbo_item> g_limbo;
std::atomic<std::size_t> g_limbo_count{0};

// Serializes record scans (try_advance) and the lag-gauge bookkeeping.
std::mutex g_advance_mu;
std::int64_t g_lag_published = 0;  // guarded by g_advance_mu

// Must be called with g_advance_mu held.
void publish_lag(std::int64_t lag) noexcept {
  if (lag == g_lag_published) return;
  obs::gauge_add(obs::g_epoch_lag, lag - g_lag_published);
  g_lag_published = lag;
}

}  // namespace

namespace detail {

void pin_slow() noexcept {
  const int slot = thread_slot();
  if (slot < 0) {
    if (tl_anon_depth++ == 0) {
      g_anon_pins.fetch_add(1, std::memory_order_seq_cst);
    }
    return;
  }
  slot_record& r = g_records[slot];
  if (r.depth++ != 0) return;
  // Publish the epoch we entered under, then re-read until stable: the
  // seq_cst store orders against try_advance's scan, and the re-read closes
  // the window where we publish e just as the global moves to e+1 — after
  // this loop our record never lags the epoch our first shared read can
  // observe.
  std::uint64_t e = g_epoch.load(std::memory_order_seq_cst);
  for (;;) {
    r.epoch.store(e, std::memory_order_seq_cst);
    const std::uint64_t now = g_epoch.load(std::memory_order_seq_cst);
    if (now == e) break;
    e = now;
  }
}

void unpin_slow() noexcept {
  const int slot = thread_slot();
  if (slot < 0) {
    assert(tl_anon_depth > 0 && "epoch unpin without matching pin");
    if (--tl_anon_depth == 0) {
      g_anon_pins.fetch_sub(1, std::memory_order_seq_cst);
    }
    return;
  }
  slot_record& r = g_records[slot];
  assert(r.depth > 0 && "epoch unpin without matching pin");
  if (--r.depth == 0) {
    r.epoch.store(k_unpinned, std::memory_order_release);
  }
}

void refresh_slow() noexcept {
  const int slot = thread_slot();
  if (slot < 0) return;  // anonymous pins have nothing to republish
  slot_record& r = g_records[slot];
  if (r.depth == 0) return;
  const std::uint64_t e = g_epoch.load(std::memory_order_relaxed);
  if (r.epoch.load(std::memory_order_relaxed) == e) return;  // common case
  r.epoch.store(e, std::memory_order_seq_cst);
}

void tick_slow() noexcept {
  refresh_slow();
  // Nothing waiting: refresh alone keeps this thread from ever becoming
  // the laggard, and there is no reclamation to drive.
  if (g_limbo_count.load(std::memory_order_relaxed) == 0) return;
  if ((++tl_tick_phase & 63u) != 0) return;
  try_advance();
  reclaim();
}

bool pinned_slow() noexcept {
  const int slot = thread_slot();
  if (slot < 0) return tl_anon_depth > 0;
  return g_records[slot].depth > 0;
}

}  // namespace detail

std::uint64_t current() noexcept {
  return g_epoch.load(std::memory_order_seq_cst);
}

bool try_advance() noexcept {
  if (!enabled()) return false;
  std::unique_lock<std::mutex> lk(g_advance_mu, std::try_to_lock);
  if (!lk.owns_lock()) return false;  // someone else is scanning
  const std::uint64_t e = g_epoch.load(std::memory_order_seq_cst);
  bool caught_up = g_anon_pins.load(std::memory_order_seq_cst) == 0;
  std::uint64_t oldest = e;
  for (std::size_t s = 0; s < max_thread_slots; ++s) {
    const std::uint64_t v = g_records[s].epoch.load(std::memory_order_seq_cst);
    if (v == k_unpinned) continue;
    if (v < oldest) oldest = v;
    if (v != e) caught_up = false;
  }
  publish_lag(static_cast<std::int64_t>(e - oldest));
  if (!caught_up) return false;
  std::uint64_t expect = e;
  if (!g_epoch.compare_exchange_strong(expect, e + 1,
                                       std::memory_order_seq_cst)) {
    return false;
  }
  obs::emit(obs::ev_epoch_advance, 0, static_cast<std::uint32_t>(e + 1));
  return true;
}

void retire(reclaim_fn fn, void* a, void* b) noexcept {
  if (!enabled()) {
    // Compiled out: nobody pins, so deferral would never resolve. The
    // caller's contract (memory already unreachable) makes immediate
    // reclamation the only correct reading.
    fn(a, b);
    return;
  }
  const std::uint64_t e = g_epoch.load(std::memory_order_seq_cst);
  std::lock_guard<std::mutex> lk(g_limbo_mu);
  g_limbo.push_back(limbo_item{fn, a, b, e});
  g_limbo_count.store(g_limbo.size(), std::memory_order_release);
}

std::size_t reclaim() noexcept {
  if (g_limbo_count.load(std::memory_order_acquire) == 0) return 0;
  const std::uint64_t cur = g_epoch.load(std::memory_order_seq_cst);
  std::vector<limbo_item> ready;
  {
    std::lock_guard<std::mutex> lk(g_limbo_mu);
    std::size_t kept = 0;
    for (std::size_t i = 0; i < g_limbo.size(); ++i) {
      if (g_limbo[i].epoch + 2 <= cur) {
        ready.push_back(g_limbo[i]);
      } else {
        g_limbo[kept++] = g_limbo[i];
      }
    }
    g_limbo.resize(kept);
    g_limbo_count.store(kept, std::memory_order_release);
  }
  // Callbacks run outside the limbo lock (they take pool-internal locks and
  // emit trace events).
  for (const limbo_item& it : ready) it.fn(it.a, it.b);
  return ready.size();
}

std::size_t flush_owner(void* a) noexcept {
  std::vector<limbo_item> ready;
  {
    std::lock_guard<std::mutex> lk(g_limbo_mu);
    std::size_t kept = 0;
    for (std::size_t i = 0; i < g_limbo.size(); ++i) {
      if (g_limbo[i].a == a) {
        ready.push_back(g_limbo[i]);
      } else {
        g_limbo[kept++] = g_limbo[i];
      }
    }
    g_limbo.resize(kept);
    g_limbo_count.store(kept, std::memory_order_release);
  }
  for (const limbo_item& it : ready) it.fn(it.a, it.b);
  return ready.size();
}

std::size_t limbo_size() noexcept {
  return g_limbo_count.load(std::memory_order_acquire);
}

std::uint64_t lag() noexcept {
  const std::uint64_t e = g_epoch.load(std::memory_order_seq_cst);
  std::uint64_t oldest = e;
  for (std::size_t s = 0; s < max_thread_slots; ++s) {
    const std::uint64_t v = g_records[s].epoch.load(std::memory_order_seq_cst);
    if (v != k_unpinned && v < oldest) oldest = v;
  }
  return e - oldest;
}

}  // namespace spdag::mem::epoch
