// Tests for appendix-B reclamation: nodes whose surplus phase-changed back
// to zero are retired; when both siblings of a pair retire, the pair is
// unlinked and recycled through the grow() pool.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "snzi/tree.hpp"

namespace spdag::snzi {
namespace {

tree_config reclaiming(tree_stats* stats = nullptr) {
  return tree_config{/*grow_threshold=*/1, /*reclaim=*/true, stats};
}

TEST(SnziReclaim, DrainedPairIsRecycled) {
  tree_stats stats;
  snzi_tree t(0, reclaiming(&stats));
  auto [a, b] = t.base()->grow(1);
  a->arrive();
  b->arrive();
  a->depart();
  EXPECT_EQ(stats.retires.load(), 1u);
  EXPECT_EQ(stats.pair_recycles.load(), 0u) << "one sibling still has surplus";
  b->depart();
  EXPECT_EQ(stats.retires.load(), 2u);
  EXPECT_EQ(stats.pair_recycles.load(), 1u);
  EXPECT_FALSE(t.base()->has_children()) << "pair unlinked from the parent";
  EXPECT_EQ(t.recycled_pool_size(), 1u);
}

TEST(SnziReclaim, HalfDrainedPairStaysLinked) {
  tree_stats stats;
  snzi_tree t(0, reclaiming(&stats));
  auto [a, b] = t.base()->grow(1);
  (void)b;
  a->arrive();
  a->depart();
  EXPECT_EQ(stats.retires.load(), 1u);
  EXPECT_TRUE(t.base()->has_children())
      << "a pair with an unused sibling must never be recycled";
  EXPECT_EQ(t.recycled_pool_size(), 0u);
}

TEST(SnziReclaim, GrowPrefersRecycledPairs) {
  tree_stats stats;
  snzi_tree t(0, reclaiming(&stats));
  auto [a, b] = t.base()->grow(1);
  a->arrive();
  b->arrive();
  a->depart();
  b->depart();
  ASSERT_EQ(t.recycled_pool_size(), 1u);
  // The next grow anywhere in the tree must reuse the pooled pair.
  auto [c, d] = t.base()->grow(1);
  (void)c;
  (void)d;
  EXPECT_EQ(stats.grow_reuses.load(), 1u);
  EXPECT_EQ(t.recycled_pool_size(), 0u);
  EXPECT_EQ(stats.grow_allocs.load(), 1u) << "only the first grow drew from the pool";
}

TEST(SnziReclaim, RecycledNodesComeBackClean) {
  snzi_tree t(0, reclaiming());
  auto [a, b] = t.base()->grow(1);
  a->arrive();
  b->arrive();
  a->depart();
  b->depart();
  auto [c, d] = t.base()->grow(1);
  EXPECT_EQ(c->surplus_half(), 0u);
  EXPECT_EQ(d->surplus_half(), 0u);
  EXPECT_FALSE(c->has_children());
  EXPECT_FALSE(d->has_children());
  // And they are fully functional.
  c->arrive();
  EXPECT_TRUE(t.query());
  EXPECT_TRUE(c->depart());
  EXPECT_FALSE(t.query());
}

TEST(SnziReclaim, ReclaimDisabledKeepsNodesLinked) {
  tree_stats stats;
  snzi_tree t(0, tree_config{1, /*reclaim=*/false, &stats});
  auto [a, b] = t.base()->grow(1);
  a->arrive();
  b->arrive();
  a->depart();
  b->depart();
  EXPECT_EQ(stats.retires.load(), 0u);
  EXPECT_TRUE(t.base()->has_children());
  EXPECT_EQ(t.node_count(), 3u);
}

TEST(SnziReclaim, ReclaimIgnoredForProbabilisticGrowth) {
  // The safety argument only holds for threshold 1; the tree constructor
  // must refuse to reclaim otherwise even if asked.
  tree_stats stats;
  snzi_tree t(0, tree_config{/*grow_threshold=*/4, /*reclaim=*/true, &stats});
  node* n = t.base();
  // Force growth through the threshold by retrying.
  child_pair* kids = nullptr;
  for (int i = 0; i < 10000 && kids == nullptr; ++i) {
    n->grow(4);
    kids = n->children();
  }
  ASSERT_NE(kids, nullptr);
  kids->left.arrive();
  kids->left.depart();
  EXPECT_EQ(stats.retires.load(), 0u);
}

TEST(SnziReclaim, DeepDrainRecyclesBottomUp) {
  tree_stats stats;
  snzi_tree t(0, reclaiming(&stats));
  // Build a path of depth 4, with surplus at every left child.
  std::vector<node*> path;
  node* n = t.base();
  for (int d = 0; d < 4; ++d) {
    auto [l, r] = n->grow(1);
    l->arrive();
    r->arrive();
    path.push_back(l);
    path.push_back(r);
    n = l;
  }
  // Drain deepest-first; each level's pair should recycle as it drains.
  for (auto it = path.rbegin(); it != path.rend(); ++it) (*it)->depart();
  EXPECT_FALSE(t.query());
  EXPECT_EQ(stats.pair_recycles.load(), 4u);
  EXPECT_EQ(t.node_count(), 1u) << "only the base remains reachable";
  EXPECT_EQ(t.recycled_pool_size(), 4u);
}

TEST(SnziReclaimConcurrent, ChurnThroughRecyclingStaysSound) {
  // Repeatedly grow, load, drain from several threads, each on its own
  // disjoint subtree (the sp-dag discipline guarantees disjointness; here
  // we enforce it structurally).
  tree_stats stats;
  snzi_tree t(0, reclaiming(&stats));
  auto [l, r] = t.base()->grow(1);
  l->arrive();  // standing surplus so subtree churn can't zero the root
  r->arrive();
  constexpr int kIters = 5000;
  std::thread t1([&t, left = l] {
    for (int i = 0; i < kIters; ++i) {
      auto [a, b] = left->grow(1);
      a->arrive();
      b->arrive();
      a->depart();
      b->depart();
      (void)t.query();
    }
  });
  std::thread t2([&t, right = r] {
    for (int i = 0; i < kIters; ++i) {
      auto [a, b] = right->grow(1);
      a->arrive();
      b->arrive();
      a->depart();
      b->depart();
      (void)t.query();
    }
  });
  t1.join();
  t2.join();
  EXPECT_TRUE(t.query());
  l->depart();
  EXPECT_TRUE(r->depart());
  EXPECT_FALSE(t.query());
  // Recycling kept allocation bounded: at most a handful of pairs ever
  // existed despite 2 * kIters grow/drain cycles.
  EXPECT_GE(stats.grow_reuses.load(), stats.grow_allocs.load());
  EXPECT_LT(stats.grow_allocs.load(), 64u);
}

TEST(SnziReclaim, AbandonedVirginSiblingCompletesThePair) {
  // Theorem B.3 case: one sibling drains via departs, the other was never
  // arrived at and is abandoned by its (unique) handle owner.
  tree_stats stats;
  snzi_tree t(0, reclaiming(&stats));
  auto [a, b] = t.base()->grow(1);
  a->arrive();
  a->depart();
  EXPECT_EQ(stats.retires.load(), 1u);
  b->retire_if_unused();
  EXPECT_EQ(stats.retires.load(), 2u);
  EXPECT_EQ(stats.pair_recycles.load(), 1u);
  EXPECT_FALSE(t.base()->has_children());
}

TEST(SnziReclaim, RetireIfUnusedIgnoresTouchedNodes) {
  tree_stats stats;
  snzi_tree t(0, reclaiming(&stats));
  auto [a, b] = t.base()->grow(1);
  (void)b;
  a->arrive();
  a->retire_if_unused();  // has surplus: no-op
  EXPECT_EQ(stats.retires.load(), 0u);
  a->depart();            // phase change retires it (version > 0)
  EXPECT_EQ(stats.retires.load(), 1u);
  a->retire_if_unused();  // version > 0: no double retire
  EXPECT_EQ(stats.retires.load(), 1u);
}

TEST(SnziReclaim, RetireIfUnusedIgnoresNodesWithChildren) {
  tree_stats stats;
  snzi_tree t(0, reclaiming(&stats));
  auto [a, b] = t.base()->grow(1);
  (void)b;
  a->grow(1);  // a is virgin but has children
  a->retire_if_unused();
  EXPECT_EQ(stats.retires.load(), 0u);
}

TEST(SnziReclaim, RetireIfUnusedIsNoopWithoutReclaim) {
  tree_stats stats;
  snzi_tree t(0, tree_config{1, /*reclaim=*/false, &stats});
  auto [a, b] = t.base()->grow(1);
  (void)a;
  b->retire_if_unused();
  EXPECT_EQ(stats.retires.load(), 0u);
}

TEST(SnziReclaim, SpaceStaysBoundedOverManyCycles) {
  snzi_tree t(0, reclaiming());
  const std::size_t before = t.allocated_bytes();
  for (int i = 0; i < 10000; ++i) {
    auto [a, b] = t.base()->grow(1);
    a->arrive();
    b->arrive();
    a->depart();
    b->depart();
  }
  // One pair allocated once, then recycled forever.
  EXPECT_LE(t.allocated_bytes(), before + 4 * sizeof(child_pair));
}

}  // namespace
}  // namespace spdag::snzi
