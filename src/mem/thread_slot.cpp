#include "mem/thread_slot.hpp"

#include <atomic>
#include <cstdint>

namespace spdag::mem {

namespace {

constexpr int kWords = max_thread_slots / 64;
std::atomic<std::uint64_t> slot_bitmap[kWords];  // bit set <=> slot claimed

int acquire_slot() noexcept {
  for (int w = 0; w < kWords; ++w) {
    std::uint64_t bits = slot_bitmap[w].load(std::memory_order_relaxed);
    for (;;) {
      if (bits == ~std::uint64_t{0}) break;  // word full, try the next
      const int bit = __builtin_ctzll(~bits);
      const std::uint64_t want = bits | (std::uint64_t{1} << bit);
      if (slot_bitmap[w].compare_exchange_weak(bits, want,
                                               std::memory_order_acq_rel,
                                               std::memory_order_relaxed)) {
        return w * 64 + bit;
      }
    }
  }
  return -1;
}

void release_slot(int slot) noexcept {
  slot_bitmap[slot / 64].fetch_and(~(std::uint64_t{1} << (slot % 64)),
                                   std::memory_order_acq_rel);
}

// Claims on first use (thread_local dynamic init), releases at thread exit.
// Magazines indexed by the slot stay inside their pools, so a new thread
// inheriting a released slot simply inherits its cached cells. The slot is
// cleared BEFORE the bitmap bit is released: thread_locals destroyed after
// this guard may still reach pools, and they must take the magazine-less
// bypass rather than touch a magazine a new thread may now own.
struct slot_guard {
  int slot = acquire_slot();
  ~slot_guard() {
    const int s = slot;
    slot = -1;
    if (s >= 0) release_slot(s);
  }
};

thread_local slot_guard tls_slot;

}  // namespace

int thread_slot() noexcept { return tls_slot.slot; }

int claimed_thread_slots() noexcept {
  int n = 0;
  for (int w = 0; w < kWords; ++w) {
    n += __builtin_popcountll(slot_bitmap[w].load(std::memory_order_relaxed));
  }
  return n;
}

}  // namespace spdag::mem
