// Parameterized conformance suite: every outset implementation must satisfy
// the same observable contract — exactly-once hand-off of every registered
// waiter across arbitrary add/finalize interleavings. Instantiated over
// out-set specs like counter_conformance_test is over counter specs.
//
// The out-set never dereferences the consumer/engine pointers it carries, so
// these tests tag waiters with fake consumer pointers (an index encoded as a
// pointer) and count deliveries through the sink.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "outset/factory.hpp"
#include "outset/simple_outset.hpp"
#include "outset/tree_outset.hpp"

namespace spdag {
namespace {

vertex* fake_consumer(std::size_t index) {
  return reinterpret_cast<vertex*>((index + 1) << 4);
}
std::size_t consumer_index(const outset_waiter* w) {
  return (reinterpret_cast<std::uintptr_t>(w->consumer) >> 4) - 1;
}

// Sink that counts per-waiter deliveries and repools the record.
struct delivery_log {
  outset_factory* factory = nullptr;
  std::vector<std::atomic<std::uint32_t>> delivered;

  explicit delivery_log(outset_factory* f, std::size_t n)
      : factory(f), delivered(n) {}

  static void sink(void* ctx, outset_waiter* w) {
    auto* log = static_cast<delivery_log*>(ctx);
    log->delivered[consumer_index(w)].fetch_add(1, std::memory_order_relaxed);
    log->factory->release_waiter(w);
  }
};

class OutsetConformance : public ::testing::TestWithParam<std::string> {
 protected:
  // Each fixture owns its pool registry so carved-cell counts below see
  // only this test's traffic (the default registry is process-wide).
  void SetUp() override {
    registry_ = std::make_unique<slab_pool_registry>();
    factory_ = make_outset_factory(GetParam(), registry_.get());
  }
  std::unique_ptr<slab_pool_registry> registry_;
  std::unique_ptr<outset_factory> factory_;
};

TEST_P(OutsetConformance, FinalizeDeliversEveryCapturedWaiterOnce) {
  constexpr std::size_t kWaiters = 100;
  outset* o = factory_->acquire();
  delivery_log log(factory_.get(), kWaiters);
  for (std::size_t i = 0; i < kWaiters; ++i) {
    EXPECT_TRUE(o->add(factory_->acquire_waiter(fake_consumer(i), nullptr)));
  }
  o->finalize(&delivery_log::sink, &log);
  for (std::size_t i = 0; i < kWaiters; ++i) {
    EXPECT_EQ(log.delivered[i].load(), 1u) << "waiter " << i;
  }
  factory_->release(o);
}

TEST_P(OutsetConformance, AddAfterFinalizeIsRejected) {
  outset* o = factory_->acquire();
  delivery_log log(factory_.get(), 1);
  o->finalize(&delivery_log::sink, &log);
  outset_waiter* w = factory_->acquire_waiter(fake_consumer(0), nullptr);
  EXPECT_FALSE(o->add(w)) << "the registrant must self-deliver after finalize";
  factory_->release_waiter(w);
  EXPECT_EQ(log.delivered[0].load(), 0u);
  EXPECT_GE(o->totals().rejected_adds, 1u);
  factory_->release(o);
}

TEST_P(OutsetConformance, FinalizeOnEmptyOutsetDeliversNothing) {
  outset* o = factory_->acquire();
  delivery_log log(factory_.get(), 1);
  o->finalize(&delivery_log::sink, &log);
  EXPECT_EQ(o->totals().delivered, 0u);
  factory_->release(o);
}

TEST_P(OutsetConformance, ExactlyOnceAcrossConcurrentAddsAndFinalize) {
  // The core guarantee: with adders racing the finalizer, every waiter is
  // either captured (delivered by finalize exactly once) or rejected (its
  // adder delivers) — never both, never neither.
  constexpr int kThreads = 4;
  constexpr std::size_t kPerThread = 256;
  for (int round = 0; round < 50; ++round) {
    outset* o = factory_->acquire();
    delivery_log log(factory_.get(), kThreads * kPerThread);
    std::atomic<std::uint32_t> self_delivered{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> adders;
    for (int t = 0; t < kThreads; ++t) {
      adders.emplace_back([&, t] {
        while (!go.load(std::memory_order_acquire)) {
        }
        for (std::size_t i = 0; i < kPerThread; ++i) {
          const std::size_t idx = static_cast<std::size_t>(t) * kPerThread + i;
          outset_waiter* w =
              factory_->acquire_waiter(fake_consumer(idx), nullptr);
          if (!o->add(w)) {
            // Rejected: the "schedule it yourself" path.
            log.delivered[idx].fetch_add(1, std::memory_order_relaxed);
            self_delivered.fetch_add(1, std::memory_order_relaxed);
            factory_->release_waiter(w);
          }
        }
      });
    }
    std::thread finalizer([&] {
      go.store(true, std::memory_order_release);
      // Land the finalize mid-wave.
      std::this_thread::yield();
      o->finalize(&delivery_log::sink, &log);
    });
    for (auto& th : adders) th.join();
    finalizer.join();
    for (std::size_t i = 0; i < log.delivered.size(); ++i) {
      ASSERT_EQ(log.delivered[i].load(), 1u)
          << "round " << round << ", waiter " << i;
    }
    factory_->release(o);
  }
}

TEST_P(OutsetConformance, GroupAddMatchesSingleAdds) {
  // One add_group of a pre-linked chain must be observably identical to n
  // single adds: every waiter delivered exactly once by finalize, n tallied
  // adds, and one group_adds tick (every instantiated spec overrides the
  // base default with a one-CAS capture).
  constexpr std::uint32_t kChain = 64;
  outset* o = factory_->acquire();
  const outset_totals before = o->totals();
  delivery_log log(factory_.get(), kChain);
  std::vector<outset_waiter*> ws(kChain);
  for (std::uint32_t i = 0; i < kChain; ++i) {
    ws[i] = factory_->acquire_waiter(fake_consumer(i), nullptr);
  }
  for (std::uint32_t i = 0; i + 1 < kChain; ++i) {
    ws[i]->next.store(ws[i + 1], std::memory_order_relaxed);
  }
  ws[kChain - 1]->next.store(nullptr, std::memory_order_relaxed);
  const std::uint32_t captured = o->add_group(ws[0], ws[kChain - 1], kChain);
  EXPECT_EQ(captured, kChain) << "uncontended group add must capture all";
  o->finalize(&delivery_log::sink, &log);
  for (std::uint32_t i = 0; i < kChain; ++i) {
    EXPECT_EQ(log.delivered[i].load(), 1u) << "waiter " << i;
  }
  const outset_totals after = o->totals();
  EXPECT_EQ(after.adds - before.adds, kChain);
  EXPECT_EQ(after.delivered - before.delivered, kChain);
  EXPECT_EQ(after.group_adds - before.group_adds, 1u);
  factory_->release(o);
}

TEST_P(OutsetConformance, GroupAddAfterFinalizeRejectsWholeChain) {
  outset* o = factory_->acquire();
  delivery_log log(factory_.get(), 8);
  o->finalize(&delivery_log::sink, &log);
  std::vector<outset_waiter*> ws(8);
  for (std::size_t i = 0; i < 8; ++i) {
    ws[i] = factory_->acquire_waiter(fake_consumer(i), nullptr);
  }
  for (std::size_t i = 0; i + 1 < 8; ++i) {
    ws[i]->next.store(ws[i + 1], std::memory_order_relaxed);
  }
  ws[7]->next.store(nullptr, std::memory_order_relaxed);
  const std::uint32_t captured = o->add_group(ws[0], ws[7], 8);
  EXPECT_EQ(captured, 0u) << "finalized out-set must reject the whole group";
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(log.delivered[i].load(), 0u);
    factory_->release_waiter(ws[i]);
  }
  EXPECT_GE(o->totals().rejected_adds, 8u);
  factory_->release(o);
}

TEST_P(OutsetConformance, ExactlyOnceAcrossConcurrentGroupAddsAndFinalize) {
  // Grouped registrations racing the finalizer: the captured PREFIX is
  // delivered by finalize, the rejected suffix by its adder — exactly once
  // for every waiter either way.
  constexpr int kThreads = 4;
  constexpr std::uint32_t kGroups = 64;
  constexpr std::uint32_t kChain = 8;
  for (int round = 0; round < 50; ++round) {
    outset* o = factory_->acquire();
    delivery_log log(factory_.get(), kThreads * kGroups * kChain);
    std::atomic<bool> go{false};
    std::vector<std::thread> adders;
    for (int t = 0; t < kThreads; ++t) {
      adders.emplace_back([&, t] {
        while (!go.load(std::memory_order_acquire)) {
        }
        for (std::uint32_t gidx = 0; gidx < kGroups; ++gidx) {
          outset_waiter* ws[kChain];
          const std::size_t base =
              (static_cast<std::size_t>(t) * kGroups + gidx) * kChain;
          for (std::uint32_t j = 0; j < kChain; ++j) {
            ws[j] = factory_->acquire_waiter(fake_consumer(base + j), nullptr);
          }
          for (std::uint32_t j = 0; j + 1 < kChain; ++j) {
            ws[j]->next.store(ws[j + 1], std::memory_order_relaxed);
          }
          ws[kChain - 1]->next.store(nullptr, std::memory_order_relaxed);
          const std::uint32_t captured =
              o->add_group(ws[0], ws[kChain - 1], kChain);
          for (std::uint32_t j = captured; j < kChain; ++j) {
            log.delivered[base + j].fetch_add(1, std::memory_order_relaxed);
            factory_->release_waiter(ws[j]);
          }
        }
      });
    }
    std::thread finalizer([&] {
      go.store(true, std::memory_order_release);
      std::this_thread::yield();
      o->finalize(&delivery_log::sink, &log);
    });
    for (auto& th : adders) th.join();
    finalizer.join();
    for (std::size_t i = 0; i < log.delivered.size(); ++i) {
      ASSERT_EQ(log.delivered[i].load(), 1u)
          << "round " << round << ", waiter " << i;
    }
    factory_->release(o);
  }
}

TEST_P(OutsetConformance, ResetRepoolsAbandonedRegistrations) {
  outset* o = factory_->acquire();
  for (std::size_t i = 0; i < 32; ++i) {
    ASSERT_TRUE(o->add(factory_->acquire_waiter(fake_consumer(i), nullptr)));
  }
  factory_->release(o);  // reset: no deliveries, records back to the pool
  // waiters_created() counts cells CARVED from slabs; the first refill may
  // carve a whole geometry-sized magazine batch beyond the 32 live records
  // (magazine-resident spares, not leaks), so the reuse claim is carving
  // staying FLAT across rounds, not an absolute count.
  const std::size_t carved_after_first = factory_->waiters_created();
  EXPECT_GE(carved_after_first, 32u);
  // The pooled records and out-set are reused: no new allocations.
  outset* p = factory_->acquire();
  for (std::size_t i = 0; i < 32; ++i) {
    ASSERT_TRUE(p->add(factory_->acquire_waiter(fake_consumer(i), nullptr)));
  }
  delivery_log log(factory_.get(), 32);
  p->finalize(&delivery_log::sink, &log);
  for (std::size_t i = 0; i < 32; ++i) EXPECT_EQ(log.delivered[i].load(), 1u);
  factory_->release(p);
  EXPECT_EQ(factory_->created(), 1u) << "release must actually pool out-sets";
  EXPECT_EQ(factory_->waiters_created(), carved_after_first)
      << "release_waiter must actually pool records";
}

TEST_P(OutsetConformance, CountersTallyAddsAndDeliveries) {
  outset* o = factory_->acquire();
  const outset_totals before = o->totals();
  for (std::size_t i = 0; i < 16; ++i) {
    ASSERT_TRUE(o->add(factory_->acquire_waiter(fake_consumer(i), nullptr)));
  }
  delivery_log log(factory_.get(), 16);
  o->finalize(&delivery_log::sink, &log);
  const outset_totals after = o->totals();
  EXPECT_EQ(after.adds - before.adds, 16u);
  EXPECT_EQ(after.delivered - before.delivered, 16u);
  factory_->release(o);
}

INSTANTIATE_TEST_SUITE_P(AllOutsets, OutsetConformance,
                         ::testing::Values("simple", "simple:fc", "tree",
                                           "tree:4", "outset:tree:8",
                                           "tree:2:0", "tree:2:1:4"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& ch : name) {
                             if (ch == ':') ch = '_';
                           }
                           return name;
                         });

// --- tree-specific structure tests ---

TEST(TreeOutset, StaysSingleNodeWithoutContention) {
  tree_outset o;
  simple_outset_factory pool;  // waiter records only
  for (std::size_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(o.add(pool.acquire_waiter(fake_consumer(i), nullptr)));
  }
  // Uncontended adds are one CAS on the base node, like simple_outset.
  EXPECT_EQ(o.node_count(), 1u);
  EXPECT_EQ(o.totals().add_cas_retries, 0u);
}

TEST(TreeOutset, GrowsUnderContentionAndRecyclesGroups) {
  tree_outset_config cfg;
  cfg.fanout = 2;
  tree_outset o(cfg);
  simple_outset_factory pool;
  constexpr int kThreads = 4;
  std::atomic<bool> go{false};
  std::vector<std::thread> adders;
  for (int t = 0; t < kThreads; ++t) {
    adders.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (std::size_t i = 0; i < 5000; ++i) {
        ASSERT_TRUE(o.add(pool.acquire_waiter(
            fake_consumer(static_cast<std::size_t>(t) * 5000 + i), nullptr)));
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& th : adders) th.join();
  const std::size_t grown_nodes = o.node_count();
  EXPECT_EQ(o.totals().adds, static_cast<std::uint64_t>(kThreads) * 5000u);
  // Scrub and reuse: groups return to the free stack, not to malloc.
  o.reset(
      [](void* ctx, outset_waiter* w) {
        static_cast<simple_outset_factory*>(ctx)->release_waiter(w);
      },
      &pool);
  EXPECT_EQ(o.node_count(), 1u);
  if (grown_nodes > 1) {
    // At least every installed group is back on the free stack; grow() races
    // can park additional loser groups there too, so this is a lower bound.
    EXPECT_GE(o.recycled_group_count(), (grown_nodes - 1) / cfg.fanout);
  }
}

TEST(TreeOutset, DepthNeverExceedsCap) {
  tree_outset_config cfg;
  cfg.fanout = 2;
  cfg.max_depth = 3;
  tree_outset o(cfg);
  simple_outset_factory pool;
  constexpr int kThreads = 8;
  std::atomic<bool> go{false};
  std::vector<std::thread> adders;
  for (int t = 0; t < kThreads; ++t) {
    adders.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (std::size_t i = 0; i < 2000; ++i) {
        ASSERT_TRUE(o.add(pool.acquire_waiter(
            fake_consumer(static_cast<std::size_t>(t) * 2000 + i), nullptr)));
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& th : adders) th.join();
  EXPECT_LE(o.max_depth(), 3u);
}

// --- factory / spec parsing ---

TEST(OutsetFactory, ParsesSpecs) {
  EXPECT_EQ(make_outset_factory("simple")->name(), "simple");
  EXPECT_EQ(make_outset_factory("tree")->name(), "tree:2");
  EXPECT_EQ(make_outset_factory("tree:4")->name(), "tree:4");
  EXPECT_EQ(make_outset_factory("outset:simple")->name(), "simple");
  EXPECT_EQ(make_outset_factory("outset:tree:8")->name(), "tree:8");
  EXPECT_EQ(make_outset_factory("simple:fc")->name(), "simple:fc");
  EXPECT_EQ(make_outset_factory("outset:simple:fc")->name(), "simple:fc");
  EXPECT_THROW(make_outset_factory("bogus"), std::invalid_argument);
  EXPECT_THROW(make_outset_factory("tree:1"), std::invalid_argument);
  EXPECT_THROW(make_outset_factory("tree:100000"), std::invalid_argument);
  // Combining fronts a flat head CAS; the tree already diffuses through
  // structure, so ":fc" composes with "simple" only — on "tree" the suffix
  // must die in the numeric field parser, not silently parse.
  EXPECT_THROW(make_outset_factory("tree:fc"), std::invalid_argument);
  EXPECT_THROW(make_outset_factory("tree:4:fc"), std::invalid_argument);
  EXPECT_THROW(make_outset_factory("outset:tree:fc"), std::invalid_argument);
  EXPECT_THROW(make_outset_factory("simple:fc:fc"), std::invalid_argument);
}

TEST(OutsetFactory, ParsesGrowthThreshold) {
  // "tree:<fanout>:<threshold>" — the out-set analogue of "dyn:<threshold>".
  auto damped = make_outset_factory("tree:4:100");
  EXPECT_EQ(damped->name(), "tree:4:100");
  auto& cfg = static_cast<tree_outset_factory&>(*damped).config();
  EXPECT_EQ(cfg.fanout, 4u);
  EXPECT_EQ(cfg.grow_threshold, 100u);
  // Threshold 1 (always grow) is the default and stays out of the name.
  EXPECT_EQ(make_outset_factory("tree:4:1")->name(), "tree:4");
  EXPECT_EQ(make_outset_factory("outset:tree:2:50")->name(), "tree:2:50");
  EXPECT_THROW(make_outset_factory("tree:1:50"), std::invalid_argument);
  // Strict numeric fields: negatives must not wrap, garbage must not parse.
  EXPECT_THROW(make_outset_factory("tree:4:-1"), std::invalid_argument);
  EXPECT_THROW(make_outset_factory("tree:4:50x"), std::invalid_argument);
  EXPECT_THROW(make_outset_factory("tree:4x"), std::invalid_argument);
  EXPECT_THROW(make_outset_factory("tree:4:"), std::invalid_argument);
}

TEST(TreeOutset, ThresholdZeroNeverGrows) {
  // The degenerate damping setting: collided adds always stay and fight on
  // the base line, so the tree behaves like simple_outset structurally.
  tree_outset_config cfg;
  cfg.grow_threshold = 0;
  tree_outset o(cfg);
  simple_outset_factory pool;
  constexpr int kThreads = 4;
  std::atomic<bool> go{false};
  std::vector<std::thread> adders;
  for (int t = 0; t < kThreads; ++t) {
    adders.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (std::size_t i = 0; i < 2000; ++i) {
        ASSERT_TRUE(o.add(pool.acquire_waiter(
            fake_consumer(static_cast<std::size_t>(t) * 2000 + i), nullptr)));
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& th : adders) th.join();
  EXPECT_EQ(o.node_count(), 1u) << "threshold 0 must never install children";
}

TEST(OutsetFactory, WideFanoutGroupsFitTheSlab) {
  // Regression: a group wider than the pool's default slab block must not
  // break carving (the block is sized up to fit one cell).
  auto f = make_outset_factory("tree:128");
  outset* o = f->acquire();
  simple_outset_factory pool;
  constexpr int kThreads = 4;
  std::atomic<bool> go{false};
  std::vector<std::thread> adders;
  for (int t = 0; t < kThreads; ++t) {
    adders.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (std::size_t i = 0; i < 2000; ++i) {
        ASSERT_TRUE(o->add(pool.acquire_waiter(
            fake_consumer(static_cast<std::size_t>(t) * 2000 + i), nullptr)));
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& th : adders) th.join();
  EXPECT_EQ(o->totals().adds, static_cast<std::uint64_t>(kThreads) * 2000u);
  f->release(o);
}

TEST(OutsetFactory, DisplayNames) {
  EXPECT_EQ(make_outset_factory("simple")->display_name(), "CAS list");
  EXPECT_EQ(make_outset_factory("simple:fc")->display_name(),
            "flat-combining list");
  EXPECT_EQ(make_outset_factory("tree")->display_name(), "out-set tree");
}

TEST(OutsetFactory, DefaultFactoryIsSimpleAndProcessWide) {
  EXPECT_EQ(default_outset_factory().name(), "simple");
  EXPECT_EQ(&default_outset_factory(), &default_outset_factory());
}

}  // namespace
}  // namespace spdag
