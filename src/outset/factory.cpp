#include "outset/factory.hpp"

#include <stdexcept>
#include <vector>

#include "outset/fc_outset.hpp"
#include "outset/simple_outset.hpp"
#include "util/cache_aligned.hpp"

namespace spdag {

namespace {

// reset() sink: hand stranded waiter records straight back to the pool.
void repool_waiter(void* ctx, outset_waiter* w) {
  static_cast<outset_factory*>(ctx)->release_waiter(w);
}

// Strict unsigned parse: the whole field must be digits (stoull would
// silently wrap "-1" and ignore trailing garbage).
std::uint64_t parse_spec_u64(const std::string& field,
                             const std::string& spec) {
  if (field.empty() ||
      field.find_first_not_of("0123456789") != std::string::npos) {
    throw std::invalid_argument("bad number in outset spec: " + spec);
  }
  try {
    return std::stoull(field);
  } catch (const std::exception&) {
    throw std::invalid_argument("bad number in outset spec: " + spec);
  }
}

}  // namespace

outset_factory::outset_factory(pool_registry* pools)
    : pools_(pools != nullptr ? pools : &default_pool_registry()),
      waiter_pool_(&outset_waiter_pool(*pools_)),
      bank_(*pools_, "outset") {}

outset* outset_factory::acquire() {
  outset* o = bank_.pop();
  if (o == nullptr) o = create_pooled(bank_);
  return o;
}

void outset_factory::release(outset* o) {
  o->reset(&repool_waiter, this);
  bank_.push(o);
}

outset_waiter* outset_factory::acquire_waiter(vertex* consumer,
                                              dag_engine* engine) {
  outset_waiter* w = pool_new<outset_waiter>(*waiter_pool_);
  w->consumer = consumer;
  w->engine = engine;
  return w;
}

std::size_t outset_factory::waiters_created() const {
  return waiter_pool_->stats().carved;
}

outset_totals outset_factory::totals() const {
  outset_totals t;
  bank_.for_each([&t](const outset& o) { t += o.totals(); });
  return t;
}

outset* simple_outset_factory::create_pooled(object_bank<outset>& bank) {
  return bank.emplace<simple_outset>();
}

outset* fc_outset_factory::create_pooled(object_bank<outset>& bank) {
  return bank.emplace<fc_outset>();
}

tree_outset_factory::tree_outset_factory(tree_outset_config cfg,
                                         pool_registry* pools)
    : outset_factory(pools), cfg_(cfg) {
  // Every tree this factory creates resolves its group/waiter/drain pools
  // from the factory's registry, so pooled out-sets recycled at different
  // times draw from one set of slabs — and destruction-stranded waiter
  // records land back in the pool acquire_waiter draws from.
  cfg_.pools = &this->pools();
}

outset* tree_outset_factory::create_pooled(object_bank<outset>& bank) {
  return bank.emplace<tree_outset>(cfg_);
}

std::unique_ptr<outset_factory> make_outset_factory(const std::string& spec,
                                                    pool_registry* pools) {
  std::string s = spec;
  if (s.rfind("outset:", 0) == 0) s = s.substr(7);
  if (s == "simple") return std::make_unique<simple_outset_factory>(pools);
  // The fc suffix diffuses the single-cell baseline; the tree variants
  // already spread registrations, so "tree:...:fc" stays rejected by the
  // numeric field parser below — the two remedies don't stack.
  if (s == "simple:fc") return std::make_unique<fc_outset_factory>(pools);
  if (s == "tree") return std::make_unique<tree_outset_factory>(
      tree_outset_config{}, pools);
  if (s.rfind("tree:", 0) == 0) {
    tree_outset_config cfg;
    // "tree:<fanout>[:<threshold>[:<scatter>]]" — split on colons, parse
    // strictly, reject extra fields.
    std::vector<std::string> fields;
    std::string rest = s.substr(5);
    for (std::size_t colon = rest.find(':'); colon != std::string::npos;
         colon = rest.find(':')) {
      fields.push_back(rest.substr(0, colon));
      rest = rest.substr(colon + 1);
    }
    fields.push_back(rest);
    if (fields.size() > 3) {
      throw std::invalid_argument("too many fields in outset spec: " + spec);
    }
    const std::uint64_t fanout = parse_spec_u64(fields[0], spec);
    // The upper bound is a sanity rail: a group (fanout cache lines) is one
    // pool cell, and fan-outs past a few dozen already defeat the point of
    // the tree (spreading adds across lines).
    if (fanout < 2 || fanout > 1024) {
      throw std::invalid_argument("outset tree fanout must be in [2, 1024]: " +
                                  spec);
    }
    cfg.fanout = static_cast<std::uint32_t>(fanout);
    if (fields.size() >= 2) {
      // Damp growth with a 1/threshold coin, the same knob as the
      // in-counter's "dyn:<threshold>". 0 is the defined never-grow
      // ablation (see file comment), not an error.
      cfg.grow_threshold = parse_spec_u64(fields[1], spec);
    }
    if (fields.size() == 3) {
      // Deep-broadcast mode: forced registration depth (see file comment).
      const std::uint64_t scatter = parse_spec_u64(fields[2], spec);
      if (scatter > cfg.max_depth) {
        throw std::invalid_argument(
            "outset tree scatter depth exceeds the depth cap (" +
            std::to_string(cfg.max_depth) + "): " + spec);
      }
      // Scatter dives grow groups unconditionally (forced structure), which
      // would silently void the never-grow guarantee of threshold 0 — the
      // two knobs contradict, so the combination is rejected.
      if (scatter > 0 && cfg.grow_threshold == 0) {
        throw std::invalid_argument(
            "outset tree scatter contradicts the never-grow threshold 0: " +
            spec);
      }
      cfg.scatter_depth = static_cast<std::uint32_t>(scatter);
    }
    return std::make_unique<tree_outset_factory>(cfg, pools);
  }
  throw std::invalid_argument("unknown outset spec: " + spec);
}

outset_factory& default_outset_factory() {
  static simple_outset_factory factory;
  return factory;
}

}  // namespace spdag
