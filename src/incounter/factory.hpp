#pragma once
// Pooled factories for dependency counters.
//
// The indegree-2 benchmark (paper Figure 10) creates one finish block — and
// hence one counter — per pair of asyncs, millions of times. The factories
// pool retired counters through an object_bank (src/mem/object_bank.hpp):
// counter objects are registry pool cells recycled over an intrusive stack,
// so allocation cost (the very thing the paper's fixed-SNZI baseline
// suffers from at large depths) is the structure's own, not malloc's — and
// the counters' own storage shows up in the same registry stats and trim
// accounting as every other runtime structure.

#include <cstdint>
#include <memory>
#include <string>

#include "counter/dep_counter.hpp"
#include "counter/fc_counter.hpp"
#include "incounter/incounter.hpp"
#include "mem/object_bank.hpp"
#include "mem/registry.hpp"

namespace spdag {

class counter_factory {
 public:
  // `pools` backs the counter objects themselves (null = default registry);
  // borrowed, must outlive the factory. Concrete factories taking a
  // registry for their internals (SNZI child pairs) pass the same one here,
  // so a runtime's counters live entirely inside its registry.
  explicit counter_factory(pool_registry* pools = nullptr)
      : bank_(pools != nullptr ? *pools : default_pool_registry(), "counter") {}
  virtual ~counter_factory() = default;

  // Thread-safe: pops a pooled counter (or creates one) reset to `initial`.
  dep_counter* acquire(std::uint32_t initial);

  // Thread-safe: returns a drained counter to the pool.
  void release(dep_counter* c) { bank_.push(c); }

  // Short machine name ("faa", "snzi:4", "dyn:100") and the label the paper's
  // plots use ("Fetch & Add", "SNZI depth=4", "in-counter").
  virtual std::string name() const = 0;
  virtual std::string display_name() const = 0;

  // Counters created over the factory's lifetime (pool effectiveness).
  std::size_t created() const { return bank_.created(); }

  // A fresh, unpooled counter owned by the caller (decorators wrap these —
  // deliberately heap-allocated, NOT a bank cell: the caller's unique_ptr
  // must outlive nothing but itself).
  std::unique_ptr<dep_counter> make_unpooled() { return create(); }

 protected:
  // Unpooled construction (make_unpooled / decorators).
  virtual std::unique_ptr<dep_counter> create() = 0;
  // Pooled construction: emplace the concrete type into the bank.
  virtual dep_counter* create_pooled(object_bank<dep_counter>& bank) = 0;
  // Every counter this factory ever created (bank cells stay live for the
  // factory's lifetime) — concrete factories sum per-counter instrumentation
  // over it, like fc_factory::combining_totals().
  const object_bank<dep_counter>& bank() const noexcept { return bank_; }

 private:
  object_bank<dep_counter> bank_;
};

// --- concrete factories ---

class faa_factory final : public counter_factory {
 public:
  std::string name() const override { return "faa"; }
  std::string display_name() const override { return "Fetch & Add"; }

 protected:
  std::unique_ptr<dep_counter> create() override;
  dep_counter* create_pooled(object_bank<dep_counter>& bank) override;
};

class fc_factory final : public counter_factory {
 public:
  explicit fc_factory(pool_registry* pools = nullptr)
      : counter_factory(pools) {}
  std::string name() const override { return "fc"; }
  std::string display_name() const override { return "Flat combining"; }

  // Combining instrumentation summed over every counter this factory ever
  // created (monotone across pooling generations, like outset totals).
  counter_combining_totals combining_totals() const;

 protected:
  std::unique_ptr<dep_counter> create() override;
  dep_counter* create_pooled(object_bank<dep_counter>& bank) override;
};

class fixed_snzi_factory final : public counter_factory {
 public:
  // `pools` supplies child pairs (null = default registry); the pool is
  // resolved once here, so create() never takes the registry lock. Counters
  // from one factory share it: pooled counters recycled at different times
  // draw from one set of slabs.
  explicit fixed_snzi_factory(int depth, snzi::tree_stats* stats = nullptr,
                              pool_registry* pools = nullptr)
      : counter_factory(pools),
        depth_(depth),
        stats_(stats),
        pair_pool_(&snzi::child_pair_pool(
            pools != nullptr ? *pools : default_pool_registry())) {}
  std::string name() const override { return "snzi:" + std::to_string(depth_); }
  std::string display_name() const override {
    return "SNZI depth=" + std::to_string(depth_);
  }
  int depth() const noexcept { return depth_; }

 protected:
  std::unique_ptr<dep_counter> create() override;
  dep_counter* create_pooled(object_bank<dep_counter>& bank) override;

 private:
  int depth_;
  snzi::tree_stats* stats_;
  object_pool* pair_pool_;
};

class incounter_factory final : public counter_factory {
 public:
  // See fixed_snzi_factory on `pools` / pair-pool sharing.
  explicit incounter_factory(incounter_config cfg = {},
                             pool_registry* pools = nullptr)
      : counter_factory(pools),
        cfg_(cfg),
        pair_pool_(&snzi::child_pair_pool(
            pools != nullptr ? *pools : default_pool_registry())) {}
  std::string name() const override {
    return "dyn:" + std::to_string(cfg_.grow_threshold) +
           (cfg_.reclaim ? "" : ":noreclaim");
  }
  std::string display_name() const override { return "in-counter"; }
  const incounter_config& config() const noexcept { return cfg_; }

 protected:
  std::unique_ptr<dep_counter> create() override;
  dep_counter* create_pooled(object_bank<dep_counter>& bank) override;

 private:
  incounter_config cfg_;
  object_pool* pair_pool_;
};

class locked_factory final : public counter_factory {
 public:
  std::string name() const override { return "locked"; }
  std::string display_name() const override { return "Locked (oracle)"; }

 protected:
  std::unique_ptr<dep_counter> create() override;
  dep_counter* create_pooled(object_bank<dep_counter>& bank) override;
};

// Parses a counter spec:
//   "faa"                         fetch-and-add cell
//   "fc"                          flat-combining front over the same cell
//                                 (counter/fc_counter.hpp) — the diffused
//                                 flat baseline for contention ablations
//   "snzi:<depth>"                fixed-depth SNZI tree
//   "dyn[:<threshold>]"           in-counter; default threshold = 25 * cores
//                                 (the paper's p = 1/(25c))
//   "dyn:<threshold>:noreclaim"   in-counter without appendix-B reclamation
//                                 (required when the dag randomizes claim
//                                 order, which voids Lemma 4.6's safety)
//   "locked"                      mutex oracle (tests only)
// Throws std::invalid_argument on anything else.
// (The fan-out dual — "outset:simple" / "outset:tree[:fanout[:threshold]]"
// specs for future waiter broadcast — is parsed by make_outset_factory in
// src/outset/factory.hpp; the allocation layer both draw from is selected
// by make_pool_registry in src/mem/registry.hpp.)
// `pools` is the registry SNZI child pairs are drawn from (null = default).
std::unique_ptr<counter_factory> make_counter_factory(
    const std::string& spec, snzi::tree_stats* stats = nullptr,
    pool_registry* pools = nullptr);

}  // namespace spdag
