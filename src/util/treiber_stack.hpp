#pragma once
// Intrusive lock-free Treiber stack with a tagged head to defeat ABA.
//
// Used for object pools (recycled vertices, dec-pairs, counters). T must
// expose `std::atomic<T*> pool_next`.

#include <atomic>
#include <cstdint>

namespace spdag {

template <typename T>
class treiber_stack {
 public:
  void push(T* item) noexcept {
    std::uint64_t head = head_.load(std::memory_order_acquire);
    for (;;) {
      item->pool_next.store(ptr_of(head), std::memory_order_relaxed);
      const std::uint64_t fresh = pack(item, tag_of(head) + 1);
      if (head_.compare_exchange_weak(head, fresh, std::memory_order_release,
                                      std::memory_order_acquire)) {
        return;
      }
    }
  }

  T* pop() noexcept {
    std::uint64_t head = head_.load(std::memory_order_acquire);
    for (;;) {
      T* top = ptr_of(head);
      if (top == nullptr) return nullptr;
      T* next = top->pool_next.load(std::memory_order_relaxed);
      const std::uint64_t fresh = pack(next, tag_of(head) + 1);
      if (head_.compare_exchange_weak(head, fresh, std::memory_order_acquire,
                                      std::memory_order_acquire)) {
        return top;
      }
    }
  }

  bool empty() const noexcept {
    return ptr_of(head_.load(std::memory_order_acquire)) == nullptr;
  }

  std::size_t size_slow() const noexcept {
    std::size_t n = 0;
    for (T* p = ptr_of(head_.load(std::memory_order_acquire)); p != nullptr;
         p = p->pool_next.load(std::memory_order_relaxed)) {
      ++n;
    }
    return n;
  }

 private:
  // 48-bit pointer + 16-bit monotone tag (canonical user-space addresses).
  static constexpr std::uint64_t ptr_mask = (1ULL << 48) - 1;
  static std::uint64_t pack(T* p, std::uint64_t tag) noexcept {
    return (reinterpret_cast<std::uintptr_t>(p) & ptr_mask) | (tag << 48);
  }
  static T* ptr_of(std::uint64_t v) noexcept {
    return reinterpret_cast<T*>(v & ptr_mask);
  }
  static std::uint64_t tag_of(std::uint64_t v) noexcept { return v >> 48; }

  std::atomic<std::uint64_t> head_{0};
};

}  // namespace spdag
