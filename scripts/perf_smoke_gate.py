#!/usr/bin/env python3
"""CI perf-smoke gate over BENCH_*.json telemetry.

Reads the future_churn JSON document (see harness::json_write) and fails
the job when pooled-allocator throughput drops below the malloc baseline
MEASURED IN THE SAME RUN. Comparing within one run makes the check safe on
shared CI runners: machine speed cancels out of the ratio, so the gate
catches a pool regression without pinning absolute numbers.

With --trace-compare, additionally enforces the tracing subsystem's
zero-cost claim: the main document (built with tracing compiled in, run
with `trace:off`) is compared against a second future_churn document from a
-DSPDAG_TRACE=OFF build of the same commit. The geometric mean of the
per-proc "pool" throughput ratios must stay within --max-trace-overhead
(default 3%) of the compiled-out build.

With --epoch-compare, enforces the same bounded-overhead claim for the
epoch-based reclamation layer (src/mem/epoch.hpp): the main document
(epoch compiled in — worker loops pin/refresh/tick) against a future_churn
document from a -DSPDAG_EPOCH=OFF build. Budget --max-epoch-overhead
(default 3% geomean).

With --service, additionally sanity-gates the dag_service traffic bench
(BENCH_service_traffic.json): every service/<sched>/clients:<c> record must
conserve submissions (completed == submitted - rejected, completed > 0),
report a finite positive sojourn p99 and a positive completion rate. When
the records were produced by an epoch-enabled build (extra.epoch_enabled),
each must also show busy trims actually firing, and ACROSS the document
some slabs must have made the full retire -> reclaim trip — the
busy-trim-under-load acceptance (the dispatcher only trims inside its
dispatch loop, so a nonzero count proves reclamation under live traffic).
This is a correctness gate, not a throughput gate — service rates depend on
the offered arrival schedule, so absolute numbers are not pinned.

With --apps, additionally sanity-gates the application-tier benches
(BENCH_apps.json, the merged bfs / wavefront_lcs / stream_pipeline
document). Every record must conserve vertices (completed == spawned,
both > 0) and report a finite positive p99 and rate; the amortization
claim is gated directly on the ledger: batch records (extra.batch == 1)
must report counter_ops_per_edge strictly < 1.0, unbatched records must
sit at exactly 1.0 (small tolerance for float serialization) — unbatched
execution pays one inc + one dec per edge by construction.

Exit codes: 0 pass, 1 perf regression, 2 malformed/unusable input.

Usage: perf_smoke_gate.py BENCH_future_churn.json [--min-ratio 0.9]
           [--trace-compare BENCH_future_churn_notrace.json]
           [--max-trace-overhead 0.03]
           [--epoch-compare BENCH_future_churn_noepoch.json]
           [--max-epoch-overhead 0.03]
           [--service BENCH_service_traffic.json]
           [--apps BENCH_apps.json]
"""

import argparse
import json
import math
import sys


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"perf_smoke_gate: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    for key in ("schema", "bench", "git_sha", "records"):
        if key not in doc:
            print(f"perf_smoke_gate: {path} missing key '{key}'",
                  file=sys.stderr)
            sys.exit(2)
    return doc


def churn_pool_rates(doc):
    """proc -> ops_per_s for the gated churn/pool/... records."""
    rates = {}
    for rec in doc["records"]:
        if rec.get("name", "").startswith("churn/") and rec.get("spec") == "pool":
            rates[rec["proc"]] = rec["ops_per_s"]
    return rates


def overhead_gate(doc, compare_path, max_overhead, label):
    """True when the main run keeps up with the feature-compiled-out build.

    Shared by --trace-compare and --epoch-compare: both assert that a
    compile-time-removable layer costs at most `max_overhead` (geomean of
    per-proc pool-throughput ratios) when compiled in.
    """
    stripped = load(compare_path)
    enabled = churn_pool_rates(doc)
    baseline = churn_pool_rates(stripped)
    ratios = []
    for proc in sorted(baseline):
        if proc not in enabled or baseline[proc] <= 0:
            continue
        ratio = enabled[proc] / baseline[proc]
        ratios.append(ratio)
        print(f"  proc {proc}: {label} {enabled[proc]:,.0f} vs compiled-out "
              f"{baseline[proc]:,.0f} fut/s -> ratio {ratio:.3f}")
    if not ratios:
        print(f"perf_smoke_gate: no comparable record pairs for {label}",
              file=sys.stderr)
        sys.exit(2)
    geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
    floor = 1.0 - max_overhead
    verdict = "ok" if geomean >= floor else "REGRESSION"
    print(f"  {label} geomean ratio {geomean:.3f} "
          f"(floor {floor:.3f}) [{verdict}]")
    return geomean >= floor


def service_gate(path):
    """True when every dag_service traffic record is sane (see module doc)."""
    doc = load(path)
    checked = 0
    ok = True
    epoch_records = 0
    total_reclaimed = 0.0
    total_retired = 0.0
    for rec in doc["records"]:
        name = rec.get("name", "")
        if not name.startswith("service/"):
            continue
        checked += 1
        extra = rec.get("extra", {})
        submitted = extra.get("submitted", 0)
        rejected = extra.get("rejected", 0)
        completed = extra.get("completed", 0)
        p99 = rec.get("lat_p99_ms", 0)
        rate = rec.get("ops_per_s", 0)
        problems = []
        if completed <= 0:
            problems.append("completed == 0")
        if completed != submitted - rejected:
            problems.append(
                f"conservation: completed {completed:.0f} != submitted "
                f"{submitted:.0f} - rejected {rejected:.0f}")
        if not (math.isfinite(p99) and p99 > 0):
            problems.append(f"sojourn p99 not finite/positive: {p99}")
        if not (math.isfinite(rate) and rate > 0):
            problems.append(f"ops_per_s not finite/positive: {rate}")
        if extra.get("epoch_enabled", 0) > 0:
            epoch_records += 1
            busy_trims = extra.get("busy_trims", 0)
            total_retired += extra.get("slabs_retired", 0)
            total_reclaimed += extra.get("slabs_reclaimed", 0)
            # The cadence (busy_trim_every << dispatch count) guarantees
            # trims per record; slab yield varies with traffic shape, so
            # the retire/reclaim assertion is document-wide, below.
            if busy_trims <= 0:
                problems.append("epoch enabled but busy_trims == 0")
        verdict = "ok" if not problems else "FAIL: " + "; ".join(problems)
        print(f"  {name}: completed {completed:,.0f}/{submitted:,.0f} "
              f"@ {rate:,.0f}/s, sojourn p99 {p99:.3f}ms [{verdict}]")
        if problems:
            ok = False
    if checked == 0:
        print(f"perf_smoke_gate: no service/ records in {path}",
              file=sys.stderr)
        sys.exit(2)
    if epoch_records > 0:
        reclaim_ok = total_reclaimed > 0
        verdict = "ok" if reclaim_ok else "FAIL"
        print(f"  busy-trim acceptance: slabs retired {total_retired:.0f}, "
              f"reclaimed {total_reclaimed:.0f} across {epoch_records} "
              f"epoch-enabled records [{verdict}]")
        if not reclaim_ok:
            print("perf_smoke_gate: epoch-enabled service never reclaimed a "
                  "slab under load — busy trim is not doing its job",
                  file=sys.stderr)
            ok = False
    return ok


def apps_gate(path):
    """True when every application-tier record is sane (see module doc)."""
    doc = load(path)
    checked = 0
    batch_records = 0
    ok = True
    for rec in doc["records"]:
        name = rec.get("name", "")
        extra = rec.get("extra", {})
        if "counter_ops_per_edge" not in extra:
            continue
        checked += 1
        completed = extra.get("completed", 0)
        spawned = extra.get("spawned", 0)
        ratio = extra.get("counter_ops_per_edge", 0)
        batch = extra.get("batch", 0) > 0
        p99 = rec.get("lat_p99_ms", 0)
        rate = rec.get("ops_per_s", 0)
        problems = []
        if completed <= 0:
            problems.append("completed == 0")
        if completed != spawned:
            problems.append(
                f"conservation: completed {completed:.0f} != spawned "
                f"{spawned:.0f}")
        if batch:
            batch_records += 1
            if not (math.isfinite(ratio) and 0 < ratio < 1.0):
                problems.append(
                    f"batch run did not amortize: counter_ops_per_edge "
                    f"{ratio} (need strictly < 1.0)")
        else:
            # One inc + one dec per edge, exactly; tolerance only for float
            # round-trip through JSON.
            if not (math.isfinite(ratio) and abs(ratio - 1.0) < 1e-9):
                problems.append(
                    f"unbatched counter_ops_per_edge {ratio} != 1.0")
        if not (math.isfinite(p99) and p99 > 0):
            problems.append(f"p99 not finite/positive: {p99}")
        if not (math.isfinite(rate) and rate > 0):
            problems.append(f"ops_per_s not finite/positive: {rate}")
        verdict = "ok" if not problems else "FAIL: " + "; ".join(problems)
        print(f"  {name}: {completed:,.0f} vertices @ {rate:,.0f}/s, "
              f"ops/edge {ratio:.4f}, p99 {p99:.3f}ms [{verdict}]")
        if problems:
            ok = False
    if checked == 0:
        print(f"perf_smoke_gate: no app records in {path}", file=sys.stderr)
        sys.exit(2)
    if batch_records == 0:
        print(f"perf_smoke_gate: no batch app records in {path} — the "
              f"amortization claim went unexercised", file=sys.stderr)
        sys.exit(2)
    return ok


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("json_path")
    ap.add_argument("--min-ratio", type=float, default=0.9,
                    help="minimum pool/malloc ops-per-second ratio "
                         "(default 0.9: a little head-room for runner noise; "
                         "steady state has measured ~1.2x on 1 core)")
    ap.add_argument("--trace-compare", metavar="NOTRACE_JSON", default=None,
                    help="future_churn document from a -DSPDAG_TRACE=OFF "
                         "build; enforces the trace:off zero-cost claim")
    ap.add_argument("--max-trace-overhead", type=float, default=0.03,
                    help="max geomean throughput loss of trace:off vs the "
                         "compiled-out build (default 0.03)")
    ap.add_argument("--epoch-compare", metavar="NOEPOCH_JSON", default=None,
                    help="future_churn document from a -DSPDAG_EPOCH=OFF "
                         "build; bounds the pin/refresh/tick overhead of "
                         "the epoch reclamation layer")
    ap.add_argument("--max-epoch-overhead", type=float, default=0.03,
                    help="max geomean throughput loss of the epoch-enabled "
                         "build vs the compiled-out one (default 0.03)")
    ap.add_argument("--service", metavar="SERVICE_JSON", default=None,
                    help="service_traffic document; sanity-gates the "
                         "dag_service records (conservation + finite p99)")
    ap.add_argument("--apps", metavar="APPS_JSON", default=None,
                    help="merged application-tier document; gates vertex "
                         "conservation and counter_ops_per_edge < 1.0 on "
                         "batch configs")
    args = ap.parse_args()

    doc = load(args.json_path)
    print(f"perf_smoke_gate: {doc['bench']} @ {doc['git_sha'][:12]}, "
          f"{len(doc['records'])} records")

    # churn/<alloc-spec>/proc:<p> records; "pool" is the gated spec,
    # "pool:adaptive" is reported for the trajectory but not gated (its
    # magazines re-size mid-run, so its smoke-sized numbers are noisier).
    by_spec = {}
    for rec in doc["records"]:
        if not rec.get("name", "").startswith("churn/"):
            continue
        by_spec.setdefault(rec["spec"], {})[rec["proc"]] = rec["ops_per_s"]

    base = by_spec.get("malloc", {})
    pool = by_spec.get("pool", {})
    adaptive = by_spec.get("pool:adaptive", {})

    failed = False
    checked = 0
    for proc in sorted(base):
        if proc not in pool or base[proc] <= 0:
            continue
        checked += 1
        ratio = pool[proc] / base[proc]
        verdict = "ok" if ratio >= args.min_ratio else "REGRESSION"
        print(f"  proc {proc}: pool {pool[proc]:,.0f} vs malloc "
              f"{base[proc]:,.0f} fut/s -> ratio {ratio:.3f} [{verdict}]")
        if ratio < args.min_ratio:
            failed = True
        if proc in adaptive and base[proc] > 0:
            print(f"  proc {proc}: pool:adaptive {adaptive[proc]:,.0f} fut/s "
                  f"-> ratio {adaptive[proc] / base[proc]:.3f} [info]")

    if checked == 0:
        print("perf_smoke_gate: no comparable pool/malloc record pairs found",
              file=sys.stderr)
        sys.exit(2)
    if args.apps is not None:
        if not apps_gate(args.apps):
            print("perf_smoke_gate: FAIL - application-tier records violated "
                  "conservation or the batch amortization claim",
                  file=sys.stderr)
            sys.exit(1)
    if args.service is not None:
        if not service_gate(args.service):
            print("perf_smoke_gate: FAIL - dag_service traffic records "
                  "violated conservation or reported degenerate latency",
                  file=sys.stderr)
            sys.exit(1)
    if args.trace_compare is not None:
        if not overhead_gate(doc, args.trace_compare,
                             args.max_trace_overhead, "trace:off"):
            print(f"perf_smoke_gate: FAIL - trace:off lost more than "
                  f"{args.max_trace_overhead:.0%} vs the compiled-out build",
                  file=sys.stderr)
            sys.exit(1)
    if args.epoch_compare is not None:
        if not overhead_gate(doc, args.epoch_compare,
                             args.max_epoch_overhead, "epoch-on"):
            print(f"perf_smoke_gate: FAIL - the epoch layer cost more than "
                  f"{args.max_epoch_overhead:.0%} vs the compiled-out build",
                  file=sys.stderr)
            sys.exit(1)
    if failed:
        print(f"perf_smoke_gate: FAIL - pool fell below "
              f"{args.min_ratio:.2f}x malloc on the same run",
              file=sys.stderr)
        sys.exit(1)
    print("perf_smoke_gate: PASS")


if __name__ == "__main__":
    main()
