#pragma once
// Fetch-and-add dependency counter: the paper's first baseline.
//
// "We compare our in-counter with an atomic, fetch-and-add counter because
// the fetch-and-add counter is optimal for very small numbers of cores"
// (section 5). Every arrive/depart hits the same cache line, which is
// exactly the contention hot spot SNZI-style structures remove.

#include <atomic>
#include <cassert>
#include <cstdint>

#include "counter/dep_counter.hpp"
#include "util/cache_aligned.hpp"

namespace spdag {

class faa_counter final : public dep_counter {
 public:
  explicit faa_counter(std::uint32_t initial = 0) noexcept { reset(initial); }

  arrive_result arrive(token /*inc_hint*/, bool /*from_left*/) override {
    count_.value.fetch_add(1, std::memory_order_seq_cst);
    return {0, 0, 0};
  }

  arrive_result add(token /*inc_hint*/, bool /*from_left*/,
                    std::uint32_t k) override {
    assert(k >= 1 && "a batched increment covers at least one unit");
    count_.value.fetch_add(static_cast<std::int64_t>(k),
                           std::memory_order_seq_cst);
    return {0, 0, 0};
  }

  bool depart(token /*dec*/) override {
    const std::int64_t prev = count_.value.fetch_sub(1, std::memory_order_seq_cst);
    assert(prev >= 1 && "depart on a zero fetch-and-add counter");
    return prev == 1;
  }

  bool is_zero() const override {
    return count_.value.load(std::memory_order_acquire) == 0;
  }

  token root_token() override { return 0; }
  bool uses_tokens() const override { return false; }

  void reset(std::uint32_t n) override {
    count_.value.store(static_cast<std::int64_t>(n), std::memory_order_relaxed);
  }

  std::int64_t value() const noexcept {
    return count_.value.load(std::memory_order_acquire);
  }

 private:
  cache_aligned<std::atomic<std::int64_t>> count_{0};
};

}  // namespace spdag
