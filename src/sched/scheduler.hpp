#pragma once
// Work-stealing scheduler for sp-dags.
//
// One Chase-Lev deque per worker; the owner treats it as a LIFO stack
// (mirrors serial execution order, keeps the working set hot), thieves take
// the oldest (largest) task from a uniformly random victim. Idle workers
// back off and then park on a condition variable with a short timeout, which
// matters doubly on oversubscribed hosts where spinning steals the mutator's
// cycles. This is the substrate role played in the paper by the authors'
// PASL work-stealing scheduler [2].

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "dag/engine.hpp"
#include "sched/chase_lev.hpp"
#include "sched/scheduler_base.hpp"
#include "util/cache_aligned.hpp"
#include "util/rng.hpp"

namespace spdag {

struct scheduler_config {
  std::size_t workers = 0;  // 0 = hardware_core_count()
  bool pin_threads = false;
  // Failed steal sweeps before a worker parks.
  std::size_t steal_sweeps_before_park = 4;
  // Park timeout; bounds the cost of a lost wakeup.
  std::chrono::microseconds park_timeout{500};
};

class scheduler final : public scheduler_base {
 public:
  explicit scheduler(scheduler_config cfg = {});
  ~scheduler() override;

  scheduler(const scheduler&) = delete;
  scheduler& operator=(const scheduler&) = delete;

  // executor: called by the dag engine when a vertex becomes ready, and by
  // external threads to inject roots. Worker threads push to their own
  // deque; everyone else goes through the injection queue.
  void enqueue(vertex* v) override;

  // Drain lane for parallel out-set finalize: tasks land on a shared queue
  // that workers poll only when they have no vertex work, so subtree drains
  // migrate to idle cores without displacing the dag's critical path. run()
  // does not return until the lane is empty (drains are part of quiescence).
  void enqueue_drain(outset_drain_task* t) override;

  // Executes the dag rooted at `root` until `final_v` has run. Blocking;
  // call from a non-worker thread. The engine must use this scheduler as
  // its executor.
  void run(dag_engine& engine, vertex* root, vertex* final_v) override;

  // Resident-service mode (see scheduler_base): attach the engine so
  // externally injected roots execute without a surrounding run(); detach
  // after spinning out to idleness.
  void begin_service(dag_engine& engine) override;
  void end_service() override;
  bool service_idle() const override;

  std::size_t worker_count() const noexcept override { return workers_.size(); }
  scheduler_totals totals() const override;
  void reset_totals() override;

  // Index of the calling worker thread, or -1 for external threads.
  static int current_worker_id() noexcept;

 private:
  // Per-worker counters are relaxed atomics: they are worker-local on the
  // hot path (uncontended), but totals()/reset_totals() may run while idle
  // workers are still bumping their park counts.
  struct worker {
    chase_lev_deque<vertex> deque;
    std::atomic<std::uint64_t> executions{0};
    std::atomic<std::uint64_t> steals{0};
    std::atomic<std::uint64_t> failed_steal_sweeps{0};
    std::atomic<std::uint64_t> parks{0};
  };

  void worker_main(std::size_t id);
  vertex* find_work(std::size_t id, xoshiro256& rng);
  vertex* pop_injected();
  // Runs one queued drain task if any; returns whether it did.
  bool run_one_drain(int id);
  void unpark_some();

  scheduler_config cfg_;
  std::vector<std::unique_ptr<padded<worker>>> workers_;
  std::vector<std::thread> threads_;

  std::mutex inject_mu_;
  std::deque<vertex*> injected_;
  std::atomic<std::size_t> injected_size_{0};

  // One queued subtree drain; `from` is the enqueuing worker (-1 external),
  // kept to tell migrated drains (steals) from self-run ones.
  struct drain_item {
    outset_drain_task* task;
    int from;
  };
  std::mutex drain_mu_;
  std::deque<drain_item> drains_;
  std::atomic<std::size_t> drain_size_{0};
  // Enqueued but not yet finished draining (decremented after run(), so a
  // zero means every spawned subtree is fully delivered — run() waits on it).
  std::atomic<int> drains_pending_{0};
  std::atomic<std::uint64_t> drains_executed_{0};
  std::atomic<std::uint64_t> drains_stolen_{0};

  std::mutex park_mu_;
  std::condition_variable park_cv_;
  std::atomic<int> parked_{0};

  std::atomic<bool> shutdown_{false};
  std::atomic<bool> service_{false};
  std::atomic<dag_engine*> engine_{nullptr};
  std::atomic<vertex*> stop_vertex_{nullptr};

  std::mutex done_mu_;
  std::condition_variable done_cv_;
  std::atomic<bool> done_{true};
  // Workers executing a vertex right now; run() returns only at zero, so a
  // completed run implies full quiescence (every vertex recycled).
  std::atomic<int> active_{0};
};

}  // namespace spdag
