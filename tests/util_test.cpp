// Tests for the util substrate: inline_function, RNG, Treiber stack,
// spin barrier, CLI options, statistics, dummy work.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "util/cache_aligned.hpp"
#include "util/cli.hpp"
#include "util/dummy_work.hpp"
#include "util/inline_function.hpp"
#include "util/rng.hpp"
#include "util/spin_barrier.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"
#include "util/treiber_stack.hpp"

namespace spdag {
namespace {

// --- cache alignment ---

TEST(CacheAligned, TypesAreLineAligned) {
  EXPECT_EQ(alignof(cache_aligned<int>), cache_line_size);
  EXPECT_EQ(sizeof(padded<char>) % cache_line_size, 0u);
  EXPECT_EQ(sizeof(padded<char[128]>) % cache_line_size, 0u);
}

TEST(CacheAligned, ArrayElementsDoNotShareLines) {
  std::vector<padded<std::atomic<int>>> v(4);
  for (std::size_t i = 1; i < v.size(); ++i) {
    const auto a = reinterpret_cast<std::uintptr_t>(&v[i - 1].value);
    const auto b = reinterpret_cast<std::uintptr_t>(&v[i].value);
    EXPECT_GE(b - a, cache_line_size);
  }
}

// --- inline_function ---

TEST(InlineFunction, EmptyIsFalsy) {
  inline_function<void()> f;
  EXPECT_FALSE(static_cast<bool>(f));
}

TEST(InlineFunction, InvokesStoredClosure) {
  int hits = 0;
  inline_function<void()> f([&hits] { ++hits; });
  ASSERT_TRUE(static_cast<bool>(f));
  f();
  f();
  EXPECT_EQ(hits, 2);
}

TEST(InlineFunction, ReturnsValues) {
  inline_function<int(int)> f([](int x) { return x * 2; });
  EXPECT_EQ(f(21), 42);
}

TEST(InlineFunction, MoveTransfersOwnership) {
  int hits = 0;
  inline_function<void()> f([&hits] { ++hits; });
  inline_function<void()> g(std::move(f));
  EXPECT_FALSE(static_cast<bool>(f));  // NOLINT(bugprone-use-after-move)
  g();
  EXPECT_EQ(hits, 1);
}

TEST(InlineFunction, DestroysClosureState) {
  auto counter = std::make_shared<int>(0);
  std::weak_ptr<int> watch = counter;
  {
    inline_function<void()> f([counter] { (void)counter; });
    counter.reset();
    EXPECT_FALSE(watch.expired()) << "closure keeps its captures alive";
  }
  EXPECT_TRUE(watch.expired()) << "destroying the function frees captures";
}

TEST(InlineFunction, ResetDropsClosure) {
  auto counter = std::make_shared<int>(0);
  std::weak_ptr<int> watch = counter;
  inline_function<void()> f([counter] {});
  counter.reset();
  f.reset();
  EXPECT_TRUE(watch.expired());
  EXPECT_FALSE(static_cast<bool>(f));
}

TEST(InlineFunction, ReassignmentDestroysPrevious) {
  auto a = std::make_shared<int>(1);
  std::weak_ptr<int> watch = a;
  inline_function<void()> f([a] {});
  a.reset();
  f = inline_function<void()>([] {});
  EXPECT_TRUE(watch.expired());
  f();
}

// --- RNG ---

TEST(Rng, DeterministicForSameSeed) {
  xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, BelowStaysInRange) {
  xoshiro256 r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.below(13), 13u);
  }
}

TEST(Rng, FlipRateApproximatesBias) {
  xoshiro256 r(11);
  int heads = 0;
  constexpr int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) {
    if (r.flip(1, 10)) ++heads;
  }
  EXPECT_NEAR(static_cast<double>(heads) / kTrials, 0.1, 0.02);
}

TEST(Rng, ThreadLocalStreamsAreIndependent) {
  std::uint64_t first_main = thread_rng()();
  std::uint64_t first_other = 0;
  std::thread t([&first_other] { first_other = thread_rng()(); });
  t.join();
  EXPECT_NE(first_main, first_other);
}

// --- Treiber stack ---

struct pool_item {
  int value = 0;
  std::atomic<pool_item*> pool_next{nullptr};
};

TEST(TreiberStack, LifoSingleThreaded) {
  treiber_stack<pool_item> s;
  pool_item a, b;
  a.value = 1;
  b.value = 2;
  EXPECT_TRUE(s.empty());
  s.push(&a);
  s.push(&b);
  EXPECT_EQ(s.size_slow(), 2u);
  EXPECT_EQ(s.pop(), &b);
  EXPECT_EQ(s.pop(), &a);
  EXPECT_EQ(s.pop(), nullptr);
}

TEST(TreiberStack, ConcurrentPushPopConserves) {
  treiber_stack<pool_item> s;
  constexpr int kThreads = 6;
  constexpr int kItems = 2000;
  std::vector<pool_item> items(kThreads * kItems);
  std::atomic<int> popped{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kItems; ++i) {
        s.push(&items[static_cast<size_t>(t * kItems + i)]);
        if (s.pop() != nullptr) popped.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(popped.load() + static_cast<int>(s.size_slow()), kThreads * kItems);
}

// --- spin barrier ---

TEST(SpinBarrier, SynchronizesPhases) {
  constexpr int kThreads = 4;
  constexpr int kPhases = 100;
  spin_barrier bar(kThreads);
  std::atomic<int> phase_counts[kPhases] = {};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int p = 0; p < kPhases; ++p) {
        phase_counts[p].fetch_add(1);
        bar.arrive_and_wait();
        // After the barrier, everyone must have bumped this phase.
        EXPECT_EQ(phase_counts[p].load(), kThreads);
        bar.arrive_and_wait();
      }
    });
  }
  for (auto& th : threads) th.join();
}

// --- options ---

TEST(Options, ParsesDashKeyValuePairs) {
  const char* argv[] = {"prog", "-n", "1000", "-algo", "dyn", "-flag"};
  options o(6, const_cast<char**>(argv));
  EXPECT_EQ(o.get_int("n", 0), 1000);
  EXPECT_EQ(o.get_string("algo", ""), "dyn");
  EXPECT_TRUE(o.get_bool("flag", false));
  EXPECT_EQ(o.get_int("missing", 7), 7);
}

TEST(Options, EnvironmentFallback) {
  ::setenv("SPDAG_UTEST_KNOB", "123", 1);
  options o;
  EXPECT_EQ(o.get_int("utest-knob", 0), 123);
  ::unsetenv("SPDAG_UTEST_KNOB");
}

TEST(Options, CommandLineBeatsNothing) {
  const char* argv[] = {"prog", "-x", "2.5"};
  options o(3, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(o.get_double("x", 0.0), 2.5);
}

// --- stats ---

TEST(RunStats, ComputesMoments) {
  run_stats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);
  EXPECT_EQ(s.count(), 8u);
}

TEST(ResultTable, PrintsGridAndCsv) {
  result_table t({"algo", "procs", "ops/s"});
  t.add_row({"faa", "1", result_table::num(12345.678, 1)});
  t.add_row({"in-counter", "40", "99"});
  std::ostringstream grid, csv;
  t.print(grid);
  t.print_csv(csv);
  EXPECT_NE(grid.str().find("in-counter"), std::string::npos);
  EXPECT_NE(csv.str().find("algo,procs,ops/s"), std::string::npos);
  EXPECT_NE(csv.str().find("faa,1,12345.7"), std::string::npos);
  EXPECT_THROW(t.add_row({"too", "few"}), std::invalid_argument);
}

// --- dummy work ---

TEST(DummyWork, ScalesRoughlyLinearly) {
  // spin_work must not be optimized away and must scale with units.
  wall_timer t0;
  sink(spin_work(1'000'000));
  const double small = t0.elapsed_s();
  wall_timer t1;
  sink(spin_work(10'000'000));
  const double big = t1.elapsed_s();
  EXPECT_GT(big, small * 3) << "10x units should take clearly longer";
}

TEST(DummyWork, CalibrationIsPositive) {
  EXPECT_GT(spin_units_per_ns(), 0.0);
}

}  // namespace
}  // namespace spdag
