// Tests for structured futures: completion/registration races, multiple
// consumers, chaining, and interaction with the finish discipline.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <tuple>
#include <utility>

#include "dag/future.hpp"
#include "harness/workloads.hpp"
#include "mem/registry.hpp"
#include "mem/slab_pool.hpp"
#include "mem/thread_slot.hpp"
#include "sched/runtime.hpp"
#include "util/dummy_work.hpp"

namespace spdag {
namespace {

TEST(Future, DefaultConstructedIsInvalid) {
  future<int> f;
  EXPECT_FALSE(f.valid());
  EXPECT_FALSE(f.ready());
}

TEST(Future, ProducerValueReachesConsumer) {
  runtime rt(runtime_config{2, "dyn"});
  std::atomic<int> got{0};
  auto* g = &got;
  rt.run([g] {
    fork2_future<int>([] { return 41 + 1; },
                      [g](future<int> f) {
                        future_then(f, [g](int v) { g->store(v); });
                      });
  });
  EXPECT_EQ(got.load(), 42);
}

TEST(Future, SlowProducerStillDelivers) {
  runtime rt(runtime_config{2, "dyn"});
  std::atomic<int> got{0};
  auto* g = &got;
  rt.run([g] {
    fork2_future<int>(
        [] {
          spin_ns(2'000'000);  // ~2ms: consumer registers first
          return 7;
        },
        [g](future<int> f) {
          future_then(f, [g](int v) { g->store(v); });
        });
  });
  EXPECT_EQ(got.load(), 7);
}

TEST(Future, FastProducerAlreadyReadyAtRegistration) {
  runtime rt(runtime_config{2, "dyn"});
  std::atomic<int> got{0};
  auto* g = &got;
  rt.run([g] {
    fork2_future<int>([] { return 9; },
                      [g](future<int> f) {
                        spin_ns(2'000'000);  // producer finishes first
                        future_then(f, [g](int v) { g->store(v); });
                      });
  });
  EXPECT_EQ(got.load(), 9);
}

TEST(Future, MultipleConsumersAllFire) {
  runtime rt(runtime_config{3, "dyn"});
  std::atomic<int> sum{0};
  auto* s = &sum;
  rt.run([s] {
    fork2_future<int>(
        [] { return 5; },
        [s](future<int> f) {
          fork2(
              [s, f] { future_then(f, [s](int v) { s->fetch_add(v); }); },
              [s, f] {
                fork2([s, f] { future_then(f, [s](int v) { s->fetch_add(v); }); },
                      [s, f] { future_then(f, [s](int v) { s->fetch_add(v); }); });
              });
        });
  });
  EXPECT_EQ(sum.load(), 15);
}

TEST(Future, ChainedFuturesPipeline) {
  // a -> b -> c: each stage consumes the previous stage's value.
  runtime rt(runtime_config{2, "dyn"});
  std::atomic<int> final_value{0};
  auto* out = &final_value;
  rt.run([out] {
    fork2_future<int>([] { return 1; },
                      [out](future<int> a) {
                        future_then(a, [out](int va) {
                          fork2_future<int>([va] { return va * 10; },
                                            [out](future<int> b) {
                                              future_then(b, [out](int vb) {
                                                out->store(vb + 3);
                                              });
                                            });
                        });
                      });
  });
  EXPECT_EQ(final_value.load(), 13);
}

TEST(Future, FinishWaitsForConsumers) {
  // The enclosing run() must not return before every future consumer ran —
  // that is what "structured" buys.
  runtime rt(runtime_config{4, "dyn"});
  std::atomic<int> stages{0};
  auto* st = &stages;
  rt.run([st] {
    fork2_future<int>(
        [st] {
          spin_ns(1'000'000);
          st->fetch_add(1);
          return 1;
        },
        [st](future<int> f) {
          future_then(f, [st](int) {
            spin_ns(1'000'000);
            st->fetch_add(1);
          });
        });
  });
  EXPECT_EQ(stages.load(), 2) << "run() returned before the consumer finished";
  EXPECT_EQ(rt.engine().live_vertices(), 0u);
}

TEST(Future, AbandonedFutureDoesNotLeakOrHang) {
  runtime rt(runtime_config{2, "dyn"});
  std::atomic<int> produced{0};
  auto* p = &produced;
  rt.run([p] {
    fork2_future<int>([p] { p->fetch_add(1); return 4; },
                      [](future<int>) { /* never consume */ });
  });
  EXPECT_EQ(produced.load(), 1);
  EXPECT_EQ(rt.engine().live_vertices(), 0u);
}

TEST(Future, NonTrivialValueType) {
  runtime rt(runtime_config{2, "dyn"});
  std::string got;
  auto* g = &got;
  rt.run([g] {
    fork2_future<std::string>([] { return std::string("hello futures"); },
                              [g](future<std::string> f) {
                                future_then(f, [g](const std::string& s) {
                                  *g = s;
                                });
                              });
  });
  EXPECT_EQ(got, "hello futures");
}

// --- copy/share semantics of the intrusive-refcount handle ---

TEST(FutureSharing, CopiesShareOneStateAndLastCopyRecycles) {
  // A private registry so the pool counters below see only this test.
  slab_pool_registry pools;
  simple_outset_factory outsets(&pools);
  // Warm the factory's object bank first: the out-set object itself is a
  // registry cell that stays live (parked for reuse, never freed) across
  // recycles, so it must be inside the baseline, not the delta.
  outsets.release(outsets.acquire());
  const pool_stats before = pools.totals();
  {
    future<int> a = future<int>::make(outsets);
    future<int> b = a;           // copy shares the state
    future<int> c;
    c = b;                       // copy-assign too
    future<int> d = std::move(b);  // move transfers, b becomes invalid
    EXPECT_TRUE(a.valid());
    EXPECT_FALSE(b.valid());  // NOLINT(bugprone-use-after-move)
    EXPECT_TRUE(c.valid());
    EXPECT_TRUE(d.valid());
    a.complete(7, nullptr);
    EXPECT_TRUE(c.ready()) << "copies must observe the shared completion";
    EXPECT_EQ(d.get(), 7);
    EXPECT_EQ(pools.totals().live() - before.live(), 1u)
        << "all copies share one pooled state";
  }
  EXPECT_EQ(pools.totals().live(), before.live())
      << "the last copy must return the state cell to its pool";
}

TEST(FutureSharing, SelfAssignmentIsSafe) {
  slab_pool_registry pools;
  simple_outset_factory outsets(&pools);
  future<int> a = future<int>::make(outsets);
  future<int>& alias = a;
  a = alias;  // must not drop the only reference
  EXPECT_TRUE(a.valid());
  a.complete(3, nullptr);
  EXPECT_EQ(a.get(), 3);
}

TEST(FutureSharing, StateIsRecycledAcrossGenerations) {
  slab_pool_registry pools;
  simple_outset_factory outsets(&pools);
  // See above: baseline after one warm-up cycle so the factory's banked
  // out-set cell (live by design) doesn't read as a leak.
  outsets.release(outsets.acquire());
  const pool_stats warm = pools.totals();
  for (int i = 0; i < 100; ++i) {
    future<int> f = future<int>::make(outsets);
    f.complete(i, nullptr);
    EXPECT_EQ(f.get(), i);
  }
  const pool_stats s = pools.totals();
  EXPECT_EQ(s.live(), warm.live());
  EXPECT_GT(s.recycles, 0u) << "state cells must recycle, not accumulate";
}

// --- the acceptance criterion: zero malloc on the fork2_future hot path ---

class FuturePooling : public ::testing::TestWithParam<std::string> {};

TEST_P(FuturePooling, SteadyStateChurnPerformsZeroUpstreamAllocation) {
  const std::string alloc = GetParam();
  runtime_config cfg{2, "dyn"};
  cfg.alloc = alloc;
  runtime rt(cfg);
  // Warm-up rounds carve the slabs, spread the per-worker magazines, and —
  // in adaptive mode — let the effective caps settle on this workload.
  for (int i = 0; i < 4; ++i) harness::future_churn(rt, 2048);

  // The acceptance pools: everything a fork2_future lifecycle allocates.
  // snzi_pair is excluded — the in-counter grows its tree with probability
  // 1/threshold per arrive BY DESIGN, so pooled counters park a few more
  // pairs for many rounds before saturating; that is counter behavior, not
  // future-path malloc. The factories' object banks ("counter:…",
  // "outset:…" — not "outset_waiter:…") are excluded for the same reason:
  // banked objects are permanently-live cells by design (parked for reuse,
  // never freed), and the bank grows to the high-water concurrent demand,
  // which stealing timing can nudge past warm-up. Bank effectiveness is
  // factory::created()'s job, not this test's.
  auto future_pools = [&] {
    pool_stats sum;
    for (const auto& row : rt.pools().rows()) {
      if (row.name.rfind("snzi_pair", 0) == 0) continue;
      if (row.name.rfind("counter:", 0) == 0) continue;
      if (row.name.rfind("outset:", 0) == 0) continue;
      sum += row.stats;
    }
    return sum;
  };

  const pool_stats warm = future_pools();
  std::uint64_t delivered = 0;
  for (int i = 0; i < 5; ++i) delivered += harness::future_churn(rt, 2048);
  const pool_stats after = future_pools();
  EXPECT_EQ(delivered, 5u * 2048u);
  // The acceptance criterion: slab growths (trips to malloc) plateau while
  // allocs/recycles keep climbing. Cell CARVING from already-reserved slabs
  // may still trickle as work stealing redistributes magazine contents —
  // that is pointer arithmetic, not malloc — and an adaptive cap change can
  // shift cells between magazines and the recycle list, so the carve bound
  // scales with the actual stranding capacity: one full magazine (clamp
  // ceiling) per claimed thread slot per pool.
  if (alloc.find("adaptive") != std::string::npos) {
    // A cap that grows mid-measurement may legitimately reserve one more
    // slab PER POOL while the magazines re-learn their depth (the delta is
    // summed across pools); it plateaus after.
    EXPECT_LE(after.slab_growths - warm.slab_growths,
              static_cast<std::uint64_t>(rt.pools().rows().size()))
        << "adaptive churn may grow at most one slab per pool past warm-up";
  } else {
    EXPECT_EQ(after.slab_growths, warm.slab_growths)
        << "steady-state fork2_future churn must never reach the upstream "
           "allocator under alloc:pool";
  }
  const std::uint64_t mag_headroom =
      static_cast<std::uint64_t>(mem::claimed_thread_slots()) *
      slab_cache::mag_cap_max *
      static_cast<std::uint64_t>(rt.pools().rows().size());
  EXPECT_LE(after.carved - warm.carved, mag_headroom);
  EXPECT_GT(after.allocs, warm.allocs) << "...while allocations keep flowing";
  EXPECT_GT(after.recycles, warm.recycles);
  // live() counts handed-out cells only — magazine-resident spares after an
  // adaptive shrink are frees, not leaks, so steady-state equality holds in
  // both modes.
  EXPECT_EQ(after.live(), warm.live()) << "churn must not leak cells";
}

INSTANTIATE_TEST_SUITE_P(FixedAndAdaptive, FuturePooling,
                         ::testing::Values("pool", "pool:adaptive"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& ch : name) {
                             if (ch == ':') ch = '_';
                           }
                           return name;
                         });

class FutureMatrix
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {};

TEST_P(FutureMatrix, StressManyFutures) {
  runtime_config cfg{3, std::get<0>(GetParam())};
  cfg.sched = std::get<1>(GetParam());
  runtime rt(cfg);
  std::atomic<std::uint64_t> sum{0};
  auto* s = &sum;
  rt.run([s] {
    struct rec {
      static void go(std::atomic<std::uint64_t>* s, int depth) {
        if (depth == 0) return;
        fork2_future<int>(
            [depth] { return depth; },
            [s, depth](future<int> f) {
              fork2([s, depth] { go(s, depth - 1); },
                    [s, f] {
                      future_then(f, [s](int v) {
                        s->fetch_add(static_cast<std::uint64_t>(v));
                      });
                    });
            });
      }
    };
    rec::go(s, 200);
  });
  EXPECT_EQ(sum.load(), 200u * 201u / 2);
}

INSTANTIATE_TEST_SUITE_P(
    AlgosAndScheds, FutureMatrix,
    ::testing::Combine(::testing::Values("faa", "dyn:1", "dyn"),
                       ::testing::Values("ws", "private")),
    [](const ::testing::TestParamInfo<std::tuple<std::string, std::string>>& info) {
      std::string algo = std::get<0>(info.param);
      for (char& ch : algo) {
        if (ch == ':') ch = '_';
      }
      return algo + "_" + std::get<1>(info.param);
    });

}  // namespace
}  // namespace spdag
