#include "outset/factory.hpp"

#include <stdexcept>

#include "outset/simple_outset.hpp"
#include "util/cache_aligned.hpp"

namespace spdag {

namespace {

// reset() sink: hand stranded waiter records straight back to the pool.
void repool_waiter(void* ctx, outset_waiter* w) {
  static_cast<outset_factory*>(ctx)->release_waiter(w);
}

// Strict unsigned parse: the whole field must be digits (stoull would
// silently wrap "-1" and ignore trailing garbage).
std::uint64_t parse_spec_u64(const std::string& field,
                             const std::string& spec) {
  if (field.empty() ||
      field.find_first_not_of("0123456789") != std::string::npos) {
    throw std::invalid_argument("bad number in outset spec: " + spec);
  }
  try {
    return std::stoull(field);
  } catch (const std::exception&) {
    throw std::invalid_argument("bad number in outset spec: " + spec);
  }
}

}  // namespace

outset_factory::outset_factory(pool_registry* pools)
    : pools_(pools != nullptr ? pools : &default_pool_registry()),
      waiter_pool_(&pools_->get("outset_waiter", sizeof(outset_waiter),
                                alignof(outset_waiter))) {}

outset* outset_factory::acquire() {
  outset* o = pool_.pop();
  if (o == nullptr) {
    auto fresh = create();
    o = fresh.get();
    std::lock_guard<std::mutex> lock(all_mu_);
    all_.push_back(std::move(fresh));
  }
  return o;
}

void outset_factory::release(outset* o) {
  o->reset(&repool_waiter, this);
  pool_.push(o);
}

outset_waiter* outset_factory::acquire_waiter(vertex* consumer,
                                              dag_engine* engine) {
  outset_waiter* w = pool_new<outset_waiter>(*waiter_pool_);
  w->consumer = consumer;
  w->engine = engine;
  return w;
}

std::size_t outset_factory::created() const {
  std::lock_guard<std::mutex> lock(all_mu_);
  return all_.size();
}

std::size_t outset_factory::waiters_created() const {
  return waiter_pool_->stats().carved;
}

outset_totals outset_factory::totals() const {
  std::lock_guard<std::mutex> lock(all_mu_);
  outset_totals t;
  for (const auto& o : all_) t += o->totals();
  return t;
}

std::unique_ptr<outset> simple_outset_factory::create() {
  return std::make_unique<simple_outset>();
}

tree_outset_factory::tree_outset_factory(tree_outset_config cfg,
                                         pool_registry* pools)
    : outset_factory(pools), cfg_(cfg) {
  // One group pool per fanout geometry; every tree this factory creates
  // shares it, so pooled out-sets recycled at different times draw from one
  // set of slabs.
  cfg_.groups = &tree_outset_group_pool(this->pools(), cfg_.fanout);
}

std::unique_ptr<outset> tree_outset_factory::create() {
  return std::make_unique<tree_outset>(cfg_);
}

std::unique_ptr<outset_factory> make_outset_factory(const std::string& spec,
                                                    pool_registry* pools) {
  std::string s = spec;
  if (s.rfind("outset:", 0) == 0) s = s.substr(7);
  if (s == "simple") return std::make_unique<simple_outset_factory>(pools);
  if (s == "tree") return std::make_unique<tree_outset_factory>(
      tree_outset_config{}, pools);
  if (s.rfind("tree:", 0) == 0) {
    tree_outset_config cfg;
    std::string rest = s.substr(5);
    const auto colon = rest.find(':');
    if (colon != std::string::npos) {
      // "tree:<fanout>:<threshold>": damp growth with a 1/threshold coin,
      // the same knob as the in-counter's "dyn:<threshold>".
      cfg.grow_threshold = parse_spec_u64(rest.substr(colon + 1), spec);
      rest = rest.substr(0, colon);
    }
    const std::uint64_t fanout = parse_spec_u64(rest, spec);
    // The upper bound is a sanity rail: a group (fanout cache lines) is one
    // pool cell, and fan-outs past a few dozen already defeat the point of
    // the tree (spreading adds across lines).
    if (fanout < 2 || fanout > 1024) {
      throw std::invalid_argument("outset tree fanout must be in [2, 1024]: " +
                                  spec);
    }
    cfg.fanout = static_cast<std::uint32_t>(fanout);
    return std::make_unique<tree_outset_factory>(cfg, pools);
  }
  throw std::invalid_argument("unknown outset spec: " + spec);
}

outset_factory& default_outset_factory() {
  static simple_outset_factory factory;
  return factory;
}

}  // namespace spdag
