#include "sched/private_deques.hpp"

#include <cassert>

#include "util/backoff.hpp"
#include "util/topology.hpp"

namespace spdag {

namespace {
thread_local int tls_pd_worker_id = -1;
thread_local private_deque_scheduler* tls_pd_scheduler = nullptr;
}  // namespace

private_deque_scheduler::private_deque_scheduler(private_deque_config cfg)
    : cfg_(cfg) {
  const std::size_t n = cfg_.workers == 0 ? hardware_core_count() : cfg_.workers;
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<padded<worker>>());
  }
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { worker_main(i); });
  }
}

private_deque_scheduler::~private_deque_scheduler() {
  shutdown_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(park_mu_);
    park_cv_.notify_all();
  }
  for (auto& t : threads_) t.join();
}

void private_deque_scheduler::enqueue(vertex* v) {
  if (tls_pd_scheduler == this && tls_pd_worker_id >= 0) {
    // Owner-only push; no synchronization by design.
    workers_[static_cast<std::size_t>(tls_pd_worker_id)]->value.tasks.push_back(v);
  } else {
    std::lock_guard<std::mutex> lock(inject_mu_);
    injected_.push_back(v);
    injected_size_.fetch_add(1, std::memory_order_release);
  }
  unpark_some();
}

vertex* private_deque_scheduler::pop_injected() {
  if (injected_size_.load(std::memory_order_acquire) == 0) return nullptr;
  std::lock_guard<std::mutex> lock(inject_mu_);
  if (injected_.empty()) return nullptr;
  vertex* v = injected_.front();
  injected_.pop_front();
  injected_size_.fetch_sub(1, std::memory_order_release);
  return v;
}

void private_deque_scheduler::unpark_some() {
  if (parked_.load(std::memory_order_acquire) > 0) {
    std::lock_guard<std::mutex> lock(park_mu_);
    park_cv_.notify_one();
  }
}

void private_deque_scheduler::communicate(std::size_t id, bool can_give) {
  worker& me = workers_[id]->value;
  const int thief = me.request.value.load(std::memory_order_acquire);
  if (thief == no_request) return;
  worker& other = workers_[static_cast<std::size_t>(thief)]->value;
  if (can_give && !me.tasks.empty()) {
    // Serve the OLDEST task: it is the root of the largest unexplored
    // subcomputation, the standard steal-one-from-the-top heuristic.
    vertex* v = me.tasks.front();
    me.tasks.pop_front();
    other.transfer.value.store(v, std::memory_order_release);
    me.requests_served.fetch_add(1, std::memory_order_relaxed);
  } else {
    other.transfer.value.store(declined(), std::memory_order_release);
    me.requests_declined.fetch_add(1, std::memory_order_relaxed);
  }
  me.request.value.store(no_request, std::memory_order_release);
}

vertex* private_deque_scheduler::try_steal(std::size_t id, std::size_t victim) {
  worker& me = workers_[id]->value;
  me.transfer.value.store(waiting(), std::memory_order_release);
  int expect = no_request;
  if (!workers_[victim]->value.request.value.compare_exchange_strong(
          expect, static_cast<int>(id), std::memory_order_acq_rel)) {
    return nullptr;  // another thief beat us to this victim
  }
  // Spin for the answer; keep declining our own incoming requests so two
  // thieves waiting on each other cannot deadlock.
  backoff b;
  for (;;) {
    vertex* v = me.transfer.value.load(std::memory_order_acquire);
    if (v != waiting()) {
      return v == declined() ? nullptr : v;
    }
    communicate(id, /*can_give=*/false);
    if (shutdown_.load(std::memory_order_acquire)) return nullptr;
    b.pause();
  }
}

void private_deque_scheduler::worker_main(std::size_t id) {
  tls_pd_worker_id = static_cast<int>(id);
  tls_pd_scheduler = this;
  if (cfg_.pin_threads) pin_current_thread(id);
  xoshiro256 rng(mix64(0xa076'1d64'78bd'642fULL ^ (id + 1)));
  worker& me = workers_[id]->value;

  while (!shutdown_.load(std::memory_order_acquire)) {
    if (!me.tasks.empty()) {
      // Busy: poll for steal requests, then run the newest task (LIFO for
      // locality; thieves get the oldest through communicate()).
      communicate(id, /*can_give=*/me.tasks.size() > 1);
      vertex* v = me.tasks.back();
      me.tasks.pop_back();
      dag_engine* eng = engine_.load(std::memory_order_acquire);
      assert(eng != nullptr && "work found with no engine attached");
      const bool is_final = (v == stop_vertex_.load(std::memory_order_relaxed));
      active_.fetch_add(1, std::memory_order_acq_rel);
      eng->execute(v);
      active_.fetch_sub(1, std::memory_order_acq_rel);
      me.executions.fetch_add(1, std::memory_order_relaxed);
      if (is_final) {
        std::lock_guard<std::mutex> lock(done_mu_);
        done_.store(true, std::memory_order_release);
        done_cv_.notify_all();
      }
      continue;
    }

    // Idle: decline anything pending, drain the injection queue, then go
    // thieving.
    communicate(id, /*can_give=*/false);
    if (vertex* v = pop_injected()) {
      me.tasks.push_back(v);
      continue;
    }
    bool got = false;
    for (std::size_t attempt = 0;
         attempt < cfg_.steal_attempts_before_park && !got; ++attempt) {
      const std::size_t victim =
          static_cast<std::size_t>(rng.below(workers_.size()));
      if (victim == id) continue;
      if (vertex* v = try_steal(id, victim)) {
        me.tasks.push_back(v);
        me.steals.fetch_add(1, std::memory_order_relaxed);
        got = true;
      } else {
        me.failed_steals.fetch_add(1, std::memory_order_relaxed);
        communicate(id, /*can_give=*/false);
      }
      if (shutdown_.load(std::memory_order_acquire)) return;
    }
    if (got) continue;

    // Park briefly; the timeout bounds both lost wakeups and the extra
    // latency a spinning thief sees while we sleep.
    std::unique_lock<std::mutex> lock(park_mu_);
    if (shutdown_.load(std::memory_order_acquire)) break;
    me.parks.fetch_add(1, std::memory_order_relaxed);
    parked_.fetch_add(1, std::memory_order_acq_rel);
    park_cv_.wait_for(lock, cfg_.park_timeout);
    parked_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

void private_deque_scheduler::run(dag_engine& engine, vertex* root,
                                  vertex* final_v) {
  assert(&engine.exec() == static_cast<executor*>(this) &&
         "engine must be bound to this scheduler");
  engine_.store(&engine, std::memory_order_release);
  stop_vertex_.store(final_v, std::memory_order_release);
  done_.store(false, std::memory_order_release);
  enqueue(root);
  {
    std::lock_guard<std::mutex> lock(park_mu_);
    park_cv_.notify_all();
  }
  {
    std::unique_lock<std::mutex> lock(done_mu_);
    done_cv_.wait(lock, [this] { return done_.load(std::memory_order_acquire); });
  }
  backoff b;
  while (active_.load(std::memory_order_acquire) != 0) b.pause();
  stop_vertex_.store(nullptr, std::memory_order_release);
}

scheduler_totals private_deque_scheduler::totals() const {
  scheduler_totals t;
  for (const auto& w : workers_) {
    t.executions += w->value.executions.load(std::memory_order_relaxed);
    t.steals += w->value.steals.load(std::memory_order_relaxed);
    t.failed_steal_sweeps += w->value.failed_steals.load(std::memory_order_relaxed);
    t.parks += w->value.parks.load(std::memory_order_relaxed);
  }
  return t;
}

void private_deque_scheduler::reset_totals() {
  for (auto& w : workers_) {
    w->value.executions.store(0, std::memory_order_relaxed);
    w->value.steals.store(0, std::memory_order_relaxed);
    w->value.failed_steals.store(0, std::memory_order_relaxed);
    w->value.parks.store(0, std::memory_order_relaxed);
    w->value.requests_served.store(0, std::memory_order_relaxed);
    w->value.requests_declined.store(0, std::memory_order_relaxed);
  }
}

}  // namespace spdag
