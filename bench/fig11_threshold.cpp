// Figure 11: the threshold study — fanin at max cores with the in-counter's
// grow probability p = 1/threshold swept over the paper's bar chart values
// {10, 50, 100, 500, 1000, 5000, 10000, 50000, 1000000}.
//
// Expected shape: a wide plateau — "essentially any threshold between 50 and
// 1000 works well" — with degradation at the extremes (tiny thresholds
// allocate too eagerly, huge thresholds degenerate toward a single cell).
// This doubles as ablation A3 (grow-policy sweep): thresholds 0 (never grow)
// and 1 (always grow, the analyzed setting) are included for completeness.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "harness/bench_runner.hpp"
#include "harness/workloads.hpp"
#include "sched/runtime.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

namespace {

using namespace spdag;

void register_config(std::uint64_t threshold, std::size_t workers,
                     std::uint64_t n, int runs) {
  const std::string algo = "dyn:" + std::to_string(threshold);
  const std::string name = "fig11/fanin/threshold:" + std::to_string(threshold);
  benchmark::RegisterBenchmark(name.c_str(), [=](benchmark::State& st) {
    runtime rt(runtime_config{workers, algo});
    harness::fanin(rt, n);
    double wall_sum_s = 0;
    for (auto _ : st) {
      wall_timer t;
      harness::fanin(rt, n);
      const double el = t.elapsed_s();
      st.SetIterationTime(el);
      wall_sum_s += el;
    }
    const double ops = static_cast<double>(harness::counter_ops(n));
    st.counters["ops/s/core"] = benchmark::Counter(
        ops / static_cast<double>(workers),
        benchmark::Counter::kIsIterationInvariantRate);
    harness::json_add_rate(name, algo, workers, runs, ops, wall_sum_s,
                           static_cast<double>(st.iterations()));
  })
      ->UseManualTime()
      ->Iterations(runs);
}

}  // namespace

int main(int argc, char** argv) {
  options opts(argc, argv);
  const auto common = harness::read_common(opts, /*default_n=*/1 << 17);
  harness::json_open(opts, "fig11_threshold");

  // Paper's bar chart values, plus the 0/1 ablation endpoints.
  const std::vector<std::uint64_t> thresholds{
      0, 1, 10, 50, 100, 500, 1000, 5000, 10000, 50000, 1000000};

  for (std::uint64_t t : thresholds) {
    register_config(t, common.max_proc, common.n, common.runs);
  }

  std::printf("# fig11: threshold study at proc=%zu, n=%llu "
              "(paper: 40 cores, plateau for thresholds 50..1000)\n",
              common.max_proc, static_cast<unsigned long long>(common.n));
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return harness::json_write();
}
