#pragma once
// Exponential backoff for CAS retry loops and work-stealing idle loops.

#include <cstdint>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace spdag {

// One CPU relax hint (PAUSE on x86). Cheap; keeps a spinning hyperthread
// from starving its sibling and reduces the cost of the eventual branch
// misprediction when the awaited value changes.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#else
  std::this_thread::yield();
#endif
}

// Capped exponential backoff. Starts with a few pause instructions and
// escalates to yielding the OS slice, which matters when the machine is
// oversubscribed (more workers than hardware threads).
class backoff {
 public:
  explicit backoff(std::uint32_t spin_cap = 1024) noexcept : spin_cap_(spin_cap) {}

  void pause() noexcept {
    if (spins_ <= spin_cap_) {
      for (std::uint32_t i = 0; i < spins_; ++i) cpu_relax();
      spins_ *= 2;
    } else {
      std::this_thread::yield();
    }
  }

  void reset() noexcept { spins_ = 1; }

 private:
  std::uint32_t spins_ = 1;
  std::uint32_t spin_cap_;
};

}  // namespace spdag
