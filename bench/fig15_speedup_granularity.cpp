// Figures 15a-15e (appendix C.3): speedup versus core count at five per-task
// dummy-work levels {1, 10, 100, 1000, 10000} ns.
//
// Baseline for every speedup value: Fetch & Add on ONE core at the same
// work level (the paper's "Fetch & Add cell @ 1 core"). Expected shape: all
// algorithms gain from cores as work grows; at fine grain the in-counter's
// curve rises while Fetch & Add's flattens (contention), and the gap narrows
// as per-task work grows.
//
// One table per work level = one sub-figure. Ratio-structured, so this
// binary prints paper-style tables via the shared harness (CSV with -csv 1).

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "harness/bench_runner.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace spdag;
  options opts(argc, argv);
  const auto common = harness::read_common(opts, /*default_n=*/1 << 13);
  harness::json_open(opts, "fig15_speedup_granularity");  // via run_config

  const std::vector<std::uint64_t> work_levels{1, 10, 100, 1000, 10000};
  // (algo, batch): "dyn+batch" routes the same shared parallel_for builder
  // through spawn_batch (see fig14).
  const std::vector<std::pair<std::string, bool>> algos{
      {"faa", false}, {"snzi:9", false}, {"dyn", false}, {"dyn", true}};
  const std::vector<std::size_t> procs =
      harness::worker_sweep(common.max_proc, /*points=*/6);

  std::printf("# fig15a-e: speedup vs cores at five dummy-work levels, fanin "
              "n=%llu (paper: n=8M, up to 20 cores shown)\n",
              static_cast<unsigned long long>(common.n));

  for (std::uint64_t w : work_levels) {
    // Baseline: FAA at 1 core, this work level.
    harness::bench_config base;
    base.workload = "fanin";
    base.algo = "faa";
    base.workers = 1;
    base.n = common.n;
    base.work_ns = w;
    base.repetitions = common.runs;
    const double base_time = harness::run_config(base).mean_s;

    std::printf("\n## fig15 @ %llu ns dummy work per task "
                "(speedup vs Fetch & Add @ 1 core)\n",
                static_cast<unsigned long long>(w));
    result_table table({"algo", "procs", "mean_s", "speedup"});
    for (const auto& [algo, batch] : algos) {
      for (std::size_t p : procs) {
        harness::bench_config cfg = base;
        cfg.algo = algo;
        cfg.workers = p;
        cfg.batch = batch;
        const harness::bench_result r = harness::run_config(cfg);
        const double speedup = r.mean_s > 0 ? base_time / r.mean_s : 0;
        const std::string label = batch ? algo + "+batch" : algo;
        table.add_row({label, std::to_string(p), result_table::num(r.mean_s, 4),
                       result_table::num(speedup, 2)});
      }
    }
    harness::emit(table, common.csv);
  }
  return harness::json_write();
}
