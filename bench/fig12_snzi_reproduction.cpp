// Figure 12 (appendix C.1): reproduction of the ORIGINAL SNZI paper's
// Figure 10 — p threads hammer arrive/depart pairs directly on a fixed-depth
// SNZI tree (depths 1..5) versus a single fetch-and-add cell; throughput in
// operations per second per core.
//
// This bypasses the sp-dag runtime entirely: it validates the raw SNZI
// implementation the rest of the library builds on, exactly as the paper's
// authors did before trusting their own SNZI port.
//
// Expected shape (paper appendix C.1): FAA is the worst performer beyond ~4
// cores; the best fixed depth grows with the core count; on 40/48 cores the
// best SNZI setting beats FAA by an order of magnitude.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "harness/bench_runner.hpp"
#include "snzi/fixed_tree.hpp"
#include "util/cache_aligned.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/spin_barrier.hpp"
#include "util/timer.hpp"

namespace {

using namespace spdag;

// Runs `threads` workers, each doing `pairs` arrive/depart pairs through
// `op`, started simultaneously through a barrier. Returns elapsed seconds.
template <typename PerThread>
double hammer(std::size_t threads, PerThread&& per_thread) {
  spin_barrier start(threads + 1);
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      start.arrive_and_wait();
      per_thread(t);
    });
  }
  // Start the clock BEFORE releasing the barrier: on an oversubscribed host
  // the last arriver may be a worker that runs to completion before this
  // (preempted) thread is rescheduled, which would time nothing.
  wall_timer timer;
  start.arrive_and_wait();
  for (auto& th : pool) th.join();
  return timer.elapsed_s();
}

void register_snzi(int depth, std::size_t threads, std::uint64_t pairs_per_thread,
                   int runs) {
  const std::string name = "fig12/snzi_depth:" + std::to_string(depth) +
                           "/proc:" + std::to_string(threads);
  benchmark::RegisterBenchmark(name.c_str(), [=](benchmark::State& st) {
    snzi::fixed_tree tree(depth);
    double wall_sum_s = 0;
    for (auto _ : st) {
      const double s = hammer(threads, [&](std::size_t tid) {
        xoshiro256 rng(tid * 31 + 7);
        for (std::uint64_t i = 0; i < pairs_per_thread; ++i) {
          snzi::node* tok = tree.arrive(rng());
          tree.depart(tok);
        }
      });
      st.SetIterationTime(s);
      wall_sum_s += s;
    }
    const double ops = 2.0 * static_cast<double>(pairs_per_thread) *
                       static_cast<double>(threads);
    st.counters["ops/s/core"] = benchmark::Counter(
        ops / static_cast<double>(threads),
        benchmark::Counter::kIsIterationInvariantRate);
    harness::json_add_rate(name, "snzi:" + std::to_string(depth), threads,
                           runs, ops, wall_sum_s,
                           static_cast<double>(st.iterations()));
  })
      ->UseManualTime()
      ->Iterations(runs);
}

void register_faa(std::size_t threads, std::uint64_t pairs_per_thread, int runs) {
  const std::string name = "fig12/faa/proc:" + std::to_string(threads);
  benchmark::RegisterBenchmark(name.c_str(), [=](benchmark::State& st) {
    cache_aligned<std::atomic<std::int64_t>> cell{0};
    double wall_sum_s = 0;
    for (auto _ : st) {
      const double s = hammer(threads, [&](std::size_t) {
        for (std::uint64_t i = 0; i < pairs_per_thread; ++i) {
          cell.value.fetch_add(1, std::memory_order_seq_cst);
          cell.value.fetch_sub(1, std::memory_order_seq_cst);
        }
      });
      st.SetIterationTime(s);
      wall_sum_s += s;
    }
    const double ops = 2.0 * static_cast<double>(pairs_per_thread) *
                       static_cast<double>(threads);
    st.counters["ops/s/core"] = benchmark::Counter(
        ops / static_cast<double>(threads),
        benchmark::Counter::kIsIterationInvariantRate);
    harness::json_add_rate(name, "faa", threads, runs, ops, wall_sum_s,
                           static_cast<double>(st.iterations()));
  })
      ->UseManualTime()
      ->Iterations(runs);
}

}  // namespace

int main(int argc, char** argv) {
  options opts(argc, argv);
  const auto common = harness::read_common(opts, /*default_n=*/1 << 16);
  harness::json_open(opts, "fig12_snzi_reproduction");

  for (std::size_t p : harness::worker_sweep(common.max_proc)) {
    const std::uint64_t pairs = common.n / p;
    register_faa(p, pairs, common.runs);
    for (int depth = 1; depth <= 5; ++depth) {
      register_snzi(depth, p, pairs, common.runs);
    }
  }

  std::printf("# fig12: raw SNZI reproduction (orig. SNZI paper Fig 10), "
              "n=%llu total pairs, max_proc=%zu\n",
              static_cast<unsigned long long>(common.n), common.max_proc);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return harness::json_write();
}
