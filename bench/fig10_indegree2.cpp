// Figure 10: indegree-2 benchmark, varying processors.
//
// Paper setup: n = 8M, algorithms Fetch & Add, fixed SNZI depths 2 and 4,
// and the in-counter. Every pair of asyncs gets its own finish block, so the
// cost under test is per-counter setup (where large fixed SNZI trees lose)
// rather than contention on one counter. Expected shape: the in-counter is
// within ~2x of the best performer (Fetch & Add); large fixed depths are
// disproportionately slow.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "harness/bench_runner.hpp"
#include "harness/workloads.hpp"
#include "sched/runtime.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

namespace {

using namespace spdag;

void register_config(const std::string& algo, std::size_t workers,
                     std::uint64_t n, int runs) {
  const std::string name =
      "fig10/indegree2/" + algo + "/proc:" + std::to_string(workers);
  benchmark::RegisterBenchmark(name.c_str(), [=](benchmark::State& st) {
    runtime rt(runtime_config{workers, algo});
    harness::indegree2(rt, n);
    double wall_sum_s = 0;
    for (auto _ : st) {
      wall_timer t;
      harness::indegree2(rt, n);
      const double el = t.elapsed_s();
      st.SetIterationTime(el);
      wall_sum_s += el;
    }
    const double ops = static_cast<double>(harness::counter_ops(n));
    st.counters["ops/s/core"] = benchmark::Counter(
        ops / static_cast<double>(workers),
        benchmark::Counter::kIsIterationInvariantRate);
    harness::json_add_rate(name, algo, workers, runs, ops, wall_sum_s,
                           static_cast<double>(st.iterations()));
  })
      ->UseManualTime()
      ->Iterations(runs);
}

}  // namespace

int main(int argc, char** argv) {
  options opts(argc, argv);
  const auto common = harness::read_common(opts, /*default_n=*/1 << 16);
  harness::json_open(opts, "fig10_indegree2");

  // Paper Figure 10 legend: Fetch & Add, SNZI depth 2, SNZI depth 4,
  // in-counter ("For SNZI, we only considered small-depths, since larger
  // ones took too long to run").
  const std::vector<std::string> algos{"faa", "snzi:2", "snzi:4", "dyn"};

  for (const auto& algo : algos) {
    for (std::size_t p : harness::worker_sweep(common.max_proc)) {
      register_config(algo, p, common.n, common.runs);
    }
  }

  std::printf("# fig10: indegree2, n=%llu, max_proc=%zu (paper: n=8M, 40 cores)\n",
              static_cast<unsigned long long>(common.n), common.max_proc);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return harness::json_write();
}
