#include "mem/registry.hpp"

#include <stdexcept>

#include "mem/malloc_pool.hpp"
#include "mem/slab_pool.hpp"

namespace spdag {

object_pool& pool_registry::get(const std::string& name, std::size_t bytes,
                                std::size_t align) {
  // Alignment is part of the identity: a same-named, same-sized caller with
  // a stricter alignment must NOT receive under-aligned cells — and the
  // composed name must distinguish the two pools in stats rows.
  const std::string key =
      name + ":" + std::to_string(bytes) + ":a" + std::to_string(align);
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& p : pools_) {
    if (p->name() == key) return *p;
  }
  pools_.push_back(create(key, bytes, align));
  return *pools_.back();
}

std::vector<pool_registry_row> pool_registry::rows() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<pool_registry_row> out;
  out.reserve(pools_.size());
  for (const auto& p : pools_) {
    out.push_back({p->name(), p->object_bytes(), p->stats()});
  }
  return out;
}

pool_stats pool_registry::totals() const {
  std::lock_guard<std::mutex> lock(mu_);
  pool_stats t;
  for (const auto& p : pools_) t += p->stats();
  return t;
}

std::unique_ptr<object_pool> malloc_pool_registry::create(std::string name,
                                                          std::size_t bytes,
                                                          std::size_t align) {
  return std::make_unique<malloc_pool>(std::move(name), bytes, align);
}

std::string slab_pool_registry::spec() const {
  return slab_bytes_ == 0 ? "pool" : "pool:" + std::to_string(slab_bytes_);
}

std::unique_ptr<object_pool> slab_pool_registry::create(std::string name,
                                                        std::size_t bytes,
                                                        std::size_t align) {
  return std::make_unique<slab_cache>(
      std::move(name), bytes, align,
      slab_bytes_ == 0 ? slab_cache::default_slab_bytes : slab_bytes_);
}

std::unique_ptr<pool_registry> make_pool_registry(const std::string& spec) {
  std::string s = spec;
  if (s.rfind("alloc:", 0) == 0) s = s.substr(6);
  if (s == "malloc") return std::make_unique<malloc_pool_registry>();
  if (s == "pool") return std::make_unique<slab_pool_registry>();
  if (s.rfind("pool:", 0) == 0) {
    // Strict parse: the whole field must be digits, and any value stol
    // could overflow on is already outside the rails below.
    const std::string field = s.substr(5);
    unsigned long long bytes = 0;
    if (field.empty() ||
        field.find_first_not_of("0123456789") != std::string::npos) {
      bytes = 0;
    } else {
      try {
        bytes = std::stoull(field);
      } catch (const std::exception&) {
        bytes = 0;
      }
    }
    // Lower rail: a block must amortize its carve mutex trip over a useful
    // batch. Upper rail: keep one pool's upstream unit below 16 MiB.
    if (bytes < 4096 || bytes > (1ULL << 24)) {
      throw std::invalid_argument("alloc pool block must be in [4096, 2^24]: " +
                                  spec);
    }
    return std::make_unique<slab_pool_registry>(static_cast<std::size_t>(bytes));
  }
  throw std::invalid_argument("unknown alloc spec: " + spec);
}

pool_registry& default_pool_registry() {
  static slab_pool_registry registry;
  return registry;
}

}  // namespace spdag
