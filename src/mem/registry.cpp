#include "mem/registry.hpp"

#include <stdexcept>

#include "mem/epoch.hpp"
#include "mem/malloc_pool.hpp"
#include "mem/slab_pool.hpp"

namespace spdag {

object_pool& pool_registry::get(const std::string& name, std::size_t bytes,
                                std::size_t align) {
  // Alignment is part of the identity: a same-named, same-sized caller with
  // a stricter alignment must NOT receive under-aligned cells — and the
  // composed name must distinguish the two pools in stats rows.
  const std::string key =
      name + ":" + std::to_string(bytes) + ":a" + std::to_string(align);
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& p : pools_) {
    if (p->name() == key) return *p;
  }
  pools_.push_back(create(key, bytes, align));
  return *pools_.back();
}

std::vector<pool_registry_row> pool_registry::rows() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<pool_registry_row> out;
  out.reserve(pools_.size());
  for (const auto& p : pools_) {
    out.push_back({p->name(), p->object_bytes(), p->stats()});
  }
  return out;
}

pool_stats pool_registry::totals() const {
  std::lock_guard<std::mutex> lock(mu_);
  pool_stats t;
  for (const auto& p : pools_) t += p->stats();
  return t;
}

std::size_t pool_registry::trim() {
  std::size_t released = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& p : pools_) released += p->trim();
  }
  if (mem::epoch::enabled()) {
    // At quiescence no OTHER thread is pinned, so both advances succeed and
    // whatever an earlier live trim parked in limbo becomes reclaimable.
    // The caller itself may hold a loop-scoped pin (the service dispatcher
    // does) — it holds no stale pointers here, so refreshing its own record
    // between the advances keeps it from being the laggard that blocks the
    // second one.
    mem::epoch::try_advance();
    mem::epoch::refresh();
    mem::epoch::try_advance();
    released += mem::epoch::reclaim();
  }
  return released;
}

std::size_t pool_registry::trim_live(std::size_t* reclaimed) {
  std::size_t retired = 0;
  if (mem::epoch::enabled()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const auto& p : pools_) retired += p->trim_live();
    }
    // The caller holds no stale pointers at this boundary (trim_live's own
    // pins are scoped inside the drain); republish its record so a
    // loop-pinned caller never blocks the very advance it is driving.
    mem::epoch::refresh();
    mem::epoch::try_advance();
    if (reclaimed != nullptr) {
      *reclaimed = mem::epoch::reclaim();
    } else {
      mem::epoch::reclaim();
    }
  } else if (reclaimed != nullptr) {
    *reclaimed = 0;
  }
  return retired;
}

std::unique_ptr<object_pool> malloc_pool_registry::create(std::string name,
                                                          std::size_t bytes,
                                                          std::size_t align) {
  return std::make_unique<malloc_pool>(std::move(name), bytes, align);
}

std::string slab_pool_registry::spec() const {
  // Canonical echo: fields are positional, so a set magazine budget forces
  // the block field to be printed too (at its resolved default if unset).
  // Appends, not one operator+ chain — gcc 12 -Wrestrict (PR 105651).
  std::string s = "pool";
  if (slab_bytes_ != 0 || magazine_bytes_ != 0) {
    s += ':';
    s += std::to_string(slab_bytes_ == 0 ? slab_cache::default_slab_bytes
                                         : slab_bytes_);
  }
  if (magazine_bytes_ != 0) {
    s += ':';
    s += std::to_string(magazine_bytes_);
  }
  if (adaptive_) s += ":adaptive";
  if (elim_) s += ":elim";
  return s;
}

std::unique_ptr<object_pool> slab_pool_registry::create(std::string name,
                                                        std::size_t bytes,
                                                        std::size_t align) {
  return std::make_unique<slab_cache>(
      std::move(name), bytes, align,
      slab_bytes_ == 0 ? slab_cache::default_slab_bytes : slab_bytes_,
      magazine_bytes_, adaptive_, elim_);
}

namespace {

// Strict numeric field: all digits, within [lo, hi]. Anything else —
// empty, trailing garbage, overflow, negative — is invalid_argument.
std::size_t parse_bytes_field(const std::string& field, unsigned long long lo,
                              unsigned long long hi, const char* what,
                              const std::string& spec) {
  unsigned long long bytes = 0;
  if (!field.empty() &&
      field.find_first_not_of("0123456789") == std::string::npos) {
    try {
      bytes = std::stoull(field);
    } catch (const std::exception&) {
      bytes = 0;
    }
  }
  if (bytes < lo || bytes > hi) {
    // Built by append (not one operator+ chain): gcc 12's -Wrestrict trips
    // a false positive on long string concatenations (GCC PR 105651).
    std::string msg = "alloc pool ";
    msg += what;
    msg += " must be in [";
    msg += std::to_string(lo);
    msg += ", ";
    msg += std::to_string(hi);
    msg += "]: ";
    msg += spec;
    throw std::invalid_argument(msg);
  }
  return static_cast<std::size_t>(bytes);
}

}  // namespace

std::unique_ptr<pool_registry> make_pool_registry(const std::string& spec) {
  std::string s = spec;
  if (s.rfind("alloc:", 0) == 0) s = s.substr(6);
  if (s == "malloc") return std::make_unique<malloc_pool_registry>();
  if (s != "pool" && s.rfind("pool:", 0) != 0) {
    throw std::invalid_argument("unknown alloc spec: " + spec);
  }
  // pool[:block[:mag]][:adaptive][:elim] — split the tail on ':'.
  std::vector<std::string> fields;
  for (std::size_t at = 4; at < s.size();) {
    const std::size_t next = s.find(':', at + 1);
    fields.push_back(s.substr(at + 1, next == std::string::npos
                                          ? std::string::npos
                                          : next - at - 1));
    at = next;
  }
  // Trailing flags, any order, each at most once ("pool:adaptive:adaptive"
  // must still fail — the duplicate falls through to the numeric parse).
  bool adaptive = false;
  bool elim = false;
  while (!fields.empty()) {
    if (fields.back() == "adaptive" && !adaptive) {
      adaptive = true;
    } else if (fields.back() == "elim" && !elim) {
      elim = true;
    } else {
      break;
    }
    fields.pop_back();
  }
  if (fields.size() > 2) {
    throw std::invalid_argument("alloc pool spec has too many fields: " + spec);
  }
  // Block rails: a block must amortize its carve mutex trip over a useful
  // batch, and one pool's upstream unit stays below 16 MiB. Magazine rails:
  // the budget's derived CELL capacity is clamped to [8, 128] anyway, so
  // the rails just reject obvious nonsense.
  std::size_t slab_bytes = 0;
  std::size_t mag_bytes = 0;
  if (fields.size() >= 1) {
    slab_bytes = parse_bytes_field(fields[0], 4096, 1ULL << 24, "block", spec);
  }
  if (fields.size() == 2) {
    mag_bytes = parse_bytes_field(fields[1], 256, 1ULL << 20, "magazine", spec);
  }
  return std::make_unique<slab_pool_registry>(slab_bytes, mag_bytes, adaptive,
                                              elim);
}

pool_registry& default_pool_registry() {
  static slab_pool_registry registry;
  return registry;
}

}  // namespace spdag
