#include "obs/trace.hpp"

#include <chrono>
#include <mutex>
#include <stdexcept>

#include "mem/thread_slot.hpp"
#include "obs/trace_export.hpp"

namespace spdag::obs {

namespace detail {
std::atomic<int> g_mode{0};
}  // namespace detail

namespace {

// Raw event clock: the x86 timestamp counter where available (one
// instruction, constant-rate on every machine this targets), otherwise the
// steady clock in nanoseconds. Either way dump()/summary() map ticks onto
// nanoseconds through a two-anchor linear calibration, so the unit never
// leaks out of this file.
std::uint64_t now_ticks() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_ia32_rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

std::int64_t steady_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Single-writer relaxed increment (the slab-pool magazine idiom): exact
// because only the owning thread writes, atomic so cross-thread summary()
// reads stay clean.
void bump(std::atomic<std::uint64_t>& c) noexcept {
  c.store(c.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
}
void add_to(std::atomic<std::uint64_t>& c, std::uint64_t d) noexcept {
  c.store(c.load(std::memory_order_relaxed) + d, std::memory_order_relaxed);
}

// One thread slot's accumulators + ring. Created lazily on first emit,
// destroyed only by configure() (quiescent), so a worker's pointer never
// dangles mid-run. span_start/span_depth are owner-only plain fields;
// everything cross-thread-readable is a relaxed atomic.
struct track {
  std::atomic<std::uint64_t> head{0};     // ring pushes, monotone
  std::atomic<std::uint64_t> emitted{0};  // every event, ring or not
  trace_event* ring = nullptr;
  std::uint64_t span_start[span_id_count] = {};
  std::uint32_t span_depth[span_id_count] = {};
  std::atomic<std::uint64_t> span_ticks[span_id_count] = {};
  std::atomic<std::uint64_t> span_calls[span_id_count] = {};
  std::atomic<std::uint64_t> counts[event_id_count] = {};

  ~track() { delete[] ring; }
};

std::atomic<track*> g_tracks[mem::max_thread_slots] = {};
std::mutex g_track_mu;                 // lazy track creation + configure
std::size_t g_cap = 0;                 // ring capacity (0 = no rings)
std::uint64_t g_cap_mask = 0;
std::atomic<std::int64_t> g_gauges[gauge_id_count] = {};
std::atomic<std::uint64_t> g_slotless{0};  // emits from slotless threads
std::atomic<std::uint64_t> g_anchor_ticks{0};
std::atomic<std::int64_t> g_anchor_ns{0};

constexpr event_id span_begin_ev[span_id_count] = {
    ev_work_begin, ev_idle_begin,     ev_steal_begin,
    ev_drain_begin, ev_finalize_begin, ev_trim_begin};
constexpr event_id span_end_ev[span_id_count] = {
    ev_work_end, ev_idle_end,     ev_steal_end,
    ev_drain_end, ev_finalize_end, ev_trim_end};
constexpr event_id gauge_ev[gauge_id_count] = {
    ev_ctr_runnable, ev_ctr_drains_pending, ev_ctr_slab_kib, ev_ctr_inflight,
    ev_ctr_epoch_lag};

std::size_t round_up_pow2(std::size_t v) noexcept {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

track* track_for() noexcept {
  const int slot = mem::thread_slot();
  if (slot < 0) {
    // Over-subscribed thread beyond the dense-slot supply: counted, not
    // traced (mirrors the slab cache's magazine-less bypass).
    g_slotless.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  track* t = g_tracks[slot].load(std::memory_order_acquire);
  if (t == nullptr) {
    std::lock_guard<std::mutex> lock(g_track_mu);
    t = g_tracks[slot].load(std::memory_order_relaxed);
    if (t == nullptr) {
      t = new track;
      if (g_cap != 0) t->ring = new trace_event[g_cap];
      g_tracks[slot].store(t, std::memory_order_release);
    }
  }
  return t;
}

void emit_raw(track* t, std::uint16_t id, std::uint16_t a,
              std::uint32_t b, std::uint64_t ts) noexcept {
  bump(t->counts[id]);
  bump(t->emitted);
  if (t->ring != nullptr) {
    const std::uint64_t h = t->head.load(std::memory_order_relaxed);
    t->ring[h & g_cap_mask] = trace_event{ts, id, a, b};
    t->head.store(h + 1, std::memory_order_relaxed);
  }
}

void anchor_now() noexcept {
  g_anchor_ticks.store(now_ticks(), std::memory_order_relaxed);
  g_anchor_ns.store(steady_ns(), std::memory_order_relaxed);
}

// Ticks-to-nanoseconds rate from the configure/reset anchor to now; 1.0
// when no time has passed (or on the steady-clock fallback, where it
// converges to 1 anyway).
double ns_per_tick_now() noexcept {
  const std::uint64_t t0 = g_anchor_ticks.load(std::memory_order_relaxed);
  const std::uint64_t t1 = now_ticks();
  if (t1 <= t0) return 1.0;
  const double dns = static_cast<double>(
      steady_ns() - g_anchor_ns.load(std::memory_order_relaxed));
  return dns > 0 ? dns / static_cast<double>(t1 - t0) : 1.0;
}

}  // namespace

namespace detail {

void emit_slow(std::uint16_t id, std::uint16_t a, std::uint32_t b) noexcept {
  track* t = track_for();
  if (t == nullptr) return;
  emit_raw(t, id, a, b, t->ring != nullptr ? now_ticks() : 0);
}

void span_begin_slow(int span) noexcept {
  track* t = track_for();
  if (t == nullptr) return;
  if (t->span_depth[span]++ != 0) return;  // nested: outermost pair wins
  const std::uint64_t ts = now_ticks();
  t->span_start[span] = ts;
  emit_raw(t, span_begin_ev[span], 0, 0, ts);
}

void span_end_slow(int span) noexcept {
  track* t = track_for();
  if (t == nullptr) return;
  if (t->span_depth[span] == 0) return;  // begin lost to a reconfigure
  if (--t->span_depth[span] != 0) return;
  const std::uint64_t ts = now_ticks();
  add_to(t->span_ticks[span], ts - t->span_start[span]);
  bump(t->span_calls[span]);
  emit_raw(t, span_end_ev[span], 0, 0, ts);
}

void gauge_add_slow(int gauge, std::int64_t delta) noexcept {
  const std::int64_t v =
      g_gauges[gauge].fetch_add(delta, std::memory_order_relaxed) + delta;
  if (g_cap == 0) return;  // counters mode: gauge only, no ring sample
  track* t = track_for();
  if (t == nullptr) return;
  const std::uint64_t clamped =
      v < 0 ? 0 : static_cast<std::uint64_t>(v);
  emit_raw(t, gauge_ev[gauge], 0,
           clamped > 0xffffffffULL ? 0xffffffffU
                                   : static_cast<std::uint32_t>(clamped),
           now_ticks());
}

}  // namespace detail

trace_config parse_trace_spec(const std::string& spec) {
  std::string s = spec;
  if (s.rfind("trace:", 0) == 0) s = s.substr(6);
  const std::size_t colon = s.find(':');
  const std::string mode_field = s.substr(0, colon);
  trace_config cfg;
  if (mode_field == "off") {
    cfg.mode = trace_mode::off;
  } else if (mode_field == "counters") {
    cfg.mode = trace_mode::counters;
  } else if (mode_field == "full") {
    cfg.mode = trace_mode::full;
  } else {
    throw std::invalid_argument("unknown trace mode: " + spec);
  }
  if (colon == std::string::npos) return cfg;
  if (cfg.mode != trace_mode::full) {
    throw std::invalid_argument(
        "trace spec: only 'full' takes a ring capacity: " + spec);
  }
  // Strict numeric cap within rails, same policy as the alloc spec parser:
  // empty, trailing garbage, overflow and out-of-range all reject.
  const std::string field = s.substr(colon + 1);
  unsigned long long cap = 0;
  bool ok = !field.empty() &&
            field.find_first_not_of("0123456789") == std::string::npos;
  if (ok) {
    try {
      cap = std::stoull(field);
    } catch (const std::exception&) {
      ok = false;
    }
  }
  if (!ok || cap < trace_config::cap_min || cap > trace_config::cap_max) {
    // Built by append, not one operator+ chain (gcc 12 -Wrestrict,
    // PR 105651).
    std::string msg = "trace ring cap must be in [";
    msg += std::to_string(trace_config::cap_min);
    msg += ", ";
    msg += std::to_string(trace_config::cap_max);
    msg += "]: ";
    msg += spec;
    throw std::invalid_argument(msg);
  }
  cfg.ring_cap = static_cast<std::size_t>(cap);
  return cfg;
}

tracer& tracer::instance() noexcept {
  static tracer t;
  return t;
}

void tracer::configure(const trace_config& cfg) {
  std::lock_guard<std::mutex> lock(g_track_mu);
  // Stop new emits before tearing storage down; the quiescence contract
  // says nobody is mid-emit.
  detail::g_mode.store(static_cast<int>(trace_mode::off),
                       std::memory_order_release);
  for (auto& slot : g_tracks) {
    track* t = slot.load(std::memory_order_relaxed);
    slot.store(nullptr, std::memory_order_relaxed);
    delete t;
  }
  g_cap = cfg.mode == trace_mode::full ? round_up_pow2(cfg.ring_cap) : 0;
  g_cap_mask = g_cap == 0 ? 0 : g_cap - 1;
  for (auto& g : g_gauges) g.store(0, std::memory_order_relaxed);
  g_slotless.store(0, std::memory_order_relaxed);
  anchor_now();
  detail::g_mode.store(static_cast<int>(cfg.mode), std::memory_order_release);
}

void tracer::reset() noexcept {
  for (auto& slot : g_tracks) {
    track* t = slot.load(std::memory_order_acquire);
    if (t == nullptr) continue;
    t->head.store(0, std::memory_order_relaxed);
    t->emitted.store(0, std::memory_order_relaxed);
    for (auto& c : t->span_ticks) c.store(0, std::memory_order_relaxed);
    for (auto& c : t->span_calls) c.store(0, std::memory_order_relaxed);
    for (auto& c : t->counts) c.store(0, std::memory_order_relaxed);
    // span_start / span_depth are owner-only; an idle span straddling the
    // reset simply carries a pre-reset start, which slightly over-credits
    // idle time and nothing else.
  }
  for (auto& g : g_gauges) g.store(0, std::memory_order_relaxed);
  g_slotless.store(0, std::memory_order_relaxed);
  anchor_now();
}

trace_mode tracer::mode() const noexcept { return obs::mode(); }

std::size_t tracer::ring_capacity() const noexcept { return g_cap; }

std::int64_t tracer::gauge(gauge_id g) const noexcept {
  return g_gauges[g].load(std::memory_order_relaxed);
}

trace_summary tracer::summary() const {
  trace_summary s;
  s.mode = mode();
  const double ns_per_tick = ns_per_tick_now();
  std::uint64_t span_ticks[span_id_count] = {};
  s.dropped = g_slotless.load(std::memory_order_relaxed);
  for (const auto& slot : g_tracks) {
    const track* t = slot.load(std::memory_order_acquire);
    if (t == nullptr) continue;
    const std::uint64_t emitted = t->emitted.load(std::memory_order_relaxed);
    if (emitted == 0) continue;
    ++s.workers;
    s.events += emitted;
    const std::uint64_t head = t->head.load(std::memory_order_relaxed);
    if (g_cap != 0 && head > g_cap) s.dropped += head - g_cap;
    for (int i = 0; i < span_id_count; ++i) {
      span_ticks[i] += t->span_ticks[i].load(std::memory_order_relaxed);
    }
    s.spawns += t->counts[ev_spawn].load(std::memory_order_relaxed);
    s.claim_decs += t->counts[ev_claim_dec].load(std::memory_order_relaxed);
    s.steal_attempts +=
        t->counts[ev_steal_attempt].load(std::memory_order_relaxed);
    s.steal_successes +=
        t->counts[ev_steal_success].load(std::memory_order_relaxed);
    s.drains += t->span_calls[sp_drain].load(std::memory_order_relaxed);
    s.drain_handoffs +=
        t->counts[ev_drain_handoff].load(std::memory_order_relaxed);
    s.finalizes += t->span_calls[sp_finalize].load(std::memory_order_relaxed);
    s.submits += t->counts[ev_submit].load(std::memory_order_relaxed);
    s.admits += t->counts[ev_admit].load(std::memory_order_relaxed);
    s.rejects += t->counts[ev_reject].load(std::memory_order_relaxed);
    s.submit_completes +=
        t->counts[ev_submit_complete].load(std::memory_order_relaxed);
    s.mag_refills += t->counts[ev_mag_refill].load(std::memory_order_relaxed);
    s.mag_flushes += t->counts[ev_mag_flush].load(std::memory_order_relaxed);
    s.slab_carves += t->counts[ev_slab_carve].load(std::memory_order_relaxed);
    s.slab_releases +=
        t->counts[ev_slab_release].load(std::memory_order_relaxed);
    s.epoch_advances +=
        t->counts[ev_epoch_advance].load(std::memory_order_relaxed);
    s.slab_retires +=
        t->counts[ev_slab_retire].load(std::memory_order_relaxed);
    s.slab_reclaims +=
        t->counts[ev_slab_reclaim].load(std::memory_order_relaxed);
    s.eliminations +=
        t->counts[ev_eliminate].load(std::memory_order_relaxed);
    s.combines += t->counts[ev_combine].load(std::memory_order_relaxed);
  }
  const double to_s = ns_per_tick * 1e-9;
  s.work_s = static_cast<double>(span_ticks[sp_work]) * to_s;
  s.idle_s = static_cast<double>(span_ticks[sp_idle]) * to_s;
  s.steal_s = static_cast<double>(span_ticks[sp_steal]) * to_s;
  s.drain_s = static_cast<double>(span_ticks[sp_drain]) * to_s;
  s.finalize_s = static_cast<double>(span_ticks[sp_finalize]) * to_s;
  s.trim_s = static_cast<double>(span_ticks[sp_trim]) * to_s;
  const double denom = s.work_s + s.idle_s + s.steal_s + s.drain_s;
  if (denom > 0) {
    s.work_frac = s.work_s / denom;
    s.idle_frac = s.idle_s / denom;
    s.steal_frac = s.steal_s / denom;
    s.drain_frac = s.drain_s / denom;
  }
  return s;
}

std::vector<trace_event> tracer::ring_events(int slot) const {
  std::vector<trace_event> out;
  if (slot < 0 || slot >= static_cast<int>(mem::max_thread_slots)) return out;
  const track* t = g_tracks[slot].load(std::memory_order_acquire);
  if (t == nullptr || t->ring == nullptr) return out;
  const std::uint64_t head = t->head.load(std::memory_order_relaxed);
  const std::uint64_t first = head > g_cap ? head - g_cap : 0;
  out.reserve(static_cast<std::size_t>(head - first));
  for (std::uint64_t i = first; i < head; ++i) {
    out.push_back(t->ring[i & g_cap_mask]);
  }
  return out;
}

std::uint64_t tracer::ring_dropped(int slot) const noexcept {
  if (slot < 0 || slot >= static_cast<int>(mem::max_thread_slots)) return 0;
  const track* t = g_tracks[slot].load(std::memory_order_acquire);
  if (t == nullptr) return 0;
  const std::uint64_t head = t->head.load(std::memory_order_relaxed);
  return g_cap != 0 && head > g_cap ? head - g_cap : 0;
}

int tracer::dump(const std::string& path) const {
  std::vector<detail::track_snapshot> tracks;
  std::uint64_t dropped_total = g_slotless.load(std::memory_order_relaxed);
  for (std::size_t slot = 0; slot < mem::max_thread_slots; ++slot) {
    const track* t = g_tracks[slot].load(std::memory_order_acquire);
    if (t == nullptr ||
        t->emitted.load(std::memory_order_relaxed) == 0) {
      continue;
    }
    detail::track_snapshot snap;
    snap.slot = static_cast<int>(slot);
    snap.events = ring_events(static_cast<int>(slot));
    snap.dropped = ring_dropped(static_cast<int>(slot));
    dropped_total += snap.dropped;
    tracks.push_back(std::move(snap));
  }
  return detail::export_chrome_trace(
      path, tracks, ns_per_tick_now(),
      g_anchor_ticks.load(std::memory_order_relaxed), mode(), g_cap,
      dropped_total);
}

}  // namespace spdag::obs
