// Conformance suite for the hot-path memory subsystem (src/mem/): cell
// uniqueness and alignment, exactly-one construction/destruction per
// object, cross-worker free correctness under raw-thread storms (run under
// TSan in CI, fixed AND adaptive magazine modes), geometry-derived magazine
// capacities (byte budget + clamp), adaptive cap grow/shrink, quiescent
// trim (slab release, retained() drain, double-trim no-op, engine-level
// trim_pools), steady-state slab plateau, registry keying, and spec
// parsing.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "harness/workloads.hpp"
#include "mem/malloc_pool.hpp"
#include "mem/registry.hpp"
#include "mem/slab_pool.hpp"
#include "mem/thread_slot.hpp"
#include "sched/runtime.hpp"
#include "util/rng.hpp"

namespace spdag {
namespace {

struct counted {
  static std::atomic<int> ctors;
  static std::atomic<int> dtors;
  std::uint64_t payload[3];
  explicit counted(std::uint64_t v = 0) : payload{v, v + 1, v + 2} {
    ctors.fetch_add(1, std::memory_order_relaxed);
  }
  ~counted() { dtors.fetch_add(1, std::memory_order_relaxed); }
};
std::atomic<int> counted::ctors{0};
std::atomic<int> counted::dtors{0};

TEST(SlabPool, CellsAreAlignedAndDisjoint) {
  struct alignas(64) wide { char data[96]; };
  slab_pool<wide> pool("wide", /*slab_bytes=*/4096);
  std::set<void*> seen;
  std::vector<void*> cells;
  for (int i = 0; i < 500; ++i) {
    void* p = pool.allocate();
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u);
    EXPECT_TRUE(seen.insert(p).second) << "duplicate live cell";
    cells.push_back(p);
  }
  for (void* p : cells) pool.deallocate(p);
  const pool_stats s = pool.stats();
  EXPECT_EQ(s.allocs, 500u);
  EXPECT_EQ(s.frees, 500u);
  EXPECT_EQ(s.live(), 0u);
  EXPECT_GT(s.slab_growths, 1u);  // 4 KiB slabs can't hold 500 wide cells
}

TEST(SlabPool, ExactlyOneConstructionAndDestructionPerObject) {
  counted::ctors.store(0);
  counted::dtors.store(0);
  slab_pool<counted> pool("counted");
  std::vector<counted*> live;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 100; ++i) {
      counted* c = pool.create(static_cast<std::uint64_t>(i));
      ASSERT_EQ(c->payload[2], static_cast<std::uint64_t>(i) + 2)
          << "recycled cell must be freshly constructed";
      live.push_back(c);
    }
    for (counted* c : live) pool.destroy(c);
    live.clear();
  }
  EXPECT_EQ(counted::ctors.load(), 300);
  EXPECT_EQ(counted::dtors.load(), 300);
  EXPECT_EQ(pool.stats().live(), 0u);
}

TEST(SlabPool, SteadyStateChurnStopsGrowingSlabs) {
  slab_pool<counted> pool("steady");
  auto churn = [&] {
    std::vector<counted*> batch;
    for (int i = 0; i < 200; ++i) batch.push_back(pool.create());
    for (counted* c : batch) pool.destroy(c);
  };
  churn();  // warm-up carves the working set
  const pool_stats warm = pool.stats();
  for (int round = 0; round < 50; ++round) churn();
  const pool_stats after = pool.stats();
  EXPECT_EQ(after.slab_growths, warm.slab_growths)
      << "steady-state churn must not touch the upstream allocator";
  EXPECT_EQ(after.carved, warm.carved);
  EXPECT_GT(after.allocs, warm.allocs);
  EXPECT_GT(after.recycles, warm.recycles);
}

// The conformance storm: raw threads allocate and free at random, with a
// share of cells handed to ANOTHER thread for freeing (the cross-worker
// path future completion exercises). Conservation must hold exactly, in
// both fixed and adaptive magazine modes (the adaptive run doubles as the
// TSan/ASan race check on the resize path).
void run_cross_thread_storm(slab_pool<counted>& pool) {
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 20000;
  counted::ctors.store(0);
  counted::dtors.store(0);

  // One locked handoff queue per thread; thread t frees what lands in
  // queue t, regardless of who allocated it.
  struct handoff {
    std::mutex mu;
    std::deque<counted*> q;
  };
  std::vector<handoff> queues(kThreads);
  std::atomic<bool> go{false};
  std::atomic<int> done{0};

  auto worker = [&](int me) {
    while (!go.load(std::memory_order_acquire)) {
    }
    std::vector<counted*> mine;
    for (int i = 0; i < kOpsPerThread; ++i) {
      const std::uint64_t dice = thread_rng().below(4);
      if (dice == 0 && !mine.empty()) {
        pool.destroy(mine.back());  // local free
        mine.pop_back();
      } else if (dice == 1) {
        // Hand a cell to a neighbor for a cross-thread free.
        counted* c = pool.create();
        handoff& h = queues[(me + 1) % kThreads];
        std::lock_guard<std::mutex> lock(h.mu);
        h.q.push_back(c);
      } else if (dice == 2) {
        counted* c = nullptr;
        {
          handoff& h = queues[me];
          std::lock_guard<std::mutex> lock(h.mu);
          if (!h.q.empty()) {
            c = h.q.front();
            h.q.pop_front();
          }
        }
        if (c != nullptr) pool.destroy(c);  // remote free
      } else {
        mine.push_back(pool.create());
      }
    }
    for (counted* c : mine) pool.destroy(c);
    done.fetch_add(1, std::memory_order_release);
  };

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(worker, t);
  go.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();
  ASSERT_EQ(done.load(), kThreads);
  // Drain the stranded handoffs from the main thread (another remote free).
  for (auto& h : queues) {
    for (counted* c : h.q) pool.destroy(c);
    h.q.clear();
  }

  const pool_stats s = pool.stats();
  EXPECT_EQ(counted::ctors.load(), counted::dtors.load());
  EXPECT_EQ(s.allocs, s.frees);
  EXPECT_EQ(s.live(), 0u);
  EXPECT_EQ(s.allocs, static_cast<std::uint64_t>(counted::ctors.load()));
  EXPECT_GT(s.remote_frees, 0u) << "the storm must exercise cross-worker frees";
  // Every cell that was ever carved is now cached for reuse, none leaked.
  EXPECT_EQ(s.cached(), s.carved);
}

TEST(SlabPool, CrossThreadAllocFreeStorm) {
  slab_pool<counted> pool("storm");
  run_cross_thread_storm(pool);
}

TEST(SlabPool, CrossThreadAllocFreeStormAdaptive) {
  slab_pool<counted> pool("storm_adaptive", slab_cache::default_slab_bytes,
                          /*magazine_bytes=*/0, /*adaptive=*/true);
  run_cross_thread_storm(pool);
  // Whatever the walk did to the caps, they stayed inside the clamp.
  const pool_stats s = pool.stats();
  EXPECT_GE(s.mag_cap_lo, slab_cache::mag_cap_min);
  EXPECT_LE(s.mag_cap_hi, pool.magazine_slots());
}

TEST(SlabPool, CrossThreadAllocFreeStormElim) {
  // The same conservation storm with the elimination array fronting the
  // recycle list: flushes/remote frees park cells on rendezvous slots and
  // refills harvest them. Conservation must hold exactly AND the diffusion
  // must actually fire; rendezvous timing is scheduler-dependent, so retry
  // a bounded number of fresh-pool rounds before declaring it dead.
  for (int round = 0;; ++round) {
    slab_pool<counted> pool("storm_elim", slab_cache::default_slab_bytes,
                            /*magazine_bytes=*/0, /*adaptive=*/false,
                            /*elim=*/true);
    run_cross_thread_storm(pool);
    const pool_stats s = pool.stats();
    // Every flush offers its top shed cell to the array, so the rendezvous
    // was reached even when every offer spun out.
    EXPECT_GT(s.eliminations + s.elim_timeouts, 0u)
        << "the storm never touched the elimination array";
    if (s.eliminations == 0 && round < 7) continue;
    EXPECT_GT(s.eliminations, 0u)
        << "no free/alloc pair ever rendezvoused in 8 storms";
    // Quiescent trim must drain parked cells along with the recycle list —
    // stats() folds occupied slots into recycle_cells, so the gauge going
    // to zero proves the array is empty.
    pool.trim();
    const pool_stats t = pool.stats();
    EXPECT_EQ(t.live(), 0u);
    EXPECT_EQ(t.recycle_cells, 0u)
        << "trim must drain parked elimination slots";
    break;
  }
}

TEST(SlabPool, OversubscribedThreadsFallBackToGlobalList) {
  // More threads than there are magazine slots cannot be spawned cheaply,
  // so exercise the bypass path directly through its primitive: a pool
  // whose user threads outnumber slots still conserves cells because the
  // bypass goes through the same stamped cells and global list. Here we
  // just verify heavy short-lived-thread traffic conserves.
  slab_pool<counted> pool("threads");
  for (int round = 0; round < 8; ++round) {
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&pool] {
        std::vector<counted*> mine;
        for (int i = 0; i < 200; ++i) mine.push_back(pool.create());
        for (counted* c : mine) pool.destroy(c);
      });
    }
    for (auto& th : threads) th.join();
  }
  const pool_stats s = pool.stats();
  EXPECT_EQ(s.allocs, s.frees);
  EXPECT_EQ(s.live(), 0u);
  EXPECT_LE(mem::claimed_thread_slots(), mem::max_thread_slots);
}

// --- geometry-derived magazine capacity --------------------------------------

class SlabGeometry : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SlabGeometry, MagazineCapHonorsByteBudgetAndClamp) {
  const std::size_t object_bytes = GetParam();
  slab_cache pool("geom", object_bytes, /*object_align=*/8);
  const std::uint32_t slots = pool.magazine_slots();
  EXPECT_GE(slots, slab_cache::mag_cap_min);
  EXPECT_LE(slots, slab_cache::mag_cap_max);
  const std::size_t budget = slab_cache::default_magazine_bytes;
  if (slots > slab_cache::mag_cap_min) {
    // Above the floor the byte budget binds: `slots` strides fit in it. (At
    // the floor the clamp wins — 8 cells of a 512B object exceed 4 KiB by
    // design, a magazine that flushes every few ops being the worse evil.)
    EXPECT_LE(slots * pool.cell_stride(), budget);
  }
  if (slots > slab_cache::mag_cap_min && slots < slab_cache::mag_cap_max) {
    // ...and it binds tightly: one more cell would overflow the budget.
    EXPECT_GT((slots + 1) * pool.cell_stride(), budget);
  }
  // Fixed mode pins every magazine's effective cap at the derived slots.
  void* p = pool.allocate();
  pool.deallocate(p);
  const pool_stats s = pool.stats();
  EXPECT_EQ(s.mag_cap_lo, slots);
  EXPECT_EQ(s.mag_cap_hi, slots);
  EXPECT_EQ(pool.magazine_initial_cap(), slots);
}

INSTANTIATE_TEST_SUITE_P(EightBToFiveTwelveB, SlabGeometry,
                         ::testing::Values(8, 16, 24, 48, 64, 96, 128, 256,
                                           512));

TEST(SlabGeometry, CustomMagazineBudgetIsHonored) {
  // 64B objects, 8B align: stride = 16 (header) + 64 = 80; 1024/80 = 12.
  slab_cache pool("custom", 64, 8, slab_cache::default_slab_bytes,
                  /*magazine_bytes=*/1024);
  EXPECT_EQ(pool.cell_stride(), 80u);
  EXPECT_EQ(pool.magazine_slots(), 12u);
  // A budget below 8 strides clamps up to the floor.
  slab_cache tiny("tiny", 64, 8, slab_cache::default_slab_bytes,
                  /*magazine_bytes=*/256);
  EXPECT_EQ(tiny.magazine_slots(), slab_cache::mag_cap_min);
}

// --- adaptive effective capacity ---------------------------------------------

TEST(SlabPoolAdaptive, CapGrowsUnderBurstAndShrinksWhenQuiet) {
  slab_pool<counted> pool("adapt", slab_cache::default_slab_bytes,
                          /*magazine_bytes=*/0, /*adaptive=*/true);
  const std::uint32_t slots = pool.magazine_slots();
  const std::uint32_t cap0 = pool.magazine_initial_cap();
  ASSERT_LT(cap0, slots) << "adaptive pools must start with grow head-room";
  ASSERT_GE(cap0, slab_cache::mag_cap_min);

  // Burst: a monotone allocation streak refills every cap/2 ops, so every
  // inter-trip gap is below the cap — the ping-pong signal — and the
  // effective capacity climbs to the storage bound.
  std::vector<counted*> live;
  for (std::uint32_t i = 0; i < 10 * slots; ++i) live.push_back(pool.create());
  {
    const pool_stats s = pool.stats();
    EXPECT_EQ(s.mag_cap_hi, slots) << "burst traffic must max the cap";
    EXPECT_GT(s.mag_grows, 0u);
    EXPECT_EQ(s.mag_shrinks, 0u);
  }

  // Quiet: normalize the magazine to a known 20-cell fill (creates pop,
  // destroys push; neither touches a boundary from here), then run paired
  // alloc/free traffic that never hits empty or full — no refill, no
  // flush, just a long inter-trip gap accumulating. magazine_cells is
  // exact on a single thread.
  std::uint64_t fill = pool.stats().magazine_cells;
  while (fill > 20) {
    live.push_back(pool.create());
    --fill;
  }
  while (fill < 20) {
    pool.destroy(live.back());
    live.pop_back();
    ++fill;
  }
  for (std::uint32_t i = 0; i < 64u * slots + slots; ++i) {
    counted* c = pool.create();
    pool.destroy(c);
  }
  // The next flush (a free streak filling the magazine from its 20-cell
  // fill to the cap) observes the long gap and halves the cap. The streak
  // stops just past the flush point: running it further would fill the
  // SHRUNK magazine and re-grow on the second flush's short gap — which is
  // the hysteresis working, but not what this assertion wants to see.
  for (std::uint32_t i = 0; i < slots - 20 + 3; ++i) {
    pool.destroy(live.back());
    live.pop_back();
  }
  {
    const pool_stats s = pool.stats();
    EXPECT_GT(s.mag_shrinks, 0u) << "a quiet magazine must give cells back";
    EXPECT_LT(s.mag_cap_hi, slots);
    EXPECT_GE(s.mag_cap_lo, slab_cache::mag_cap_min);
  }

  for (counted* c : live) pool.destroy(c);
  const pool_stats s = pool.stats();
  EXPECT_EQ(s.allocs, s.frees);
  EXPECT_EQ(s.live(), 0u);
}

// --- quiescent trim ----------------------------------------------------------

TEST(SlabPoolTrim, ChurnThenTrimReleasesEverySlabAndDoubleTrimIsANoOp) {
  slab_pool<counted> pool("trim", /*slab_bytes=*/4096);
  std::vector<counted*> cells;
  for (int i = 0; i < 1000; ++i) cells.push_back(pool.create());
  for (counted* c : cells) pool.destroy(c);
  const std::size_t slabs = pool.slab_count();
  EXPECT_GT(slabs, 2u);  // 4 KiB slabs cannot hold 1000 cells in one
  EXPECT_GT(pool.stats().retained(), 0u)
      << "after a full free the pool holds everything in magazines + list";

  const std::size_t released = pool.trim();
  EXPECT_EQ(released, slabs) << "no live cell -> every slab goes upstream";
  EXPECT_EQ(pool.slab_count(), 0u);
  EXPECT_EQ(pool.stats().retained(), 0u);
  EXPECT_EQ(pool.stats().slabs_released, released);
  // Regression: cached() once kept counting cells whose slabs had gone
  // upstream (carved - live ignores releases); after a quiescent full trim
  // the two custody views must agree.
  EXPECT_EQ(pool.stats().cached(), pool.stats().retained());
  EXPECT_EQ(pool.stats().cells_released, pool.stats().carved);

  EXPECT_EQ(pool.trim(), 0u) << "double trim must be a no-op";
  EXPECT_EQ(pool.stats().trims, 2u);
  EXPECT_EQ(pool.stats().slabs_released, released);

  // The pool stays serviceable: post-trim traffic re-carves fresh slabs.
  counted* c = pool.create(7);
  EXPECT_EQ(c->payload[0], 7u);
  EXPECT_EQ(pool.slab_count(), 1u);
  pool.destroy(c);
}

TEST(SlabPoolTrim, LiveCellsPinExactlyTheirSlab) {
  slab_pool<counted> pool("pin", /*slab_bytes=*/4096);
  std::vector<counted*> cells;
  for (int i = 0; i < 1000; ++i) cells.push_back(pool.create(1));
  counted* keeper = cells.back();
  cells.pop_back();
  keeper->payload[0] = 0xfeedface;
  for (counted* c : cells) pool.destroy(c);

  const std::size_t slabs = pool.slab_count();
  const std::size_t released = pool.trim();
  EXPECT_EQ(released, slabs - 1)
      << "one live cell pins exactly one slab; the rest must go";
  EXPECT_EQ(keeper->payload[0], 0xfeedfaceu)
      << "trim must never touch a live cell";

  // The pinned slab's free cells went back on the recycle list, not away
  // (bounded by one slab's worth — the pinned slab may be the partially
  // carved cursor slab, so exact equality with a full slab doesn't hold).
  EXPECT_GT(pool.stats().retained(), 0u);
  EXPECT_LE(pool.stats().retained() + pool.stats().live(),
            static_cast<std::uint64_t>(4096 / pool.cell_stride()));
  // Partial trim too: cached() counts only cells still in custody.
  EXPECT_EQ(pool.stats().cached(), pool.stats().retained());

  pool.destroy(keeper);
  EXPECT_EQ(pool.trim(), 1u) << "freeing the pin releases the last slab";
  EXPECT_EQ(pool.slab_count(), 0u);
}

TEST(SlabPoolTrim, EngineTrimAfterChurnReleasesSlabsUpstream) {
  // The acceptance criterion: a future-churn run, then a quiescent
  // dag_engine::trim_pools() between run()s, must hand at least one slab
  // back to the OS while the runtime stays fully serviceable.
  runtime_config cfg{2, "dyn"};
  cfg.alloc = "pool:4096";  // small slabs so the churn spans several
  runtime rt(cfg);
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(harness::future_churn(rt, 2048), 2048u);
  }
  const pool_stats before = rt.pools().totals();
  EXPECT_GT(before.retained(), 0u);

  const std::size_t released = rt.trim_pools();
  EXPECT_GE(released, 1u);
  const pool_stats after = rt.pools().totals();
  EXPECT_EQ(after.slabs_released, released);
  EXPECT_LT(after.retained(), before.retained());
  EXPECT_EQ(after.cached(), after.retained())
      << "post-trim custody views must agree across every pool";
  // Pools whose cells all died with the run (future states, vertices,
  // dec-pairs) must be fully drained — their retained() drops to zero; the
  // SNZI pair pool legitimately keeps live cells (trees parked in the
  // counter factory) and only pins those slabs.
  for (const auto& row : rt.pools().rows()) {
    if (row.name.rfind("future_state", 0) == 0 ||
        row.name.rfind("vertex", 0) == 0 ||
        row.name.rfind("dec_pair", 0) == 0) {
      EXPECT_EQ(row.stats.live(), 0u) << row.name;
      EXPECT_EQ(row.stats.retained(), 0u) << row.name;
    }
  }

  // Post-trim the runtime re-carves and keeps delivering exactly-once.
  EXPECT_EQ(harness::future_churn(rt, 2048), 2048u);
  EXPECT_EQ(rt.pools().totals().trims, after.trims);
}

TEST(MallocPool, CountsEveryTripUpstream) {
  malloc_pool pool("baseline", sizeof(counted), alignof(counted));
  std::vector<void*> cells;
  for (int i = 0; i < 64; ++i) cells.push_back(pool.allocate());
  for (void* p : cells) pool.deallocate(p);
  const pool_stats s = pool.stats();
  EXPECT_EQ(s.allocs, 64u);
  EXPECT_EQ(s.frees, 64u);
  EXPECT_EQ(s.slab_growths, 64u) << "every malloc alloc is an upstream trip";
  EXPECT_EQ(s.recycles, 0u);
}

TEST(PoolRegistry, KeysByNameSizeAndAlignment) {
  slab_pool_registry reg;
  object_pool& a = reg.get("future_state", 48, 8);
  object_pool& b = reg.get("future_state", 48, 8);
  object_pool& c = reg.get("future_state", 64, 8);
  object_pool& d = reg.get("vertex", 48, 8);
  object_pool& e = reg.get("future_state", 48, 16);
  EXPECT_EQ(&a, &b) << "same name+size+align must be one pool";
  EXPECT_NE(&a, &c) << "same name, different size: distinct pools";
  EXPECT_NE(&a, &d);
  EXPECT_NE(&a, &e) << "stricter alignment must get its own (aligned) pool";
  EXPECT_EQ(e.object_align(), 16u);
  EXPECT_EQ(a.name(), "future_state:48:a8");
  EXPECT_EQ(reg.rows().size(), 4u);
}

TEST(PoolRegistry, SpecParsing) {
  EXPECT_EQ(make_pool_registry("malloc")->spec(), "malloc");
  EXPECT_EQ(make_pool_registry("alloc:malloc")->spec(), "malloc");
  EXPECT_EQ(make_pool_registry("pool")->spec(), "pool");
  EXPECT_EQ(make_pool_registry("pool:65536")->spec(), "pool:65536");
  EXPECT_EQ(make_pool_registry("alloc:pool:8192")->spec(), "pool:8192");
  // The magazine-budget field and the adaptive marker.
  EXPECT_EQ(make_pool_registry("pool:65536:4096")->spec(), "pool:65536:4096");
  EXPECT_EQ(make_pool_registry("pool:adaptive")->spec(), "pool:adaptive");
  EXPECT_EQ(make_pool_registry("alloc:pool:8192:adaptive")->spec(),
            "pool:8192:adaptive");
  EXPECT_EQ(make_pool_registry("pool:65536:512:adaptive")->spec(),
            "pool:65536:512:adaptive");
  // The elimination marker composes with every pool form (it is a flag
  // like "adaptive", order-independent between the two).
  EXPECT_EQ(make_pool_registry("pool:elim")->spec(), "pool:elim");
  EXPECT_EQ(make_pool_registry("alloc:pool:elim")->spec(), "pool:elim");
  EXPECT_EQ(make_pool_registry("pool:8192:elim")->spec(), "pool:8192:elim");
  EXPECT_EQ(make_pool_registry("pool:adaptive:elim")->spec(),
            "pool:adaptive:elim");
  EXPECT_EQ(make_pool_registry("pool:elim:adaptive")->spec(),
            "pool:adaptive:elim")
      << "spec() echoes flags in canonical order";
  EXPECT_THROW(make_pool_registry("bogus"), std::invalid_argument);
  EXPECT_THROW(make_pool_registry("pool:64"), std::invalid_argument);
  EXPECT_THROW(make_pool_registry("pool:999999999"), std::invalid_argument);
  // Strict numeric fields: overflow and trailing garbage are invalid, not
  // out_of_range or silently truncated.
  EXPECT_THROW(make_pool_registry("pool:99999999999999999999"),
               std::invalid_argument);
  EXPECT_THROW(make_pool_registry("pool:8192kb"), std::invalid_argument);
  EXPECT_THROW(make_pool_registry("pool:-8192"), std::invalid_argument);
  EXPECT_THROW(make_pool_registry("pool:"), std::invalid_argument);
  // Magazine rails, field-count cap, and the adaptive marker's position
  // (last field only — "adaptive" is a flag, not a positional value).
  EXPECT_THROW(make_pool_registry("pool:65536:64"), std::invalid_argument);
  EXPECT_THROW(make_pool_registry("pool:65536:9999999"),
               std::invalid_argument);
  EXPECT_THROW(make_pool_registry("pool:65536:4096:64:adaptive"),
               std::invalid_argument);
  EXPECT_THROW(make_pool_registry("pool:adaptive:65536"),
               std::invalid_argument);
  EXPECT_THROW(make_pool_registry("pool:65536:adaptive:adaptive"),
               std::invalid_argument);
  EXPECT_THROW(make_pool_registry("pool:65536:"), std::invalid_argument);
  // The elimination flag is a POOL feature: malloc has no recycle list to
  // front, and like "adaptive" it may appear at most once.
  EXPECT_THROW(make_pool_registry("malloc:elim"), std::invalid_argument);
  EXPECT_THROW(make_pool_registry("alloc:malloc:elim"), std::invalid_argument);
  EXPECT_THROW(make_pool_registry("pool:elim:elim"), std::invalid_argument);
  EXPECT_THROW(make_pool_registry("pool:elim:65536"), std::invalid_argument);
}

TEST(PoolRegistry, AdaptiveSpecBuildsAdaptivePools) {
  auto reg = make_pool_registry("pool:65536:1024:adaptive");
  auto* pool = dynamic_cast<slab_cache*>(&reg->get("x", 64, 8));
  ASSERT_NE(pool, nullptr);
  EXPECT_TRUE(pool->adaptive());
  EXPECT_EQ(pool->magazine_slots(), 12u);  // 1024 / (16 hdr + 64) = 12
  EXPECT_LT(pool->magazine_initial_cap(), pool->magazine_slots());
  auto fixed = make_pool_registry("pool");
  auto* fpool = dynamic_cast<slab_cache*>(&fixed->get("x", 64, 8));
  ASSERT_NE(fpool, nullptr);
  EXPECT_FALSE(fpool->adaptive());
  EXPECT_EQ(fpool->magazine_initial_cap(), fpool->magazine_slots());
}

TEST(PoolRegistry, MallocRegistryServesWorkingPools) {
  auto reg = make_pool_registry("malloc");
  object_pool& p = reg->get("x", 32, 8);
  void* a = p.allocate();
  ASSERT_NE(a, nullptr);
  p.deallocate(a);
  EXPECT_EQ(reg->totals().allocs, 1u);
}

}  // namespace
}  // namespace spdag
