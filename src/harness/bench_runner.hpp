#pragma once
// Sweep runner used by every figure-reproduction benchmark.
//
// Builds a fresh runtime per configuration, repeats the workload, and
// reports the paper's metric: operations per second per core, averaged over
// repetitions (the artifact's default was 30 repetitions; ours is
// environment-scalable via SPDAG_RUNS).

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "mem/registry.hpp"
#include "obs/trace.hpp"
#include "outset/outset.hpp"
#include "sched/scheduler_base.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"

namespace spdag::harness {

struct bench_config {
  std::string workload = "fanin";  // "fanin" | "indegree2" | "fib" | "churn"
  std::string algo = "dyn";        // counter spec (see make_counter_factory)
  std::size_t workers = 1;
  std::uint64_t n = 1 << 20;       // leaf count (or fib argument)
  std::uint64_t work_ns = 0;       // per-leaf dummy work
  int repetitions = 3;
  std::string alloc = "pool";      // alloc spec (see make_pool_registry)
  // fanin only: build the fan-out with the blocked spawn_batch builder
  // (one batched increment per 32 children) instead of the fork2 splitter.
  bool batch = false;
};

struct bench_result {
  bench_config cfg;
  double mean_s = 0;
  double min_s = 0;
  double max_s = 0;
  double rsd = 0;           // relative stddev across repetitions
  double ops_per_s = 0;     // counter ops / mean seconds
  double ops_per_s_per_core = 0;
  // Per-pool allocation stats snapshotted after the measured runs, plus the
  // warm-to-end upstream-allocation delta: zero means the measured runs
  // never touched malloc (the `alloc:pool` steady-state claim).
  std::vector<pool_registry_row> pools;
  std::uint64_t measured_slab_growths = 0;
  // Broadcast-side stats over the whole config (warm-up included): the
  // out-set totals (subtrees_offloaded = finalize work units handed off)
  // and scheduler totals (drains_executed/drains_stolen = where they ran).
  outset_totals outsets;
  scheduler_totals sched;
};

// Runs one configuration to completion and returns the aggregate.
bench_result run_config(const bench_config& cfg);

// One line per pool: allocs / recycles / slab growths / cross-worker frees.
void print_pool_stats(std::ostream& os,
                      const std::vector<pool_registry_row>& rows);

// One line of broadcast stats: adds / delivered / subtree drains offloaded
// and where the scheduler ran them (executed / stolen by other workers /
// handed off through the scheduler's transfer mechanism). Identical fields
// for both schedulers so their drain lanes compare like for like.
void print_broadcast_stats(std::ostream& os, const outset_totals& outsets,
                           const scheduler_totals& sched);

// Standard sweep values -----------------------------------------------------

// Worker counts 1..max_workers thinned to ~`points` values (paper sweeps
// 1..40 processors).
std::vector<std::size_t> worker_sweep(std::size_t max_workers,
                                      std::size_t points = 8);

// Reads shared benchmark options (-n, -proc, -runs, -workload, ...) with
// environment fallbacks (SPDAG_N, SPDAG_PROC, SPDAG_RUNS, ...).
struct common_options {
  std::uint64_t n;
  std::size_t max_proc;
  int runs;
  bool csv;
};
common_options read_common(const options& opts, std::uint64_t default_n);

// Emits one table in both grid and (optionally) CSV form.
void emit(result_table& table, bool csv);

// Machine-readable bench telemetry (-json <path> / SPDAG_JSON) -------------
//
// Every bench main opens the process-wide sink once, appends one record per
// configuration as it completes, and writes the document on exit:
//
//   harness::json_open(opts, "future_churn");
//   ...
//   if (harness::json_enabled()) harness::json_add(std::move(rec));
//   ...
//   return harness::json_write();   // 0 when disabled or written cleanly
//
// The document is one JSON object: {"schema", "bench", "git_sha",
// "generated_unix", "records": [...]}. CI redirects each bench to
// BENCH_<name>.json, uploads them as artifacts, and gates pool-vs-malloc
// throughput on the same run (scripts/perf_smoke_gate.py), so the perf
// claims leave a trajectory instead of living in commit messages.
struct json_record {
  std::string name;       // full config name, e.g. "churn/pool/proc:2"
  std::string spec;       // the swept spec (counter / alloc / outset)
  std::string sched;      // scheduler, where swept ("" = default)
  std::size_t proc = 0;
  int runs = 0;
  double ops_per_s = 0;
  double lat_ms = 0;      // finalize-to-last-delivery latency (deep fanout)
  // Latency distribution tails (0 when the bench measures none): p50/p95/p99
  // from util/histogram, in milliseconds.
  double lat_p50_ms = 0;
  double lat_p95_ms = 0;
  double lat_p99_ms = 0;
  double wall_s = 0;      // mean measured wall seconds per repetition
  // Utilization summary from the process tracer; auto-filled by json_add
  // when tracing is active (mode stays "off" otherwise).
  obs::trace_summary trace{};
  std::vector<pool_registry_row> pools;  // per-pool stats rows (optional)
  pool_stats pool_totals{};              // registry totals (optional)
  outset_totals outsets{};
  scheduler_totals sched_totals{};
  // Bench-specific scalar counters ("recycle_rate", "upstream/Mfut", ...).
  std::vector<std::pair<std::string, double>> extra;
};

// Reads `-json <path>` (env SPDAG_JSON); empty path leaves the sink
// disabled and every other json_* call a no-op. Also reads the tracing
// options shared by every bench main: `-trace off|counters|full[:cap]`
// (env SPDAG_TRACE) configures the process tracer before any runtime
// exists — a malformed spec prints the parse error and exits(2) — and
// `-tracefile <path>` (env SPDAG_TRACEFILE) makes json_write() export the
// rings as Chrome/Perfetto trace-event JSON at exit.
void json_open(const options& opts, std::string bench_name);
bool json_enabled();
void json_add(json_record rec);  // thread-safe
// Compact form for plain rate benches: `ops` work items per repetition,
// `wall_sum_s` total measured seconds over `iters` repetitions.
void json_add_rate(const std::string& name, const std::string& spec,
                   std::size_t proc, int runs, double ops, double wall_sum_s,
                   double iters);
// Writes the document. Returns 0 when disabled or written cleanly, 1 on an
// I/O failure (reported to stderr) so mains can propagate it as their exit
// code.
int json_write();

}  // namespace spdag::harness
