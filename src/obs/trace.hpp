#pragma once
// Runtime tracing: per-worker event rings + utilization counters.
//
// The paper's argument is about where time goes under contention; end-of-run
// aggregates (scheduler_totals, pool_stats) cannot show a steal storm or a
// drain hand-off stall as it happens. This subsystem records 16-byte events
// into per-worker single-writer ring buffers and, at quiescence, exports a
// Chrome/Perfetto trace (trace_export.cpp) plus a utilization summary every
// bench JSON record embeds.
//
// Three operating modes, selected by the spec axis on runtime_config
// (`trace:off|counters|full[:cap]`) or directly via tracer::configure:
//
//   off       — the default. The hot-path cost is one relaxed atomic load
//               and a predicted-untaken branch per instrumentation site.
//   counters  — per-worker event counts, span durations and live gauges
//               accumulate; no ring writes, so nothing to export but the
//               summary (work/steal/idle/drain fractions) is exact.
//   full[:cap]— counters plus a fixed-capacity ring of timestamped events
//               per worker (cap events, rounded up to a power of two,
//               default 1<<16; drop-oldest on wrap). dump() merges the
//               rings into Perfetto trace-event JSON.
//
// Compile-time kill switch: building with SPDAG_TRACE_ENABLED=0 (CMake
// -DSPDAG_TRACE=OFF) turns every inline hook below into an empty function —
// the zero-cost claim CI enforces by comparing a `trace:off` run against a
// compiled-out build (scripts/perf_smoke_gate.py --trace-compare). Spec
// parsing and the tracer object stay available either way so configuration
// paths behave identically; with tracing compiled out they simply observe
// nothing.
//
// Threading contract:
//   * emit/span/gauge hooks: any thread, wait-free on the hot path. Each
//     thread writes only its own ring (keyed by mem::thread_slot()); counts
//     are single-writer relaxed atomics, so summary() may be read mid-run.
//   * configure(): quiescent-only — it frees and reallocates the per-slot
//     tracks, so no thread may be emitting (in the runtime: construct the
//     tracing runtime first, or set the spec through the bench harness
//     before any runtime exists).
//   * reset(): safe under live (idle) workers — it zeroes counters without
//     freeing storage; counts racing the reset are attributed best-effort.
//   * dump()/ring_events(): quiescent-only — ring payloads are plain
//     single-writer memory, read here without synchronization beyond the
//     caller's join/park ordering.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#ifndef SPDAG_TRACE_ENABLED
#define SPDAG_TRACE_ENABLED 1
#endif

namespace spdag::obs {

// One ring entry: tsc-or-steady timestamp, event id, two payload words.
struct trace_event {
  std::uint64_t ts;
  std::uint16_t id;
  std::uint16_t a;
  std::uint32_t b;
};
static_assert(sizeof(trace_event) == 16, "trace events are 16 bytes");

enum class trace_mode : int { off = 0, counters = 1, full = 2 };

// Event vocabulary. Span pairs become duration slices in the exported
// trace; instants become marker events; counter samples become counter
// tracks. The `a`/`b` payload meaning is per-event (victim id, cell count,
// gauge value) and documented at the emit site.
enum event_id : std::uint16_t {
  ev_none = 0,
  // Span begin/end pairs (scheduler / engine / mem layers).
  ev_work_begin,      // vertex execution on a worker
  ev_work_end,
  ev_idle_begin,      // parked in the scheduler's idle wait
  ev_idle_end,
  ev_steal_begin,     // thieving (sweeps / steal-request round trips)
  ev_steal_end,
  ev_drain_begin,     // running one out-set subtree drain task
  ev_drain_end,
  ev_finalize_begin,  // future_state::complete broadcasting its out-set
  ev_finalize_end,
  ev_trim_begin,      // quiescent pool trim
  ev_trim_end,
  // Instants.
  ev_steal_attempt,   // a = victim worker
  ev_steal_success,   // a = victim worker
  ev_drain_enqueue,   // drain task queued on the scheduler's drain lane
  ev_drain_steal,     // drain executed by a non-enqueuing worker
  ev_drain_handoff,   // private scheduler: drain answered a steal request
  ev_spawn,           // dag_engine::spawn
  ev_claim_dec,       // dag_engine::claim_dec
  ev_mag_refill,      // b = cells obtained
  ev_mag_flush,       // b = cells shed to the global recycle list
  ev_slab_carve,      // b = slab KiB grown upstream
  ev_slab_release,    // b = slabs returned upstream at trim
  // Resident-service submission lifecycle (src/service/). Queueing delay is
  // separable from execution time because admit carries the former and
  // complete the full sojourn: exec = sojourn - queueing.
  ev_submit,          // dag submitted to a dag_service (client thread)
  ev_admit,           // submission dispatched into the scheduler;
                      // b = queueing delay in µs (submit -> dispatch)
  ev_reject,          // submission refused (admission cap or shutdown)
  ev_submit_complete, // submission's final vertex ran;
                      // b = sojourn in µs (submit -> complete)
  // Epoch-based reclamation (src/mem/epoch.hpp): live-trim lifecycle.
  ev_epoch_advance,   // global epoch moved; b = new epoch (low 32 bits)
  ev_slab_retire,     // live trim parked slabs in limbo; b = slab count
  ev_slab_reclaim,    // limbo slab freed after the 2-epoch delay;
                      // b = slab KiB returned upstream
  // Contention diffusion (alloc:pool:elim / outset:simple:fc / counter fc).
  ev_eliminate,       // a free/alloc pair rendezvoused on an elimination
                      // slot (emitted by the taking side)
  ev_combine,         // one combiner pass applied a batch;
                      // b = requests completed for OTHER threads
  // Counter samples (b = post-update gauge value, clamped to u32).
  ev_ctr_runnable,
  ev_ctr_drains_pending,
  ev_ctr_slab_kib,
  ev_ctr_inflight,
  ev_ctr_epoch_lag,
  event_id_count
};

// Duration-span index (maps onto the begin/end event pairs above).
enum span_id : int {
  sp_work = 0,
  sp_idle,
  sp_steal,
  sp_drain,
  sp_finalize,
  sp_trim,
  span_id_count
};

// Live gauges maintained across all threads; sampled into the emitting
// thread's ring (full mode) so the exported trace grows counter tracks.
enum gauge_id : int {
  g_runnable = 0,       // vertices enqueued but not yet executing
  g_drains_pending,     // drain tasks on a scheduler lane, not yet run
  g_slab_kib,           // slab bytes currently held from upstream, in KiB
  g_inflight,           // dag_service submissions admitted, not yet complete
  g_epoch_lag,          // how far the oldest pinned record trails the
                        // global epoch (epoch-based reclamation)
  gauge_id_count
};

// Parsed `trace:off|counters|full[:cap]` spec. `ring_cap` is the requested
// per-worker ring capacity in events (full mode only; the tracer rounds it
// up to a power of two).
struct trace_config {
  trace_mode mode = trace_mode::off;
  std::size_t ring_cap = 1 << 16;

  static constexpr std::size_t cap_min = 256;
  static constexpr std::size_t cap_max = 1 << 22;
};

// Strict parser; the optional "trace:" prefix is accepted. Throws
// std::invalid_argument on an unknown mode, a cap on off/counters, or a
// malformed/out-of-rails cap (same strictness as the alloc spec parser).
trace_config parse_trace_spec(const std::string& spec);

// Utilization summary derived from the per-worker accumulators; readable
// mid-run (counts may be a few events skewed between fields).
struct trace_summary {
  trace_mode mode = trace_mode::off;
  std::uint32_t workers = 0;       // thread slots that emitted anything
  std::uint64_t events = 0;        // total events emitted (counted even
                                   // when the ring dropped them)
  std::uint64_t dropped = 0;       // ring overwrites + slotless emits
  // Span time summed across workers (seconds), and each bucket's share of
  // the four-way worker-loop split work+idle+steal+drain (informational
  // spans — finalize, trim — overlap work and are excluded from the split).
  double work_s = 0, idle_s = 0, steal_s = 0, drain_s = 0;
  double work_frac = 0, idle_frac = 0, steal_frac = 0, drain_frac = 0;
  double finalize_s = 0, trim_s = 0;
  // Headline event totals.
  std::uint64_t spawns = 0;
  std::uint64_t claim_decs = 0;
  std::uint64_t steal_attempts = 0;
  std::uint64_t steal_successes = 0;
  std::uint64_t drains = 0;          // drain spans completed
  std::uint64_t drain_handoffs = 0;
  std::uint64_t finalizes = 0;
  // Resident-service submission lifecycle (zero outside a dag_service).
  std::uint64_t submits = 0;
  std::uint64_t admits = 0;
  std::uint64_t rejects = 0;
  std::uint64_t submit_completes = 0;
  std::uint64_t mag_refills = 0;
  std::uint64_t mag_flushes = 0;
  std::uint64_t slab_carves = 0;
  std::uint64_t slab_releases = 0;
  // Epoch-based reclamation lifecycle (zero with -DSPDAG_EPOCH=OFF).
  std::uint64_t epoch_advances = 0;
  std::uint64_t slab_retires = 0;
  std::uint64_t slab_reclaims = 0;
  // Contention diffusion (zero outside elim/fc specs).
  std::uint64_t eliminations = 0;
  std::uint64_t combines = 0;

  static const char* mode_name(trace_mode m) noexcept {
    return m == trace_mode::full ? "full"
                                 : (m == trace_mode::counters ? "counters"
                                                              : "off");
  }
};

// Process-wide tracer. A singleton, not a per-runtime object, because the
// instrumented layers (slab_cache magazines, the process-default pool
// registry) outlive and span runtimes; per-thread tracks are keyed by
// mem::thread_slot(), the same dense id the magazines use.
class tracer {
 public:
  static tracer& instance() noexcept;

  // Quiescent-only (see header comment). Replaces mode, ring storage and
  // every accumulator.
  void configure(const trace_config& cfg);
  void configure(const std::string& spec) { configure(parse_trace_spec(spec)); }

  // Zeroes accumulators, gauges and ring heads without touching mode or
  // storage; safe while workers are idle-parked (benches call this after
  // warm-up so per-config summaries cover only the measured window).
  void reset() noexcept;

  trace_mode mode() const noexcept;
  // Effective per-worker ring capacity in events (0 unless mode is full).
  std::size_t ring_capacity() const noexcept;

  trace_summary summary() const;
  std::int64_t gauge(gauge_id g) const noexcept;

  // Retained events of one slot's ring, oldest first, and how many that
  // ring overwrote. Quiescent-only (plain ring reads). Tests and the
  // exporter use these; slot = mem::thread_slot() of the emitting thread.
  std::vector<trace_event> ring_events(int slot) const;
  std::uint64_t ring_dropped(int slot) const noexcept;

  // Merges every ring into Chrome/Perfetto trace-event JSON at `path`
  // (trace_export.cpp). Quiescent-only. Returns 0 on success, 1 on I/O
  // failure (reported to stderr). In counters/off mode the file carries
  // only metadata — callers wanting slices must configure `full`.
  int dump(const std::string& path) const;

 private:
  tracer() = default;
};

namespace detail {
// Runtime mode gate, read on every hook. Defined in trace.cpp; declared
// here so the inline hot-path wrappers compile to one relaxed load.
extern std::atomic<int> g_mode;
void emit_slow(std::uint16_t id, std::uint16_t a, std::uint32_t b) noexcept;
void span_begin_slow(int span) noexcept;
void span_end_slow(int span) noexcept;
void gauge_add_slow(int gauge, std::int64_t delta) noexcept;
}  // namespace detail

// True when the subsystem is compiled in at all.
constexpr bool trace_compiled() noexcept { return SPDAG_TRACE_ENABLED != 0; }

inline trace_mode mode() noexcept {
#if SPDAG_TRACE_ENABLED
  return static_cast<trace_mode>(
      detail::g_mode.load(std::memory_order_relaxed));
#else
  return trace_mode::off;
#endif
}

inline bool active() noexcept { return mode() != trace_mode::off; }

// Instant event. One relaxed load + branch when tracing is off.
inline void emit(event_id id, std::uint16_t a = 0,
                 std::uint32_t b = 0) noexcept {
#if SPDAG_TRACE_ENABLED
  if (active()) detail::emit_slow(id, a, b);
#else
  (void)id;
  (void)a;
  (void)b;
#endif
}

// Gauge delta; in full mode also samples the new value into the emitting
// thread's ring as a counter event.
inline void gauge_add(gauge_id g, std::int64_t delta) noexcept {
#if SPDAG_TRACE_ENABLED
  if (active()) detail::gauge_add_slow(g, delta);
#else
  (void)g;
  (void)delta;
#endif
}

// RAII duration span. Reentrancy-safe per thread (nested guards of the same
// span accumulate once, from the outermost pair).
class span_guard {
 public:
  explicit span_guard(span_id span) noexcept {
#if SPDAG_TRACE_ENABLED
    if (active()) {
      span_ = span;
      detail::span_begin_slow(span);
    }
#else
    (void)span;
#endif
  }
  ~span_guard() {
#if SPDAG_TRACE_ENABLED
    if (span_ >= 0) detail::span_end_slow(span_);
#endif
  }
  span_guard(const span_guard&) = delete;
  span_guard& operator=(const span_guard&) = delete;

 private:
#if SPDAG_TRACE_ENABLED
  int span_ = -1;
#endif
};

}  // namespace spdag::obs
