#pragma once
// Common interface for sp-dag schedulers.
//
// Two implementations are provided:
//   * scheduler               — concurrent Chase-Lev deques (classic work
//                               stealing, Blumofe-Leiserson / Arora et al.)
//   * private_deque_scheduler — private deques with explicit steal requests
//                               (Acar, Charguéraud & Rainey, PPoPP'13 — the
//                               scheduler the paper's own evaluation used)
// Both are executors (the dag engine pushes ready vertices through
// enqueue) plus a blocking run-to-completion entry point.

#include <cstddef>

#include "dag/engine.hpp"

namespace spdag {

struct scheduler_totals {
  std::uint64_t executions = 0;
  std::uint64_t steals = 0;
  std::uint64_t failed_steal_sweeps = 0;
  std::uint64_t parks = 0;
  // Out-set subtree-drain tasks run by workers (the parallel finalize lane;
  // zero when every drain ran inline on the enqueuing thread).
  std::uint64_t drains_executed = 0;
  // Of those, tasks run by a worker other than the enqueuing one — finalize
  // work that actually migrated to an idle core.
  std::uint64_t drains_stolen = 0;
  // Drain tasks that left their enqueuing worker through the scheduler's
  // transfer mechanism: for `private`, a steal request answered with a
  // queued drain (receiver-initiated hand-off); for `ws` the shared lane IS
  // the transfer mechanism, so this equals drains_stolen there. Both
  // schedulers report all three fields so bench/fanout_scalability -deep can
  // compare them like for like.
  std::uint64_t drains_handed_off = 0;
};

class scheduler_base : public executor {
 public:
  ~scheduler_base() override = default;

  // Executes the dag rooted at `root` until `final_v` has run and every
  // vertex has been recycled (quiescence). Blocking; call from a non-worker
  // thread. The engine must use this scheduler as its executor.
  virtual void run(dag_engine& engine, vertex* root, vertex* final_v) = 0;

  // --- resident-service mode (src/service/) --------------------------------
  //
  // A dag_service keeps the worker pool alive across many externally
  // submitted dags instead of wrapping each one in run(). begin_service
  // attaches the engine so roots injected by non-worker threads (through
  // enqueue) execute as they arrive; each submitted dag carries its own
  // completion (a body on its final vertex), so there is no stop vertex and
  // nothing blocks. end_service spins the scheduler out to idleness and
  // detaches — the caller must guarantee no further roots are injected.
  // Service mode and run() may not overlap.
  virtual void begin_service(dag_engine& engine) = 0;
  virtual void end_service() = 0;

  // True when this scheduler holds no queued or running work: injection
  // queues empty, no worker mid-execute, no drain task pending. NOT a full
  // quiescence proof by itself — vertices can sit in worker-private deques
  // between executes — so resident-service callers pair it with
  // engine.live_vertices() == 0, which covers anything a deque could hold.
  virtual bool service_idle() const = 0;

  virtual std::size_t worker_count() const = 0;
  virtual scheduler_totals totals() const = 0;
  virtual void reset_totals() = 0;
};

}  // namespace spdag
