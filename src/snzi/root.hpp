#pragma once
// SNZI root node: the non-zero indicator itself.
//
// Follows SNZI-R from Ellen et al. (PODC'07): the root keeps a surplus word X
// that children CAS on phase changes, plus a separate indicator word I that
// `query` reads without ever writing, so queries stay contention-free.
//
// Publication protocol. The original SNZI-R orders indicator writes with an
// announce bit and version re-validation. We implement the same interface and
// contention profile with a version-*stamped* indicator word instead: X packs
// (count, epoch) where the epoch advances on every 0 -> 1 transition, and I
// packs (flag, epoch, phase). Indicator publications carry a totally ordered
// key (epoch, then true-before-false within an epoch) and a CAS loop only
// ever moves I forward, so a stale writer can never clobber a newer state.
// This is easier to verify than announce-bit revalidation and performs the
// same number of non-trivial steps per phase change.

#include <atomic>
#include <cassert>
#include <cstdint>

#include "snzi/stats.hpp"
#include "util/cache_aligned.hpp"

namespace spdag::snzi {

class root_node {
 public:
  explicit root_node(std::uint32_t initial_surplus = 0,
                     tree_stats* stats = nullptr) noexcept
      : stats_(stats) {
    reset(initial_surplus);
  }

  root_node(const root_node&) = delete;
  root_node& operator=(const root_node&) = delete;

  // Increments the root surplus; publishes indicator=true on a 0 -> 1
  // transition. Returns the number of nodes visited (always 1; the return
  // type mirrors node::arrive for instrumentation).
  int arrive() noexcept;

  // Decrements the root surplus. Returns true iff *this* depart took the
  // surplus to zero — the property the in-counter uses for readiness
  // detection (paper section 5, "Implementation").
  bool depart() noexcept;

  // True iff there have been more arrives than departs. Reads only the
  // indicator word; never performs a non-trivial step.
  bool query() const noexcept {
    return (i_.value.load(std::memory_order_acquire) & 1ULL) != 0;
  }

  // Test-only introspection.
  std::uint32_t surplus() const noexcept {
    return count_of(x_.value.load(std::memory_order_acquire));
  }
  std::uint32_t epoch() const noexcept {
    return epoch_of(x_.value.load(std::memory_order_acquire));
  }
  std::uint32_t ops() const noexcept {
    return ops_.load(std::memory_order_relaxed);
  }

  // Non-concurrent reinitialization (object pooling).
  void reset(std::uint32_t initial_surplus) noexcept {
    x_.value.store(pack(initial_surplus, 1), std::memory_order_relaxed);
    i_.value.store(pack_i(initial_surplus > 0, 1), std::memory_order_relaxed);
    ops_.store(0, std::memory_order_relaxed);
  }

  void set_stats(tree_stats* stats) noexcept { stats_ = stats; }

 private:
  // X: count in bits [0,32), epoch in bits [32,64).
  static constexpr std::uint64_t pack(std::uint32_t count, std::uint32_t epoch) noexcept {
    return static_cast<std::uint64_t>(count) |
           (static_cast<std::uint64_t>(epoch) << 32);
  }
  static constexpr std::uint32_t count_of(std::uint64_t x) noexcept {
    return static_cast<std::uint32_t>(x);
  }
  static constexpr std::uint32_t epoch_of(std::uint64_t x) noexcept {
    return static_cast<std::uint32_t>(x >> 32);
  }

  // I: flag in bit 0, order key in bits [1,64). key = 2*epoch + (flag?0:1),
  // so within an epoch "true" precedes "false" and keys are totally ordered.
  static constexpr std::uint64_t pack_i(bool flag, std::uint32_t epoch) noexcept {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(epoch) << 1) | (flag ? 0ULL : 1ULL);
    return (key << 1) | (flag ? 1ULL : 0ULL);
  }
  static constexpr std::uint64_t key_of_i(std::uint64_t i) noexcept { return i >> 1; }

  void publish(bool flag, std::uint32_t epoch) noexcept;

  void visit() noexcept {
    if (stats_ != nullptr) ops_.fetch_add(1, std::memory_order_relaxed);
  }

  cache_aligned<std::atomic<std::uint64_t>> x_;
  cache_aligned<std::atomic<std::uint64_t>> i_;
  std::atomic<std::uint32_t> ops_{0};
  tree_stats* stats_;
};

}  // namespace spdag::snzi
