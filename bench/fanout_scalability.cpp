// Fan-out scalability: the mirror of fig08 (fanin) on the future side.
//
// Setup: one producer completes a single future while n consumers register
// against it, varying processors and out-set algorithm ("simple" = the
// single CAS-list head every registration fights over, "tree[:f]" = the
// grow-on-contention out-set tree). Metric: out-set operations (one
// registration + one delivery per consumer) per second per core, plus the
// headline contention stat `retries/add` — failed head-CASes per successful
// registration. Expected shape: the CAS list's retry rate grows with the
// number of concurrent consumers while the tree's stays flat (its adds
// separate onto disjoint cache lines after O(log c) collisions), the exact
// fan-out analogue of Fetch & Add vs the in-counter in Figure 8.
//
// Deep-tree broadcast mode (the parallel-finalize acceptance bench): the
// "fanout_deep/..." configs use the scatter spec ("tree:2:1:<depth>") so
// every registration dives <depth> levels before its first CAS,
// deterministically building the deep, wide tree that contention would on a
// many-core box — under BOTH schedulers, since each has its own drain lane
// (ws: shared stealable queue; private: per-worker queues served through
// the steal-request hand-off). The metric there is `lat_ms` —
// finalize-to-last-delivery wall time — plus `subtrees_offloaded` (finalize
// work units handed to the executor), `drains_executed`/`drains_stolen`
// (where they ran), and `drains_handed_off` (how many left their enqueuer
// through the scheduler's transfer mechanism). With >= 2 workers a deep run
// that offloads nothing, or that offloads but never executes a drain
// through the lane, is an error (the drain machinery went dark) for either
// scheduler, and CI smoke-runs exactly that configuration.
//
// Scale knobs: -n / SPDAG_N (consumer count, default 1<<15), -proc /
// SPDAG_PROC (max workers), -runs / SPDAG_RUNS, -prodns / SPDAG_PRODNS
// (producer busy-work in ns; default scales with n so registrations pile up
// against the still-pending future instead of taking the ready bypass),
// -deep / SPDAG_DEEP (scatter depth of the deep-tree mode, default 8;
// 0 disables those configs). -json <path> / SPDAG_JSON writes one
// structured record per config (CI uploads them as BENCH_*.json). The base
// configs also sweep `alloc:pool` vs `alloc:pool:adaptive` — fan-out churns
// the smallest (waiter record) and largest (node group) pool geometries, so
// it is where adaptive magazine sizing diverges most from fixed.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "harness/bench_runner.hpp"
#include "harness/workloads.hpp"
#include "obs/trace.hpp"
#include "sched/runtime.hpp"
#include "util/cli.hpp"
#include "util/histogram.hpp"
#include "util/timer.hpp"
#include "util/topology.hpp"

namespace {

using namespace spdag;

// Set when a deep-mode run trips the drain-machinery guard. SkipWithError
// only annotates the report (the benchmark process still exits 0), so CI
// needs this flag to turn the guard into a red build.
std::atomic<bool> g_deep_drain_dark{false};

void register_config(const std::string& outset_spec,
                     const std::string& alloc_spec, std::size_t workers,
                     std::uint64_t n, std::uint64_t producer_ns, int runs) {
  // Appends, not one operator+ chain (gcc 12 -O3 -Wrestrict, PR 105651).
  std::string name = "fanout/";
  name += outset_spec;
  name += "/alloc:";
  name += alloc_spec;
  name += "/proc:";
  name += std::to_string(workers);
  benchmark::RegisterBenchmark(name.c_str(), [=](benchmark::State& st) {
    runtime_config cfg{workers, "dyn"};
    cfg.outset = outset_spec;
    cfg.alloc = alloc_spec;
    runtime rt(cfg);
    harness::fanout(rt, n, 0, producer_ns);  // warm-up: pools, pages
    obs::tracer::instance().reset();  // summary covers the measured window
    const outset_totals before = rt.outsets().totals();
    std::uint64_t delivered_sum = 0;
    double wall_sum_s = 0;
    for (auto _ : st) {
      wall_timer t;
      delivered_sum += harness::fanout(rt, n, 0, producer_ns);
      const double el = t.elapsed_s();
      st.SetIterationTime(el);
      wall_sum_s += el;
    }
    const outset_totals after = rt.outsets().totals();
    const double adds = static_cast<double>(after.adds - before.adds);
    const double retries =
        static_cast<double>(after.add_cas_retries - before.add_cas_retries);
    const double rejected =
        static_cast<double>(after.rejected_adds - before.rejected_adds);
    const double ops = static_cast<double>(harness::outset_ops(n));
    st.counters["ops/s"] = benchmark::Counter(
        ops, benchmark::Counter::kIsIterationInvariantRate);
    st.counters["ops/s/core"] = benchmark::Counter(
        ops / static_cast<double>(workers),
        benchmark::Counter::kIsIterationInvariantRate);
    // The contention acceptance stat: failed head-CASes per captured add.
    st.counters["retries/add"] = adds > 0 ? retries / adds : 0.0;
    // Share of registration attempts that lost the race to finalize and
    // self-delivered (grows when the producer finishes early). Numerator and
    // denominator both accumulate over the same iterations.
    const double attempts = adds + rejected;
    st.counters["rejected/add"] = attempts > 0 ? rejected / attempts : 0.0;
    st.counters["subtrees_offloaded"] = static_cast<double>(
        after.subtrees_offloaded - before.subtrees_offloaded);
    if (delivered_sum != st.iterations() * n) {
      st.SkipWithError("exactly-once delivery violated");
    }
    if (harness::json_enabled()) {
      harness::json_record rec;
      rec.name = name;
      rec.spec = outset_spec;
      rec.proc = workers;
      rec.runs = runs;
      const double iters = static_cast<double>(st.iterations());
      rec.wall_s = iters > 0 ? wall_sum_s / iters : 0.0;
      rec.ops_per_s = rec.wall_s > 0 ? ops / rec.wall_s : 0.0;
      rec.pools = rt.pools().rows();
      rec.pool_totals = rt.pools().totals();
      rec.outsets = after;
      rec.sched_totals = rt.sched().totals();
      rec.extra.emplace_back("retries_per_add",
                             st.counters["retries/add"].value);
      rec.extra.emplace_back("rejected_per_add",
                             st.counters["rejected/add"].value);
      rec.extra.emplace_back("alloc_adaptive",
                             alloc_spec.find("adaptive") != std::string::npos
                                 ? 1.0
                                 : 0.0);
      harness::json_add(std::move(rec));
    }
  })
      ->UseManualTime()
      ->Iterations(runs);
}

// Deep-tree broadcast mode: scatter-forced depth, latency-instrumented
// workload, parallel-drain counters — swept per scheduler so the two drain
// lanes compare like for like.
void register_deep_config(const std::string& outset_spec,
                          const std::string& sched, std::size_t workers,
                          std::uint64_t n, std::uint64_t producer_ns,
                          int runs) {
  const std::string name = "fanout_deep/" + outset_spec + "/sched:" + sched +
                           "/proc:" + std::to_string(workers);
  benchmark::RegisterBenchmark(name.c_str(), [=](benchmark::State& st) {
    runtime_config cfg{workers, "dyn"};
    cfg.outset = outset_spec;
    cfg.sched = sched;
    runtime rt(cfg);
    harness::fanout_timed(rt, n, 0, producer_ns, nullptr);  // warm-up
    obs::tracer::instance().reset();  // summary covers the measured window
    const outset_totals before = rt.outsets().totals();
    const scheduler_totals sched_before = rt.sched().totals();
    // Per-consumer finalize-to-delivery latency across all measured
    // iterations: the distribution behind the lat_ms mean.
    latency_histogram hist;
    std::uint64_t delivered_sum = 0;
    double lat_sum_s = 0;
    double wall_sum_s = 0;
    for (auto _ : st) {
      harness::fanout_timing timing;
      wall_timer t;
      delivered_sum +=
          harness::fanout_timed(rt, n, 0, producer_ns, &timing, &hist);
      const double el = t.elapsed_s();
      st.SetIterationTime(el);
      wall_sum_s += el;
      lat_sum_s += timing.finalize_to_last_s;
    }
    const outset_totals after = rt.outsets().totals();
    const scheduler_totals sched_after = rt.sched().totals();
    const double offloaded = static_cast<double>(after.subtrees_offloaded -
                                                 before.subtrees_offloaded);
    const double captured = static_cast<double>(after.adds - before.adds);
    // The headline: how long the completing future took to reach its LAST
    // consumer, mean over iterations.
    st.counters["lat_ms"] =
        st.iterations() > 0
            ? lat_sum_s * 1e3 / static_cast<double>(st.iterations())
            : 0.0;
    st.counters["lat_p50_ms"] =
        static_cast<double>(hist.percentile_ns(0.50)) * 1e-6;
    st.counters["lat_p99_ms"] =
        static_cast<double>(hist.percentile_ns(0.99)) * 1e-6;
    const double executed = static_cast<double>(sched_after.drains_executed -
                                                sched_before.drains_executed);
    st.counters["subtrees_offloaded"] = offloaded;
    st.counters["drains_executed"] = executed;
    st.counters["drains_stolen"] = static_cast<double>(
        sched_after.drains_stolen - sched_before.drains_stolen);
    st.counters["drains_handed_off"] = static_cast<double>(
        sched_after.drains_handed_off - sched_before.drains_handed_off);
    st.counters["ops/s"] = benchmark::Counter(
        static_cast<double>(harness::outset_ops(n)),
        benchmark::Counter::kIsIterationInvariantRate);
    if (delivered_sum != st.iterations() * n) {
      st.SkipWithError("exactly-once delivery violated");
    }
    // Captured scatter-deep registrations imply grown groups, grown groups
    // must be offloaded, and multi-worker offloads must flow through the
    // scheduler's drain lane (ws: shared queue; private: per-worker queues
    // + steal-request hand-off) — anything else means the drain machinery
    // went dark. A run where every consumer took the ready bypass (n=0, or
    // a producer that finished before the wave) proves nothing and is not
    // an error.
    if (workers >= 2 && captured > 0 && (offloaded == 0 || executed == 0)) {
      g_deep_drain_dark.store(true, std::memory_order_relaxed);
      st.SkipWithError(offloaded == 0
                           ? "deep-tree finalize offloaded no subtrees: "
                             "parallel drain is dark"
                           : "offloaded subtrees never ran through the "
                             "scheduler's drain lane: hand-off is dark");
    }
    if (harness::json_enabled()) {
      harness::json_record rec;
      rec.name = name;
      rec.spec = outset_spec;
      rec.sched = sched;
      rec.proc = workers;
      rec.runs = runs;
      const double iters = static_cast<double>(st.iterations());
      rec.wall_s = iters > 0 ? wall_sum_s / iters : 0.0;
      rec.ops_per_s =
          rec.wall_s > 0
              ? static_cast<double>(harness::outset_ops(n)) / rec.wall_s
              : 0.0;
      rec.lat_ms = st.counters["lat_ms"].value;
      rec.lat_p50_ms = static_cast<double>(hist.percentile_ns(0.50)) * 1e-6;
      rec.lat_p95_ms = static_cast<double>(hist.percentile_ns(0.95)) * 1e-6;
      rec.lat_p99_ms = static_cast<double>(hist.percentile_ns(0.99)) * 1e-6;
      rec.pools = rt.pools().rows();
      rec.pool_totals = rt.pools().totals();
      rec.outsets = after;
      rec.sched_totals = sched_after;
      harness::json_add(std::move(rec));
    }
  })
      ->UseManualTime()
      ->Iterations(runs);
}

}  // namespace

int main(int argc, char** argv) {
  options opts(argc, argv);
  const auto common = harness::read_common(opts, /*default_n=*/1 << 15);
  harness::json_open(opts, "fanout_scalability");
  // Give the producer roughly the time the registration wave needs, so adds
  // contend with each other rather than racing a long-completed future.
  const std::uint64_t producer_ns = static_cast<std::uint64_t>(
      opts.get_int("prodns", static_cast<std::int64_t>(common.n * 25)));

  // Scatter depth of the deep-tree mode; 0 = skip it. Validated here so a
  // bad value is a clean CLI error, not an uncaught throw mid-sweep from
  // the runtime constructor inside a benchmark lambda.
  const std::int64_t deep_raw = opts.get_int("deep", 8);
  const std::uint32_t depth_cap = tree_outset_config{}.max_depth;
  if (deep_raw < 0 || deep_raw > static_cast<std::int64_t>(depth_cap)) {
    std::fprintf(stderr,
                 "bad -deep %lld: must be in [0, %u] (0 disables the "
                 "deep-tree mode)\n",
                 static_cast<long long>(deep_raw), depth_cap);
    return 2;
  }
  const std::uint64_t deep = static_cast<std::uint64_t>(deep_raw);

  // The alloc dimension sweeps adaptive against fixed magazines on the
  // registration-heavy base configs (fan-out churns waiter records and node
  // groups, the geometry extremes of the pool set); the deep-tree configs
  // keep the default alloc so lat_ms stays a scheduler comparison.
  const std::vector<std::string> algos{"simple", "tree", "tree:4"};
  const std::vector<std::string> allocs{"pool", "pool:adaptive"};
  for (const auto& algo : algos) {
    for (const auto& alloc : allocs) {
      for (std::size_t p : harness::worker_sweep(common.max_proc)) {
        register_config(algo, alloc, p, common.n, producer_ns, common.runs);
      }
    }
  }
  const std::vector<std::string> scheds{"ws", "private"};
  if (deep > 0) {
    const std::string deep_spec = "tree:2:1:" + std::to_string(deep);
    for (const auto& sched : scheds) {
      for (std::size_t p : harness::worker_sweep(common.max_proc)) {
        register_deep_config(deep_spec, sched, p, common.n, producer_ns,
                             common.runs);
      }
    }
  }

  std::printf(
      "# fanout: 1 producer -> n consumers, n=%llu, max_proc=%zu, runs=%d, "
      "producer_ns=%llu, deep=%llu (dual of fig08; fanout_deep = "
      "scatter-forced tree + parallel finalize drain, metric lat_ms)\n",
      static_cast<unsigned long long>(common.n), common.max_proc, common.runs,
      static_cast<unsigned long long>(producer_ns),
      static_cast<unsigned long long>(deep));
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  if (deep > 0) {
    // Broadcast detail for one clean deep run at full width per scheduler
    // (rebuilt fresh so the counters are one run's, not the sweep's
    // accumulation) — the like-for-like drain-lane comparison.
    for (const auto& sched : scheds) {
      runtime_config cfg{common.max_proc, "dyn"};
      cfg.outset = "tree:2:1:" + std::to_string(deep);
      cfg.sched = sched;
      runtime rt(cfg);
      harness::fanout_timed(rt, common.n, 0, producer_ns, nullptr);
      std::cout << "# sched=" << sched << " ";
      harness::print_broadcast_stats(std::cout, rt.outsets().totals(),
                                     rt.sched().totals());
    }
  }
  const int json_rc = harness::json_write();
  if (g_deep_drain_dark.load(std::memory_order_relaxed)) {
    std::fprintf(stderr,
                 "FAIL: deep-tree finalize offloaded no subtrees with >= 2 "
                 "workers; the parallel drain machinery is dark\n");
    return 1;
  }
  return json_rc;
}
