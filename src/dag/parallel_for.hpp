#pragma once
// parallel_for: the parallel-loop pattern on top of the sp-dag.
//
// The paper's introduction motivates the in-counter with exactly this
// pattern — "a parallel-for, where a number of independent computations are
// forked to execute in parallel and synchronize at termination" — i.e., a
// fanin whose finish counter absorbs the contention. The range is split
// recursively with fork2 until it is at most `grain` wide, then executed
// serially.
//
// Like fork2/finish_then, a call must be the LAST dag action of the current
// vertex body (the loop's completion is observed by the enclosing finish,
// not by code after the call). For sequencing, pass the continuation to
// finish_then:   finish_then([..]{ parallel_for(...); }, continuation).

#include <cstddef>
#include <utility>

#include "dag/engine.hpp"

namespace spdag {

namespace detail {

// Recursive range task. F is copied into both halves on every split, so it
// should be a small view (pointers/references), like any vertex body.
template <typename F>
struct pfor_range {
  std::size_t lo;
  std::size_t hi;
  std::size_t grain;
  F f;

  void operator()() {
    std::size_t a = lo;
    const std::size_t b = hi;
    if (b - a <= grain) {
      for (; a < b; ++a) f(a);
      return;
    }
    const std::size_t mid = a + (b - a) / 2;
    fork2(pfor_range<F>{a, mid, grain, f}, pfor_range<F>{mid, b, grain, f});
  }
};

}  // namespace detail

// Applies f(i) for every i in [lo, hi), in parallel, with serial chunks of
// at most `grain` iterations. Must be the last dag action of the current
// vertex body. A zero grain is treated as 1. Empty ranges are a no-op.
//
// f itself may perform dag operations (fork2, a nested parallel_for, ...)
// only when grain == 1: with larger grains f runs several times inside one
// chunk vertex, and a dag operation kills that vertex mid-chunk.
template <typename F>
void parallel_for(std::size_t lo, std::size_t hi, std::size_t grain, F f) {
  if (lo >= hi) return;
  detail::pfor_range<F>{lo, hi, grain == 0 ? 1 : grain, std::move(f)}();
}

}  // namespace spdag
