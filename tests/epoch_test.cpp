// Deterministic unit tests for the epoch-based reclamation protocol
// (src/mem/epoch.hpp): pin nesting, the pinned-laggard advance block, the
// 2-epoch retire delay, exactly-once reclamation, and the owner flush.
//
// Everything here is single- or two-threaded with explicit handshakes — the
// adversarial multi-thread storms live in epoch_reclaim_test.cpp (stress
// lane). All tests skip when the subsystem is compiled out
// (-DSPDAG_EPOCH=OFF); the kill-switch CI lane still builds this binary.

#include <atomic>
#include <thread>

#include <gtest/gtest.h>

#include "mem/epoch.hpp"

namespace spdag {
namespace {

namespace ep = mem::epoch;

// Callback for retire(): bumps the atomic counter passed as `a`.
void bump(void* a, void* /*b*/) noexcept {
  static_cast<std::atomic<int>*>(a)->fetch_add(1, std::memory_order_relaxed);
}

// Settle the global state left by earlier tests in this binary: advance
// twice and sweep, so pre-existing limbo entries cannot leak into a test's
// reclaim() counts.
void settle() {
  ep::try_advance();
  ep::try_advance();
  ep::reclaim();
}

TEST(Epoch, PinsNestPerThread) {
  if (!ep::enabled()) GTEST_SKIP() << "built with -DSPDAG_EPOCH=OFF";
  EXPECT_FALSE(ep::pinned());
  ep::pin();
  EXPECT_TRUE(ep::pinned());
  ep::pin();  // nested: counted, not republished
  ep::unpin();
  EXPECT_TRUE(ep::pinned()) << "inner unpin must not retract the outer pin";
  ep::unpin();
  EXPECT_FALSE(ep::pinned());
}

TEST(Epoch, RefreshAndTickAreNoOpsUnpinned) {
  if (!ep::enabled()) GTEST_SKIP() << "built with -DSPDAG_EPOCH=OFF";
  // Legal (and harmless) from a thread that holds no pin — the scheduler
  // hooks rely on this after the park-path unpin.
  ep::refresh();
  ep::tick();
  EXPECT_FALSE(ep::pinned());
}

TEST(Epoch, DisabledBuildRunsRetireImmediately) {
  if (ep::enabled()) GTEST_SKIP() << "covers the -DSPDAG_EPOCH=OFF build";
  std::atomic<int> freed{0};
  ep::retire(&bump, &freed, nullptr);
  EXPECT_EQ(freed.load(), 1) << "with the subsystem compiled out, retire() "
                                "must degrade to immediate destruction";
  EXPECT_FALSE(ep::pinned());
  EXPECT_EQ(ep::limbo_size(), 0u);
}

// The load-bearing safety property, made deterministic: a pinned thread
// that has not refreshed blocks the SECOND advance (it lags by at most
// one), and memory retired under it stays in limbo until the laggard
// republishes at a no-stale-pointers point.
TEST(Epoch, PinnedLaggardBlocksSecondAdvanceAndReclaim) {
  if (!ep::enabled()) GTEST_SKIP() << "built with -DSPDAG_EPOCH=OFF";
  settle();

  std::atomic<int> stage{0};
  std::thread laggard([&] {
    ep::pin_guard pg;
    stage.store(1, std::memory_order_release);
    // Hold the pin, without refreshing, until the main thread has seen the
    // blocked advance.
    while (stage.load(std::memory_order_acquire) < 2) std::this_thread::yield();
    ep::refresh();  // the thread holds no stale pointers here
    stage.store(3, std::memory_order_release);
    while (stage.load(std::memory_order_acquire) < 4) std::this_thread::yield();
  });
  while (stage.load(std::memory_order_acquire) < 1) std::this_thread::yield();

  std::atomic<int> freed{0};
  ep::retire(&bump, &freed, nullptr);
  const std::uint64_t e0 = ep::current();

  // The laggard published e0, so one advance is allowed...
  ASSERT_TRUE(ep::try_advance());
  EXPECT_EQ(ep::current(), e0 + 1);
  // ...but not a second: the laggard still publishes e0.
  EXPECT_FALSE(ep::try_advance());
  EXPECT_EQ(ep::current(), e0 + 1);
  EXPECT_EQ(ep::lag(), 1u);
  EXPECT_EQ(ep::reclaim(), 0u) << "one advance is not proof of passage";
  EXPECT_EQ(freed.load(), 0);

  // Let the laggard refresh; the advance (and hence the reclaim) unblocks.
  stage.store(2, std::memory_order_release);
  while (stage.load(std::memory_order_acquire) < 3) std::this_thread::yield();
  ASSERT_TRUE(ep::try_advance());
  EXPECT_EQ(ep::current(), e0 + 2);
  EXPECT_EQ(ep::reclaim(), 1u);
  EXPECT_EQ(freed.load(), 1);

  stage.store(4, std::memory_order_release);
  laggard.join();
}

TEST(Epoch, RetireFreesAfterTwoAdvancesExactlyOnce) {
  if (!ep::enabled()) GTEST_SKIP() << "built with -DSPDAG_EPOCH=OFF";
  settle();

  std::atomic<int> freed{0};
  ep::retire(&bump, &freed, nullptr);
  EXPECT_GE(ep::limbo_size(), 1u);

  EXPECT_EQ(ep::reclaim(), 0u) << "same epoch: must stay in limbo";
  ASSERT_TRUE(ep::try_advance());
  EXPECT_EQ(ep::reclaim(), 0u) << "one epoch behind: must stay in limbo";
  EXPECT_EQ(freed.load(), 0);

  ASSERT_TRUE(ep::try_advance());
  EXPECT_EQ(ep::reclaim(), 1u);
  EXPECT_EQ(freed.load(), 1);

  // Exactly once: further sweeps and advances find nothing.
  EXPECT_EQ(ep::reclaim(), 0u);
  ep::try_advance();
  EXPECT_EQ(ep::reclaim(), 0u);
  EXPECT_EQ(freed.load(), 1);
}

TEST(Epoch, FlushOwnerRunsMatchingEntriesRegardlessOfEpoch) {
  if (!ep::enabled()) GTEST_SKIP() << "built with -DSPDAG_EPOCH=OFF";
  settle();

  std::atomic<int> mine{0};
  std::atomic<int> other{0};
  ep::retire(&bump, &mine, nullptr);
  ep::retire(&bump, &mine, nullptr);
  ep::retire(&bump, &other, nullptr);

  // No advances at all — flush_owner is the teardown path and ignores the
  // 2-epoch delay (legal only under the owner's own lifetime contract).
  EXPECT_EQ(ep::flush_owner(&mine), 2u);
  EXPECT_EQ(mine.load(), 2);
  EXPECT_EQ(other.load(), 0) << "foreign entries must stay in limbo";

  // The foreign entry still follows the normal protocol.
  ep::try_advance();
  ep::try_advance();
  EXPECT_EQ(ep::reclaim(), 1u);
  EXPECT_EQ(other.load(), 1);

  // And the flushed entries never run twice.
  EXPECT_EQ(mine.load(), 2);
}

TEST(Epoch, AdvanceIsMonotoneAcrossThreads) {
  if (!ep::enabled()) GTEST_SKIP() << "built with -DSPDAG_EPOCH=OFF";
  settle();
  const std::uint64_t e0 = ep::current();
  std::thread t([] {
    ep::pin_guard pg;
    ep::refresh();
  });
  t.join();
  ep::try_advance();
  EXPECT_GE(ep::current(), e0);
  EXPECT_EQ(ep::lag(), 0u) << "a joined thread must not register as pinned";
}

}  // namespace
}  // namespace spdag
