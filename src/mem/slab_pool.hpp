#pragma once
// slab_cache / slab_pool<T>: the pooled hot-path allocator.
//
// Three layers, fastest first:
//
//   1. Per-worker magazines. Each thread (keyed by mem::thread_slot(), one
//      live owner per slot) has a small cache of free cells inside the pool.
//      Steady-state allocate/deallocate is an uncontended array push/pop on
//      a line only the owner touches — zero CASes, zero malloc. Magazines
//      are sized by OBJECT GEOMETRY, not a fixed cell count: each one
//      targets default_magazine_bytes of cell storage, clamped to
//      [mag_cap_min, mag_cap_max] cells, with refill/flush batch = cap/2 —
//      so a pool of 16-byte waiter records runs deep magazines while a pool
//      of 512-byte states runs shallow ones, for the same cache footprint.
//   2. A lock-free global recycle list (tagged-pointer Treiber stack, the
//      same ABA defense as util/treiber_stack). Magazines refill from it in
//      batches when empty and flush half their cells to it when full; it is
//      what makes cross-worker frees cheap — consumer B freeing a future
//      state worker A allocated just fills B's magazine, and the overflow
//      migrates back through this list.
//   3. Block-allocated slabs. Only when the global list is dry does a
//      refill carve fresh cells from the current slab, growing a new slab
//      from the upstream allocator when exhausted (the only path that ever
//      calls aligned_alloc, counted in stats().slab_growths). Slabs leave
//      through two doors, both governed by the epoch protocol
//      (src/mem/epoch.hpp): trim() at quiescence frees fully-free slabs
//      immediately (no pinned readers to wait for), and trim_live() under
//      live traffic RETIRES them into epoch limbo, where they stay mapped
//      until two epoch advances prove no pinned reader — a racing
//      recycle-list pop, a stale SNZI-pair or out-set-node dereference on a
//      pinned worker — can still reach a cell inside them. The pool's own
//      stale reads (pop_global walking links of cells another thread may
//      pop concurrently) pin around the pop, so they are covered by the
//      same argument.
//
// Adaptive mode (`adaptive = true`, spec `alloc:...:adaptive`): each
// magazine's EFFECTIVE capacity moves at runtime inside
// [mag_cap_min, magazine_slots()]. The signal is the gap — allocate/
// deallocate calls on this magazine — between consecutive global-list trips
// (refill or flush): a gap smaller than the capacity means the worker is
// ping-ponging refill→flush against the shared recycle list, so the cap
// doubles (more hysteresis, fewer CASes); a gap longer than 64 capacities
// means the magazine is over-provisioned for this worker's traffic, so the
// cap halves (fewer cells stranded in an idle cache). Fixed mode pins the
// effective cap at magazine_slots().
//
// Cell layout: every cell carries a small pool-private header *before* the
// object — a free-list link (atomic, never aliased by object data, so the
// Treiber pops are race-free under TSan) and a stamp word recording the slot
// of the last allocator (0 = never allocated). The stamp gives exact
// recycle and cross-worker-free counts for one relaxed load per operation.
//
// Elimination mode (`elim = true`, spec `alloc:...:elim`): a small array of
// cache-line-spread rendezvous slots sits in FRONT of the global recycle
// list. A cross-worker free offers its cell to a randomized slot (bounded
// probing, falling through to the Treiber push when every probed slot is
// taken — counted in stats().elim_timeouts); a refill miss or slotless
// allocate probes the slots and takes a parked cell with one CAS before ever
// touching the Treiber head. Each matched pair cancels on a private line
// (counted once, on the taking side, in stats().eliminations) instead of
// both hammering the list's single hot cache line — the classic
// elimination-array remedy, here diffusing the pool's residual
// serialization point. Slot hand-off is a single CAS transfer of full cell
// ownership: neither side dereferences a cell it does not yet own, and a
// parked cell is absent from the recycle list, so trim_live() can never
// retire the slab under it. Slot walks still pin (src/mem/epoch.hpp) so the
// load-then-CAS window on a concurrently drained slot reads mapped memory —
// the same argument pop_global's link walk relies on. Both trims drain the
// slots, so a parked cell never outlives quiescence.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "mem/pool.hpp"
#include "mem/thread_slot.hpp"
#include "util/cache_aligned.hpp"

namespace spdag {

class slab_cache : public object_pool {
 public:
  static constexpr std::size_t default_slab_bytes = 1 << 16;
  // Per-magazine cell-storage budget (stride bytes, headers included) the
  // geometry-derived capacity targets, and the hard clamp on that capacity.
  // The clamp floor wins over the budget for very large cells (a magazine
  // below ~8 cells flushes so often the global list becomes the hot path).
  static constexpr std::size_t default_magazine_bytes = 4096;
  static constexpr std::uint32_t mag_cap_min = 8;
  static constexpr std::uint32_t mag_cap_max = 128;
  // Rendezvous slots in elimination mode, and how many a free probes before
  // falling through to the Treiber push. Small on purpose: each slot is a
  // full cache line, and the win comes from spreading, not depth.
  static constexpr std::size_t elim_slot_count = 8;
  static constexpr std::size_t elim_put_probes = 2;

  // `slab_bytes` is the upstream allocation unit (rounded up to hold at
  // least one cell); `magazine_bytes` the per-magazine storage budget
  // (0 = default_magazine_bytes). Throws std::invalid_argument on a zero
  // object size.
  slab_cache(std::string name, std::size_t object_bytes,
             std::size_t object_align,
             std::size_t slab_bytes = default_slab_bytes,
             std::size_t magazine_bytes = 0, bool adaptive = false,
             bool elim = false);
  ~slab_cache() override;

  void* allocate() override;
  void deallocate(void* p) noexcept override;
  pool_stats stats() const override;
  std::size_t trim() override;
  std::size_t trim_live() override;

  std::size_t cell_stride() const noexcept { return stride_; }
  std::size_t slab_bytes() const noexcept { return slab_bytes_; }
  std::size_t slab_count() const;
  // Storage slots per magazine: the geometry-derived, clamped capacity.
  std::uint32_t magazine_slots() const noexcept { return mag_slots_; }
  // Where the effective cap starts: magazine_slots() when fixed, a quarter
  // of it (>= mag_cap_min) when adaptive, leaving room to grow under
  // thrash.
  std::uint32_t magazine_initial_cap() const noexcept { return initial_cap_; }
  bool adaptive() const noexcept { return adaptive_; }
  bool elim() const noexcept { return elim_; }

 private:
  // One worker's cell cache, allocated at mag_slots_ trailing item slots.
  // Only the slot's owner thread touches items/count/cap/since_cycle in
  // normal operation; count and cap are single-writer relaxed atomics so
  // stats() can read them from any thread, and trim() (quiescent-only, so
  // ordered against every owner access through the scheduler's park/join
  // handshakes) may rewrite all of them.
  struct alignas(cache_line_size) magazine {
    std::atomic<std::uint32_t> count{0};
    std::atomic<std::uint32_t> cap;  // effective capacity, adaptive
    std::uint32_t since_cycle = 0;   // ops since the last refill/flush
    bool primed = false;             // true once one refill/flush has run:
                                     // a fresh magazine's first trip always
                                     // has a tiny gap (cold start, or a
                                     // trim reset), which must not read as
                                     // ping-pong
    std::atomic<std::uint64_t> allocs{0};
    std::atomic<std::uint64_t> frees{0};
    std::atomic<std::uint64_t> recycles{0};
    std::atomic<std::uint64_t> remote_frees{0};
    std::atomic<std::uint64_t> refills{0};
    std::atomic<std::uint64_t> flushes{0};
    std::atomic<std::uint64_t> grows{0};
    std::atomic<std::uint64_t> shrinks{0};

    explicit magazine(std::uint32_t cap0) : cap(cap0) {}
    // Item storage lives directly behind the struct (cache-line aligned,
    // sized at creation for mag_slots_ entries).
    void** items() noexcept { return reinterpret_cast<void**>(this + 1); }
  };
  static magazine* magazine_create(std::uint32_t slots, std::uint32_t cap0);
  static void magazine_destroy(magazine* m) noexcept;

  std::atomic<void*>* link_of(void* obj) const noexcept {
    return reinterpret_cast<std::atomic<void*>*>(static_cast<char*>(obj) -
                                                 hdr_space_);
  }
  static std::atomic<std::uint64_t>* stamp_of(void* obj) noexcept {
    return reinterpret_cast<std::atomic<std::uint64_t>*>(
        static_cast<char*>(obj) - sizeof(std::uint64_t));
  }

  magazine& mag(int slot);
  void adapt(magazine& m) noexcept;      // owner thread, at refill/flush
  void refill(magazine& m);              // postcondition: m.count >= 1
  void flush(magazine& m) noexcept;      // postcondition: m.count < m.cap
  void carve(void** out, std::uint32_t want, std::uint32_t& got);
  void* pop_global() noexcept;
  void push_global(void* first, void* last, std::uint32_t n) noexcept;
  // Elimination rendezvous (elim mode only; see file comment). put parks
  // one cell on a randomized slot (false = every probed slot taken, caller
  // falls through to push_global); take claims a parked cell with one CAS
  // (nullptr = nothing parked on the probed walk).
  bool try_elim_put(void* p) noexcept;
  void* try_elim_take() noexcept;
  // Trim helper: empties every slot into `out` (take-CAS per slot, so it is
  // safe against concurrent rendezvous traffic under trim_live).
  void drain_elim(std::vector<void*>& out) noexcept;
  static bool restamp(void* p, int slot) noexcept;
  // Epoch limbo callback: frees one retired slab (mem::epoch::retire's fn).
  static void reclaim_slab(void* self, void* slab) noexcept;

  std::size_t hdr_space_;   // bytes before the object: link + pad + stamp
  std::size_t stride_;      // full cell size, object_align-multiple
  std::size_t slab_bytes_;
  std::size_t slab_align_;
  std::size_t mag_bytes_;   // requested magazine budget (0 = default)
  std::uint32_t mag_slots_; // derived storage capacity per magazine
  std::uint32_t initial_cap_;
  bool adaptive_;
  bool elim_;

  // One rendezvous slot per cache line: nullptr = empty, else a parked cell
  // whose ownership transfers with the take-CAS.
  struct alignas(cache_line_size) elim_slot {
    std::atomic<void*> cell{nullptr};
  };
  elim_slot elim_slots_[elim_slot_count];

  std::atomic<std::uint64_t> global_head_{0};   // pack(cell, tag)
  std::atomic<std::uint64_t> global_cells_{0};  // list length (gauge)
  std::atomic<magazine*> mags_[mem::max_thread_slots] = {};

  mutable std::mutex grow_mu_;
  std::vector<void*> slabs_;
  char* cursor_ = nullptr;
  char* slab_end_ = nullptr;

  // Cold-path / bypass tallies (magazine-cached ops count in the magazine).
  std::atomic<std::uint64_t> g_allocs_{0};
  std::atomic<std::uint64_t> g_frees_{0};
  std::atomic<std::uint64_t> g_recycles_{0};
  std::atomic<std::uint64_t> g_remote_frees_{0};
  std::atomic<std::uint64_t> carved_{0};
  std::atomic<std::uint64_t> slab_growths_{0};
  std::atomic<std::uint64_t> trims_{0};
  std::atomic<std::uint64_t> slabs_released_{0};
  std::atomic<std::uint64_t> cells_released_{0};
  // Epoch live-trim lifecycle: retired (parked in limbo) vs reclaimed
  // (actually freed, by reclaim_slab after the 2-epoch delay).
  std::atomic<std::uint64_t> slabs_retired_{0};
  std::atomic<std::uint64_t> slabs_reclaimed_{0};
  std::atomic<std::uint64_t> limbo_cells_{0};
  // Elimination tallies (zero unless elim mode): matched pairs (counted on
  // the taking side) and offers that fell through to the Treiber list.
  std::atomic<std::uint64_t> eliminations_{0};
  std::atomic<std::uint64_t> elim_timeouts_{0};
};

// Typed convenience over slab_cache for callers that own their pool outright
// (tests, structures with a single cell type).
template <typename T>
class slab_pool final : public slab_cache {
 public:
  explicit slab_pool(std::string name = "slab",
                     std::size_t slab_bytes = default_slab_bytes,
                     std::size_t magazine_bytes = 0, bool adaptive = false,
                     bool elim = false)
      : slab_cache(std::move(name), sizeof(T), alignof(T), slab_bytes,
                   magazine_bytes, adaptive, elim) {}

  template <typename... Args>
  T* create(Args&&... args) {
    return pool_new<T>(*this, std::forward<Args>(args)...);
  }
  void destroy(T* obj) noexcept { pool_delete(*this, obj); }
};

}  // namespace spdag
