#pragma once
// The in-counter (paper section 3.3): a dependency counter for sp-dags built
// on a dynamic SNZI tree.
//
// Handles are pointers to SNZI nodes. An increment first calls grow() on the
// caller's increment handle — "this growth request notifies the tree of
// possible contention in the future" — then arrives at the child on the
// caller's side (left child if the spawning vertex is a left child), and
// returns the two children as the increment handles for the two vertices the
// spawn creates. The decrement token it returns is the node the arrive
// targeted; the *inherited* decrement handle is claimed by the dag layer
// (claim_dec) so that the handle pointing higher in the tree is always used
// first (the ordering Lemma 4.6's proof relies on).

#include <cassert>
#include <cstdint>

#include "counter/dep_counter.hpp"
#include "snzi/tree.hpp"

namespace spdag {

struct incounter_config {
  // grow() succeeds with probability 1/grow_threshold. The paper's default
  // for measurement runs is 25 * cores; the analyzed setting is 1.
  std::uint64_t grow_threshold = 1;
  // Recycle drained subtrees (appendix B); only applied when threshold == 1.
  // SAFETY CONTRACT: reclamation relies on Lemma 4.6, whose proof needs the
  // sp-dag claim discipline (within each handle pair, the higher handle is
  // claimed first, and increments claim only after their arrive completes).
  // Executions that are merely valid per Definition 1 but ignore that
  // discipline must set reclaim = false.
  bool reclaim = true;
  snzi::tree_stats* stats = nullptr;
  // Child-pair slab pool (null = the default registry's snzi_pair pool).
  object_pool* pair_pool = nullptr;
};

class incounter final : public dep_counter {
 public:
  explicit incounter(std::uint32_t initial = 0, incounter_config cfg = {})
      : tree_(initial,
              snzi::tree_config{cfg.grow_threshold, cfg.reclaim, cfg.stats,
                                cfg.pair_pool}) {}

  arrive_result arrive(token inc_hint, bool from_left) override {
    auto* h = reinterpret_cast<snzi::node*>(inc_hint);
    assert(h != nullptr && "in-counter increments require an increment handle");
    auto [a, b] = h->grow();
    snzi::node* d2 = from_left ? a : b;
    d2->arrive();
    return {reinterpret_cast<token>(d2), reinterpret_cast<token>(a),
            reinterpret_cast<token>(b)};
  }

  arrive_result add(token inc_hint, bool from_left, std::uint32_t k) override {
    assert(k >= 1 && "a batched increment covers at least one unit");
    auto* h = reinterpret_cast<snzi::node*>(inc_hint);
    assert(h != nullptr && "in-counter increments require an increment handle");
    // One grow, one batched SNZI arrive: the k units land on the handle's
    // child on the caller's side, and the returned token supports the k
    // matching departs there. The two child handles are shared by every
    // vertex of the batch (see dep_counter::add on the abandon caveat).
    auto [a, b] = h->grow();
    snzi::node* d2 = from_left ? a : b;
    d2->arrive(k);
    return {reinterpret_cast<token>(d2), reinterpret_cast<token>(a),
            reinterpret_cast<token>(b)};
  }

  bool depart(token dec) override {
    auto* d = reinterpret_cast<snzi::node*>(dec);
    assert(d != nullptr && "in-counter decrements require a decrement handle");
    return d->depart();
  }

  bool is_zero() const override { return tree_.is_zero(); }

  void abandon(token inc) override {
    if (inc != 0) reinterpret_cast<snzi::node*>(inc)->retire_if_unused();
  }

  token root_token() override { return reinterpret_cast<token>(tree_.base()); }
  bool uses_tokens() const override { return true; }

  void reset(std::uint32_t n) override { tree_.reset(n); }

  snzi::snzi_tree& tree() noexcept { return tree_; }
  const snzi::snzi_tree& tree() const noexcept { return tree_; }

 private:
  snzi::snzi_tree tree_;
};

}  // namespace spdag
