#pragma once
// Pooled factories for out-sets, mirroring incounter/factory.hpp.
//
// Future-churn workloads (the fan-out analogue of the paper's Figure 10)
// create one future — and hence one out-set — per iteration, millions of
// times. The factory pools retired out-sets through an object_bank
// (src/mem/object_bank.hpp — out-set objects are registry pool cells
// recycled over an intrusive stack) and waiter records directly as slab
// cells, so the benchmarks measure the structure's own cost, not malloc's.
//
// Spec strings (accepted with or without the "outset:" prefix):
//   "simple"                     single CAS-list head (the baseline)
//   "simple:fc"                  flat-combining front over the CAS list
//                                (outset/fc_outset.hpp): threads publish
//                                adds to per-slot records and one combiner
//                                splices the batch with a single head CAS —
//                                contention diffused in place rather than
//                                tree-spread. The fc suffix applies to
//                                "simple" only; the tree already spreads,
//                                so "tree:...:fc" is rejected (its fields
//                                are numeric).
//   "tree"                       grow-on-contention tree, fanout 2
//   "tree:<fanout>"              grow-on-contention tree, given fanout (>= 2)
//   "tree:<fanout>:<threshold>"  growth damped by a 1/threshold coin, like
//                                the in-counter's (1 = always; 0 = NEVER
//                                grow — a defined, supported ablation: every
//                                registration stays on the base cache line,
//                                so the tree degenerates to simple_outset
//                                plus tree bookkeeping. Deliberate, not an
//                                error: it isolates the cost of the tree
//                                machinery from the benefit of spreading.)
//   "tree:<fanout>:<threshold>:<scatter>"
//                                deep-broadcast mode: every add dives
//                                <scatter> levels down a random path before
//                                its first CAS, deterministically building
//                                the deep tree that contention would — the
//                                workload for the parallel finalize drain.
//                                scatter must be <= the depth cap (12) and
//                                cannot combine with threshold 0 (the dive
//                                grows unconditionally, contradicting
//                                never-grow).
// Throws std::invalid_argument on anything else.
//
// Waiter records and tree node groups are slab-pool cells from the given
// pool registry (src/mem/), so a factory is a thin directory: it pools only
// the polymorphic out-set objects themselves.

#include <cstdint>
#include <memory>
#include <string>

#include "mem/object_bank.hpp"
#include "mem/registry.hpp"
#include "outset/outset.hpp"
#include "outset/tree_outset.hpp"

namespace spdag {

class outset_factory {
 public:
  // `pools` supplies the waiter-record (and, for trees, node-group) cells;
  // null = the process-wide default registry. Borrowed, must outlive the
  // factory.
  explicit outset_factory(pool_registry* pools = nullptr);
  virtual ~outset_factory() = default;

  // Thread-safe: pops a pooled out-set (or creates one), pristine.
  outset* acquire();

  // Thread-safe: scrubs `o` (returning any never-delivered waiters to the
  // waiter pool) and returns it to the out-set pool.
  void release(outset* o);

  // Thread-safe waiter-record pool (one slab cell per registration).
  outset_waiter* acquire_waiter(vertex* consumer, dag_engine* engine);
  void release_waiter(outset_waiter* w) { pool_delete(*waiter_pool_, w); }

  // Short machine name ("simple", "tree:4") and a plot-legend label.
  virtual std::string name() const = 0;
  virtual std::string display_name() const = 0;

  // Out-sets created over the factory's lifetime (pool effectiveness).
  std::size_t created() const { return bank_.created(); }
  // Waiter cells ever carved by the backing pool. Registry-scoped: factories
  // sharing one registry share the count.
  std::size_t waiters_created() const;

  pool_registry& pools() const noexcept { return *pools_; }

  // Instrumentation summed over every out-set this factory ever created
  // (counters are monotone across pooling generations). The headline stat:
  // totals().add_cas_retries / totals().adds is the per-registration retry
  // rate, which stays flat for the tree as consumer counts grow and climbs
  // for the single-cell baseline.
  outset_totals totals() const;

 protected:
  // Pooled construction: emplace the concrete out-set type into the bank.
  virtual outset* create_pooled(object_bank<outset>& bank) = 0;

 private:
  pool_registry* pools_;
  object_pool* waiter_pool_;
  object_bank<outset> bank_;
};

// --- concrete factories ---

class simple_outset_factory final : public outset_factory {
 public:
  using outset_factory::outset_factory;
  std::string name() const override { return "simple"; }
  std::string display_name() const override { return "CAS list"; }

 protected:
  outset* create_pooled(object_bank<outset>& bank) override;
};

class fc_outset_factory final : public outset_factory {
 public:
  using outset_factory::outset_factory;
  std::string name() const override { return "simple:fc"; }
  std::string display_name() const override { return "flat-combining list"; }

 protected:
  outset* create_pooled(object_bank<outset>& bank) override;
};

class tree_outset_factory final : public outset_factory {
 public:
  explicit tree_outset_factory(tree_outset_config cfg = {},
                               pool_registry* pools = nullptr);
  std::string name() const override {
    // Trailing fields are elided when at their defaults, but a non-default
    // scatter forces the threshold field so the name re-parses unambiguously.
    // (Appends, not operator+ chains: gcc 12 -O3 -Wrestrict false positive,
    // GCC PR 105651, fires on the chained form under -Werror.)
    std::string s = "tree:";
    s += std::to_string(cfg_.fanout);
    if (cfg_.grow_threshold != 1 || cfg_.scatter_depth != 0) {
      s += ':';
      s += std::to_string(cfg_.grow_threshold);
    }
    if (cfg_.scatter_depth != 0) {
      s += ':';
      s += std::to_string(cfg_.scatter_depth);
    }
    return s;
  }
  std::string display_name() const override { return "out-set tree"; }
  const tree_outset_config& config() const noexcept { return cfg_; }

 protected:
  outset* create_pooled(object_bank<outset>& bank) override;

 private:
  tree_outset_config cfg_;
};

// Parses an out-set spec (see file comment). `pools` supplies waiter and
// node-group cells (null = default registry).
std::unique_ptr<outset_factory> make_outset_factory(
    const std::string& spec, pool_registry* pools = nullptr);

// Process-wide simple factory used by engines and futures that were not
// handed an explicit factory (tests constructing futures outside a runtime).
outset_factory& default_outset_factory();

}  // namespace spdag
