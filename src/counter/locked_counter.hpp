#pragma once
// Mutex-protected reference counter.
//
// Not a contender in any benchmark — it exists as the trivially correct
// oracle the test suite compares every other dep_counter implementation
// against (conformance + linearizability-at-quiescence checks).

#include <cassert>
#include <cstdint>
#include <mutex>

#include "counter/dep_counter.hpp"

namespace spdag {

class locked_counter final : public dep_counter {
 public:
  explicit locked_counter(std::uint32_t initial = 0) : count_(initial) {}

  arrive_result arrive(token /*inc_hint*/, bool /*from_left*/) override {
    std::lock_guard<std::mutex> lock(mu_);
    ++count_;
    return {0, 0, 0};
  }

  arrive_result add(token /*inc_hint*/, bool /*from_left*/,
                    std::uint32_t k) override {
    assert(k >= 1 && "a batched increment covers at least one unit");
    std::lock_guard<std::mutex> lock(mu_);
    count_ += k;
    return {0, 0, 0};
  }

  bool depart(token /*dec*/) override {
    std::lock_guard<std::mutex> lock(mu_);
    assert(count_ >= 1 && "depart on a zero reference counter");
    --count_;
    return count_ == 0;
  }

  bool is_zero() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return count_ == 0;
  }

  token root_token() override { return 0; }
  bool uses_tokens() const override { return false; }

  void reset(std::uint32_t n) override {
    std::lock_guard<std::mutex> lock(mu_);
    count_ = n;
  }

  std::int64_t value() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
  }

 private:
  mutable std::mutex mu_;
  std::int64_t count_;
};

}  // namespace spdag
