// Parameterized stress tests for the Chase-Lev deque: conservation under
// concurrent theft across initial capacities (forcing growth mid-flight)
// and thief counts.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <tuple>
#include <vector>

#include "sched/chase_lev.hpp"

namespace spdag {
namespace {

struct item {
  explicit item(int v) : value(v) {}
  int value;
};

using Param = std::tuple<std::size_t /*log_capacity*/, int /*thieves*/>;

class ChaseLevStress : public ::testing::TestWithParam<Param> {};

TEST_P(ChaseLevStress, ConservationUnderTheftAndGrowth) {
  const auto [log_cap, n_thieves] = GetParam();
  constexpr int kItems = 20000;
  chase_lev_deque<item> d(log_cap);
  std::vector<std::unique_ptr<item>> items;
  items.reserve(kItems);
  for (int i = 0; i < kItems; ++i) items.push_back(std::make_unique<item>(i));

  std::vector<std::vector<int>> stolen(static_cast<std::size_t>(n_thieves));
  std::atomic<bool> owner_done{false};
  std::vector<std::thread> thieves;
  for (int t = 0; t < n_thieves; ++t) {
    thieves.emplace_back([&, t] {
      auto& mine = stolen[static_cast<std::size_t>(t)];
      while (!owner_done.load(std::memory_order_acquire) ||
             d.size_estimate() > 0) {
        if (item* it = d.steal_top()) mine.push_back(it->value);
      }
    });
  }

  std::vector<int> popped;
  for (int i = 0; i < kItems; ++i) {
    d.push_bottom(items[static_cast<std::size_t>(i)].get());
    // Interleave pops at varying density to hit the take-last race often.
    if ((i % 5) < 2) {
      if (item* it = d.pop_bottom()) popped.push_back(it->value);
    }
  }
  for (;;) {
    item* it = d.pop_bottom();
    if (it == nullptr && d.size_estimate() == 0) break;
    if (it != nullptr) popped.push_back(it->value);
  }
  owner_done.store(true, std::memory_order_release);
  for (auto& th : thieves) th.join();

  std::vector<int> all(popped);
  for (const auto& s : stolen) all.insert(all.end(), s.begin(), s.end());
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), static_cast<std::size_t>(kItems))
      << "items lost or duplicated (log_cap=" << log_cap
      << ", thieves=" << n_thieves << ")";
  for (int i = 0; i < kItems; ++i) {
    ASSERT_EQ(all[static_cast<std::size_t>(i)], i);
  }
  // Tiny initial capacities must have grown to hold the burst. (Braces:
  // the EXPECT macro expands to an if/else, which -Wdangling-else flags.)
  if (log_cap <= 4) {
    EXPECT_GT(d.capacity(), std::size_t{1} << log_cap);
  }
}

INSTANTIATE_TEST_SUITE_P(
    CapacitiesAndThieves, ChaseLevStress,
    ::testing::Combine(::testing::Values(std::size_t{2}, std::size_t{4},
                                         std::size_t{10}),
                       ::testing::Values(1, 2, 4)),
    [](const ::testing::TestParamInfo<Param>& info) {
      return "cap" + std::to_string(std::size_t{1} << std::get<0>(info.param)) +
             "_thieves" + std::to_string(std::get<1>(info.param));
    });

TEST(ChaseLevEdge, PopFromEmptyRepeatedly) {
  chase_lev_deque<item> d;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(d.pop_bottom(), nullptr);
    EXPECT_EQ(d.steal_top(), nullptr);
  }
  item a(7);
  d.push_bottom(&a);
  EXPECT_EQ(d.pop_bottom(), &a);
  EXPECT_EQ(d.pop_bottom(), nullptr);
}

TEST(ChaseLevEdge, AlternatingPushPopKeepsIndicesSane) {
  chase_lev_deque<item> d(2);
  item a(1);
  for (int i = 0; i < 100000; ++i) {
    d.push_bottom(&a);
    ASSERT_EQ(d.pop_bottom(), &a);
  }
  EXPECT_EQ(d.size_estimate(), 0);
  EXPECT_EQ(d.capacity(), 4u) << "balanced push/pop must not grow the ring";
}

TEST(ChaseLevEdge, TakeLastRaceNeverDuplicates) {
  // One item, one owner pop racing one thief, many rounds.
  for (int round = 0; round < 3000; ++round) {
    chase_lev_deque<item> d;
    item a(round);
    d.push_bottom(&a);
    item* got_thief = nullptr;
    std::thread thief([&] { got_thief = d.steal_top(); });
    item* got_owner = d.pop_bottom();
    thief.join();
    const int takers = (got_owner != nullptr) + (got_thief != nullptr);
    ASSERT_EQ(takers, 1) << "round " << round;
  }
}

}  // namespace
}  // namespace spdag
