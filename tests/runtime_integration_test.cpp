// End-to-end integration: the full stack (work-stealing scheduler + sp-dag +
// pluggable counters) across algorithms and workloads, plus the appendix-B
// space-bound property observed through instrumentation.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <tuple>

#include "harness/workloads.hpp"
#include "sched/runtime.hpp"

namespace spdag {
namespace {

using Param = std::tuple<std::string /*algo*/, std::size_t /*workers*/>;

class RuntimeIntegration : public ::testing::TestWithParam<Param> {
 protected:
  runtime_config cfg() const {
    auto [algo, workers] = GetParam();
    return runtime_config{workers, algo};
  }
};

TEST_P(RuntimeIntegration, FibMatchesReference) {
  runtime rt(cfg());
  EXPECT_EQ(harness::fib(rt, 18), 2584u);
}

TEST_P(RuntimeIntegration, FaninConservesEverything) {
  runtime rt(cfg());
  harness::fanin(rt, 1 << 11);
  const auto& st = rt.engine().stats();
  EXPECT_EQ(st.vertices_created.load(), st.vertices_recycled.load());
  EXPECT_EQ(st.executions.load(), st.vertices_created.load());
  if (rt.engine().uses_tokens()) {
    EXPECT_EQ(st.pairs_created.load(), st.pairs_recycled.load());
  }
  EXPECT_EQ(rt.engine().live_vertices(), 0u);
}

TEST_P(RuntimeIntegration, Indegree2Conserves) {
  runtime rt(cfg());
  harness::indegree2(rt, 1 << 11);
  EXPECT_EQ(rt.engine().live_vertices(), 0u);
  EXPECT_EQ(rt.engine().stats().pairs_created.load(),
            rt.engine().stats().pairs_recycled.load());
}

TEST_P(RuntimeIntegration, GranularityWorkloadCompletes) {
  runtime rt(cfg());
  harness::fanin(rt, 1 << 8, /*work_ns=*/100);
  EXPECT_EQ(rt.engine().live_vertices(), 0u);
}

TEST_P(RuntimeIntegration, BackToBackRunsAreIndependent) {
  runtime rt(cfg());
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(harness::fib(rt, 12), 144u) << "run " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AlgosAndWorkers, RuntimeIntegration,
    ::testing::Combine(::testing::Values("faa", "snzi:2", "snzi:4", "dyn:1",
                                         "dyn:128"),
                       ::testing::Values(std::size_t{1}, std::size_t{3})),
    [](const ::testing::TestParamInfo<Param>& info) {
      std::string algo = std::get<0>(info.param);
      for (char& ch : algo) {
        if (ch == ':') ch = '_';
      }
      return algo + "_w" + std::to_string(std::get<1>(info.param));
    });

// --- claim-order ablation still behaves correctly ---

TEST(ClaimOrderAblation, RandomizedClaimIsStillCorrect) {
  // Randomized claim order voids Lemma 4.6, so reclamation must be off.
  runtime_config cfg{2, "dyn:1:noreclaim"};
  cfg.engine_options.randomize_claim_order = true;
  runtime rt(cfg);
  EXPECT_EQ(harness::fib(rt, 16), 987u);
  harness::fanin(rt, 1 << 10);
  EXPECT_EQ(rt.engine().live_vertices(), 0u);
}

// --- space bounds (appendix B) ---

TEST(SpaceBounds, ReclamationKeepsAllocationsFlat) {
  // threshold 1 + reclamation: a fanin of 64k leaves must allocate far
  // fewer SNZI pairs than it performs increments, because drained pairs are
  // recycled through the pool.
  snzi::tree_stats stats;
  runtime rt(runtime_config{2, "dyn:1", false, &stats});
  const std::uint64_t n = 1 << 16;
  harness::fanin(rt, n);
  const auto allocs = stats.grow_allocs.load();
  const auto reuses = stats.grow_reuses.load();
  EXPECT_GT(allocs + reuses, n / 2) << "growth should happen on most spawns";
  EXPECT_LT(allocs, n / 8) << "reclamation failed to bound fresh allocations";
  EXPECT_GT(reuses, 0u);
}

TEST(SpaceBounds, ProbabilisticGrowthAllocatesAboutNOverThreshold) {
  snzi::tree_stats stats;
  const std::uint64_t threshold = 256;
  runtime rt(runtime_config{1, "dyn:" + std::to_string(threshold), false, &stats});
  const std::uint64_t n = 1 << 16;
  harness::fanin(rt, n);
  const double expected = static_cast<double>(n) / static_cast<double>(threshold);
  const auto allocs = static_cast<double>(stats.grow_allocs.load());
  EXPECT_LT(allocs, 8 * expected) << "far more growth than p*increments";
  EXPECT_GT(allocs, 0.0);
}

TEST(SpaceBounds, ThresholdZeroNeverAllocates) {
  snzi::tree_stats stats;
  runtime rt(runtime_config{1, "dyn:0", false, &stats});
  harness::fanin(rt, 1 << 12);
  EXPECT_EQ(stats.grow_allocs.load(), 0u);
  EXPECT_EQ(stats.grow_reuses.load(), 0u);
}

// --- theory bounds hold through the full runtime (p = 1) ---

TEST(TheoryBounds, AmortizedArrivesPerIncrementAtMostThree) {
  snzi::tree_stats stats;
  runtime rt(runtime_config{3, "dyn:1", false, &stats});
  harness::fanin(rt, 1 << 14);
  const double increments = static_cast<double>(rt.engine().stats().spawns.load());
  const double arrives = static_cast<double>(stats.arrives.load()) +
                         static_cast<double>(stats.root_arrives.load());
  ASSERT_GT(increments, 0.0);
  // Small slack: the per-run chain/final counters contribute a handful of
  // non-increment arrives to the shared stats block.
  EXPECT_LE(arrives / increments, 3.01)
      << "Corollary 4.7 violated on a real execution";
}

TEST(TheoryBounds, DepartsMatchArrives) {
  snzi::tree_stats stats;
  runtime rt(runtime_config{2, "dyn:1", false, &stats});
  harness::fanin(rt, 1 << 12);
  // Undone helper arrivals are counted inside arrives/departs symmetrically,
  // so totals must balance at quiescence.
  EXPECT_EQ(stats.arrives.load() + stats.root_arrives.load(),
            stats.departs.load() + stats.root_departs.load());
}

}  // namespace
}  // namespace spdag
