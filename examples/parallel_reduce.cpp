// Domain example: data-parallel reduction (sum and max of a large array)
// written against the sp-dag public API.
//
// This is the "parallel loop" pattern the paper's introduction motivates:
// a parallel-for forks a tree of independent range tasks that all
// synchronize at one implicit finish point — i.e., a fanin whose finish
// counter takes the contention. The reduction tree writes partial results
// into cells owned by the combining vertices, so no locks are needed.
//
// Usage: parallel_reduce [-n 4000000] [-proc P] [-grain 4096] [-counter dyn]

#include <cstdio>
#include <cstdint>
#include <numeric>
#include <vector>

#include "dag/engine.hpp"
#include "sched/runtime.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace spdag;

struct range_sum {
  const std::uint64_t* data;
  std::size_t lo, hi;
  std::size_t grain;
  std::uint64_t* out;

  void operator()() const {
    if (hi - lo <= grain) {
      std::uint64_t acc = 0;
      for (std::size_t i = lo; i < hi; ++i) acc += data[i];
      *out = acc;
      return;
    }
    const std::size_t mid = lo + (hi - lo) / 2;
    // Two partial cells + a combiner that sums them into `out`.
    auto* parts = new std::pair<std::uint64_t, std::uint64_t>{0, 0};
    auto* dst = out;
    finish_then(
        [d = data, lo = lo, hi = hi, mid, g = grain, parts] {
          fork2(range_sum{d, lo, mid, g, &parts->first},
                range_sum{d, mid, hi, g, &parts->second});
        },
        [parts, dst] {
          *dst = parts->first + parts->second;
          delete parts;
        });
  }
};

}  // namespace

int main(int argc, char** argv) {
  options opts(argc, argv);
  const std::size_t n = static_cast<std::size_t>(opts.get_int("n", 4'000'000));
  const std::size_t procs = static_cast<std::size_t>(opts.get_int("proc", 0));
  const std::size_t grain = static_cast<std::size_t>(opts.get_int("grain", 4096));
  const std::string counter = opts.get_string("counter", "dyn");

  std::vector<std::uint64_t> data(n);
  xoshiro256 rng(2024);
  for (auto& x : data) x = rng.below(1000);

  wall_timer serial_timer;
  const std::uint64_t expected =
      std::accumulate(data.begin(), data.end(), std::uint64_t{0});
  const double serial_s = serial_timer.elapsed_s();

  runtime rt(runtime_config{procs, counter});
  std::uint64_t result = 0;
  wall_timer par_timer;
  rt.run(range_sum{data.data(), 0, n, grain, &result});
  const double par_s = par_timer.elapsed_s();

  std::printf("sum of %zu elements (grain %zu, %zu workers, counter %s)\n", n,
              grain, rt.workers(), counter.c_str());
  std::printf("serial:   %llu in %.4fs\n",
              static_cast<unsigned long long>(expected), serial_s);
  std::printf("parallel: %llu in %.4fs (%s)\n",
              static_cast<unsigned long long>(result), par_s,
              result == expected ? "correct" : "WRONG");
  std::printf("tasks executed: %llu, steals: %llu\n",
              static_cast<unsigned long long>(
                  rt.engine().stats().executions.load()),
              static_cast<unsigned long long>(rt.sched().totals().steals));
  return result == expected ? 0 : 1;
}
