#include "snzi/root.hpp"

namespace spdag::snzi {

int root_node::arrive() noexcept {
  visit();
  stat_add(stats_, &tree_stats::root_arrives);
  std::uint64_t x = x_.value.load(std::memory_order_acquire);
  std::uint64_t nx;
  bool transitioned;
  for (;;) {
    const std::uint32_t c = count_of(x);
    const std::uint32_t e = epoch_of(x);
    if (c == 0) {
      nx = pack(1, e + 1);  // new positive epoch
      transitioned = true;
    } else {
      nx = pack(c + 1, e);
      transitioned = false;
    }
    if (x_.value.compare_exchange_strong(x, nx, std::memory_order_seq_cst,
                                         std::memory_order_acquire)) {
      break;
    }
    stat_add(stats_, &tree_stats::cas_failures);
  }
  if (transitioned) publish(true, epoch_of(nx));
  return 1;
}

bool root_node::depart() noexcept {
  visit();
  stat_add(stats_, &tree_stats::root_departs);
  std::uint64_t x = x_.value.load(std::memory_order_acquire);
  for (;;) {
    const std::uint32_t c = count_of(x);
    const std::uint32_t e = epoch_of(x);
    assert(c >= 1 && "depart on a root with zero surplus");
    if (x_.value.compare_exchange_strong(x, pack(c - 1, e),
                                         std::memory_order_seq_cst,
                                         std::memory_order_acquire)) {
      if (c >= 2) return false;
      publish(false, e);  // this depart zeroed epoch e
      return true;
    }
    stat_add(stats_, &tree_stats::cas_failures);
  }
}

void root_node::publish(bool flag, std::uint32_t epoch) noexcept {
  const std::uint64_t mine = pack_i(flag, epoch);
  const std::uint64_t my_key = key_of_i(mine);
  std::uint64_t cur = i_.value.load(std::memory_order_acquire);
  while (key_of_i(cur) < my_key) {
    if (i_.value.compare_exchange_weak(cur, mine, std::memory_order_seq_cst,
                                       std::memory_order_acquire)) {
      stat_add(stats_, &tree_stats::indicator_writes);
      return;
    }
    stat_add(stats_, &tree_stats::cas_failures);
  }
  // A publication with a newer (or equal) key is already installed; our
  // state is stale and must not overwrite it.
}

}  // namespace spdag::snzi
