#pragma once
// simple_outset: the single-cell CAS-list out-set.
//
// This is the baseline the out-set work is measured against — the behavior
// future_state had before the subsystem existed, extracted behind the
// interface: one atomic list head that every registering consumer CASes and
// that finalize exchanges for the terminated sentinel. Correct and compact,
// but every concurrent add fights over the same cache line, so under high
// fan-out the per-add CAS retry count grows with the number of concurrent
// consumers (the fan-out analogue of the paper's Fetch & Add baseline).

#include "outset/outset.hpp"

namespace spdag {

class simple_outset final : public outset {
 public:
  bool add(outset_waiter* w) noexcept override;
  // All-or-nothing: the whole pre-linked chain lands with ONE head CAS
  // (returns n), or the sentinel rejects it whole (returns 0).
  std::uint32_t add_group(outset_waiter* head, outset_waiter* tail,
                          std::uint32_t n) noexcept override;
  void finalize(waiter_sink sink, void* ctx) override;
  void reset(waiter_sink sink, void* ctx) override;

 private:
  std::atomic<outset_waiter*> head_{nullptr};
};

}  // namespace spdag
