// Future churn: the allocation stress for the future machinery, and the
// acceptance benchmark for the slab-pool memory subsystem (src/mem/).
//
// Setup: n independent futures per run, each created, completed and
// consumed by its own producer/consumer pair (harness::future_churn) — one
// future_state + out-set + waiter record + four vertices cycled per
// iteration, nothing reused across iterations except through the allocator.
// Sweeps the `alloc:` spec: "malloc" sends every one of those objects to
// the heap, "pool" serves them from per-worker slab magazines.
//
// Metrics: futures/s(/core), plus the pool-registry counters that show
// malloc leaving the profile:
//   upstream/Mfut  — upstream allocator trips per million futures during
//                    the MEASURED iterations (after one warm-up run). The
//                    acceptance claim: ~0 for "pool" while allocs keep
//                    climbing — slab growth plateaus, recycling takes over;
//                    for "malloc" it is the full per-future object count.
//   recycle_rate   — share of allocations served from recycled cells.
//   remote/free    — share of frees landing on a different worker than the
//                    allocating one (the cross-worker hand-off the global
//                    recycle list absorbs).
//
// Scale knobs: -n / SPDAG_N (futures per run, default 1<<15), -proc /
// SPDAG_PROC, -runs / SPDAG_RUNS, -workns / SPDAG_WORKNS (producer busy-work).
// Telemetry: -json <path> / SPDAG_JSON writes one structured record per
// config (the CI perf gate consumes it; see scripts/perf_smoke_gate.py).
// The alloc sweep covers fixed-capacity pools, adaptive magazines
// ("pool:adaptive") and the malloc baseline.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "harness/bench_runner.hpp"
#include "harness/workloads.hpp"
#include "obs/trace.hpp"
#include "sched/runtime.hpp"
#include "util/cli.hpp"
#include "util/histogram.hpp"
#include "util/timer.hpp"
#include "util/topology.hpp"

namespace {

using namespace spdag;

void register_config(const std::string& alloc_spec, std::size_t workers,
                     std::uint64_t n, std::uint64_t work_ns, int runs) {
  const std::string name =
      "churn/" + alloc_spec + "/proc:" + std::to_string(workers);
  benchmark::RegisterBenchmark(name.c_str(), [=](benchmark::State& st) {
    runtime_config cfg{workers, "dyn"};
    cfg.alloc = alloc_spec;
    runtime rt(cfg);
    harness::future_churn(rt, n, work_ns);  // warm-up: slabs, magazines
    obs::tracer::instance().reset();  // summary covers the measured window
    const pool_stats warm = rt.pools().totals();
    std::uint64_t delivered_sum = 0;
    double wall_sum_s = 0;
    for (auto _ : st) {
      wall_timer t;
      delivered_sum += harness::future_churn(rt, n, work_ns);
      const double el = t.elapsed_s();
      st.SetIterationTime(el);
      wall_sum_s += el;
    }
    const pool_stats after = rt.pools().totals();
    const double futures =
        static_cast<double>(harness::churn_futures(n));
    const double allocs = static_cast<double>(after.allocs - warm.allocs);
    const double frees = static_cast<double>(after.frees - warm.frees);
    const double measured_futures =
        futures * static_cast<double>(st.iterations());
    st.counters["futures/s"] = benchmark::Counter(
        futures, benchmark::Counter::kIsIterationInvariantRate);
    st.counters["futures/s/core"] = benchmark::Counter(
        futures / static_cast<double>(workers),
        benchmark::Counter::kIsIterationInvariantRate);
    // The acceptance stat: upstream allocator trips per million futures in
    // steady state. Plateaued slabs => ~0 under "pool".
    st.counters["upstream/Mfut"] =
        measured_futures > 0
            ? static_cast<double>(after.slab_growths - warm.slab_growths) *
                  1e6 / measured_futures
            : 0.0;
    st.counters["recycle_rate"] =
        allocs > 0
            ? static_cast<double>(after.recycles - warm.recycles) / allocs
            : 0.0;
    st.counters["remote/free"] =
        frees > 0
            ? static_cast<double>(after.remote_frees - warm.remote_frees) /
                  frees
            : 0.0;
    if (delivered_sum != st.iterations() * n) {
      st.SkipWithError("exactly-once delivery violated");
    }
    if (harness::json_enabled()) {
      harness::json_record rec;
      rec.name = name;
      rec.spec = alloc_spec;
      rec.proc = workers;
      rec.runs = runs;
      const double iters = static_cast<double>(st.iterations());
      rec.wall_s = iters > 0 ? wall_sum_s / iters : 0.0;
      rec.ops_per_s = rec.wall_s > 0 ? futures / rec.wall_s : 0.0;
      rec.pools = rt.pools().rows();
      rec.pool_totals = after;
      rec.outsets = rt.outsets().totals();
      rec.sched_totals = rt.sched().totals();
      rec.extra.emplace_back("upstream_per_Mfut",
                             st.counters["upstream/Mfut"].value);
      rec.extra.emplace_back("recycle_rate", st.counters["recycle_rate"].value);
      rec.extra.emplace_back("remote_free_rate",
                             st.counters["remote/free"].value);
      rec.extra.emplace_back("mag_grows",
                             static_cast<double>(after.mag_grows));
      rec.extra.emplace_back("mag_shrinks",
                             static_cast<double>(after.mag_shrinks));
      harness::json_add(std::move(rec));
    }
  })
      ->UseManualTime()
      ->Iterations(runs);
}

}  // namespace

int main(int argc, char** argv) {
  options opts(argc, argv);
  const auto common = harness::read_common(opts, /*default_n=*/1 << 15);
  harness::json_open(opts, "future_churn");
  const std::uint64_t work_ns = static_cast<std::uint64_t>(
      opts.get_int("workns", 0));

  // The adaptive-vs-fixed sweep: "pool" pins each magazine at its
  // geometry-derived capacity, "pool:adaptive" lets capacities follow the
  // per-worker refill/flush rate, "malloc" is the upstream baseline the CI
  // perf gate compares "pool" against.
  const std::vector<std::string> algos{"pool", "pool:adaptive", "malloc"};
  for (const auto& algo : algos) {
    for (std::size_t p : harness::worker_sweep(common.max_proc)) {
      register_config(algo, p, common.n, work_ns, common.runs);
    }
  }

  std::printf(
      "# churn: n independent future lifecycles per run, n=%llu, "
      "max_proc=%zu, runs=%d, work_ns=%llu; acceptance: upstream/Mfut ~ 0 "
      "under alloc:pool while futures/s holds\n",
      static_cast<unsigned long long>(common.n), common.max_proc, common.runs,
      static_cast<unsigned long long>(work_ns));
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Per-pool detail for the default-core pool run (rebuilt fresh so the
  // numbers are one clean run's, not the sweep's accumulation), then a
  // quiescent trim to show the release path in the same log. Scoped so the
  // runtime's workers are joined before json_write() — a trace dump reads
  // the event rings and needs full quiescence.
  {
    runtime_config cfg{common.max_proc, "dyn"};
    cfg.alloc = "pool";
    runtime rt(cfg);
    harness::future_churn(rt, common.n, work_ns);
    harness::future_churn(rt, common.n, work_ns);
    harness::print_pool_stats(std::cout, rt.pools().rows());
    const std::size_t released = rt.trim_pools();
    std::printf("# trim_pools between runs: released %zu slabs, retained=%llu\n",
                released,
                static_cast<unsigned long long>(rt.pools().totals().retained()));

    // Complete-to-delivery latency distribution on the same warmed runtime:
    // the tail the mean futures/s rate hides (magazine misses, remote frees).
    {
      latency_histogram hist;
      obs::tracer::instance().reset();
      wall_timer t;
      const std::uint64_t delivered =
          harness::future_churn_timed(rt, common.n, work_ns, &hist);
      const double wall_s = t.elapsed_s();
      const double p50_ms = static_cast<double>(hist.percentile_ns(0.50)) * 1e-6;
      const double p95_ms = static_cast<double>(hist.percentile_ns(0.95)) * 1e-6;
      const double p99_ms = static_cast<double>(hist.percentile_ns(0.99)) * 1e-6;
      std::printf(
          "# churn latency (complete->delivery, n=%llu): p50=%.4fms "
          "p95=%.4fms p99=%.4fms\n",
          static_cast<unsigned long long>(delivered), p50_ms, p95_ms, p99_ms);
      if (harness::json_enabled()) {
        harness::json_record rec;
        rec.name = "churn_latency/pool/proc:" + std::to_string(common.max_proc);
        rec.spec = "pool";
        rec.proc = common.max_proc;
        rec.runs = 1;
        rec.wall_s = wall_s;
        rec.ops_per_s = wall_s > 0 ? static_cast<double>(delivered) / wall_s : 0;
        rec.lat_p50_ms = p50_ms;
        rec.lat_p95_ms = p95_ms;
        rec.lat_p99_ms = p99_ms;
        rec.pool_totals = rt.pools().totals();
        rec.extra.emplace_back("delivered", static_cast<double>(delivered));
        harness::json_add(std::move(rec));
      }
    }
  }
  return harness::json_write();
}
