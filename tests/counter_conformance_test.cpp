// Parameterized conformance suite: every dep_counter implementation must
// satisfy the same observable contract, checked against the same script.
// Instantiated over counter specs, including the mutex oracle.

#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "incounter/factory.hpp"

namespace spdag {
namespace {

class CounterConformance : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override { factory_ = make_counter_factory(GetParam()); }
  std::unique_ptr<counter_factory> factory_;
};

TEST_P(CounterConformance, FreshZeroCounterIsZero) {
  dep_counter* c = factory_->acquire(0);
  EXPECT_TRUE(c->is_zero());
  factory_->release(c);
}

TEST_P(CounterConformance, InitialSurplusOneIsNonZero) {
  dep_counter* c = factory_->acquire(1);
  EXPECT_FALSE(c->is_zero());
  EXPECT_TRUE(c->depart(c->root_token()));
  EXPECT_TRUE(c->is_zero());
  factory_->release(c);
}

TEST_P(CounterConformance, ArriveThenDepartRoundTrip) {
  dep_counter* c = factory_->acquire(1);
  const arrive_result r = c->arrive(c->root_token(), true);
  EXPECT_FALSE(c->is_zero());
  EXPECT_FALSE(c->depart(r.dec)) << "one obligation still outstanding";
  EXPECT_TRUE(c->depart(c->root_token()));
  factory_->release(c);
}

TEST_P(CounterConformance, DeepSpawnChain) {
  dep_counter* c = factory_->acquire(1);
  std::vector<token> decs{c->root_token()};
  token inc = c->root_token();
  for (int i = 0; i < 64; ++i) {
    const arrive_result r = c->arrive(inc, (i & 1) == 0);
    decs.push_back(r.dec);
    inc = ((i & 1) == 0) ? r.inc_left : r.inc_right;
  }
  for (std::size_t i = decs.size(); i-- > 1;) {
    EXPECT_FALSE(c->depart(decs[i])) << "premature zero at obligation " << i;
  }
  EXPECT_TRUE(c->depart(decs[0]));
  EXPECT_TRUE(c->is_zero());
  factory_->release(c);
}

TEST_P(CounterConformance, WideFanIn) {
  dep_counter* c = factory_->acquire(1);
  // Simulated fanin: spawn along the frontier like the dag does.
  struct live { token inc; token dec; bool left; };
  std::vector<live> frontier{{c->root_token(), c->root_token(), true}};
  for (int gen = 0; gen < 7; ++gen) {
    std::vector<live> next;
    for (const live& v : frontier) {
      const arrive_result r = c->arrive(v.inc, v.left);
      next.push_back({r.inc_left, v.dec, true});
      next.push_back({r.inc_right, r.dec, false});
    }
    frontier = std::move(next);
  }
  int zero_reports = 0;
  for (const live& v : frontier) {
    if (c->depart(v.dec)) ++zero_reports;
  }
  EXPECT_EQ(zero_reports, 1) << "exactly one depart must report zero";
  EXPECT_TRUE(c->is_zero());
  factory_->release(c);
}

TEST_P(CounterConformance, BatchAddRoundTrip) {
  // add(k) must carry exactly k obligations: k departs on the returned token
  // leave the root obligation pending; only the root depart reports zero.
  for (const std::uint32_t k : {1u, 2u, 5u, 32u, 100u}) {
    dep_counter* c = factory_->acquire(1);
    const arrive_result r = c->add(c->root_token(), true, k);
    for (std::uint32_t i = 0; i < k; ++i) {
      EXPECT_FALSE(c->depart(r.dec)) << "premature zero, k=" << k << " i=" << i;
    }
    EXPECT_FALSE(c->is_zero());
    EXPECT_TRUE(c->depart(c->root_token())) << "k=" << k;
    EXPECT_TRUE(c->is_zero());
    factory_->release(c);
  }
}

TEST_P(CounterConformance, BatchAddMatchesKArrives) {
  // Interleave batched and single increments from the handles a batch
  // returns: the shared inc handles must behave like any arrive handle.
  dep_counter* c = factory_->acquire(1);
  const arrive_result batch = c->add(c->root_token(), true, 4);
  std::vector<token> decs;
  token inc = batch.inc_left;
  for (int i = 0; i < 8; ++i) {
    const arrive_result r = c->arrive(inc, (i & 1) == 0);
    decs.push_back(r.dec);
    inc = ((i & 1) == 0) ? r.inc_left : r.inc_right;
  }
  const arrive_result nested = c->add(batch.inc_right, false, 3);
  for (const token d : decs) EXPECT_FALSE(c->depart(d));
  for (int i = 0; i < 3; ++i) EXPECT_FALSE(c->depart(nested.dec));
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(c->depart(batch.dec));
  EXPECT_TRUE(c->depart(c->root_token()));
  EXPECT_TRUE(c->is_zero());
  factory_->release(c);
}

TEST_P(CounterConformance, BatchAddConcurrentDecrementers) {
  // The k surplus units of one add(k) resolved by k racing threads: no
  // thread may observe zero while the root obligation is pending, and the
  // counter must read exactly zero after the root departs.
  for (int round = 0; round < 20; ++round) {
    dep_counter* c = factory_->acquire(1);
    constexpr std::uint32_t kUnits = 8;
    const arrive_result r = c->add(c->root_token(), true, kUnits);
    std::atomic<int> zeros{0};
    std::vector<std::thread> threads;
    for (std::uint32_t t = 0; t < kUnits; ++t) {
      threads.emplace_back([c, &zeros, d = r.dec] {
        if (c->depart(d)) zeros.fetch_add(1);
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(zeros.load(), 0) << "root obligation still pending";
    EXPECT_TRUE(c->depart(c->root_token()));
    EXPECT_TRUE(c->is_zero());
    factory_->release(c);
  }
}

TEST_P(CounterConformance, PoolRecyclingYieldsCleanCounters) {
  dep_counter* a = factory_->acquire(1);
  const arrive_result r = a->arrive(a->root_token(), true);
  a->depart(r.dec);
  a->depart(a->root_token());
  factory_->release(a);
  dep_counter* b = factory_->acquire(1);
  EXPECT_FALSE(b->is_zero());
  EXPECT_TRUE(b->depart(b->root_token()));
  factory_->release(b);
  EXPECT_LE(factory_->created(), 2u) << "release must actually pool";
}

TEST_P(CounterConformance, ConcurrentSpawnersAndSignalers) {
  // Each thread builds its own spawn chain from a private handle, then
  // resolves its obligations; the root obligation resolves last.
  for (int round = 0; round < 20; ++round) {
    dep_counter* c = factory_->acquire(1);
    constexpr int kThreads = 4;
    constexpr int kDepth = 64;
    // Seed one obligation + handle per thread from the main thread.
    std::vector<arrive_result> seeds;
    token inc = c->root_token();
    for (int t = 0; t < kThreads; ++t) {
      const arrive_result r = c->arrive(inc, (t & 1) == 0);
      seeds.push_back(r);
      inc = r.inc_left;
    }
    std::vector<std::thread> threads;
    std::atomic<int> zeros{0};
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([c, &zeros, seed = seeds[static_cast<size_t>(t)]] {
        std::vector<token> decs{seed.dec};
        token my_inc = seed.inc_right;
        for (int i = 0; i < kDepth; ++i) {
          const arrive_result r = c->arrive(my_inc, (i & 1) == 0);
          decs.push_back(r.dec);
          my_inc = r.inc_right;
        }
        for (auto it = decs.rbegin(); it != decs.rend(); ++it) {
          if (c->depart(*it)) zeros.fetch_add(1);
        }
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(zeros.load(), 0) << "root obligation still pending";
    EXPECT_FALSE(c->is_zero());
    EXPECT_TRUE(c->depart(c->root_token()));
    EXPECT_TRUE(c->is_zero());
    factory_->release(c);
  }
}

INSTANTIATE_TEST_SUITE_P(AllCounters, CounterConformance,
                         ::testing::Values("faa", "fc", "locked", "snzi:1",
                                           "snzi:2", "snzi:4", "dyn:1",
                                           "dyn:4", "dyn:100"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& ch : name) {
                             if (ch == ':') ch = '_';
                           }
                           return name;
                         });

TEST(CounterFactory, ParsesSpecs) {
  EXPECT_EQ(make_counter_factory("faa")->name(), "faa");
  EXPECT_EQ(make_counter_factory("fc")->name(), "fc");
  EXPECT_EQ(make_counter_factory("snzi:3")->name(), "snzi:3");
  EXPECT_EQ(make_counter_factory("dyn:77")->name(), "dyn:77");
  EXPECT_EQ(make_counter_factory("locked")->name(), "locked");
  EXPECT_THROW(make_counter_factory("bogus"), std::invalid_argument);
  // Combining fronts the flat cell only: the tree specs take numeric
  // fields, so ":fc" must not parse onto them.
  EXPECT_THROW(make_counter_factory("snzi:fc"), std::invalid_argument);
  EXPECT_THROW(make_counter_factory("dyn:fc"), std::invalid_argument);
  EXPECT_THROW(make_counter_factory("fc:fc"), std::invalid_argument);
}

TEST(CounterFactory, DefaultDynThresholdFollowsPaperFormula) {
  auto f = make_counter_factory("dyn");
  auto* dyn = dynamic_cast<incounter_factory*>(f.get());
  ASSERT_NE(dyn, nullptr);
  EXPECT_EQ(dyn->config().grow_threshold % 25, 0u)
      << "default threshold should be 25 * cores (paper section 5)";
}

TEST(CounterFactory, DisplayNamesMatchPaperLegend) {
  EXPECT_EQ(make_counter_factory("faa")->display_name(), "Fetch & Add");
  EXPECT_EQ(make_counter_factory("fc")->display_name(), "Flat combining");
  EXPECT_EQ(make_counter_factory("snzi:4")->display_name(), "SNZI depth=4");
  EXPECT_EQ(make_counter_factory("dyn:1")->display_name(), "in-counter");
}

}  // namespace
}  // namespace spdag
