#pragma once
// Epoch-based reclamation: the one protocol behind every "stale read" in
// this runtime.
//
// Several structures here let a lagging thread dereference memory that was
// logically freed an instant ago — the slab pools' tagged-Treiber recycle
// list, SNZI pair reuse, out-set node recycling. Each used to carry its own
// "benign stale read" argument, and all of them shared one load-bearing
// assumption: freed cells stay MAPPED, because slabs were only returned to
// the OS at full quiescence (object_pool::trim()). That assumption is what
// this layer replaces with a stated, testable protocol, so slabs can be
// reclaimed while workers are live and a resident service can trim under
// sustained traffic.
//
// The protocol (classic 3-epoch EBR):
//   * A global epoch E only ever increments.
//   * A thread that may hold stale pointers into pool memory is PINNED: its
//     per-slot record (keyed by mem::thread_slot(), the same dense id the
//     slab magazines use) publishes the epoch it entered under.
//   * E advances from e to e+1 only when every pinned record has published
//     e — so a pinned thread lags the global epoch by at most one.
//   * Memory retired at epoch r is physically freed only once E >= r + 2.
//     A reader pinned when the retire happened holds the global at <= r+1,
//     and any still-pinned record must republish (refresh) before E can
//     move past it — and republishing is only legal at a point where the
//     thread holds no stale pointers. Two advances therefore prove every
//     reader that could have seen the retired memory has passed such a
//     point.
//
// Who pins:
//   * Scheduler workers pin for their whole work loop and refresh() at the
//     top of each iteration (no pointer survives an iteration boundary);
//     they unpin across parks so sleepers never stall reclamation.
//   * The dag_service dispatcher pins its loop the same way.
//   * Pool-internal: slab_cache pins around global-recycle-list pops (the
//     only place a non-worker client thread dereferences recycled cells).
//   * pin()/unpin() nest (per-thread depth); a thread without a slot pins
//     anonymously, which conservatively blocks advancement while it holds.
//
// advance/tick cadence: refresh() is two relaxed loads when nothing moved.
// tick() = refresh + (when limbo is non-empty, every 64th call) one
// try_advance() + reclaim() sweep; schedulers call it at their natural
// communication points (communicate() in private-deque, idle transitions in
// ws), so advancement needs no dedicated thread.
//
// Compile-time kill switch: -DSPDAG_EPOCH=OFF (SPDAG_EPOCH_ENABLED=0)
// compiles every hook below to nothing, trim_live() refuses, and the
// quiescent-only trim path is all that remains — the A/B baseline the CI
// epoch-compare gate measures against (mirrors SPDAG_TRACE).

#include <cstddef>
#include <cstdint>

#ifndef SPDAG_EPOCH_ENABLED
#define SPDAG_EPOCH_ENABLED 1
#endif

namespace spdag::mem::epoch {

// True when the subsystem is compiled in at all.
constexpr bool enabled() noexcept { return SPDAG_EPOCH_ENABLED != 0; }

namespace detail {
void pin_slow() noexcept;
void unpin_slow() noexcept;
void refresh_slow() noexcept;
void tick_slow() noexcept;
bool pinned_slow() noexcept;
}  // namespace detail

// Enter a pinned region (reentrant: nested pins are counted, the outermost
// pair publishes/retracts the record). While pinned, recycled pool cells
// this thread can still reach are guaranteed mapped.
inline void pin() noexcept {
#if SPDAG_EPOCH_ENABLED
  detail::pin_slow();
#endif
}

inline void unpin() noexcept {
#if SPDAG_EPOCH_ENABLED
  detail::unpin_slow();
#endif
}

// Republish the current global epoch on this thread's record. ONLY legal at
// a point where the thread holds no stale pool pointers (e.g. the top of a
// worker-loop iteration); that is exactly the proof obligation the 2-epoch
// delay cashes in. Two relaxed loads when the global epoch has not moved.
inline void refresh() noexcept {
#if SPDAG_EPOCH_ENABLED
  detail::refresh_slow();
#endif
}

// refresh() + occasionally (gated, only while limbo is non-empty) one
// advance/reclaim sweep. Call at scheduler communication points.
inline void tick() noexcept {
#if SPDAG_EPOCH_ENABLED
  detail::tick_slow();
#endif
}

// Whether the calling thread currently holds a pin (tests/diagnostics).
inline bool pinned() noexcept {
#if SPDAG_EPOCH_ENABLED
  return detail::pinned_slow();
#else
  return false;
#endif
}

// Current global epoch.
std::uint64_t current() noexcept;

// Attempt one advance. Fails (harmlessly) when another thread is scanning,
// when any pinned record lags the current epoch, or when an anonymous
// (slotless) pin is held. Also republishes the epoch-lag gauge.
bool try_advance() noexcept;

// Deferred destruction: fn(a, b) runs once the global epoch has advanced
// twice past the epoch current at the time of this call. The callback must
// be noexcept and must not itself call retire()/reclaim(). With the
// subsystem compiled out, fn runs immediately (callers are expected to gate
// on enabled() and only retire memory no longer reachable).
using reclaim_fn = void (*)(void* a, void* b) noexcept;
void retire(reclaim_fn fn, void* a, void* b) noexcept;

// Run every limbo callback whose retire epoch is >= 2 behind the current
// global epoch. Returns how many ran. Any thread; serialized internally.
std::size_t reclaim() noexcept;

// Teardown flush: run every limbo callback whose `a` matches, regardless of
// epoch. Quiescent-only with respect to that owner's readers — pool
// destructors call this first, under the pool's own lifetime contract.
std::size_t flush_owner(void* a) noexcept;

// Limbo entries not yet reclaimed / how far the oldest pinned record lags
// the global epoch (0 when nothing is pinned). Diagnostics; exact only at
// quiescence.
std::size_t limbo_size() noexcept;
std::uint64_t lag() noexcept;

// RAII pin for scoped use (pool internals, tests).
class pin_guard {
 public:
  pin_guard() noexcept { pin(); }
  ~pin_guard() { unpin(); }
  pin_guard(const pin_guard&) = delete;
  pin_guard& operator=(const pin_guard&) = delete;
};

}  // namespace spdag::mem::epoch
