#pragma once
// timed_factory: a decorator that wraps any counter_factory and records the
// wall-clock latency of every arrive and depart into shared histograms.
//
// This is how the latency-distribution ablation observes contention without
// changing the system under test: the dag engine sees an ordinary
// dep_counter; the decorator adds two steady_clock reads around each
// operation (~tens of ns, identical across algorithms, so *differences*
// between algorithms are preserved).

#include <chrono>
#include <memory>

#include "counter/dep_counter.hpp"
#include "incounter/factory.hpp"
#include "util/histogram.hpp"

namespace spdag {

class timed_counter final : public dep_counter {
 public:
  timed_counter(std::unique_ptr<dep_counter> inner, latency_histogram* arrives,
                latency_histogram* departs)
      : inner_(std::move(inner)), arrives_(arrives), departs_(departs) {}

  arrive_result arrive(token inc_hint, bool from_left) override {
    const auto t0 = std::chrono::steady_clock::now();
    const arrive_result r = inner_->arrive(inc_hint, from_left);
    arrives_->record(elapsed_ns(t0));
    return r;
  }

  arrive_result add(token inc_hint, bool from_left, std::uint32_t k) override {
    // One histogram sample per batched operation (it IS one operation on the
    // wrapped counter) — exactly what the amortization claim is about.
    const auto t0 = std::chrono::steady_clock::now();
    const arrive_result r = inner_->add(inc_hint, from_left, k);
    arrives_->record(elapsed_ns(t0));
    return r;
  }

  bool depart(token dec) override {
    const auto t0 = std::chrono::steady_clock::now();
    const bool zero = inner_->depart(dec);
    departs_->record(elapsed_ns(t0));
    return zero;
  }

  bool is_zero() const override { return inner_->is_zero(); }
  token root_token() override { return inner_->root_token(); }
  bool uses_tokens() const override { return inner_->uses_tokens(); }
  void abandon(token inc) override { inner_->abandon(inc); }
  void reset(std::uint32_t n) override { inner_->reset(n); }

 private:
  static std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point t0) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
  }

  std::unique_ptr<dep_counter> inner_;
  latency_histogram* arrives_;
  latency_histogram* departs_;
};

class timed_factory final : public counter_factory {
 public:
  timed_factory(std::unique_ptr<counter_factory> inner,
                latency_histogram* arrives, latency_histogram* departs)
      : inner_(std::move(inner)), arrives_(arrives), departs_(departs) {}

  std::string name() const override { return inner_->name() + "+timed"; }
  std::string display_name() const override { return inner_->display_name(); }

 protected:
  std::unique_ptr<dep_counter> create() override {
    return std::make_unique<timed_counter>(inner_->make_unpooled(), arrives_,
                                           departs_);
  }
  // The wrapper cell is banked; the wrapped counter stays an unpooled
  // heap object owned by the wrapper (timers must not skew the inner
  // algorithm's own allocation path).
  dep_counter* create_pooled(object_bank<dep_counter>& bank) override {
    return bank.emplace<timed_counter>(inner_->make_unpooled(), arrives_,
                                       departs_);
  }

 private:
  std::unique_ptr<counter_factory> inner_;
  latency_histogram* arrives_;
  latency_histogram* departs_;
};

}  // namespace spdag
