#pragma once
// Run statistics and paper-style result tables.
//
// The paper reports every data point as the average of repeated runs; the
// accumulator here tracks mean/min/max/stddev, and `result_table` prints the
// rows in both a human-readable grid and CSV (the reproducible artifact).

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace spdag {

// Streaming accumulator (Welford) for repeated benchmark runs.
class run_stats {
 public:
  void add(double x) noexcept;

  std::uint64_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ == 0 ? 0.0 : mean_; }
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double variance() const noexcept;
  double stddev() const noexcept;
  // Relative standard deviation, as a fraction of the mean.
  double rsd() const noexcept;

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// A column-oriented results table: one row per measurement configuration.
class result_table {
 public:
  explicit result_table(std::vector<std::string> columns);

  void add_row(std::vector<std::string> cells);
  // Convenience: formats doubles with fixed precision.
  static std::string num(double v, int precision = 3);

  std::size_t rows() const noexcept { return rows_.size(); }

  // Pretty grid for the console.
  void print(std::ostream& os) const;
  // CSV for downstream plotting.
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace spdag
