#pragma once
// Structured futures on the sp-dag — the extension direction the paper's
// conclusion names ("more general, but still restricted, models of
// concurrency, such as those based on futures").
//
// A future here is STRUCTURED: its producer runs as an ordinary vertex under
// the enclosing finish, so the series-parallel discipline (and with it the
// in-counter's O(1) contention analysis) is preserved; the only new edge
// kind is producer -> consumer, represented by deferred scheduling rather
// than by a counter increment:
//
//   * fork2_future(p, c)  — parallel composition with a value: the left
//     child computes p() and completes the future, the right child runs
//     c(future) immediately. Must be the last dag action of the body.
//   * future_then(f, fn)  — schedules fn(value) as a new vertex under the
//     current finish; it runs once the future completes (immediately if it
//     already has). Must be the last dag action of the body.
//   * future<T>::ready()/get() — non-blocking inspection; get() requires
//     ready() (a consumer scheduled via future_then always sees it ready).
//
// Waiter management is delegated to a pluggable out-set (src/outset/) — the
// fan-out dual of the in-counter. The completion/registration race is
// resolved inside the out-set with per-node terminated sentinels: add()
// returns false exactly when finalize already ran, in which case the
// registrant schedules its own consumer. Which implementation a future uses
// comes from its engine's outset factory (runtime_config::outset, specs
// "outset:simple" | "outset:tree[:fanout[:threshold[:scatter]]]").
// Completion under an engine uses the out-set's PARALLEL finalize: subtree
// drains are enqueued on the engine's executor as outset_drain_tasks so
// idle workers broadcast alongside the completing one; each task holds a
// pinned reference on the state, so the out-set is never reset under a
// still-running drain.
//
// Allocation: a future_state is one cell from the engine's pool registry
// ("future_state" pool, one per value-type size), reference-counted
// intrusively — fork2_future's hot path performs zero malloc/free under
// `alloc:pool` once the slabs are warm. Copying a future is cheap and
// shares the state (an atomic increment, shared_ptr semantics without the
// separate control block); the last copy to die destroys the state and
// hands the cell back to its pool.

#include <atomic>
#include <cassert>
#include <utility>

#include "dag/engine.hpp"
#include "mem/registry.hpp"
#include "obs/trace.hpp"
#include "outset/factory.hpp"

namespace spdag {

namespace detail {

template <typename T>
class future_state {
 public:
  future_state(outset_factory& outsets, object_pool& home)
      : outsets_(&outsets), waiters_(outsets.acquire()), home_(&home) {}

  ~future_state() {
    // release() scrubs registrations left behind by programs that abandoned
    // the future (its producer must still have run, or the enclosing finish
    // could never have fired) and re-pools the out-set.
    outsets_->release(waiters_);
    if (ready()) reinterpret_cast<T*>(&storage_)->~T();
  }

  bool ready() const noexcept {
    return ready_.load(std::memory_order_acquire);
  }

  const T& value() const noexcept {
    assert(ready() && "future read before completion");
    return *reinterpret_cast<const T*>(&storage_);
  }

  void complete(T v, dag_engine* engine) {
    assert(!ready() && "future completed twice");
    ::new (&storage_) T(std::move(v));
    completion_engine_ = engine;  // fallback for engine-less registrations
    // Publish the value BEFORE finalizing: every delivery path (the sink
    // below, or a registrant whose add lost to the finalize) synchronizes
    // with this store through the out-set's sentinel or the executor queue.
    ready_.store(true, std::memory_order_release);
    obs::span_guard sg(obs::sp_finalize);
    if (engine != nullptr) {
      // Parallel finalize: deep out-set subtrees become drain tasks on the
      // engine's executor, so idle workers broadcast alongside this thread.
      waiters_->finalize(&deliver, this, &offload_drain, this);
    } else {
      // No engine to schedule stolen drains on — walk serially.
      waiters_->finalize(&deliver, this);
    }
  }

  // Registers `consumer` to be enqueued on completion. If the future
  // completed concurrently (or earlier), schedules it here instead.
  // `engine` must be non-null: the bypass and lost-race paths below schedule
  // on it directly (the completion-engine fallback in deliver() only covers
  // waiters that reached the out-set some other way).
  void register_waiter(vertex* consumer, dag_engine* engine) {
    assert(engine != nullptr && "registration requires an engine");
    if (ready()) {
      engine->add(consumer);
      return;
    }
    outset_waiter* w = outsets_->acquire_waiter(consumer, engine);
    if (!waiters_->add(w)) {
      // The producer finalized between our check and the add; the value is
      // published, so schedule the consumer from here — exactly once.
      outsets_->release_waiter(w);
      engine->add(consumer);
    }
  }

  // Grouped registration: registers n consumers with ONE out-set operation
  // per 32-wide chunk (add_group splices a pre-linked waiter chain with a
  // single CAS on structured out-sets) — the fan-out dual of spawn_batch's
  // one batched increment. Any suffix the out-set rejects (the producer
  // finalized first; the value is published) is scheduled directly here,
  // exactly once per consumer.
  void register_waiter_group(vertex* const* consumers, std::uint32_t n,
                             dag_engine* engine) {
    assert(engine != nullptr && "registration requires an engine");
    std::uint32_t i = 0;
    if (!ready()) {
      while (i < n) {
        const std::uint32_t m = (n - i) < 32u ? (n - i) : 32u;
        outset_waiter* ws[32];
        for (std::uint32_t j = 0; j < m; ++j) {
          ws[j] = outsets_->acquire_waiter(consumers[i + j], engine);
        }
        for (std::uint32_t j = 0; j + 1 < m; ++j) {
          ws[j]->next.store(ws[j + 1], std::memory_order_relaxed);
        }
        const std::uint32_t captured = waiters_->add_group(ws[0], ws[m - 1], m);
        for (std::uint32_t j = captured; j < m; ++j) {
          outsets_->release_waiter(ws[j]);
        }
        i += captured;
        if (captured < m) break;  // finalized: deliver the rest below
      }
    }
    for (; i < n; ++i) engine->add(consumers[i]);
  }

  // --- intrusive reference count (managed by future<T>) ---
  void add_ref() noexcept { refs_.fetch_add(1, std::memory_order_relaxed); }
  // True when the caller dropped the last reference and must destroy.
  bool drop_ref() noexcept {
    return refs_.fetch_sub(1, std::memory_order_acq_rel) == 1;
  }
  object_pool& home() noexcept { return *home_; }

 private:
  static void deliver(void* ctx, outset_waiter* w) {
    auto* self = static_cast<future_state*>(ctx);
    vertex* consumer = w->consumer;
    dag_engine* engine =
        w->engine != nullptr ? w->engine : self->completion_engine_;
    self->outsets_->release_waiter(w);
    engine->add(consumer);
  }

  // drain_spawner for the parallel finalize: pin this state across the
  // asynchronous drain (the task may run after the producer's own future
  // copy died; the pin keeps the out-set un-reset and the sink ctx valid
  // until the last drain's on_done), then hand the task to the engine.
  static void offload_drain(void* ctx, outset_drain_task* t) {
    auto* self = static_cast<future_state*>(ctx);
    self->add_ref();
    t->on_done = &drain_finished;
    t->on_done_ctx = self;
    self->completion_engine_->enqueue_drain(t);
  }

  static void drain_finished(void* ctx) {
    auto* self = static_cast<future_state*>(ctx);
    if (self->drop_ref()) {
      // Same epilogue as future<T>::release(): the last pin to go destroys
      // the state and returns its cell.
      object_pool& home = self->home();
      pool_delete(home, self);
    }
  }

  outset_factory* outsets_;
  outset* waiters_;
  object_pool* home_;  // the pool cell this state occupies
  dag_engine* completion_engine_ = nullptr;
  std::atomic<std::uint32_t> refs_{1};
  std::atomic<bool> ready_{false};
  alignas(T) unsigned char storage_[sizeof(T)];
};

}  // namespace detail

// A handle to one pooled future_state. Copies SHARE the state (intrusive
// refcount): passing a future by value into vertex bodies — what fork2_future
// and future_then do — is an atomic increment, and the last copy to die
// returns the state's cell to its pool. There is no separate share() call;
// copy IS share, as with the shared_ptr this replaces.
//
// Lifetime: a future's state borrows its out-set factory AND its pool cell
// from the engine it was made under, so every copy of a future must be
// dropped before its runtime is destroyed — which structured usage
// guarantees, since consumers are gated under the enclosing finish. Only
// futures made outside any engine (default factory + default registry) may
// outlive runtimes.
template <typename T>
class future {
 public:
  future() = default;

  future(const future& o) noexcept : state_(o.state_) {
    if (state_ != nullptr) state_->add_ref();
  }
  future(future&& o) noexcept : state_(o.state_) { o.state_ = nullptr; }
  future& operator=(const future& o) noexcept {
    detail::future_state<T>* s = o.state_;  // read first: o may alias *this
    if (s != nullptr) s->add_ref();
    release();
    state_ = s;
    return *this;
  }
  future& operator=(future&& o) noexcept {
    if (this != &o) {
      release();
      state_ = o.state_;
      o.state_ = nullptr;
    }
    return *this;
  }
  ~future() { release(); }

  bool valid() const noexcept { return state_ != nullptr; }
  bool ready() const noexcept { return state_ != nullptr && state_->ready(); }

  // The produced value; requires ready().
  const T& get() const noexcept {
    assert(valid());
    return state_->value();
  }

  // A fresh future backed by the current engine's out-set factory and pool
  // registry (the state-pool lookup is memoized on the engine — no registry
  // lock on the fork2_future hot path), or by the process-wide defaults
  // outside of any engine.
  static future make() {
    dag_engine* eng = dag_engine::current_engine();
    if (eng != nullptr) {
      return make_in(eng->outsets(), eng->state_pool(state_bytes, state_align));
    }
    return make(default_outset_factory());
  }

  // A fresh future on an explicit factory: its whole footprint (state cell
  // + out-set nodes + waiter records) comes from THAT factory's registry,
  // even when called inside an engine — so a future built on a long-lived
  // factory may outlive the current runtime.
  static future make(outset_factory& outsets) {
    return make_in(outsets, outsets.pools().get("future_state", state_bytes,
                                                state_align));
  }

  void complete(T v, dag_engine* engine) const {
    state_->complete(std::move(v), engine);
  }
  void register_waiter(vertex* consumer, dag_engine* engine) const {
    state_->register_waiter(consumer, engine);
  }
  void register_waiter_group(vertex* const* consumers, std::uint32_t n,
                             dag_engine* engine) const {
    state_->register_waiter_group(consumers, n, engine);
  }

 private:
  static constexpr std::size_t state_bytes = sizeof(detail::future_state<T>);
  static constexpr std::size_t state_align = alignof(detail::future_state<T>);

  static future make_in(outset_factory& outsets, object_pool& home) {
    future f;
    f.state_ = pool_new<detail::future_state<T>>(home, outsets, home);
    return f;
  }

  void release() noexcept {
    if (state_ != nullptr && state_->drop_ref()) {
      object_pool& home = state_->home();
      pool_delete(home, state_);
    }
    state_ = nullptr;
  }

  detail::future_state<T>* state_ = nullptr;
};

// Parallel composition with a value. Left child: computes producer() and
// completes the future. Right child: runs consumer(future) immediately
// (typically registering continuations with future_then). Must be the last
// dag action of the current body.
template <typename T, typename Producer, typename Consumer>
void fork2_future(Producer producer, Consumer consumer) {
  future<T> fut = future<T>::make();
  fork2(
      [producer = std::move(producer), fut]() mutable {
        fut.complete(producer(), dag_engine::current_engine());
      },
      [consumer = std::move(consumer), fut]() mutable { consumer(fut); });
}

// Schedules fn(value) as a fresh vertex under the current finish, gated on
// the future's completion. Must be the last dag action of the current body.
template <typename T, typename F>
void future_then(future<T> fut, F fn) {
  dag_engine* eng = dag_engine::current_engine();
  vertex* u = dag_engine::current_vertex();
  auto [consumer, filler] = eng->spawn(u);
  consumer->body = [fut, fn = std::move(fn)]() mutable { fn(fut.get()); };
  // The spawn's second vertex has no work; it just resolves its obligation.
  eng->add(filler);
  fut.register_waiter(consumer, eng);
}

// Batched future_then: schedules gen(i)(value) for i in [0, k) as k fresh
// vertices under the current finish, all gated on the one future — ONE
// batched counter increment (spawn_batch_vertices; no filler vertex needed,
// the current vertex's obligation covers the k-th child) and one grouped
// out-set registration per 32 consumers. Must be the last dag action of the
// current body. gen runs synchronously for each i and returns the closure
// that will receive the completed value.
template <typename T, typename Gen>
void future_then_group(future<T> fut, std::uint32_t k, Gen gen) {
  assert(k >= 1 && "future_then_group needs at least one consumer");
  dag_engine* eng = dag_engine::current_engine();
  vertex* u = dag_engine::current_vertex();
  vertex* local[32];
  std::vector<vertex*> heap;
  vertex** vs = local;
  if (k > 32) {
    heap.resize(k);
    vs = heap.data();
  }
  eng->spawn_batch_vertices(u, k, vs);
  for (std::uint32_t i = 0; i < k; ++i) {
    vs[i]->body = [fut, fn = gen(i)]() mutable { fn(fut.get()); };
  }
  // Deferred scheduling: the consumers are NOT add()ed here — delivery (or
  // the already-ready bypass) inside the grouped registration schedules them.
  fut.register_waiter_group(vs, k, eng);
}

}  // namespace spdag
