#include "incounter/factory.hpp"

#include <stdexcept>

#include "counter/faa_counter.hpp"
#include "counter/fixed_snzi_counter.hpp"
#include "counter/locked_counter.hpp"
#include "util/topology.hpp"

namespace spdag {

dep_counter* counter_factory::acquire(std::uint32_t initial) {
  dep_counter* c = bank_.pop();
  if (c == nullptr) c = create_pooled(bank_);
  c->reset(initial);
  return c;
}

std::unique_ptr<dep_counter> faa_factory::create() {
  return std::make_unique<faa_counter>();
}

dep_counter* faa_factory::create_pooled(object_bank<dep_counter>& bank) {
  return bank.emplace<faa_counter>();
}

std::unique_ptr<dep_counter> fc_factory::create() {
  return std::make_unique<fc_counter>();
}

dep_counter* fc_factory::create_pooled(object_bank<dep_counter>& bank) {
  return bank.emplace<fc_counter>();
}

counter_combining_totals fc_factory::combining_totals() const {
  counter_combining_totals t;
  // Every cell in this bank is an fc_counter (the only type this factory
  // ever emplaces).
  bank().for_each([&t](const dep_counter& c) {
    t += static_cast<const fc_counter&>(c).combining_totals();
  });
  return t;
}

std::unique_ptr<dep_counter> fixed_snzi_factory::create() {
  return std::make_unique<fixed_snzi_counter>(depth_, 0, stats_, pair_pool_);
}

dep_counter* fixed_snzi_factory::create_pooled(object_bank<dep_counter>& bank) {
  return bank.emplace<fixed_snzi_counter>(depth_, 0u, stats_, pair_pool_);
}

std::unique_ptr<dep_counter> incounter_factory::create() {
  incounter_config cfg = cfg_;
  cfg.pair_pool = pair_pool_;
  return std::make_unique<incounter>(0, cfg);
}

dep_counter* incounter_factory::create_pooled(object_bank<dep_counter>& bank) {
  incounter_config cfg = cfg_;
  cfg.pair_pool = pair_pool_;
  return bank.emplace<incounter>(0u, cfg);
}

std::unique_ptr<dep_counter> locked_factory::create() {
  return std::make_unique<locked_counter>();
}

dep_counter* locked_factory::create_pooled(object_bank<dep_counter>& bank) {
  return bank.emplace<locked_counter>();
}

std::unique_ptr<counter_factory> make_counter_factory(const std::string& spec,
                                                      snzi::tree_stats* stats,
                                                      pool_registry* pools) {
  if (spec == "faa") return std::make_unique<faa_factory>();
  if (spec == "fc") return std::make_unique<fc_factory>(pools);
  if (spec == "locked") return std::make_unique<locked_factory>();
  if (spec.rfind("snzi:", 0) == 0) {
    const int depth = std::stoi(spec.substr(5));
    return std::make_unique<fixed_snzi_factory>(depth, stats, pools);
  }
  if (spec == "dyn" || spec.rfind("dyn:", 0) == 0) {
    incounter_config cfg;
    cfg.stats = stats;
    if (spec.size() > 4) {
      std::string rest = spec.substr(4);
      const auto colon = rest.find(':');
      if (colon != std::string::npos) {
        if (rest.substr(colon + 1) != "noreclaim") {
          throw std::invalid_argument("unknown counter spec: " + spec);
        }
        cfg.reclaim = false;
        rest = rest.substr(0, colon);
      }
      // Strict parse: stoull would silently wrap "dyn:-1" to 2^64-1.
      if (rest.empty() ||
          rest.find_first_not_of("0123456789") != std::string::npos) {
        throw std::invalid_argument("bad threshold in counter spec: " + spec);
      }
      cfg.grow_threshold = std::stoull(rest);
    } else {
      // Paper section 5: p := 1 / (25 c) where c is the core count.
      cfg.grow_threshold = 25 * hardware_core_count();
    }
    return std::make_unique<incounter_factory>(cfg, pools);
  }
  throw std::invalid_argument("unknown counter spec: " + spec);
}

}  // namespace spdag
