#pragma once
// slab_cache / slab_pool<T>: the pooled hot-path allocator.
//
// Three layers, fastest first:
//
//   1. Per-worker magazines. Each thread (keyed by mem::thread_slot(), one
//      live owner per slot) has a small cache of free cells inside the pool.
//      Steady-state allocate/deallocate is an uncontended array push/pop on
//      a line only the owner touches — zero CASes, zero malloc.
//   2. A lock-free global recycle list (tagged-pointer Treiber stack, the
//      same ABA defense as util/treiber_stack). Magazines refill from it in
//      batches when empty and flush half their cells to it when full; it is
//      what makes cross-worker frees cheap — consumer B freeing a future
//      state worker A allocated just fills B's magazine, and the overflow
//      migrates back through this list.
//   3. Block-allocated slabs. Only when the global list is dry does a
//      refill carve fresh cells from the current slab, growing a new slab
//      from the upstream allocator when exhausted (the only path that ever
//      calls aligned_alloc, counted in stats().slab_growths). Slabs are
//      never returned until the pool dies, so recycled cells stay mapped —
//      racing readers of a just-retired SNZI node or out-set node observe
//      stale-but-valid memory, exactly as with the old per-structure arenas.
//
// Cell layout: every cell carries a small pool-private header *before* the
// object — a free-list link (atomic, never aliased by object data, so the
// Treiber pops are race-free under TSan) and a stamp word recording the slot
// of the last allocator (0 = never allocated). The stamp gives exact
// recycle and cross-worker-free counts for one relaxed load per operation.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "mem/pool.hpp"
#include "mem/thread_slot.hpp"
#include "util/cache_aligned.hpp"

namespace spdag {

class slab_cache : public object_pool {
 public:
  static constexpr std::size_t default_slab_bytes = 1 << 16;

  // `slab_bytes` is the upstream allocation unit (rounded up to hold at
  // least one cell). Throws std::invalid_argument on a zero object size.
  slab_cache(std::string name, std::size_t object_bytes,
             std::size_t object_align,
             std::size_t slab_bytes = default_slab_bytes);
  ~slab_cache() override;

  void* allocate() override;
  void deallocate(void* p) noexcept override;
  pool_stats stats() const override;

  std::size_t cell_stride() const noexcept { return stride_; }
  std::size_t slab_bytes() const noexcept { return slab_bytes_; }
  std::size_t slab_count() const;

 private:
  // One worker's cell cache. Only the slot's owner thread touches items/
  // count; the counters are relaxed atomics so stats() can read them from
  // any thread.
  static constexpr std::uint32_t magazine_cap = 32;
  static constexpr std::uint32_t batch = magazine_cap / 2;

  struct alignas(cache_line_size) magazine {
    void* items[magazine_cap];
    std::uint32_t count = 0;
    std::atomic<std::uint64_t> allocs{0};
    std::atomic<std::uint64_t> frees{0};
    std::atomic<std::uint64_t> recycles{0};
    std::atomic<std::uint64_t> remote_frees{0};
    std::atomic<std::uint64_t> refills{0};
    std::atomic<std::uint64_t> flushes{0};
  };

  std::atomic<void*>* link_of(void* obj) const noexcept {
    return reinterpret_cast<std::atomic<void*>*>(static_cast<char*>(obj) -
                                                 hdr_space_);
  }
  static std::atomic<std::uint64_t>* stamp_of(void* obj) noexcept {
    return reinterpret_cast<std::atomic<std::uint64_t>*>(
        static_cast<char*>(obj) - sizeof(std::uint64_t));
  }

  magazine& mag(int slot);
  void refill(magazine& m);              // postcondition: m.count >= 1
  void flush(magazine& m) noexcept;      // postcondition: m.count < cap
  void carve(void** out, std::uint32_t want, std::uint32_t& got);
  void* pop_global() noexcept;
  void push_global(void* first, void* last) noexcept;
  static bool restamp(void* p, int slot) noexcept;

  std::size_t hdr_space_;   // bytes before the object: link + pad + stamp
  std::size_t stride_;      // full cell size, object_align-multiple
  std::size_t slab_bytes_;
  std::size_t slab_align_;

  std::atomic<std::uint64_t> global_head_{0};  // pack(cell, tag)
  std::atomic<magazine*> mags_[mem::max_thread_slots] = {};

  mutable std::mutex grow_mu_;
  std::vector<void*> slabs_;
  char* cursor_ = nullptr;
  char* slab_end_ = nullptr;

  // Cold-path / bypass tallies (magazine-cached ops count in the magazine).
  std::atomic<std::uint64_t> g_allocs_{0};
  std::atomic<std::uint64_t> g_frees_{0};
  std::atomic<std::uint64_t> g_recycles_{0};
  std::atomic<std::uint64_t> g_remote_frees_{0};
  std::atomic<std::uint64_t> carved_{0};
  std::atomic<std::uint64_t> slab_growths_{0};
};

// Typed convenience over slab_cache for callers that own their pool outright
// (tests, structures with a single cell type).
template <typename T>
class slab_pool final : public slab_cache {
 public:
  explicit slab_pool(std::string name = "slab",
                     std::size_t slab_bytes = default_slab_bytes)
      : slab_cache(std::move(name), sizeof(T), alignof(T), slab_bytes) {}

  template <typename... Args>
  T* create(Args&&... args) {
    return pool_new<T>(*this, std::forward<Args>(args)...);
  }
  void destroy(T* obj) noexcept { pool_delete(*this, obj); }
};

}  // namespace spdag
