// High-fan-out future stress: many tasks across many workers registering
// against one future while its producer completes it, over every out-set
// implementation. The conservation law under test is exactly-once delivery:
// with the produced value 1, the consumers' sum must equal the consumer
// count — a lost waiter undercounts, a double delivery overcounts (and the
// finish discipline means run() returning proves every consumer ran).

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <tuple>

#include "dag/future.hpp"
#include "harness/workloads.hpp"
#include "sched/runtime.hpp"
#include "util/dummy_work.hpp"

namespace spdag {
namespace {

class FanoutMatrix
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {};

TEST_P(FanoutMatrix, RacingProducerDeliversExactlyOnce) {
  // Producer completes immediately: most registrations race the finalize or
  // land after it (the rejected/ready-bypass paths).
  runtime_config cfg{4, "dyn"};
  cfg.outset = std::get<0>(GetParam());
  cfg.sched = std::get<1>(GetParam());
  runtime rt(cfg);
  for (int round = 0; round < 20; ++round) {
    EXPECT_EQ(harness::fanout(rt, 1000), 1000u) << "round " << round;
  }
  EXPECT_EQ(rt.engine().live_vertices(), 0u);
}

TEST_P(FanoutMatrix, SlowProducerCapturesTheWholeWave) {
  // Producer spins long enough that registrations pile up on the pending
  // future, then one finalize broadcasts the full set.
  runtime_config cfg{4, "dyn"};
  cfg.outset = std::get<0>(GetParam());
  cfg.sched = std::get<1>(GetParam());
  runtime rt(cfg);
  for (int round = 0; round < 5; ++round) {
    EXPECT_EQ(harness::fanout(rt, 2000, 0, /*producer_ns=*/2'000'000), 2000u)
        << "round " << round;
  }
  EXPECT_EQ(rt.engine().live_vertices(), 0u);
}

TEST_P(FanoutMatrix, ChurnReusesPooledOutsets) {
  runtime_config cfg{2, "dyn"};
  cfg.outset = std::get<0>(GetParam());
  cfg.sched = std::get<1>(GetParam());
  runtime rt(cfg);
  for (int round = 0; round < 200; ++round) {
    ASSERT_EQ(harness::fanout(rt, 64), 64u);
  }
  // 200 futures, but at most a handful of live out-sets at a time.
  EXPECT_LE(rt.outsets().created(), 16u)
      << "future churn must recycle out-sets through the factory pool";
  const outset_totals t = rt.outsets().totals();
  EXPECT_EQ(t.adds, t.delivered)
      << "every captured registration must be delivered";
}

INSTANTIATE_TEST_SUITE_P(
    OutsetsAndScheds, FanoutMatrix,
    ::testing::Combine(::testing::Values("simple", "tree", "tree:4"),
                       ::testing::Values("ws", "private")),
    [](const ::testing::TestParamInfo<std::tuple<std::string, std::string>>&
           info) {
      std::string name = std::get<0>(info.param) + "_" + std::get<1>(info.param);
      for (char& ch : name) {
        if (ch == ':') ch = '_';
      }
      return name;
    });

TEST(FutureFanout, PerConsumerValuesArriveIntact) {
  // Beyond counting: every consumer must observe the actual produced value.
  runtime_config cfg{3, "dyn"};
  cfg.outset = "tree";
  runtime rt(cfg);
  constexpr std::uint64_t kConsumers = 500;
  std::atomic<std::uint64_t> sum{0};
  std::atomic<std::uint64_t> mismatches{0};
  auto* s = &sum;
  auto* m = &mismatches;
  rt.run([s, m] {
    fork2_future<std::uint64_t>(
        [] {
          spin_ns(200'000);
          return std::uint64_t{0xfeedULL};
        },
        [s, m](future<std::uint64_t> f) {
          struct rec {
            static void go(future<std::uint64_t> f,
                           std::atomic<std::uint64_t>* s,
                           std::atomic<std::uint64_t>* m, std::uint64_t k) {
              if (k >= 2) {
                fork2([=] { go(f, s, m, k / 2); },
                      [=] { go(f, s, m, k - k / 2); });
                return;
              }
              if (k == 1) {
                future_then(f, [s, m](std::uint64_t v) {
                  if (v != 0xfeedULL) m->fetch_add(1);
                  s->fetch_add(1);
                });
              }
            }
          };
          rec::go(f, s, m, kConsumers);
        });
  });
  EXPECT_EQ(sum.load(), kConsumers);
  EXPECT_EQ(mismatches.load(), 0u);
}

TEST(FutureFanout, TreeOutsetEngineFactoryIsUsed) {
  // The runtime's spec string must actually reach the futures.
  runtime_config cfg{2, "dyn"};
  cfg.outset = "tree:4";
  runtime rt(cfg);
  EXPECT_EQ(rt.outsets().name(), "tree:4");
  EXPECT_EQ(&rt.engine().outsets(), &rt.outsets());
  ASSERT_EQ(harness::fanout(rt, 256), 256u);
  // Every future_state acquires its out-set from the engine's factory at
  // construction, regardless of how the registration races resolve (a fast
  // producer can legitimately push every consumer onto the ready bypass).
  EXPECT_GE(rt.outsets().created(), 1u)
      << "futures must draw out-sets from the engine's factory";
  const outset_totals t = rt.outsets().totals();
  EXPECT_EQ(t.adds, t.delivered)
      << "every captured registration must be delivered";
}

}  // namespace
}  // namespace spdag
