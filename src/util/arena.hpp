#pragma once
// Lock-free block arena.
//
// Every in-counter (one per sp-dag finish vertex) owns an arena from which
// its SNZI nodes are carved. Rationale:
//   * grow() allocates on the increment critical path; malloc contention
//     there would pollute the very contention measurements the paper makes
//     (the authors linked tcmalloc for the same reason);
//   * SNZI nodes never need individual frees during the structure's life
//     (appendix B retirement recycles, destruction frees in bulk), so a bump
//     allocator is exactly the right shape.
//
// Allocation: atomic bump inside the current chunk; when a chunk fills, one
// winner CAS-installs a fresh chunk. Chunks are chained and released by the
// destructor. All operations are lock-free.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "util/cache_aligned.hpp"

namespace spdag {

class block_arena {
 public:
  // chunk_bytes is the usable payload per chunk.
  explicit block_arena(std::size_t chunk_bytes = 1 << 14) noexcept
      : chunk_bytes_(round_up(chunk_bytes, cache_line_size)) {}

  block_arena(const block_arena&) = delete;
  block_arena& operator=(const block_arena&) = delete;

  ~block_arena() { release_all(); }

  // Allocates `bytes` (<= chunk payload) aligned to `align`.
  void* allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t)) {
    bytes = round_up(bytes, align);
    for (;;) {
      chunk* c = head_.load(std::memory_order_acquire);
      if (c != nullptr) {
        std::size_t off = c->used.load(std::memory_order_relaxed);
        for (;;) {
          std::size_t aligned = round_up(off, align);
          if (aligned + bytes > chunk_bytes_) break;  // chunk full
          if (c->used.compare_exchange_weak(off, aligned + bytes,
                                            std::memory_order_relaxed)) {
            return c->payload() + aligned;
          }
          // off was reloaded by the failed CAS; retry within this chunk.
        }
      }
      grow_chunk(c);
    }
  }

  template <typename T, typename... Args>
  T* create(Args&&... args) {
    void* p = allocate(sizeof(T), alignof(T));
    return ::new (p) T(std::forward<Args>(args)...);
  }

  // Rewinds the arena for reuse without returning memory to the OS: keeps
  // the most recently allocated chunk (zeroing its bump offset) and frees
  // the rest. Caller must guarantee no allocation is concurrent and nothing
  // references previously allocated objects.
  void reset_nonconcurrent() noexcept {
    chunk* c = head_.load(std::memory_order_acquire);
    if (c == nullptr) return;
    c->used.store(0, std::memory_order_relaxed);
    chunk* rest = c->next;
    c->next = nullptr;
    while (rest != nullptr) {
      chunk* next = rest->next;
      rest->~chunk();
      std::free(rest);
      rest = next;
    }
  }

  // Number of chunks currently chained (observability for tests).
  std::size_t chunk_count() const noexcept {
    std::size_t n = 0;
    for (chunk* c = head_.load(std::memory_order_acquire); c != nullptr; c = c->next)
      ++n;
    return n;
  }

  // Total payload bytes handed out (approximate across chunks).
  std::size_t bytes_allocated() const noexcept {
    std::size_t n = 0;
    for (chunk* c = head_.load(std::memory_order_acquire); c != nullptr; c = c->next)
      n += c->used.load(std::memory_order_relaxed);
    return n;
  }

 private:
  struct chunk {
    chunk* next = nullptr;
    std::atomic<std::size_t> used{0};
    char* payload() noexcept {
      return reinterpret_cast<char*>(this) + round_up(sizeof(chunk), cache_line_size);
    }
  };

  static constexpr std::size_t round_up(std::size_t v, std::size_t a) noexcept {
    return (v + a - 1) / a * a;
  }

  void grow_chunk(chunk* expected_head) {
    const std::size_t total = round_up(sizeof(chunk), cache_line_size) + chunk_bytes_;
    void* raw = std::aligned_alloc(cache_line_size, round_up(total, cache_line_size));
    if (raw == nullptr) throw std::bad_alloc{};
    chunk* fresh = ::new (raw) chunk{};
    fresh->next = expected_head;
    if (!head_.compare_exchange_strong(expected_head, fresh,
                                       std::memory_order_acq_rel)) {
      // Another thread installed a chunk first; ours is unneeded.
      fresh->~chunk();
      std::free(raw);
    }
  }

  void release_all() noexcept {
    chunk* c = head_.exchange(nullptr, std::memory_order_acquire);
    while (c != nullptr) {
      chunk* next = c->next;
      c->~chunk();
      std::free(c);
      c = next;
    }
  }

  std::size_t chunk_bytes_;
  std::atomic<chunk*> head_{nullptr};
};

}  // namespace spdag
