#include "outset/factory.hpp"

#include <stdexcept>

#include "outset/simple_outset.hpp"

namespace spdag {

namespace {

// reset() sink: hand stranded waiter records straight back to the pool.
void repool_waiter(void* ctx, outset_waiter* w) {
  static_cast<outset_factory*>(ctx)->release_waiter(w);
}

}  // namespace

outset* outset_factory::acquire() {
  outset* o = pool_.pop();
  if (o == nullptr) {
    auto fresh = create();
    o = fresh.get();
    std::lock_guard<std::mutex> lock(all_mu_);
    all_.push_back(std::move(fresh));
  }
  return o;
}

void outset_factory::release(outset* o) {
  o->reset(&repool_waiter, this);
  pool_.push(o);
}

outset_waiter* outset_factory::acquire_waiter(vertex* consumer,
                                              dag_engine* engine) {
  outset_waiter* w = waiter_pool_.pop();
  if (w == nullptr) {
    auto fresh = std::make_unique<outset_waiter>();
    w = fresh.get();
    std::lock_guard<std::mutex> lock(all_mu_);
    all_waiters_.push_back(std::move(fresh));
  }
  w->consumer = consumer;
  w->engine = engine;
  w->next.store(nullptr, std::memory_order_relaxed);
  return w;
}

std::size_t outset_factory::created() const {
  std::lock_guard<std::mutex> lock(all_mu_);
  return all_.size();
}

std::size_t outset_factory::waiters_created() const {
  std::lock_guard<std::mutex> lock(all_mu_);
  return all_waiters_.size();
}

outset_totals outset_factory::totals() const {
  std::lock_guard<std::mutex> lock(all_mu_);
  outset_totals t;
  for (const auto& o : all_) t += o->totals();
  return t;
}

std::unique_ptr<outset> simple_outset_factory::create() {
  return std::make_unique<simple_outset>();
}

std::unique_ptr<outset> tree_outset_factory::create() {
  return std::make_unique<tree_outset>(cfg_);
}

std::unique_ptr<outset_factory> make_outset_factory(const std::string& spec) {
  std::string s = spec;
  if (s.rfind("outset:", 0) == 0) s = s.substr(7);
  if (s == "simple") return std::make_unique<simple_outset_factory>();
  if (s == "tree") return std::make_unique<tree_outset_factory>();
  if (s.rfind("tree:", 0) == 0) {
    tree_outset_config cfg;
    const long fanout = std::stol(s.substr(5));
    // The upper bound is a sanity rail: a group (fanout + 1 cache lines) is
    // one arena allocation, and fan-outs past a few dozen already defeat the
    // point of the tree (spreading adds across lines).
    if (fanout < 2 || fanout > 1024) {
      throw std::invalid_argument("outset tree fanout must be in [2, 1024]: " +
                                  spec);
    }
    cfg.fanout = static_cast<std::uint32_t>(fanout);
    return std::make_unique<tree_outset_factory>(cfg);
  }
  throw std::invalid_argument("unknown outset spec: " + spec);
}

outset_factory& default_outset_factory() {
  static simple_outset_factory factory;
  return factory;
}

}  // namespace spdag
