#pragma once
// The paper's benchmark workloads (section 5, Figures 6 and 7).
//
// fanin(n):      n leaf tasks, all synchronizing at a single finish block —
//                one dependency counter absorbs n increments/decrements, the
//                worst case for a centralized counter.
// indegree2(n):  the same task count, but every pair of asyncs gets its own
//                finish block, so every counter has indegree 2 — the worst
//                case for per-counter allocation cost.
//
// Both take optional per-leaf busy work (the granularity study, appendix
// C.3; "each unit of dummy work takes approximately one nanosecond").

#include <cstdint>

#include "sched/runtime.hpp"

namespace spdag::harness {

// Runs one fanin computation of n leaves to completion on rt.
void fanin(runtime& rt, std::uint64_t n, std::uint64_t work_ns = 0);

// Runs one indegree-2 computation of n leaves to completion on rt.
void indegree2(runtime& rt, std::uint64_t n, std::uint64_t work_ns = 0);

// Parallel Fibonacci on the sp-dag (the paper's running example, Figure 4).
// Exponential work; use small n. Returns fib(n).
std::uint64_t fib(runtime& rt, unsigned n);

// The number of dependency-counter operations (arrives + departs on finish
// counters) a workload of n leaves performs; used for throughput reporting.
std::uint64_t counter_ops(std::uint64_t n);

}  // namespace spdag::harness
