#include "outset/tree_outset.hpp"

#include <cassert>

#include "util/rng.hpp"

namespace spdag {

tree_outset::tree_outset(tree_outset_config cfg)
    : cfg_(cfg),
      groups_(cfg.groups != nullptr
                  ? cfg.groups
                  : &tree_outset_group_pool(default_pool_registry(),
                                            cfg.fanout)) {
  assert(cfg_.fanout >= 2 && "a tree out-set needs at least two children");
}

tree_outset::~tree_outset() {
  // Waiter records are owned by the factory's pool; only the groups are
  // ours to return. Structured use resets before destruction, so this walk
  // is usually a no-op.
  reset_node(&base_, [](void*, outset_waiter*) {}, nullptr);
}

bool tree_outset::add(outset_waiter* w) noexcept {
  tree_node* n = &base_;
  std::uint32_t depth = 0;
  for (;;) {
    outset_waiter* head = n->head.load(std::memory_order_acquire);
    for (;;) {
      if (head == terminated_waiter()) {
        // This node was drained, so the whole out-set is finalizing (only
        // finalize installs the sentinel); the hand-off is the caller's.
        count_rejected();
        return false;
      }
      w->next.store(head, std::memory_order_relaxed);
      if (n->head.compare_exchange_weak(head, w, std::memory_order_release,
                                        std::memory_order_acquire)) {
        count_add();
        return true;
      }
      count_retry();
      // Another consumer hit this cache line in our window — the contention
      // signal. Move down to spread out, unless the depth cap says to stay,
      // or the growth-damping coin (see file comment) comes up tails — the
      // same 1/threshold gate as the in-counter's grow().
      if (depth < cfg_.max_depth &&
          (cfg_.grow_threshold == 1 ||
           (cfg_.grow_threshold != 0 &&
            thread_rng().below(cfg_.grow_threshold) == 0))) {
        break;
      }
    }
    tree_node* kids = n->children.load(std::memory_order_acquire);
    if (kids == nullptr) kids = grow(n);
    if (kids == terminated_children()) {
      // finalize sealed this node before any group could be installed; the
      // future is completed and the caller delivers its consumer itself.
      count_rejected();
      return false;
    }
    n = kids + thread_rng().below(cfg_.fanout);
    ++depth;
  }
}

tree_outset::tree_node* tree_outset::grow(tree_node* n) noexcept {
  // One pool cell per group: fanout fresh node lines. The slab pool keeps
  // growth on the registration critical path away from malloc (per-worker
  // magazine hit in steady state).
  auto* kids = static_cast<tree_node*>(groups_->allocate());
  for (std::uint32_t i = 0; i < cfg_.fanout; ++i) {
    ::new (kids + i) tree_node{};
  }
  tree_node* expected = nullptr;
  if (n->children.compare_exchange_strong(expected, kids,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
    return kids;
  }
  groups_->deallocate(kids);
  return expected;  // the winning group — or the finalizer's sentinel
}

void tree_outset::finalize(waiter_sink sink, void* ctx) {
  finalize_node(&base_, sink, ctx);
}

void tree_outset::finalize_node(tree_node* n, waiter_sink sink, void* ctx) {
  // Seal the children pointer BEFORE draining the list head. The pointer is
  // write-once: either we read an installed group here (and will descend
  // into it), or our sentinel lands and no group can ever be installed —
  // so no add can sneak a waiter under a node we already passed.
  tree_node* kids = n->children.load(std::memory_order_acquire);
  if (kids == nullptr) {
    n->children.compare_exchange_strong(kids, terminated_children(),
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire);
    // On failure a concurrent grow won; `kids` now holds its group.
  }
  outset_waiter* w =
      n->head.exchange(terminated_waiter(), std::memory_order_acq_rel);
  // Stream this node's waiters out before touching descendants: consumers
  // captured near the top of the tree are already running on other workers
  // while deeper nodes drain — the broadcast proceeds in parallel down the
  // tree.
  drain_chain(w, sink, ctx);
  if (kids != nullptr && kids != terminated_children()) {
    for (std::uint32_t i = 0; i < cfg_.fanout; ++i) {
      finalize_node(kids + i, sink, ctx);
    }
  }
}

void tree_outset::reset(waiter_sink sink, void* ctx) {
  reset_node(&base_, sink, ctx);
}

void tree_outset::reset_node(tree_node* n, waiter_sink sink, void* ctx) {
  // Abandoned registrations go back to the pool undelivered.
  scrub_chain(n->head.exchange(nullptr, std::memory_order_relaxed), sink, ctx);
  tree_node* kids = n->children.exchange(nullptr, std::memory_order_relaxed);
  if (kids != nullptr && kids != terminated_children()) {
    for (std::uint32_t i = 0; i < cfg_.fanout; ++i) {
      reset_node(kids + i, sink, ctx);
    }
    groups_->deallocate(kids);
  }
}

std::size_t tree_outset::count_nodes(const tree_node* n, std::uint32_t fanout) {
  std::size_t total = 1;
  const tree_node* kids = n->children.load(std::memory_order_acquire);
  if (kids != nullptr && kids != terminated_children()) {
    for (std::uint32_t i = 0; i < fanout; ++i) {
      total += count_nodes(kids + i, fanout);
    }
  }
  return total;
}

std::size_t tree_outset::depth_below(const tree_node* n, std::uint32_t fanout) {
  std::size_t deepest = 0;
  const tree_node* kids = n->children.load(std::memory_order_acquire);
  if (kids != nullptr && kids != terminated_children()) {
    for (std::uint32_t i = 0; i < fanout; ++i) {
      const std::size_t d = 1 + depth_below(kids + i, fanout);
      if (d > deepest) deepest = d;
    }
  }
  return deepest;
}

std::size_t tree_outset::node_count() const {
  return count_nodes(&base_, cfg_.fanout);
}

std::size_t tree_outset::max_depth() const {
  return depth_below(&base_, cfg_.fanout);
}

std::size_t tree_outset::recycled_group_count() const {
  return groups_->stats().frees;
}

}  // namespace spdag
