// apps/stream_pipeline: continuous-arrival future pipeline — the
// broadcast-heavy application bench for the batched registration path
// (future_then_group + out-set add_group vs a fork2 tree of single
// future_then calls), swept over both schedulers. Emits one schema-2 JSON
// record per configuration with the amortization ledger (`edges`,
// `counter_ops`, `counter_ops_per_edge`) and the conservation pair
// (`completed`, `spawned`) for scripts/perf_smoke_gate.py --apps.
//
// Usage: app_stream_pipeline [-n items] [-stages 4] [-width 8] [-proc P]
//                            [-runs R] [-json path]

#include <cstdio>
#include <string>

#include "apps/stream_pipeline.hpp"
#include "harness/bench_runner.hpp"
#include "util/cli.hpp"
#include "util/histogram.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace spdag;
  options opts(argc, argv);
  const auto common = harness::read_common(opts, /*default_n=*/256);
  harness::json_open(opts, "apps");

  apps::stream_config base;
  base.items = common.n;
  base.stages = static_cast<std::uint32_t>(opts.get_int("stages", 4));
  base.width = static_cast<std::uint32_t>(opts.get_int("width", 8));
  const std::uint64_t want_deliveries =
      base.items * base.stages * base.width;
  std::printf("# apps/stream_pipeline: items=%llu stages=%u width=%u "
              "deliveries=%llu proc=%zu runs=%d\n",
              static_cast<unsigned long long>(base.items), base.stages,
              base.width, static_cast<unsigned long long>(want_deliveries),
              common.max_proc, common.runs);

  result_table table(
      {"sched", "batch", "mean_s", "Mdeliv/s", "ops_per_edge"});
  for (const char* sched : {"ws", "private"}) {
    for (const bool batch : {false, true}) {
      runtime_config rc;
      rc.workers = common.max_proc;
      rc.sched = sched;
      runtime rt(rc);
      apps::stream_config cfg = base;
      cfg.batch = batch;
      // Warm-up fixes the golden checksum and checks delivery conservation.
      const apps::stream_result golden = apps::stream_run(rt, cfg);
      if (golden.deliveries != want_deliveries) {
        std::fprintf(stderr,
                     "stream: %llu deliveries != expected %llu "
                     "(sched=%s batch=%d)\n",
                     static_cast<unsigned long long>(golden.deliveries),
                     static_cast<unsigned long long>(want_deliveries), sched,
                     batch ? 1 : 0);
        return 1;
      }
      rt.engine().stats().reset();  // scope the ledger to the measured runs

      run_stats stats;
      latency_histogram hist;
      for (int r = 0; r < common.runs; ++r) {
        wall_timer t;
        const apps::stream_result res = apps::stream_run(rt, cfg);
        const double s = t.elapsed_s();
        stats.add(s);
        hist.record(static_cast<std::uint64_t>(s * 1e9));
        if (res.checksum != golden.checksum ||
            res.deliveries != want_deliveries) {
          std::fprintf(stderr, "stream: nondeterministic fold "
                               "(sched=%s batch=%d run=%d)\n",
                       sched, batch ? 1 : 0, r);
          return 1;
        }
      }

      const engine_stats& es = rt.engine().stats();
      const double edges =
          static_cast<double>(es.edges.load(std::memory_order_relaxed));
      const double cops = static_cast<double>(
          es.counter_incs.load(std::memory_order_relaxed) +
          es.counter_decs.load(std::memory_order_relaxed));
      const double ratio = edges > 0 ? cops / (2.0 * edges) : 0.0;
      const double dps = stats.mean() > 0
                             ? static_cast<double>(want_deliveries) /
                                   stats.mean()
                             : 0.0;
      table.add_row({sched, batch ? "on" : "off",
                     result_table::num(stats.mean(), 4),
                     result_table::num(dps / 1e6, 2),
                     result_table::num(ratio, 4)});

      if (harness::json_enabled()) {
        harness::json_record rec;
        rec.name = "stream_pipeline/dyn/sched:";
        rec.name += sched;
        rec.name += "/proc:";
        rec.name += std::to_string(common.max_proc);
        if (batch) rec.name += "/batch";
        rec.spec = "dyn";
        rec.sched = sched;
        rec.proc = common.max_proc;
        rec.runs = common.runs;
        rec.ops_per_s = dps;
        rec.wall_s = stats.mean();
        rec.lat_p50_ms = static_cast<double>(hist.percentile_ns(0.50)) * 1e-6;
        rec.lat_p95_ms = static_cast<double>(hist.percentile_ns(0.95)) * 1e-6;
        rec.lat_p99_ms = static_cast<double>(hist.percentile_ns(0.99)) * 1e-6;
        rec.pools = rt.pools().rows();
        rec.pool_totals = rt.pools().totals();
        rec.outsets = rt.outsets().totals();
        rec.sched_totals = rt.sched().totals();
        rec.extra.emplace_back("edges", edges);
        rec.extra.emplace_back("counter_ops", cops);
        rec.extra.emplace_back("counter_ops_per_edge", ratio);
        rec.extra.emplace_back(
            "completed", static_cast<double>(
                             es.executions.load(std::memory_order_relaxed)));
        rec.extra.emplace_back(
            "spawned",
            static_cast<double>(
                es.vertices_created.load(std::memory_order_relaxed)));
        rec.extra.emplace_back("batch", batch ? 1.0 : 0.0);
        harness::json_add(std::move(rec));
      }
    }
  }
  harness::emit(table, common.csv);
  return harness::json_write();
}
