#include "util/topology.hpp"

#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace spdag {

std::size_t hardware_core_count() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

std::size_t pin_current_thread(std::size_t core_index) noexcept {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(core_index % hardware_core_count(), &set);
  if (pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0) {
    return core_index % hardware_core_count();
  }
#else
  (void)core_index;
#endif
  return static_cast<std::size_t>(-1);
}

bool pinning_supported() noexcept {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  return pthread_getaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  return false;
#endif
}

}  // namespace spdag
