#pragma once
// Sense-reversing spin barrier.
//
// Benchmark workers must start a measured region together; a spin barrier
// avoids the scheduler-latency skew a condvar barrier would add.

#include <atomic>
#include <cstddef>

#include "util/backoff.hpp"
#include "util/cache_aligned.hpp"

namespace spdag {

class spin_barrier {
 public:
  explicit spin_barrier(std::size_t parties) noexcept : parties_(parties) {}

  spin_barrier(const spin_barrier&) = delete;
  spin_barrier& operator=(const spin_barrier&) = delete;

  void arrive_and_wait() noexcept {
    const bool my_sense = !sense_.value.load(std::memory_order_relaxed);
    if (count_.value.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      count_.value.store(0, std::memory_order_relaxed);
      sense_.value.store(my_sense, std::memory_order_release);
    } else {
      backoff b;
      while (sense_.value.load(std::memory_order_acquire) != my_sense) b.pause();
    }
  }

 private:
  std::size_t parties_;
  cache_aligned<std::atomic<std::size_t>> count_{0};
  cache_aligned<std::atomic<bool>> sense_{false};
};

}  // namespace spdag
