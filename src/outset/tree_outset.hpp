#pragma once
// tree_outset: a lock-free, grow-on-contention out-set tree — the symmetric
// counterpart of snzi_tree::grow() on the fan-out side.
//
// Shape. Every node owns one cache line holding a waiter-list head and a
// children pointer. A registering consumer starts at the base node and tries
// one CAS on the current node's list head. Success means the consumer has
// claimed a slot on that node's line and is done. Failure means another
// consumer hit the same line in the same window — the very contention signal
// snzi's grow() keys off — so the add *grows* the node (installing a group
// of `fanout` fresh children, each on its own cache line, with a single CAS,
// exactly like grow() installs a child_pair) and descends into a child
// chosen by a thread-local coin. Concurrent adds therefore separate after
// O(log_fanout c) failures in expectation and keep landing on disjoint
// lines; a single-threaded add is one uncontended CAS on the base, the same
// cost as simple_outset.
//
// Finalize. The producer walks the tree top-down. At each node it first
// seals the children pointer (CASing in a terminated sentinel when the node
// is childless, so no group can be installed under an already-drained node),
// then exchanges the list head for the terminated-waiter sentinel and
// streams the captured waiters to the sink *before* descending — consumers
// registered near the top of the tree are running on other workers while
// deeper nodes are still being drained, which is what "broadcast in parallel
// down the tree" means here. The add/finalize race is thereby resolved per
// node: an add that loses a head CAS to the sentinel, or a grow that loses
// the children CAS to the sentinel, returns false and the registrant
// schedules its consumer itself (the future is already completed — both
// sentinels are only ever installed by finalize, which the producer calls
// after publishing the value).
//
// Memory. Child groups are carved from a per-outset bump arena and recycled
// through a tagged Treiber stack across reset() generations, so Figure-10
// style churn (one future per iteration, millions of iterations) measures
// the structure, not malloc — the same policy as the in-counter's arena.

#include <cstdint>

#include "outset/outset.hpp"
#include "util/arena.hpp"
#include "util/cache_aligned.hpp"
#include "util/treiber_stack.hpp"

namespace spdag {

struct tree_outset_config {
  // Children installed per grow. 2 mirrors snzi's child_pair; wider fanouts
  // trade tree depth for a bigger finalize frontier.
  std::uint32_t fanout = 2;
  // Depth at which adds stop growing and spin on the deepest node's line.
  // Bounds the tree at fanout^max_depth nodes; with grow-on-contention the
  // expected depth is log_fanout(concurrent adders), far below the cap.
  std::uint32_t max_depth = 12;
  std::size_t arena_chunk_bytes = 1 << 12;
};

class tree_outset final : public outset {
 public:
  explicit tree_outset(tree_outset_config cfg = {});

  bool add(outset_waiter* w) noexcept override;
  void finalize(waiter_sink sink, void* ctx) override;
  void reset(waiter_sink sink, void* ctx) override;

  std::uint32_t fanout() const noexcept { return cfg_.fanout; }

  // --- non-concurrent introspection (tests, space accounting) ---
  std::size_t node_count() const;  // reachable nodes incl. base
  std::size_t max_depth() const;   // base = depth 0
  std::size_t recycled_group_count() const;

 private:
  struct alignas(cache_line_size) tree_node {
    std::atomic<outset_waiter*> head{nullptr};
    // First node of a `fanout`-wide child group, terminated_children(), or
    // nullptr while childless.
    std::atomic<tree_node*> children{nullptr};
  };
  static_assert(sizeof(tree_node) == cache_line_size,
                "an out-set node must own exactly one cache line");

  // One arena allocation: a header line followed by `fanout` nodes. While
  // pooled the group sits on a tagged Treiber stack (like snzi's child_pair
  // recycling) chained through `pool_next`.
  struct alignas(cache_line_size) node_group {
    std::atomic<node_group*> pool_next{nullptr};
    tree_node* nodes() noexcept {
      return reinterpret_cast<tree_node*>(reinterpret_cast<char*>(this) +
                                          cache_line_size);
    }
    static node_group* from_nodes(tree_node* n) noexcept {
      return reinterpret_cast<node_group*>(reinterpret_cast<char*>(n) -
                                           cache_line_size);
    }
  };

  static tree_node* terminated_children() noexcept {
    return reinterpret_cast<tree_node*>(std::uintptr_t{1});
  }

  // Returns n's children, installing a fresh group if absent. May return
  // terminated_children() when finalize sealed the node first.
  tree_node* grow(tree_node* n) noexcept;
  void finalize_node(tree_node* n, waiter_sink sink, void* ctx);
  void reset_node(tree_node* n, waiter_sink sink, void* ctx);
  static std::size_t count_nodes(const tree_node* n, std::uint32_t fanout);
  static std::size_t depth_below(const tree_node* n, std::uint32_t fanout);

  tree_outset_config cfg_;
  block_arena arena_;
  tree_node base_;
  treiber_stack<node_group> free_groups_;
};

}  // namespace spdag
