// Golden-output determinism for the application tier: every app must
// produce byte-identical results across the full configuration lattice —
// scheduler {ws, private} x allocator {pool, malloc} x out-set
// {simple, tree} x batch {off, on} — because each app's answer is a pure
// function of its inputs, not of the schedule. This is the end-to-end
// check that the batched spawn/registration paths are semantically
// invisible: same distances, same dp cells, same fold, only fewer counter
// operations.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "apps/bfs.hpp"
#include "apps/stream_pipeline.hpp"
#include "apps/wavefront_lcs.hpp"
#include "sched/runtime.hpp"

namespace spdag {
namespace {

struct lattice_point {
  const char* sched;
  const char* alloc;
  const char* outset;
  bool batch;
};

std::vector<lattice_point> full_lattice() {
  std::vector<lattice_point> pts;
  for (const char* sched : {"ws", "private"}) {
    for (const char* alloc : {"pool", "malloc"}) {
      for (const char* outset : {"simple", "tree"}) {
        for (const bool batch : {false, true}) {
          pts.push_back({sched, alloc, outset, batch});
        }
      }
    }
  }
  return pts;
}

runtime_config make_config(const lattice_point& p) {
  runtime_config rc;
  rc.workers = 4;
  rc.sched = p.sched;
  rc.alloc = p.alloc;
  rc.outset = p.outset;
  return rc;
}

std::string describe(const lattice_point& p) {
  std::string s = "sched=";
  s += p.sched;
  s += " alloc=";
  s += p.alloc;
  s += " outset=";
  s += p.outset;
  s += p.batch ? " batch=on" : " batch=off";
  return s;
}

TEST(AppsGolden, BfsDistancesIdenticalAcrossLattice) {
  const apps::bfs_graph g = apps::make_bfs_graph(3000, 6, /*seed=*/11);
  std::vector<std::int32_t> golden;
  for (const lattice_point& p : full_lattice()) {
    runtime rt(make_config(p));
    apps::bfs_config cfg{/*grain=*/32, p.batch};
    const std::vector<std::int32_t> dist = apps::bfs_run(rt, g, cfg);
    ASSERT_EQ(dist.size(), g.vertex_count());
    EXPECT_EQ(dist[0], 0);
    if (golden.empty()) {
      golden = dist;
    } else {
      ASSERT_EQ(dist, golden) << describe(p);
    }
  }
  // The anchor edges from vertex 0 guarantee a nontrivial reachable set.
  std::size_t reached = 0;
  for (const std::int32_t d : golden) {
    if (d >= 0) ++reached;
  }
  EXPECT_GT(reached, g.vertex_count() / 2);
}

TEST(AppsGolden, LcsCellsIdenticalAcrossLatticeAndMatchSerial) {
  apps::lcs_config cfg;
  cfg.len = 192;
  cfg.block = 32;
  cfg.seed = 3;
  const std::uint32_t expected = apps::lcs_serial(
      apps::random_dna(cfg.len, cfg.seed), apps::random_dna(cfg.len, cfg.seed + 1));
  apps::lcs_result golden{};
  bool have_golden = false;
  for (const lattice_point& p : full_lattice()) {
    runtime rt(make_config(p));
    cfg.batch = p.batch;
    const apps::lcs_result r = apps::lcs_run(rt, cfg);
    EXPECT_EQ(r.length, expected) << describe(p);
    if (!have_golden) {
      golden = r;
      have_golden = true;
    } else {
      EXPECT_EQ(r.cells_checksum, golden.cells_checksum) << describe(p);
      EXPECT_EQ(r.blocks, golden.blocks) << describe(p);
    }
  }
}

TEST(AppsGolden, StreamChecksumAndDeliveriesConservedAcrossLattice) {
  apps::stream_config cfg;
  cfg.items = 32;
  cfg.stages = 3;
  cfg.width = 6;
  cfg.seed = 19;
  const std::uint64_t want =
      cfg.items * cfg.stages * static_cast<std::uint64_t>(cfg.width);
  apps::stream_result golden{};
  bool have_golden = false;
  for (const lattice_point& p : full_lattice()) {
    runtime rt(make_config(p));
    cfg.batch = p.batch;
    const apps::stream_result r = apps::stream_run(rt, cfg);
    EXPECT_EQ(r.deliveries, want) << describe(p);
    if (!have_golden) {
      golden = r;
      have_golden = true;
    } else {
      EXPECT_EQ(r.checksum, golden.checksum) << describe(p);
    }
  }
}

TEST(AppsGolden, BatchStrictlyReducesCounterOps) {
  // The amortization claim itself, at test scale: identical work, identical
  // edge count, strictly fewer counter operations on the batch lattice half.
  auto measure = [](bool batch) {
    runtime_config rc;
    rc.workers = 4;
    runtime rt(rc);
    apps::lcs_config cfg;
    cfg.len = 192;
    cfg.block = 16;  // enough blocks per diagonal for real batches
    cfg.batch = batch;
    (void)apps::lcs_run(rt, cfg);
    const engine_stats& es = rt.engine().stats();
    const double edges =
        static_cast<double>(es.edges.load(std::memory_order_relaxed));
    const double ops = static_cast<double>(
        es.counter_incs.load(std::memory_order_relaxed) +
        es.counter_decs.load(std::memory_order_relaxed));
    return ops / (2.0 * edges);
  };
  const double unbatched = measure(false);
  const double batched = measure(true);
  EXPECT_DOUBLE_EQ(unbatched, 1.0)
      << "unbatched execution must pay exactly one inc + one dec per edge";
  EXPECT_LT(batched, 1.0) << "batching must amortize increments";
}

}  // namespace
}  // namespace spdag
