#pragma once
// Sp-dag vertex and the shared decrement-handle pair (paper section 3.1).
//
// A vertex is one fine-grained thread of control. Its fields mirror the
// paper's struct: a body, handles into its finish vertex's in-counter (one
// increment handle, a *pair* of decrement handles shared with the sibling),
// the finish vertex itself, and a dead flag. The first_dec test-and-set flag
// lives in the shared pair rather than the vertex so the two siblings
// claiming handles coordinate through one word: the first to claim takes
// t[0], which always points at least as high in the SNZI tree as t[1] —
// the ordering invariant Lemma 4.6's proof relies on.

#include <atomic>
#include <cstdint>

#include "counter/dep_counter.hpp"
#include "util/inline_function.hpp"

namespace spdag {

// Decrement-handle pair shared by the vertices a spawn creates.
// `owners` counts vertices that may still claim from this pair; the claimer
// that drops it to zero returns the pair to its slab pool.
//
// A spawn_batch of k children reuses the same structure as a GROUP: t[0] is
// still the single inherited (higher) handle, but t[1] is the batch token
// whose placement carries k-1 surplus units — the first claimer takes t[0]
// and every later claimer departs t[1] once. That only counts correctly when
// the first claimer deterministically takes slot 0, so grouped pairs pin the
// ordered claim policy even under the claim-order ablation (`grouped`).
struct dec_pair {
  token t[2] = {0, 0};
  // Slot taken by the first claimer, -1 while unclaimed. The default policy
  // always claims slot 0 (the higher handle); the claim-order ablation
  // randomizes the first claimer's choice (never for grouped pairs).
  std::atomic<std::int8_t> first_slot{-1};
  std::atomic<std::uint32_t> owners{0};
  // True for spawn_batch groups: t[1] is a multi-unit batch token and the
  // claim order MUST stay [t[0] first, then owners-1 departs of t[1]].
  bool grouped = false;

  void reset(token t0, token t1, std::uint32_t owner_count,
             bool grouped_claims = false) noexcept {
    t[0] = t0;
    t[1] = t1;
    first_slot.store(-1, std::memory_order_relaxed);
    owners.store(owner_count, std::memory_order_relaxed);
    grouped = grouped_claims;
  }
};

// Bodies are small closures stored inline; 64 bytes covers every body in the
// examples and benchmarks without heap allocation on the spawn path.
using vertex_body = inline_function<void(), 64>;

class vertex {
 public:
  vertex_body body;

  // This vertex's own dependency counter (the paper's query handle points at
  // it). Zero surplus <=> the vertex is ready to execute.
  dep_counter* counter = nullptr;

  // The vertex every path from here must pass through before the enclosing
  // computation completes; signal() decrements fin's counter.
  vertex* fin = nullptr;

  // Increment handle into fin's counter (token is counter-specific).
  token inc = 0;

  // Decrement handles into fin's counter, shared with the sibling.
  // Null when the engine's counters do not use tokens (fetch-and-add).
  dec_pair* dpair = nullptr;

  // Which side of the parent spawn this vertex is; steers the in-counter's
  // arrive placement (paper Figure 5, line 22).
  bool is_left = false;

  // Set by chain/spawn: the vertex transferred its obligation and must not
  // signal when its body returns.
  bool dead = false;

  // True when `inc` is SHARED with other vertices (spawn_batch hands one
  // arrive's handles to all k children; Lemma 4.3's handle uniqueness no
  // longer holds for them or their spawn/chain descendants on the same
  // handle). Shared handles must never be abandon()ed — two sharers retiring
  // the same never-used node would double-count its pair's retire and
  // recycle it under live handles. Propagates through chain (same token) and
  // spawn (the grown children may collide with a sharer's grow of the same
  // hint); a fresh finish counter's root handle resets it to false.
  bool shared_inc = false;
};

}  // namespace spdag
