#pragma once
// Flat-combining dependency counter: the diffused flat baseline (ablation).
//
// The paper resolves the FAA counter's single-cache-line contention by
// tree-structuring (SNZI). This counter applies the OTHER classic remedy —
// flat combining, after flat_combining_stack.h from the Concurrent-
// Containers exemplar (SNIPPETS.md) — to the same flat cell: threads
// publish their arrive/add/depart deltas to per-slot records, and whoever
// wins the combiner flag folds every pending delta into ONE fetch_add on
// the shared line, then hands each depart its reached-zero verdict. fig14-
// style sweeps get a third series between "flat, contended" (faa) and
// "tree-structured" (snzi/dyn): flat, diffused.
//
// Linearization of a combined batch: arrives first, then departs. With a
// non-negative start S and net delta N, intermediate values stay positive
// and zero is reachable only at the batch's last depart when S + N == 0 —
// so exactly one depart observes the drop to zero, matching faa_counter's
// `prev == 1` exactly-once readiness contract.
//
// A thread whose publication slot is taken (collision, or no thread slot)
// falls through to the direct FAA — counted, like the out-set's
// fallthroughs, so the bench JSON shows the combiner's absorption rate.
// Tokens: none, like faa (uses_tokens() == false).

#include <atomic>
#include <cassert>
#include <cstdint>
#include <thread>

#include "counter/dep_counter.hpp"
#include "mem/thread_slot.hpp"
#include "obs/trace.hpp"
#include "util/cache_aligned.hpp"

namespace spdag {

// Combining instrumentation mirrored from outset_totals' fc fields (see
// outset/outset.hpp): requests a combiner served for OTHER threads, batches
// applied, and slotless/collision operations that went straight to the
// shared cell.
struct counter_combining_totals {
  std::uint64_t combined_ops = 0;
  std::uint64_t combiner_passes = 0;
  std::uint64_t fallthroughs = 0;

  counter_combining_totals& operator+=(
      const counter_combining_totals& o) noexcept {
    combined_ops += o.combined_ops;
    combiner_passes += o.combiner_passes;
    fallthroughs += o.fallthroughs;
    return *this;
  }
};

class fc_counter final : public dep_counter {
 public:
  static constexpr std::size_t fc_slot_count = 16;

  explicit fc_counter(std::uint32_t initial = 0) noexcept { reset(initial); }

  arrive_result arrive(token /*inc_hint*/, bool /*from_left*/) override {
    run_op(1, /*is_depart=*/false);
    return {0, 0, 0};
  }

  arrive_result add(token /*inc_hint*/, bool /*from_left*/,
                    std::uint32_t k) override {
    assert(k >= 1 && "a batched increment covers at least one unit");
    run_op(static_cast<std::int64_t>(k), /*is_depart=*/false);
    return {0, 0, 0};
  }

  bool depart(token /*dec*/) override {
    return run_op(-1, /*is_depart=*/true);
  }

  bool is_zero() const override {
    return count_.value.load(std::memory_order_acquire) == 0;
  }

  token root_token() override { return 0; }
  bool uses_tokens() const override { return false; }

  void reset(std::uint32_t n) override {
    // Non-concurrent by contract, so every publication slot is empty.
    count_.value.store(static_cast<std::int64_t>(n),
                       std::memory_order_relaxed);
  }

  std::int64_t value() const noexcept {
    return count_.value.load(std::memory_order_acquire);
  }

  counter_combining_totals combining_totals() const noexcept {
    counter_combining_totals t;
    t.combined_ops = combined_ops_.load(std::memory_order_relaxed);
    t.combiner_passes = combiner_passes_.load(std::memory_order_relaxed);
    t.fallthroughs = fallthroughs_.load(std::memory_order_relaxed);
    return t;
  }

 private:
  // Same publication-record hand-off as fc_outset (outset/fc_outset.hpp):
  // only the state word is touched cross-thread while a request is in
  // flight; delta/is_depart travel through its release/acquire transitions
  // and `zero` travels back with the done transition.
  enum : std::uint32_t {
    rec_empty = 0,
    rec_owned = 1,
    rec_pending = 2,
    rec_done = 3,
  };
  struct alignas(cache_line_size) pub_record {
    std::atomic<std::uint32_t> state{rec_empty};
    std::int64_t delta = 0;
    bool is_depart = false;
    bool zero = false;  // reached-zero verdict (departs only)
  };

  static void cpu_pause() noexcept {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield");
#endif
  }

  // Publish one delta and wait for its verdict, combining when the flag is
  // free; falls through to the direct FAA on a slot collision. Returns the
  // reached-zero verdict (false for arrives/adds).
  bool run_op(std::int64_t delta, bool is_depart) noexcept {
    const int ts = mem::thread_slot();
    if (ts >= 0) {
      pub_record& r = slots_[static_cast<std::size_t>(ts) % fc_slot_count];
      std::uint32_t expect = rec_empty;
      if (r.state.compare_exchange_strong(expect, rec_owned,
                                          std::memory_order_acquire,
                                          std::memory_order_relaxed)) {
        r.delta = delta;
        r.is_depart = is_depart;
        r.state.store(rec_pending, std::memory_order_release);
        std::uint32_t spins = 0;
        for (;;) {
          if (r.state.load(std::memory_order_acquire) == rec_done) {
            const bool zero = r.zero;
            r.state.store(rec_empty, std::memory_order_release);
            return zero;
          }
          // Grace window before self-combining, exactly as in
          // fc_outset::run_request: the pauses batch concurrent publishers,
          // the single yield hands the core over on oversubscribed (1-core
          // CI) runs — without it every requester instantly serves itself
          // and nothing ever combines.
          if (spins < 64) {
            cpu_pause();
            ++spins;
            continue;
          }
          if (spins == 64) {
            ++spins;
            std::this_thread::yield();
            continue;
          }
          std::uint32_t free = 0;
          if (combiner_.compare_exchange_strong(free, 1,
                                                std::memory_order_acquire,
                                                std::memory_order_relaxed)) {
            combine(&r);
            combiner_.store(0, std::memory_order_release);
            continue;  // our request is complete; read the verdict above
          }
          cpu_pause();
          if (++spins % 64 == 0) std::this_thread::yield();
        }
      }
    }
    fallthroughs_.fetch_add(1, std::memory_order_relaxed);
    const std::int64_t prev =
        count_.value.fetch_add(delta, std::memory_order_seq_cst);
    assert(prev + delta >= 0 && "fc counter went negative");
    return is_depart && prev + delta == 0;
  }

  void combine(pub_record* mine) noexcept {
    pub_record* got[fc_slot_count];
    std::size_t k = 0;
    for (auto& r : slots_) {
      if (r.state.load(std::memory_order_acquire) == rec_pending) {
        got[k++] = &r;
      }
    }
    if (k == 0) return;
    std::int64_t net = 0;
    pub_record* last_depart = nullptr;
    for (std::size_t i = 0; i < k; ++i) {
      net += got[i]->delta;
      if (got[i]->is_depart) last_depart = got[i];
    }
    // ONE shared-line RMW for the whole batch. Linearized arrives-first:
    // zero is reachable only at the batch's final depart (file comment), so
    // at most one verdict is true.
    const std::int64_t prev =
        count_.value.fetch_add(net, std::memory_order_seq_cst);
    assert(prev + net >= 0 && "fc counter went negative");
    const bool hit_zero = prev + net == 0 && last_depart != nullptr;
    std::uint32_t others = 0;
    for (std::size_t i = 0; i < k; ++i) {
      pub_record* r = got[i];
      r->zero = hit_zero && r == last_depart;
      if (r != mine) ++others;
      r->state.store(rec_done, std::memory_order_release);
    }
    combiner_passes_.fetch_add(1, std::memory_order_relaxed);
    combined_ops_.fetch_add(others, std::memory_order_relaxed);
    obs::emit(obs::ev_combine, 1, others);
  }

  cache_aligned<std::atomic<std::int64_t>> count_{0};
  std::atomic<std::uint32_t> combiner_{0};
  pub_record slots_[fc_slot_count];
  std::atomic<std::uint64_t> combined_ops_{0};
  std::atomic<std::uint64_t> combiner_passes_{0};
  std::atomic<std::uint64_t> fallthroughs_{0};
};

}  // namespace spdag
