// Tests for the latency histogram and the timing decorator factory.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "dag/engine.hpp"
#include "dag/serial_executor.hpp"
#include "harness/workloads.hpp"
#include "incounter/timed_factory.hpp"
#include "sched/runtime.hpp"
#include "util/histogram.hpp"

namespace spdag {
namespace {

TEST(Histogram, EmptyIsZero) {
  latency_histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile_ns(0.5), 0u);
  EXPECT_DOUBLE_EQ(h.mean_ns(), 0.0);
}

TEST(Histogram, SingleSampleLandsInRightBin) {
  latency_histogram h;
  h.record(100);  // (64, 128] -> upper bound 128
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.percentile_ns(0.5), 128u);
  EXPECT_EQ(h.percentile_ns(1.0), 128u);
}

TEST(Histogram, PowersOfTwoAreInclusiveUpperBounds) {
  latency_histogram h;
  h.record(64);
  EXPECT_EQ(h.percentile_ns(1.0), 64u);
}

TEST(Histogram, PercentilesAreMonotone) {
  latency_histogram h;
  for (std::uint64_t v : {1u, 2u, 4u, 50u, 100u, 1000u, 100000u}) h.record(v);
  std::uint64_t prev = 0;
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const std::uint64_t p = h.percentile_ns(q);
    EXPECT_GE(p, prev) << "q=" << q;
    prev = p;
  }
}

TEST(Histogram, TailSeparatesFromMode) {
  latency_histogram h;
  for (int i = 0; i < 990; ++i) h.record(50);
  for (int i = 0; i < 10; ++i) h.record(100000);
  EXPECT_EQ(h.percentile_ns(0.5), 64u);
  EXPECT_GE(h.percentile_ns(0.999), 65536u);
}

TEST(Histogram, MergeAddsCounts) {
  latency_histogram a, b;
  a.record(10);
  b.record(10);
  b.record(1000);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
}

TEST(Histogram, ConcurrentRecordingLosesNothing) {
  latency_histogram h;
  constexpr int kThreads = 8;
  constexpr int kSamples = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kSamples; ++i) h.record(static_cast<std::uint64_t>(i % 4096));
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kSamples);
}

TEST(Histogram, HugeValuesClampToLastBin) {
  latency_histogram h;
  h.record(~0ULL);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.percentile_ns(1.0), ~0ULL);
}

TEST(TimedFactory, RecordsEveryCounterOperation) {
  latency_histogram arrives, departs;
  timed_factory factory(make_counter_factory("dyn:1"), &arrives, &departs);
  serial_executor exec;
  dag_engine engine(factory, exec);
  auto [root, final_v] = engine.make();
  root->body = [] {
    fork2([] { fork2([] {}, [] {}); }, [] {});
  };
  engine.add(final_v);
  engine.add(root);
  exec.run_all(engine);
  // 2 spawns = 2 arrives; every obligation resolves with a depart:
  // make's initial counter has surplus 1 resolved by a depart too.
  EXPECT_EQ(arrives.count(), 2u);
  EXPECT_EQ(departs.count(), 3u);
  EXPECT_GT(arrives.percentile_ns(1.0), 0u);
}

TEST(TimedFactory, PreservesProgramSemantics) {
  latency_histogram arrives, departs;
  timed_factory factory(make_counter_factory("dyn"), &arrives, &departs);
  auto sched = make_scheduler("ws", 2, false);
  dag_engine engine(factory, *sched);
  auto [root, final_v] = engine.make();
  std::atomic<int> leaves{0};
  auto* l = &leaves;
  root->body = [l] {
    struct rec {
      static void go(std::atomic<int>* l, int d) {
        if (d == 0) {
          l->fetch_add(1);
          return;
        }
        fork2([l, d] { go(l, d - 1); }, [l, d] { go(l, d - 1); });
      }
    };
    rec::go(l, 6);
  };
  sched->run(engine, root, final_v);
  EXPECT_EQ(leaves.load(), 64);
  EXPECT_EQ(arrives.count(), 63u);
  EXPECT_EQ(engine.live_vertices(), 0u);
}

}  // namespace
}  // namespace spdag
