#include "outset/fc_outset.hpp"

#include <thread>

#include "mem/thread_slot.hpp"
#include "obs/trace.hpp"

namespace spdag {

namespace {

// Spin-wait hint (the lockperf idiom); falls back to nothing on targets
// without one — the periodic yield below still guarantees progress there.
inline void cpu_pause() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}

}  // namespace

bool fc_outset::add(outset_waiter* w) noexcept {
  const int ts = mem::thread_slot();
  if (ts >= 0) {
    pub_record& r = slots_[static_cast<std::size_t>(ts) % fc_slot_count];
    std::uint32_t expect = rec_empty;
    if (r.state.compare_exchange_strong(expect, rec_owned,
                                        std::memory_order_acquire,
                                        std::memory_order_relaxed)) {
      return run_request(w, w, 1, /*group=*/false);
    }
  }
  // Slot collision (two threads mapping to one record) or no thread slot at
  // all: the direct head CAS keeps the operation wait-free-ish instead of
  // queueing behind a stranger's spin.
  count_fallthrough();
  return direct_add(w);
}

std::uint32_t fc_outset::add_group(outset_waiter* head, outset_waiter* tail,
                                   std::uint32_t n) noexcept {
  const int ts = mem::thread_slot();
  if (ts >= 0) {
    pub_record& r = slots_[static_cast<std::size_t>(ts) % fc_slot_count];
    std::uint32_t expect = rec_empty;
    if (r.state.compare_exchange_strong(expect, rec_owned,
                                        std::memory_order_acquire,
                                        std::memory_order_relaxed)) {
      return run_request(head, tail, n, /*group=*/true) ? n : 0;
    }
  }
  count_fallthrough();
  return direct_add_group(head, tail, n);
}

// Precondition: the caller just claimed exactly one record (state ==
// rec_owned) — find it by identity is unnecessary, the claim CAS in
// add/add_group passed us here with the record still owned, so re-derive it
// from the thread slot (stable for the thread's lifetime).
bool fc_outset::run_request(outset_waiter* head, outset_waiter* tail,
                            std::uint32_t n, bool group) noexcept {
  const std::size_t my =
      static_cast<std::size_t>(mem::thread_slot()) % fc_slot_count;
  pub_record& r = slots_[my];
  r.head = head;
  r.tail = tail;
  r.n = n;
  r.group = group;
  r.state.store(rec_pending, std::memory_order_release);
  std::uint32_t spins = 0;
  for (;;) {
    const std::uint32_t st = r.state.load(std::memory_order_acquire);
    if (st == rec_done_captured || st == rec_done_rejected) {
      r.state.store(rec_empty, std::memory_order_release);
      return st == rec_done_captured;
    }
    // Grace window before grabbing the flag ourselves: flat combining only
    // combines if a published request stays visible long enough for a
    // combiner to gather it — grabbing the flag on the first iteration
    // degenerates to one-op batches. The pauses batch truly concurrent
    // publishers; the single yield hands the core to a concurrent publisher
    // on oversubscribed runs (the 1-core CI runner), after which one of the
    // parties combines for both.
    if (spins < 64) {
      cpu_pause();
      ++spins;
      continue;
    }
    if (spins == 64) {
      ++spins;
      std::this_thread::yield();
      continue;
    }
    // Nobody has served us yet: try to become the combiner ourselves. A
    // successful combine() always completes our own pending request, so the
    // next loop iteration reads the verdict.
    std::uint32_t free = 0;
    if (combiner_.compare_exchange_strong(free, 1, std::memory_order_acquire,
                                          std::memory_order_relaxed)) {
      combine(my);
      combiner_.store(0, std::memory_order_release);
      continue;
    }
    // Another thread holds the combiner flag and will either take our
    // request in its gather or release the flag to us. Bounded-courtesy
    // spin: yield periodically so a preempted combiner gets the core (the
    // 1-core CI runner depends on it).
    cpu_pause();
    if (++spins % 64 == 0) std::this_thread::yield();
  }
}

void fc_outset::combine(std::size_t my_slot) noexcept {
  // 1. Gather every pending request. The acquire load pairs with each
  //    requester's release publish, making its chain fields visible. The
  //    record array is part of this pool-cell object (kept live by the
  //    factory's object_bank), so this walk needs no epoch pin of its own —
  //    the waiter cells it links are covered by the out-set's standing
  //    reclamation argument (src/mem/epoch.hpp via mem/pool.hpp).
  pub_record* got[fc_slot_count];
  std::size_t k = 0;
  for (auto& r : slots_) {
    if (r.state.load(std::memory_order_acquire) == rec_pending) {
      got[k++] = &r;
    }
  }
  if (k == 0) return;

  // 2. Link the per-request chains (each internally pre-linked) into one
  //    batch chain. Between pending and done the combiner owns these
  //    waiters exclusively — the requesters are spinning, not reading.
  outset_waiter* batch_head = got[0]->head;
  outset_waiter* batch_tail = got[0]->tail;
  std::uint32_t total = got[0]->n;
  for (std::size_t i = 1; i < k; ++i) {
    batch_tail->next.store(got[i]->head, std::memory_order_relaxed);
    batch_tail = got[i]->tail;
    total += got[i]->n;
  }
  (void)total;

  // 3. Splice the whole batch with ONE head CAS — add_group's all-or-
  //    nothing contract (simple_outset.cpp): it either lands in front of
  //    the current list or loses atomically to finalize's sentinel
  //    exchange, rejecting every batched request whole.
  outset_waiter* old = head_.load(std::memory_order_acquire);
  bool captured;
  for (;;) {
    if (old == terminated_waiter()) {
      captured = false;
      break;
    }
    batch_tail->next.store(old, std::memory_order_relaxed);
    if (head_.compare_exchange_weak(old, batch_head,
                                    std::memory_order_release,
                                    std::memory_order_acquire)) {
      captured = true;
      break;
    }
    count_retry();
  }

  // 4. Deliver verdicts. On rejection each record's chain is re-severed at
  //    its own tail, undoing step 2's cross-record links, so a rejected
  //    add_group caller self-delivers exactly its own n waiters (the
  //    prefix-capture contract's captured == 0 case).
  std::uint32_t others = 0;
  for (std::size_t i = 0; i < k; ++i) {
    pub_record* r = got[i];
    if (captured) {
      count_add(r->n);
      if (r->group) count_group_add();
    } else {
      count_rejected(r->n);
      r->tail->next.store(nullptr, std::memory_order_relaxed);
    }
    if (static_cast<std::size_t>(r - slots_) != my_slot) ++others;
    r->state.store(captured ? rec_done_captured : rec_done_rejected,
                   std::memory_order_release);
  }
  count_combiner_pass();
  count_combined(others);
  obs::emit(obs::ev_combine, 0, others);
}

bool fc_outset::direct_add(outset_waiter* w) noexcept {
  // Verbatim simple_outset::add against the same head.
  outset_waiter* head = head_.load(std::memory_order_acquire);
  for (;;) {
    if (head == terminated_waiter()) {
      count_rejected();
      return false;
    }
    w->next.store(head, std::memory_order_relaxed);
    if (head_.compare_exchange_weak(head, w, std::memory_order_release,
                                    std::memory_order_acquire)) {
      count_add();
      return true;
    }
    count_retry();
  }
}

std::uint32_t fc_outset::direct_add_group(outset_waiter* head,
                                          outset_waiter* tail,
                                          std::uint32_t n) noexcept {
  // Verbatim simple_outset::add_group against the same head.
  outset_waiter* old = head_.load(std::memory_order_acquire);
  for (;;) {
    if (old == terminated_waiter()) {
      count_rejected(n);
      return 0;
    }
    tail->next.store(old, std::memory_order_relaxed);
    if (head_.compare_exchange_weak(old, head, std::memory_order_release,
                                    std::memory_order_acquire)) {
      count_add(n);
      count_group_add();
      return n;
    }
    count_retry();
  }
}

void fc_outset::finalize(waiter_sink sink, void* ctx) {
  // One exchange terminates the out-set; a combiner splice either landed
  // before this (its waiters drain here) or its CAS now sees the sentinel
  // and rejects the whole batch back to the callers.
  outset_waiter* w =
      head_.exchange(terminated_waiter(), std::memory_order_acq_rel);
  drain_chain(w, sink, ctx);
}

void fc_outset::reset(waiter_sink sink, void* ctx) {
  // Non-concurrent by contract: no request can be in flight, so every
  // publication slot is empty and only the list needs scrubbing.
  scrub_chain(head_.exchange(nullptr, std::memory_order_relaxed), sink, ctx);
}

}  // namespace spdag
