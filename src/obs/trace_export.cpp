#include "obs/trace_export.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

namespace spdag::obs::detail {

namespace {

// How each event id renders in the Chrome trace-event stream.
enum class ev_kind : int { none, span_begin, span_end, instant, counter };

struct ev_info {
  ev_kind kind = ev_kind::none;
  int span = -1;           // span_begin / span_end only
  const char* name = "";   // slice / marker / counter-track name
};

const ev_info& info_for(std::uint16_t id) noexcept {
  static const ev_info table[event_id_count] = {
      /* ev_none */ {},
      {ev_kind::span_begin, sp_work, "work"},
      {ev_kind::span_end, sp_work, "work"},
      {ev_kind::span_begin, sp_idle, "idle"},
      {ev_kind::span_end, sp_idle, "idle"},
      {ev_kind::span_begin, sp_steal, "steal"},
      {ev_kind::span_end, sp_steal, "steal"},
      {ev_kind::span_begin, sp_drain, "drain"},
      {ev_kind::span_end, sp_drain, "drain"},
      {ev_kind::span_begin, sp_finalize, "finalize"},
      {ev_kind::span_end, sp_finalize, "finalize"},
      {ev_kind::span_begin, sp_trim, "trim"},
      {ev_kind::span_end, sp_trim, "trim"},
      {ev_kind::instant, -1, "steal_attempt"},
      {ev_kind::instant, -1, "steal_success"},
      {ev_kind::instant, -1, "drain_enqueue"},
      {ev_kind::instant, -1, "drain_steal"},
      {ev_kind::instant, -1, "drain_handoff"},
      {ev_kind::instant, -1, "spawn"},
      {ev_kind::instant, -1, "claim_dec"},
      {ev_kind::instant, -1, "mag_refill"},
      {ev_kind::instant, -1, "mag_flush"},
      {ev_kind::instant, -1, "slab_carve"},
      {ev_kind::instant, -1, "slab_release"},
      {ev_kind::instant, -1, "submit"},
      {ev_kind::instant, -1, "admit"},
      {ev_kind::instant, -1, "reject"},
      {ev_kind::instant, -1, "submit_complete"},
      {ev_kind::instant, -1, "epoch_advance"},
      {ev_kind::instant, -1, "slab_retire"},
      {ev_kind::instant, -1, "slab_reclaim"},
      {ev_kind::instant, -1, "eliminate"},
      {ev_kind::instant, -1, "combine"},
      {ev_kind::counter, -1, "runnable"},
      {ev_kind::counter, -1, "drains_pending"},
      {ev_kind::counter, -1, "slab_kib"},
      {ev_kind::counter, -1, "inflight"},
      {ev_kind::counter, -1, "epoch_lag"},
  };
  static const ev_info unknown = {};
  return id < event_id_count ? table[id] : unknown;
}

// One rendered trace-event line, pre-serialization, so a per-track sort by
// start time keeps every tid's file order monotone (trace_validate.py
// asserts this; Perfetto itself is order-tolerant).
struct out_event {
  double ts_us = 0;
  double dur_us = 0;   // X only
  char ph = 'i';
  const char* name = "";
  bool has_args = false;
  std::uint16_t a = 0;
  std::uint32_t b = 0;
};

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  out += buf;
}

void append_event_json(std::string& out, const out_event& e, int tid) {
  // Built by append throughout (gcc 12 -Wrestrict, PR 105651).
  out += "    {\"pid\":1,\"tid\":";
  out += std::to_string(tid);
  out += ",\"ph\":\"";
  out += e.ph;
  out += "\",\"ts\":";
  append_double(out, e.ts_us);
  if (e.ph == 'X') {
    out += ",\"dur\":";
    append_double(out, e.dur_us);
  }
  out += ",\"name\":\"";
  out += e.name;
  out += "\",\"cat\":\"spdag\"";
  if (e.ph == 'i') out += ",\"s\":\"t\"";
  if (e.ph == 'C') {
    out += ",\"args\":{\"value\":";
    out += std::to_string(e.b);
    out += "}";
  } else if (e.has_args) {
    out += ",\"args\":{\"a\":";
    out += std::to_string(e.a);
    out += ",\"b\":";
    out += std::to_string(e.b);
    out += "}";
  }
  out += "}";
}

}  // namespace

int export_chrome_trace(const std::string& path,
                        const std::vector<track_snapshot>& tracks,
                        double ns_per_tick, std::uint64_t base_ticks,
                        trace_mode mode, std::size_t ring_cap,
                        std::uint64_t dropped_total) {
  const double us_per_tick = ns_per_tick * 1e-3;
  auto to_us = [&](std::uint64_t ticks) {
    // Events straddling a reset re-anchor can predate base_ticks; signed
    // math keeps them ordered instead of wrapping.
    return static_cast<double>(static_cast<std::int64_t>(ticks - base_ticks)) *
           us_per_tick;
  };

  std::string out;
  out += "{\n  \"displayTimeUnit\": \"ms\",\n";
  out += "  \"otherData\": {\"mode\": \"";
  out += trace_summary::mode_name(mode);
  out += "\", \"ring_capacity\": ";
  out += std::to_string(ring_cap);
  out += ", \"dropped\": ";
  out += std::to_string(dropped_total);
  out += "},\n  \"traceEvents\": [\n";
  out +=
      "    {\"pid\":1,\"ph\":\"M\",\"name\":\"process_name\","
      "\"args\":{\"name\":\"spdag\"}}";

  for (const auto& t : tracks) {
    out += ",\n    {\"pid\":1,\"tid\":";
    out += std::to_string(t.slot);
    out += ",\"ph\":\"M\",\"name\":\"thread_name\","
           "\"args\":{\"name\":\"worker-slot-";
    out += std::to_string(t.slot);
    out += "\"}}";

    // Pair begin/end events into complete slices. The ring drops oldest on
    // wrap, so an end without its begin (or a begin without its end at the
    // snapshot edge) is skipped rather than guessed at.
    bool span_open[span_id_count] = {};
    double span_ts[span_id_count] = {};
    std::vector<out_event> evs;
    evs.reserve(t.events.size());
    for (const trace_event& e : t.events) {
      const ev_info& info = info_for(e.id);
      const double ts = to_us(e.ts);
      switch (info.kind) {
        case ev_kind::span_begin:
          span_open[info.span] = true;
          span_ts[info.span] = ts;
          break;
        case ev_kind::span_end:
          if (span_open[info.span]) {
            span_open[info.span] = false;
            out_event oe;
            oe.ph = 'X';
            oe.ts_us = span_ts[info.span];
            oe.dur_us = ts > span_ts[info.span] ? ts - span_ts[info.span] : 0;
            oe.name = info.name;
            evs.push_back(oe);
          }
          break;
        case ev_kind::instant: {
          out_event oe;
          oe.ph = 'i';
          oe.ts_us = ts;
          oe.name = info.name;
          oe.has_args = e.a != 0 || e.b != 0;
          oe.a = e.a;
          oe.b = e.b;
          evs.push_back(oe);
          break;
        }
        case ev_kind::counter: {
          out_event oe;
          oe.ph = 'C';
          oe.ts_us = ts;
          oe.name = info.name;
          oe.b = e.b;
          evs.push_back(oe);
          break;
        }
        case ev_kind::none:
          break;
      }
    }
    std::stable_sort(evs.begin(), evs.end(),
                     [](const out_event& x, const out_event& y) {
                       return x.ts_us < y.ts_us;
                     });
    for (const out_event& e : evs) {
      out += ",\n";
      append_event_json(out, e, t.slot);
    }
  }

  out += "\n  ]\n}\n";

  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) {
    std::fprintf(stderr, "trace dump: cannot open %s\n", path.c_str());
    return 1;
  }
  f.write(out.data(), static_cast<std::streamsize>(out.size()));
  f.flush();
  if (!f) {
    std::fprintf(stderr, "trace dump: write failed for %s\n", path.c_str());
    return 1;
  }
  return 0;
}

}  // namespace spdag::obs::detail
