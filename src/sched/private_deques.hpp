#pragma once
// Work stealing with private deques and explicit steal requests.
//
// This is the receiver-initiated algorithm of Acar, Charguéraud & Rainey,
// "Scheduling Parallel Programs by Work Stealing with Private Deques"
// (PPoPP'13) — reference [2] of the reproduced paper and the scheduler its
// evaluation actually ran on. Unlike Chase-Lev, each worker's deque is a
// plain (unsynchronized) container; thieves never touch it. Instead:
//
//   * every worker owns a `request` cell thieves CAS their id into, and a
//     `transfer` cell where victims deliver;
//   * a busy worker polls its request cell between vertex executions and
//     answers with its OLDEST task (or a decline when it has nothing to
//     spare);
//   * an idle thief publishes a request to a random victim and spins on its
//     own transfer cell — declining any incoming request while it spins,
//     which is what makes thief-thief encounters deadlock-free.
//
// The trade: task execution pays zero synchronization on the deque, at the
// cost of steal latency bounded by the victim's polling interval.
//
// Out-set drain tasks (parallel finalize, see outset.hpp): this scheduler
// keeps the executor default — drains run inline on the enqueuing worker
// through the flattening trampoline. A shared drain lane would cut against
// the private-deque model (nothing here is stealable without a request);
// receiver-initiated drain hand-off is a possible follow-up.

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sched/scheduler_base.hpp"
#include "util/cache_aligned.hpp"
#include "util/rng.hpp"

namespace spdag {

struct private_deque_config {
  std::size_t workers = 0;  // 0 = hardware_core_count()
  bool pin_threads = false;
  // Failed steal attempts before a worker parks.
  std::size_t steal_attempts_before_park = 16;
  std::chrono::microseconds park_timeout{500};
};

class private_deque_scheduler final : public scheduler_base {
 public:
  explicit private_deque_scheduler(private_deque_config cfg = {});
  ~private_deque_scheduler() override;

  private_deque_scheduler(const private_deque_scheduler&) = delete;
  private_deque_scheduler& operator=(const private_deque_scheduler&) = delete;

  void enqueue(vertex* v) override;
  void run(dag_engine& engine, vertex* root, vertex* final_v) override;

  std::size_t worker_count() const override { return workers_.size(); }
  scheduler_totals totals() const override;
  void reset_totals() override;

 private:
  static constexpr int no_request = -1;
  // Transfer-cell sentinels (never valid vertex addresses).
  static vertex* waiting() { return reinterpret_cast<vertex*>(std::uintptr_t{1}); }
  static vertex* declined() { return reinterpret_cast<vertex*>(std::uintptr_t{2}); }

  // Stat counters are relaxed atomics: worker-local (uncontended) on the
  // hot path, but totals()/reset_totals() may run while idle workers are
  // still bumping their park counts.
  struct worker {
    std::deque<vertex*> tasks;  // private: owner-only
    cache_aligned<std::atomic<int>> request{no_request};
    cache_aligned<std::atomic<vertex*>> transfer{nullptr};
    std::atomic<std::uint64_t> executions{0};
    std::atomic<std::uint64_t> steals{0};
    std::atomic<std::uint64_t> failed_steals{0};
    std::atomic<std::uint64_t> parks{0};
    std::atomic<std::uint64_t> requests_served{0};
    std::atomic<std::uint64_t> requests_declined{0};
  };

  void worker_main(std::size_t id);
  // Answers a pending steal request; `can_give` = serve the oldest task,
  // otherwise decline.
  void communicate(std::size_t id, bool can_give);
  vertex* try_steal(std::size_t id, std::size_t victim);
  vertex* pop_injected();
  void unpark_some();

  private_deque_config cfg_;
  std::vector<std::unique_ptr<padded<worker>>> workers_;
  std::vector<std::thread> threads_;

  std::mutex inject_mu_;
  std::deque<vertex*> injected_;
  std::atomic<std::size_t> injected_size_{0};

  std::mutex park_mu_;
  std::condition_variable park_cv_;
  std::atomic<int> parked_{0};

  std::atomic<bool> shutdown_{false};
  std::atomic<dag_engine*> engine_{nullptr};
  std::atomic<vertex*> stop_vertex_{nullptr};
  std::atomic<int> active_{0};

  std::mutex done_mu_;
  std::condition_variable done_cv_;
  std::atomic<bool> done_{true};
};

}  // namespace spdag
