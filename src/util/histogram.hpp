#pragma once
// Lock-free log-scale latency histogram.
//
// 64 power-of-two nanosecond bins, bumped with relaxed atomics, so it can
// sit on a measurement path shared by many workers without itself becoming
// a contention source. Percentile queries are approximate (bin-granular),
// which is exactly enough to see contention: contended CAS loops show up as
// a fat tail several bins to the right of the uncontended mode.

#include <atomic>
#include <cstdint>
#include <string>

namespace spdag {

class latency_histogram {
 public:
  static constexpr int bin_count = 64;

  void record(std::uint64_t ns) noexcept {
    bins_[bin_for(ns)].fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t count() const noexcept {
    std::uint64_t n = 0;
    for (const auto& b : bins_) n += b.load(std::memory_order_relaxed);
    return n;
  }

  // Upper bound (in ns) of the bin containing the q-quantile, q in [0, 1].
  std::uint64_t percentile_ns(double q) const noexcept {
    const std::uint64_t total = count();
    if (total == 0) return 0;
    const double target = q * static_cast<double>(total);
    double seen = 0;
    for (int i = 0; i < bin_count; ++i) {
      seen += static_cast<double>(bins_[i].load(std::memory_order_relaxed));
      if (seen >= target) return bin_upper_ns(i);
    }
    return bin_upper_ns(bin_count - 1);
  }

  double mean_ns() const noexcept {
    const std::uint64_t total = count();
    if (total == 0) return 0;
    double acc = 0;
    for (int i = 0; i < bin_count; ++i) {
      // Midpoint of the bin as the representative value.
      const double mid = i == 0 ? 0.5
                                : 1.5 * static_cast<double>(1ULL << (i - 1));
      acc += mid * static_cast<double>(bins_[i].load(std::memory_order_relaxed));
    }
    return acc / static_cast<double>(total);
  }

  void reset() noexcept {
    for (auto& b : bins_) b.store(0, std::memory_order_relaxed);
  }

  // Merges another histogram into this one (quiescent use).
  void merge(const latency_histogram& other) noexcept {
    for (int i = 0; i < bin_count; ++i) {
      bins_[i].fetch_add(other.bins_[i].load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    }
  }

  std::uint64_t bin(int i) const noexcept {
    return bins_[i].load(std::memory_order_relaxed);
  }

  // "<=1ns", "<=2ns", ... label for a bin (reporting).
  static std::string bin_label(int i) {
    return "<=" + std::to_string(bin_upper_ns(i)) + "ns";
  }

 private:
  static int bin_for(std::uint64_t ns) noexcept {
    if (ns <= 1) return 0;
    const int bit = 64 - __builtin_clzll(ns - 1);  // ceil(log2(ns))
    return bit >= bin_count ? bin_count - 1 : bit;
  }
  static constexpr std::uint64_t bin_upper_ns(int i) noexcept {
    return i >= 63 ? ~0ULL : (1ULL << i);
  }

  std::atomic<std::uint64_t> bins_[bin_count] = {};
};

}  // namespace spdag
