#pragma once
// Sweep runner used by every figure-reproduction benchmark.
//
// Builds a fresh runtime per configuration, repeats the workload, and
// reports the paper's metric: operations per second per core, averaged over
// repetitions (the artifact's default was 30 repetitions; ours is
// environment-scalable via SPDAG_RUNS).

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "mem/registry.hpp"
#include "outset/outset.hpp"
#include "sched/scheduler_base.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"

namespace spdag::harness {

struct bench_config {
  std::string workload = "fanin";  // "fanin" | "indegree2" | "fib" | "churn"
  std::string algo = "dyn";        // counter spec (see make_counter_factory)
  std::size_t workers = 1;
  std::uint64_t n = 1 << 20;       // leaf count (or fib argument)
  std::uint64_t work_ns = 0;       // per-leaf dummy work
  int repetitions = 3;
  std::string alloc = "pool";      // alloc spec (see make_pool_registry)
};

struct bench_result {
  bench_config cfg;
  double mean_s = 0;
  double min_s = 0;
  double max_s = 0;
  double rsd = 0;           // relative stddev across repetitions
  double ops_per_s = 0;     // counter ops / mean seconds
  double ops_per_s_per_core = 0;
  // Per-pool allocation stats snapshotted after the measured runs, plus the
  // warm-to-end upstream-allocation delta: zero means the measured runs
  // never touched malloc (the `alloc:pool` steady-state claim).
  std::vector<pool_registry_row> pools;
  std::uint64_t measured_slab_growths = 0;
  // Broadcast-side stats over the whole config (warm-up included): the
  // out-set totals (subtrees_offloaded = finalize work units handed off)
  // and scheduler totals (drains_executed/drains_stolen = where they ran).
  outset_totals outsets;
  scheduler_totals sched;
};

// Runs one configuration to completion and returns the aggregate.
bench_result run_config(const bench_config& cfg);

// One line per pool: allocs / recycles / slab growths / cross-worker frees.
void print_pool_stats(std::ostream& os,
                      const std::vector<pool_registry_row>& rows);

// One line of broadcast stats: adds / delivered / subtree drains offloaded
// and where the scheduler ran them (executed / stolen by other workers /
// handed off through the scheduler's transfer mechanism). Identical fields
// for both schedulers so their drain lanes compare like for like.
void print_broadcast_stats(std::ostream& os, const outset_totals& outsets,
                           const scheduler_totals& sched);

// Standard sweep values -----------------------------------------------------

// Worker counts 1..max_workers thinned to ~`points` values (paper sweeps
// 1..40 processors).
std::vector<std::size_t> worker_sweep(std::size_t max_workers,
                                      std::size_t points = 8);

// Reads shared benchmark options (-n, -proc, -runs, -workload, ...) with
// environment fallbacks (SPDAG_N, SPDAG_PROC, SPDAG_RUNS, ...).
struct common_options {
  std::uint64_t n;
  std::size_t max_proc;
  int runs;
  bool csv;
};
common_options read_common(const options& opts, std::uint64_t default_n);

// Emits one table in both grid and (optionally) CSV form.
void emit(result_table& table, bool csv);

}  // namespace spdag::harness
