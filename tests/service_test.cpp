// dag_service semantics across both schedulers: submit/wait round trips,
// exactly-once completion under concurrent clients, admission backpressure
// (block and reject), shutdown drain/reject conservation, the idle-timer
// pool trim, and the checked try_trim_pools no-op contract.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "dag/engine.hpp"
#include "dag/serial_executor.hpp"
#include "incounter/factory.hpp"
#include "mem/registry.hpp"
#include "service/mpmc_queue.hpp"
#include "service/service.hpp"

namespace spdag {
namespace {

using namespace std::chrono_literals;

service_config base_cfg(const std::string& sched, std::size_t workers = 2) {
  service_config cfg;
  cfg.rt.workers = workers;
  cfg.rt.sched = sched;
  return cfg;
}

// Polls `pred` until true or the deadline passes.
template <typename Pred>
bool eventually(Pred pred, std::chrono::milliseconds deadline = 5000ms) {
  const auto until = std::chrono::steady_clock::now() + deadline;
  while (std::chrono::steady_clock::now() < until) {
    if (pred()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return pred();
}

class ServiceTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ServiceTest, SubmitWaitRoundTrip) {
  dag_service svc(base_cfg(GetParam()));
  std::atomic<int> ran{0};
  auto t = svc.submit([&ran] { ran.fetch_add(1); });
  ASSERT_TRUE(t.valid());
  EXPECT_TRUE(t.wait());
  EXPECT_EQ(ran.load(), 1);
  const auto s = svc.stats();
  EXPECT_EQ(s.submitted, 1u);
  EXPECT_EQ(s.admitted, 1u);
  EXPECT_EQ(s.completed, 1u);
  EXPECT_EQ(s.rejected, 0u);
}

TEST_P(ServiceTest, NestedParallelismInsideSubmission) {
  dag_service svc(base_cfg(GetParam()));
  std::atomic<int> leaves{0};
  auto t = svc.submit([&leaves] {
    fork2([&leaves] { fork2([&leaves] { leaves.fetch_add(1); },
                            [&leaves] { leaves.fetch_add(1); }); },
          [&leaves] { leaves.fetch_add(1); });
  });
  ASSERT_TRUE(t.valid());
  EXPECT_TRUE(t.wait());
  EXPECT_EQ(leaves.load(), 3);
}

TEST_P(ServiceTest, ConcurrentClientsCompleteExactlyOnce) {
  constexpr int kClients = 4;
  constexpr int kPerClient = 200;
  dag_service svc(base_cfg(GetParam()));
  std::atomic<std::uint64_t> ran{0};
  std::atomic<int> ok_waits{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (int i = 0; i < kPerClient; ++i) {
        auto t = svc.submit([&ran] { ran.fetch_add(1); });
        ASSERT_TRUE(t.valid());
        if (t.wait()) ok_waits.fetch_add(1);
      }
    });
  }
  for (auto& th : clients) th.join();
  EXPECT_EQ(ran.load(), static_cast<std::uint64_t>(kClients) * kPerClient);
  EXPECT_EQ(ok_waits.load(), kClients * kPerClient);
  const auto s = svc.stats();
  EXPECT_EQ(s.submitted, static_cast<std::uint64_t>(kClients) * kPerClient);
  EXPECT_EQ(s.completed, s.admitted);
  EXPECT_EQ(s.completed + s.rejected, s.submitted);
  EXPECT_EQ(s.inflight, 0u);
}

TEST_P(ServiceTest, RejectPolicyRefusesPastTheCap) {
  auto cfg = base_cfg(GetParam(), /*workers=*/2);
  cfg.max_inflight = 2;
  cfg.on_full = admission_policy::reject;
  dag_service svc(cfg);
  std::atomic<bool> gate{false};
  auto spin_until_gate = [&gate] {
    while (!gate.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  };
  auto t1 = svc.submit(spin_until_gate);
  auto t2 = svc.submit(spin_until_gate);
  ASSERT_TRUE(t1.valid());
  ASSERT_TRUE(t2.valid());
  auto t3 = svc.submit([] {});  // cap is 2: refused at the door
  EXPECT_FALSE(t3.valid());
  EXPECT_FALSE(t3.wait());
  gate.store(true, std::memory_order_release);
  EXPECT_TRUE(t1.wait());
  EXPECT_TRUE(t2.wait());
  const auto s = svc.stats();
  EXPECT_EQ(s.rejected, 1u);
  EXPECT_EQ(s.completed, 2u);
  EXPECT_EQ(s.submitted, 3u);
  EXPECT_EQ(s.peak_inflight, 2u);
}

TEST_P(ServiceTest, BlockPolicyWaitsForASlot) {
  auto cfg = base_cfg(GetParam(), /*workers=*/2);
  cfg.max_inflight = 1;
  cfg.on_full = admission_policy::block;
  dag_service svc(cfg);
  std::atomic<bool> gate{false};
  std::atomic<int> ran{0};
  auto t1 = svc.submit([&gate, &ran] {
    while (!gate.load(std::memory_order_acquire)) std::this_thread::yield();
    ran.fetch_add(1);
  });
  ASSERT_TRUE(t1.valid());
  std::thread blocked([&svc, &ran] {
    auto t2 = svc.submit([&ran] { ran.fetch_add(1); });
    ASSERT_TRUE(t2.valid());  // block policy: admitted once a slot frees
    EXPECT_TRUE(t2.wait());
  });
  // The second submit must be parked in admission, not rejected.
  ASSERT_TRUE(eventually([&svc] { return svc.stats().blocked >= 1; }));
  EXPECT_EQ(svc.stats().rejected, 0u);
  gate.store(true, std::memory_order_release);
  blocked.join();
  EXPECT_TRUE(t1.wait());
  EXPECT_EQ(ran.load(), 2);
  EXPECT_EQ(svc.stats().completed, 2u);
}

TEST_P(ServiceTest, ShutdownDrainCompletesInflight) {
  constexpr int kJobs = 64;
  auto svc = std::make_unique<dag_service>(base_cfg(GetParam()));
  std::atomic<int> ran{0};
  std::vector<ticket> tickets;
  tickets.reserve(kJobs);
  for (int i = 0; i < kJobs; ++i) {
    tickets.push_back(svc->submit([&ran] { ran.fetch_add(1); }));
    ASSERT_TRUE(tickets.back().valid());
  }
  svc->shutdown(dag_service::drain_mode::drain);
  for (auto& t : tickets) EXPECT_TRUE(t.wait());
  EXPECT_EQ(ran.load(), kJobs);
  const auto s = svc->stats();
  EXPECT_EQ(s.completed, static_cast<std::uint64_t>(kJobs));
  EXPECT_EQ(s.inflight, 0u);
  // Tickets may not outlive the service.
  tickets.clear();
  svc.reset();
}

TEST_P(ServiceTest, SubmitAfterShutdownRejects) {
  dag_service svc(base_cfg(GetParam()));
  EXPECT_TRUE(svc.submit([] {}).wait());
  svc.shutdown();
  auto t = svc.submit([] {});
  EXPECT_FALSE(t.valid());
  const auto s = svc.stats();
  EXPECT_EQ(s.rejected, 1u);
  EXPECT_EQ(s.completed + s.rejected, s.submitted);
}

TEST_P(ServiceTest, ShutdownRejectConservesAndNeverHangs) {
  constexpr int kClients = 4;
  constexpr int kPerClient = 100;
  dag_service svc(base_cfg(GetParam()));
  std::atomic<std::uint64_t> ran{0};
  std::vector<std::vector<ticket>> tickets(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    tickets[static_cast<std::size_t>(c)].reserve(kPerClient);
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        tickets[static_cast<std::size_t>(c)].push_back(
            svc.submit([&ran] { ran.fetch_add(1); }));
      }
    });
  }
  std::this_thread::sleep_for(1ms);
  svc.shutdown(dag_service::drain_mode::reject);
  for (auto& th : clients) th.join();
  // Every valid ticket resolves (completed or rejected) — no hangs.
  std::uint64_t completed_waits = 0, invalid = 0;
  for (auto& per_client : tickets) {
    for (auto& t : per_client) {
      if (!t.valid()) {
        ++invalid;
        EXPECT_FALSE(t.wait());
      } else if (t.wait()) {
        ++completed_waits;
      }
    }
  }
  const auto s = svc.stats();
  EXPECT_EQ(s.submitted, static_cast<std::uint64_t>(kClients) * kPerClient);
  EXPECT_EQ(s.completed + s.rejected, s.submitted);
  EXPECT_EQ(s.completed, s.admitted);
  EXPECT_EQ(s.completed, completed_waits);
  EXPECT_EQ(s.completed, ran.load());
  EXPECT_GE(s.rejected, invalid);  // door rejects + any drained-queue rejects
  EXPECT_EQ(s.inflight, 0u);
}

// Regression for the admit/shutdown TOCTOU: a submitter that passes the
// stop check just before shutdown() must either be visible to the drain
// protocol (inflight_ raised before the dispatcher's exit test can pass)
// or be rejected — never left holding a valid ticket nobody will resolve.
// Each iteration races clients submitting flat-out against an almost
// immediate drain shutdown; a regression shows up as wait() hanging (test
// timeout) or a conservation failure.
TEST_P(ServiceTest, DrainShutdownRacingSubmittersNeverStrandsATicket) {
  constexpr int kIterations = 20;
  constexpr int kClients = 3;
  constexpr int kMaxPerClient = 5000;
  for (int it = 0; it < kIterations; ++it) {
    dag_service svc(base_cfg(GetParam()));
    std::atomic<bool> go{false};
    std::vector<std::vector<ticket>> tickets(kClients);
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        while (!go.load(std::memory_order_acquire)) {
        }
        for (int i = 0; i < kMaxPerClient; ++i) {
          tickets[static_cast<std::size_t>(c)].push_back(svc.submit([] {}));
        }
      });
    }
    go.store(true, std::memory_order_release);
    // Vary the race window (µs scale, busy-wait — yielding here deschedules
    // to the flat-out submitters and costs milliseconds per yield) so
    // shutdown lands at different points in the submit hot path.
    const auto window = std::chrono::microseconds(it * 40);
    for (const auto until = std::chrono::steady_clock::now() + window;
         std::chrono::steady_clock::now() < until;) {
    }
    svc.shutdown(dag_service::drain_mode::drain);
    for (auto& th : clients) th.join();
    std::uint64_t completed_waits = 0;
    for (auto& per_client : tickets) {
      for (auto& t : per_client) {
        if (t.valid() && t.wait()) ++completed_waits;
      }
    }
    const auto s = svc.stats();
    ASSERT_EQ(s.completed + s.rejected, s.submitted);
    ASSERT_EQ(s.completed, s.admitted);
    ASSERT_EQ(s.completed, completed_waits);
    ASSERT_EQ(s.inflight, 0u);
    tickets.clear();  // tickets may not outlive the service
  }
}

TEST_P(ServiceTest, IdleTimerTrimsPoolsBetweenBursts) {
  auto cfg = base_cfg(GetParam(), /*workers=*/2);
  cfg.idle_trim_after = 1ms;
  dag_service svc(cfg);
  auto burst = [&svc](int jobs) {
    std::atomic<std::uint64_t> leaves{0};
    std::vector<ticket> tickets;
    tickets.reserve(static_cast<std::size_t>(jobs));
    for (int i = 0; i < jobs; ++i) {
      tickets.push_back(svc.submit([&leaves] {
        // Allocation-heavy: a depth-4 fork tree (~16 leaves) churns vertex
        // and dec-pair pool cells on every submission.
        fork2(
            [&leaves] {
              fork2([&leaves] { fork2([&leaves] { leaves.fetch_add(1); },
                                      [&leaves] { leaves.fetch_add(1); }); },
                    [&leaves] { leaves.fetch_add(1); });
            },
            [&leaves] {
              fork2([&leaves] { leaves.fetch_add(1); },
                    [&leaves] { leaves.fetch_add(1); });
            });
      }));
    }
    std::uint64_t ok = 0;
    for (auto& t : tickets) ok += t.wait() ? 1 : 0;
    return ok;
  };
  EXPECT_EQ(burst(500), 500u);
  // The burst is over; the idle timer must fire on its own and give slabs
  // back upstream. (retained() does not reach exactly 0: trim leaves free
  // cells of pinned slabs on the recycle list — so assert the parts a trim
  // fully controls: flushed magazines and released slabs.)
  ASSERT_TRUE(eventually([&svc] {
    const auto s = svc.stats();
    return s.idle_trims >= 1 && s.slabs_released >= 1;
  })) << "idle timer never released slabs; idle_trims="
      << svc.stats().idle_trims;
  ASSERT_TRUE(eventually([&svc] {
    return svc.rt().pools().totals().magazine_cells == 0;
  })) << "trim left magazine cells; retained="
      << svc.rt().pools().totals().retained();
  // The service must still be fully serviceable after trimming.
  EXPECT_EQ(burst(100), 100u);
  const auto s = svc.stats();
  EXPECT_EQ(s.completed, 600u);
  EXPECT_EQ(s.completed + s.rejected, s.submitted);
}

INSTANTIATE_TEST_SUITE_P(Schedulers, ServiceTest,
                         ::testing::Values("ws", "private"));

// --- try_trim_pools contract (deterministic, serial executor) ---------------

TEST(TryTrimPools, RefusesWhileLiveAndTrimsAtQuiescence) {
  serial_executor exec;
  slab_pool_registry pools;
  auto factory = make_counter_factory("dyn");
  dag_engine engine(*factory, exec, {.pools = &pools});

  auto [root, final_v] = engine.make();
  root->body = [] {};
  final_v->body = [] {};
  engine.add(root);
  ASSERT_GT(engine.live_vertices(), 0u);
  std::size_t released = 0xdead;
  EXPECT_FALSE(engine.try_trim_pools(&released));
  EXPECT_EQ(released, 0xdeadu);  // refused without touching the out-param

  exec.run_all(engine);
  ASSERT_EQ(engine.live_vertices(), 0u);
  EXPECT_TRUE(engine.try_trim_pools(&released));
  EXPECT_EQ(pools.totals().retained(), 0u);
  // And again: trimming an already-trimmed engine is a clean success.
  EXPECT_TRUE(engine.try_trim_pools());
}

// --- the submission queue in isolation --------------------------------------

TEST(MpmcQueue, FifoSingleThread) {
  mpmc_queue<int> q;
  int values[3] = {1, 2, 3};
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pop(), nullptr);
  for (int& v : values) ASSERT_TRUE(q.push(&v));
  EXPECT_EQ(q.approx_size(), 3u);
  EXPECT_EQ(q.pop(), &values[0]);
  EXPECT_EQ(q.pop(), &values[1]);
  EXPECT_EQ(q.pop(), &values[2]);
  EXPECT_EQ(q.pop(), nullptr);
  EXPECT_TRUE(q.empty());
}

TEST(MpmcQueue, NodeArenaStopsGrowingOnReuse) {
  mpmc_queue<int> q;
  int v = 7;
  for (int round = 0; round < 10000; ++round) {
    ASSERT_TRUE(q.push(&v));
    ASSERT_EQ(q.pop(), &v);
  }
  // Steady-state push/pop recycles through the free list: the arena high
  // water mark stays a handful of nodes, not 10000.
  EXPECT_LE(q.nodes_allocated(), 8u);
  EXPECT_EQ(q.pushes(), 10000u);
  EXPECT_EQ(q.pops(), 10000u);
}

TEST(MpmcQueue, ExhaustedArenaRejectsCleanly) {
  // One chunk = 256 nodes; one is the resident dummy, so exactly 255 values
  // fit before the arena cap. The 256th push must reject — returning false
  // and counting it — not throw, and must leave the queue fully usable.
  mpmc_queue<int, 1> q;
  int v = 7;
  std::size_t accepted = 0;
  while (q.push(&v)) ++accepted;
  EXPECT_EQ(accepted, 255u);
  EXPECT_EQ(q.failed_pushes(), 1u);
  EXPECT_EQ(q.pushes(), 255u);
  // Rejection is non-destructive: drain, then the freed nodes recycle.
  for (std::size_t i = 0; i < accepted; ++i) ASSERT_EQ(q.pop(), &v);
  EXPECT_EQ(q.pop(), nullptr);
  EXPECT_TRUE(q.push(&v));
  EXPECT_EQ(q.pop(), &v);
  EXPECT_EQ(q.nodes_allocated(), 256u);  // never grew past the cap
}

TEST(MpmcQueue, ConcurrentProducersConsumersLoseNothing) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 20000;
  mpmc_queue<int> q;
  std::vector<int> payload(kProducers * kPerProducer);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<int>(i);
  }
  std::atomic<std::uint64_t> popped{0};
  std::atomic<std::uint64_t> sum{0};
  std::atomic<bool> done_producing{false};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(
            q.push(&payload[static_cast<std::size_t>(p * kPerProducer + i)]));
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      for (;;) {
        if (int* v = q.pop()) {
          sum.fetch_add(static_cast<std::uint64_t>(*v),
                        std::memory_order_relaxed);
          popped.fetch_add(1, std::memory_order_relaxed);
        } else if (done_producing.load(std::memory_order_acquire) &&
                   q.empty()) {
          return;
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[static_cast<std::size_t>(p)].join();
  done_producing.store(true, std::memory_order_release);
  for (int c = 0; c < kConsumers; ++c) {
    threads[static_cast<std::size_t>(kProducers + c)].join();
  }
  const std::uint64_t n = static_cast<std::uint64_t>(kProducers) * kPerProducer;
  EXPECT_EQ(popped.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);  // every payload seen exactly once
}

}  // namespace
}  // namespace spdag
