#include "snzi/tree.hpp"

#include <algorithm>

namespace spdag::snzi {

snzi_tree::snzi_tree(std::uint64_t initial_surplus, tree_config cfg)
    : root_(0, cfg.stats) {
  ctx_.root = &root_;
  ctx_.pairs = cfg.pairs != nullptr
                   ? cfg.pairs
                   : &child_pair_pool(default_pool_registry());
  ctx_.stats = cfg.stats;
  ctx_.grow_threshold = cfg.grow_threshold;
  ctx_.reclaim = cfg.reclaim && cfg.grow_threshold == 1;
  base_.init(nullptr, nullptr, &ctx_);
  for (std::uint64_t i = 0; i < initial_surplus; ++i) base_.arrive();
}

snzi_tree::~snzi_tree() {
  release_subtree(base_);
  while (child_pair* pair = free_pair_pop(ctx_)) {
    pool_delete(*ctx_.pairs, pair);
  }
}

void snzi_tree::park_subtree(node& n) {
  if (child_pair* kids = n.children()) {
    park_subtree(kids->left);
    park_subtree(kids->right);
    free_pair_push(ctx_, kids);
  }
}

void snzi_tree::release_subtree(node& n) {
  if (child_pair* kids = n.children()) {
    release_subtree(kids->left);
    release_subtree(kids->right);
    pool_delete(*ctx_.pairs, kids);
  }
}

void snzi_tree::reset(std::uint64_t initial_surplus) {
  // Park every reachable pair on the free list: the next generation's grows
  // reuse them, so a pooled counter keeps its working set without touching
  // the shared slab pool (the reuse the old arena rewind provided).
  park_subtree(base_);
  root_.reset(0);
  base_.init(nullptr, nullptr, &ctx_);
  for (std::uint64_t i = 0; i < initial_surplus; ++i) base_.arrive();
}

std::size_t snzi_tree::node_count() const {
  std::size_t n = 0;
  for_each_node([&](const node&, std::size_t) { ++n; });
  return n;
}

std::size_t snzi_tree::max_depth() const {
  std::size_t d = 0;
  for_each_node([&](const node&, std::size_t depth) { d = std::max(d, depth); });
  return d;
}

std::uint32_t snzi_tree::max_node_ops() const {
  std::uint32_t m = 0;
  for_each_node([&](const node& n, std::size_t) { m = std::max(m, n.ops()); });
  return m;
}

}  // namespace spdag::snzi
