#pragma once
// apps/stream_pipeline: a continuous-arrival stage pipeline stressing the
// out-set broadcast side. `items` independent work items stream through
// `stages` future-valued stages; at every stage the produced value is
// broadcast to `width` consumers (the fan-out hotspot out-sets exist for),
// one of which carries the item into the next stage.
//
// `batch` selects HOW the consumers register: future_then_group (one
// spawn_batch covering all `width` consumers + grouped add_group out-set
// registration) versus a fork2 tree of single future_then calls — the
// batched and unbatched fan-out paths the amortization claim compares.
//
// Determinism: each stage's value is a pure function of (item, stage), and
// the checksum folds per-delivery hashes with a commutative sum — so the
// checksum (and the delivery count) is identical across schedulers,
// allocators, out-sets, and batch on/off.

#include <cstdint>

#include "sched/runtime.hpp"

namespace spdag::apps {

struct stream_config {
  std::uint64_t items = 256;  // independent pipelines
  std::uint32_t stages = 4;   // futures per item
  std::uint32_t width = 8;    // consumers per stage broadcast
  std::uint64_t seed = 7;     // folded into every stage value
  bool batch = true;          // future_then_group vs single future_thens
};

struct stream_result {
  std::uint64_t checksum = 0;    // commutative fold over all deliveries
  std::uint64_t deliveries = 0;  // must equal items * stages * width
};

// Runs the pipeline to completion on rt and returns the fold + count.
stream_result stream_run(runtime& rt, const stream_config& cfg = {});

}  // namespace spdag::apps
