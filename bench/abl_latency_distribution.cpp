// Ablation A4: per-operation latency distributions.
//
// The paper's contention definition counts concurrent non-trivial steps on
// one location; at runtime that cost surfaces as a fat tail in per-op
// latency (CAS retry loops + cache-line ping-pong). This bench runs the
// fanin workload with a timing decorator around the dependency counter and
// reports mean / p50 / p99 / p99.9 arrive latencies plus max-bin counts,
// per algorithm.
//
// Expected shape: on a contended multicore run, Fetch & Add's p99 blows up
// with core count while the in-counter's stays near its uncontended mode;
// at 1 core all tails are thin and FAA's mean is lowest.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "dag/engine.hpp"
#include "harness/bench_runner.hpp"
#include "harness/workloads.hpp"
#include "incounter/timed_factory.hpp"
#include "sched/runtime.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"

namespace {

using namespace spdag;

void fanin_body(std::uint64_t n) {
  struct rec {
    static void go(std::uint64_t m) {
      if (m >= 2) {
        fork2([m] { go(m / 2); }, [m] { go(m - m / 2); });
      }
    }
  };
  finish_then([n] { rec::go(n); }, [] {});
}

}  // namespace

int main(int argc, char** argv) {
  options opts(argc, argv);
  harness::json_open(opts, "abl_latency_distribution");
  const std::uint64_t n = static_cast<std::uint64_t>(opts.get_int("n", 1 << 15));
  const std::size_t procs = static_cast<std::size_t>(opts.get_int("proc", 2));
  const bool csv = opts.get_bool("csv", false);

  const std::vector<std::string> algos{"faa", "snzi:4", "dyn"};

  std::printf("# abl_latency_distribution: fanin n=%llu at proc=%zu; arrive "
              "latency percentiles per counter (ns, bin-granular)\n",
              static_cast<unsigned long long>(n), procs);

  result_table table({"algo", "ops", "mean_ns", "p50_ns", "p95_ns", "p99_ns",
                      "p99.9_ns", "max_ns"});
  for (const auto& algo : algos) {
    latency_histogram arrives, departs;
    timed_factory factory(make_counter_factory(algo), &arrives, &departs);
    auto sched = make_scheduler("ws", procs, false);
    dag_engine engine(factory, *sched);

    auto once = [&] {
      auto [root, final_v] = engine.make();
      root->body = [n] { fanin_body(n); };
      sched->run(engine, root, final_v);
    };
    once();  // warm-up
    arrives.reset();
    departs.reset();
    once();

    table.add_row({algo, std::to_string(arrives.count()),
                   result_table::num(arrives.mean_ns(), 1),
                   std::to_string(arrives.percentile_ns(0.50)),
                   std::to_string(arrives.percentile_ns(0.95)),
                   std::to_string(arrives.percentile_ns(0.99)),
                   std::to_string(arrives.percentile_ns(0.999)),
                   std::to_string(arrives.percentile_ns(1.0))});
    if (harness::json_enabled()) {
      harness::json_record rec;
      rec.name = "abl_latency_distribution/";
      rec.name += algo;
      rec.spec = algo;
      rec.proc = procs;
      // Top-level percentile fields (ms) for schema-level consumers; the
      // ns-granular extras stay for the ablation's own analysis.
      rec.lat_p50_ms = static_cast<double>(arrives.percentile_ns(0.50)) * 1e-6;
      rec.lat_p95_ms = static_cast<double>(arrives.percentile_ns(0.95)) * 1e-6;
      rec.lat_p99_ms = static_cast<double>(arrives.percentile_ns(0.99)) * 1e-6;
      rec.extra.emplace_back("arrive_mean_ns", arrives.mean_ns());
      rec.extra.emplace_back(
          "arrive_p50_ns",
          static_cast<double>(arrives.percentile_ns(0.50)));
      rec.extra.emplace_back(
          "arrive_p95_ns",
          static_cast<double>(arrives.percentile_ns(0.95)));
      rec.extra.emplace_back(
          "arrive_p99_ns",
          static_cast<double>(arrives.percentile_ns(0.99)));
      rec.extra.emplace_back(
          "arrive_max_ns", static_cast<double>(arrives.percentile_ns(1.0)));
      harness::json_add(std::move(rec));
    }
  }
  table.print(std::cout);
  if (csv) table.print_csv(std::cout);
  return harness::json_write();
}
