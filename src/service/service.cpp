#include "service/service.hpp"

#include <algorithm>

#include "mem/epoch.hpp"
#include "obs/trace.hpp"
#include "util/backoff.hpp"

namespace spdag {

namespace {

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point from,
                         std::chrono::steady_clock::time_point to) noexcept {
  const auto d =
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from).count();
  return d > 0 ? static_cast<std::uint64_t>(d) : 0;
}

// Trace payloads are 32-bit; microseconds saturate at ~71 minutes.
std::uint32_t clamp_us(std::uint64_t ns) noexcept {
  const std::uint64_t us = ns / 1000;
  return static_cast<std::uint32_t>(
      std::min<std::uint64_t>(us, 0xffffffffULL));
}

}  // namespace

// --- ticket -----------------------------------------------------------------

bool ticket::wait() {
  if (s_ == nullptr) return false;
  std::unique_lock<std::mutex> lk(s_->mu);
  s_->cv.wait(lk, [this] { return s_->done; });
  return !s_->rejected;
}

bool ticket::ready() const {
  if (s_ == nullptr) return true;
  std::lock_guard<std::mutex> lk(s_->mu);
  return s_->done;
}

void ticket::release() noexcept {
  if (s_ == nullptr) return;
  // Client threads release through the service's trim gate: a pool
  // deallocation from outside the worker set is exactly the traffic the
  // idle trim cannot otherwise observe.
  s_->svc->release_ref(s_, /*via_gate=*/true);
  s_ = nullptr;
}

// --- dag_service ------------------------------------------------------------

dag_service::dag_service(service_config cfg)
    : cfg_(std::move(cfg)),
      rt_(cfg_.rt),
      ticket_pool_(&rt_.pools().get("service_ticket",
                                    sizeof(detail::ticket_state),
                                    alignof(detail::ticket_state))) {
  rt_.sched().begin_service(rt_.engine());
  dispatcher_ = std::thread([this] { dispatcher_main(); });
}

dag_service::~dag_service() { shutdown(drain_mode::drain); }

ticket dag_service::submit_body(vertex_body job) {
  obs::emit(obs::ev_submit);
  n_submitted_.fetch_add(1, std::memory_order_relaxed);
  if (!admit()) {
    obs::emit(obs::ev_reject);
    n_rejected_.fetch_add(1, std::memory_order_relaxed);
    return ticket{};
  }
  detail::ticket_state* t;
  {
    // Shared gate: the pool allocation below may not race an idle trim.
    std::shared_lock<std::shared_mutex> gate(trim_gate_);
    t = pool_new<detail::ticket_state>(*ticket_pool_);
    t->svc = this;
    t->job = std::move(job);
    t->submit_tp = clock::now();
    if (!queue_.push(t)) {
      // Queue node arena at its cap: surface a clean admission reject
      // instead of the bad_alloc this used to throw. Unwind everything the
      // reservation took — the ticket cell (still private to us, under the
      // same gate that covered its allocation) and the inflight slot.
      pool_delete(*ticket_pool_, t);
      gate.unlock();
      inflight_.fetch_sub(1, std::memory_order_acq_rel);
      obs::gauge_add(obs::g_inflight, -1);
      {
        std::lock_guard<std::mutex> lk(admit_mu_);
      }
      admit_cv_.notify_one();
      obs::emit(obs::ev_reject);
      n_rejected_.fetch_add(1, std::memory_order_relaxed);
      n_queue_full_rejects_.fetch_add(1, std::memory_order_relaxed);
      return ticket{};
    }
  }
  {
    std::lock_guard<std::mutex> lk(dispatch_mu_);
  }
  dispatch_cv_.notify_one();
  return ticket{t};
}

bool dag_service::admit() {
  if (stop_.load(std::memory_order_acquire)) return false;  // fast path only
  const std::size_t cap = cfg_.max_inflight;
  for (;;) {
    std::size_t cur = inflight_.load(std::memory_order_acquire);
    if (cap != 0 && cur >= cap) {
      if (cfg_.on_full == admission_policy::reject) return false;
      n_blocked_.fetch_add(1, std::memory_order_relaxed);
      std::unique_lock<std::mutex> lk(admit_mu_);
      admit_cv_.wait(lk, [&] {
        return stop_.load(std::memory_order_acquire) ||
               inflight_.load(std::memory_order_acquire) < cap;
      });
      if (stop_.load(std::memory_order_acquire)) return false;
      continue;  // re-run the CAS race for the freed slot
    }
    // Reserve the slot FIRST, then re-check stop_. The authoritative stop
    // check must come after the increment so the dispatcher's drain-exit
    // test (stop_ && inflight_ == 0 && queue empty) can never pass between
    // our stop check and our increment — any admission it could miss is in
    // inflight_ before it looks. That ordering argument is store-buffering
    // shaped (we write inflight_ then read stop_; the dispatcher reads
    // stop_ then inflight_), which acquire/release alone does not forbid —
    // hence seq_cst here, on shutdown()'s stop_ store, and on the
    // dispatcher's exit-check loads.
    if (inflight_.compare_exchange_weak(cur, cur + 1,
                                        std::memory_order_seq_cst,
                                        std::memory_order_acquire)) {
      if (stop_.load(std::memory_order_seq_cst)) {
        // Shutdown won: roll the reservation back and reject. The transient
        // increment is harmless — it can only make the dispatcher poll once
        // more, never exit early.
        inflight_.fetch_sub(1, std::memory_order_acq_rel);
        {
          std::lock_guard<std::mutex> lk(admit_mu_);
        }
        admit_cv_.notify_all();
        return false;
      }
      std::size_t peak = peak_inflight_.load(std::memory_order_relaxed);
      while (cur + 1 > peak &&
             !peak_inflight_.compare_exchange_weak(
                 peak, cur + 1, std::memory_order_relaxed)) {
      }
      obs::gauge_add(obs::g_inflight, 1);
      return true;
    }
  }
}

void dag_service::dispatch(detail::ticket_state* t) {
  t->dispatch_tp = clock::now();
  const std::uint64_t queue_ns = elapsed_ns(t->submit_tp, t->dispatch_tp);
  obs::emit(obs::ev_admit, 0, clamp_us(queue_ns));
  n_admitted_.fetch_add(1, std::memory_order_relaxed);
  queue_hist_.record(queue_ns);

  // The submission's dag: root runs the client job; the final vertex —
  // which the engine enqueues only after the root's entire nested
  // computation signals — carries the completion. No stop vertex: this is
  // what service mode replaces run()'s termination protocol with.
  auto [root, final_v] = rt_.engine().make();
  root->body = std::move(t->job);
  final_v->body = [this, t] { complete(t); };
  rt_.engine().add(root);
}

void dag_service::reject_queued(detail::ticket_state* t) {
  obs::emit(obs::ev_reject);
  n_rejected_.fetch_add(1, std::memory_order_relaxed);
  inflight_.fetch_sub(1, std::memory_order_acq_rel);
  obs::gauge_add(obs::g_inflight, -1);
  {
    std::lock_guard<std::mutex> lk(t->mu);
    t->done = true;
    t->rejected = true;
  }
  t->cv.notify_all();
  release_ref(t, /*via_gate=*/false);  // dispatcher-side: trim is ours alone
}

void dag_service::complete(detail::ticket_state* t) {
  // Runs on a worker thread, inside execute() of the submission's final
  // vertex — which is still live, so an idle trim cannot be concurrent with
  // anything this function does.
  const auto now = clock::now();
  const std::uint64_t sojourn_ns = elapsed_ns(t->submit_tp, now);
  const std::uint64_t exec_ns = elapsed_ns(t->dispatch_tp, now);
  sojourn_hist_.record(sojourn_ns);
  exec_hist_.record(exec_ns);
  obs::emit(obs::ev_submit_complete, 0, clamp_us(sojourn_ns));
  n_completed_.fetch_add(1, std::memory_order_relaxed);
  inflight_.fetch_sub(1, std::memory_order_acq_rel);
  obs::gauge_add(obs::g_inflight, -1);
  // Empty critical sections pair the notifies with their cvs' predicates
  // (which read atomics), closing the missed-wakeup window.
  {
    std::lock_guard<std::mutex> lk(admit_mu_);
  }
  admit_cv_.notify_one();
  {
    std::lock_guard<std::mutex> lk(t->mu);
    t->done = true;
  }
  t->cv.notify_all();
  {
    std::lock_guard<std::mutex> lk(dispatch_mu_);
  }
  dispatch_cv_.notify_one();
  release_ref(t, /*via_gate=*/false);
}

void dag_service::release_ref(detail::ticket_state* t, bool via_gate) noexcept {
  if (t->refs.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
  if (via_gate) {
    std::shared_lock<std::shared_mutex> gate(trim_gate_);
    pool_delete(*ticket_pool_, t);
  } else {
    pool_delete(*ticket_pool_, t);
  }
}

void dag_service::dispatcher_main() {
  // The dispatcher follows the workers' epoch protocol (src/mem/epoch.hpp):
  // pinned for its whole loop — it dereferences pooled memory through
  // engine::make() and ticket handling — refreshed at the loop top (no
  // stale pointer survives an iteration), unpinned across its cv waits so
  // an idle dispatcher never stalls reclamation.
  mem::epoch::pin_guard eg;
  for (;;) {
    mem::epoch::refresh();
    if (detail::ticket_state* t = queue_.pop()) {
      if (stop_.load(std::memory_order_acquire) &&
          reject_pending_.load(std::memory_order_acquire)) {
        reject_queued(t);
      } else {
        dispatch(t);
        maybe_busy_trim();
      }
      continue;
    }
    if (stop_.load(std::memory_order_seq_cst)) {
      // Drain protocol: exit only when nothing is admitted-but-incomplete.
      // A submitter that won admission just before stop_ may not have
      // pushed yet — inflight_ covers that window (admit() increments it
      // BEFORE its authoritative stop_ check), so keep polling. seq_cst on
      // both loads pairs with admit()'s seq_cst increment/check: see the
      // store-buffering note there.
      if (inflight_.load(std::memory_order_seq_cst) == 0 && queue_.empty()) {
        return;
      }
      mem::epoch::unpin();
      {
        std::unique_lock<std::mutex> lk(dispatch_mu_);
        dispatch_cv_.wait_for(lk, std::chrono::milliseconds(1));
      }
      mem::epoch::pin();
      continue;
    }
    std::unique_lock<std::mutex> lk(dispatch_mu_);
    // Anything pushed between the failed pop and this lock also issued a
    // notify we may have missed; re-check before sleeping.
    if (!queue_.empty() || stop_.load(std::memory_order_acquire)) continue;
    if (cfg_.idle_trim_after.count() > 0) {
      mem::epoch::unpin();
      const auto status = dispatch_cv_.wait_for(lk, cfg_.idle_trim_after);
      mem::epoch::pin();
      lk.unlock();
      if (status == std::cv_status::timeout &&
          !stop_.load(std::memory_order_acquire)) {
        try_idle_trim();
      }
    } else {
      // Timed rather than indefinite: bounds the cost of any wakeup the
      // empty-critical-section handshake still loses.
      mem::epoch::unpin();
      dispatch_cv_.wait_for(lk, std::chrono::milliseconds(50));
      mem::epoch::pin();
    }
  }
}

void dag_service::maybe_busy_trim() {
  // Dispatch-count cadence; dispatcher-only, so the counter needs no
  // atomicity. Unlike the idle trim there is NO gate and NO quiescence
  // check: trim_pools_live() is built for concurrent traffic — fully-free
  // slabs go to epoch limbo and are freed only after the 2-epoch delay.
  if (!mem::epoch::enabled() || cfg_.busy_trim_every == 0) return;
  if (++dispatches_since_busy_trim_ < cfg_.busy_trim_every) return;
  dispatches_since_busy_trim_ = 0;
  std::size_t reclaimed = 0;
  const std::size_t retired = rt_.engine().trim_pools_live(&reclaimed);
  n_busy_trims_.fetch_add(1, std::memory_order_relaxed);
  n_slabs_retired_.fetch_add(retired, std::memory_order_relaxed);
  n_slabs_reclaimed_.fetch_add(reclaimed, std::memory_order_relaxed);
}

void dag_service::try_idle_trim() {
  // Exclusive gate first: no client can be mid-allocation/-release while we
  // hold it, and any client that arrives next blocks until we are done.
  std::unique_lock<std::shared_mutex> gate(trim_gate_, std::try_to_lock);
  if (!gate.owns_lock()) return;  // a submitter is mid-push: not idle
  if (!queue_.empty() || inflight_.load(std::memory_order_acquire) != 0) {
    return;
  }
  // Idempotence + self-healing: skip when nothing was freed since the last
  // trim (comparing against the post-trim snapshot, not zero — trims leave
  // a residue of free cells in pinned slabs), but re-arm the moment any
  // release — e.g. a client's ticket destruction landing AFTER a previous
  // trim — moves the retained count.
  if (rt_.pools().totals().retained() == trimmed_retained_) return;
  // inflight == 0 means every completion body ran, but the LAST worker may
  // still be in execute()'s epilogue (final vertex not yet recycled, active_
  // not yet decremented). That window is short and shrinking — no new work
  // can enter while we hold the gate — so wait it out boundedly and give up
  // harmlessly if an assumption breaks.
  dag_engine& eng = rt_.engine();
  scheduler_base& sch = rt_.sched();
  backoff b;
  for (int spin = 0; spin < 4096; ++spin) {
    if (eng.live_vertices() == 0 && sch.service_idle()) break;
    b.pause();
  }
  if (eng.live_vertices() != 0 || !sch.service_idle()) return;
  std::size_t released = 0;
  if (eng.try_trim_pools(&released)) {
    trimmed_retained_ = rt_.pools().totals().retained();
    n_idle_trims_.fetch_add(1, std::memory_order_relaxed);
    n_slabs_released_.fetch_add(released, std::memory_order_relaxed);
  }
}

void dag_service::shutdown(drain_mode mode) {
  bool expected = false;
  if (stopping_.compare_exchange_strong(expected, true,
                                        std::memory_order_acq_rel)) {
    // Mode before flag: a reader that acquires stop_ sees the mode.
    // seq_cst store pairs with admit()'s reserve-then-check (see the
    // store-buffering note there).
    reject_pending_.store(mode == drain_mode::reject,
                          std::memory_order_release);
    stop_.store(true, std::memory_order_seq_cst);
    {
      std::lock_guard<std::mutex> lk(admit_mu_);
    }
    admit_cv_.notify_all();
    {
      std::lock_guard<std::mutex> lk(dispatch_mu_);
    }
    dispatch_cv_.notify_all();
  }
  std::lock_guard<std::mutex> lk(join_mu_);
  if (dispatcher_.joinable()) dispatcher_.join();
  if (!ended_service_) {
    // Spins until the scheduler is empty of service work, then detaches the
    // engine; after this the workers are parked until destruction.
    rt_.sched().end_service();
    ended_service_ = true;
  }
}

service_stats dag_service::stats() const {
  service_stats s;
  s.submitted = n_submitted_.load(std::memory_order_relaxed);
  s.admitted = n_admitted_.load(std::memory_order_relaxed);
  s.rejected = n_rejected_.load(std::memory_order_relaxed);
  s.completed = n_completed_.load(std::memory_order_relaxed);
  s.blocked = n_blocked_.load(std::memory_order_relaxed);
  s.idle_trims = n_idle_trims_.load(std::memory_order_relaxed);
  s.slabs_released = n_slabs_released_.load(std::memory_order_relaxed);
  s.busy_trims = n_busy_trims_.load(std::memory_order_relaxed);
  s.slabs_retired = n_slabs_retired_.load(std::memory_order_relaxed);
  s.slabs_reclaimed = n_slabs_reclaimed_.load(std::memory_order_relaxed);
  s.queue_full_rejects =
      n_queue_full_rejects_.load(std::memory_order_relaxed);
  s.inflight = inflight_.load(std::memory_order_relaxed);
  s.peak_inflight = peak_inflight_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace spdag
