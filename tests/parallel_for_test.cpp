// Tests for parallel_for: exactly-once semantics, grain handling, nesting,
// and behaviour across counter implementations and worker counts.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>
#include <vector>

#include "dag/parallel_for.hpp"
#include "sched/runtime.hpp"

namespace spdag {
namespace {

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  runtime rt(runtime_config{3, "dyn"});
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> visits(kN);
  auto* v = visits.data();
  rt.run([v] {
    parallel_for(0, kN, 16, [v](std::size_t i) { v[i].fetch_add(1); });
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  runtime rt(runtime_config{2, "dyn"});
  std::atomic<int> hits{0};
  auto* h = &hits;
  rt.run([h] {
    parallel_for(5, 5, 8, [h](std::size_t) { h->fetch_add(1); });
  });
  rt.run([h] {
    parallel_for(7, 3, 8, [h](std::size_t) { h->fetch_add(1); });
  });
  EXPECT_EQ(hits.load(), 0);
}

TEST(ParallelFor, ZeroGrainTreatedAsOne) {
  runtime rt(runtime_config{2, "dyn"});
  std::atomic<int> hits{0};
  auto* h = &hits;
  rt.run([h] {
    parallel_for(0, 100, 0, [h](std::size_t) { h->fetch_add(1); });
  });
  EXPECT_EQ(hits.load(), 100);
}

TEST(ParallelFor, GrainLargerThanRangeRunsSerially) {
  runtime rt(runtime_config{2, "dyn"});
  std::vector<int> order;  // serial chunk => no data race on purpose
  auto* o = &order;
  rt.run([o] {
    parallel_for(0, 10, 1000, [o](std::size_t i) { o->push_back(static_cast<int>(i)); });
  });
  std::vector<int> expect(10);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(order, expect) << "a single chunk must run in index order";
}

TEST(ParallelFor, SubrangeBoundsRespected) {
  runtime rt(runtime_config{2, "dyn"});
  std::atomic<std::uint64_t> sum{0};
  auto* s = &sum;
  rt.run([s] {
    parallel_for(100, 200, 7, [s](std::size_t i) { s->fetch_add(i); });
  });
  EXPECT_EQ(sum.load(), (100ull + 199ull) * 100ull / 2);
}

TEST(ParallelFor, NestedLoopsCompose) {
  runtime rt(runtime_config{3, "dyn"});
  constexpr std::size_t kOuter = 32;
  constexpr std::size_t kInner = 64;
  std::atomic<int> hits{0};
  auto* h = &hits;
  // Nested loops require outer grain 1: each outer iteration must be its
  // own vertex so the inner loop's fork is the last action of that body.
  rt.run([h] {
    parallel_for(0, kOuter, 1, [h](std::size_t) {
      parallel_for(0, kInner, 8, [h](std::size_t) { h->fetch_add(1); });
    });
  });
  EXPECT_EQ(hits.load(), static_cast<int>(kOuter * kInner));
}

class ParallelForMatrix
    : public ::testing::TestWithParam<std::tuple<std::string, std::size_t>> {};

TEST_P(ParallelForMatrix, SumsCorrectly) {
  runtime rt(runtime_config{std::get<1>(GetParam()), std::get<0>(GetParam())});
  constexpr std::size_t kN = 4096;
  std::atomic<std::uint64_t> sum{0};
  auto* s = &sum;
  rt.run([s] {
    parallel_for(0, kN, 32, [s](std::size_t i) { s->fetch_add(i); });
  });
  EXPECT_EQ(sum.load(), kN * (kN - 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(
    AlgosAndWorkers, ParallelForMatrix,
    ::testing::Combine(::testing::Values("faa", "snzi:3", "dyn:1", "dyn"),
                       ::testing::Values(std::size_t{1}, std::size_t{4})),
    [](const ::testing::TestParamInfo<std::tuple<std::string, std::size_t>>& info) {
      std::string algo = std::get<0>(info.param);
      for (char& ch : algo) {
        if (ch == ':') ch = '_';
      }
      return algo + "_w" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace spdag
