#pragma once
// tree_outset: a lock-free, grow-on-contention out-set tree — the symmetric
// counterpart of snzi_tree::grow() on the fan-out side.
//
// Shape. Every node owns one cache line holding a waiter-list head and a
// children pointer. A registering consumer starts at the base node and tries
// one CAS on the current node's list head. Success means the consumer has
// claimed a slot on that node's line and is done. Failure means another
// consumer hit the same line in the same window — the very contention signal
// snzi's grow() keys off — so the add *grows* the node (installing a group
// of `fanout` fresh children, each on its own cache line, with a single CAS,
// exactly like grow() installs a child_pair) and descends into a child
// chosen by a thread-local coin. Concurrent adds therefore separate after
// O(log_fanout c) failures in expectation and keep landing on disjoint
// lines; a single-threaded add is one uncontended CAS on the base, the same
// cost as simple_outset.
//
// Finalize. The producer walks the tree top-down. At each node it first
// seals the children pointer (CASing in a terminated sentinel when the node
// is childless, so no group can be installed under an already-drained node),
// then exchanges the list head for the terminated-waiter sentinel and
// streams the captured waiters to the sink *before* descending — consumers
// registered near the top of the tree are running on other workers while
// deeper nodes are still being drained, which is what "broadcast in parallel
// down the tree" means here. The add/finalize race is thereby resolved per
// node: an add that loses a head CAS to the sentinel, or a grow that loses
// the children CAS to the sentinel, returns false and the registrant
// schedules its consumer itself (the future is already completed — both
// sentinels are only ever installed by finalize, which the producer calls
// after publishing the value).
//
// Growth damping. Like the in-counter's grow(), descending can be gated on
// a 1/grow_threshold coin flipped per contention signal: with threshold t a
// collided add stays and fights on the current line with probability
// 1 - 1/t, so the tree grows roughly t-times slower under the same
// contention (threshold 1 = always grow, the analyzed setting; 0 = never,
// degenerating to simple_outset on the base line).
//
// Memory. Child groups (fanout cache-line nodes, one pool cell) come from
// the shared "outset_group" slab pool (src/mem/), so Figure-10 style churn
// (one future per iteration, millions of iterations) measures the
// structure, not malloc — and groups freed by reset() recirculate through
// the pool's per-worker magazines instead of a per-outset stash.

#include <cstdint>

#include "mem/registry.hpp"
#include "outset/outset.hpp"
#include "util/cache_aligned.hpp"

namespace spdag {

// THE node-group pool of a registry for one fanout (a group is `fanout`
// cache-line nodes in one cell) — the single definition of its identity,
// shared by every call site so factories and stand-alone trees can never
// diverge onto disjoint pools.
inline object_pool& tree_outset_group_pool(pool_registry& pools,
                                           std::uint32_t fanout) {
  return pools.get("outset_group", std::size_t{fanout} * cache_line_size,
                   cache_line_size);
}

struct tree_outset_config {
  // Children installed per grow. 2 mirrors snzi's child_pair; wider fanouts
  // trade tree depth for a bigger finalize frontier.
  std::uint32_t fanout = 2;
  // Depth at which adds stop growing and spin on the deepest node's line.
  // Bounds the tree at fanout^max_depth nodes; with grow-on-contention the
  // expected depth is log_fanout(concurrent adders), far below the cap.
  std::uint32_t max_depth = 12;
  // A collided add descends with probability 1/grow_threshold (see file
  // comment); 1 = always, 0 = never.
  std::uint64_t grow_threshold = 1;
  // Node-group slab pool; null = the default registry's outset_group pool
  // for this fanout. Borrowed, must outlive the out-set.
  object_pool* groups = nullptr;
};

class tree_outset final : public outset {
 public:
  explicit tree_outset(tree_outset_config cfg = {});
  ~tree_outset() override;

  bool add(outset_waiter* w) noexcept override;
  void finalize(waiter_sink sink, void* ctx) override;
  void reset(waiter_sink sink, void* ctx) override;

  std::uint32_t fanout() const noexcept { return cfg_.fanout; }
  std::uint64_t grow_threshold() const noexcept { return cfg_.grow_threshold; }

  // --- non-concurrent introspection (tests, space accounting) ---
  std::size_t node_count() const;  // reachable nodes incl. base
  std::size_t max_depth() const;   // base = depth 0
  // Groups ever returned to the backing pool (pool-scoped, monotone; a
  // lower bound on reuse since the pool is shared across out-sets).
  std::size_t recycled_group_count() const;

 private:
  struct alignas(cache_line_size) tree_node {
    std::atomic<outset_waiter*> head{nullptr};
    // First node of a `fanout`-wide child group, terminated_children(), or
    // nullptr while childless.
    std::atomic<tree_node*> children{nullptr};
  };
  static_assert(sizeof(tree_node) == cache_line_size,
                "an out-set node must own exactly one cache line");

  static tree_node* terminated_children() noexcept {
    return reinterpret_cast<tree_node*>(std::uintptr_t{1});
  }

  // Returns n's children, installing a fresh group if absent. May return
  // terminated_children() when finalize sealed the node first.
  tree_node* grow(tree_node* n) noexcept;
  void finalize_node(tree_node* n, waiter_sink sink, void* ctx);
  void reset_node(tree_node* n, waiter_sink sink, void* ctx);
  static std::size_t count_nodes(const tree_node* n, std::uint32_t fanout);
  static std::size_t depth_below(const tree_node* n, std::uint32_t fanout);

  tree_outset_config cfg_;
  object_pool* groups_;  // one `fanout`-node group per cell
  tree_node base_;
};

}  // namespace spdag
