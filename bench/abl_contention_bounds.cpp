// Ablation A1: instrumented verification of the analysis section's bounds
// (section 4 of the paper).
//
// Two measurements per grow threshold:
//   1. A full parallel fanin run reporting amortized ratios:
//      arrives per increment (Corollary 4.7: <= 3 when threshold = 1) and
//      CAS failures per operation (the direct contention signal), plus
//      allocation counts (appendix B: flat when reclaiming).
//   2. A deterministic breadth-first spawn expansion on a standalone
//      instrumented in-counter, reporting the maximum number of operations
//      that touched any single SNZI node (Theorem 4.9 proof: <= 6 when
//      threshold = 1; grows with the threshold as more operations share
//      nodes — exactly the contention/space trade the grow probability
//      buys).
//
// This is the experiment the paper could only argue on paper; the
// instrumentation makes the proved constants observable.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "harness/bench_runner.hpp"
#include "harness/workloads.hpp"
#include "incounter/incounter.hpp"
#include "sched/runtime.hpp"
#include "snzi/stats.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"

namespace {

using namespace spdag;

// Valid sp-dag-style execution: BFS spawn expansion then disciplined drain.
// Returns the max per-node op count observed by the instrumentation.
std::uint32_t max_node_ops_for(std::uint64_t threshold, int generations) {
  snzi::tree_stats stats;
  incounter ic(1, incounter_config{threshold, /*reclaim=*/false, &stats});
  struct live {
    token inc;
    token dec;
    bool left;
  };
  std::vector<live> frontier{{ic.root_token(), ic.root_token(), true}};
  for (int gen = 0; gen < generations; ++gen) {
    std::vector<live> next;
    next.reserve(frontier.size() * 2);
    for (const live& v : frontier) {
      const arrive_result r = ic.arrive(v.inc, v.left);
      next.push_back({r.inc_left, v.dec, true});
      next.push_back({r.inc_right, r.dec, false});
    }
    frontier = std::move(next);
  }
  for (auto it = frontier.rbegin(); it != frontier.rend(); ++it) {
    ic.depart(it->dec);
  }
  std::uint32_t m = ic.tree().max_node_ops();
  // The root is touched once per base phase change; include it.
  return std::max(m, ic.tree().root()->ops());
}

}  // namespace

int main(int argc, char** argv) {
  options opts(argc, argv);
  harness::json_open(opts, "abl_contention_bounds");
  const std::uint64_t n = static_cast<std::uint64_t>(opts.get_int("n", 1 << 15));
  const std::size_t procs = static_cast<std::size_t>(opts.get_int("proc", 2));
  const bool csv = opts.get_bool("csv", false);
  const int generations = static_cast<int>(opts.get_int("gens", 10));

  const std::vector<std::uint64_t> thresholds{1, 4, 32, 256, 4096};

  std::printf("# abl_contention_bounds: fanin n=%llu at proc=%zu + BFS depth "
              "%d; bounds proved for threshold 1: arrives/incr <= 3, "
              "max_ops/node <= 6\n",
              static_cast<unsigned long long>(n), procs, generations);

  result_table table({"threshold", "arrives/incr", "max_ops/node",
                      "cas_fail/op", "undo_departs", "pair_allocs",
                      "pair_reuses"});
  for (std::uint64_t t : thresholds) {
    snzi::tree_stats stats;
    runtime rt(runtime_config{procs, "dyn:" + std::to_string(t), false, &stats});
    harness::fanin(rt, n);

    const double increments =
        static_cast<double>(rt.engine().stats().spawns.load());
    const double arrives = static_cast<double>(stats.arrives.load()) +
                           static_cast<double>(stats.root_arrives.load());
    const double departs = static_cast<double>(stats.departs.load()) +
                           static_cast<double>(stats.root_departs.load());
    const double cas_fail = static_cast<double>(stats.cas_failures.load());

    const std::uint32_t max_ops = max_node_ops_for(t, generations);
    table.add_row({std::to_string(t),
                   result_table::num(arrives / increments, 3),
                   std::to_string(max_ops),
                   result_table::num(cas_fail / (arrives + departs), 5),
                   std::to_string(stats.undo_departs.load()),
                   std::to_string(stats.grow_allocs.load()),
                   std::to_string(stats.grow_reuses.load())});
    if (harness::json_enabled()) {
      harness::json_record rec;
      rec.name = "abl_contention_bounds/threshold:";
      rec.name += std::to_string(t);
      rec.spec = "dyn:";
      rec.spec += std::to_string(t);
      rec.proc = procs;
      rec.extra.emplace_back("arrives_per_incr", arrives / increments);
      rec.extra.emplace_back("max_ops_per_node", static_cast<double>(max_ops));
      rec.extra.emplace_back("cas_fail_per_op",
                             cas_fail / (arrives + departs));
      rec.extra.emplace_back(
          "pair_allocs", static_cast<double>(stats.grow_allocs.load()));
      harness::json_add(std::move(rec));
    }
  }
  table.print(std::cout);
  if (csv) table.print_csv(std::cout);
  return harness::json_write();
}
