// Parallel-finalize (subtree drain) suite for the tree out-set, plus the
// deep-broadcast (scatter) mode and the destruction-time waiter-reclaim
// regression.
//
// The core property under test is unchanged from the conformance suite —
// exactly-once hand-off of every registered waiter — but here the finalize
// walk itself is partitioned: drain tasks are handed to a spawner and run
// on other threads, concurrently with racing adds, while the walk stays
// iterative (explicit frame stack, so a max_depth tree never grows the call
// stack). Runs under the TSan CI job.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "harness/workloads.hpp"
#include "outset/factory.hpp"
#include "outset/tree_outset.hpp"
#include "sched/runtime.hpp"

namespace spdag {
namespace {

vertex* fake_consumer(std::size_t index) {
  return reinterpret_cast<vertex*>((index + 1) << 4);
}
std::size_t consumer_index(const outset_waiter* w) {
  return (reinterpret_cast<std::uintptr_t>(w->consumer) >> 4) - 1;
}

// Sink that counts per-waiter deliveries and repools the record.
struct delivery_log {
  outset_factory* factory = nullptr;
  std::vector<std::atomic<std::uint32_t>> delivered;

  explicit delivery_log(outset_factory* f, std::size_t n)
      : factory(f), delivered(n) {}

  static void sink(void* ctx, outset_waiter* w) {
    auto* log = static_cast<delivery_log*>(ctx);
    log->delivered[consumer_index(w)].fetch_add(1, std::memory_order_relaxed);
    log->factory->release_waiter(w);
  }
};

// --- deep-broadcast (scatter) structure ---

TEST(TreeOutsetScatter, ScatterSpreadsUncontendedAdds) {
  // Without scatter, 200 single-threaded adds stay on the base node; with
  // scatter they dive to the forced depth, growing groups along the way.
  tree_outset_config cfg;
  cfg.scatter_depth = 3;
  tree_outset o(cfg);
  simple_outset_factory pool;  // waiter records only (default registry)
  for (std::size_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(o.add(pool.acquire_waiter(fake_consumer(i), nullptr)));
  }
  EXPECT_GT(o.node_count(), 1u) << "scatter must grow the tree";
  EXPECT_GE(o.max_depth(), 1u);
  EXPECT_LE(o.max_depth(), 3u) << "scatter must respect its own depth";
  delivery_log log(&pool, 200);
  o.finalize(&delivery_log::sink, &log);
  for (std::size_t i = 0; i < 200; ++i) {
    EXPECT_EQ(log.delivered[i].load(), 1u) << "waiter " << i;
  }
}

// --- serial spawner: every group becomes exactly one task ---

TEST(TreeOutsetDrain, SpawnerReceivesEveryGroupExactlyOnce) {
  tree_outset_config cfg;
  cfg.scatter_depth = 4;
  tree_outset o(cfg);
  simple_outset_factory pool;
  constexpr std::size_t kWaiters = 512;
  for (std::size_t i = 0; i < kWaiters; ++i) {
    ASSERT_TRUE(o.add(pool.acquire_waiter(fake_consumer(i), nullptr)));
  }
  const std::size_t groups = (o.node_count() - 1) / o.fanout();
  ASSERT_GT(groups, 0u);

  delivery_log log(&pool, kWaiters);
  std::vector<outset_drain_task*> tasks;
  o.finalize(
      &delivery_log::sink, &log,
      [](void* ctx, outset_drain_task* t) {
        static_cast<std::vector<outset_drain_task*>*>(ctx)->push_back(t);
      },
      &tasks);
  // Tasks re-offload their own child groups, so the list grows while we
  // walk it; index iteration tolerates the reallocation.
  for (std::size_t i = 0; i < tasks.size(); ++i) tasks[i]->run();

  EXPECT_EQ(tasks.size(), groups)
      << "one drain task per reachable group, no more, no fewer";
  EXPECT_EQ(o.totals().subtrees_offloaded, groups);
  for (std::size_t i = 0; i < kWaiters; ++i) {
    EXPECT_EQ(log.delivered[i].load(), 1u) << "waiter " << i;
  }
  EXPECT_EQ(o.totals().delivered, kWaiters);
}

// --- parallel drainers racing adders: the TSan-critical property ---

TEST(TreeOutsetDrain, ParallelDrainersDeliverExactlyOnceUnderRacingAdds) {
  // Adders race one finalizer whose walk is partitioned across two drainer
  // threads; every waiter must be delivered (by a drain) or self-delivered
  // (rejected add) exactly once, never both, never neither.
  struct drain_queue {
    std::mutex mu;
    std::deque<outset_drain_task*> tasks;
    std::atomic<int> pending{0};

    static void spawn(void* ctx, outset_drain_task* t) {
      auto* q = static_cast<drain_queue*>(ctx);
      q->pending.fetch_add(1, std::memory_order_acq_rel);
      std::lock_guard<std::mutex> lock(q->mu);
      q->tasks.push_back(t);
    }
    outset_drain_task* pop() {
      std::lock_guard<std::mutex> lock(mu);
      if (tasks.empty()) return nullptr;
      outset_drain_task* t = tasks.front();
      tasks.pop_front();
      return t;
    }
  };

  constexpr int kAdders = 4;
  constexpr int kDrainers = 2;
  constexpr std::size_t kPerThread = 500;
  constexpr std::size_t kPre = 64;
  for (int round = 0; round < 20; ++round) {
    tree_outset_config cfg;
    cfg.scatter_depth = 4;
    tree_outset o(cfg);
    simple_outset_factory pool;
    delivery_log log(&pool, kAdders * kPerThread + kPre);
    drain_queue queue;
    std::atomic<bool> finalize_done{false};
    std::atomic<bool> go{false};

    // Pre-registered wave: scatter grows groups for these even on a machine
    // where the finalizer would otherwise win the whole race, so the walk
    // always has subtrees to offload.
    for (std::size_t i = 0; i < kPre; ++i) {
      const std::size_t idx = static_cast<std::size_t>(kAdders) * kPerThread + i;
      ASSERT_TRUE(o.add(pool.acquire_waiter(fake_consumer(idx), nullptr)));
    }

    std::vector<std::thread> threads;
    for (int t = 0; t < kAdders; ++t) {
      threads.emplace_back([&, t] {
        while (!go.load(std::memory_order_acquire)) {
        }
        for (std::size_t i = 0; i < kPerThread; ++i) {
          const std::size_t idx = static_cast<std::size_t>(t) * kPerThread + i;
          outset_waiter* w = pool.acquire_waiter(fake_consumer(idx), nullptr);
          if (!o.add(w)) {
            log.delivered[idx].fetch_add(1, std::memory_order_relaxed);
            pool.release_waiter(w);
          }
        }
      });
    }
    for (int d = 0; d < kDrainers; ++d) {
      threads.emplace_back([&] {
        while (!go.load(std::memory_order_acquire)) {
        }
        for (;;) {
          outset_drain_task* t = queue.pop();
          if (t != nullptr) {
            t->run();
            queue.pending.fetch_sub(1, std::memory_order_acq_rel);
            continue;
          }
          if (finalize_done.load(std::memory_order_acquire) &&
              queue.pending.load(std::memory_order_acquire) == 0) {
            break;
          }
          std::this_thread::yield();
        }
      });
    }
    std::thread finalizer([&] {
      go.store(true, std::memory_order_release);
      std::this_thread::yield();  // land mid-wave
      o.finalize(&delivery_log::sink, &log, &drain_queue::spawn, &queue);
      finalize_done.store(true, std::memory_order_release);
    });
    for (auto& th : threads) th.join();
    finalizer.join();

    for (std::size_t i = 0; i < log.delivered.size(); ++i) {
      ASSERT_EQ(log.delivered[i].load(), 1u)
          << "round " << round << ", waiter " << i;
    }
    EXPECT_GT(o.totals().subtrees_offloaded, 0u)
        << "a scatter-deep tree must offload subtree drains";
  }
}

// --- end-to-end: deep-tree finalize through the runtime's drain lane ---

// Spec × scheduler matrix over the runtime: forced-depth scatter trees (two
// shapes) plus the never-grow ablation, each under both executors. The ws
// scheduler serves drains from its shared stealable lane; the private-deque
// scheduler hands them off through its steal-request protocol — and with
// >= 2 workers the hand-off must actually fire (drains_handed_off > 0).
class DeepTreeRuntime
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {};

TEST_P(DeepTreeRuntime, DeepTreeFinalizeDeliversEveryConsumer) {
  const std::string& sched = std::get<0>(GetParam());
  const std::string& spec = std::get<1>(GetParam());
  // Scatter specs ("tree:f:t:scatter") force grown trees, so finalize MUST
  // offload subtree drains; "tree:<f>:0" is the defined never-grow ablation
  // whose walk is the base line only — nothing to offload, and the drain
  // lane must stay dark rather than invent work.
  const bool scatter = spec.find(":1:") != std::string::npos;
  runtime_config cfg{4, "dyn"};
  cfg.outset = spec;
  cfg.sched = sched;
  runtime rt(cfg);
  for (int round = 0; round < 5; ++round) {
    ASSERT_EQ(harness::fanout(rt, 4000, 0, /*producer_ns=*/500'000), 4000u)
        << "round " << round;
  }
  // The hand-off window — a steal request landing while the finalizing
  // worker's deque holds no spare vertex but its drain queue is not empty —
  // is a scheduling coincidence. On a few-core host a thief only runs when
  // the OS preempts the finalizing worker, so the window depends on how the
  // broadcast's wall time straddles scheduling quanta: plain builds need
  // LONG rounds (a broadcast spanning several quanta gets preempted mid-
  // backlog), while sanitizer builds need SHORT ones (instrumentation
  // stretches the backlog so thieves stay active through it, and long
  // rounds just burn the budget). Alternate both shapes and retry until
  // the hand-off fires, bounded so a genuinely dark path still fails
  // loudly.
  const bool wants_handoff = scatter && sched == "private";
  if (wants_handoff) {
    // A wall-clock bound, not a round count: what the retry actually buys
    // is elapsed scheduling quanta, and rounds per quantum differ by ~10x
    // between plain and sanitizer builds. Typically resolves in
    // milliseconds; the deadline only matters when the path is dark.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(45);
    for (int round = 0; rt.sched().totals().drains_handed_off == 0 &&
                        std::chrono::steady_clock::now() < deadline;
         ++round) {
      const bool big = (round & 1) == 0;
      const std::uint64_t n = big ? 4000 : 64;
      ASSERT_EQ(harness::fanout(rt, n, 0,
                                /*producer_ns=*/big ? 500'000 : 100'000),
                n)
          << "hand-off round " << round;
    }
  }
  EXPECT_EQ(rt.engine().live_vertices(), 0u);
  const outset_totals t = rt.outsets().totals();
  EXPECT_EQ(t.adds, t.delivered)
      << "every captured registration must be delivered";
  const scheduler_totals st = rt.sched().totals();
  if (scatter) {
    EXPECT_GT(t.subtrees_offloaded, 0u)
        << "deep trees must hand subtree drains to the executor";
    EXPECT_GT(rt.engine().stats().drains_enqueued.load(), 0u)
        << "drains must be enqueued through the engine";
    EXPECT_GT(st.drains_executed, 0u)
        << "the " << sched << " scheduler must run queued drains";
    if (sched == "private") {
      EXPECT_GT(st.drains_handed_off, 0u)
          << "a multi-worker private-deque run must answer steal requests "
             "with queued drains (receiver-initiated hand-off)";
    }
  } else {
    EXPECT_EQ(t.subtrees_offloaded, 0u)
        << "the never-grow ablation has no subtrees to offload";
    EXPECT_EQ(st.drains_executed, 0u);
    EXPECT_EQ(st.drains_handed_off, 0u);
  }
}

class TimedDeepTree : public ::testing::TestWithParam<std::string> {};

TEST_P(TimedDeepTree, TimedFanoutMeasuresBroadcastLatency) {
  runtime_config cfg{2, "dyn"};
  cfg.outset = "tree:2:1:6";
  cfg.sched = GetParam();
  runtime rt(cfg);
  harness::fanout_timing timing;
  ASSERT_EQ(harness::fanout_timed(rt, 1000, 0, /*producer_ns=*/500'000,
                                  &timing),
            1000u);
  EXPECT_GT(timing.finalize_to_last_s, 0.0)
      << "finalize-to-last-delivery latency must be measured";
}

INSTANTIATE_TEST_SUITE_P(
    SchedsBySpecs, DeepTreeRuntime,
    ::testing::Combine(::testing::Values("ws", "private"),
                       ::testing::Values("tree:2:1:4", "tree:4:1:2",
                                         "tree:2:0")),
    [](const ::testing::TestParamInfo<std::tuple<std::string, std::string>>&
           info) {
      std::string name =
          std::get<0>(info.param) + "_" + std::get<1>(info.param);
      for (char& ch : name) {
        if (ch == ':') ch = '_';
      }
      return name;
    });

INSTANTIATE_TEST_SUITE_P(Scheds, TimedDeepTree,
                         ::testing::Values("ws", "private"));

// --- destruction-time waiter reclamation (regression) ---

TEST(TreeOutsetDtor, RepoolsStrandedWaitersOnDestruction) {
  // A tree destroyed with registrations still parked in it must return the
  // records to the registry's waiter pool, not drop them (the old no-op
  // sink left them stranded — caught here by pool accounting, and by ASan
  // in the sanitizer CI job).
  slab_pool_registry reg;
  object_pool& wpool = outset_waiter_pool(reg);
  constexpr std::size_t kStranded = 64;
  {
    tree_outset_config cfg;
    cfg.scatter_depth = 3;  // strand records across many nodes, not one line
    cfg.pools = &reg;
    tree_outset o(cfg);
    for (std::size_t i = 0; i < kStranded; ++i) {
      outset_waiter* w = pool_new<outset_waiter>(wpool);
      w->consumer = fake_consumer(i);
      ASSERT_TRUE(o.add(w));
    }
    EXPECT_EQ(wpool.stats().live(), kStranded);
  }  // destroyed WITHOUT reset
  EXPECT_EQ(wpool.stats().frees, kStranded)
      << "~tree_outset must route stranded records back to the waiter pool";
  EXPECT_EQ(wpool.stats().live(), 0u);
}

// --- spec parsing: scatter field and the threshold-0 ablation ---

TEST(OutsetFactorySpec, ParsesScatterDepth) {
  auto deep = make_outset_factory("tree:2:1:6");
  EXPECT_EQ(deep->name(), "tree:2:1:6");
  const auto& cfg = static_cast<tree_outset_factory&>(*deep).config();
  EXPECT_EQ(cfg.fanout, 2u);
  EXPECT_EQ(cfg.grow_threshold, 1u);
  EXPECT_EQ(cfg.scatter_depth, 6u);
  EXPECT_EQ(make_outset_factory("outset:tree:4:100:3")->name(),
            "tree:4:100:3");
  // Scatter 0 = off and stays out of the name; the name must re-parse.
  EXPECT_EQ(make_outset_factory("tree:4:100:0")->name(), "tree:4:100");
  EXPECT_EQ(make_outset_factory(deep->name())->name(), deep->name());
  // Past the depth cap, malformed, or over-long specs are rejected.
  EXPECT_THROW(make_outset_factory("tree:2:1:50"), std::invalid_argument);
  EXPECT_THROW(make_outset_factory("tree:2:1:x"), std::invalid_argument);
  EXPECT_THROW(make_outset_factory("tree:2:1:"), std::invalid_argument);
  EXPECT_THROW(make_outset_factory("tree:2:1:6:7"), std::invalid_argument);
  // Scatter forces growth, threshold 0 forbids it: contradictory, rejected
  // (scatter 0 is fine — it means "off").
  EXPECT_THROW(make_outset_factory("tree:2:0:4"), std::invalid_argument);
  EXPECT_EQ(make_outset_factory("tree:2:0:0")->name(), "tree:2:0");
}

TEST(OutsetFactorySpec, ThresholdZeroIsTheDefinedNeverGrowAblation) {
  // "tree:<f>:0" is DEFINED behavior, not a parse accident: the damping
  // coin never fires, every registration stays on the base cache line, and
  // the tree degenerates to simple_outset plus tree bookkeeping — the
  // ablation that isolates the machinery's cost from spreading's benefit.
  auto never = make_outset_factory("tree:4:0");
  EXPECT_EQ(never->name(), "tree:4:0");
  const auto& cfg = static_cast<tree_outset_factory&>(*never).config();
  EXPECT_EQ(cfg.grow_threshold, 0u);
  // Round-trips through its own name.
  EXPECT_EQ(make_outset_factory(never->name())->name(), "tree:4:0");
  // And behaves as documented: contention never grows the tree.
  outset* o = never->acquire();
  EXPECT_TRUE(o->add(never->acquire_waiter(fake_consumer(0), nullptr)));
  delivery_log log(never.get(), 1);
  o->finalize(&delivery_log::sink, &log);
  EXPECT_EQ(log.delivered[0].load(), 1u);
  never->release(o);
}

}  // namespace
}  // namespace spdag
