#pragma once
// fc_outset: flat-combining front over the single-cell CAS-list out-set.
//
// simple_outset serializes every concurrent registration on one cache line:
// n concurrent adds cost O(n) CAS retries EACH under pressure (the fan-out
// analogue of the paper's Fetch & Add baseline). The tree out-set fixes that
// by SPREADING registrations across nodes; this class is the other classic
// remedy — DIFFUSING them in place, after flat_combining_stack.h from the
// Concurrent-Containers exemplar (SNIPPETS.md). Threads publish their
// add / add_group requests to per-slot publication records (one cache line
// each, indexed by mem::thread_slot()); whoever wins the combiner flag
// gathers every pending request, links the waiters into ONE chain, and
// splices the whole batch in front of the list with a SINGLE head CAS —
// reusing add_group's chain-splice contract (simple_outset.cpp), including
// its finalize-race resolution: the splice CAS loses atomically to
// finalize's sentinel exchange, in which case every batched request is
// rejected whole and each caller self-delivers (exactly-once preserved, and
// each add_group still observes the all-or-nothing prefix-capture contract:
// n on capture, 0 on rejection, with its internal chain links restored).
//
// A thread that finds its publication slot taken (slot collision, or no
// thread slot at all) falls through to the direct simple-style head CAS —
// counted in totals().fallthroughs, so the bench JSON shows how much of the
// traffic the combiner actually absorbed (combined_ops / combiner_passes).
//
// Reclamation safety: publication records are part of the out-set object
// itself — a registry pool cell that the factory's object_bank keeps LIVE
// for the factory's lifetime (mem/object_bank.hpp), so the combiner's slot
// walk never touches unmapped memory. The waiter chains it links are owned
// exclusively between "pending" and "done" (the requester spins, the
// combiner works), so no stale read needs an epoch argument beyond the one
// the out-set already makes for its head list (src/mem/epoch.hpp): waiter
// cells are pool cells whose storage only leaves through the epoch-governed
// trim doors.

#include <cstdint>

#include "outset/outset.hpp"
#include "util/cache_aligned.hpp"

namespace spdag {

class fc_outset final : public outset {
 public:
  // Publication slots. 16 spreads a small machine's worth of threads while
  // keeping the combiner's gather walk short; collisions just fall through
  // to the direct CAS, so correctness never depends on the count.
  static constexpr std::size_t fc_slot_count = 16;

  bool add(outset_waiter* w) noexcept override;
  // All-or-nothing like simple_outset (n on capture, 0 on rejection) — the
  // batch may additionally ride a combiner splice with other threads'
  // requests, still one head CAS for the whole lot.
  std::uint32_t add_group(outset_waiter* head, outset_waiter* tail,
                          std::uint32_t n) noexcept override;
  void finalize(waiter_sink sink, void* ctx) override;
  void reset(waiter_sink sink, void* ctx) override;

 private:
  // One publication record per slot. The state word carries the hand-off:
  //   empty -> owned (requester claimed, filling fields)
  //         -> pending (request visible to a combiner)
  //         -> done_captured | done_rejected (combiner's verdict)
  //         -> empty (requester read the verdict and freed the slot)
  // Only the state word is ever touched cross-thread while a request is in
  // flight; the chain fields are published/consumed through its
  // release/acquire transitions.
  enum : std::uint32_t {
    rec_empty = 0,
    rec_owned = 1,
    rec_pending = 2,
    rec_done_captured = 3,
    rec_done_rejected = 4,
  };
  struct alignas(cache_line_size) pub_record {
    std::atomic<std::uint32_t> state{rec_empty};
    outset_waiter* head = nullptr;
    outset_waiter* tail = nullptr;
    std::uint32_t n = 0;
    bool group = false;  // add_group (counts a group_add) vs single add
  };

  // Publishes one request and waits for a verdict, becoming the combiner
  // when the flag is free. Returns true on capture. Falls back to
  // `direct_*` when no slot is available (never blocks on a collision).
  bool run_request(outset_waiter* head, outset_waiter* tail, std::uint32_t n,
                   bool group) noexcept;
  // One combiner pass: gather pending records, splice all their chains with
  // a single head CAS (or reject all against the finalize sentinel).
  void combine(std::size_t my_slot) noexcept;

  bool direct_add(outset_waiter* w) noexcept;
  std::uint32_t direct_add_group(outset_waiter* head, outset_waiter* tail,
                                 std::uint32_t n) noexcept;

  std::atomic<outset_waiter*> head_{nullptr};
  std::atomic<std::uint32_t> combiner_{0};  // 0 = free, 1 = held
  pub_record slots_[fc_slot_count];
};

}  // namespace spdag
