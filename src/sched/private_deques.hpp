#pragma once
// Work stealing with private deques and explicit steal requests.
//
// This is the receiver-initiated algorithm of Acar, Charguéraud & Rainey,
// "Scheduling Parallel Programs by Work Stealing with Private Deques"
// (PPoPP'13) — reference [2] of the reproduced paper and the scheduler its
// evaluation actually ran on. Unlike Chase-Lev, each worker's deque is a
// plain (unsynchronized) container; thieves never touch it. Instead:
//
//   * every worker owns a `request` cell thieves CAS their id into, and a
//     `transfer` cell where victims deliver;
//   * a busy worker polls its request cell between vertex executions and
//     answers with its OLDEST task (or a decline when it has nothing to
//     spare);
//   * an idle thief publishes a request to a random victim and spins on its
//     own transfer cell — declining any incoming request while it spins,
//     which is what makes thief-thief encounters deadlock-free.
//
// The trade: task execution pays zero synchronization on the deque, at the
// cost of steal latency bounded by the victim's polling interval.
//
// Out-set drain tasks (parallel finalize, see outset.hpp) ride the same
// request/response protocol, receiver-initiated like everything else here:
// each worker owns a PRIVATE drain queue, and a polled steal request that
// finds no vertex to spare is answered with the oldest queued drain instead
// of a decline. A busy worker therefore keeps the dag's critical path and
// sheds broadcast bookkeeping to whoever asked for work; a worker that goes
// idle with drains still queued runs them itself before thieving. Single-
// worker runs, external (non-worker) enqueuers with nobody to hand to, and
// a saturated queue all fall back to the executor's inline flattening
// trampoline, so the serial path is untouched.

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sched/scheduler_base.hpp"
#include "util/cache_aligned.hpp"
#include "util/rng.hpp"

namespace spdag {

struct private_deque_config {
  std::size_t workers = 0;  // 0 = hardware_core_count()
  bool pin_threads = false;
  // Failed steal attempts before a worker parks.
  std::size_t steal_attempts_before_park = 16;
  std::chrono::microseconds park_timeout{500};
  // Out-set drain tasks a worker queues privately before enqueue_drain
  // falls back to running the task inline (bounds the backlog a single
  // broadcast can park on one worker).
  std::size_t drain_queue_cap = 256;
};

class private_deque_scheduler final : public scheduler_base {
 public:
  explicit private_deque_scheduler(private_deque_config cfg = {});
  ~private_deque_scheduler() override;

  private_deque_scheduler(const private_deque_scheduler&) = delete;
  private_deque_scheduler& operator=(const private_deque_scheduler&) = delete;

  void enqueue(vertex* v) override;

  // Receiver-initiated drain hand-off (see file comment): worker callers
  // queue the task privately for communicate() to answer steal requests
  // with; external callers inject it for an idle worker to adopt. Falls
  // back to the inline flattening trampoline with one worker or a full
  // queue. run() counts outstanding drains toward quiescence.
  void enqueue_drain(outset_drain_task* t) override;

  void run(dag_engine& engine, vertex* root, vertex* final_v) override;

  // Resident-service mode (see scheduler_base): attach the engine so
  // externally injected roots execute without a surrounding run(); detach
  // after spinning out to idleness.
  void begin_service(dag_engine& engine) override;
  void end_service() override;
  bool service_idle() const override;

  std::size_t worker_count() const override { return workers_.size(); }
  scheduler_totals totals() const override;
  void reset_totals() override;

 private:
  static constexpr int no_request = -1;
  // Transfer-cell sentinels (never valid vertex addresses). drain_given()
  // means "no vertex, but your drain_transfer cell holds a drain task".
  static vertex* waiting() { return reinterpret_cast<vertex*>(std::uintptr_t{1}); }
  static vertex* declined() { return reinterpret_cast<vertex*>(std::uintptr_t{2}); }
  static vertex* drain_given() { return reinterpret_cast<vertex*>(std::uintptr_t{3}); }

  // Stat counters are relaxed atomics: worker-local (uncontended) on the
  // hot path, but totals()/reset_totals() may run while idle workers are
  // still bumping their park counts.
  struct worker {
    std::deque<vertex*> tasks;                // private: owner-only
    std::deque<outset_drain_task*> drains;    // private: owner-only
    cache_aligned<std::atomic<int>> request{no_request};
    cache_aligned<std::atomic<vertex*>> transfer{nullptr};
    // Companion to the transfer cell: the victim parks the handed-off drain
    // here before publishing drain_given() in `transfer`.
    cache_aligned<std::atomic<outset_drain_task*>> drain_transfer{nullptr};
    std::atomic<std::uint64_t> executions{0};
    std::atomic<std::uint64_t> steals{0};
    std::atomic<std::uint64_t> failed_steals{0};
    std::atomic<std::uint64_t> parks{0};
    std::atomic<std::uint64_t> requests_served{0};
    std::atomic<std::uint64_t> requests_declined{0};
    std::atomic<std::uint64_t> drains_executed{0};
    std::atomic<std::uint64_t> drains_stolen{0};
    std::atomic<std::uint64_t> drains_handed_off{0};
  };

  // Mutexed FIFO with a lock-free emptiness probe, used for work injected
  // by non-worker threads (vertices and drain tasks alike).
  template <typename T>
  struct injection_queue {
    std::mutex mu;
    std::deque<T*> items;
    std::atomic<std::size_t> size{0};

    void push(T* item) {
      std::lock_guard<std::mutex> lock(mu);
      items.push_back(item);
      size.fetch_add(1, std::memory_order_release);
    }
    T* pop() {
      if (size.load(std::memory_order_acquire) == 0) return nullptr;
      std::lock_guard<std::mutex> lock(mu);
      if (items.empty()) return nullptr;
      T* item = items.front();
      items.pop_front();
      size.fetch_sub(1, std::memory_order_release);
      return item;
    }
  };

  void worker_main(std::size_t id);
  // Answers a pending steal request; `can_give` = serve the oldest task.
  // With no vertex to spare it serves the oldest queued drain instead
  // (broadcast bookkeeping never outranks the dag's critical path, but it
  // beats declining an idle core), and only then declines.
  void communicate(std::size_t id, bool can_give);
  // On success returns a vertex. Returning null with *drain_out set means
  // the victim answered with a drain hand-off instead of a vertex.
  vertex* try_steal(std::size_t id, std::size_t victim,
                    outset_drain_task** drain_out);
  // Runs one drain task on worker `id` and settles the pending count;
  // `migrated` = it was enqueued by a different worker (or externally).
  void run_drain(std::size_t id, outset_drain_task* t, bool migrated);
  void unpark_some();

  private_deque_config cfg_;
  std::vector<std::unique_ptr<padded<worker>>> workers_;
  std::vector<std::thread> threads_;

  injection_queue<vertex> injected_;
  // Drains enqueued by non-worker threads; idle workers adopt and run them.
  injection_queue<outset_drain_task> injected_drains_;
  // Enqueued but not yet finished draining (decremented after run(), so a
  // zero means every queued subtree is fully delivered — run() waits on it).
  std::atomic<int> drains_pending_{0};

  std::mutex park_mu_;
  std::condition_variable park_cv_;
  std::atomic<int> parked_{0};

  std::atomic<bool> shutdown_{false};
  std::atomic<bool> service_{false};
  std::atomic<dag_engine*> engine_{nullptr};
  std::atomic<vertex*> stop_vertex_{nullptr};
  std::atomic<int> active_{0};

  std::mutex done_mu_;
  std::condition_variable done_cv_;
  std::atomic<bool> done_{true};
};

}  // namespace spdag
