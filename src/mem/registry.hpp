#pragma once
// pool_registry: get-or-create directory of object_pools keyed by
// (name, cell size), selected by spec string through runtime_config —
// mirroring the in-counter/out-set factory pattern.
//
// Spec strings (accepted with or without the "alloc:" prefix):
//   "malloc"              every pool is a malloc_pool passthrough (baseline)
//   "pool"                slab pools, default block + magazine budget
//   "pool:<block>"        slab pools with the given upstream block size
//                         (bytes in [4096, 1<<24])
//   "pool:<block>:<mag>"  ... plus a per-magazine byte budget (bytes in
//                         [256, 1<<20]; the magazine CELL capacity derived
//                         from it is clamped to [8, 128], see slab_pool.hpp)
//   "...:adaptive"        any pool form may append ":adaptive" (shortest:
//                         "pool:adaptive") — magazines then resize their
//                         effective capacity at runtime on refill/flush
//                         ping-pong instead of pinning it at the derived cap
//   "...:elim"            any pool form may append ":elim" (shortest:
//                         "pool:elim"; combines with ":adaptive" in either
//                         order) — an elimination array then fronts the
//                         global recycle list so cross-worker free / refill-
//                         miss pairs rendezvous on randomized slots instead
//                         of serializing on the Treiber head (slab_pool.hpp)
// Each flag may appear at most once. Malloc pools have no recycle list to
// diffuse, so "malloc:elim" is rejected like any other unknown spec.
// Throws std::invalid_argument on anything else.
//
// One registry per runtime: the runtime constructs it first and destroys it
// last, so every structure above it (engine, counter factory, out-set
// factory) can cache `object_pool&` references for its lifetime. A
// process-wide default registry (slab pools) backs engines and futures
// created outside any runtime.

#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "mem/pool.hpp"

namespace spdag {

// One row of a registry stats snapshot.
struct pool_registry_row {
  std::string name;          // composed key, e.g. "future_state:48:a8"
  std::size_t object_bytes;
  pool_stats stats;
};

class pool_registry {
 public:
  virtual ~pool_registry() = default;

  // Thread-safe get-or-create. Pools are keyed by name, cell size AND
  // alignment, so one logical name used at several geometries
  // (future_state<T> across Ts, out-set groups across fanouts) maps to one
  // pool per geometry. The reference stays valid until the registry dies.
  // Callers on hot paths should cache it (the lookup takes a mutex).
  object_pool& get(const std::string& name, std::size_t bytes,
                   std::size_t align);

  // Snapshot of every pool, creation order.
  std::vector<pool_registry_row> rows() const;

  // All pools summed — the headline bench stat.
  pool_stats totals() const;

  // Quiescent-only (see object_pool::trim): trims every pool, returning the
  // total number of slabs released upstream. The quiescence contract covers
  // EVERY engine and structure drawing from this registry — for a
  // runtime-owned registry that is its one engine between run()s
  // (dag_engine::trim_pools); for the process-wide default registry the
  // caller must know no engine sharing it is running. Also drives the epoch
  // machinery far enough (two advances + a reclaim, trivially successful at
  // quiescence) to flush any slabs an earlier trim_live() left in limbo;
  // those count toward the returned total.
  std::size_t trim();

  // Live-traffic trim (see object_pool::trim_live): legal under concurrent
  // traffic, retires fully-free slabs into epoch limbo and then drives one
  // advance + reclaim sweep. Returns the number of slabs retired this call;
  // `reclaimed`, when non-null, receives how many limbo slabs (from any
  // earlier retire on this process's epoch domain) were actually freed.
  // Returns 0 with the epoch subsystem compiled out.
  std::size_t trim_live(std::size_t* reclaimed = nullptr);

  // The spec string this registry was built from ("malloc", "pool", ...).
  virtual std::string spec() const = 0;

 protected:
  virtual std::unique_ptr<object_pool> create(std::string name,
                                              std::size_t bytes,
                                              std::size_t align) = 0;

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<object_pool>> pools_;
};

class malloc_pool_registry final : public pool_registry {
 public:
  std::string spec() const override { return "malloc"; }

 protected:
  std::unique_ptr<object_pool> create(std::string name, std::size_t bytes,
                                      std::size_t align) override;
};

class slab_pool_registry final : public pool_registry {
 public:
  // 0 for either byte knob = slab_cache's default.
  explicit slab_pool_registry(std::size_t slab_bytes = 0,
                              std::size_t magazine_bytes = 0,
                              bool adaptive = false,
                              bool elim = false) noexcept
      : slab_bytes_(slab_bytes),
        magazine_bytes_(magazine_bytes),
        adaptive_(adaptive),
        elim_(elim) {}
  std::string spec() const override;

 protected:
  std::unique_ptr<object_pool> create(std::string name, std::size_t bytes,
                                      std::size_t align) override;

 private:
  std::size_t slab_bytes_;
  std::size_t magazine_bytes_;
  bool adaptive_;
  bool elim_;
};

// Parses an alloc spec (see file comment).
std::unique_ptr<pool_registry> make_pool_registry(const std::string& spec);

// Process-wide slab registry used by engines, counters, and futures that
// were not handed an explicit registry.
pool_registry& default_pool_registry();

}  // namespace spdag
