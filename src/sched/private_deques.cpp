#include "sched/private_deques.hpp"

#include <cassert>

#include "mem/epoch.hpp"
#include "obs/trace.hpp"
#include "outset/outset.hpp"
#include "util/backoff.hpp"
#include "util/topology.hpp"

namespace spdag {

namespace {
thread_local int tls_pd_worker_id = -1;
thread_local private_deque_scheduler* tls_pd_scheduler = nullptr;
}  // namespace

private_deque_scheduler::private_deque_scheduler(private_deque_config cfg)
    : cfg_(cfg) {
  const std::size_t n = cfg_.workers == 0 ? hardware_core_count() : cfg_.workers;
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<padded<worker>>());
  }
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { worker_main(i); });
  }
}

private_deque_scheduler::~private_deque_scheduler() {
  shutdown_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(park_mu_);
    park_cv_.notify_all();
  }
  for (auto& t : threads_) t.join();
  // Structured teardown leaves nothing here: run() holds out for drain
  // quiescence, so queued drains at destruction can only come from direct
  // executor use (tests, unstructured embeddings). A drain task must run
  // exactly once or its cell leaks, so flush the queues and any hand-off
  // abandoned mid-transfer on this thread — workers are joined, so this is
  // single-threaded. Tasks that re-offload go through enqueue_drain again
  // and land in the injected queue (this thread is not a worker), which the
  // loop below keeps draining.
  auto run_leftover = [this](outset_drain_task* t) {
    t->run();
    drains_pending_.fetch_sub(1, std::memory_order_relaxed);
  };
  for (auto& w : workers_) {
    worker& me = w->value;
    if (outset_drain_task* t =
            me.drain_transfer.value.load(std::memory_order_acquire)) {
      me.drain_transfer.value.store(nullptr, std::memory_order_relaxed);
      run_leftover(t);
    }
    while (!me.drains.empty()) {
      outset_drain_task* t = me.drains.front();
      me.drains.pop_front();
      run_leftover(t);
    }
  }
  while (outset_drain_task* t = injected_drains_.pop()) run_leftover(t);
  assert(drains_pending_.load(std::memory_order_acquire) == 0 &&
         "drain accounting out of balance at teardown");
}

void private_deque_scheduler::enqueue(vertex* v) {
  if (tls_pd_scheduler == this && tls_pd_worker_id >= 0) {
    // Owner-only push; no synchronization by design.
    workers_[static_cast<std::size_t>(tls_pd_worker_id)]->value.tasks.push_back(v);
  } else {
    injected_.push(v);
  }
  obs::gauge_add(obs::g_runnable, 1);
  unpark_some();
}

void private_deque_scheduler::enqueue_drain(outset_drain_task* t) {
  if (workers_.size() > 1) {
    if (tls_pd_scheduler == this && tls_pd_worker_id >= 0) {
      // Worker path: queue privately. communicate() answers steal requests
      // from it, and the idle path below runs what nobody asked for.
      worker& me = workers_[static_cast<std::size_t>(tls_pd_worker_id)]->value;
      if (me.drains.size() < cfg_.drain_queue_cap) {
        drains_pending_.fetch_add(1, std::memory_order_acq_rel);
        me.drains.push_back(t);
        obs::gauge_add(obs::g_drains_pending, 1);
        obs::emit(obs::ev_drain_enqueue);
        unpark_some();
        return;
      }
      // Saturated: fall through to the inline trampoline rather than grow
      // an unbounded private backlog thieves may never ask for.
    } else {
      // External thread: nothing private to queue on; inject for an idle
      // worker to adopt (the dual of the vertex injection queue).
      drains_pending_.fetch_add(1, std::memory_order_acq_rel);
      injected_drains_.push(t);
      obs::gauge_add(obs::g_drains_pending, 1);
      obs::emit(obs::ev_drain_enqueue);
      unpark_some();
      return;
    }
  }
  // Single worker (no thief to hand to) or saturated queue: run inline
  // through the flattening trampoline, same as the serial executor.
  executor::enqueue_drain(t);
}

void private_deque_scheduler::run_drain(std::size_t id, outset_drain_task* t,
                                        bool migrated) {
  {
    obs::span_guard sg(obs::sp_drain);
    t->run();
  }
  obs::gauge_add(obs::g_drains_pending, -1);
  worker& me = workers_[id]->value;
  me.drains_executed.fetch_add(1, std::memory_order_relaxed);
  if (migrated) {
    me.drains_stolen.fetch_add(1, std::memory_order_relaxed);
    obs::emit(obs::ev_drain_steal);
  }
  // Decrement AFTER run(), and after any re-offloads the task made bumped
  // the count: pending==0 must mean fully delivered, not merely dequeued
  // (run() spins on it for quiescence).
  drains_pending_.fetch_sub(1, std::memory_order_acq_rel);
}

void private_deque_scheduler::unpark_some() {
  if (parked_.load(std::memory_order_acquire) > 0) {
    std::lock_guard<std::mutex> lock(park_mu_);
    park_cv_.notify_one();
  }
}

void private_deque_scheduler::communicate(std::size_t id, bool can_give) {
  // communicate() is this scheduler's natural epoch communication point: it
  // runs only between tasks (busy-loop top, idle path, try_steal's answer
  // spin), when the worker provably holds no stale runtime pointers — so
  // refreshing the pin and occasionally driving advance/reclaim here is
  // legal, and it keeps epoch progress proportional to scheduler activity.
  mem::epoch::tick();
  worker& me = workers_[id]->value;
  const int thief = me.request.value.load(std::memory_order_acquire);
  if (thief == no_request) return;
  worker& other = workers_[static_cast<std::size_t>(thief)]->value;
  if (can_give && !me.tasks.empty()) {
    // Serve the OLDEST task: it is the root of the largest unexplored
    // subcomputation, the standard steal-one-from-the-top heuristic.
    vertex* v = me.tasks.front();
    me.tasks.pop_front();
    other.transfer.value.store(v, std::memory_order_release);
    me.requests_served.fetch_add(1, std::memory_order_relaxed);
  } else if (!me.drains.empty()) {
    // No vertex to spare, but broadcast bookkeeping is queued: hand the
    // OLDEST drain (nearest the out-set root, the widest subtree) to the
    // thief. The drain_transfer store must precede the drain_given()
    // publication — the thief's acquire on `transfer` is what orders it.
    outset_drain_task* t = me.drains.front();
    me.drains.pop_front();
    other.drain_transfer.value.store(t, std::memory_order_release);
    other.transfer.value.store(drain_given(), std::memory_order_release);
    me.drains_handed_off.fetch_add(1, std::memory_order_relaxed);
    obs::emit(obs::ev_drain_handoff, static_cast<std::uint16_t>(thief));
    me.requests_served.fetch_add(1, std::memory_order_relaxed);
  } else {
    other.transfer.value.store(declined(), std::memory_order_release);
    me.requests_declined.fetch_add(1, std::memory_order_relaxed);
  }
  me.request.value.store(no_request, std::memory_order_release);
}

vertex* private_deque_scheduler::try_steal(std::size_t id, std::size_t victim,
                                           outset_drain_task** drain_out) {
  worker& me = workers_[id]->value;
  me.transfer.value.store(waiting(), std::memory_order_release);
  int expect = no_request;
  if (!workers_[victim]->value.request.value.compare_exchange_strong(
          expect, static_cast<int>(id), std::memory_order_acq_rel)) {
    return nullptr;  // another thief beat us to this victim
  }
  // Spin for the answer; keep declining our own incoming requests so two
  // thieves waiting on each other cannot deadlock (an idle thief may still
  // hand off its own queued drains, which only helps).
  backoff b;
  for (;;) {
    vertex* v = me.transfer.value.load(std::memory_order_acquire);
    if (v == drain_given()) {
      *drain_out = me.drain_transfer.value.load(std::memory_order_acquire);
      me.drain_transfer.value.store(nullptr, std::memory_order_relaxed);
      return nullptr;
    }
    if (v != waiting()) {
      return v == declined() ? nullptr : v;
    }
    communicate(id, /*can_give=*/false);
    if (shutdown_.load(std::memory_order_acquire)) return nullptr;
    b.pause();
  }
}

void private_deque_scheduler::worker_main(std::size_t id) {
  tls_pd_worker_id = static_cast<int>(id);
  tls_pd_scheduler = this;
  if (cfg_.pin_threads) pin_current_thread(id);
  xoshiro256 rng(mix64(0xa076'1d64'78bd'642fULL ^ (id + 1)));
  worker& me = workers_[id]->value;

  // Same protocol as the ws scheduler (scheduler.cpp): pinned for the whole
  // loop so every stale read is epoch-covered, refreshed at the loop top,
  // ticked inside communicate(), unpinned across the park below.
  mem::epoch::pin_guard eg;

  while (!shutdown_.load(std::memory_order_acquire)) {
    mem::epoch::refresh();
    if (!me.tasks.empty()) {
      // Busy: poll for steal requests, then run the newest task (LIFO for
      // locality; thieves get the oldest through communicate()).
      communicate(id, /*can_give=*/me.tasks.size() > 1);
      vertex* v = me.tasks.back();
      me.tasks.pop_back();
      dag_engine* eng = engine_.load(std::memory_order_acquire);
      assert(eng != nullptr && "work found with no engine attached");
      const bool is_final = (v == stop_vertex_.load(std::memory_order_relaxed));
      active_.fetch_add(1, std::memory_order_acq_rel);
      obs::gauge_add(obs::g_runnable, -1);
      {
        obs::span_guard sg(obs::sp_work);
        eng->execute(v);
      }
      active_.fetch_sub(1, std::memory_order_acq_rel);
      me.executions.fetch_add(1, std::memory_order_relaxed);
      if (is_final) {
        std::lock_guard<std::mutex> lock(done_mu_);
        done_.store(true, std::memory_order_release);
        done_cv_.notify_all();
      }
      continue;
    }

    // Idle: decline anything pending, drain the injection queue, then run
    // queued broadcast work, then go thieving. Own drains come before
    // stealing — an idle worker IS the idle core the hand-off exists to
    // reach, so running the backlog here beats shipping it anywhere — and
    // before parking, so a worker never sleeps on deliverable waiters.
    communicate(id, /*can_give=*/false);
    if (vertex* v = injected_.pop()) {
      me.tasks.push_back(v);
      continue;
    }
    if (!me.drains.empty()) {
      outset_drain_task* t = me.drains.front();
      me.drains.pop_front();
      run_drain(id, t, /*migrated=*/false);
      continue;
    }
    if (outset_drain_task* t = injected_drains_.pop()) {
      run_drain(id, t, /*migrated=*/true);
      continue;
    }
    bool got = false;
    for (std::size_t attempt = 0;
         attempt < cfg_.steal_attempts_before_park && !got; ++attempt) {
      const std::size_t victim =
          static_cast<std::size_t>(rng.below(workers_.size()));
      if (victim == id) continue;
      outset_drain_task* drain = nullptr;
      vertex* v = nullptr;
      {
        // Scope the steal span around the request round-trip only, so a
        // handed-off drain below lands in the drain bucket, not steal.
        obs::span_guard sg(obs::sp_steal);
        obs::emit(obs::ev_steal_attempt, static_cast<std::uint16_t>(victim));
        v = try_steal(id, victim, &drain);
      }
      if (v != nullptr) {
        me.tasks.push_back(v);
        me.steals.fetch_add(1, std::memory_order_relaxed);
        obs::emit(obs::ev_steal_success, static_cast<std::uint16_t>(victim));
        got = true;
      } else if (drain != nullptr) {
        // The victim had no vertex to spare and answered with broadcast
        // work instead: the receiver-initiated drain hand-off.
        run_drain(id, drain, /*migrated=*/true);
        got = true;
      } else {
        me.failed_steals.fetch_add(1, std::memory_order_relaxed);
        communicate(id, /*can_give=*/false);
      }
      if (shutdown_.load(std::memory_order_acquire)) return;
    }
    if (got) continue;

    // Park briefly; the timeout bounds both lost wakeups and the extra
    // latency a spinning thief sees while we sleep. Unpin across the wait
    // (a sleeping worker must not stall the global epoch); the shutdown
    // check is an if-guard, not a break, so the unpin/pin bracket stays
    // balanced and the loop condition re-checks shutdown.
    mem::epoch::unpin();
    {
      std::unique_lock<std::mutex> lock(park_mu_);
      if (!shutdown_.load(std::memory_order_acquire)) {
        me.parks.fetch_add(1, std::memory_order_relaxed);
        parked_.fetch_add(1, std::memory_order_acq_rel);
        {
          obs::span_guard sg(obs::sp_idle);
          park_cv_.wait_for(lock, cfg_.park_timeout);
        }
        parked_.fetch_sub(1, std::memory_order_acq_rel);
      }
    }
    mem::epoch::pin();
  }
}

void private_deque_scheduler::begin_service(dag_engine& engine) {
  assert(&engine.exec() == static_cast<executor*>(this) &&
         "engine must be bound to this scheduler");
  assert(done_.load(std::memory_order_acquire) &&
         "begin_service may not overlap run()");
  assert(!service_.load(std::memory_order_acquire) &&
         "begin_service called twice");
  service_.store(true, std::memory_order_release);
  engine_.store(&engine, std::memory_order_release);
}

void private_deque_scheduler::end_service() {
  assert(service_.load(std::memory_order_acquire) &&
         "end_service without begin_service");
  // The caller guarantees no further roots will be injected; spin out
  // whatever is still in flight (parked workers re-check on their timeout).
  backoff b;
  while (!service_idle()) b.pause();
  engine_.store(nullptr, std::memory_order_release);
  service_.store(false, std::memory_order_release);
}

bool private_deque_scheduler::service_idle() const {
  return injected_.size.load(std::memory_order_acquire) == 0 &&
         injected_drains_.size.load(std::memory_order_acquire) == 0 &&
         drains_pending_.load(std::memory_order_acquire) == 0 &&
         active_.load(std::memory_order_acquire) == 0;
}

void private_deque_scheduler::run(dag_engine& engine, vertex* root,
                                  vertex* final_v) {
  assert(&engine.exec() == static_cast<executor*>(this) &&
         "engine must be bound to this scheduler");
  assert(!service_.load(std::memory_order_acquire) &&
         "run() may not overlap resident-service mode");
  engine_.store(&engine, std::memory_order_release);
  stop_vertex_.store(final_v, std::memory_order_release);
  done_.store(false, std::memory_order_release);
  enqueue(root);
  {
    std::lock_guard<std::mutex> lock(park_mu_);
    park_cv_.notify_all();
  }
  {
    std::unique_lock<std::mutex> lock(done_mu_);
    done_cv_.wait(lock, [this] { return done_.load(std::memory_order_acquire); });
  }
  // The final vertex ran, but a worker may still be in a vertex epilogue,
  // and empty-subtree drain tasks (no consumer gated the finish on them)
  // may still sit in private drain queues holding pinned future states.
  // Spin out both so returning from run() implies every vertex is recycled
  // and every drain delivered.
  backoff b;
  while (active_.load(std::memory_order_acquire) != 0 ||
         drains_pending_.load(std::memory_order_acquire) != 0) {
    b.pause();
  }
  stop_vertex_.store(nullptr, std::memory_order_release);
}

scheduler_totals private_deque_scheduler::totals() const {
  scheduler_totals t;
  for (const auto& w : workers_) {
    t.executions += w->value.executions.load(std::memory_order_relaxed);
    t.steals += w->value.steals.load(std::memory_order_relaxed);
    t.failed_steal_sweeps += w->value.failed_steals.load(std::memory_order_relaxed);
    t.parks += w->value.parks.load(std::memory_order_relaxed);
    t.drains_executed += w->value.drains_executed.load(std::memory_order_relaxed);
    t.drains_stolen += w->value.drains_stolen.load(std::memory_order_relaxed);
    t.drains_handed_off +=
        w->value.drains_handed_off.load(std::memory_order_relaxed);
  }
  return t;
}

void private_deque_scheduler::reset_totals() {
  for (auto& w : workers_) {
    w->value.executions.store(0, std::memory_order_relaxed);
    w->value.steals.store(0, std::memory_order_relaxed);
    w->value.failed_steals.store(0, std::memory_order_relaxed);
    w->value.parks.store(0, std::memory_order_relaxed);
    w->value.requests_served.store(0, std::memory_order_relaxed);
    w->value.requests_declined.store(0, std::memory_order_relaxed);
    w->value.drains_executed.store(0, std::memory_order_relaxed);
    w->value.drains_stolen.store(0, std::memory_order_relaxed);
    w->value.drains_handed_off.store(0, std::memory_order_relaxed);
  }
}

}  // namespace spdag
