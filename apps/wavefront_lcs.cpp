// apps/wavefront_lcs: blocked anti-diagonal LCS wavefront — the
// dependency-chain-heavy application bench for the batched spawn path. Each
// diagonal is one finish block whose blocks fan out through the blocked
// builder (batch on) or the fork2 splitter (batch off), swept over both
// schedulers. Emits one schema-2 JSON record per configuration with the
// amortization ledger (`edges`, `counter_ops`, `counter_ops_per_edge`) and
// the conservation pair (`completed`, `spawned`) for
// scripts/perf_smoke_gate.py --apps.
//
// Usage: app_wavefront_lcs [-n len] [-block 64] [-proc P] [-runs R]
//                          [-json path]

#include <cstdio>
#include <string>

#include "apps/wavefront_lcs.hpp"
#include "harness/bench_runner.hpp"
#include "util/cli.hpp"
#include "util/histogram.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace spdag;
  options opts(argc, argv);
  const auto common = harness::read_common(opts, /*default_n=*/1024);
  harness::json_open(opts, "apps");
  const std::size_t block =
      static_cast<std::size_t>(opts.get_int("block", 64));

  apps::lcs_config base;
  base.len = common.n;
  base.block = block;
  const std::uint32_t expected = apps::lcs_serial(
      apps::random_dna(base.len, base.seed),
      apps::random_dna(base.len, base.seed + 1));
  std::printf("# apps/wavefront_lcs: len=%zu block=%zu cells=%llu proc=%zu "
              "runs=%d serial_lcs=%u\n",
              base.len, base.block,
              static_cast<unsigned long long>(base.len * base.len),
              common.max_proc, common.runs, expected);

  const double cells = static_cast<double>(base.len) * base.len;
  result_table table({"sched", "batch", "mean_s", "Mcells/s", "ops_per_edge"});
  for (const char* sched : {"ws", "private"}) {
    for (const bool batch : {false, true}) {
      runtime_config rc;
      rc.workers = common.max_proc;
      rc.sched = sched;
      runtime rt(rc);
      apps::lcs_config cfg = base;
      cfg.batch = batch;
      // Warm-up fixes the golden checksum and cross-checks the serial dp.
      const apps::lcs_result golden = apps::lcs_run(rt, cfg);
      if (golden.length != expected) {
        std::fprintf(stderr, "lcs: length %u != serial %u (sched=%s batch=%d)\n",
                     golden.length, expected, sched, batch ? 1 : 0);
        return 1;
      }
      rt.engine().stats().reset();  // scope the ledger to the measured runs

      run_stats stats;
      latency_histogram hist;
      for (int r = 0; r < common.runs; ++r) {
        wall_timer t;
        const apps::lcs_result res = apps::lcs_run(rt, cfg);
        const double s = t.elapsed_s();
        stats.add(s);
        hist.record(static_cast<std::uint64_t>(s * 1e9));
        if (res.length != golden.length ||
            res.cells_checksum != golden.cells_checksum) {
          std::fprintf(stderr, "lcs: nondeterministic cells "
                               "(sched=%s batch=%d run=%d)\n",
                       sched, batch ? 1 : 0, r);
          return 1;
        }
      }

      const engine_stats& es = rt.engine().stats();
      const double edges =
          static_cast<double>(es.edges.load(std::memory_order_relaxed));
      const double cops = static_cast<double>(
          es.counter_incs.load(std::memory_order_relaxed) +
          es.counter_decs.load(std::memory_order_relaxed));
      const double ratio = edges > 0 ? cops / (2.0 * edges) : 0.0;
      table.add_row({sched, batch ? "on" : "off",
                     result_table::num(stats.mean(), 4),
                     result_table::num(stats.mean() > 0
                                           ? cells / stats.mean() / 1e6
                                           : 0.0, 1),
                     result_table::num(ratio, 4)});

      if (harness::json_enabled()) {
        harness::json_record rec;
        rec.name = "wavefront_lcs/dyn/sched:";
        rec.name += sched;
        rec.name += "/proc:";
        rec.name += std::to_string(common.max_proc);
        if (batch) rec.name += "/batch";
        rec.spec = "dyn";
        rec.sched = sched;
        rec.proc = common.max_proc;
        rec.runs = common.runs;
        rec.ops_per_s = stats.mean() > 0 ? cells / stats.mean() : 0.0;
        rec.wall_s = stats.mean();
        rec.lat_p50_ms = static_cast<double>(hist.percentile_ns(0.50)) * 1e-6;
        rec.lat_p95_ms = static_cast<double>(hist.percentile_ns(0.95)) * 1e-6;
        rec.lat_p99_ms = static_cast<double>(hist.percentile_ns(0.99)) * 1e-6;
        rec.pools = rt.pools().rows();
        rec.pool_totals = rt.pools().totals();
        rec.outsets = rt.outsets().totals();
        rec.sched_totals = rt.sched().totals();
        rec.extra.emplace_back("edges", edges);
        rec.extra.emplace_back("counter_ops", cops);
        rec.extra.emplace_back("counter_ops_per_edge", ratio);
        rec.extra.emplace_back(
            "completed", static_cast<double>(
                             es.executions.load(std::memory_order_relaxed)));
        rec.extra.emplace_back(
            "spawned",
            static_cast<double>(
                es.vertices_created.load(std::memory_order_relaxed)));
        rec.extra.emplace_back("batch", batch ? 1.0 : 0.0);
        harness::json_add(std::move(rec));
      }
    }
  }
  harness::emit(table, common.csv);
  return harness::json_write();
}
