#include "snzi/node.hpp"

#include "util/rng.hpp"

namespace spdag::snzi {

namespace {

// Tagged-pointer packing for the free-pair stack: 48-bit pointer, 16-bit tag.
// x86-64/AArch64 user pointers fit in 48 bits; the monotone tag defeats ABA
// between a pop's head read and its CAS.
constexpr std::uint64_t ptr_mask = (1ULL << 48) - 1;

std::uint64_t pack_tagged(child_pair* p, std::uint64_t tag) noexcept {
  return (reinterpret_cast<std::uintptr_t>(p) & ptr_mask) | (tag << 48);
}
child_pair* ptr_of(std::uint64_t v) noexcept {
  return reinterpret_cast<child_pair*>(v & ptr_mask);
}
std::uint64_t tag_of(std::uint64_t v) noexcept { return v >> 48; }

}  // namespace

void free_pair_push(tree_context& ctx, child_pair* pair) noexcept {
  std::uint64_t head = ctx.free_pairs.load(std::memory_order_acquire);
  for (;;) {
    pair->next_free.store(ptr_of(head), std::memory_order_relaxed);
    const std::uint64_t fresh = pack_tagged(pair, tag_of(head) + 1);
    if (ctx.free_pairs.compare_exchange_weak(head, fresh, std::memory_order_release,
                                             std::memory_order_acquire)) {
      return;
    }
  }
}

child_pair* free_pair_pop(tree_context& ctx) noexcept {
  std::uint64_t head = ctx.free_pairs.load(std::memory_order_acquire);
  for (;;) {
    child_pair* top = ptr_of(head);
    if (top == nullptr) return nullptr;
    child_pair* next = top->next_free.load(std::memory_order_relaxed);
    const std::uint64_t fresh = pack_tagged(next, tag_of(head) + 1);
    if (ctx.free_pairs.compare_exchange_weak(head, fresh, std::memory_order_acquire,
                                             std::memory_order_acquire)) {
      return top;
    }
  }
}

std::size_t free_pair_count(const tree_context& ctx) noexcept {
  std::size_t n = 0;
  for (child_pair* p = ptr_of(ctx.free_pairs.load(std::memory_order_acquire));
       p != nullptr; p = p->next_free.load(std::memory_order_relaxed)) {
    ++n;
  }
  return n;
}

int node::arrive(std::uint32_t n) noexcept {
  assert(n >= 1 && "arrive posts at least one surplus unit");
  visit();
  tree_context* ctx = context();
  stat_add(ctx->stats, &tree_stats::arrives);
  int hops = 1;
  int undo = 0;
  // Units still to post at this node. The single-unit protocol (n == 1) is
  // the original SNZI arrive; the batched generalization posts all remaining
  // units in one CAS whenever it owns the transition (the h >= 2 fast path,
  // or the 1/2 -> n commit when we installed the intermediate state). The
  // only way a batch is split is a helper committing our 1/2 -> 1 first —
  // that accounts exactly one of our units, so we shrink `remaining` and
  // continue; the helper's parent arrival then stands in for ours (undo).
  std::uint32_t remaining = n;
  while (remaining > 0) {
    std::uint64_t x = cv_.load(std::memory_order_acquire);
    const std::uint32_t h = half_of(x);
    const std::uint32_t v = ver_of(x);
    if (h >= 2) {
      // Surplus already positive: a plain increment, no propagation.
      if (cv_.compare_exchange_strong(x, pack(h + 2 * remaining, v),
                                      std::memory_order_seq_cst,
                                      std::memory_order_acquire)) {
        remaining = 0;
      } else {
        stat_add(ctx->stats, &tree_stats::cas_failures);
      }
      continue;
    }
    bool installer = false;
    if (h == 0) {
      // Begin a 0 -> positive transition by installing the intermediate 1/2.
      if (!cv_.compare_exchange_strong(x, pack(1, v + 1), std::memory_order_seq_cst,
                                       std::memory_order_acquire)) {
        stat_add(ctx->stats, &tree_stats::cas_failures);
        continue;
      }
      installer = true;
      x = pack(1, v + 1);
    }
    // Here half_of(x) == 1: either we installed 1/2 just now (installer) or
    // we read another thread's in-flight transition (helper). Either way,
    // make sure the parent has heard about this node's surplus before
    // committing 1/2 -> positive (SNZI invariant 1). The installer commits
    // ALL its remaining units at once; a helper commits the installer's
    // single unit exactly as in the original protocol, then loops to post
    // its own units on the now-positive word.
    hops += arrive_parent();
    std::uint64_t expect = x;
    const std::uint32_t target = installer ? 2 * remaining : 2;
    if (cv_.compare_exchange_strong(expect, pack(target, ver_of(x)),
                                    std::memory_order_seq_cst,
                                    std::memory_order_acquire)) {
      if (installer) remaining = 0;
    } else {
      // Someone else committed (or the state moved on): our parent arrival
      // is superfluous and must be undone after we finish. When we were the
      // installer, the helper's commit made the surplus exactly 1 — one of
      // our units is accounted; the rest go through the h >= 2 path.
      ++undo;
      if (installer) --remaining;
    }
  }
  while (undo-- > 0) {
    stat_add(ctx->stats, &tree_stats::undo_departs);
    depart_parent();
  }
  return hops;
}

bool node::depart() noexcept {
  visit();
  tree_context* ctx = context();
  stat_add(ctx->stats, &tree_stats::departs);
  std::uint64_t x = cv_.load(std::memory_order_acquire);
  for (;;) {
    const std::uint32_t h = half_of(x);
    const std::uint32_t v = ver_of(x);
    assert(h >= 2 && "depart on a node without surplus (invalid execution)");
    if (cv_.compare_exchange_strong(x, pack(h - 2, v), std::memory_order_seq_cst,
                                    std::memory_order_acquire)) {
      if (h == 2) {
        // Phase change: this node's surplus returned to zero.
        const bool zero = depart_parent();
        if (ctx->reclaim) retire();
        return zero;
      }
      return false;
    }
    stat_add(ctx->stats, &tree_stats::cas_failures);
  }
}

int node::arrive_parent() noexcept {
  node* p = parent();
  return p != nullptr ? p->arrive() : context()->root->arrive();
}

bool node::depart_parent() noexcept {
  node* p = parent();
  return p != nullptr ? p->depart() : context()->root->depart();
}

std::pair<node*, node*> node::grow(std::uint64_t threshold) noexcept {
  tree_context* ctx = context();
  stat_add(ctx->stats, &tree_stats::grow_calls);
  // Flip the coin BEFORE reading the children pointer that determines the
  // return value (section 2: an adversary blind to local coin flips can
  // force at most `threshold` childless returns in expectation).
  const bool heads =
      threshold == 1 || (threshold != 0 && thread_rng().below(threshold) == 0);
  if (heads && children_.load(std::memory_order_acquire) == nullptr) {
    child_pair* pair = free_pair_pop(*ctx);
    const bool reused = pair != nullptr;
    if (pair == nullptr) {
      pair = pool_new<child_pair>(*ctx->pairs);
      ctx->pair_allocs.fetch_add(1, std::memory_order_relaxed);
    }
    pair->left.init(this, pair, ctx);
    pair->right.init(this, pair, ctx);
    pair->retired.store(0, std::memory_order_relaxed);
    child_pair* expect = nullptr;
    if (children_.compare_exchange_strong(expect, pair, std::memory_order_seq_cst,
                                          std::memory_order_acquire)) {
      stat_add(ctx->stats,
               reused ? &tree_stats::grow_reuses : &tree_stats::grow_allocs);
    } else {
      // Lost the race: return the unused pair to the pool.
      stat_add(ctx->stats, &tree_stats::grow_lost_races);
      free_pair_push(*ctx, pair);
    }
  }
  child_pair* kids = children_.load(std::memory_order_acquire);
  if (kids == nullptr) {
    stat_add(ctx->stats, &tree_stats::grow_childless);
    return {this, this};
  }
  return {&kids->left, &kids->right};
}

void node::retire() noexcept {
  child_pair* pair = self_pair_.load(std::memory_order_relaxed);
  if (pair == nullptr) return;  // the base node is never recycled
  tree_context* ctx = context();
  stat_add(ctx->stats, &tree_stats::retires);
  if (pair->retired.fetch_add(1, std::memory_order_acq_rel) + 1 == 2) {
    // Both siblings drained. With grow threshold 1 the paper proves
    // (Lemma 4.6 / appendix B) that no live handle can reach this pair or
    // its parent's grow path again, so unlink and recycle.
    node* p = parent();
    assert(p != nullptr && "pair members always have a node parent");
    child_pair* expect = pair;
    if (p->children_.compare_exchange_strong(expect, nullptr,
                                             std::memory_order_seq_cst,
                                             std::memory_order_acquire)) {
      stat_add(ctx->stats, &tree_stats::pair_recycles);
      free_pair_push(*ctx, pair);
    }
  }
}

}  // namespace spdag::snzi
