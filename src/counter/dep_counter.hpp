#pragma once
// dep_counter: the dependency-counter abstraction the sp-dag runtime is
// parameterized over (paper section 5 compares three implementations of it).
//
// Interface shape follows the paper's Incounter module (Figure 5):
//   * arrive(inc_hint, from_left) performs one increment starting at the
//     caller's increment handle and returns a fresh decrement token plus two
//     increment handles for the two vertices a spawn creates;
//   * depart(token) performs one decrement and reports whether the counter
//     reached zero (readiness detection — the paper's implementation note
//     replaces is_zero polling with this return value);
//   * tokens are opaque uintptr_t so implementations without placement
//     structure (fetch-and-add) pay nothing for them.

#include <atomic>
#include <cstdint>

namespace spdag {

using token = std::uintptr_t;

struct arrive_result {
  token dec;        // decrement token matching this arrive
  token inc_left;   // increment handle for the left spawned vertex
  token inc_right;  // increment handle for the right spawned vertex
};

class dep_counter {
 public:
  virtual ~dep_counter() = default;

  // One increment. `inc_hint` is the spawning vertex's increment handle
  // (ignored by hint-free implementations); `from_left` tells handle-placing
  // implementations which side of the parent the spawning vertex is.
  virtual arrive_result arrive(token inc_hint, bool from_left) = 0;

  // Batched increment: exactly-once equivalent to k consecutive arrives from
  // the same handle (k >= 1), but paying one counter operation. The returned
  // result's `dec` token supports k independent depart() calls (the surplus
  // lands on a single placement), and the two increment handles are SHARED
  // by however many vertices the batch creates — callers that reclaim
  // handles (abandon) must therefore skip reclamation for batch-shared
  // handles; the dag layer tracks this with vertex::shared_inc.
  //
  // The default loops k single arrives and returns the LAST result, which is
  // exactly-once correct only for implementations whose depart ignores the
  // token; every token-placing implementation in this repo overrides it with
  // a genuinely single-operation batch.
  virtual arrive_result add(token inc_hint, bool from_left, std::uint32_t k) {
    arrive_result r{0, 0, 0};
    for (std::uint32_t i = 0; i < k; ++i) r = arrive(inc_hint, from_left);
    return r;
  }

  // One decrement with a token from a prior arrive (or root_token for the
  // initial obligation). Returns true iff the counter reached zero.
  virtual bool depart(token dec) = 0;

  // Non-linearizable snapshot; true iff surplus is zero right now.
  virtual bool is_zero() const = 0;

  // Token representing the counter's initial obligation: usable both as the
  // first increment hint and as the decrement token for initial surplus 1.
  virtual token root_token() = 0;

  // False for implementations whose depart ignores the token (fetch-and-add);
  // lets the dag skip decrement-handle bookkeeping for a fair baseline.
  virtual bool uses_tokens() const = 0;

  // Notification that `inc` (a handle returned by arrive/root_token) will
  // never be used for an increment: its owner completed without spawning.
  // Lets space-reclaiming implementations retire the handle's node
  // (Theorem B.3). Default: ignore.
  virtual void abandon(token /*inc*/) {}

  // Non-concurrent reinitialization with surplus n (object pooling).
  // Token-based counters support n in {0, 1}.
  virtual void reset(std::uint32_t n) = 0;

  // Intrusive hook for factory pools.
  std::atomic<dep_counter*> pool_next{nullptr};
};

}  // namespace spdag
