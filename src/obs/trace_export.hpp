#pragma once
// Internal interface between the tracer core (trace.cpp) and the
// Chrome/Perfetto trace-event JSON writer (trace_export.cpp). Not part of
// the public obs API.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace spdag::obs::detail {

// One worker ring, snapshotted at quiescence: retained events oldest-first
// plus how many the ring overwrote before them.
struct track_snapshot {
  int slot = -1;
  std::vector<trace_event> events;
  std::uint64_t dropped = 0;
};

// Writes the snapshots as Chrome trace-event JSON ({"traceEvents":[...]})
// with one track per worker slot: begin/end pairs become "X" complete
// slices, instants "i" markers, counter samples "C" events. `ns_per_tick`
// and `base_ticks` map raw event timestamps onto microseconds from the
// tracer's calibration anchor. Returns 0 on success, 1 on I/O failure.
int export_chrome_trace(const std::string& path,
                        const std::vector<track_snapshot>& tracks,
                        double ns_per_tick, std::uint64_t base_ticks,
                        trace_mode mode, std::size_t ring_cap,
                        std::uint64_t dropped_total);

}  // namespace spdag::obs::detail
