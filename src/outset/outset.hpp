#pragma once
// Out-set: the fan-out dual of the in-counter.
//
// The in-counter (paper sections 3-5) removes the contention hotspot on the
// fan-*in* side of dependency tracking: many signalers decrementing one
// finish counter. Futures introduce the symmetric hotspot on the fan-*out*
// side: many consumers registering against one producer. An out-set is the
// structure that absorbs those registrations — a set of waiting consumers
// with three operations:
//
//   add(w)       called by a registering consumer. Returns true if the
//                out-set captured w (finalize will deliver it), false if the
//                out-set was already finalized (the caller must deliver the
//                consumer itself). Linearizable and lock-free.
//   finalize(f)  called exactly once by the completing producer. Invokes f
//                on every captured waiter exactly once, streaming them out
//                as the traversal proceeds, and flips the out-set into the
//                terminated state in which every later add returns false.
//                The parallel overload additionally hands subtree-drain
//                tasks (outset_drain_task) to a caller-supplied spawner so
//                the walk itself runs on many workers; see below.
//   reset(f)     non-concurrent reinitialization for object pooling; any
//                never-delivered waiters are handed to f for reclamation
//                (an abandoned future's registrations).
//
// The add/finalize race is resolved *per node* with a terminated sentinel
// installed in each list head (and, for the tree implementation, in each
// children pointer), never with a per-future flag — that is what lets
// concurrent adds against a finalizing out-set land on disjoint cache lines
// instead of all re-checking one shared word.
//
// The out-set never dereferences the consumer/engine pointers it carries;
// delivery policy (schedule the vertex on its engine) lives with the caller,
// which keeps this layer independent of the dag and directly unit-testable.

#include <atomic>
#include <cstdint>

namespace spdag {

class vertex;      // not dereferenced here; see src/dag/vertex.hpp
class dag_engine;  // not dereferenced here; see src/dag/engine.hpp

// One registered consumer. One slab-pool cell per registration, drawn and
// returned through the outset_factory; the out-set links captured waiters
// through `next`.
struct outset_waiter {
  vertex* consumer = nullptr;
  dag_engine* engine = nullptr;
  std::atomic<outset_waiter*> next{nullptr};  // intrusive capture list
};

// One stolen unit of finalize work: a subtree whose waiters are still to be
// drained. Out-set implementations that can partition their finalize walk
// (the tree) package subtrees as drain tasks and hand them to the caller's
// spawner instead of walking them on the completing thread, so idle workers
// broadcast in parallel — through the ws scheduler's shared drain lane or
// the private-deque scheduler's steal-request hand-off. Ownership passes
// with the hand-off: whoever receives a task calls run() exactly once;
// run() drains the subtree to the sink bound at finalize time, hands
// still-deeper subtrees to the same spawner, invokes the on_done hook, and
// releases the task's own pool cell.
class outset_drain_task {
 public:
  virtual void run() = 0;

  // Completion hook for the enqueuer (future_state pins itself across the
  // asynchronous drain and unpins here). The spawner sets both fields before
  // queueing the task; run() calls the hook after the subtree is fully
  // drained and the task storage is already released.
  void (*on_done)(void*) = nullptr;
  void* on_done_ctx = nullptr;

 protected:
  ~outset_drain_task() = default;  // tasks release themselves inside run()
};

// Aggregate view of one out-set's relaxed instrumentation counters.
struct outset_totals {
  std::uint64_t adds = 0;             // successful captures (per waiter)
  std::uint64_t add_cas_retries = 0;  // failed head CASes across all adds
  std::uint64_t rejected_adds = 0;    // adds that lost to finalize
  std::uint64_t delivered = 0;        // waiters handed to a finalize sink
  // Subtree-drain tasks handed to a finalize spawner (0 when finalize ran
  // serially or the structure never grew).
  std::uint64_t subtrees_offloaded = 0;
  // Grouped registrations that captured their whole chain with one CAS
  // (add_group on a structured implementation); each also counts its n
  // waiters under `adds`.
  std::uint64_t group_adds = 0;
  // Flat-combining instrumentation (zero outside outset:simple:fc).
  // `combined_ops` is requests a combiner completed on behalf of OTHER
  // threads (each also counts normally under adds/rejected_adds);
  // `combiner_passes` is batches spliced; `fallthroughs` is operations that
  // found no publication slot and fell back to the direct head CAS.
  std::uint64_t combined_ops = 0;
  std::uint64_t combiner_passes = 0;
  std::uint64_t fallthroughs = 0;

  outset_totals& operator+=(const outset_totals& o) noexcept {
    adds += o.adds;
    add_cas_retries += o.add_cas_retries;
    rejected_adds += o.rejected_adds;
    delivered += o.delivered;
    subtrees_offloaded += o.subtrees_offloaded;
    group_adds += o.group_adds;
    combined_ops += o.combined_ops;
    combiner_passes += o.combiner_passes;
    fallthroughs += o.fallthroughs;
    return *this;
  }
};

class outset {
 public:
  // What finalize/reset do with each captured waiter (plain function pointer
  // + context so implementations stay non-template; future_state passes its
  // factory as ctx and schedules + reclaims, tests just count).
  using waiter_sink = void (*)(void* ctx, outset_waiter* w);

  // Receives ownership of one subtree-drain task during a parallel finalize
  // (typically enqueues it on an executor). The task must eventually be
  // run() exactly once, on any thread.
  using drain_spawner = void (*)(void* ctx, outset_drain_task* t);

  virtual ~outset() = default;

  // See file comment. Thread-safe against concurrent add and one finalize.
  virtual bool add(outset_waiter* w) noexcept = 0;

  // Grouped registration: captures a pre-linked chain of n waiters
  // (head -> ... -> tail via `next`, in that order) and returns how many it
  // captured — always a PREFIX of the chain in order, so the caller delivers
  // waiters [captured, n) itself. Same thread-safety as add. The base
  // default degrades to n singles (stopping at the first rejection);
  // structured implementations override with one-CAS all-or-nothing capture
  // (returning n or 0) — the fan-out dual of incounter::add's one batched
  // arrive for k edges.
  virtual std::uint32_t add_group(outset_waiter* head, outset_waiter* tail,
                                  std::uint32_t n) noexcept {
    (void)tail;
    std::uint32_t captured = 0;
    outset_waiter* w = head;
    while (captured < n && w != nullptr) {
      // Save the chain link BEFORE re-adding: add() rewrites w->next.
      outset_waiter* next = w->next.load(std::memory_order_relaxed);
      if (!add(w)) break;
      ++captured;
      w = next;
    }
    return captured;
  }

  // See file comment. Must be called at most once per reset-generation, by
  // one thread; concurrent adds are safe.
  virtual void finalize(waiter_sink sink, void* ctx) = 0;

  // Parallel finalize: like finalize(sink, ctx), but implementations that
  // can partition the walk hand subtree-drain tasks to `spawn` instead of
  // draining everything on the calling thread. Delivery is complete only
  // once every spawned task has run; the caller must keep the out-set, the
  // sink ctx, and the spawner ctx alive until then (each task's on_done hook
  // is the per-task signal). The default ignores the spawner and drains
  // serially — only structured implementations override.
  virtual void finalize(waiter_sink sink, void* sctx, drain_spawner spawn,
                        void* spawn_ctx) {
    (void)spawn;
    (void)spawn_ctx;
    finalize(sink, sctx);
  }

  // See file comment. Non-concurrent.
  virtual void reset(waiter_sink sink, void* ctx) = 0;

  outset_totals totals() const noexcept {
    outset_totals t;
    t.adds = adds_.load(std::memory_order_relaxed);
    t.add_cas_retries = add_cas_retries_.load(std::memory_order_relaxed);
    t.rejected_adds = rejected_adds_.load(std::memory_order_relaxed);
    t.delivered = delivered_.load(std::memory_order_relaxed);
    t.subtrees_offloaded = subtrees_offloaded_.load(std::memory_order_relaxed);
    t.group_adds = group_adds_.load(std::memory_order_relaxed);
    t.combined_ops = combined_ops_.load(std::memory_order_relaxed);
    t.combiner_passes = combiner_passes_.load(std::memory_order_relaxed);
    t.fallthroughs = fallthroughs_.load(std::memory_order_relaxed);
    return t;
  }

  std::atomic<outset*> pool_next{nullptr};  // factory pool linkage

 protected:
  // Distinguished list-head value marking a node as finalized. Never
  // dereferenced; compared by address only.
  static outset_waiter* terminated_waiter() noexcept {
    return reinterpret_cast<outset_waiter*>(std::uintptr_t{1});
  }

  void count_add(std::uint32_t n = 1) noexcept {
    adds_.fetch_add(n, std::memory_order_relaxed);
  }
  void count_retry() noexcept {
    add_cas_retries_.fetch_add(1, std::memory_order_relaxed);
  }
  void count_rejected(std::uint32_t n = 1) noexcept {
    rejected_adds_.fetch_add(n, std::memory_order_relaxed);
  }
  void count_group_add() noexcept {
    group_adds_.fetch_add(1, std::memory_order_relaxed);
  }
  void count_delivered() noexcept {
    delivered_.fetch_add(1, std::memory_order_relaxed);
  }
  void count_offloaded() noexcept {
    subtrees_offloaded_.fetch_add(1, std::memory_order_relaxed);
  }
  void count_combined(std::uint32_t n) noexcept {
    combined_ops_.fetch_add(n, std::memory_order_relaxed);
  }
  void count_combiner_pass() noexcept {
    combiner_passes_.fetch_add(1, std::memory_order_relaxed);
  }
  void count_fallthrough() noexcept {
    fallthroughs_.fetch_add(1, std::memory_order_relaxed);
  }

  // Delivers an exchanged capture list to `sink`, oldest registration last
  // (list order is LIFO like the Treiber stack it replaces; consumers are
  // independent so order is unobservable).
  void drain_chain(outset_waiter* w, waiter_sink sink, void* ctx) {
    while (w != nullptr && w != terminated_waiter()) {
      outset_waiter* next = w->next.load(std::memory_order_relaxed);
      count_delivered();
      sink(ctx, w);
      w = next;
    }
  }

  // reset() helper: hands a chain's records to `sink` for reclamation
  // WITHOUT counting them as delivered (abandoned registrations).
  static void scrub_chain(outset_waiter* w, waiter_sink sink, void* ctx) {
    while (w != nullptr && w != terminated_waiter()) {
      outset_waiter* next = w->next.load(std::memory_order_relaxed);
      sink(ctx, w);
      w = next;
    }
  }

 private:
  std::atomic<std::uint64_t> adds_{0};
  std::atomic<std::uint64_t> add_cas_retries_{0};
  std::atomic<std::uint64_t> rejected_adds_{0};
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> subtrees_offloaded_{0};
  std::atomic<std::uint64_t> group_adds_{0};
  std::atomic<std::uint64_t> combined_ops_{0};
  std::atomic<std::uint64_t> combiner_passes_{0};
  std::atomic<std::uint64_t> fallthroughs_{0};
};

}  // namespace spdag
