// Tracing subsystem (src/obs/) conformance: spec parsing strictness, ring
// retention and drop-oldest wraparound, span accumulation and reentrancy,
// cross-thread emit storms (the TSan lane's race check on the single-writer
// rings), runtime integration through the `trace:` config axis, and the
// Perfetto dump smoke.
//
// Every test that emits configures the tracer itself and restores `off`
// on exit — the tracer is process-wide, and other suites in this binary
// must not see a live mode.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "harness/workloads.hpp"
#include "mem/thread_slot.hpp"
#include "obs/trace.hpp"
#include "sched/runtime.hpp"

namespace spdag {
namespace {

// RAII: configure for the test body, always back to off afterwards.
struct scoped_trace {
  explicit scoped_trace(const std::string& spec) {
    obs::tracer::instance().configure(spec);
  }
  ~scoped_trace() { obs::tracer::instance().configure("off"); }
};

TEST(TraceSpec, AcceptsTheThreeModesAndCaps) {
  EXPECT_EQ(obs::parse_trace_spec("off").mode, obs::trace_mode::off);
  EXPECT_EQ(obs::parse_trace_spec("counters").mode, obs::trace_mode::counters);
  EXPECT_EQ(obs::parse_trace_spec("full").mode, obs::trace_mode::full);
  EXPECT_EQ(obs::parse_trace_spec("full").ring_cap, std::size_t{1} << 16);
  EXPECT_EQ(obs::parse_trace_spec("full:4096").ring_cap, 4096u);
  // The axis prefix is accepted, same as "alloc:" on the pool spec.
  EXPECT_EQ(obs::parse_trace_spec("trace:full:1024").ring_cap, 1024u);
  EXPECT_EQ(obs::parse_trace_spec("trace:off").mode, obs::trace_mode::off);
  // Rails are inclusive.
  EXPECT_EQ(obs::parse_trace_spec("full:256").ring_cap, 256u);
  EXPECT_EQ(obs::parse_trace_spec("full:4194304").ring_cap,
            std::size_t{1} << 22);
}

TEST(TraceSpec, RejectsMalformedSpecs) {
  EXPECT_THROW(obs::parse_trace_spec(""), std::invalid_argument);
  EXPECT_THROW(obs::parse_trace_spec("bogus"), std::invalid_argument);
  EXPECT_THROW(obs::parse_trace_spec("trace:"), std::invalid_argument);
  // A cap is only legal on "full".
  EXPECT_THROW(obs::parse_trace_spec("off:8"), std::invalid_argument);
  EXPECT_THROW(obs::parse_trace_spec("counters:64"), std::invalid_argument);
  // Strict numeric field: digits only, inside the rails.
  EXPECT_THROW(obs::parse_trace_spec("full:"), std::invalid_argument);
  EXPECT_THROW(obs::parse_trace_spec("full:abc"), std::invalid_argument);
  EXPECT_THROW(obs::parse_trace_spec("full:123x"), std::invalid_argument);
  EXPECT_THROW(obs::parse_trace_spec("full:-1"), std::invalid_argument);
  EXPECT_THROW(obs::parse_trace_spec("full:0"), std::invalid_argument);
  EXPECT_THROW(obs::parse_trace_spec("full:255"), std::invalid_argument);
  EXPECT_THROW(obs::parse_trace_spec("full:4194305"), std::invalid_argument);
  EXPECT_THROW(obs::parse_trace_spec("full:99999999999999999999"),
               std::invalid_argument);
  EXPECT_THROW(obs::parse_trace_spec("full:4096:4096"), std::invalid_argument);
}

TEST(TraceRing, RetainsExactlyCapAndDropsOldestOnWrap) {
  if (!obs::trace_compiled()) GTEST_SKIP() << "built with SPDAG_TRACE=OFF";
  constexpr std::size_t kCap = 256;  // the minimum rail, already a pow2
  scoped_trace t("full:256");
  auto& tr = obs::tracer::instance();
  ASSERT_EQ(tr.mode(), obs::trace_mode::full);
  ASSERT_EQ(tr.ring_capacity(), kCap);
  const int slot = mem::thread_slot();
  ASSERT_GE(slot, 0);

  // Under-fill: everything sticks, in order, nothing dropped.
  for (std::uint32_t i = 0; i < 10; ++i) obs::emit(obs::ev_spawn, 0, i);
  {
    const auto events = tr.ring_events(slot);
    ASSERT_EQ(events.size(), 10u);
    for (std::uint32_t i = 0; i < 10; ++i) {
      EXPECT_EQ(events[i].id, obs::ev_spawn);
      EXPECT_EQ(events[i].b, i);
    }
    EXPECT_EQ(tr.ring_dropped(slot), 0u);
  }

  // Overflow by exactly 100: the ring keeps the NEWEST kCap events and
  // reports the overwritten prefix as dropped.
  tr.reset();
  const std::uint32_t total = static_cast<std::uint32_t>(kCap) + 100;
  for (std::uint32_t i = 0; i < total; ++i) obs::emit(obs::ev_spawn, 0, i);
  const auto events = tr.ring_events(slot);
  ASSERT_EQ(events.size(), kCap);
  EXPECT_EQ(events.front().b, 100u) << "oldest 100 must be the ones dropped";
  EXPECT_EQ(events.back().b, total - 1);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].b, events[i - 1].b + 1);
    EXPECT_GE(events[i].ts, events[i - 1].ts) << "single-writer ring must be "
                                                 "timestamp-ordered";
  }
  EXPECT_EQ(tr.ring_dropped(slot), 100u);

  const obs::trace_summary sum = tr.summary();
  EXPECT_EQ(sum.events, total) << "counts see every emit, kept or dropped";
  EXPECT_EQ(sum.dropped, 100u);
  EXPECT_EQ(sum.spawns, total);
  EXPECT_EQ(sum.workers, 1u);
}

TEST(TraceRing, CountersModeCountsWithoutRingStorage) {
  if (!obs::trace_compiled()) GTEST_SKIP() << "built with SPDAG_TRACE=OFF";
  scoped_trace t("counters");
  auto& tr = obs::tracer::instance();
  EXPECT_EQ(tr.ring_capacity(), 0u);
  for (int i = 0; i < 50; ++i) obs::emit(obs::ev_claim_dec);
  EXPECT_TRUE(tr.ring_events(mem::thread_slot()).empty());
  const obs::trace_summary sum = tr.summary();
  EXPECT_EQ(sum.claim_decs, 50u);
  EXPECT_EQ(sum.dropped, 0u) << "no ring means nothing to drop";
}

TEST(TraceSpans, AccumulateAndAreReentrancySafe) {
  if (!obs::trace_compiled()) GTEST_SKIP() << "built with SPDAG_TRACE=OFF";
  scoped_trace t("counters");
  auto& tr = obs::tracer::instance();
  volatile int sink = 0;
  (void)sink;
  {
    obs::span_guard outer(obs::sp_work);
    {
      // A nested same-span guard must not double-count or corrupt depth.
      obs::span_guard inner(obs::sp_work);
    }
    for (int i = 0; i < 50000; ++i) sink = i;
  }
  {
    obs::span_guard steal(obs::sp_steal);
    for (int i = 0; i < 50000; ++i) sink = i;
  }
  const obs::trace_summary sum = tr.summary();
  EXPECT_GT(sum.work_s, 0.0);
  EXPECT_GT(sum.steal_s, 0.0);
  EXPECT_EQ(sum.idle_s, 0.0);
  // The four-way split normalizes over work+idle+steal+drain.
  EXPECT_NEAR(sum.work_frac + sum.idle_frac + sum.steal_frac + sum.drain_frac,
              1.0, 1e-9);
  EXPECT_GT(sum.work_frac, 0.0);
  EXPECT_LT(sum.work_frac, 1.0);
}

TEST(TraceGauges, TrackLiveValueAcrossThreads) {
  if (!obs::trace_compiled()) GTEST_SKIP() << "built with SPDAG_TRACE=OFF";
  scoped_trace t("counters");
  auto& tr = obs::tracer::instance();
  EXPECT_EQ(tr.gauge(obs::g_runnable), 0);
  obs::gauge_add(obs::g_runnable, 5);
  obs::gauge_add(obs::g_runnable, -2);
  std::thread other([] { obs::gauge_add(obs::g_runnable, 10); });
  other.join();
  EXPECT_EQ(tr.gauge(obs::g_runnable), 13);
  tr.reset();
  EXPECT_EQ(tr.gauge(obs::g_runnable), 0);
}

TEST(TraceRing, CrossThreadEmitStormKeepsPerThreadTotalsExact) {
  if (!obs::trace_compiled()) GTEST_SKIP() << "built with SPDAG_TRACE=OFF";
  // The TSan-lane check: 8 raw threads hammer their own rings concurrently
  // while gauges take deltas from everyone. Totals must conserve exactly —
  // each ring is single-writer, only the shared accumulators are contended.
  constexpr int kThreads = 8;
  constexpr std::uint32_t kEmits = 20000;
  scoped_trace t("full:1024");
  auto& tr = obs::tracer::instance();
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&go] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (std::uint32_t j = 0; j < kEmits; ++j) {
        obs::emit(obs::ev_steal_attempt, 1, j);
        obs::gauge_add(obs::g_drains_pending, 1);
        obs::gauge_add(obs::g_drains_pending, -1);
        obs::span_guard sg(obs::sp_steal);
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();

  const obs::trace_summary sum = tr.summary();
  EXPECT_EQ(sum.steal_attempts,
            static_cast<std::uint64_t>(kThreads) * kEmits);
  EXPECT_EQ(tr.gauge(obs::g_drains_pending), 0);
  // Worker attribution: the test threads all emitted; the count of tracks
  // can exceed kThreads if earlier tests' threads left tracks behind, but
  // at least the storm's own slots must appear.
  EXPECT_GE(sum.workers, 1u);
}

TEST(TraceRuntime, ConfigAxisCapturesAScheduledRun) {
  if (!obs::trace_compiled()) GTEST_SKIP() << "built with SPDAG_TRACE=OFF";
  {
    runtime_config cfg{2, "dyn"};
    cfg.trace = "counters";
    runtime rt(cfg);
    harness::fanin(rt, 1 << 10);
    const obs::trace_summary sum = obs::tracer::instance().summary();
    EXPECT_EQ(sum.mode, obs::trace_mode::counters);
    EXPECT_GT(sum.spawns, 0u);
    EXPECT_GT(sum.claim_decs, 0u);
    EXPECT_GT(sum.work_s, 0.0);
    EXPECT_GT(sum.work_frac, 0.0);
    EXPECT_GE(sum.workers, 2u) << "both workers must have emitted";
  }
  obs::tracer::instance().configure("off");
}

TEST(TraceRuntime, EmptySpecLeavesTracerUntouched) {
  scoped_trace t("counters");
  runtime_config cfg{1, "dyn"};  // cfg.trace defaults to ""
  runtime rt(cfg);
  EXPECT_EQ(obs::tracer::instance().mode(),
            obs::trace_compiled() ? obs::trace_mode::counters
                                  : obs::trace_mode::off);
}

TEST(TraceDump, WritesChromeTraceJsonWithPerWorkerSlices) {
  if (!obs::trace_compiled()) GTEST_SKIP() << "built with SPDAG_TRACE=OFF";
  const std::string path = ::testing::TempDir() + "spdag_trace_test.json";
  {
    runtime_config cfg{2, "dyn"};
    cfg.trace = "full:4096";
    runtime rt(cfg);
    harness::fanout(rt, 1 << 10, 0, /*producer_ns=*/20000);
  }
  // dump() is quiescent-only: even idle-parked workers emit idle spans, so
  // the runtime (and its threads) must be gone before the rings are read.
  ASSERT_EQ(obs::tracer::instance().dump(path), 0);
  obs::tracer::instance().configure("off");

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  // Structural smoke (scripts/trace_validate.py does the full check): the
  // envelope, at least one complete slice, thread metadata, counter track.
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"work\""), std::string::npos);
  EXPECT_NE(text.find("worker-slot-"), std::string::npos);
  EXPECT_NE(text.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceCompiledOut, HooksAreInertWhenOff) {
  // Valid in every build: with the tracer off (or compiled out), hooks are
  // no-ops and the summary stays empty.
  obs::tracer::instance().configure("off");
  obs::emit(obs::ev_spawn);
  obs::gauge_add(obs::g_runnable, 3);
  { obs::span_guard sg(obs::sp_work); }
  const obs::trace_summary sum = obs::tracer::instance().summary();
  EXPECT_EQ(sum.events, 0u);
  EXPECT_EQ(obs::tracer::instance().gauge(obs::g_runnable), 0);
  EXPECT_EQ(sum.work_s, 0.0);
}

}  // namespace
}  // namespace spdag
