#pragma once
// snzi_tree: a complete dynamic SNZI object (paper section 2).
//
// Owns the root (indicator), a single *base* hierarchical node that serves
// as the initial handle target, and the recycling pool. Child pairs are
// drawn from a shared slab pool (src/mem/) — "snzi_pair" in the runtime's
// pool registry — and parked on the tree-local free list across reset()
// generations, so a pooled counter keeps its working set exactly as it did
// with the old per-tree arena. The analysis in the paper (section 4) starts
// from exactly this shape: "this finish vertex has a single SNZI node as
// the root of its in-counter".

#include <cstdint>
#include <utility>

#include "snzi/node.hpp"
#include "snzi/root.hpp"
#include "snzi/stats.hpp"

namespace spdag::snzi {

struct tree_config {
  // grow() creates children with probability 1/grow_threshold.
  // 1 = always grow (the analyzed setting); 0 = never grow.
  std::uint64_t grow_threshold = 1;
  // Recycle drained child pairs (appendix B). Only sound with threshold 1.
  bool reclaim = false;
  tree_stats* stats = nullptr;
  // Pool child pairs come from; null = the default registry's snzi_pair
  // pool. Borrowed, must outlive the tree.
  object_pool* pairs = nullptr;
};

class snzi_tree {
 public:
  explicit snzi_tree(std::uint64_t initial_surplus = 0, tree_config cfg = {});

  snzi_tree(const snzi_tree&) = delete;
  snzi_tree& operator=(const snzi_tree&) = delete;

  // Returns every pair — reachable or free-listed — to the slab pool.
  ~snzi_tree();

  // The node new handles start at.
  node* base() noexcept { return &base_; }
  root_node* root() noexcept { return &root_; }
  const root_node* root() const noexcept { return &root_; }

  // Non-zero indicator (reads one word; no non-trivial steps).
  bool query() const noexcept { return root_.query(); }
  bool is_zero() const noexcept { return !root_.query(); }

  // Counter-style convenience: operate directly on the base node.
  int arrive() noexcept { return base_.arrive(); }
  bool depart() noexcept { return base_.depart(); }

  std::uint64_t grow_threshold() const noexcept { return ctx_.grow_threshold; }
  void set_grow_threshold(std::uint64_t t) noexcept { ctx_.grow_threshold = t; }
  tree_stats* stats() const noexcept { return ctx_.stats; }

  // Non-concurrent reinitialization for object pooling: parks every
  // reachable pair on the tree-local free list (keeping the working set)
  // and forgets the structure.
  void reset(std::uint64_t initial_surplus);

  // --- non-concurrent introspection (tests, space accounting) ---
  std::size_t node_count() const;         // reachable nodes incl. base
  std::size_t max_depth() const;          // base = depth 0
  std::uint32_t max_node_ops() const;     // max ops_ over reachable nodes
  std::size_t recycled_pool_size() const { return free_pair_count(ctx_); }
  // Bytes of pairs this tree ever drew from the slab pool; constant across
  // reset() generations once the working set is parked (the reuse invariant
  // the old arena's bytes_allocated() tracked).
  std::size_t allocated_bytes() const {
    return ctx_.pair_allocs.load(std::memory_order_relaxed) *
           sizeof(child_pair);
  }

  // Visits every reachable node (pre-order), f(node&, depth).
  template <typename F>
  void for_each_node(F&& f) const {
    walk(const_cast<node*>(&base_), 0, f);
  }

 private:
  template <typename F>
  static void walk(node* n, std::size_t depth, F& f) {
    f(*n, depth);
    if (child_pair* kids = n->children()) {
      walk(&kids->left, depth + 1, f);
      walk(&kids->right, depth + 1, f);
    }
  }

  // reset() helper: pushes every pair under n onto the free list.
  void park_subtree(node& n);
  // Destructor helper: returns every pair under n to the slab pool.
  void release_subtree(node& n);

  root_node root_;
  tree_context ctx_;
  node base_;
};

}  // namespace spdag::snzi
