// Unit tests for SNZI hierarchical nodes, dynamic grow, and the
// phase-change propagation invariants from the original SNZI paper.

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "snzi/tree.hpp"

namespace spdag::snzi {
namespace {

TEST(SnziTree, FreshTreeIsZero) {
  snzi_tree t;
  EXPECT_TRUE(t.is_zero());
  EXPECT_FALSE(t.query());
  EXPECT_EQ(t.node_count(), 1u);  // just the base
}

TEST(SnziTree, InitialSurplusPropagatesToRoot) {
  snzi_tree t(2);
  EXPECT_TRUE(t.query());
  EXPECT_EQ(t.base()->surplus_half(), 4u);  // 2 surplus = 4 half units
  EXPECT_EQ(t.root()->surplus(), 1u) << "only the 0->1 transition propagates";
}

TEST(SnziTree, ArriveDepartAtBase) {
  snzi_tree t;
  t.arrive();
  EXPECT_TRUE(t.query());
  EXPECT_TRUE(t.depart());
  EXPECT_FALSE(t.query());
}

TEST(SnziTree, SurplusFiltersTowardRoot) {
  snzi_tree t;
  for (int i = 0; i < 100; ++i) t.arrive();
  // 100 arrives at the base produce exactly one unit at the root.
  EXPECT_EQ(t.root()->surplus(), 1u);
  for (int i = 0; i < 99; ++i) EXPECT_FALSE(t.depart());
  EXPECT_TRUE(t.query());
  EXPECT_TRUE(t.depart());
  EXPECT_FALSE(t.query());
  EXPECT_EQ(t.root()->surplus(), 0u);
}

TEST(SnziGrow, ThresholdOneAlwaysGrows) {
  snzi_tree t;
  auto [a, b] = t.base()->grow(1);
  EXPECT_NE(a, t.base());
  EXPECT_NE(b, t.base());
  EXPECT_NE(a, b);
  EXPECT_EQ(a->parent(), t.base());
  EXPECT_EQ(b->parent(), t.base());
  EXPECT_EQ(t.node_count(), 3u);
}

TEST(SnziGrow, ThresholdZeroNeverGrows) {
  snzi_tree t(0, tree_config{/*grow_threshold=*/0});
  auto [a, b] = t.base()->grow(0);
  EXPECT_EQ(a, t.base());
  EXPECT_EQ(b, t.base());
  EXPECT_EQ(t.node_count(), 1u);
}

TEST(SnziGrow, GrowIsIdempotent) {
  snzi_tree t;
  auto [a1, b1] = t.base()->grow(1);
  auto [a2, b2] = t.base()->grow(1);
  EXPECT_EQ(a1, a2);
  EXPECT_EQ(b1, b2);
  EXPECT_EQ(t.node_count(), 3u);
}

TEST(SnziGrow, ChildrenStartWithZeroSurplus) {
  snzi_tree t(1);
  auto [a, b] = t.base()->grow(1);
  EXPECT_EQ(a->surplus_half(), 0u);
  EXPECT_EQ(b->surplus_half(), 0u);
  EXPECT_TRUE(t.query()) << "growing must not disturb the indicator";
}

TEST(SnziGrow, ProbabilisticGrowthRateIsRoughlyOneOverThreshold) {
  // With threshold T, out of N fresh nodes asked to grow once each, about
  // N/T should grow. Use a generous tolerance: this is a sanity check on
  // the coin, not a statistical test.
  constexpr std::uint64_t kThreshold = 8;
  constexpr int kNodes = 4000;
  int grew = 0;
  for (int i = 0; i < kNodes; ++i) {
    snzi_tree t;
    auto [a, b] = t.base()->grow(kThreshold);
    if (a != t.base()) ++grew;
    (void)b;
  }
  const double rate = static_cast<double>(grew) / kNodes;
  EXPECT_GT(rate, 0.5 / kThreshold);
  EXPECT_LT(rate, 2.0 / kThreshold);
}

TEST(SnziGrow, ConcurrentGrowInstallsExactlyOnePair) {
  for (int round = 0; round < 100; ++round) {
    snzi_tree t;
    constexpr int kThreads = 4;
    std::vector<std::thread> threads;
    std::vector<std::pair<node*, node*>> results(kThreads);
    for (int i = 0; i < kThreads; ++i) {
      threads.emplace_back(
          [&t, &results, i] { results[static_cast<size_t>(i)] = t.base()->grow(1); });
    }
    for (auto& th : threads) th.join();
    for (int i = 1; i < kThreads; ++i) {
      EXPECT_EQ(results[static_cast<size_t>(i)], results[0])
          << "all concurrent grows must observe the same winning pair";
    }
    EXPECT_EQ(t.node_count(), 3u);
  }
}

TEST(SnziTree, ArriveAtDeepLeafPropagatesOncePerLevel) {
  snzi_tree t;
  node* n = t.base();
  for (int d = 0; d < 10; ++d) {
    auto [a, b] = n->grow(1);
    (void)b;
    n = a;
  }
  EXPECT_EQ(t.max_depth(), 10u);
  n->arrive();
  EXPECT_TRUE(t.query());
  // Every ancestor on the path must now have surplus; siblings must not.
  for (node* p = n; p != nullptr; p = p->parent()) {
    EXPECT_GE(p->surplus_half(), 2u);
  }
  EXPECT_TRUE(n->depart());
  EXPECT_FALSE(t.query());
  t.for_each_node([](const node& m, std::size_t) {
    EXPECT_EQ(m.surplus_half(), 0u);
  });
}

TEST(SnziTree, DepartStopsAtFirstNodeWithRemainingSurplus) {
  snzi_tree t;
  auto [a, b] = t.base()->grow(1);
  (void)b;
  t.arrive();   // surplus at base
  a->arrive();  // surplus at left child propagates to base (already >0: no climb)
  EXPECT_EQ(t.base()->surplus_half(), 4u);
  EXPECT_FALSE(a->depart()) << "base still has its own surplus";
  EXPECT_TRUE(t.query());
  EXPECT_TRUE(t.depart());
  EXPECT_FALSE(t.query());
}

TEST(SnziTreeConcurrent, HammerLeavesBalanced) {
  snzi_tree t;
  auto [l, r] = t.base()->grow(1);
  auto [ll, lr] = l->grow(1);
  auto [rl, rr] = r->grow(1);
  std::vector<node*> leaves{ll, lr, rl, rr};
  constexpr int kPairs = 20000;
  std::vector<std::thread> threads;
  for (node* leaf : leaves) {
    threads.emplace_back([leaf] {
      for (int i = 0; i < kPairs; ++i) {
        leaf->arrive();
        leaf->depart();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(t.query());
  t.for_each_node(
      [](const node& n, std::size_t) { EXPECT_EQ(n.surplus_half(), 0u); });
  EXPECT_EQ(t.root()->surplus(), 0u);
}

TEST(SnziTreeConcurrent, StandingSurplusShieldsRootFromChurn) {
  tree_stats stats;
  snzi_tree t(0, tree_config{1, false, &stats});
  t.arrive();  // standing surplus at the base
  stats.reset();
  auto [a, b] = t.base()->grow(1);
  constexpr int kPairs = 50000;
  std::thread t1([&a = a] {
    for (int i = 0; i < kPairs; ++i) {
      a->arrive();
      a->depart();
    }
  });
  std::thread t2([&b = b] {
    for (int i = 0; i < kPairs; ++i) {
      b->arrive();
      b->depart();
    }
  });
  t1.join();
  t2.join();
  // Children churned through phase changes, but the base never lost its own
  // surplus, so nothing reached the root.
  EXPECT_EQ(stats.root_arrives.load(), 0u);
  EXPECT_EQ(stats.root_departs.load(), 0u);
  EXPECT_TRUE(t.depart());
}

TEST(SnziTree, ResetForgetsStructure) {
  snzi_tree t;
  auto [a, b] = t.base()->grow(1);
  a->arrive();
  b->arrive();
  a->depart();
  b->depart();
  t.reset(1);
  EXPECT_EQ(t.node_count(), 1u);
  EXPECT_TRUE(t.query());
  EXPECT_TRUE(t.depart());
}

}  // namespace
}  // namespace spdag::snzi
