#pragma once
// runtime: the one-stop facade tying together a counter factory, a dag
// engine, and a scheduler.
//
//   spdag::runtime rt({.workers = 4, .counter = "dyn"});
//   rt.run([] { spdag::fork2([]{ work(); }, []{ work(); }); });
//
// Each run() builds a fresh (root, final) pair with make(), installs the
// given closure as the root body, and blocks until the final vertex runs.
//
// Scheduler specs: "ws" (concurrent Chase-Lev deques, the default) or
// "private" (private deques with explicit steal requests, the PPoPP'13
// algorithm the reproduced paper's own evaluation used).
//
// Out-set specs (waiter broadcast for futures, see make_outset_factory):
// "simple" (single CAS-list head, the default) or "tree[:fanout[:threshold]]"
// (the grow-on-contention out-set tree).
//
// Alloc specs (hot-path memory, see make_pool_registry):
// "pool[:block[:mag]][:adaptive]" (per-worker slab pools, the default; block
// = upstream slab bytes, mag = per-magazine byte budget, ":adaptive" lets
// magazine capacities resize at runtime on refill/flush ping-pong) or
// "malloc" (passthrough baseline). The registry feeds every bookkeeping
// allocation under this runtime: vertices, dec-pairs, future states, SNZI
// child pairs, out-set node groups and waiter records. Between run()s,
// trim_pools() hands fully-idle slabs back to the OS.

#include <cstddef>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "dag/engine.hpp"
#include "incounter/factory.hpp"
#include "mem/registry.hpp"
#include "obs/trace.hpp"
#include "outset/factory.hpp"
#include "sched/private_deques.hpp"
#include "sched/scheduler.hpp"
#include "sched/scheduler_base.hpp"

namespace spdag {

struct runtime_config {
  std::size_t workers = 0;     // 0 = hardware_core_count()
  std::string counter = "dyn"; // counter spec, see make_counter_factory
  bool pin_threads = false;
  snzi::tree_stats* snzi_stats = nullptr;
  dag_engine_options engine_options = {};
  std::string sched = "ws";    // "ws" | "private"
  // Out-set spec for futures created under this runtime, see
  // make_outset_factory: "simple" (default) | "tree[:fanout[:threshold]]".
  std::string outset = "simple";
  // Allocation spec, see make_pool_registry:
  // "pool[:block[:mag]][:adaptive]" (default "pool") | "malloc".
  std::string alloc = "pool";
  // Tracing spec applied to the PROCESS-WIDE tracer before this runtime's
  // workers start: "off" | "counters" | "full[:cap]" (see obs/trace.hpp).
  // The empty default leaves the tracer exactly as it is, so constructing a
  // runtime without an opinion never clobbers a harness-level setting.
  std::string trace = "";
};

// Builds a scheduler from its spec string.
inline std::unique_ptr<scheduler_base> make_scheduler(const std::string& spec,
                                                      std::size_t workers,
                                                      bool pin_threads) {
  if (spec == "ws") {
    return std::make_unique<scheduler>(
        scheduler_config{workers, pin_threads, /*steal_sweeps_before_park=*/4,
                         std::chrono::microseconds{500}});
  }
  if (spec == "private") {
    return std::make_unique<private_deque_scheduler>(
        private_deque_config{workers, pin_threads,
                             /*steal_attempts_before_park=*/16,
                             std::chrono::microseconds{500}});
  }
  throw std::invalid_argument("unknown scheduler spec: " + spec);
}

class runtime {
 public:
  explicit runtime(runtime_config cfg = {})
      // The trace spec must land before any member that starts worker
      // threads (tracer::configure is quiescent-only, and sched_'s workers
      // emit idle spans the moment they exist) — hence the comma expression
      // inside the FIRST member initializer.
      : pools_((apply_trace_spec(cfg.trace), make_pool_registry(cfg.alloc))),
        factory_(make_counter_factory(cfg.counter, cfg.snzi_stats,
                                      pools_.get())),
        outsets_(make_outset_factory(cfg.outset, pools_.get())),
        sched_(make_scheduler(cfg.sched, cfg.workers, cfg.pin_threads)),
        engine_(*factory_, *sched_,
                with_plumbing(cfg.engine_options, outsets_.get(),
                              pools_.get())) {}

  runtime(const runtime&) = delete;
  runtime& operator=(const runtime&) = delete;

  // Runs `root_body` as the root of a fresh sp-dag to completion (blocking).
  template <typename F>
  void run(F&& root_body) {
    auto [root, final_v] = engine_.make();
    root->body = std::forward<F>(root_body);
    sched_->run(engine_, root, final_v);
  }

  dag_engine& engine() noexcept { return engine_; }
  scheduler_base& sched() noexcept { return *sched_; }
  counter_factory& factory() noexcept { return *factory_; }
  // The factory futures actually use — the engine's, which is the spec
  // factory unless engine_options.outsets overrode it.
  outset_factory& outsets() noexcept { return engine_.outsets(); }
  // The registry hot-path allocations under this runtime draw from — the
  // engine's, which is the spec registry unless engine_options.pools
  // overrode it.
  pool_registry& pools() noexcept { return engine_.pools(); }
  // Quiescent-only slab trim (see dag_engine::trim_pools): legal only
  // between run()s; returns slabs released upstream.
  std::size_t trim_pools() { return engine_.trim_pools(); }
  std::size_t workers() const noexcept { return sched_->worker_count(); }

  // Exports the process tracer's rings as Chrome/Perfetto trace-event JSON.
  // Quiescent-only: call between run()s. Returns 0 on success.
  int dump_trace(const std::string& path) {
    return obs::tracer::instance().dump(path);
  }

 private:
  static void apply_trace_spec(const std::string& spec) {
    if (!spec.empty()) obs::tracer::instance().configure(spec);
  }

  static dag_engine_options with_plumbing(dag_engine_options o,
                                          outset_factory* f,
                                          pool_registry* p) noexcept {
    // Anything set explicitly in engine_options wins over the spec strings.
    if (o.outsets == nullptr) o.outsets = f;
    if (o.pools == nullptr) o.pools = p;
    return o;
  }

  // Declared first so it is destroyed last: every structure below caches
  // object_pool references into it.
  std::unique_ptr<pool_registry> pools_;
  std::unique_ptr<counter_factory> factory_;
  std::unique_ptr<outset_factory> outsets_;
  std::unique_ptr<scheduler_base> sched_;
  dag_engine engine_;
};

}  // namespace spdag
