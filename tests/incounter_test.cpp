// Unit tests for the in-counter (paper section 3.3) and direct checks of the
// analysis section's proved bounds on instrumented executions.

#include <gtest/gtest.h>

#include <vector>

#include "incounter/incounter.hpp"

namespace spdag {
namespace {

using snzi::tree_stats;

incounter_config analyzed(tree_stats* stats = nullptr) {
  // The analyzed setting: grow probability 1, reclamation on.
  return incounter_config{/*grow_threshold=*/1, /*reclaim=*/true, stats};
}

TEST(Incounter, FreshCounterRespectsInitialSurplus) {
  incounter zero(0, analyzed());
  EXPECT_TRUE(zero.is_zero());
  incounter one(1, analyzed());
  EXPECT_FALSE(one.is_zero());
}

TEST(Incounter, RootTokenResolvesInitialObligation) {
  incounter ic(1, analyzed());
  EXPECT_TRUE(ic.depart(ic.root_token()));
  EXPECT_TRUE(ic.is_zero());
}

TEST(Incounter, ArriveReturnsDistinctChildHandles) {
  incounter ic(1, analyzed());
  const arrive_result r = ic.arrive(ic.root_token(), /*from_left=*/true);
  EXPECT_NE(r.inc_left, r.inc_right);
  EXPECT_NE(r.inc_left, ic.root_token()) << "grow(1) must create children";
  EXPECT_EQ(r.dec, r.inc_left) << "a left-child spawn arrives at the left child";
}

TEST(Incounter, RightSideSpawnArrivesRight) {
  incounter ic(1, analyzed());
  const arrive_result r = ic.arrive(ic.root_token(), /*from_left=*/false);
  EXPECT_EQ(r.dec, r.inc_right);
}

TEST(Incounter, SpawnChainDrainsToZero) {
  // Simulate: root spawns; left child spawns; everyone signals.
  incounter ic(1, analyzed());
  const arrive_result s1 = ic.arrive(ic.root_token(), true);
  const arrive_result s2 = ic.arrive(s1.inc_left, true);
  EXPECT_FALSE(ic.is_zero());
  EXPECT_FALSE(ic.depart(s2.dec));
  EXPECT_FALSE(ic.depart(s1.dec));
  EXPECT_TRUE(ic.depart(ic.root_token()));
  EXPECT_TRUE(ic.is_zero());
}

TEST(Incounter, ThresholdZeroDegradesToSingleNode) {
  // grow never fires: every handle is the base node; the counter behaves
  // like a single SNZI cell (the degenerate ablation).
  incounter ic(1, incounter_config{/*grow_threshold=*/0, false, nullptr});
  const arrive_result r = ic.arrive(ic.root_token(), true);
  EXPECT_EQ(r.inc_left, ic.root_token());
  EXPECT_EQ(r.inc_right, ic.root_token());
  EXPECT_EQ(r.dec, ic.root_token());
  EXPECT_FALSE(ic.depart(r.dec));
  EXPECT_TRUE(ic.depart(ic.root_token()));
  EXPECT_EQ(ic.tree().node_count(), 1u);
}

TEST(Incounter, ResetReusesArenaMemory) {
  incounter ic(1, analyzed());
  arrive_result r = ic.arrive(ic.root_token(), true);
  ic.depart(r.dec);
  ic.depart(ic.root_token());
  const std::size_t bytes = ic.tree().allocated_bytes();
  for (int round = 0; round < 100; ++round) {
    ic.reset(1);
    r = ic.arrive(ic.root_token(), true);
    ic.depart(r.dec);
    EXPECT_TRUE(ic.depart(ic.root_token()));
  }
  EXPECT_EQ(ic.tree().allocated_bytes(), bytes)
      << "reset must reuse the parked working set, not grow it";
}

// --- Corollary 4.7: an increment invokes at most 3 arrives (p = 1). ---
// We replay a worst-case-ish valid execution and check the instrumented
// arrive count after every increment.
TEST(IncounterBounds, AtMostThreeArrivesPerIncrement) {
  tree_stats stats;
  incounter ic(1, analyzed(&stats));
  struct live { token inc; token dec; bool left; };
  std::vector<live> frontier{{ic.root_token(), ic.root_token(), true}};
  std::uint64_t prev_arrives = stats.arrives.load() + stats.root_arrives.load();
  // Expand breadth-first for a few generations.
  for (int gen = 0; gen < 8; ++gen) {
    std::vector<live> next;
    for (const live& v : frontier) {
      const arrive_result r = ic.arrive(v.inc, v.left);
      const std::uint64_t now = stats.arrives.load() + stats.root_arrives.load();
      EXPECT_LE(now - prev_arrives, 3u)
          << "increment in generation " << gen << " invoked too many arrives";
      prev_arrives = now;
      next.push_back({r.inc_left, v.dec, true});   // inherited handle
      next.push_back({r.inc_right, r.dec, false}); // fresh handle
    }
    frontier = std::move(next);
  }
  // Drain: deepest obligations first (the dag discipline).
  for (auto it = frontier.rbegin(); it != frontier.rend(); ++it) {
    ic.depart(it->dec);
  }
  EXPECT_TRUE(ic.is_zero());
}

// --- Theorem 4.9's core claim: at most 6 operations touch any node. ---
TEST(IncounterBounds, AtMostSixOpsPerNodeOverWholeComputation) {
  tree_stats stats;
  incounter ic(1, incounter_config{1, /*reclaim=*/false, &stats});
  struct live { token inc; token dec; bool left; };
  std::vector<live> frontier{{ic.root_token(), ic.root_token(), true}};
  for (int gen = 0; gen < 10; ++gen) {
    std::vector<live> next;
    for (const live& v : frontier) {
      const arrive_result r = ic.arrive(v.inc, v.left);
      next.push_back({r.inc_left, v.dec, true});
      next.push_back({r.inc_right, r.dec, false});
    }
    frontier = std::move(next);
  }
  for (auto it = frontier.rbegin(); it != frontier.rend(); ++it) {
    ic.depart(it->dec);
  }
  ASSERT_TRUE(ic.is_zero());
  EXPECT_LE(ic.tree().max_node_ops(), 6u)
      << "Theorem 4.9: no SNZI node is accessed by more than 6 operations";
}

// Lemma 4.5: without decrements, only leaves can have surplus zero.
TEST(IncounterBounds, OnlyLeavesHaveZeroSurplusWithoutDecrements) {
  incounter ic(1, incounter_config{1, false, nullptr});
  struct live { token inc; bool left; };
  std::vector<live> frontier{{ic.root_token(), true}};
  for (int gen = 0; gen < 6; ++gen) {
    std::vector<live> next;
    for (const live& v : frontier) {
      const arrive_result r = ic.arrive(v.inc, v.left);
      next.push_back({r.inc_left, true});
      next.push_back({r.inc_right, false});
    }
    frontier = std::move(next);
  }
  ic.tree().for_each_node([](const snzi::node& n, std::size_t) {
    if (n.has_children()) {
      EXPECT_GE(n.surplus_half(), 2u)
          << "an interior node with zero surplus violates Lemma 4.5";
    }
  });
}

// Lemma 4.3 consequence: the dec handle returned by an increment always
// points at the node the arrive targeted, and handle pairs are ordered
// higher-first (checked structurally: inherited handle's node is an
// ancestor-or-equal of the fresh one's parent).
TEST(IncounterBounds, FreshDecHandleIsBelowInheritedHandle) {
  incounter ic(1, analyzed());
  token inherited = ic.root_token();
  token inc = ic.root_token();
  for (int depth = 0; depth < 12; ++depth) {
    const arrive_result r = ic.arrive(inc, true);
    const auto* fresh = reinterpret_cast<const snzi::node*>(r.dec);
    const auto* high = reinterpret_cast<const snzi::node*>(inherited);
    // Walk up from fresh; we must meet `high` before the root.
    bool found = false;
    for (const snzi::node* p = fresh; p != nullptr; p = p->parent()) {
      if (p == high) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "inherited handle must sit on the fresh handle's "
                          "root path (ordering invariant)";
    inherited = r.dec;  // the child inherits [d1=r.dec higher? no: d1 inherited]
    inc = r.inc_left;
  }
}

}  // namespace
}  // namespace spdag
