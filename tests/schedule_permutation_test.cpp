// Schedule-permutation tests: execute dags under a randomized-but-valid
// scheduler (any ready vertex may run next) across many seeds. This explores
// execution orders a LIFO work-stealing scheduler would rarely produce and
// catches hidden ordering assumptions in the engine (the class of bug behind
// the finish_then publication race). The executor also owns a drain lane of
// the same kind: out-set subtree drains enqueued by a parallel finalize are
// permuted against vertex execution, so a drain may be deferred past any
// amount of dag progress — the adversarial interleaving a real scheduler
// produces only under unlucky steals.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "dag/engine.hpp"
#include "dag/future.hpp"
#include "dag/parallel_for.hpp"
#include "incounter/factory.hpp"
#include "outset/factory.hpp"
#include "util/rng.hpp"

namespace spdag {
namespace {

// Valid single-threaded scheduler that picks a uniformly random ready item —
// vertex or queued drain task — at every step.
class random_order_executor final : public executor {
 public:
  explicit random_order_executor(std::uint64_t seed) : rng_(seed) {}

  void enqueue(vertex* v) override { ready_.push_back(v); }

  // Queue instead of running inline: drains become schedulable items whose
  // position relative to vertex execution the seed decides.
  void enqueue_drain(outset_drain_task* t) override { drains_.push_back(t); }

  std::size_t run_all(dag_engine& engine) {
    std::size_t n = 0;
    while (!ready_.empty() || !drains_.empty()) {
      std::size_t i = static_cast<std::size_t>(
          rng_.below(ready_.size() + drains_.size()));
      if (i < ready_.size()) {
        vertex* v = ready_[i];
        ready_[i] = ready_.back();
        ready_.pop_back();
        engine.execute(v);
        ++n;
      } else {
        i -= ready_.size();
        outset_drain_task* t = drains_[i];
        drains_[i] = drains_.back();
        drains_.pop_back();
        t->run();  // may enqueue deeper subtrees back onto the lane
      }
    }
    return n;
  }

 private:
  xoshiro256 rng_;
  std::vector<vertex*> ready_;
  std::vector<outset_drain_task*> drains_;
};

void run_seeded(const std::string& algo, std::uint64_t seed,
                void (*setup)(dag_engine&, vertex*, vertex*),
                std::uint64_t expected_executions) {
  random_order_executor exec(seed);
  auto factory = make_counter_factory(algo);
  dag_engine engine(*factory, exec);
  auto [root, final_v] = engine.make();
  setup(engine, root, final_v);
  const std::size_t executed = exec.run_all(engine);
  EXPECT_EQ(executed, engine.stats().vertices_created.load());
  if (expected_executions != 0) {
    EXPECT_EQ(executed, expected_executions) << "seed " << seed;
  }
  EXPECT_EQ(engine.live_vertices(), 0u) << "seed " << seed;
}

std::atomic<int> g_leaves{0};

void fork_tree_body(std::atomic<int>* count, int depth) {
  if (depth == 0) {
    count->fetch_add(1);
    return;
  }
  fork2([count, depth] { fork_tree_body(count, depth - 1); },
        [count, depth] { fork_tree_body(count, depth - 1); });
}

void setup_fork_tree(dag_engine& engine, vertex* root, vertex* final_v) {
  g_leaves.store(0);
  root->body = [] { fork_tree_body(&g_leaves, 5); };
  engine.add(final_v);
  engine.add(root);
}

void setup_chain_ladder(dag_engine& engine, vertex* root, vertex* final_v) {
  struct rec {
    static void go(int depth) {
      if (depth == 0) return;
      finish_then([depth] { fork2([] {}, [] {}); }, [depth] { go(depth - 1); });
    }
  };
  root->body = [] { rec::go(20); };
  engine.add(final_v);
  engine.add(root);
}

void setup_mixed(dag_engine& engine, vertex* root, vertex* final_v) {
  g_leaves.store(0);
  root->body = [] {
    finish_then(
        [] {
          fork2([] { fork_tree_body(&g_leaves, 3); },
                [] {
                  finish_then([] { fork_tree_body(&g_leaves, 2); },
                              [] { g_leaves.fetch_add(100); });
                });
        },
        [] { g_leaves.fetch_add(1000); });
  };
  engine.add(final_v);
  engine.add(root);
}

// --- batched spawn under permuted schedules ---

void setup_batch_fanout(dag_engine& engine, vertex* root, vertex* final_v) {
  // Direct spawn_batch with a nested batch under a third of the children:
  // the k siblings share one grouped dec pair and shared inc handles, so
  // every permutation of their execution (and of the nested batches') must
  // still resolve the finish counter exactly once.
  g_leaves.store(0);
  root->body = [] {
    dag_engine* eng = dag_engine::current_engine();
    vertex* u = dag_engine::current_vertex();
    eng->spawn_batch(u, 24, [](std::uint32_t i) {
      return [i] {
        if (i % 3 == 0) {
          dag_engine* e2 = dag_engine::current_engine();
          vertex* v2 = dag_engine::current_vertex();
          e2->spawn_batch(v2, 5, [](std::uint32_t) {
            return [] { g_leaves.fetch_add(1); };
          });
        } else {
          g_leaves.fetch_add(1);
        }
      };
    });
  };
  engine.add(final_v);
  engine.add(root);
}

void setup_batch_mixed(dag_engine& engine, vertex* root, vertex* final_v) {
  // Blocked builder inside a finish block, then a batch in the continuation:
  // permutes batched siblings against the finish_then publication ordering.
  g_leaves.store(0);
  root->body = [] {
    finish_then(
        [] {
          parallel_for_blocked(0, 70, 3,
                               [](std::size_t) { g_leaves.fetch_add(1); });
        },
        [] {
          dag_engine* eng = dag_engine::current_engine();
          vertex* u = dag_engine::current_vertex();
          eng->spawn_batch(u, 3, [](std::uint32_t) {
            return [] { g_leaves.fetch_add(10); };
          });
        });
  };
  engine.add(final_v);
  engine.add(root);
}

// --- drain-enqueue order vs vertex execution ---

constexpr int kFutureConsumers = 96;

void future_fanout_rec(future<std::uint64_t> f, std::uint64_t k) {
  if (k >= 2) {
    fork2([f, k] { future_fanout_rec(f, k / 2); },
          [f, k] { future_fanout_rec(f, k - k / 2); });
  } else if (k == 1) {
    future_then(f, [](std::uint64_t v) {
      g_leaves.fetch_add(static_cast<int>(v));
    });
  }
}

void setup_future_fanout(dag_engine& engine, vertex* root, vertex* final_v) {
  g_leaves.store(0);
  root->body = [] {
    future<std::uint64_t> f = future<std::uint64_t>::make();
    fork2([f] { f.complete(1, dag_engine::current_engine()); },
          [f] { future_fanout_rec(f, kFutureConsumers); });
  };
  engine.add(final_v);
  engine.add(root);
}

TEST(SchedulePermutationDrains, FutureFanoutDeliversOnceUnderPermutedDrains) {
  // One producer, many future_then consumers, a scatter-forced tree out-set:
  // the finalize offloads subtree drains through the executor, and the seed
  // permutes (a) registration vs completion order — some adds are captured,
  // some lose the race and self-deliver — and (b) when each captured
  // subtree's drain actually runs relative to ongoing vertex execution.
  // Exactly-once delivery (sum == consumers) must hold for every schedule,
  // and quiescence (live_vertices == 0, all drains run) at every exit.
  std::uint64_t offloaded_total = 0;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    random_order_executor exec(seed);
    auto factory = make_counter_factory("dyn");
    auto outsets = make_outset_factory("tree:2:1:4");
    dag_engine_options opts;
    opts.outsets = outsets.get();
    dag_engine engine(*factory, exec, opts);
    auto [root, final_v] = engine.make();
    setup_future_fanout(engine, root, final_v);
    const std::size_t executed = exec.run_all(engine);
    EXPECT_EQ(executed, engine.stats().vertices_created.load()) << "seed "
                                                                << seed;
    EXPECT_EQ(g_leaves.load(), kFutureConsumers) << "seed " << seed;
    EXPECT_EQ(engine.live_vertices(), 0u) << "seed " << seed;
    const outset_totals t = outsets->totals();
    EXPECT_EQ(t.adds, t.delivered)
        << "seed " << seed << ": captured registrations must all be drained";
    offloaded_total += t.subtrees_offloaded;
  }
  EXPECT_GT(offloaded_total, 0u)
      << "the scatter spec must actually exercise the offloaded-drain path";
}

class SchedulePermutation : public ::testing::TestWithParam<std::string> {};

TEST_P(SchedulePermutation, ForkTreeUnderManySchedules) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    run_seeded(GetParam(), seed, setup_fork_tree, 0);
    EXPECT_EQ(g_leaves.load(), 32) << "seed " << seed;
  }
}

TEST_P(SchedulePermutation, ChainLadderUnderManySchedules) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    // 2 (make) + 20 * (2 chain + 2 spawn) = 82 vertices.
    run_seeded(GetParam(), seed, setup_chain_ladder, 82);
  }
}

TEST_P(SchedulePermutation, MixedNestingUnderManySchedules) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    run_seeded(GetParam(), seed, setup_mixed, 0);
    EXPECT_EQ(g_leaves.load(), 8 + 4 + 100 + 1000) << "seed " << seed;
  }
}

TEST_P(SchedulePermutation, BatchFanoutUnderManySchedules) {
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    // 2 (make) + 24 batch children + 8 nested batches * 5 = 66 vertices.
    run_seeded(GetParam(), seed, setup_batch_fanout, 66);
    EXPECT_EQ(g_leaves.load(), 16 + 8 * 5) << "seed " << seed;
  }
}

TEST_P(SchedulePermutation, BatchMixedFinishThenUnderManySchedules) {
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    run_seeded(GetParam(), seed, setup_batch_mixed, 0);
    EXPECT_EQ(g_leaves.load(), 70 + 3 * 10) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Algos, SchedulePermutation,
                         ::testing::Values("faa", "snzi:2", "dyn:1", "dyn:16"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& ch : name) {
                             if (ch == ':') ch = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace spdag
