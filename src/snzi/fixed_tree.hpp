#pragma once
// Fixed-depth SNZI tree with hashed leaf placement (paper section 5).
//
// This is the paper's second baseline: "The fixed-depth SNZI algorithm
// allocates for each finish block a SNZI tree of 2^{d+1} - 1 nodes, for a
// given depth d. [...] we map DAG vertices to SNZI nodes using a hash
// function to ensure that operations are spread evenly across the SNZI
// tree." Every depart must target the node its matching arrive targeted, so
// arrive() returns the leaf for the caller to retain.

#include <cstdint>
#include <vector>

#include "snzi/tree.hpp"
#include "util/rng.hpp"

namespace spdag::snzi {

class fixed_tree {
 public:
  // depth 0 is a single node (the base); depth d has 2^{d+1} - 1 nodes.
  // `pairs` is the child-pair slab pool (null = default registry's).
  explicit fixed_tree(int depth, std::uint64_t initial_surplus = 0,
                      tree_stats* stats = nullptr,
                      object_pool* pairs = nullptr);

  fixed_tree(const fixed_tree&) = delete;
  fixed_tree& operator=(const fixed_tree&) = delete;

  // The leaf a given placement key maps to.
  node* leaf_for(std::uint64_t key) noexcept {
    return leaves_[mix64(key) % leaves_.size()];
  }

  // Arrive at the hashed leaf; the returned node must be passed to depart().
  node* arrive(std::uint64_t key) noexcept { return arrive(key, 1); }

  // Batched arrive: posts n surplus units on one hashed leaf in one
  // operation. The returned leaf supports n independent depart() calls.
  node* arrive(std::uint64_t key, std::uint32_t n) noexcept {
    node* leaf = leaf_for(key);
    leaf->arrive(n);
    return leaf;
  }

  // Returns true iff the tree surplus reached zero.
  bool depart(node* leaf) noexcept { return leaf->depart(); }

  bool query() const noexcept { return tree_.query(); }
  bool is_zero() const noexcept { return tree_.is_zero(); }

  int depth() const noexcept { return depth_; }
  std::size_t leaf_count() const noexcept { return leaves_.size(); }
  std::size_t node_count() const { return tree_.node_count(); }
  snzi_tree& tree() noexcept { return tree_; }

  // Non-concurrent reuse.
  void reset(std::uint64_t initial_surplus);

 private:
  void build();

  int depth_;
  snzi_tree tree_;
  std::vector<node*> leaves_;
};

}  // namespace spdag::snzi
