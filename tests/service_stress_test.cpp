// Adversarial dag_service concurrency (stress lane; CI re-runs this under
// TSan and ASan): a multi-client completion storm over both schedulers with
// a small admission cap forcing constant blocking, and a thread-slot
// exhaustion run where more concurrently-live client threads than
// mem::max_thread_slots hammer submit() — over-cap threads must fall back
// to uncached allocation gracefully (src/mem/thread_slot.hpp), never fail.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "dag/engine.hpp"
#include "mem/thread_slot.hpp"
#include "service/service.hpp"

namespace spdag {
namespace {

class ServiceStressTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ServiceStressTest, CompletionStormUnderTightAdmission) {
  constexpr int kClients = 8;
  constexpr int kPerClient = 250;
  service_config cfg;
  cfg.rt.workers = 4;
  cfg.rt.sched = GetParam();
  cfg.max_inflight = 16;  // far below the offered load: admission must block
  cfg.on_full = admission_policy::block;
  cfg.idle_trim_after = std::chrono::milliseconds(1);
  dag_service svc(cfg);

  std::atomic<std::uint64_t> leaves{0};
  std::atomic<std::uint64_t> ok_waits{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    // Open-loop clients: fire the whole batch without waiting, so the
    // offered load (8 × 250) piles up against the cap of 16 and admission
    // MUST block, then collect every ticket.
    clients.emplace_back([&] {
      std::vector<ticket> tickets;
      tickets.reserve(kPerClient);
      for (int i = 0; i < kPerClient; ++i) {
        tickets.push_back(svc.submit([&leaves] {
          fork2([&leaves] { leaves.fetch_add(1, std::memory_order_relaxed); },
                [&leaves] {
                  fork2([&leaves] {
                          leaves.fetch_add(1, std::memory_order_relaxed);
                        },
                        [&leaves] {
                          leaves.fetch_add(1, std::memory_order_relaxed);
                        });
                });
        }));
        ASSERT_TRUE(tickets.back().valid());
      }
      for (auto& t : tickets) {
        if (t.wait()) ok_waits.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : clients) th.join();

  const std::uint64_t n = static_cast<std::uint64_t>(kClients) * kPerClient;
  EXPECT_EQ(ok_waits.load(), n);         // every submission completed...
  EXPECT_EQ(leaves.load(), 3 * n);       // ...and ran its body exactly once
  const auto s = svc.stats();
  EXPECT_EQ(s.submitted, n);
  EXPECT_EQ(s.admitted, n);
  EXPECT_EQ(s.completed, n);
  EXPECT_EQ(s.rejected, 0u);
  EXPECT_GT(s.blocked, 0u);              // the cap actually bit
  EXPECT_LE(s.peak_inflight, cfg.max_inflight);
  EXPECT_EQ(s.inflight, 0u);
}

TEST_P(ServiceStressTest, MoreClientThreadsThanThreadSlots) {
  // Every client thread claims a mem::thread_slot() on its first pooled
  // allocation and keeps it until thread exit. Hold all clients alive until
  // every one is done, so their live count genuinely exceeds the slot cap
  // and the overflow threads exercise the slotless (-1) fallback.
  const int kClients = mem::max_thread_slots + 44;
  constexpr int kPerClient = 3;
  service_config cfg;
  cfg.rt.workers = 4;
  cfg.rt.sched = GetParam();
  dag_service svc(cfg);

  std::atomic<std::uint64_t> ran{0};
  std::atomic<std::uint64_t> ok_waits{0};
  std::atomic<int> finished{0};
  std::atomic<bool> all_done{false};
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(kClients));
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (int i = 0; i < kPerClient; ++i) {
        auto t = svc.submit(
            [&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
        ASSERT_TRUE(t.valid());
        if (t.wait()) ok_waits.fetch_add(1, std::memory_order_relaxed);
      }
      finished.fetch_add(1, std::memory_order_acq_rel);
      // Park (still alive, slot still claimed) until the whole cohort is
      // done — otherwise early finishers return their slots and the cap is
      // never actually exceeded.
      while (!all_done.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
    });
  }
  while (finished.load(std::memory_order_acquire) < kClients) {
    std::this_thread::yield();
  }
  all_done.store(true, std::memory_order_release);
  for (auto& th : clients) th.join();

  const std::uint64_t n =
      static_cast<std::uint64_t>(kClients) * kPerClient;
  EXPECT_EQ(ran.load(), n);
  EXPECT_EQ(ok_waits.load(), n);
  const auto s = svc.stats();
  EXPECT_EQ(s.completed, n);
  EXPECT_EQ(s.rejected, 0u);
  EXPECT_EQ(s.inflight, 0u);
}

INSTANTIATE_TEST_SUITE_P(Schedulers, ServiceStressTest,
                         ::testing::Values("ws", "private"));

}  // namespace
}  // namespace spdag
