#include "apps/wavefront_lcs.hpp"

#include <algorithm>
#include <vector>

#include "dag/parallel_for.hpp"
#include "util/rng.hpp"

namespace spdag::apps {

std::string random_dna(std::size_t len, std::uint64_t seed) {
  static const char alphabet[] = "ACGT";
  xoshiro256 rng(seed);
  std::string s(len, 'A');
  for (auto& c : s) c = alphabet[rng.below(4)];
  return s;
}

std::uint32_t lcs_serial(const std::string& a, const std::string& b) {
  std::vector<std::vector<std::uint32_t>> dp(
      a.size() + 1, std::vector<std::uint32_t>(b.size() + 1, 0));
  for (std::size_t i = 1; i <= a.size(); ++i) {
    for (std::size_t j = 1; j <= b.size(); ++j) {
      dp[i][j] = (a[i - 1] == b[j - 1]) ? dp[i - 1][j - 1] + 1
                                        : std::max(dp[i - 1][j], dp[i][j - 1]);
    }
  }
  return dp[a.size()][b.size()];
}

namespace {

// Grid state captured by pointer into vertex bodies (64-byte inline budget);
// lives on lcs_run's stack, which outlives the rt.run below.
struct lcs_grid {
  const std::string* a;
  const std::string* b;
  std::size_t block;
  std::size_t nb;   // blocks per side
  std::size_t dim;  // dp row length (len + 1)
  std::uint32_t* dp;
  bool batch;

  std::uint32_t& cell(std::size_t i, std::size_t j) const {
    return dp[i * dim + j];
  }

  // Fills block (bi, bj) serially; its predecessors on earlier diagonals
  // are complete by the time the diagonal containing it starts.
  void compute_block(std::size_t bi, std::size_t bj) const {
    const std::size_t i_lo = bi * block + 1;
    const std::size_t i_hi = std::min(i_lo + block, a->size() + 1);
    const std::size_t j_lo = bj * block + 1;
    const std::size_t j_hi = std::min(j_lo + block, b->size() + 1);
    for (std::size_t i = i_lo; i < i_hi; ++i) {
      for (std::size_t j = j_lo; j < j_hi; ++j) {
        cell(i, j) = ((*a)[i - 1] == (*b)[j - 1])
                         ? cell(i - 1, j - 1) + 1
                         : std::max(cell(i - 1, j), cell(i, j - 1));
      }
    }
  }

  // Runs diagonal d as one finish block, then continues with d+1 — the
  // wavefront is a finish_then chain, one link per diagonal. Must be the
  // last dag action of the calling vertex body.
  void process_diag(std::size_t d) const {
    if (d >= 2 * nb - 1) return;
    const lcs_grid* g = this;
    finish_then(
        [g, d] {
          const std::size_t bi_lo = d < g->nb ? 0 : d - g->nb + 1;
          const std::size_t bi_hi = std::min(d, g->nb - 1);
          const std::size_t count = bi_hi - bi_lo + 1;
          auto body = [g, d, bi_lo](std::size_t k) {
            const std::size_t bi = bi_lo + k;
            g->compute_block(bi, d - bi);
          };
          if (g->batch) {
            parallel_for_blocked(0, count, 1, body);
          } else {
            parallel_for(0, count, 1, body);
          }
        },
        [g, d] { g->process_diag(d + 1); });
  }
};

}  // namespace

lcs_result lcs_run(runtime& rt, const lcs_config& cfg) {
  const std::string a = random_dna(cfg.len, cfg.seed);
  const std::string b = random_dna(cfg.len, cfg.seed + 1);
  const std::size_t block = cfg.block == 0 ? 1 : cfg.block;
  const std::size_t nb = (cfg.len + block - 1) / block;
  const std::size_t dim = cfg.len + 1;
  std::vector<std::uint32_t> dp(dim * dim, 0);

  lcs_grid grid{&a, &b, block, nb, dim, dp.data(), cfg.batch};
  const lcs_grid* g = &grid;
  rt.run([g] { g->process_diag(0); });

  lcs_result r;
  r.length = dp[cfg.len * dim + cfg.len];
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a over every cell
  for (const std::uint32_t c : dp) {
    h = (h ^ c) * 1099511628211ull;
  }
  r.cells_checksum = h;
  r.blocks = nb * nb;
  return r;
}

}  // namespace spdag::apps
