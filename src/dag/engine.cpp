#include "dag/engine.hpp"

#include <cassert>
#include <vector>

#include "mem/epoch.hpp"
#include "obs/trace.hpp"
#include "outset/factory.hpp"
#include "util/rng.hpp"

namespace spdag {

namespace {
thread_local vertex* tls_current_vertex = nullptr;
thread_local dag_engine* tls_current_engine = nullptr;
// Pending drains of the thread-local inline trampoline below; non-null only
// while a drain loop is running on this thread.
thread_local std::vector<outset_drain_task*>* tls_drain_queue = nullptr;
}  // namespace

vertex* dag_engine::current_vertex() noexcept { return tls_current_vertex; }
dag_engine* dag_engine::current_engine() noexcept { return tls_current_engine; }

void executor::enqueue_drain(outset_drain_task* t) {
  // Default: run on the calling thread, flattened — the serial-executor
  // path, and what both schedulers fall back to when they cannot offload
  // (one worker, saturated queue). A running task spawns its sub-tasks back
  // through this very function, so recursing here would rebuild the deep
  // call stack the iterative walks just removed; instead a nested call
  // appends to the loop already draining this thread.
  if (tls_drain_queue != nullptr) {
    tls_drain_queue->push_back(t);
    return;
  }
  // This path can run on threads no scheduler pins (the serial executor, a
  // caller's own thread on the saturation fallback); drains walk out-set
  // nodes whose recycled siblings a concurrent trim_live() could otherwise
  // unmap, so hold a pin for the duration of the loop.
  mem::epoch::pin_guard eg;
  std::vector<outset_drain_task*> queue;
  tls_drain_queue = &queue;
  t->run();
  while (!queue.empty()) {
    outset_drain_task* next = queue.back();
    queue.pop_back();
    next->run();
  }
  tls_drain_queue = nullptr;
}

void dag_engine::enqueue_drain(outset_drain_task* t) {
  stats_.drains_enqueued.fetch_add(1, std::memory_order_relaxed);
  exec_.enqueue_drain(t);
}

std::size_t dag_engine::trim_pools() {
  assert(live_vertices() == 0 &&
         "trim_pools requires quiescence: call only between run()s");
  obs::span_guard sg(obs::sp_trim);
  return pools_->trim();
}

bool dag_engine::try_trim_pools(std::size_t* slabs_released) {
  if (live_vertices() != 0) return false;
  obs::span_guard sg(obs::sp_trim);
  const std::size_t released = pools_->trim();
  if (slabs_released != nullptr) *slabs_released = released;
  return true;
}

std::size_t dag_engine::trim_pools_live(std::size_t* slabs_reclaimed) {
  obs::span_guard sg(obs::sp_trim);
  return pools_->trim_live(slabs_reclaimed);
}

dag_engine::dag_engine(counter_factory& factory, executor& exec,
                       dag_engine_options options)
    : factory_(factory),
      outsets_(options.outsets != nullptr ? options.outsets
                                          : &default_outset_factory()),
      pools_(options.pools != nullptr ? options.pools
                                      : &default_pool_registry()),
      exec_(exec),
      options_(options),
      vertex_pool_(&pools_->get("vertex", sizeof(vertex), alignof(vertex))),
      pair_pool_(&pools_->get("dec_pair", sizeof(dec_pair), alignof(dec_pair))) {
  // Counters from one factory are homogeneous; probe once.
  dep_counter* probe = factory_.acquire(0);
  uses_tokens_ = probe->uses_tokens();
  factory_.release(probe);
}

dag_engine::~dag_engine() {
  // Teardown contract: the engine must be quiescent. Vertices are pool
  // cells destroyed by recycle(); a vertex still live here would leak
  // whatever its body captured (the pool reclaims raw storage only). Every
  // scheduler's run() drains to quiescence before returning, so this only
  // trips on direct engine misuse (make()/spawn() without executing).
  assert(live_vertices() == 0 &&
         "dag_engine destroyed with live vertices; their bodies leak");
}

object_pool& dag_engine::state_pool(std::size_t bytes, std::size_t align) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(bytes) << 16) | static_cast<std::uint64_t>(align);
  for (auto& e : state_pools_) {
    if (e.key.load(std::memory_order_acquire) == key) {
      return *e.pool.load(std::memory_order_relaxed);
    }
  }
  object_pool& p = pools_->get("future_state", bytes, align);
  std::lock_guard<std::mutex> lock(memo_mu_);
  for (auto& e : state_pools_) {
    const std::uint64_t k = e.key.load(std::memory_order_relaxed);
    if (k == key) return p;  // a racer installed it first
    if (k == 0) {
      e.pool.store(&p, std::memory_order_relaxed);
      e.key.store(key, std::memory_order_release);
      return p;
    }
  }
  // Memo full (more than state_pool_slots distinct geometries): serve from
  // the registry each time — correct, just uncached.
  return p;
}

vertex* dag_engine::alloc_vertex() {
  stats_.vertices_created.fetch_add(1, std::memory_order_relaxed);
  return pool_new<vertex>(*vertex_pool_);
}

void dag_engine::recycle(vertex* v) {
  if (v->counter != nullptr) {
    factory_.release(v->counter);
    v->counter = nullptr;
  }
  stats_.vertices_recycled.fetch_add(1, std::memory_order_relaxed);
  pool_delete(*vertex_pool_, v);
}

dec_pair* dag_engine::alloc_pair(token t0, token t1, std::uint32_t owners,
                                 bool grouped) {
  dec_pair* p = pool_new<dec_pair>(*pair_pool_);
  p->reset(t0, t1, owners, grouped);
  stats_.pairs_created.fetch_add(1, std::memory_order_relaxed);
  return p;
}

void dag_engine::release_pair_ref(dec_pair* p) {
  if (p->owners.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    stats_.pairs_recycled.fetch_add(1, std::memory_order_relaxed);
    pool_delete(*pair_pool_, p);
  }
}

token dag_engine::claim_dec(vertex* u) {
  obs::emit(obs::ev_claim_dec);
  dec_pair* p = u->dpair;
  assert(p != nullptr && "claim_dec on a vertex without a decrement pair");
  // Test-and-set: the first sibling to need a decrement handle takes t[0],
  // the handle pointing at least as high in the SNZI tree as t[1] (paper
  // section 3.3, Lemma 4.6's ordering invariant). Callers: spawn() claims
  // the parent's inherited handle into the new pair, and signal()/the
  // execute() epilogue claim at depart time — execute() deliberately claims
  // BEFORE recycling v (the handle lives in v->dpair) and departs after.
  // The ablation policy lets the first claimer pick a random slot instead —
  // never on a grouped (spawn_batch) pair, whose t[1] is a multi-unit batch
  // token: all owners-1 later claimers must land on it (see dec_pair).
  const std::int8_t want =
      (options_.randomize_claim_order && !p->grouped)
          ? static_cast<std::int8_t>(thread_rng()() & 1)
          : std::int8_t{0};
  std::int8_t first = -1;
  int idx;
  if (p->first_slot.compare_exchange_strong(first, want,
                                            std::memory_order_acq_rel)) {
    idx = want;
  } else {
    idx = 1 - first;  // the slot the first claimer left behind
  }
  const token t = p->t[idx];
  u->dpair = nullptr;
  release_pair_ref(p);
  return t;
}

vertex* dag_engine::new_vertex(vertex* fin, token inc, dec_pair* dpair,
                               std::uint32_t n, bool is_left) {
  vertex* v = alloc_vertex();
  v->counter = factory_.acquire(n);
  if (n > 0) {
    // An initial surplus is one increment operation covering n edges (the
    // obligations the new counter starts with) — see engine_stats::edges.
    stats_.counter_incs.fetch_add(1, std::memory_order_relaxed);
    stats_.edges.fetch_add(n, std::memory_order_relaxed);
  }
  v->fin = fin;
  v->inc = inc;
  v->dpair = dpair;
  v->is_left = is_left;
  v->dead = false;
  v->shared_inc = false;
  return v;
}

std::pair<vertex*, vertex*> dag_engine::make() {
  // Final vertex: one pending dependency (the root's signal); no finish of
  // its own — executing it ends the computation.
  vertex* final_v = alloc_vertex();
  final_v->counter = factory_.acquire(1);
  stats_.counter_incs.fetch_add(1, std::memory_order_relaxed);
  stats_.edges.fetch_add(1, std::memory_order_relaxed);
  final_v->fin = nullptr;
  final_v->inc = 0;
  final_v->dpair = nullptr;
  final_v->dead = false;
  final_v->shared_inc = false;

  const token h = final_v->counter->root_token();
  dec_pair* p = uses_tokens_ ? alloc_pair(h, h, 1) : nullptr;
  vertex* root = new_vertex(final_v, h, p, 0, /*is_left=*/true);
  return {root, final_v};
}

std::pair<vertex*, vertex*> dag_engine::chain(vertex* u) {
  stats_.chains.fetch_add(1, std::memory_order_relaxed);
  assert(!u->dead && "chain on a dead vertex");
  // w inherits u's obligation toward u.fin and waits for v's subtree.
  vertex* w = new_vertex(u->fin, u->inc, u->dpair, 1, u->is_left);
  w->shared_inc = u->shared_inc;  // same handle token, same sharing status
  u->dpair = nullptr;  // transferred
  const token h = w->counter->root_token();
  dec_pair* vp = uses_tokens_ ? alloc_pair(h, h, 1) : nullptr;
  // v's handle is w's fresh counter's root — unique by construction.
  vertex* v = new_vertex(w, h, vp, 0, /*is_left=*/true);
  u->dead = true;
  return {v, w};
}

std::pair<vertex*, vertex*> dag_engine::spawn(vertex* u) {
  stats_.spawns.fetch_add(1, std::memory_order_relaxed);
  obs::emit(obs::ev_spawn);
  assert(!u->dead && "spawn on a dead vertex");
  vertex* fin = u->fin;
  assert(fin != nullptr && "spawn requires a finish vertex");
  // One increment for two new vertices: one of them stands for u's
  // continuation, whose obligation u already holds.
  const arrive_result r = fin->counter->arrive(u->inc, u->is_left);
  stats_.counter_incs.fetch_add(1, std::memory_order_relaxed);
  stats_.edges.fetch_add(1, std::memory_order_relaxed);
  dec_pair* np = nullptr;
  if (uses_tokens_) {
    // Claim AFTER the arrive completed (the paper's key invariant: the
    // arrive pins the counter nonzero, so the claimed handle cannot watch
    // its node phase-change out from under it), and order the pair
    // [inherited-higher, fresh-lower]. alloc_pair sets owners=2: both
    // children share the pair until each has claimed its slot.
    const token d1 = claim_dec(u);
    np = alloc_pair(d1, r.dec, /*owners=*/2);
  }
  vertex* v = new_vertex(fin, r.inc_left, np, 0, /*is_left=*/true);
  vertex* w = new_vertex(fin, r.inc_right, np, 0, /*is_left=*/false);
  // If u's handle was shared, another sharer growing the same hint may hold
  // the very same children — the new handles are shared too.
  v->shared_inc = u->shared_inc;
  w->shared_inc = u->shared_inc;
  u->dead = true;
  return {v, w};
}

void dag_engine::spawn_batch_vertices(vertex* u, std::uint32_t k,
                                      vertex** out) {
  assert(k >= 1 && "spawn_batch creates at least one vertex");
  assert(!u->dead && "spawn_batch on a dead vertex");
  vertex* fin = u->fin;
  assert(fin != nullptr && "spawn_batch requires a finish vertex");
  stats_.spawns.fetch_add(1, std::memory_order_relaxed);
  obs::emit(obs::ev_spawn);
  if (k == 1) {
    // Degenerate batch: hand u's obligation to the single child, no new
    // increment at all (the counter never hears about this).
    out[0] = new_vertex(fin, u->inc, u->dpair, 0, u->is_left);
    out[0]->shared_inc = u->shared_inc;
    u->dpair = nullptr;
    u->dead = true;
    return;
  }
  // ONE batched increment covers the k-1 new edges (u's continuation
  // obligation accounts for the k-th); this is the amortization the batch
  // API exists for — counter_ops_per_edge drops below 1.
  const arrive_result r = fin->counter->add(u->inc, u->is_left, k - 1);
  stats_.counter_incs.fetch_add(1, std::memory_order_relaxed);
  stats_.edges.fetch_add(k - 1, std::memory_order_relaxed);
  dec_pair* np = nullptr;
  if (uses_tokens_) {
    // Same shape as spawn(): claim u's inherited (higher) handle only after
    // the batched arrive pinned the counter nonzero; r.dec carries the k-1
    // surplus units. The grouped pair makes the first claimer take t[0] and
    // every later claimer depart t[1] exactly once.
    const token d1 = claim_dec(u);
    np = alloc_pair(d1, r.dec, /*owners=*/k, /*grouped=*/true);
  }
  for (std::uint32_t i = 0; i < k; ++i) {
    const bool left = (i % 2) == 0;
    vertex* v = new_vertex(fin, left ? r.inc_left : r.inc_right, np, 0, left);
    // All k children share the one arrive's two child handles.
    v->shared_inc = true;
    out[i] = v;
  }
  u->dead = true;
}

void dag_engine::signal(vertex* u) {
  stats_.signals.fetch_add(1, std::memory_order_relaxed);
  vertex* fin = u->fin;
  assert(fin != nullptr && "signal requires a finish vertex");
  const token d = uses_tokens_ ? claim_dec(u) : 0;
  stats_.counter_decs.fetch_add(1, std::memory_order_relaxed);
  if (fin->counter->depart(d)) {
    exec_.enqueue(fin);
  }
}

void dag_engine::add(vertex* v) {
  if (v->counter->is_zero()) {
    exec_.enqueue(v);
  }
}

void dag_engine::execute(vertex* v) {
  stats_.executions.fetch_add(1, std::memory_order_relaxed);
  vertex* prev_v = tls_current_vertex;
  dag_engine* prev_e = tls_current_engine;
  tls_current_vertex = v;
  tls_current_engine = this;
  if (v->body) v->body();
  tls_current_vertex = prev_v;
  tls_current_engine = prev_e;
  // Recycle BEFORE signaling: the signal below may transitively enable the
  // final vertex on another worker, and the run is only quiescent once every
  // vertex is recycled. Claim the decrement handle first (it lives in v).
  const bool should_signal = !v->dead && v->fin != nullptr;
  vertex* fin = v->fin;
  const token d = (should_signal && uses_tokens_) ? claim_dec(v) : 0;
  const token abandoned_inc = should_signal ? v->inc : 0;
  const bool shared = v->shared_inc;
  recycle(v);
  if (should_signal) {
    stats_.signals.fetch_add(1, std::memory_order_relaxed);
    stats_.counter_decs.fetch_add(1, std::memory_order_relaxed);
    // This vertex never spawned, so its increment handle is dead; let the
    // counter reclaim the handle's node (appendix B) before the depart that
    // may hand `fin` to another worker. Never for a SHARED handle: a sibling
    // of the batch may still use it, and two sharers retiring the same node
    // would double-count its pair's retire (see vertex::shared_inc).
    if (uses_tokens_ && !shared) fin->counter->abandon(abandoned_inc);
    if (fin->counter->depart(d)) {
      exec_.enqueue(fin);
    }
  }
}

}  // namespace spdag
