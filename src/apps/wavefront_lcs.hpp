#pragma once
// apps/wavefront_lcs: anti-diagonal wavefront dynamic programming (longest
// common subsequence), promoted from examples/wavefront_lcs.cpp into a
// parameterized library workload.
//
// The blocked dp grid is swept one anti-diagonal at a time: every block on
// diagonal d depends only on blocks of diagonals d-1 and d-2, so one finish
// block per diagonal (sequenced by a finish_then chain) makes each diagonal
// a parallel_for over its blocks — through the blocked (batched) builder or
// the fork2 splitter, selected by `batch`. The dp recurrence is a pure
// function of the inputs, so every cell value (and therefore the checksum)
// is byte-identical across schedulers, allocators, out-sets, and batch
// on/off — the golden-output property apps_golden_test pins.

#include <cstdint>
#include <string>

#include "sched/runtime.hpp"

namespace spdag::apps {

struct lcs_config {
  std::size_t len = 2048;   // both input strings are `len` chars
  std::size_t block = 128;  // dp block edge (one task per block)
  std::uint64_t seed = 1;   // input strings are random_dna(seed), (seed+1)
  bool batch = true;        // blocked (batched) vs fork2 per-diagonal fan-out
};

struct lcs_result {
  std::uint32_t length = 0;           // LCS length (dp corner)
  std::uint64_t cells_checksum = 0;   // FNV-1a over every dp cell, row-major
  std::uint64_t blocks = 0;           // tasks executed (one per dp block)
};

// Deterministic input generator shared with the reference implementation.
std::string random_dna(std::size_t len, std::uint64_t seed);

// Serial reference for cross-checking the parallel result.
std::uint32_t lcs_serial(const std::string& a, const std::string& b);

// Runs the wavefront to completion on rt and returns length + checksum.
lcs_result lcs_run(runtime& rt, const lcs_config& cfg = {});

}  // namespace spdag::apps
