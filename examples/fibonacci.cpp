// The paper's running example (Figure 4): parallel Fibonacci on the sp-dag.
//
// Every recursive level is a chain (serial composition: compute children,
// then combine) whose first vertex spawns the two recursive calls (parallel
// composition). The result flows through heap cells exactly as in the
// paper's pseudo-code.
//
// Usage: fibonacci [-n 30] [-proc P] [-counter dyn|faa|snzi:4|...]

#include <cstdio>
#include <string>

#include "harness/workloads.hpp"
#include "sched/runtime.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

namespace {

std::uint64_t fib_serial(unsigned n) {
  return n <= 1 ? n : fib_serial(n - 1) + fib_serial(n - 2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace spdag;
  options opts(argc, argv);
  const unsigned n = static_cast<unsigned>(opts.get_int("n", 28));
  const std::size_t procs = static_cast<std::size_t>(opts.get_int("proc", 0));
  const std::string counter = opts.get_string("counter", "dyn");

  runtime rt(runtime_config{procs, counter});
  std::printf("computing fib(%u) on %zu workers with the '%s' counter\n", n,
              rt.workers(), counter.c_str());

  wall_timer serial_timer;
  const std::uint64_t expected = fib_serial(n);
  const double serial_s = serial_timer.elapsed_s();

  wall_timer parallel_timer;
  const std::uint64_t got = harness::fib(rt, n);
  const double parallel_s = parallel_timer.elapsed_s();

  std::printf("serial:   %llu in %.4fs\n",
              static_cast<unsigned long long>(expected), serial_s);
  std::printf("parallel: %llu in %.4fs (%s)\n",
              static_cast<unsigned long long>(got), parallel_s,
              got == expected ? "correct" : "WRONG");

  const auto& st = rt.engine().stats();
  std::printf("dag: %llu vertices, %llu spawns, %llu chains, %llu signals\n",
              static_cast<unsigned long long>(st.vertices_created.load()),
              static_cast<unsigned long long>(st.spawns.load()),
              static_cast<unsigned long long>(st.chains.load()),
              static_cast<unsigned long long>(st.signals.load()));
  return got == expected ? 0 : 1;
}
