// Schedule-permutation tests: execute dags under a randomized-but-valid
// scheduler (any ready vertex may run next) across many seeds. This explores
// execution orders a LIFO work-stealing scheduler would rarely produce and
// catches hidden ordering assumptions in the engine (the class of bug behind
// the finish_then publication race).

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "dag/engine.hpp"
#include "incounter/factory.hpp"
#include "util/rng.hpp"

namespace spdag {
namespace {

// Valid single-threaded scheduler that picks a uniformly random ready
// vertex at every step.
class random_order_executor final : public executor {
 public:
  explicit random_order_executor(std::uint64_t seed) : rng_(seed) {}

  void enqueue(vertex* v) override { ready_.push_back(v); }

  std::size_t run_all(dag_engine& engine) {
    std::size_t n = 0;
    while (!ready_.empty()) {
      const std::size_t i = static_cast<std::size_t>(rng_.below(ready_.size()));
      vertex* v = ready_[i];
      ready_[i] = ready_.back();
      ready_.pop_back();
      engine.execute(v);
      ++n;
    }
    return n;
  }

 private:
  xoshiro256 rng_;
  std::vector<vertex*> ready_;
};

void run_seeded(const std::string& algo, std::uint64_t seed,
                void (*setup)(dag_engine&, vertex*, vertex*),
                std::uint64_t expected_executions) {
  random_order_executor exec(seed);
  auto factory = make_counter_factory(algo);
  dag_engine engine(*factory, exec);
  auto [root, final_v] = engine.make();
  setup(engine, root, final_v);
  const std::size_t executed = exec.run_all(engine);
  EXPECT_EQ(executed, engine.stats().vertices_created.load());
  if (expected_executions != 0) {
    EXPECT_EQ(executed, expected_executions) << "seed " << seed;
  }
  EXPECT_EQ(engine.live_vertices(), 0u) << "seed " << seed;
}

std::atomic<int> g_leaves{0};

void fork_tree_body(std::atomic<int>* count, int depth) {
  if (depth == 0) {
    count->fetch_add(1);
    return;
  }
  fork2([count, depth] { fork_tree_body(count, depth - 1); },
        [count, depth] { fork_tree_body(count, depth - 1); });
}

void setup_fork_tree(dag_engine& engine, vertex* root, vertex* final_v) {
  g_leaves.store(0);
  root->body = [] { fork_tree_body(&g_leaves, 5); };
  engine.add(final_v);
  engine.add(root);
}

void setup_chain_ladder(dag_engine& engine, vertex* root, vertex* final_v) {
  struct rec {
    static void go(int depth) {
      if (depth == 0) return;
      finish_then([depth] { fork2([] {}, [] {}); }, [depth] { go(depth - 1); });
    }
  };
  root->body = [] { rec::go(20); };
  engine.add(final_v);
  engine.add(root);
}

void setup_mixed(dag_engine& engine, vertex* root, vertex* final_v) {
  g_leaves.store(0);
  root->body = [] {
    finish_then(
        [] {
          fork2([] { fork_tree_body(&g_leaves, 3); },
                [] {
                  finish_then([] { fork_tree_body(&g_leaves, 2); },
                              [] { g_leaves.fetch_add(100); });
                });
        },
        [] { g_leaves.fetch_add(1000); });
  };
  engine.add(final_v);
  engine.add(root);
}

class SchedulePermutation : public ::testing::TestWithParam<std::string> {};

TEST_P(SchedulePermutation, ForkTreeUnderManySchedules) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    run_seeded(GetParam(), seed, setup_fork_tree, 0);
    EXPECT_EQ(g_leaves.load(), 32) << "seed " << seed;
  }
}

TEST_P(SchedulePermutation, ChainLadderUnderManySchedules) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    // 2 (make) + 20 * (2 chain + 2 spawn) = 82 vertices.
    run_seeded(GetParam(), seed, setup_chain_ladder, 82);
  }
}

TEST_P(SchedulePermutation, MixedNestingUnderManySchedules) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    run_seeded(GetParam(), seed, setup_mixed, 0);
    EXPECT_EQ(g_leaves.load(), 8 + 4 + 100 + 1000) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Algos, SchedulePermutation,
                         ::testing::Values("faa", "snzi:2", "dyn:1", "dyn:16"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& ch : name) {
                             if (ch == ':') ch = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace spdag
