// Figure 14 (appendix C.3): the granularity study — fanin with per-leaf
// dummy work swept from ~1ns to ~10us, reporting the SPEEDUP of the
// in-counter (and SNZI depth=9) over the Fetch & Add cell at max cores.
//
// Expected shape: large speedups at fine granularity (the counter is the
// bottleneck), converging toward 1x once each task carries >= ~100us of real
// work; still a visible gap at the desirable 10-50us grain.
//
// Ratios across configurations do not fit google-benchmark's one-row-per-run
// model, so this binary measures with the shared harness and prints the
// paper-style table directly (grid + CSV with -csv 1).

#include <cstdio>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "harness/bench_runner.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace spdag;
  options opts(argc, argv);
  const auto common = harness::read_common(opts, /*default_n=*/1 << 14);
  harness::json_open(opts, "fig14_granularity");  // run_config adds records

  const std::vector<std::uint64_t> work_ns{1, 10, 100, 1000, 10000};
  // (algo, batch): the fan-out goes through the shared parallel_for builder
  // either way — "dyn+batch" swaps in the blocked spawn_batch variant, so
  // the row directly shows what amortizing increments buys at each grain.
  const std::vector<std::pair<std::string, bool>> algos{
      {"faa", false}, {"snzi:9", false}, {"dyn", false}, {"dyn", true}};

  std::printf("# fig14: granularity study, fanin n=%llu at proc=%zu "
              "(paper: n=8M, 40 cores; speedup vs Fetch & Add)\n",
              static_cast<unsigned long long>(common.n), common.max_proc);

  result_table table({"work_ns", "algo", "mean_s", "ops/s/core",
                      "speedup_vs_faa"});
  for (std::uint64_t w : work_ns) {
    double faa_time = 0;
    for (const auto& [algo, batch] : algos) {
      harness::bench_config cfg;
      cfg.workload = "fanin";
      cfg.algo = algo;
      cfg.workers = common.max_proc;
      cfg.n = common.n;
      cfg.work_ns = w;
      cfg.repetitions = common.runs;
      cfg.batch = batch;
      const harness::bench_result r = harness::run_config(cfg);
      if (algo == "faa" && !batch) faa_time = r.mean_s;
      const double speedup = (r.mean_s > 0 && faa_time > 0)
                                 ? faa_time / r.mean_s
                                 : 0.0;
      const std::string label = batch ? algo + "+batch" : algo;
      table.add_row({std::to_string(w), label, result_table::num(r.mean_s, 4),
                     result_table::num(r.ops_per_s_per_core, 0),
                     result_table::num(speedup, 2)});
    }
  }
  harness::emit(table, common.csv);
  return harness::json_write();
}
