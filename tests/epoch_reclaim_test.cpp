// Adversarial storms for the epoch-based reclamation layer (stress lane;
// CI re-runs this under TSan and ASan, where the instrumentation — not the
// assertions — is the real check: a reclaim racing a pinned reader is a
// use-after-free the sanitizers see immediately).
//
// Three fronts:
//   * raw retire/reclaim conservation: many threads retiring while many
//     others pin/refresh/advance/sweep — every entry must run exactly once;
//   * slab_pool trim_live under an allocation storm: concurrent churners
//     against a trimmer thread; conservation plus retire/reclaim motion;
//   * a dag_service with an aggressive busy-trim cadence under multi-client
//     traffic — the end-to-end shape the whole layer exists for.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "mem/epoch.hpp"
#include "mem/slab_pool.hpp"
#include "service/service.hpp"

namespace spdag {
namespace {

namespace ep = mem::epoch;

void bump(void* a, void* /*b*/) noexcept {
  static_cast<std::atomic<int>*>(a)->fetch_add(1, std::memory_order_relaxed);
}

TEST(EpochReclaimStress, RetireStormRunsEveryEntryExactlyOnce) {
  if (!ep::enabled()) GTEST_SKIP() << "built with -DSPDAG_EPOCH=OFF";
  constexpr int kRetirers = 4;
  constexpr int kMixers = 3;
  constexpr int kPerThread = 5000;

  std::vector<std::atomic<int>> flags(
      static_cast<std::size_t>(kRetirers) * kPerThread);
  for (auto& f : flags) f.store(0, std::memory_order_relaxed);

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  threads.reserve(kRetirers + kMixers);
  for (int r = 0; r < kRetirers; ++r) {
    threads.emplace_back([&, r] {
      for (int i = 0; i < kPerThread; ++i) {
        ep::retire(&bump, &flags[static_cast<std::size_t>(r) * kPerThread + i],
                   nullptr);
        if ((i & 127) == 0) {
          ep::try_advance();
          ep::reclaim();
        }
      }
    });
  }
  for (int m = 0; m < kMixers; ++m) {
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        {
          ep::pin_guard pg;
          ep::refresh();
          ep::tick();
        }
        ep::try_advance();
        ep::reclaim();
        std::this_thread::yield();
      }
    });
  }
  for (int r = 0; r < kRetirers; ++r) threads[static_cast<std::size_t>(r)].join();
  stop.store(true, std::memory_order_release);
  for (int m = 0; m < kMixers; ++m) {
    threads[static_cast<std::size_t>(kRetirers + m)].join();
  }

  // Everyone has stopped pinning: a handful of advance+sweep rounds must
  // drain the limbo completely.
  for (int i = 0; i < 8 && ep::limbo_size() > 0; ++i) {
    ep::try_advance();
    ep::reclaim();
  }
  for (std::size_t i = 0; i < flags.size(); ++i) {
    ASSERT_EQ(flags[i].load(std::memory_order_relaxed), 1)
        << "entry " << i << " ran a wrong number of times";
  }
}

struct cell {
  std::uint64_t payload[6];
};

TEST(EpochReclaimStress, TrimLiveUnderAllocationStormConservesCells) {
  if (!ep::enabled()) GTEST_SKIP() << "built with -DSPDAG_EPOCH=OFF";
  // Small slabs so bursts span many slabs and fully-free ones exist.
  slab_pool<cell> pool("epoch_storm", /*slab_bytes=*/4096);
  constexpr int kChurners = 4;
  constexpr int kRounds = 400;
  constexpr int kBatch = 200;

  std::atomic<bool> stop{false};
  std::thread trimmer([&] {
    // The adversary: retire fully-free slabs while the churners are mid
    // pop/push. Under TSan/ASan any window where a reader dereferences a
    // freed slab is caught here.
    while (!stop.load(std::memory_order_acquire)) {
      pool.trim_live();
      ep::try_advance();
      ep::reclaim();
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> churners;
  churners.reserve(kChurners);
  for (int c = 0; c < kChurners; ++c) {
    churners.emplace_back([&] {
      std::vector<cell*> batch;
      batch.reserve(kBatch);
      for (int round = 0; round < kRounds; ++round) {
        for (int i = 0; i < kBatch; ++i) {
          cell* p = pool.create();
          p->payload[0] = static_cast<std::uint64_t>(round);
          batch.push_back(p);
        }
        for (cell* p : batch) {
          ASSERT_EQ(p->payload[0], static_cast<std::uint64_t>(round));
          pool.destroy(p);
        }
        batch.clear();
      }
    });
  }
  for (auto& t : churners) t.join();
  stop.store(true, std::memory_order_release);
  trimmer.join();

  const pool_stats s = pool.stats();
  EXPECT_EQ(s.allocs, s.frees) << "churners returned everything";
  EXPECT_EQ(s.live(), 0u);
  EXPECT_GE(s.slabs_retired, s.slabs_reclaimed)
      << "a slab cannot be reclaimed before it was retired";
  // Quiesce the residue: everything retired must eventually reclaim.
  for (int i = 0; i < 8; ++i) {
    pool.trim_live();
    ep::try_advance();
    ep::reclaim();
  }
  EXPECT_EQ(pool.stats().slabs_retired, pool.stats().slabs_reclaimed);
}

TEST(EpochReclaimStress, ServiceBusyTrimUnderMultiClientTraffic) {
  constexpr int kClients = 6;
  constexpr int kPerClient = 300;
  service_config cfg;
  cfg.rt.workers = 3;
  // Small slabs + minimum magazines: burst frees overflow onto the global
  // recycle list, so trim_live() actually sees whole slabs drain and the
  // retire -> limbo -> reclaim path runs under sanitizer instrumentation
  // (default geometry strands cells in magazines and trims come up empty).
  cfg.rt.alloc = "pool:4096:256";
  cfg.max_inflight = 64;
  cfg.idle_trim_after = std::chrono::milliseconds(0);  // busy trim only
  cfg.busy_trim_every = 8;  // aggressive cadence: trim while clearly busy
  dag_service svc(cfg);

  std::atomic<std::uint64_t> leaves{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      std::vector<ticket> tickets;
      tickets.reserve(kPerClient);
      for (int i = 0; i < kPerClient; ++i) {
        tickets.push_back(svc.submit([&leaves] {
          fork2([&leaves] { leaves.fetch_add(1, std::memory_order_relaxed); },
                [&leaves] {
                  fork2(
                      [&leaves] {
                        leaves.fetch_add(1, std::memory_order_relaxed);
                      },
                      [&leaves] {
                        leaves.fetch_add(1, std::memory_order_relaxed);
                      });
                });
        }));
        ASSERT_TRUE(tickets.back().valid());
      }
      for (auto& t : tickets) ASSERT_TRUE(t.wait());
    });
  }
  for (auto& th : clients) th.join();

  const std::uint64_t n = static_cast<std::uint64_t>(kClients) * kPerClient;
  EXPECT_EQ(leaves.load(), 3 * n);
  const service_stats s = svc.stats();
  EXPECT_EQ(s.submitted, n);
  EXPECT_EQ(s.completed, n);
  EXPECT_EQ(s.rejected, 0u);
  if (ep::enabled()) {
    // n dispatches at a cadence of 8 means the busy trim must have fired
    // many times while submissions were in flight.
    EXPECT_GT(s.busy_trims, 0u);
    EXPECT_GE(s.slabs_retired, s.slabs_reclaimed);
  } else {
    EXPECT_EQ(s.busy_trims, 0u);
  }
}

}  // namespace
}  // namespace spdag
