#pragma once
// malloc_pool: the `alloc:malloc` ablation baseline — every cell is one trip
// to operator new/delete. Exists so benchmarks can quantify exactly what the
// slab pools buy: under this pool stats().slab_growths climbs one-for-one
// with allocs (every allocation is upstream), where slab_cache plateaus
// after warm-up. It retains nothing, so trim() stays the base-class no-op
// (frees already went straight back upstream) and the magazine gauges
// (retained(), mag_cap_lo/hi) read zero — malloc is "always trimmed".

#include <atomic>
#include <cstdint>
#include <new>
#include <string>

#include "mem/pool.hpp"

namespace spdag {

class malloc_pool final : public object_pool {
 public:
  malloc_pool(std::string name, std::size_t object_bytes,
              std::size_t object_align)
      : object_pool(std::move(name), object_bytes, object_align) {}

  void* allocate() override {
    allocs_.fetch_add(1, std::memory_order_relaxed);
    return ::operator new(object_bytes(), std::align_val_t{align_for()});
  }

  void deallocate(void* p) noexcept override {
    frees_.fetch_add(1, std::memory_order_relaxed);
    ::operator delete(p, std::align_val_t{align_for()});
  }

  pool_stats stats() const override {
    pool_stats s;
    s.allocs = allocs_.load(std::memory_order_relaxed);
    s.frees = frees_.load(std::memory_order_relaxed);
    s.carved = s.allocs;        // every cell is fresh
    s.slab_growths = s.allocs;  // every allocation is an upstream trip
    return s;
  }

 private:
  std::size_t align_for() const noexcept {
    return object_align() < alignof(std::max_align_t)
               ? alignof(std::max_align_t)
               : object_align();
  }

  std::atomic<std::uint64_t> allocs_{0};
  std::atomic<std::uint64_t> frees_{0};
};

}  // namespace spdag
