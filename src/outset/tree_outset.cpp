#include "outset/tree_outset.hpp"

#include <cassert>
#include <vector>

#include "util/rng.hpp"

namespace spdag {

namespace {

// Destructor sink: return a stranded registration to the registry's waiter
// pool (ctx). Destruction-time only — structured use resets through the
// factory first.
void repool_waiter_cell(void* ctx, outset_waiter* w) {
  pool_delete(*static_cast<object_pool*>(ctx), w);
}

}  // namespace

// One stolen unit of the finalize walk: a child group whose subtree is still
// to be drained. Carries everything the walk needs so any thread can run it;
// releases its own cell and then fires the enqueuer's hook.
struct tree_outset::drain_task final : outset_drain_task {
  tree_outset* owner = nullptr;
  tree_node* group = nullptr;
  std::uint32_t depth = 0;
  waiter_sink sink = nullptr;
  void* sink_ctx = nullptr;
  drain_spawner spawn = nullptr;
  void* spawn_ctx = nullptr;

  void run() override {
    tree_outset* o = owner;
    void (*done)(void*) = on_done;
    void* done_ctx = on_done_ctx;
    o->drain_nodes(group, o->cfg_.fanout, depth, sink, sink_ctx, spawn,
                   spawn_ctx);
    // Release before signaling completion: the hook may drop the last pin on
    // the finalize context and tear the out-set down, which is safe once
    // this subtree is fully drained and the cell is back in its pool.
    pool_delete(*o->drains_, this);
    if (done != nullptr) done(done_ctx);
  }
};

tree_outset::tree_outset(tree_outset_config cfg) : cfg_(cfg) {
  pool_registry& pools =
      cfg_.pools != nullptr ? *cfg_.pools : default_pool_registry();
  groups_ = &tree_outset_group_pool(pools, cfg_.fanout);
  waiters_ = &outset_waiter_pool(pools);
  drains_ = &pools.get("outset_drain", sizeof(drain_task), alignof(drain_task));
  assert(cfg_.fanout >= 2 && "a tree out-set needs at least two children");
}

tree_outset::~tree_outset() {
  // Registrations still parked here (a tree destroyed without a factory
  // reset) go back to THE registry waiter pool they were drawn from — a
  // no-op sink would drop the records on the floor. Structured use resets
  // before destruction, so this walk is usually empty.
  reset(&repool_waiter_cell, waiters_);
}

bool tree_outset::add(outset_waiter* w) noexcept {
  tree_node* n = &base_;
  std::uint32_t depth = 0;
  // Deep-broadcast mode: dive along a random path (growing groups as
  // needed) before the first CAS, building the deep tree contention would.
  // A terminated children pointer means finalize already sealed this node;
  // stop diving and run the normal protocol here — the node's head may
  // still capture us, and if not the head sentinel rejects us below.
  while (depth < cfg_.scatter_depth && depth < cfg_.max_depth) {
    tree_node* kids = n->children.load(std::memory_order_acquire);
    if (kids == nullptr) kids = grow(n);
    if (kids == terminated_children()) break;
    n = kids + thread_rng().below(cfg_.fanout);
    ++depth;
  }
  for (;;) {
    outset_waiter* head = n->head.load(std::memory_order_acquire);
    for (;;) {
      if (head == terminated_waiter()) {
        // This node was drained, so the whole out-set is finalizing (only
        // finalize installs the sentinel); the hand-off is the caller's.
        count_rejected();
        return false;
      }
      w->next.store(head, std::memory_order_relaxed);
      if (n->head.compare_exchange_weak(head, w, std::memory_order_release,
                                        std::memory_order_acquire)) {
        count_add();
        return true;
      }
      count_retry();
      // Another consumer hit this cache line in our window — the contention
      // signal. Move down to spread out, unless the depth cap says to stay,
      // or the growth-damping coin (see file comment) comes up tails — the
      // same 1/threshold gate as the in-counter's grow().
      if (depth < cfg_.max_depth &&
          (cfg_.grow_threshold == 1 ||
           (cfg_.grow_threshold != 0 &&
            thread_rng().below(cfg_.grow_threshold) == 0))) {
        break;
      }
    }
    tree_node* kids = n->children.load(std::memory_order_acquire);
    if (kids == nullptr) kids = grow(n);
    if (kids == terminated_children()) {
      // finalize sealed this node before any group could be installed; the
      // future is completed and the caller delivers its consumer itself.
      count_rejected();
      return false;
    }
    n = kids + thread_rng().below(cfg_.fanout);
    ++depth;
  }
}

std::uint32_t tree_outset::add_group(outset_waiter* head, outset_waiter* tail,
                                     std::uint32_t n) noexcept {
  // Same walk as add() — scatter dive, CAS, grow-on-contention descent —
  // except the winning CAS splices the whole chain onto one node's list.
  tree_node* nd = &base_;
  std::uint32_t depth = 0;
  while (depth < cfg_.scatter_depth && depth < cfg_.max_depth) {
    tree_node* kids = nd->children.load(std::memory_order_acquire);
    if (kids == nullptr) kids = grow(nd);
    if (kids == terminated_children()) break;
    nd = kids + thread_rng().below(cfg_.fanout);
    ++depth;
  }
  for (;;) {
    outset_waiter* h = nd->head.load(std::memory_order_acquire);
    for (;;) {
      if (h == terminated_waiter()) {
        count_rejected(n);
        return 0;
      }
      tail->next.store(h, std::memory_order_relaxed);
      if (nd->head.compare_exchange_weak(h, head, std::memory_order_release,
                                         std::memory_order_acquire)) {
        count_add(n);
        count_group_add();
        return n;
      }
      count_retry();
      if (depth < cfg_.max_depth &&
          (cfg_.grow_threshold == 1 ||
           (cfg_.grow_threshold != 0 &&
            thread_rng().below(cfg_.grow_threshold) == 0))) {
        break;
      }
    }
    tree_node* kids = nd->children.load(std::memory_order_acquire);
    if (kids == nullptr) kids = grow(nd);
    if (kids == terminated_children()) {
      count_rejected(n);
      return 0;
    }
    nd = kids + thread_rng().below(cfg_.fanout);
    ++depth;
  }
}

tree_outset::tree_node* tree_outset::grow(tree_node* n) noexcept {
  // One pool cell per group: fanout fresh node lines. The slab pool keeps
  // growth on the registration critical path away from malloc (per-worker
  // magazine hit in steady state).
  auto* kids = static_cast<tree_node*>(groups_->allocate());
  for (std::uint32_t i = 0; i < cfg_.fanout; ++i) {
    ::new (kids + i) tree_node{};
  }
  tree_node* expected = nullptr;
  if (n->children.compare_exchange_strong(expected, kids,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
    return kids;
  }
  groups_->deallocate(kids);
  return expected;  // the winning group — or the finalizer's sentinel
}

void tree_outset::finalize(waiter_sink sink, void* ctx) {
  finalize(sink, ctx, /*spawn=*/nullptr, /*spawn_ctx=*/nullptr);
}

void tree_outset::finalize(waiter_sink sink, void* ctx, drain_spawner spawn,
                           void* spawn_ctx) {
  drain_nodes(&base_, 1, 0, sink, ctx, spawn, spawn_ctx);
}

void tree_outset::drain_nodes(tree_node* first, std::uint32_t count,
                              std::uint32_t depth, waiter_sink sink, void* ctx,
                              drain_spawner spawn, void* spawn_ctx) {
  struct frame {
    tree_node* first;
    std::uint32_t count;
    std::uint32_t depth;
  };
  // Explicit DFS stack: one frame per kept (not offloaded) group, so a
  // pathological tree costs heap, never call stack. Stays empty — no heap
  // touch — for the common ungrown tree.
  std::vector<frame> stack;
  frame f{first, count, depth};
  for (;;) {
    for (std::uint32_t i = 0; i < f.count; ++i) {
      tree_node* n = f.first + i;
      // Seal the children pointer BEFORE draining the list head. The
      // pointer is write-once: either we read an installed group here (and
      // will drain or offload it), or our sentinel lands and no group can
      // ever be installed — so no add can sneak a waiter under a node this
      // walk already passed.
      tree_node* kids = n->children.load(std::memory_order_acquire);
      if (kids == nullptr) {
        n->children.compare_exchange_strong(kids, terminated_children(),
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire);
        // On failure a concurrent grow won; `kids` now holds its group.
      }
      outset_waiter* w =
          n->head.exchange(terminated_waiter(), std::memory_order_acq_rel);
      // Stream this node's waiters out before touching descendants:
      // consumers captured near the top of the tree are already running on
      // other workers while deeper nodes drain — the broadcast proceeds in
      // parallel down the tree.
      drain_chain(w, sink, ctx);
      if (kids == nullptr || kids == terminated_children()) continue;
      const std::uint32_t kid_depth = f.depth + 1;
      if (spawn != nullptr && kid_depth >= cfg_.offload_depth) {
        // Hand the whole subtree to the spawner as one stolen work unit;
        // the task re-offloads the groups below it, so the frontier widens
        // by `fanout` per level across however many workers go idle.
        auto* t = pool_new<drain_task>(*drains_);
        t->owner = this;
        t->group = kids;
        t->depth = kid_depth;
        t->sink = sink;
        t->sink_ctx = ctx;
        t->spawn = spawn;
        t->spawn_ctx = spawn_ctx;
        count_offloaded();
        spawn(spawn_ctx, t);
      } else {
        stack.push_back({kids, cfg_.fanout, kid_depth});
      }
    }
    if (stack.empty()) break;
    f = stack.back();
    stack.pop_back();
  }
}

void tree_outset::reset(waiter_sink sink, void* ctx) {
  struct frame {
    tree_node* first;
    bool owned;  // pool group (fanout nodes) vs the embedded base node
  };
  std::vector<frame> stack;
  frame f{&base_, false};
  for (;;) {
    const std::uint32_t count = f.owned ? cfg_.fanout : 1;
    for (std::uint32_t i = 0; i < count; ++i) {
      tree_node* n = f.first + i;
      // Abandoned registrations go back to the pool undelivered.
      scrub_chain(n->head.exchange(nullptr, std::memory_order_relaxed), sink,
                  ctx);
      tree_node* kids = n->children.exchange(nullptr, std::memory_order_relaxed);
      if (kids != nullptr && kids != terminated_children()) {
        stack.push_back({kids, true});
      }
    }
    if (f.owned) groups_->deallocate(f.first);
    if (stack.empty()) break;
    f = stack.back();
    stack.pop_back();
  }
}

std::size_t tree_outset::node_count() const {
  struct frame {
    const tree_node* first;
    std::uint32_t count;
  };
  std::vector<frame> stack;
  frame f{&base_, 1};
  std::size_t total = 0;
  for (;;) {
    total += f.count;
    for (std::uint32_t i = 0; i < f.count; ++i) {
      const tree_node* kids =
          f.first[i].children.load(std::memory_order_acquire);
      if (kids != nullptr && kids != terminated_children()) {
        stack.push_back({kids, cfg_.fanout});
      }
    }
    if (stack.empty()) break;
    f = stack.back();
    stack.pop_back();
  }
  return total;
}

std::size_t tree_outset::max_depth() const {
  struct frame {
    const tree_node* first;
    std::uint32_t count;
    std::size_t depth;
  };
  std::vector<frame> stack;
  frame f{&base_, 1, 0};
  std::size_t deepest = 0;
  for (;;) {
    if (f.depth > deepest) deepest = f.depth;
    for (std::uint32_t i = 0; i < f.count; ++i) {
      const tree_node* kids =
          f.first[i].children.load(std::memory_order_acquire);
      if (kids != nullptr && kids != terminated_children()) {
        stack.push_back({kids, cfg_.fanout, f.depth + 1});
      }
    }
    if (stack.empty()) break;
    f = stack.back();
    stack.pop_back();
  }
  return deepest;
}

std::size_t tree_outset::recycled_group_count() const {
  return groups_->stats().frees;
}

}  // namespace spdag
