#!/usr/bin/env python3
"""Validate a spdag Chrome/Perfetto trace-event JSON export.

CI runs this on the deep fan-out smoke's `-trace full` artifact to keep the
exporter honest: a trace Perfetto would silently mis-render (out-of-order
timestamps, negative durations, empty worker tracks) fails the build here
instead.

Checks:
  * the file parses as JSON and carries a non-empty `traceEvents` array;
  * every non-metadata event has pid/tid/ph/ts, and every "X" slice a
    non-negative `dur`;
  * per (pid, tid) track, timestamps are non-decreasing in file order (the
    exporter sorts each track before writing — Perfetto tolerates disorder,
    our contract does not);
  * at least --min-workers distinct worker tracks carry >= 1 duration slice;
  * a "work" slice exists somewhere, and at least one of the scheduler's
    other buckets (steal/idle/drain) shows up — an instrumentation
    regression that silences a layer trips this even when the JSON stays
    well-formed.

Exit codes: 0 ok, 1 validation failure, 2 usage/IO error.
"""

import argparse
import json
import sys
from collections import defaultdict

SLICE_NAMES = {"work", "idle", "steal", "drain", "finalize", "trim"}


def fail(msg: str) -> None:
    print(f"trace_validate: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", help="path to the .trace.json export")
    ap.add_argument(
        "--min-workers",
        type=int,
        default=1,
        help="minimum distinct worker tracks that must carry a slice",
    )
    args = ap.parse_args()

    try:
        with open(args.trace, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        print(f"trace_validate: cannot read {args.trace}: {e}", file=sys.stderr)
        sys.exit(2)
    except json.JSONDecodeError as e:
        fail(f"not valid JSON: {e}")

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("missing or empty traceEvents array")

    last_ts = {}  # (pid, tid) -> last timestamp seen, in file order
    slices_per_tid = defaultdict(int)
    slice_names_seen = set()
    counter_tracks = set()

    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"event #{i} is not an object")
        ph = ev.get("ph")
        if ph is None:
            fail(f"event #{i} has no ph")
        if ph == "M":
            continue  # metadata carries no timestamp
        for key in ("pid", "tid", "ts", "name"):
            if key not in ev:
                fail(f"event #{i} (ph={ph}) missing {key}")
        track = (ev["pid"], ev["tid"])
        ts = ev["ts"]
        if not isinstance(ts, (int, float)):
            fail(f"event #{i} ts is not numeric")
        prev = last_ts.get(track)
        if prev is not None and ts < prev:
            fail(
                f"event #{i} ({ev['name']!r}) on track {track}: ts {ts} "
                f"goes backwards from {prev}"
            )
        last_ts[track] = ts
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(f"event #{i} ({ev['name']!r}): X slice with bad dur {dur!r}")
            if ev["name"] in SLICE_NAMES:
                slices_per_tid[ev["tid"]] += 1
                slice_names_seen.add(ev["name"])
        elif ph == "C":
            counter_tracks.add(ev["name"])

    workers_with_slices = sum(1 for n in slices_per_tid.values() if n > 0)
    if workers_with_slices < args.min_workers:
        fail(
            f"only {workers_with_slices} worker track(s) carry slices, "
            f"need >= {args.min_workers}"
        )
    if "work" not in slice_names_seen:
        fail("no 'work' slice anywhere in the trace")
    if not slice_names_seen & {"steal", "idle", "drain"}:
        fail("no steal/idle/drain slice: scheduler instrumentation is silent")

    print(
        f"trace_validate: OK: {len(events)} events, "
        f"{workers_with_slices} worker track(s) with slices "
        f"({', '.join(sorted(slice_names_seen))}), "
        f"{len(counter_tracks)} counter track(s)"
    )


if __name__ == "__main__":
    main()
