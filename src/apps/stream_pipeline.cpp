#include "apps/stream_pipeline.hpp"

#include <atomic>

#include "dag/future.hpp"
#include "dag/parallel_for.hpp"

namespace spdag::apps {

namespace {

// splitmix64 finalizer: the per-delivery hash folded into the checksum and
// the stage value transformer. Pure, so the fold is schedule-independent.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

struct stream_ctx {
  std::atomic<std::uint64_t> checksum{0};
  std::atomic<std::uint64_t> deliveries{0};
  std::uint32_t stages;
  std::uint32_t width;
  bool batch;
};

void run_stage(stream_ctx* c, std::uint64_t item, std::uint32_t s,
               std::uint64_t in);

// One delivery: fold the hash, and let consumer 0 carry the item onward.
// run_stage is a dag action, so it must come last.
void consume(stream_ctx* c, std::uint64_t item, std::uint32_t s,
             std::uint32_t j, std::uint64_t v) {
  c->checksum.fetch_add(mix(v ^ (std::uint64_t{j} << 32)),
                        std::memory_order_relaxed);
  c->deliveries.fetch_add(1, std::memory_order_relaxed);
  if (j == 0 && s + 1 < c->stages) run_stage(c, item, s + 1, v);
}

// Unbatched registration: a fork2 tree down to single future_then calls —
// one spawn and one out-set CAS per consumer (the baseline path).
void register_rec(stream_ctx* c, future<std::uint64_t> f, std::uint64_t item,
                  std::uint32_t s, std::uint32_t j_lo, std::uint32_t count) {
  if (count >= 2) {
    fork2(
        [c, f, item, s, j_lo, count] {
          register_rec(c, f, item, s, j_lo, count / 2);
        },
        [c, f, item, s, j_lo, count] {
          register_rec(c, f, item, s, j_lo + count / 2, count - count / 2);
        });
  } else {
    future_then(f, [c, item, s, j_lo](std::uint64_t v) {
      consume(c, item, s, j_lo, v);
    });
  }
}

// One stage: produce the stage value into a fresh future on the left,
// register the `width`-consumer broadcast on the right.
void run_stage(stream_ctx* c, std::uint64_t item, std::uint32_t s,
               std::uint64_t in) {
  future<std::uint64_t> f = future<std::uint64_t>::make();
  const std::uint64_t out = mix(in ^ (s + 1));
  fork2([f, out] { f.complete(out, dag_engine::current_engine()); },
        [c, f, item, s] {
          if (c->batch) {
            future_then_group(f, c->width, [c, item, s](std::uint32_t j) {
              return [c, item, s, j](std::uint64_t v) {
                consume(c, item, s, j, v);
              };
            });
          } else {
            register_rec(c, f, item, s, 0, c->width);
          }
        });
}

}  // namespace

stream_result stream_run(runtime& rt, const stream_config& cfg) {
  if (cfg.items == 0 || cfg.stages == 0 || cfg.width == 0) return {};
  stream_ctx ctx{{}, {}, cfg.stages, cfg.width, cfg.batch};
  stream_ctx* c = &ctx;
  const std::uint64_t items = cfg.items;
  const std::uint64_t seed = cfg.seed;
  rt.run([c, items, seed] {
    // Grain must stay 1: run_stage is a dag action, so every item needs its
    // own vertex.
    auto body = [c, seed](std::size_t i) { run_stage(c, i, 0, mix(seed ^ i)); };
    if (c->batch) {
      parallel_for_blocked(0, items, 1, body);
    } else {
      parallel_for(0, items, 1, body);
    }
  });
  stream_result r;
  r.checksum = ctx.checksum.load(std::memory_order_relaxed);
  r.deliveries = ctx.deliveries.load(std::memory_order_relaxed);
  return r;
}

}  // namespace spdag::apps
