#pragma once
// Structured futures on the sp-dag — the extension direction the paper's
// conclusion names ("more general, but still restricted, models of
// concurrency, such as those based on futures").
//
// A future here is STRUCTURED: its producer runs as an ordinary vertex under
// the enclosing finish, so the series-parallel discipline (and with it the
// in-counter's O(1) contention analysis) is preserved; the only new edge
// kind is producer -> consumer, represented by deferred scheduling rather
// than by a counter increment:
//
//   * fork2_future(p, c)  — parallel composition with a value: the left
//     child computes p() and completes the future, the right child runs
//     c(future) immediately. Must be the last dag action of the body.
//   * future_then(f, fn)  — schedules fn(value) as a new vertex under the
//     current finish; it runs once the future completes (immediately if it
//     already has). Must be the last dag action of the body.
//   * future<T>::ready()/get() — non-blocking inspection; get() requires
//     ready() (a consumer scheduled via future_then always sees it ready).
//
// The completion/registration race is resolved with a claim flag per
// waiter: the registrant re-checks readiness after pushing, and whichever
// side wins the exchange schedules the waiter exactly once.

#include <atomic>
#include <cassert>
#include <memory>
#include <utility>

#include "dag/engine.hpp"
#include "util/treiber_stack.hpp"

namespace spdag {

namespace detail {

struct future_waiter {
  vertex* consumer = nullptr;
  dag_engine* engine = nullptr;
  std::atomic<bool> claimed{false};
  std::atomic<future_waiter*> pool_next{nullptr};
};

template <typename T>
class future_state {
 public:
  ~future_state() {
    // Normally drained at completion; clean up registrations left behind by
    // programs that abandoned the future (its producer must still have run,
    // or the enclosing finish could never have fired).
    while (future_waiter* w = waiters_.pop()) delete w;
  }

  bool ready() const noexcept {
    return ready_.load(std::memory_order_acquire);
  }

  const T& value() const noexcept {
    assert(ready() && "future read before completion");
    return *reinterpret_cast<const T*>(&storage_);
  }

  void complete(T v, dag_engine* engine) {
    assert(!ready() && "future completed twice");
    ::new (&storage_) T(std::move(v));
    ready_.store(true, std::memory_order_release);
    drain(engine);
  }

  // Registers `consumer` to be enqueued on completion. If the future
  // completed concurrently (or earlier), schedules it here instead.
  void register_waiter(vertex* consumer, dag_engine* engine) {
    if (ready()) {
      engine->add(consumer);
      return;
    }
    auto* w = new future_waiter{};
    w->consumer = consumer;
    w->engine = engine;
    waiters_.push(w);
    // Re-check: the producer may have drained between our check and push.
    if (ready() && !w->claimed.exchange(true, std::memory_order_acq_rel)) {
      engine->add(consumer);
      // The node stays on the stack; the producer's drain (or the
      // destructor) frees it after losing the claim.
    }
  }

 private:
  void drain(dag_engine* completion_engine) {
    while (future_waiter* w = waiters_.pop()) {
      if (!w->claimed.exchange(true, std::memory_order_acq_rel)) {
        dag_engine* eng = w->engine != nullptr ? w->engine : completion_engine;
        eng->add(w->consumer);
      }
      delete w;
    }
  }

  std::atomic<bool> ready_{false};
  alignas(T) unsigned char storage_[sizeof(T)];
  treiber_stack<future_waiter> waiters_;
};

}  // namespace detail

template <typename T>
class future {
 public:
  future() = default;

  bool valid() const noexcept { return state_ != nullptr; }
  bool ready() const noexcept { return state_ != nullptr && state_->ready(); }

  // The produced value; requires ready().
  const T& get() const noexcept {
    assert(valid());
    return state_->value();
  }

  static future make() {
    future f;
    f.state_ = std::make_shared<detail::future_state<T>>();
    return f;
  }

  void complete(T v, dag_engine* engine) const {
    state_->complete(std::move(v), engine);
  }
  void register_waiter(vertex* consumer, dag_engine* engine) const {
    state_->register_waiter(consumer, engine);
  }

 private:
  std::shared_ptr<detail::future_state<T>> state_;
};

// Parallel composition with a value. Left child: computes producer() and
// completes the future. Right child: runs consumer(future) immediately
// (typically registering continuations with future_then). Must be the last
// dag action of the current body.
template <typename T, typename Producer, typename Consumer>
void fork2_future(Producer producer, Consumer consumer) {
  future<T> fut = future<T>::make();
  fork2(
      [producer = std::move(producer), fut]() mutable {
        fut.complete(producer(), dag_engine::current_engine());
      },
      [consumer = std::move(consumer), fut]() mutable { consumer(fut); });
}

// Schedules fn(value) as a fresh vertex under the current finish, gated on
// the future's completion. Must be the last dag action of the current body.
template <typename T, typename F>
void future_then(future<T> fut, F fn) {
  dag_engine* eng = dag_engine::current_engine();
  vertex* u = dag_engine::current_vertex();
  auto [consumer, filler] = eng->spawn(u);
  consumer->body = [fut, fn = std::move(fn)]() mutable { fn(fut.get()); };
  // The spawn's second vertex has no work; it just resolves its obligation.
  eng->add(filler);
  fut.register_waiter(consumer, eng);
}

}  // namespace spdag
