// Property-based tests: randomized *valid* in-counter executions (Definition
// 1 in the paper: every decrement token comes from a prior increment and is
// used exactly once) checked against an exact oracle count, across grow
// thresholds and reclamation settings, single- and multi-threaded.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <tuple>
#include <vector>

#include "incounter/incounter.hpp"
#include "util/rng.hpp"

namespace spdag {
namespace {

struct live_obligation {
  token inc;
  token dec;
  bool left;
};

using Param = std::tuple<std::uint64_t /*threshold*/, bool /*reclaim*/>;

class IncounterRandomized : public ::testing::TestWithParam<Param> {
 protected:
  incounter_config cfg() const {
    auto [threshold, reclaim] = GetParam();
    return incounter_config{threshold, reclaim, nullptr};
  }
};

// Single-threaded random walk: after every step the indicator must agree
// exactly with the oracle count (no concurrency, so is_zero is exact).
TEST_P(IncounterRandomized, IndicatorTracksOracleSingleThreaded) {
  xoshiro256 rng(12345);
  for (int round = 0; round < 20; ++round) {
    incounter ic(1, cfg());
    std::vector<live_obligation> live{{ic.root_token(), ic.root_token(), true}};
    std::int64_t oracle = 1;
    for (int step = 0; step < 2000 && !live.empty(); ++step) {
      const std::size_t i = static_cast<std::size_t>(rng.below(live.size()));
      const bool do_spawn = live.size() < 64 && rng.flip(1, 2);
      if (do_spawn) {
        const arrive_result r = ic.arrive(live[i].inc, live[i].left);
        const token inherited = live[i].dec;
        live[i] = {r.inc_left, inherited, true};
        live.push_back({r.inc_right, r.dec, false});
        ++oracle;
      } else {
        const bool zero = ic.depart(live[i].dec);
        live[i] = live.back();
        live.pop_back();
        --oracle;
        EXPECT_EQ(zero, oracle == 0) << "round " << round << " step " << step;
      }
      EXPECT_EQ(ic.is_zero(), oracle == 0);
      ASSERT_EQ(oracle, static_cast<std::int64_t>(live.size()));
    }
    // Drain whatever is left.
    while (!live.empty()) {
      const bool zero = ic.depart(live.back().dec);
      live.pop_back();
      --oracle;
      EXPECT_EQ(zero, oracle == 0);
    }
    EXPECT_TRUE(ic.is_zero());
  }
}

// Multi-threaded: each thread random-walks its own disjoint sub-frontier
// (the sp-dag discipline guarantees handle disjointness; we reproduce it by
// seeding each thread from a separate spawn). A shared oracle checks that no
// depart reports zero while obligations remain, and that the final depart
// does report zero.
TEST_P(IncounterRandomized, NoSpuriousZeroUnderConcurrency) {
  constexpr int kThreads = 4;
  constexpr int kSteps = 3000;
  for (int round = 0; round < 5; ++round) {
    incounter ic(1, cfg());
    std::atomic<std::int64_t> oracle{1};
    std::atomic<int> zero_reports{0};

    // Seed one disjoint obligation per thread.
    std::vector<live_obligation> seeds;
    token inc = ic.root_token();
    for (int t = 0; t < kThreads; ++t) {
      const arrive_result r = ic.arrive(inc, true);
      oracle.fetch_add(1);
      seeds.push_back({r.inc_right, r.dec, false});
      inc = r.inc_left;
    }

    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&ic, &oracle, &zero_reports, seed = seeds[static_cast<size_t>(t)], t] {
        xoshiro256 rng(static_cast<std::uint64_t>(t) * 7919 + 17);
        std::vector<live_obligation> live{seed};
        for (int step = 0; step < kSteps && !live.empty(); ++step) {
          const std::size_t i = static_cast<std::size_t>(rng.below(live.size()));
          if (live.size() < 32 && rng.flip(1, 2)) {
            const arrive_result r = ic.arrive(live[i].inc, live[i].left);
            oracle.fetch_add(1);
            const token inherited = live[i].dec;
            live[i] = {r.inc_left, inherited, true};
            live.push_back({r.inc_right, r.dec, false});
          } else {
            // Oracle decremented BEFORE the depart: if the depart claims the
            // counter reached zero, the pre-decrement value must have been 1
            // ... but other threads still hold obligations, and the root
            // obligation is resolved last by the main thread, so zero here
            // is always spurious.
            oracle.fetch_sub(1);
            if (ic.depart(live[i].dec)) zero_reports.fetch_add(1);
            live[i] = live.back();
            live.pop_back();
          }
        }
        for (const live_obligation& o : live) {
          oracle.fetch_sub(1);
          if (ic.depart(o.dec)) zero_reports.fetch_add(1);
        }
      });
    }
    for (auto& th : threads) th.join();

    EXPECT_EQ(zero_reports.load(), 0)
        << "a depart reported zero while the root obligation was pending";
    EXPECT_EQ(oracle.load(), 1);
    EXPECT_FALSE(ic.is_zero());
    EXPECT_TRUE(ic.depart(ic.root_token()));
    EXPECT_TRUE(ic.is_zero());
  }
}

// Single-threaded walk with batched increments mixed in: add(k) must move
// the indicator exactly like k arrives. The k spawned obligations share one
// dec token and the two returned inc handles (the spawn_batch shape), and
// the walk keeps arriving from those shared handles.
TEST_P(IncounterRandomized, IndicatorTracksOracleWithBatchedAdds) {
  xoshiro256 rng(777);
  for (int round = 0; round < 20; ++round) {
    incounter ic(1, cfg());
    std::vector<live_obligation> live{{ic.root_token(), ic.root_token(), true}};
    std::int64_t oracle = 1;
    for (int step = 0; step < 1500 && !live.empty(); ++step) {
      const std::size_t i = static_cast<std::size_t>(rng.below(live.size()));
      if (live.size() < 48 && rng.flip(1, 2)) {
        if (rng.flip(1, 2)) {
          // Batched spawn: k units on one placement, shared handles.
          const std::uint32_t k = 2 + static_cast<std::uint32_t>(rng.below(7));
          const arrive_result r = ic.add(live[i].inc, live[i].left, k);
          const token inherited = live[i].dec;
          live[i] = {r.inc_left, inherited, true};
          for (std::uint32_t j = 0; j < k; ++j) {
            const bool left = (j % 2) == 0;
            live.push_back({left ? r.inc_left : r.inc_right, r.dec, left});
          }
          oracle += k;
        } else {
          const arrive_result r = ic.arrive(live[i].inc, live[i].left);
          const token inherited = live[i].dec;
          live[i] = {r.inc_left, inherited, true};
          live.push_back({r.inc_right, r.dec, false});
          ++oracle;
        }
      } else {
        const bool zero = ic.depart(live[i].dec);
        live[i] = live.back();
        live.pop_back();
        --oracle;
        EXPECT_EQ(zero, oracle == 0) << "round " << round << " step " << step;
      }
      EXPECT_EQ(ic.is_zero(), oracle == 0);
      ASSERT_EQ(oracle, static_cast<std::int64_t>(live.size()));
    }
    while (!live.empty()) {
      const bool zero = ic.depart(live.back().dec);
      live.pop_back();
      --oracle;
      EXPECT_EQ(zero, oracle == 0);
    }
    EXPECT_TRUE(ic.is_zero());
  }
}

// Concurrent walk mixing add(k) into each thread's private sub-frontier: no
// depart may report zero while the root obligation is pending, batched or
// not.
TEST_P(IncounterRandomized, NoSpuriousZeroWithBatchedAddsConcurrent) {
  constexpr int kThreads = 4;
  constexpr int kSteps = 2000;
  for (int round = 0; round < 5; ++round) {
    incounter ic(1, cfg());
    std::atomic<std::int64_t> oracle{1};
    std::atomic<int> zero_reports{0};

    std::vector<live_obligation> seeds;
    token inc = ic.root_token();
    for (int t = 0; t < kThreads; ++t) {
      const arrive_result r = ic.arrive(inc, true);
      oracle.fetch_add(1);
      seeds.push_back({r.inc_right, r.dec, false});
      inc = r.inc_left;
    }

    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&ic, &oracle, &zero_reports,
                            seed = seeds[static_cast<size_t>(t)], t] {
        xoshiro256 rng(static_cast<std::uint64_t>(t) * 6271 + 5);
        std::vector<live_obligation> live{seed};
        for (int step = 0; step < kSteps && !live.empty(); ++step) {
          const std::size_t i = static_cast<std::size_t>(rng.below(live.size()));
          if (live.size() < 24 && rng.flip(1, 2)) {
            const std::uint32_t k =
                rng.flip(1, 2) ? 1 : 2 + static_cast<std::uint32_t>(rng.below(7));
            const arrive_result r = ic.add(live[i].inc, live[i].left, k);
            oracle.fetch_add(k);
            const token inherited = live[i].dec;
            live[i] = {r.inc_left, inherited, true};
            for (std::uint32_t j = 0; j < k; ++j) {
              const bool left = (j % 2) == 0;
              live.push_back({left ? r.inc_left : r.inc_right, r.dec, left});
            }
          } else {
            oracle.fetch_sub(1);
            if (ic.depart(live[i].dec)) zero_reports.fetch_add(1);
            live[i] = live.back();
            live.pop_back();
          }
        }
        for (const live_obligation& o : live) {
          oracle.fetch_sub(1);
          if (ic.depart(o.dec)) zero_reports.fetch_add(1);
        }
      });
    }
    for (auto& th : threads) th.join();

    EXPECT_EQ(zero_reports.load(), 0)
        << "a depart reported zero while the root obligation was pending";
    EXPECT_EQ(oracle.load(), 1);
    EXPECT_FALSE(ic.is_zero());
    EXPECT_TRUE(ic.depart(ic.root_token()));
    EXPECT_TRUE(ic.is_zero());
  }
}

// Reclamation (threshold 1 + reclaim) is deliberately absent here: these
// random walks produce executions that are valid per Definition 1 but do NOT
// follow the sp-dag's ordered claim discipline, and reclamation's safety
// (Lemma 4.6 / appendix B) depends on that discipline. The disciplined
// executions in incounter_test.cpp and the full-runtime integration tests
// cover the reclaiming configuration.
INSTANTIATE_TEST_SUITE_P(
    GrowthSettings, IncounterRandomized,
    ::testing::Values(std::make_tuple(std::uint64_t{0}, false),  // never grow
                      std::make_tuple(std::uint64_t{1}, false),  // always grow
                      std::make_tuple(std::uint64_t{2}, false),  // coin-flip
                      std::make_tuple(std::uint64_t{16}, false), // sparse
                      std::make_tuple(std::uint64_t{1000}, false)),
    [](const ::testing::TestParamInfo<Param>& info) {
      // Appends, not one operator+ chain: gcc 12 -O3 -Wrestrict false
      // positive (GCC PR 105651) fires on the chained form under -Werror.
      std::string name = "t";
      name += std::to_string(std::get<0>(info.param));
      if (std::get<1>(info.param)) name += "_reclaim";
      return name;
    });

}  // namespace
}  // namespace spdag
