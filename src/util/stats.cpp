#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace spdag {

void run_stats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double run_stats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double run_stats::stddev() const noexcept { return std::sqrt(variance()); }

double run_stats::rsd() const noexcept {
  return mean() == 0.0 ? 0.0 : stddev() / mean();
}

result_table::result_table(std::vector<std::string> columns)
    : columns_(std::move(columns)) {}

void result_table::add_row(std::vector<std::string> cells) {
  if (cells.size() != columns_.size()) {
    throw std::invalid_argument("result_table row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string result_table::num(double v, int precision) {
  std::ostringstream os;
  if (std::abs(v) >= 1e6) {
    os << std::scientific << std::setprecision(precision) << v;
  } else {
    os << std::fixed << std::setprecision(precision) << v;
  }
  return os.str();
}

void result_table::print(std::ostream& os) const {
  std::vector<std::size_t> width(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) width[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());
  }
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << cells[c];
    }
    os << '\n';
  };
  line(columns_);
  std::string rule;
  for (std::size_t c = 0; c < columns_.size(); ++c)
    rule += std::string(width[c], '-') + "  ";
  os << rule << '\n';
  for (const auto& row : rows_) line(row);
}

void result_table::print_csv(std::ostream& os) const {
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  line(columns_);
  for (const auto& row : rows_) line(row);
}

}  // namespace spdag
