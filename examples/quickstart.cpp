// Quickstart: the three layers of the library in one file.
//
//   1. dynamic SNZI tree used directly as a non-zero indicator,
//   2. an in-counter tracking dependencies by hand,
//   3. the full sp-dag runtime running a nested-parallel computation.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "incounter/incounter.hpp"
#include "harness/workloads.hpp"
#include "sched/runtime.hpp"
#include "snzi/tree.hpp"

int main() {
  using namespace spdag;

  // --- 1. Dynamic SNZI as a relaxed counter ------------------------------
  // query() tells you whether the count is non-zero; it never tells you the
  // exact value — that relaxation is what makes O(1) contention possible.
  snzi::snzi_tree tree;
  tree.arrive();
  tree.arrive();
  std::printf("snzi after 2 arrives: nonzero=%d\n", tree.query());
  tree.depart();
  const bool zeroed = tree.depart();  // depart reports the 1 -> 0 transition
  std::printf("snzi after 2 departs: nonzero=%d (last depart zeroed=%d)\n",
              tree.query(), zeroed);

  // Grow the tree to spread future operations across disjoint cache lines.
  auto [left, right] = tree.base()->grow(/*threshold=*/1);
  left->arrive();
  right->arrive();
  std::printf("snzi with surplus in both children: nonzero=%d\n", tree.query());
  left->depart();
  right->depart();
  std::printf("drained: nonzero=%d, nodes=%zu\n", tree.query(), tree.node_count());

  // --- 2. The in-counter --------------------------------------------------
  // Handles returned by arrive() tell the two vertices a spawn creates where
  // to place their own future increments and decrements.
  incounter ic(/*initial=*/1);
  const token root_handle = ic.root_token();
  arrive_result h = ic.arrive(root_handle, /*from_left=*/true);
  std::printf("in-counter after increment: zero=%d\n", ic.is_zero());
  ic.depart(h.dec);            // the spawned child finishes
  const bool done = ic.depart(root_handle);  // the initial obligation resolves
  std::printf("in-counter drained: zero=%d (last depart zeroed=%d)\n",
              ic.is_zero(), done);

  // --- 3. The sp-dag runtime ----------------------------------------------
  // fork2 = parallel composition, finish_then = serial composition; the
  // runtime's dependency counters are in-counters by default.
  runtime rt(runtime_config{/*workers=*/2, /*counter=*/"dyn"});
  const std::uint64_t f25 = harness::fib(rt, 25);
  std::printf("parallel fib(25) = %llu (expected 75025)\n",
              static_cast<unsigned long long>(f25));

  harness::fanin(rt, /*n=*/1 << 14);
  std::printf("fanin(16384) completed; executions so far: %llu\n",
              static_cast<unsigned long long>(
                  rt.engine().stats().executions.load()));
  return 0;
}
