// Artifact-style driver: run one workload/algorithm configuration and print
// a results block in the spirit of the paper artifact's output format
// (appendix D.5), including the in-counter node count that the artifact
// reports as nb_incounter_nodes.
//
// Usage examples:
//   counters_demo -bench fanin -algo dyn -threshold 100 -n 1000000 -proc 4
//   counters_demo -bench indegree2 -algo snzi:4 -n 100000
//   counters_demo -bench fanin -algo faa -n 1000000 -runs 5

#include <cstdio>
#include <string>

#include "harness/workloads.hpp"
#include "sched/runtime.hpp"
#include "snzi/stats.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"
#include "util/topology.hpp"

int main(int argc, char** argv) {
  using namespace spdag;
  options opts(argc, argv);
  const std::string bench = opts.get_string("bench", "fanin");
  std::string algo = opts.get_string("algo", "dyn");
  const std::uint64_t n = static_cast<std::uint64_t>(opts.get_int("n", 1 << 20));
  const std::size_t procs = static_cast<std::size_t>(
      opts.get_int("proc", static_cast<std::int64_t>(hardware_core_count())));
  const int runs = static_cast<int>(opts.get_int("runs", 1));
  const std::uint64_t work_ns =
      static_cast<std::uint64_t>(opts.get_int("work-ns", 0));
  if (opts.has("threshold") && algo == "dyn") {
    algo = "dyn:" + std::to_string(opts.get_int("threshold", 100));
  }

  snzi::tree_stats stats;
  runtime rt(runtime_config{procs, algo, false, &stats});

  run_stats times;
  for (int r = 0; r < runs; ++r) {
    wall_timer t;
    if (bench == "fanin") {
      harness::fanin(rt, n, work_ns);
    } else if (bench == "indegree2") {
      harness::indegree2(rt, n, work_ns);
    } else if (bench == "fib") {
      harness::fib(rt, static_cast<unsigned>(n));
    } else {
      std::fprintf(stderr, "unknown bench '%s'\n", bench.c_str());
      return 1;
    }
    times.add(t.elapsed_s());
  }

  const auto& est = rt.engine().stats();
  const scheduler_totals sched = rt.sched().totals();
  // Net SNZI nodes currently allocated across all pooled in-counters:
  // fresh pair allocations minus recycled pairs, two nodes per pair,
  // plus one base node per counter created.
  const std::uint64_t live_pairs =
      stats.grow_allocs.load() > stats.pair_recycles.load()
          ? stats.grow_allocs.load() - stats.pair_recycles.load()
          : 0;

  std::printf("==========\n");
  std::printf("prog counters_demo\n");
  std::printf("bench %s\n", bench.c_str());
  std::printf("algo %s\n", rt.factory().name().c_str());
  std::printf("proc %zu\n", procs);
  std::printf("n %llu\n", static_cast<unsigned long long>(n));
  std::printf("work_ns %llu\n", static_cast<unsigned long long>(work_ns));
  std::printf("---\n");
  std::printf("runs %d\n", runs);
  std::printf("exectime %.4f\n", times.mean());
  std::printf("exectime_stddev %.4f\n", times.stddev());
  std::printf("ops_per_sec_per_core %.0f\n",
              static_cast<double>(harness::counter_ops(n)) / times.mean() /
                  static_cast<double>(procs));
  std::printf("nb_steals %llu\n", static_cast<unsigned long long>(sched.steals));
  std::printf("nb_vertices %llu\n",
              static_cast<unsigned long long>(est.vertices_created.load()));
  std::printf("nb_counters_created %llu\n",
              static_cast<unsigned long long>(rt.factory().created()));
  std::printf("nb_incounter_pairs_live %llu\n",
              static_cast<unsigned long long>(live_pairs));
  std::printf("nb_snzi_arrives %llu\n",
              static_cast<unsigned long long>(stats.arrives.load() +
                                              stats.root_arrives.load()));
  std::printf("nb_cas_failures %llu\n",
              static_cast<unsigned long long>(stats.cas_failures.load()));
  std::printf("==========\n");
  return 0;
}
