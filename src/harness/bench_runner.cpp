#include "harness/bench_runner.hpp"

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <iostream>
#include <mutex>
#include <stdexcept>

#include "harness/workloads.hpp"
#include "sched/runtime.hpp"
#include "util/timer.hpp"
#include "util/topology.hpp"

namespace spdag::harness {

bench_result run_config(const bench_config& cfg) {
  runtime_config rt_cfg{cfg.workers, cfg.algo, /*pin_threads=*/false,
                        /*snzi_stats=*/nullptr};
  rt_cfg.alloc = cfg.alloc;
  runtime rt(rt_cfg);
  auto once = [&] {
    if (cfg.workload == "fanin") {
      fanin(rt, cfg.n, cfg.work_ns, cfg.batch);
    } else if (cfg.workload == "indegree2") {
      indegree2(rt, cfg.n, cfg.work_ns);
    } else if (cfg.workload == "fib") {
      fib(rt, static_cast<unsigned>(cfg.n));
    } else if (cfg.workload == "churn") {
      future_churn(rt, cfg.n, cfg.work_ns);
    } else {
      throw std::invalid_argument("unknown workload: " + cfg.workload);
    }
  };

  // One untimed warm-up populates the object pools and the page cache so the
  // measured runs see steady state (the paper's artifact averages 30 runs
  // for the same reason).
  once();
  const std::uint64_t warm_growths = rt.pools().totals().slab_growths;
  // Scope the utilization summary to the measured window (reset is safe
  // under the runtime's idle-parked workers; see obs/trace.hpp).
  obs::tracer::instance().reset();

  run_stats stats;
  for (int r = 0; r < cfg.repetitions; ++r) {
    wall_timer t;
    once();
    stats.add(t.elapsed_s());
  }

  bench_result res;
  res.cfg = cfg;
  res.mean_s = stats.mean();
  res.min_s = stats.min();
  res.max_s = stats.max();
  res.rsd = stats.rsd();
  const double ops = static_cast<double>(
      cfg.workload == "churn" ? churn_futures(cfg.n) : counter_ops(cfg.n));
  res.ops_per_s = res.mean_s > 0 ? ops / res.mean_s : 0;
  res.ops_per_s_per_core = res.ops_per_s / static_cast<double>(cfg.workers);
  res.pools = rt.pools().rows();
  res.measured_slab_growths =
      rt.pools().totals().slab_growths - warm_growths;
  res.outsets = rt.outsets().totals();
  res.sched = rt.sched().totals();

  // Benches built on run_config get telemetry for free: one JSON record per
  // configuration when a -json sink is open.
  if (json_enabled()) {
    json_record rec;
    // Appends, not one operator+ chain (gcc 12 -Wrestrict, PR 105651).
    rec.name = cfg.workload;
    rec.name += "/";
    rec.name += cfg.algo;
    rec.name += "/alloc:";
    rec.name += cfg.alloc;
    rec.name += "/proc:";
    rec.name += std::to_string(cfg.workers);
    if (cfg.batch) rec.name += "/batch";
    rec.spec = cfg.algo;
    rec.proc = cfg.workers;
    rec.runs = cfg.repetitions;
    rec.ops_per_s = res.ops_per_s;
    rec.wall_s = res.mean_s;
    rec.pools = res.pools;
    rec.pool_totals = rt.pools().totals();
    rec.outsets = res.outsets;
    rec.sched_totals = res.sched;
    rec.extra.emplace_back("ops_per_s_per_core", res.ops_per_s_per_core);
    rec.extra.emplace_back("rsd", res.rsd);
    rec.extra.emplace_back("measured_slab_growths",
                           static_cast<double>(res.measured_slab_growths));
    // Amortization ledger over the whole config (warm-up included; the
    // ratio is scale-free): == 1.0 on unbatched runs, < 1.0 whenever
    // spawn_batch covered several edges with one increment.
    const engine_stats& es = rt.engine().stats();
    const double edges =
        static_cast<double>(es.edges.load(std::memory_order_relaxed));
    const double cops = static_cast<double>(
        es.counter_incs.load(std::memory_order_relaxed) +
        es.counter_decs.load(std::memory_order_relaxed));
    rec.extra.emplace_back("edges", edges);
    rec.extra.emplace_back("counter_ops", cops);
    rec.extra.emplace_back("counter_ops_per_edge",
                           edges > 0 ? cops / (2.0 * edges) : 0.0);
    rec.extra.emplace_back("batch", cfg.batch ? 1.0 : 0.0);
    json_add(std::move(rec));
  }
  return res;
}

void print_pool_stats(std::ostream& os,
                      const std::vector<pool_registry_row>& rows) {
  for (const auto& row : rows) {
    os << "# pool " << row.name << ": allocs=" << row.stats.allocs
       << " recycles=" << row.stats.recycles
       << " slab_growths=" << row.stats.slab_growths
       << " remote_frees=" << row.stats.remote_frees
       << " live=" << row.stats.live()
       << " retained=" << row.stats.retained();
    if (row.stats.mag_cap_hi != 0) {
      os << " mag_cap=" << row.stats.mag_cap_lo << ".."
         << row.stats.mag_cap_hi << " grows=" << row.stats.mag_grows
         << " shrinks=" << row.stats.mag_shrinks;
    }
    if (row.stats.trims != 0) {
      os << " trims=" << row.stats.trims
         << " slabs_released=" << row.stats.slabs_released;
    }
    if (row.stats.slabs_retired != 0) {
      os << " slabs_retired=" << row.stats.slabs_retired
         << " slabs_reclaimed=" << row.stats.slabs_reclaimed
         << " limbo_cells=" << row.stats.limbo_cells;
    }
    if (row.stats.eliminations != 0 || row.stats.elim_timeouts != 0) {
      os << " eliminations=" << row.stats.eliminations
         << " elim_timeouts=" << row.stats.elim_timeouts;
    }
    os << "\n";
  }
}

void print_broadcast_stats(std::ostream& os, const outset_totals& outsets,
                           const scheduler_totals& sched) {
  os << "# outset: adds=" << outsets.adds
     << " delivered=" << outsets.delivered
     << " retries=" << outsets.add_cas_retries
     << " rejected=" << outsets.rejected_adds
     << " subtrees_offloaded=" << outsets.subtrees_offloaded
     << " group_adds=" << outsets.group_adds
     << " combined_ops=" << outsets.combined_ops
     << " combiner_passes=" << outsets.combiner_passes
     << " fallthroughs=" << outsets.fallthroughs
     << " drains_executed=" << sched.drains_executed
     << " drains_stolen=" << sched.drains_stolen
     << " drains_handed_off=" << sched.drains_handed_off << "\n";
}

std::vector<std::size_t> worker_sweep(std::size_t max_workers, std::size_t points) {
  std::vector<std::size_t> out;
  if (max_workers == 0) max_workers = 1;
  if (max_workers <= points) {
    for (std::size_t w = 1; w <= max_workers; ++w) out.push_back(w);
    return out;
  }
  // 1 plus (points-1) evenly spaced values ending at max_workers.
  out.push_back(1);
  for (std::size_t i = 1; i < points; ++i) {
    const std::size_t w = 1 + i * (max_workers - 1) / (points - 1);
    if (w != out.back()) out.push_back(w);
  }
  return out;
}

common_options read_common(const options& opts, std::uint64_t default_n) {
  common_options c;
  c.n = static_cast<std::uint64_t>(
      opts.get_int("n", static_cast<std::int64_t>(default_n)));
  c.max_proc = static_cast<std::size_t>(opts.get_int(
      "proc", static_cast<std::int64_t>(hardware_core_count())));
  c.runs = static_cast<int>(opts.get_int("runs", 3));
  c.csv = opts.get_bool("csv", false);
  return c;
}

void emit(result_table& table, bool csv) {
  table.print(std::cout);
  if (csv) {
    std::cout << "\n-- csv --\n";
    table.print_csv(std::cout);
  }
  std::cout.flush();
}

// --- JSON telemetry sink ----------------------------------------------------

namespace {

struct json_sink {
  std::mutex mu;
  std::string path;
  std::string bench;
  std::string trace_path;  // -tracefile: Perfetto export target at exit
  std::vector<json_record> records;
  bool enabled = false;
};

json_sink& sink() {
  static json_sink s;
  return s;
}

// Build-stamped by CMake (git rev-parse at configure time); a CI checkout
// env var wins because detached/shallow checkouts can defeat the stamp.
std::string git_sha() {
  if (const char* env = std::getenv("GITHUB_SHA"); env != nullptr && *env) {
    return env;
  }
#ifdef SPDAG_GIT_SHA
  return SPDAG_GIT_SHA;
#else
  return "unknown";
#endif
}

void escape_to(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void emit_pool_stats(std::ostream& os, const pool_stats& s) {
  os << "{\"allocs\":" << s.allocs << ",\"frees\":" << s.frees
     << ",\"recycles\":" << s.recycles << ",\"remote_frees\":" << s.remote_frees
     << ",\"carved\":" << s.carved << ",\"slab_growths\":" << s.slab_growths
     << ",\"magazine_refills\":" << s.magazine_refills
     << ",\"magazine_flushes\":" << s.magazine_flushes
     << ",\"trims\":" << s.trims << ",\"slabs_released\":" << s.slabs_released
     << ",\"cells_released\":" << s.cells_released
     << ",\"slabs_retired\":" << s.slabs_retired
     << ",\"slabs_reclaimed\":" << s.slabs_reclaimed
     << ",\"limbo_cells\":" << s.limbo_cells
     << ",\"eliminations\":" << s.eliminations
     << ",\"elim_timeouts\":" << s.elim_timeouts
     << ",\"mag_grows\":" << s.mag_grows << ",\"mag_shrinks\":" << s.mag_shrinks
     << ",\"magazine_cells\":" << s.magazine_cells
     << ",\"recycle_cells\":" << s.recycle_cells
     << ",\"mag_cap_lo\":" << s.mag_cap_lo << ",\"mag_cap_hi\":" << s.mag_cap_hi
     << ",\"live\":" << s.live() << ",\"retained\":" << s.retained() << "}";
}

void emit_record(std::ostream& os, const json_record& r) {
  os << "{\"name\":";
  escape_to(os, r.name);
  os << ",\"spec\":";
  escape_to(os, r.spec);
  os << ",\"sched\":";
  escape_to(os, r.sched);
  os << ",\"proc\":" << r.proc << ",\"runs\":" << r.runs
     << ",\"ops_per_s\":" << r.ops_per_s << ",\"lat_ms\":" << r.lat_ms
     << ",\"lat_p50_ms\":" << r.lat_p50_ms
     << ",\"lat_p95_ms\":" << r.lat_p95_ms
     << ",\"lat_p99_ms\":" << r.lat_p99_ms
     << ",\"wall_s\":" << r.wall_s;
  os << ",\"trace\":{\"mode\":\""
     << obs::trace_summary::mode_name(r.trace.mode)
     << "\",\"workers\":" << r.trace.workers
     << ",\"events\":" << r.trace.events
     << ",\"dropped\":" << r.trace.dropped
     << ",\"work_frac\":" << r.trace.work_frac
     << ",\"steal_frac\":" << r.trace.steal_frac
     << ",\"idle_frac\":" << r.trace.idle_frac
     << ",\"drain_frac\":" << r.trace.drain_frac
     << ",\"steal_attempts\":" << r.trace.steal_attempts
     << ",\"steal_successes\":" << r.trace.steal_successes
     << ",\"drains\":" << r.trace.drains
     << ",\"drain_handoffs\":" << r.trace.drain_handoffs
     << ",\"finalizes\":" << r.trace.finalizes
     << ",\"submits\":" << r.trace.submits
     << ",\"admits\":" << r.trace.admits
     << ",\"rejects\":" << r.trace.rejects
     << ",\"submit_completes\":" << r.trace.submit_completes << "}";
  os << ",\"pool_totals\":";
  emit_pool_stats(os, r.pool_totals);
  os << ",\"pools\":[";
  for (std::size_t i = 0; i < r.pools.size(); ++i) {
    if (i > 0) os << ",";
    os << "{\"name\":";
    escape_to(os, r.pools[i].name);
    os << ",\"object_bytes\":" << r.pools[i].object_bytes << ",\"stats\":";
    emit_pool_stats(os, r.pools[i].stats);
    os << "}";
  }
  os << "]";
  os << ",\"outset_totals\":{\"adds\":" << r.outsets.adds
     << ",\"add_cas_retries\":" << r.outsets.add_cas_retries
     << ",\"rejected_adds\":" << r.outsets.rejected_adds
     << ",\"delivered\":" << r.outsets.delivered
     << ",\"subtrees_offloaded\":" << r.outsets.subtrees_offloaded
     << ",\"group_adds\":" << r.outsets.group_adds
     << ",\"combined_ops\":" << r.outsets.combined_ops
     << ",\"combiner_passes\":" << r.outsets.combiner_passes
     << ",\"fallthroughs\":" << r.outsets.fallthroughs << "}";
  os << ",\"scheduler_totals\":{\"executions\":" << r.sched_totals.executions
     << ",\"steals\":" << r.sched_totals.steals
     << ",\"failed_steal_sweeps\":" << r.sched_totals.failed_steal_sweeps
     << ",\"parks\":" << r.sched_totals.parks
     << ",\"drains_executed\":" << r.sched_totals.drains_executed
     << ",\"drains_stolen\":" << r.sched_totals.drains_stolen
     << ",\"drains_handed_off\":" << r.sched_totals.drains_handed_off << "}";
  os << ",\"extra\":{";
  for (std::size_t i = 0; i < r.extra.size(); ++i) {
    if (i > 0) os << ",";
    escape_to(os, r.extra[i].first);
    os << ":" << r.extra[i].second;
  }
  os << "}}";
}

}  // namespace

void json_open(const options& opts, std::string bench_name) {
  json_sink& s = sink();
  {
    std::lock_guard<std::mutex> lock(s.mu);
    s.path = opts.get_string("json", "");
    s.bench = std::move(bench_name);
    s.trace_path = opts.get_string("tracefile", "");
    s.enabled = !s.path.empty();
    s.records.clear();
  }
  // Tracing spec: applied here, before any runtime exists (the tracer's
  // quiescent-only configure), so every sweep in the main inherits it.
  const std::string spec = opts.get_string("trace", "");
  if (!spec.empty()) {
    try {
      obs::tracer::instance().configure(spec);
    } catch (const std::invalid_argument& e) {
      std::cerr << "-trace: " << e.what() << "\n";
      std::exit(2);
    }
  }
}

bool json_enabled() {
  json_sink& s = sink();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.enabled;
}

void json_add(json_record rec) {
  json_sink& s = sink();
  std::lock_guard<std::mutex> lock(s.mu);
  if (!s.enabled) return;
  // Auto-embed the utilization summary unless the bench already filled it.
  if (obs::tracer::instance().mode() != obs::trace_mode::off &&
      rec.trace.mode == obs::trace_mode::off) {
    rec.trace = obs::tracer::instance().summary();
  }
  s.records.push_back(std::move(rec));
}

void json_add_rate(const std::string& name, const std::string& spec,
                   std::size_t proc, int runs, double ops, double wall_sum_s,
                   double iters) {
  if (!json_enabled()) return;
  json_record rec;
  rec.name = name;
  rec.spec = spec;
  rec.proc = proc;
  rec.runs = runs;
  rec.wall_s = iters > 0 ? wall_sum_s / iters : 0.0;
  rec.ops_per_s = rec.wall_s > 0 ? ops / rec.wall_s : 0.0;
  json_add(std::move(rec));
}

int json_write() {
  json_sink& s = sink();
  std::lock_guard<std::mutex> lock(s.mu);
  // Trace epilogue first, independent of the JSON sink: the utilization
  // line and the Perfetto export are useful on a bare `-trace full` run.
  int rc = 0;
  obs::tracer& tr = obs::tracer::instance();
  if (tr.mode() != obs::trace_mode::off) {
    const obs::trace_summary ts = tr.summary();
    std::printf(
        "# trace: mode=%s workers=%u work=%.1f%% steal=%.1f%% idle=%.1f%% "
        "drain=%.1f%% events=%llu dropped=%llu\n",
        obs::trace_summary::mode_name(ts.mode), ts.workers,
        100.0 * ts.work_frac, 100.0 * ts.steal_frac, 100.0 * ts.idle_frac,
        100.0 * ts.drain_frac, static_cast<unsigned long long>(ts.events),
        static_cast<unsigned long long>(ts.dropped));
    if (!s.trace_path.empty()) {
      if (tr.dump(s.trace_path) == 0) {
        std::cout << "# wrote trace to " << s.trace_path << "\n";
      } else {
        rc = 1;
      }
    }
  }
  if (!s.enabled) return rc;
  std::ofstream out(s.path, std::ios::trunc);
  if (!out) {
    std::cerr << "json_write: cannot open " << s.path << "\n";
    return 1;
  }
  out.precision(15);  // doubles round-trip; default 6 digits truncates ops/s
  // schema 2: + trace utilization object, lat_p50/p95/p99_ms,
  // pool_stats.cells_released.
  out << "{\"schema\":2,\"bench\":";
  escape_to(out, s.bench);
  out << ",\"git_sha\":";
  escape_to(out, git_sha());
  out << ",\"generated_unix\":" << static_cast<long long>(std::time(nullptr));
  out << ",\"records\":[\n";
  for (std::size_t i = 0; i < s.records.size(); ++i) {
    if (i > 0) out << ",\n";
    emit_record(out, s.records[i]);
  }
  out << "\n]}\n";
  out.flush();
  if (!out) {
    std::cerr << "json_write: write to " << s.path << " failed\n";
    return 1;
  }
  std::cout << "# wrote " << s.records.size() << " bench records to "
            << s.path << "\n";
  return rc;
}

}  // namespace spdag::harness
