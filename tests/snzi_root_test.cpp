// Unit tests for the SNZI root node: surplus arithmetic, indicator
// publication ordering, and concurrent arrive/depart hammering.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "snzi/root.hpp"

namespace spdag::snzi {
namespace {

TEST(SnziRoot, StartsAtZero) {
  root_node r;
  EXPECT_FALSE(r.query());
  EXPECT_EQ(r.surplus(), 0u);
}

TEST(SnziRoot, InitialSurplusIsVisible) {
  root_node r(3);
  EXPECT_TRUE(r.query());
  EXPECT_EQ(r.surplus(), 3u);
}

TEST(SnziRoot, ArriveSetsIndicator) {
  root_node r;
  r.arrive();
  EXPECT_TRUE(r.query());
  EXPECT_EQ(r.surplus(), 1u);
}

TEST(SnziRoot, DepartClearsIndicatorAtZero) {
  root_node r;
  r.arrive();
  EXPECT_FALSE(r.depart() == false) << "the only depart must report zero";
  EXPECT_FALSE(r.query());
  EXPECT_EQ(r.surplus(), 0u);
}

TEST(SnziRoot, OnlyLastDepartReportsZero) {
  root_node r;
  r.arrive();
  r.arrive();
  r.arrive();
  EXPECT_FALSE(r.depart());
  EXPECT_FALSE(r.depart());
  EXPECT_TRUE(r.query());
  EXPECT_TRUE(r.depart());
  EXPECT_FALSE(r.query());
}

TEST(SnziRoot, EpochAdvancesOnEachZeroToOneTransition) {
  root_node r;
  const std::uint32_t e0 = r.epoch();
  r.arrive();
  EXPECT_EQ(r.epoch(), e0 + 1);
  r.arrive();
  EXPECT_EQ(r.epoch(), e0 + 1) << "1 -> 2 must not advance the epoch";
  r.depart();
  r.depart();
  r.arrive();
  EXPECT_EQ(r.epoch(), e0 + 2);
}

TEST(SnziRoot, ManyPhaseChangesStayConsistent) {
  root_node r;
  for (int i = 0; i < 10000; ++i) {
    r.arrive();
    EXPECT_TRUE(r.query());
    EXPECT_TRUE(r.depart());
    EXPECT_FALSE(r.query());
  }
}

TEST(SnziRoot, ResetRestoresInitialState) {
  root_node r;
  r.arrive();
  r.arrive();
  r.reset(0);
  EXPECT_FALSE(r.query());
  r.reset(5);
  EXPECT_TRUE(r.query());
  EXPECT_EQ(r.surplus(), 5u);
}

// Concurrent hammering: each thread performs balanced arrive/depart pairs.
// At every quiescent point the indicator must agree with the known surplus.
TEST(SnziRootConcurrent, BalancedPairsEndAtZero) {
  root_node r;
  constexpr int kThreads = 8;
  constexpr int kPairsPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&r] {
      for (int i = 0; i < kPairsPerThread; ++i) {
        r.arrive();
        r.depart();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(r.surplus(), 0u);
  EXPECT_FALSE(r.query());
}

// Hold a standing surplus on the main thread while workers churn: the
// indicator must read true at every instant.
TEST(SnziRootConcurrent, IndicatorNeverFlickersUnderStandingSurplus) {
  root_node r;
  r.arrive();  // standing surplus owned by the main thread
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> false_reads{0};

  std::vector<std::thread> churn;
  for (int t = 0; t < 4; ++t) {
    churn.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        r.arrive();
        r.depart();
      }
    });
  }
  std::thread observer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      if (!r.query()) false_reads.fetch_add(1, std::memory_order_relaxed);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true);
  for (auto& th : churn) th.join();
  observer.join();

  EXPECT_EQ(false_reads.load(), 0u)
      << "query() returned false while a surplus was standing";
  EXPECT_TRUE(r.depart());
  EXPECT_FALSE(r.query());
}

// The depart that zeroes the counter is unique even under contention.
TEST(SnziRootConcurrent, ExactlyOneZeroingDepart) {
  for (int round = 0; round < 200; ++round) {
    root_node r;
    constexpr int kThreads = 4;
    for (int i = 0; i < kThreads; ++i) r.arrive();
    std::atomic<int> zero_reports{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        if (r.depart()) zero_reports.fetch_add(1);
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(zero_reports.load(), 1);
    EXPECT_FALSE(r.query());
  }
}

TEST(SnziRootStats, CountsOpsWhenInstrumented) {
  tree_stats stats;
  root_node r(0, &stats);
  r.arrive();
  r.depart();
  EXPECT_EQ(stats.root_arrives.load(), 1u);
  EXPECT_EQ(stats.root_departs.load(), 1u);
  EXPECT_GE(stats.indicator_writes.load(), 2u);
  EXPECT_EQ(r.ops(), 2u);
}

}  // namespace
}  // namespace spdag::snzi
