#pragma once
// dag_service: a resident, multi-tenant sp-dag runtime.
//
// Everything below src/sched/ is batch-shaped: runtime::run() injects one
// root, blocks the caller, and returns at quiescence. A service workload is
// the opposite shape — many client threads, each submitting independent
// dags at its own rate, against ONE persistent worker pool that amortizes
// thread creation, pool warm-up and counter-tree state across submissions.
// dag_service provides that shape:
//
//   spdag::dag_service svc({.rt = {.workers = 4, .sched = "private"}});
//   auto t = svc.submit([] { spdag::fork2([] { work(); }, [] { work(); }); });
//   if (t.valid()) t.wait();
//
// Structure (one instance owns):
//   * a `runtime` (either scheduler spec) attached in resident-service mode
//     (scheduler_base::begin_service): workers execute whatever the engine
//     hands them, with no per-run stop vertex — each submission's final
//     vertex instead carries a completion body that fulfills its ticket.
//   * an MPMC injection queue (mpmc_queue.hpp, Michael–Scott shape) client
//     threads push pooled ticket_states onto.
//   * a dispatcher thread that pops tickets, builds the (root, final) pair
//     via dag_engine::make(), and feeds roots to the scheduler's external
//     enqueue path. A single dispatcher is deliberate: engine::make() draws
//     from pooled allocation, and one dispatching thread means one warm
//     magazine instead of N cold client slots.
//   * bounded admission: at most max_inflight submissions between admit and
//     complete; past the cap submit() blocks (default) or rejects, per
//     admission_policy. Both outcomes are visible in stats().
//   * an idle timer: when the service has been quiet for idle_trim_after,
//     the dispatcher takes the trim gate exclusively, re-verifies
//     quiescence, and calls dag_engine::try_trim_pools() — so slab memory
//     retained by a burst drains back upstream between bursts instead of
//     being held until destruction.
//   * a BUSY trim: every busy_trim_every dispatches the dispatcher calls
//     dag_engine::trim_pools_live(), which needs no quiescence window at
//     all — it retires fully-free slabs into epoch limbo
//     (src/mem/epoch.hpp) and frees them after the 2-epoch delay. A service
//     under sustained traffic therefore returns burst memory while
//     submissions are still in flight, instead of waiting for a quiet
//     period the workload may never offer. No trim gate is involved: the
//     epoch protocol, not exclusion, is what makes the trim safe.
//
// Trim safety (quiescent path). Quiescent pool trim is only legal with no
// concurrent pool traffic.
// Pool traffic under a live service comes from exactly three places: worker
// threads inside execute() (covered by live_vertices() != 0 while any body
// runs), the dispatcher (it is the trimmer), and client threads allocating
// or releasing tickets. The last is the race trim could not otherwise see —
// hence trim_gate_: submit's ticket allocation and the client-side final
// ticket release hold it shared; the idle trim holds it exclusively and
// re-checks (queue empty && inflight == 0 && live_vertices() == 0 &&
// service_idle()) before trimming. try_trim_pools re-verifies once more so
// a mistimed fire degrades to `return false`, never to a use-after-free.
//
// Lifetime: tickets are pooled in the service's registry and MUST NOT
// outlive the service. Destruction runs shutdown(drain_mode::drain):
// already-admitted submissions complete, late submit() calls reject.
//
// Observability: submissions emit the ev_submit / ev_admit / ev_reject /
// ev_submit_complete instants and maintain the g_inflight gauge
// (src/obs/trace.hpp), and the service keeps three lock-free latency
// histograms — queueing (submit→dispatch), execution (dispatch→complete)
// and sojourn (submit→complete) — so bench/service_traffic.cpp can separate
// time spent waiting for admission+dispatch from time spent computing.

#include <atomic>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <utility>

#include "dag/vertex.hpp"
#include "sched/runtime.hpp"
#include "service/mpmc_queue.hpp"
#include "util/histogram.hpp"

namespace spdag {

class dag_service;

// What submit() does when inflight == max_inflight.
enum class admission_policy {
  block,   // wait until a completion frees a slot (or shutdown rejects us)
  reject,  // fail fast: submit() returns an invalid ticket
};

struct service_config {
  runtime_config rt = {};

  // Ceiling on submissions between admission and completion; 0 = unbounded.
  std::size_t max_inflight = 1024;
  admission_policy on_full = admission_policy::block;

  // Quiet time before the dispatcher attempts an idle pool trim;
  // zero disables the idle timer entirely.
  std::chrono::milliseconds idle_trim_after{2};

  // Dispatch-count cadence of the live (epoch-based) busy trim: every this
  // many dispatches the dispatcher calls dag_engine::trim_pools_live().
  // Zero disables it; it is also inert when the epoch subsystem is compiled
  // out (-DSPDAG_EPOCH=OFF).
  std::size_t busy_trim_every = 256;
};

// Monotone counters + gauges, readable at any time (fields may be a few
// events skewed from each other mid-run; each is internally consistent).
// Conservation at quiescent shutdown: submitted == admitted + rejected and
// completed == admitted.
struct service_stats {
  std::uint64_t submitted = 0;       // submit() calls
  std::uint64_t admitted = 0;        // dispatched into the scheduler
  std::uint64_t rejected = 0;        // refused at the door or at shutdown
  std::uint64_t completed = 0;       // final vertices that ran
  std::uint64_t blocked = 0;         // submits that had to wait for a slot
  std::uint64_t idle_trims = 0;      // successful idle-timer pool trims
  std::uint64_t slabs_released = 0;  // slabs those trims returned upstream
  std::uint64_t busy_trims = 0;      // live (epoch) trims run under traffic
  std::uint64_t slabs_retired = 0;   // slabs busy trims parked in epoch limbo
  std::uint64_t slabs_reclaimed = 0; // limbo slabs freed after the 2-epoch
                                     // delay (by any reclaim sweep)
  std::uint64_t queue_full_rejects = 0;  // submissions refused because the
                                         // MPMC node arena hit its cap
                                         // (counted inside `rejected` too)
  std::size_t inflight = 0;          // snapshot: admitted, not yet complete
  std::size_t peak_inflight = 0;
};

namespace detail {

// Shared completion record behind a ticket. Pooled; two references — the
// client's ticket and the service (held until the completion or rejection
// path has fulfilled it).
struct ticket_state {
  dag_service* svc = nullptr;
  vertex_body job;  // moved into the root vertex at dispatch
  std::atomic<int> refs{2};
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  bool rejected = false;
  std::chrono::steady_clock::time_point submit_tp;
  std::chrono::steady_clock::time_point dispatch_tp;
};

}  // namespace detail

// Client-side handle to one submission. Move-only; waitable from exactly
// one thread at a time per handle (the state's cv supports any number of
// handles, but a ticket cannot be copied — clone by sharing results through
// the job itself). Must be destroyed before the service.
class ticket {
 public:
  ticket() noexcept = default;
  ticket(ticket&& o) noexcept : s_(o.s_) { o.s_ = nullptr; }
  ticket& operator=(ticket&& o) noexcept {
    if (this != &o) {
      release();
      s_ = o.s_;
      o.s_ = nullptr;
    }
    return *this;
  }
  ticket(const ticket&) = delete;
  ticket& operator=(const ticket&) = delete;
  ~ticket() { release(); }

  // False when the submission was refused at the door (reject policy or
  // shutdown) — there is nothing to wait on.
  bool valid() const noexcept { return s_ != nullptr; }

  // Blocks until the submission completes or is rejected at shutdown.
  // Returns true iff the dag ran to completion. Invalid tickets return
  // false immediately.
  bool wait();

  // Non-blocking probe: true once wait() would not block.
  bool ready() const;

 private:
  friend class dag_service;
  explicit ticket(detail::ticket_state* s) noexcept : s_(s) {}
  void release() noexcept;

  detail::ticket_state* s_ = nullptr;
};

class dag_service {
 public:
  enum class drain_mode {
    drain,   // complete everything already admitted, then stop
    reject,  // dispatch nothing further; queued submissions are rejected
             // (already-dispatched dags still run to completion)
  };

  explicit dag_service(service_config cfg = {});
  ~dag_service();  // shutdown(drain_mode::drain)

  dag_service(const dag_service&) = delete;
  dag_service& operator=(const dag_service&) = delete;

  // Submits one dag whose root body is `job` (same contract as
  // runtime::run's closure: nested fork2/finish_then/futures are fine; the
  // closure must fit vertex_body's inline storage). Thread-safe — any
  // number of client threads may submit concurrently. The returned ticket
  // is invalid iff the submission was rejected.
  template <typename F>
  ticket submit(F&& job) {
    return submit_body(vertex_body(std::forward<F>(job)));
  }
  ticket submit_body(vertex_body job);

  // Idempotent; concurrent callers race to pick the mode, everyone blocks
  // until the service is fully stopped. After shutdown, submit() rejects.
  void shutdown(drain_mode mode = drain_mode::drain);

  service_stats stats() const;

  // Latency distributions (ns), recorded per submission. Lock-free reads;
  // exact at quiescence.
  const latency_histogram& queue_latency() const noexcept { return queue_hist_; }
  const latency_histogram& exec_latency() const noexcept { return exec_hist_; }
  const latency_histogram& sojourn_latency() const noexcept {
    return sojourn_hist_;
  }

  // Submission-queue depth right now (diagnostics).
  std::size_t queue_depth() const noexcept { return queue_.approx_size(); }

  runtime& rt() noexcept { return rt_; }

 private:
  friend class ticket;
  using clock = std::chrono::steady_clock;

  bool admit();
  void dispatch(detail::ticket_state* t);
  void reject_queued(detail::ticket_state* t);
  void complete(detail::ticket_state* t);
  void dispatcher_main();
  void try_idle_trim();
  void maybe_busy_trim();
  void release_ref(detail::ticket_state* t, bool via_gate) noexcept;

  service_config cfg_;
  runtime rt_;
  object_pool* ticket_pool_;

  mpmc_queue<detail::ticket_state> queue_;

  // See the file comment: shared = client-side pool traffic (ticket alloc /
  // final release), exclusive = the idle trim.
  std::shared_mutex trim_gate_;

  // Admission. inflight_ is the only gate state; the mutex/cv pair exists
  // so blocked submitters can sleep (completions notify after decrement).
  std::atomic<std::size_t> inflight_{0};
  std::atomic<std::size_t> peak_inflight_{0};
  std::mutex admit_mu_;
  std::condition_variable admit_cv_;

  // Dispatcher parking + idle timer.
  std::mutex dispatch_mu_;
  std::condition_variable dispatch_cv_;
  std::thread dispatcher_;
  // retained() observed right after the last idle trim; the timer re-arms
  // only when the registry's retained count moves off this value (a trim
  // can leave a residue — free cells in slabs pinned by live neighbors —
  // so "retained == 0" is not a reachable idle state). Dispatcher-private.
  std::uint64_t trimmed_retained_ = ~std::uint64_t{0};
  // Dispatches since the last busy trim (dispatcher-private cadence).
  std::size_t dispatches_since_busy_trim_ = 0;

  // Shutdown. stopping_ elects the mode-setter; stop_ is what admit() and
  // the dispatcher read (stored after reject_pending_, so a reader that
  // sees stop_ sees the mode).
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stop_{false};
  std::atomic<bool> reject_pending_{false};
  std::mutex join_mu_;
  bool ended_service_ = false;  // guarded by join_mu_

  // Stats (relaxed monotone counters).
  std::atomic<std::uint64_t> n_submitted_{0};
  std::atomic<std::uint64_t> n_admitted_{0};
  std::atomic<std::uint64_t> n_rejected_{0};
  std::atomic<std::uint64_t> n_completed_{0};
  std::atomic<std::uint64_t> n_blocked_{0};
  std::atomic<std::uint64_t> n_idle_trims_{0};
  std::atomic<std::uint64_t> n_slabs_released_{0};
  std::atomic<std::uint64_t> n_busy_trims_{0};
  std::atomic<std::uint64_t> n_slabs_retired_{0};
  std::atomic<std::uint64_t> n_slabs_reclaimed_{0};
  std::atomic<std::uint64_t> n_queue_full_rejects_{0};

  latency_histogram queue_hist_;
  latency_histogram exec_hist_;
  latency_histogram sojourn_hist_;
};

}  // namespace spdag
