#pragma once
// Wall-clock timing helpers for the harness and examples.

#include <chrono>
#include <cstdint>

namespace spdag {

class wall_timer {
 public:
  wall_timer() noexcept { reset(); }

  void reset() noexcept { start_ = clock::now(); }

  double elapsed_s() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  std::uint64_t elapsed_ns() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - start_)
            .count());
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace spdag
