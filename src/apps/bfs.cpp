#include "apps/bfs.hpp"

#include <atomic>
#include <memory>

#include "dag/parallel_for.hpp"
#include "util/rng.hpp"

namespace spdag::apps {

bfs_graph make_bfs_graph(std::uint64_t vertices, std::uint64_t avg_degree,
                         std::uint64_t seed) {
  xoshiro256 rng(seed);
  bfs_graph g;
  g.offsets.resize(vertices + 1);
  // Degrees first (uniform in [0, 2*avg]), then one prefix sum, then fill.
  std::vector<std::uint32_t> degree(vertices);
  for (std::uint64_t u = 0; u < vertices; ++u) {
    degree[u] = static_cast<std::uint32_t>(rng.below(2 * avg_degree + 1));
  }
  // Seed connectivity: vertex 0 fans out to a spread of anchors so the
  // traversal from 0 covers a large component in few levels.
  std::uint64_t stride = 1;
  while (stride * stride < vertices) ++stride;
  // ceil: the anchor loop below visits a = 0, stride, 2*stride, ...
  const std::uint32_t anchors =
      static_cast<std::uint32_t>((vertices + stride - 1) / stride);
  degree[0] += anchors;
  g.offsets[0] = 0;
  for (std::uint64_t u = 0; u < vertices; ++u) {
    g.offsets[u + 1] = g.offsets[u] + degree[u];
  }
  g.targets.resize(g.offsets[vertices]);
  std::uint32_t* out = g.targets.data();
  for (std::uint64_t a = 0; a < vertices; a += stride) {
    *out++ = static_cast<std::uint32_t>(a);
  }
  for (std::uint64_t u = 0; u < vertices; ++u) {
    const std::uint32_t deg = degree[u] - (u == 0 ? anchors : 0);
    for (std::uint32_t e = 0; e < deg; ++e) {
      *out++ = static_cast<std::uint32_t>(rng.below(vertices));
    }
  }
  return g;
}

namespace {

// Shared per-level state, captured by pointer (vertex bodies carry a
// 64-byte inline budget).
struct level_ctx {
  const bfs_graph* g;
  std::atomic<std::int32_t>* dist;
  const std::uint32_t* frontier;
  std::int32_t next_level;
};

}  // namespace

std::vector<std::int32_t> bfs_run(runtime& rt, const bfs_graph& g,
                                  const bfs_config& cfg) {
  const std::uint64_t n = g.vertex_count();
  std::unique_ptr<std::atomic<std::int32_t>[]> dist(
      new std::atomic<std::int32_t>[n]);
  for (std::uint64_t v = 0; v < n; ++v) {
    dist[v].store(-1, std::memory_order_relaxed);
  }
  dist[0].store(0, std::memory_order_relaxed);

  std::vector<std::uint32_t> frontier{0};
  std::int32_t level = 0;
  const std::size_t grain = cfg.grain == 0 ? 1 : cfg.grain;
  while (!frontier.empty()) {
    level_ctx ctx{&g, dist.get(), frontier.data(), level + 1};
    const level_ctx* c = &ctx;
    const std::size_t fsize = frontier.size();
    const bool batch = cfg.batch;
    rt.run([c, fsize, grain, batch] {
      // Chunks only claim (CAS -1 -> next_level); the next frontier is
      // re-derived below, so no chunk-local buffers and no ordering races.
      auto body = [c](std::size_t i) {
        const std::uint32_t u = c->frontier[i];
        const std::uint32_t lo = c->g->offsets[u];
        const std::uint32_t hi = c->g->offsets[u + 1];
        for (std::uint32_t e = lo; e < hi; ++e) {
          const std::uint32_t v = c->g->targets[e];
          std::int32_t expect = -1;
          c->dist[v].compare_exchange_strong(expect, c->next_level,
                                             std::memory_order_relaxed);
        }
      };
      if (batch) {
        parallel_for_blocked(0, fsize, grain, body);
      } else {
        parallel_for(0, fsize, grain, body);
      }
    });
    ++level;
    // Ordered rescan: deterministic next frontier whatever the CAS winners.
    frontier.clear();
    for (std::uint64_t v = 0; v < n; ++v) {
      if (dist[v].load(std::memory_order_relaxed) == level) {
        frontier.push_back(static_cast<std::uint32_t>(v));
      }
    }
  }

  std::vector<std::int32_t> out(n);
  for (std::uint64_t v = 0; v < n; ++v) {
    out[v] = dist[v].load(std::memory_order_relaxed);
  }
  return out;
}

}  // namespace spdag::apps
