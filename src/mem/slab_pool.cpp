#include "mem/slab_pool.hpp"

#include <cstdlib>
#include <new>
#include <stdexcept>

namespace spdag {

namespace {

// Tagged 48-bit pointer + 16-bit monotone tag (canonical user-space
// addresses), the same ABA defense as util/treiber_stack.
constexpr std::uint64_t ptr_mask = (1ULL << 48) - 1;

std::uint64_t pack(void* p, std::uint64_t tag) noexcept {
  return (reinterpret_cast<std::uintptr_t>(p) & ptr_mask) | (tag << 48);
}
void* ptr_of(std::uint64_t v) noexcept {
  return reinterpret_cast<void*>(v & ptr_mask);
}
std::uint64_t tag_of(std::uint64_t v) noexcept { return v >> 48; }

constexpr std::size_t round_up(std::size_t v, std::size_t a) noexcept {
  return (v + a - 1) / a * a;
}

// Stamp encoding: 0 = never allocated; otherwise (slot + 2), where slot -1
// is the magazine-less bypass path.
std::uint64_t stamp_for(int slot) noexcept {
  return static_cast<std::uint64_t>(slot + 2);
}

// Single-writer counter increment: magazine counters are only written by
// the slot's owner, so a plain load+store (no locked RMW) is exact, and
// being atomic keeps cross-thread stats() reads clean.
void bump(std::atomic<std::uint64_t>& c) noexcept {
  c.store(c.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
}

}  // namespace

slab_cache::slab_cache(std::string name, std::size_t object_bytes,
                       std::size_t object_align, std::size_t slab_bytes)
    : object_pool(std::move(name), object_bytes, object_align) {
  if (object_bytes == 0) {
    throw std::invalid_argument("slab_cache: zero object size");
  }
  std::size_t align = object_align < sizeof(void*) ? sizeof(void*) : object_align;
  // Header: link at cell start, stamp in the 8 bytes before the object.
  hdr_space_ = round_up(2 * sizeof(std::uint64_t), align);
  stride_ = round_up(hdr_space_ + object_bytes, align);
  slab_align_ = align < cache_line_size ? cache_line_size : align;
  slab_bytes_ = round_up(slab_bytes < stride_ ? stride_ : slab_bytes, slab_align_);
}

slab_cache::~slab_cache() {
  for (auto& slot : mags_) {
    delete slot.load(std::memory_order_acquire);
  }
  for (void* slab : slabs_) std::free(slab);
}

slab_cache::magazine& slab_cache::mag(int slot) {
  magazine* m = mags_[slot].load(std::memory_order_acquire);
  if (m == nullptr) {
    m = new magazine();
    mags_[slot].store(m, std::memory_order_release);
  }
  return *m;
}

// Restamps the cell for its new owner; true iff it had a previous life.
bool slab_cache::restamp(void* p, int slot) noexcept {
  auto* st = stamp_of(p);
  const bool recycled = st->load(std::memory_order_relaxed) != 0;
  st->store(stamp_for(slot), std::memory_order_relaxed);
  return recycled;
}

void* slab_cache::allocate() {
  const int slot = mem::thread_slot();
  if (slot >= 0) {
    magazine& m = mag(slot);
    if (m.count == 0) refill(m);
    void* p = m.items[--m.count];
    bump(m.allocs);
    if (restamp(p, slot)) bump(m.recycles);
    return p;
  }
  // Over-subscribed thread: no magazine, straight to the shared layers.
  void* p = pop_global();
  if (p == nullptr) {
    std::uint32_t got = 0;
    carve(&p, 1, got);
  }
  g_allocs_.fetch_add(1, std::memory_order_relaxed);
  if (restamp(p, slot)) g_recycles_.fetch_add(1, std::memory_order_relaxed);
  return p;
}

void slab_cache::deallocate(void* p) noexcept {
  const int slot = mem::thread_slot();
  const bool remote =
      stamp_of(p)->load(std::memory_order_relaxed) != stamp_for(slot);
  // Peek, don't create: a free must never allocate (this function is
  // noexcept), so a thread whose first contact with this pool is a
  // cross-worker free pushes straight to the global list; its magazine is
  // created by its first allocate().
  magazine* m =
      slot >= 0 ? mags_[slot].load(std::memory_order_acquire) : nullptr;
  if (m != nullptr) {
    bump(m->frees);
    if (remote) bump(m->remote_frees);
    if (m->count == magazine_cap) flush(*m);
    m->items[m->count++] = p;
    return;
  }
  g_frees_.fetch_add(1, std::memory_order_relaxed);
  if (remote) g_remote_frees_.fetch_add(1, std::memory_order_relaxed);
  push_global(p, p);
}

void slab_cache::refill(magazine& m) {
  bump(m.refills);
  while (m.count < batch) {
    void* p = pop_global();
    if (p == nullptr) break;
    m.items[m.count++] = p;
  }
  if (m.count == 0) {
    std::uint32_t got = 0;
    carve(m.items, batch, got);
    m.count = got;
  }
}

void slab_cache::flush(magazine& m) noexcept {
  bump(m.flushes);
  // Hand the newest half back; link it into one chain, publish with one CAS.
  const std::uint32_t keep = magazine_cap - batch;
  void* first = m.items[m.count - 1];
  void* last = m.items[keep];
  for (std::uint32_t i = m.count - 1; i > keep; --i) {
    link_of(m.items[i])->store(m.items[i - 1], std::memory_order_relaxed);
  }
  m.count = keep;
  push_global(first, last);
}

void slab_cache::carve(void** out, std::uint32_t want, std::uint32_t& got) {
  std::lock_guard<std::mutex> lock(grow_mu_);
  for (got = 0; got < want; ++got) {
    if (cursor_ == nullptr ||
        cursor_ + stride_ > slab_end_) {
      if (got > 0) break;  // partial batch is fine once we have one cell
      void* raw = std::aligned_alloc(slab_align_, slab_bytes_);
      if (raw == nullptr) throw std::bad_alloc{};
      slabs_.push_back(raw);
      slab_growths_.fetch_add(1, std::memory_order_relaxed);
      cursor_ = static_cast<char*>(raw);
      slab_end_ = cursor_ + slab_bytes_;
    }
    void* obj = cursor_ + hdr_space_;
    cursor_ += stride_;
    ::new (link_of(obj)) std::atomic<void*>(nullptr);
    ::new (stamp_of(obj)) std::atomic<std::uint64_t>(0);
    out[got] = obj;
  }
  carved_.fetch_add(got, std::memory_order_relaxed);
}

void* slab_cache::pop_global() noexcept {
  std::uint64_t head = global_head_.load(std::memory_order_acquire);
  for (;;) {
    void* top = ptr_of(head);
    if (top == nullptr) return nullptr;
    void* next = link_of(top)->load(std::memory_order_relaxed);
    const std::uint64_t fresh = pack(next, tag_of(head) + 1);
    if (global_head_.compare_exchange_weak(head, fresh,
                                           std::memory_order_acquire,
                                           std::memory_order_acquire)) {
      return top;
    }
  }
}

void slab_cache::push_global(void* first, void* last) noexcept {
  std::uint64_t head = global_head_.load(std::memory_order_acquire);
  for (;;) {
    link_of(last)->store(ptr_of(head), std::memory_order_relaxed);
    const std::uint64_t fresh = pack(first, tag_of(head) + 1);
    if (global_head_.compare_exchange_weak(head, fresh,
                                           std::memory_order_release,
                                           std::memory_order_acquire)) {
      return;
    }
  }
}

pool_stats slab_cache::stats() const {
  pool_stats s;
  s.allocs = g_allocs_.load(std::memory_order_relaxed);
  s.frees = g_frees_.load(std::memory_order_relaxed);
  s.recycles = g_recycles_.load(std::memory_order_relaxed);
  s.remote_frees = g_remote_frees_.load(std::memory_order_relaxed);
  s.carved = carved_.load(std::memory_order_relaxed);
  s.slab_growths = slab_growths_.load(std::memory_order_relaxed);
  for (const auto& slot : mags_) {
    const magazine* m = slot.load(std::memory_order_acquire);
    if (m == nullptr) continue;
    s.allocs += m->allocs.load(std::memory_order_relaxed);
    s.frees += m->frees.load(std::memory_order_relaxed);
    s.recycles += m->recycles.load(std::memory_order_relaxed);
    s.remote_frees += m->remote_frees.load(std::memory_order_relaxed);
    s.magazine_refills += m->refills.load(std::memory_order_relaxed);
    s.magazine_flushes += m->flushes.load(std::memory_order_relaxed);
  }
  return s;
}

std::size_t slab_cache::slab_count() const {
  std::lock_guard<std::mutex> lock(grow_mu_);
  return slabs_.size();
}

}  // namespace spdag
