// Conformance suite for the hot-path memory subsystem (src/mem/): cell
// uniqueness and alignment, exactly-one construction/destruction per
// object, cross-worker free correctness under raw-thread storms (run under
// TSan in CI), steady-state slab plateau, registry keying, and spec
// parsing.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "mem/malloc_pool.hpp"
#include "mem/registry.hpp"
#include "mem/slab_pool.hpp"
#include "mem/thread_slot.hpp"
#include "util/rng.hpp"

namespace spdag {
namespace {

struct counted {
  static std::atomic<int> ctors;
  static std::atomic<int> dtors;
  std::uint64_t payload[3];
  explicit counted(std::uint64_t v = 0) : payload{v, v + 1, v + 2} {
    ctors.fetch_add(1, std::memory_order_relaxed);
  }
  ~counted() { dtors.fetch_add(1, std::memory_order_relaxed); }
};
std::atomic<int> counted::ctors{0};
std::atomic<int> counted::dtors{0};

TEST(SlabPool, CellsAreAlignedAndDisjoint) {
  struct alignas(64) wide { char data[96]; };
  slab_pool<wide> pool("wide", /*slab_bytes=*/4096);
  std::set<void*> seen;
  std::vector<void*> cells;
  for (int i = 0; i < 500; ++i) {
    void* p = pool.allocate();
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u);
    EXPECT_TRUE(seen.insert(p).second) << "duplicate live cell";
    cells.push_back(p);
  }
  for (void* p : cells) pool.deallocate(p);
  const pool_stats s = pool.stats();
  EXPECT_EQ(s.allocs, 500u);
  EXPECT_EQ(s.frees, 500u);
  EXPECT_EQ(s.live(), 0u);
  EXPECT_GT(s.slab_growths, 1u);  // 4 KiB slabs can't hold 500 wide cells
}

TEST(SlabPool, ExactlyOneConstructionAndDestructionPerObject) {
  counted::ctors.store(0);
  counted::dtors.store(0);
  slab_pool<counted> pool("counted");
  std::vector<counted*> live;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 100; ++i) {
      counted* c = pool.create(static_cast<std::uint64_t>(i));
      ASSERT_EQ(c->payload[2], static_cast<std::uint64_t>(i) + 2)
          << "recycled cell must be freshly constructed";
      live.push_back(c);
    }
    for (counted* c : live) pool.destroy(c);
    live.clear();
  }
  EXPECT_EQ(counted::ctors.load(), 300);
  EXPECT_EQ(counted::dtors.load(), 300);
  EXPECT_EQ(pool.stats().live(), 0u);
}

TEST(SlabPool, SteadyStateChurnStopsGrowingSlabs) {
  slab_pool<counted> pool("steady");
  auto churn = [&] {
    std::vector<counted*> batch;
    for (int i = 0; i < 200; ++i) batch.push_back(pool.create());
    for (counted* c : batch) pool.destroy(c);
  };
  churn();  // warm-up carves the working set
  const pool_stats warm = pool.stats();
  for (int round = 0; round < 50; ++round) churn();
  const pool_stats after = pool.stats();
  EXPECT_EQ(after.slab_growths, warm.slab_growths)
      << "steady-state churn must not touch the upstream allocator";
  EXPECT_EQ(after.carved, warm.carved);
  EXPECT_GT(after.allocs, warm.allocs);
  EXPECT_GT(after.recycles, warm.recycles);
}

// The conformance storm: raw threads allocate and free at random, with a
// share of cells handed to ANOTHER thread for freeing (the cross-worker
// path future completion exercises). Conservation must hold exactly.
TEST(SlabPool, CrossThreadAllocFreeStorm) {
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 20000;
  slab_pool<counted> pool("storm");
  counted::ctors.store(0);
  counted::dtors.store(0);

  // One locked handoff queue per thread; thread t frees what lands in
  // queue t, regardless of who allocated it.
  struct handoff {
    std::mutex mu;
    std::deque<counted*> q;
  };
  std::vector<handoff> queues(kThreads);
  std::atomic<bool> go{false};
  std::atomic<int> done{0};

  auto worker = [&](int me) {
    while (!go.load(std::memory_order_acquire)) {
    }
    std::vector<counted*> mine;
    for (int i = 0; i < kOpsPerThread; ++i) {
      const std::uint64_t dice = thread_rng().below(4);
      if (dice == 0 && !mine.empty()) {
        pool.destroy(mine.back());  // local free
        mine.pop_back();
      } else if (dice == 1) {
        // Hand a cell to a neighbor for a cross-thread free.
        counted* c = pool.create();
        handoff& h = queues[(me + 1) % kThreads];
        std::lock_guard<std::mutex> lock(h.mu);
        h.q.push_back(c);
      } else if (dice == 2) {
        counted* c = nullptr;
        {
          handoff& h = queues[me];
          std::lock_guard<std::mutex> lock(h.mu);
          if (!h.q.empty()) {
            c = h.q.front();
            h.q.pop_front();
          }
        }
        if (c != nullptr) pool.destroy(c);  // remote free
      } else {
        mine.push_back(pool.create());
      }
    }
    for (counted* c : mine) pool.destroy(c);
    done.fetch_add(1, std::memory_order_release);
  };

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(worker, t);
  go.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();
  ASSERT_EQ(done.load(), kThreads);
  // Drain the stranded handoffs from the main thread (another remote free).
  for (auto& h : queues) {
    for (counted* c : h.q) pool.destroy(c);
    h.q.clear();
  }

  const pool_stats s = pool.stats();
  EXPECT_EQ(counted::ctors.load(), counted::dtors.load());
  EXPECT_EQ(s.allocs, s.frees);
  EXPECT_EQ(s.live(), 0u);
  EXPECT_EQ(s.allocs, static_cast<std::uint64_t>(counted::ctors.load()));
  EXPECT_GT(s.remote_frees, 0u) << "the storm must exercise cross-worker frees";
  // Every cell that was ever carved is now cached for reuse, none leaked.
  EXPECT_EQ(s.cached(), s.carved);
}

TEST(SlabPool, OversubscribedThreadsFallBackToGlobalList) {
  // More threads than there are magazine slots cannot be spawned cheaply,
  // so exercise the bypass path directly through its primitive: a pool
  // whose user threads outnumber slots still conserves cells because the
  // bypass goes through the same stamped cells and global list. Here we
  // just verify heavy short-lived-thread traffic conserves.
  slab_pool<counted> pool("threads");
  for (int round = 0; round < 8; ++round) {
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&pool] {
        std::vector<counted*> mine;
        for (int i = 0; i < 200; ++i) mine.push_back(pool.create());
        for (counted* c : mine) pool.destroy(c);
      });
    }
    for (auto& th : threads) th.join();
  }
  const pool_stats s = pool.stats();
  EXPECT_EQ(s.allocs, s.frees);
  EXPECT_EQ(s.live(), 0u);
  EXPECT_LE(mem::claimed_thread_slots(), mem::max_thread_slots);
}

TEST(MallocPool, CountsEveryTripUpstream) {
  malloc_pool pool("baseline", sizeof(counted), alignof(counted));
  std::vector<void*> cells;
  for (int i = 0; i < 64; ++i) cells.push_back(pool.allocate());
  for (void* p : cells) pool.deallocate(p);
  const pool_stats s = pool.stats();
  EXPECT_EQ(s.allocs, 64u);
  EXPECT_EQ(s.frees, 64u);
  EXPECT_EQ(s.slab_growths, 64u) << "every malloc alloc is an upstream trip";
  EXPECT_EQ(s.recycles, 0u);
}

TEST(PoolRegistry, KeysByNameSizeAndAlignment) {
  slab_pool_registry reg;
  object_pool& a = reg.get("future_state", 48, 8);
  object_pool& b = reg.get("future_state", 48, 8);
  object_pool& c = reg.get("future_state", 64, 8);
  object_pool& d = reg.get("vertex", 48, 8);
  object_pool& e = reg.get("future_state", 48, 16);
  EXPECT_EQ(&a, &b) << "same name+size+align must be one pool";
  EXPECT_NE(&a, &c) << "same name, different size: distinct pools";
  EXPECT_NE(&a, &d);
  EXPECT_NE(&a, &e) << "stricter alignment must get its own (aligned) pool";
  EXPECT_EQ(e.object_align(), 16u);
  EXPECT_EQ(a.name(), "future_state:48:a8");
  EXPECT_EQ(reg.rows().size(), 4u);
}

TEST(PoolRegistry, SpecParsing) {
  EXPECT_EQ(make_pool_registry("malloc")->spec(), "malloc");
  EXPECT_EQ(make_pool_registry("alloc:malloc")->spec(), "malloc");
  EXPECT_EQ(make_pool_registry("pool")->spec(), "pool");
  EXPECT_EQ(make_pool_registry("pool:65536")->spec(), "pool:65536");
  EXPECT_EQ(make_pool_registry("alloc:pool:8192")->spec(), "pool:8192");
  EXPECT_THROW(make_pool_registry("bogus"), std::invalid_argument);
  EXPECT_THROW(make_pool_registry("pool:64"), std::invalid_argument);
  EXPECT_THROW(make_pool_registry("pool:999999999"), std::invalid_argument);
  // Strict numeric fields: overflow and trailing garbage are invalid, not
  // out_of_range or silently truncated.
  EXPECT_THROW(make_pool_registry("pool:99999999999999999999"),
               std::invalid_argument);
  EXPECT_THROW(make_pool_registry("pool:8192kb"), std::invalid_argument);
  EXPECT_THROW(make_pool_registry("pool:-8192"), std::invalid_argument);
  EXPECT_THROW(make_pool_registry("pool:"), std::invalid_argument);
}

TEST(PoolRegistry, MallocRegistryServesWorkingPools) {
  auto reg = make_pool_registry("malloc");
  object_pool& p = reg->get("x", 32, 8);
  void* a = p.allocate();
  ASSERT_NE(a, nullptr);
  p.deallocate(a);
  EXPECT_EQ(reg->totals().allocs, 1u);
}

}  // namespace
}  // namespace spdag
