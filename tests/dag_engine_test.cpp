// Structural tests for the sp-dag engine (paper Figure 3) under the
// deterministic serial executor: make/chain/spawn/signal semantics, execution
// order constraints, conservation laws, and object recycling.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <vector>

#include "dag/engine.hpp"
#include "dag/serial_executor.hpp"
#include "incounter/factory.hpp"

namespace spdag {
namespace {

class DagEngineTest : public ::testing::TestWithParam<std::string> {
 protected:
  // Each fixture owns its pool registry so the cached-cell assertions below
  // see only this engine's traffic (the default registry is process-wide).
  DagEngineTest()
      : factory_(make_counter_factory(GetParam())),
        engine_(*factory_, exec_, {.pools = &pools_}) {}

  serial_executor exec_;
  slab_pool_registry pools_;
  std::unique_ptr<counter_factory> factory_;
  dag_engine engine_;
};

TEST_P(DagEngineTest, TrivialDagRunsRootThenFinal) {
  std::vector<std::string> order;
  auto [root, final_v] = engine_.make();
  root->body = [&order] { order.push_back("root"); };
  final_v->body = [&order] { order.push_back("final"); };
  engine_.add(root);
  engine_.add(final_v);  // not ready yet: must be a no-op
  const std::size_t executed = exec_.run_all(engine_);
  EXPECT_EQ(executed, 2u);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "root");
  EXPECT_EQ(order[1], "final");
}

TEST_P(DagEngineTest, ChainRunsSeriallyInOrder) {
  std::vector<int> order;
  auto [root, final_v] = engine_.make();
  root->body = [&order] {
    order.push_back(0);
    finish_then([&order] { order.push_back(1); }, [&order] { order.push_back(2); });
  };
  final_v->body = [&order] { order.push_back(3); };
  engine_.add(root);
  exec_.run_all(engine_);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST_P(DagEngineTest, SpawnRunsBothChildrenBeforeFinal) {
  std::vector<std::string> order;
  auto [root, final_v] = engine_.make();
  root->body = [&order] {
    fork2([&order] { order.push_back("left"); },
          [&order] { order.push_back("right"); });
  };
  final_v->body = [&order] { order.push_back("final"); };
  engine_.add(root);
  exec_.run_all(engine_);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order.back(), "final");
  EXPECT_NE(std::find(order.begin(), order.end(), "left"), order.end());
  EXPECT_NE(std::find(order.begin(), order.end(), "right"), order.end());
}

TEST_P(DagEngineTest, NestedForkTreeCompletes) {
  std::atomic<int> leaves{0};
  auto [root, final_v] = engine_.make();
  // 4 levels of nested fork2 => 16 leaves.
  struct recursion {
    static void go(std::atomic<int>* count, int depth) {
      if (depth == 0) {
        count->fetch_add(1);
        return;
      }
      fork2([count, depth] { go(count, depth - 1); },
            [count, depth] { go(count, depth - 1); });
    }
  };
  root->body = [&leaves] { recursion::go(&leaves, 4); };
  engine_.add(root);
  engine_.add(final_v);
  exec_.run_all(engine_);
  EXPECT_EQ(leaves.load(), 16);
}

TEST_P(DagEngineTest, FinishThenSequencesNestedParallelism) {
  std::vector<int> order;
  auto [root, final_v] = engine_.make();
  root->body = [&order] {
    finish_then(
        [&order] {
          fork2([&order] { order.push_back(1); }, [&order] { order.push_back(1); });
        },
        [&order] {
          // Runs only after BOTH forked children above completed.
          EXPECT_EQ(order.size(), 2u);
          order.push_back(2);
        });
  };
  engine_.add(root);
  engine_.add(final_v);
  exec_.run_all(engine_);
  EXPECT_EQ(order, (std::vector<int>{1, 1, 2}));
}

TEST_P(DagEngineTest, ConservationLaws) {
  auto [root, final_v] = engine_.make();
  std::atomic<int> sink{0};
  struct recursion {
    static void go(std::atomic<int>* s, int depth) {
      if (depth == 0) {
        s->fetch_add(1);
        return;
      }
      fork2([s, depth] { go(s, depth - 1); }, [s, depth] { go(s, depth - 1); });
    }
  };
  root->body = [&sink] { recursion::go(&sink, 6); };
  engine_.add(root);
  engine_.add(final_v);
  exec_.run_all(engine_);

  const auto& st = engine_.stats();
  EXPECT_EQ(st.vertices_created.load(), st.vertices_recycled.load())
      << "every vertex must be recycled exactly once";
  EXPECT_EQ(engine_.live_vertices(), 0u);
  if (engine_.uses_tokens()) {
    EXPECT_EQ(st.pairs_created.load(), st.pairs_recycled.load())
        << "every dec pair must be fully claimed and recycled";
  }
  // Executions = created vertices (each runs exactly once).
  EXPECT_EQ(st.executions.load(), st.vertices_created.load());
  // spawns create 2 vertices, chains 2, make 2.
  EXPECT_EQ(st.vertices_created.load(),
            2 + 2 * st.chains.load() + 2 * st.spawns.load());
}

TEST_P(DagEngineTest, VertexPoolIsReusedAcrossRuns) {
  for (int run = 0; run < 3; ++run) {
    auto [root, final_v] = engine_.make();
    root->body = [] {
      fork2([] {}, [] {});
    };
    engine_.add(root);
    engine_.add(final_v);
    exec_.run_all(engine_);
  }
  // 3 runs x 4 vertices each, but the pool caps distinct cells at one
  // magazine refill batch — reuse, not growth, across runs.
  EXPECT_EQ(engine_.stats().vertices_created.load(), 12u);
  EXPECT_LE(engine_.pooled_vertices(), 16u);
  EXPECT_EQ(engine_.live_vertices(), 0u);
  const pool_stats vp = pools_.totals();
  EXPECT_GT(vp.recycles, 0u) << "later runs must reuse recycled cells";
}

TEST_P(DagEngineTest, CounterObjectsAreRecycledThroughFactory) {
  for (int run = 0; run < 5; ++run) {
    auto [root, final_v] = engine_.make();
    root->body = [] {
      fork2([] { fork2([] {}, [] {}); }, [] {});
    };
    engine_.add(root);
    engine_.add(final_v);
    exec_.run_all(engine_);
  }
  // Each run needs at most 8 live counters; pooling must prevent 5x growth.
  EXPECT_LE(factory_->created(), 8u);
}

TEST_P(DagEngineTest, DeepChainDoesNotRecurse) {
  // 10k sequential finish blocks; the serial executor's queue (not the C++
  // stack) carries the work, so this must not overflow.
  std::atomic<int> steps{0};
  struct recursion {
    static void go(std::atomic<int>* s, int depth) {
      if (depth == 0) return;
      s->fetch_add(1);
      finish_then([] {}, [s, depth] { go(s, depth - 1); });
    }
  };
  auto [root, final_v] = engine_.make();
  root->body = [&steps] { recursion::go(&steps, 10000); };
  engine_.add(root);
  engine_.add(final_v);
  exec_.run_all(engine_);
  EXPECT_EQ(steps.load(), 10000);
}

INSTANTIATE_TEST_SUITE_P(AllCounters, DagEngineTest,
                         ::testing::Values("faa", "locked", "snzi:2", "dyn:1",
                                           "dyn:50"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& ch : name) {
                             if (ch == ':') ch = '_';
                           }
                           return name;
                         });

TEST(DagEngineTls, CurrentVertexIsNullOutsideExecution) {
  EXPECT_EQ(dag_engine::current_vertex(), nullptr);
  EXPECT_EQ(dag_engine::current_engine(), nullptr);
}

TEST(DagEngineTls, CurrentVertexIsSetDuringBody) {
  serial_executor exec;
  auto factory = make_counter_factory("dyn:1");
  dag_engine engine(*factory, exec);
  auto [root, final_v] = engine.make();
  vertex* seen = nullptr;
  vertex* root_ptr = root;
  root->body = [&seen] { seen = dag_engine::current_vertex(); };
  engine.add(root);
  engine.add(final_v);
  exec.run_all(engine);
  EXPECT_EQ(seen, root_ptr);
  EXPECT_EQ(dag_engine::current_vertex(), nullptr);
}

}  // namespace
}  // namespace spdag
