// Figure 13 (appendix C.2): the NUMA-policy study, SUBSTITUTED.
//
// The paper reruns Figure 8 under two NUMA page policies (round-robin
// interleaving vs first-touch) and finds "no significant effect". This
// container has a single memory domain, so the same knob is unavailable;
// what the NUMA policy actually varies is *where counter nodes live relative
// to the workers touching them* and how allocation requests batch. We turn
// the nearest available knob with the same mechanism: the slab block size
// of the pool registry that in-counter nodes (and vertices/dec-pairs) are
// carved from — tiny blocks force frequent upstream allocations (the
// "remote/unbatched" end), large blocks amortize them (the "local/batched"
// end). The paper-shaped claim to check is the same: allocation placement
// policy does not significantly move fanin throughput. The substitution is
// documented in DESIGN.md section 4.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "harness/bench_runner.hpp"
#include "harness/workloads.hpp"
#include "incounter/factory.hpp"
#include "dag/engine.hpp"
#include "sched/scheduler.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

namespace {

using namespace spdag;

void register_config(std::size_t block_bytes, std::size_t workers,
                     std::uint64_t n, int runs) {
  const std::string name = "fig13/fanin/dyn/block:" + std::to_string(block_bytes) +
                           "/proc:" + std::to_string(workers);
  benchmark::RegisterBenchmark(name.c_str(), [=](benchmark::State& st) {
    slab_pool_registry pools(block_bytes);
    incounter_config cfg;
    cfg.grow_threshold = 100;
    incounter_factory factory(cfg, &pools);
    scheduler sched(scheduler_config{workers});
    dag_engine engine(factory, sched, {.pools = &pools});

    auto once = [&] {
      auto [root, final_v] = engine.make();
      root->body = [n] {
        finish_then([n] {
          struct rec {
            static void go(std::uint64_t m) {
              if (m >= 2) {
                fork2([m] { go(m / 2); }, [m] { go(m - m / 2); });
              }
            }
          };
          rec::go(n);
        }, [] {});
      };
      sched.run(engine, root, final_v);
    };
    once();
    double wall_sum_s = 0;
    for (auto _ : st) {
      wall_timer t;
      once();
      const double el = t.elapsed_s();
      st.SetIterationTime(el);
      wall_sum_s += el;
    }
    const double ops = static_cast<double>(harness::counter_ops(n));
    st.counters["ops/s/core"] = benchmark::Counter(
        ops / static_cast<double>(workers),
        benchmark::Counter::kIsIterationInvariantRate);
    harness::json_add_rate(name, pools.spec(), workers, runs, ops, wall_sum_s,
                           static_cast<double>(st.iterations()));
  })
      ->UseManualTime()
      ->Iterations(runs);
}

}  // namespace

int main(int argc, char** argv) {
  options opts(argc, argv);
  const auto common = harness::read_common(opts, /*default_n=*/1 << 17);
  harness::json_open(opts, "fig13_numa_policy");

  // Allocation-batching extremes plus the default.
  const std::vector<std::size_t> block_sizes{1 << 12, 1 << 16, 1 << 20};

  for (std::size_t block : block_sizes) {
    for (std::size_t p : harness::worker_sweep(common.max_proc, /*points=*/4)) {
      register_config(block, p, common.n, common.runs);
    }
  }

  std::printf("# fig13 (substituted): allocation-policy ablation for the NUMA "
              "study; expect no significant throughput difference across "
              "slab block sizes (paper: no significant NUMA effect)\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return harness::json_write();
}
