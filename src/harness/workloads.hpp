#pragma once
// The paper's benchmark workloads (section 5, Figures 6 and 7).
//
// fanin(n):      n leaf tasks, all synchronizing at a single finish block —
//                one dependency counter absorbs n increments/decrements, the
//                worst case for a centralized counter.
// indegree2(n):  the same task count, but every pair of asyncs gets its own
//                finish block, so every counter has indegree 2 — the worst
//                case for per-counter allocation cost.
//
// Both take optional per-leaf busy work (the granularity study, appendix
// C.3; "each unit of dummy work takes approximately one nanosecond").

#include <cstdint>

#include "sched/runtime.hpp"
#include "util/histogram.hpp"

namespace spdag::harness {

// Runs one fanin computation of n leaves to completion on rt. The fan-out
// is built by the shared parallel_for machinery (one code path with the
// benches and apps): `batch` false uses the fork2 splitter (one counter
// increment per spawn), true the blocked spawn_batch builder (one batched
// increment per 32 children — the amortized path counter_ops_per_edge
// measures).
void fanin(runtime& rt, std::uint64_t n, std::uint64_t work_ns = 0,
           bool batch = false);

// Runs one indegree-2 computation of n leaves to completion on rt.
void indegree2(runtime& rt, std::uint64_t n, std::uint64_t work_ns = 0);

// fanout(consumers): ONE producer completes one future while `consumers`
// parallel tasks register against it — the mirror image of fanin, and the
// worst case for a centralized waiter list (the out-set benchmark's
// workload). `producer_ns` delays the completion so registrations pile up
// against the pending future (with 0, multi-worker runs complete almost
// immediately and most consumers take the already-ready bypass);
// `work_ns` is per-consumer busy work after delivery. Returns the sum the
// consumers accumulated (== consumers, the produced value is 1) so callers
// can assert exactly-once delivery.
std::uint64_t fanout(runtime& rt, std::uint64_t consumers,
                     std::uint64_t work_ns = 0, std::uint64_t producer_ns = 0);

// Timing sidecar for fanout_timed: how long the broadcast itself took.
struct fanout_timing {
  // Wall time from the producer's complete() call (finalize start) to the
  // LAST consumer observing its delivery — the latency the parallel drain
  // walk is built to cut on deep out-set trees.
  double finalize_to_last_s = 0;
};

// fanout with broadcast-latency instrumentation: same workload and return
// value, but each consumer stamps its delivery time and `timing` (if
// non-null) receives finalize-to-last-delivery wall time. `hist` (if
// non-null) additionally records every consumer's finalize-to-delivery
// latency, giving the distribution (p50/p95/p99) rather than just the
// worst case. The per-consumer clock read makes it slightly slower than
// fanout(); use fanout() when only throughput matters. Pair with a
// deep-broadcast out-set spec ("tree:<f>:<t>:<scatter>") to measure the
// finalize walk itself.
std::uint64_t fanout_timed(runtime& rt, std::uint64_t consumers,
                           std::uint64_t work_ns, std::uint64_t producer_ns,
                           fanout_timing* timing,
                           latency_histogram* hist = nullptr);

// future_churn(n): n INDEPENDENT futures, each created, completed and
// destroyed by its own producer/consumer pair — the allocation worst case
// for the future machinery (one future_state + out-set + waiter record +
// four vertices per iteration), the future-side analogue of indegree2's
// counter churn. Under `alloc:malloc` every iteration hits the heap; under
// `alloc:pool` the slab pools absorb the storm after warm-up. Returns the
// sum of delivered values (== n) so callers can assert exactly-once
// delivery.
std::uint64_t future_churn(runtime& rt, std::uint64_t n,
                           std::uint64_t work_ns = 0);

// future_churn with per-future completion-to-delivery latency recorded into
// `hist`: the producer stamps its clock INTO the future's value and the
// consumer records the delta on delivery — zero extra allocation per
// iteration. Returns the number of deliveries (== n) for the exactly-once
// check.
std::uint64_t future_churn_timed(runtime& rt, std::uint64_t n,
                                 std::uint64_t work_ns,
                                 latency_histogram* hist);

// Parallel Fibonacci on the sp-dag (the paper's running example, Figure 4).
// Exponential work; use small n. Returns fib(n).
std::uint64_t fib(runtime& rt, unsigned n);

// The number of dependency-counter operations (arrives + departs on finish
// counters) a workload of n leaves performs; used for throughput reporting.
std::uint64_t counter_ops(std::uint64_t n);

// The number of out-set operations (registrations + deliveries) a fanout
// workload of n consumers performs.
std::uint64_t outset_ops(std::uint64_t n);

// The number of futures a future_churn workload of n iterations cycles
// through (create + complete + destroy); used for throughput reporting.
std::uint64_t churn_futures(std::uint64_t n);

}  // namespace spdag::harness
