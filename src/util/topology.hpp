#pragma once
// Hardware topology helpers: core counts and best-effort thread pinning.
//
// The paper's artifact uses hwloc to pin workers; inside this reproduction
// pinning is best-effort (pthread affinity where available, no-op elsewhere)
// because container environments often restrict affinity masks.

#include <cstddef>

namespace spdag {

// Number of hardware threads visible to this process (>= 1).
std::size_t hardware_core_count() noexcept;

// Worker counts to sweep in scalability benchmarks: 1, 2, ... up to
// max_workers, thinned to at most `points` entries. When the host has fewer
// hardware threads than max_workers the extra workers are oversubscribed
// (documented in EXPERIMENTS.md).
// Returns an increasing sequence ending at max_workers.
std::size_t pin_current_thread(std::size_t core_index) noexcept;

// True if the last pin attempt on this thread succeeded (diagnostics).
bool pinning_supported() noexcept;

}  // namespace spdag
