// Domain example: blocked wavefront dynamic programming (longest common
// subsequence length) using STRUCTURED FUTURES on the sp-dag.
//
// The dependency pattern is not series-parallel: block (i, j) needs blocks
// (i-1, j) and (i, j-1), a grid dag. Structured futures express it while
// keeping every task under one finish block: each block owns a future its
// successors consume, and completion order falls out of the data flow.
// This exercises the extension direction named in the paper's conclusion
// ("models of concurrency ... based on futures").
//
// Usage: wavefront_lcs [-len 2048] [-block 128] [-proc P] [-counter dyn]

#include <cstdio>
#include <string>
#include <vector>

#include "dag/future.hpp"
#include "dag/parallel_for.hpp"
#include "sched/runtime.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace spdag;

struct lcs_grid {
  const std::string* a;
  const std::string* b;
  std::size_t block;
  std::size_t blocks_i, blocks_j;
  // dp table with a guard row/column of zeros.
  std::vector<std::vector<std::uint32_t>>* dp;
  std::vector<future<int>>* done;  // one per block, row-major

  future<int>& fut(std::size_t bi, std::size_t bj) const {
    return (*done)[bi * blocks_j + bj];
  }

  // Fills the dp cells of block (bi, bj) serially; predecessors' cells are
  // complete by the time this runs.
  void compute_block(std::size_t bi, std::size_t bj) const {
    const std::size_t i_lo = bi * block + 1;
    const std::size_t i_hi = std::min(i_lo + block, a->size() + 1);
    const std::size_t j_lo = bj * block + 1;
    const std::size_t j_hi = std::min(j_lo + block, b->size() + 1);
    auto& t = *dp;
    for (std::size_t i = i_lo; i < i_hi; ++i) {
      for (std::size_t j = j_lo; j < j_hi; ++j) {
        t[i][j] = ((*a)[i - 1] == (*b)[j - 1])
                      ? t[i - 1][j - 1] + 1
                      : std::max(t[i - 1][j], t[i][j - 1]);
      }
    }
  }

  // Runs block (bi, bj) once its predecessors' futures resolve, then
  // completes its own future. Must be the last dag action of the caller.
  // Captures `this` by pointer (vertex bodies have a 64-byte inline budget),
  // so the grid must outlive the run.
  void schedule_block(std::size_t bi, std::size_t bj) const {
    const lcs_grid* g = this;
    auto run = [g, bi, bj] {
      g->compute_block(bi, bj);
      g->fut(bi, bj).complete(1, dag_engine::current_engine());
    };
    if (bi == 0 && bj == 0) {
      run();
    } else if (bi == 0) {
      future_then(fut(bi, bj - 1), [run](int) mutable { run(); });
    } else if (bj == 0) {
      future_then(fut(bi - 1, bj), [run](int) mutable { run(); });
    } else {
      // Join of two futures: chain the waits.
      const future<int> up = fut(bi - 1, bj);
      future_then(fut(bi, bj - 1), [up, run](int) mutable {
        future_then(up, [run](int) mutable { run(); });
      });
    }
  }
};

std::uint32_t lcs_serial(const std::string& a, const std::string& b) {
  std::vector<std::vector<std::uint32_t>> dp(
      a.size() + 1, std::vector<std::uint32_t>(b.size() + 1, 0));
  for (std::size_t i = 1; i <= a.size(); ++i) {
    for (std::size_t j = 1; j <= b.size(); ++j) {
      dp[i][j] = (a[i - 1] == b[j - 1]) ? dp[i - 1][j - 1] + 1
                                        : std::max(dp[i - 1][j], dp[i][j - 1]);
    }
  }
  return dp[a.size()][b.size()];
}

std::string random_dna(std::size_t len, std::uint64_t seed) {
  static const char alphabet[] = "ACGT";
  xoshiro256 rng(seed);
  std::string s(len, 'A');
  for (auto& c : s) c = alphabet[rng.below(4)];
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  options opts(argc, argv);
  const std::size_t len = static_cast<std::size_t>(opts.get_int("len", 2048));
  const std::size_t block = static_cast<std::size_t>(opts.get_int("block", 128));
  const std::size_t procs = static_cast<std::size_t>(opts.get_int("proc", 0));
  const std::string counter = opts.get_string("counter", "dyn");

  const std::string a = random_dna(len, 1);
  const std::string b = random_dna(len, 2);

  wall_timer serial_timer;
  const std::uint32_t expected = lcs_serial(a, b);
  const double serial_s = serial_timer.elapsed_s();

  std::vector<std::vector<std::uint32_t>> dp(
      len + 1, std::vector<std::uint32_t>(len + 1, 0));
  const std::size_t nblocks = (len + block - 1) / block;
  std::vector<future<int>> done(nblocks * nblocks);
  for (auto& f : done) f = future<int>::make();

  lcs_grid grid{&a, &b, block, nblocks, nblocks, &dp, &done};

  runtime rt(runtime_config{procs, counter});
  wall_timer par_timer;
  const lcs_grid* g = &grid;
  rt.run([g, nblocks] {
    // Launch one scheduling task per block; each gates itself on its
    // predecessors' futures. Grain 1 so each launch owns its vertex.
    parallel_for(0, nblocks * nblocks, 1, [g, nblocks](std::size_t k) {
      g->schedule_block(k / nblocks, k % nblocks);
    });
  });
  const double par_s = par_timer.elapsed_s();

  const std::uint32_t got = dp[len][len];
  std::printf("LCS of two %zu-char strings, %zux%zu blocks of %zu, "
              "%zu workers, counter %s\n",
              len, nblocks, nblocks, block, rt.workers(), counter.c_str());
  std::printf("serial:    %u in %.4fs\n", expected, serial_s);
  std::printf("wavefront: %u in %.4fs (%s)\n", got, par_s,
              got == expected ? "correct" : "WRONG");
  return got == expected ? 0 : 1;
}
