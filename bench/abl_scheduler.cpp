// Ablation A5: scheduler substrate — concurrent Chase-Lev deques ("ws")
// versus private deques with explicit steal requests ("private", the
// PPoPP'13 algorithm the reproduced paper's evaluation ran on).
//
// The paper's claims are about the counter, not the scheduler; this
// ablation checks that the counter ranking (Figure 8's shape) is robust to
// swapping the scheduling substrate, and reports the schedulers' own steal
// statistics for context.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "harness/bench_runner.hpp"
#include "harness/workloads.hpp"
#include "sched/runtime.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace spdag;
  options opts(argc, argv);
  harness::json_open(opts, "abl_scheduler");
  const std::uint64_t n = static_cast<std::uint64_t>(opts.get_int("n", 1 << 16));
  const std::size_t procs = static_cast<std::size_t>(opts.get_int("proc", 2));
  const int runs = static_cast<int>(opts.get_int("runs", 3));
  const bool csv = opts.get_bool("csv", false);

  const std::vector<std::string> scheds{"ws", "private"};
  const std::vector<std::string> algos{"faa", "snzi:4", "dyn"};
  const std::vector<std::string> workloads{"fanin", "indegree2"};

  std::printf("# abl_scheduler: counter ranking across scheduler substrates, "
              "n=%llu at proc=%zu\n",
              static_cast<unsigned long long>(n), procs);

  result_table table(
      {"workload", "sched", "algo", "mean_s", "ops/s/core", "steals"});
  for (const auto& workload : workloads) {
    for (const auto& sched : scheds) {
      for (const auto& algo : algos) {
        runtime_config cfg{procs, algo};
        cfg.sched = sched;
        runtime rt(cfg);
        auto once = [&] {
          if (workload == "fanin") {
            harness::fanin(rt, n);
          } else {
            harness::indegree2(rt, n);
          }
        };
        once();  // warm-up
        rt.sched().reset_totals();
        run_stats times;
        for (int r = 0; r < runs; ++r) {
          wall_timer t;
          once();
          times.add(t.elapsed_s());
        }
        const double ops = static_cast<double>(harness::counter_ops(n));
        table.add_row(
            {workload, sched, algo, result_table::num(times.mean(), 4),
             result_table::num(ops / times.mean() / static_cast<double>(procs), 0),
             std::to_string(rt.sched().totals().steals)});
        if (harness::json_enabled()) {
          harness::json_record rec;
          rec.name = "abl_scheduler/";
          rec.name += workload;
          rec.name += "/";
          rec.name += sched;
          rec.name += "/";
          rec.name += algo;
          rec.spec = algo;
          rec.sched = sched;
          rec.proc = procs;
          rec.runs = runs;
          rec.wall_s = times.mean();
          rec.ops_per_s = times.mean() > 0 ? ops / times.mean() : 0.0;
          rec.sched_totals = rt.sched().totals();
          harness::json_add(std::move(rec));
        }
      }
    }
  }
  table.print(std::cout);
  if (csv) table.print_csv(std::cout);
  return harness::json_write();
}
