// Figure 9: fanin benchmark varying the number of operations n.
//
// Paper setup: in-counter only, n from ~2^16 up to 5e8, at core counts
// {1, 10, 20, 30, 40}. The claim under test (Theorem 4.9 empirically): the
// per-core throughput is essentially independent of n — within a factor 2 of
// the single-core Fetch & Add counter for all sizes, dipping only when n is
// too small to feed the cores.
//
// Scale knobs: -n / SPDAG_N sets the LARGEST n in the sweep (default 1<<19);
// the sweep runs n, n/4, n/16, n/64. -proc / SPDAG_PROC, -runs / SPDAG_RUNS.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "harness/bench_runner.hpp"
#include "harness/workloads.hpp"
#include "sched/runtime.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

namespace {

using namespace spdag;

void register_config(std::size_t workers, std::uint64_t n, int runs) {
  const std::string name = "fig09/fanin/dyn/proc:" + std::to_string(workers) +
                           "/n:" + std::to_string(n);
  benchmark::RegisterBenchmark(name.c_str(), [=](benchmark::State& st) {
    runtime rt(runtime_config{workers, "dyn"});
    harness::fanin(rt, n);
    double wall_sum_s = 0;
    for (auto _ : st) {
      wall_timer t;
      harness::fanin(rt, n);
      const double el = t.elapsed_s();
      st.SetIterationTime(el);
      wall_sum_s += el;
    }
    const double ops = static_cast<double>(harness::counter_ops(n));
    st.counters["ops/s/core"] = benchmark::Counter(
        ops / static_cast<double>(workers),
        benchmark::Counter::kIsIterationInvariantRate);
    harness::json_add_rate(name, "dyn", workers, runs, ops, wall_sum_s,
                           static_cast<double>(st.iterations()));
  })
      ->UseManualTime()
      ->Iterations(runs);
}

}  // namespace

int main(int argc, char** argv) {
  options opts(argc, argv);
  const auto common = harness::read_common(opts, /*default_n=*/1 << 19);
  harness::json_open(opts, "fig09_size_invariance");

  std::vector<std::uint64_t> sizes;
  for (std::uint64_t n = common.n; n >= 1024 && sizes.size() < 4; n /= 4) {
    sizes.push_back(n);
  }
  std::sort(sizes.begin(), sizes.end());

  for (std::size_t p : harness::worker_sweep(common.max_proc, /*points=*/5)) {
    for (std::uint64_t n : sizes) register_config(p, n, common.runs);
  }

  std::printf(
      "# fig09: fanin size-invariance, n in {");
  for (std::uint64_t n : sizes) std::printf(" %llu", static_cast<unsigned long long>(n));
  std::printf(" }, max_proc=%zu (paper: n up to 5e8, 40 cores)\n", common.max_proc);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return harness::json_write();
}
