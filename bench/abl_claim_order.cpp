// Ablation A2: the decrement-handle claim-order design choice.
//
// The paper orders each handle pair [higher-in-tree, lower-in-tree] and has
// the first claimer take the higher one — the invariant behind Lemma 4.6
// ("priority should be given to decrementing nodes closer to the root").
// This bench compares:
//   ordered     the paper's policy (reclamation on, the default)
//   ordered-nr  the paper's policy with reclamation off (isolates the
//               reclamation effect from the ordering effect)
//   random-nr   first claimer takes a random slot (reclamation must be off:
//               randomizing voids Lemma 4.6, making node recycling unsound —
//               itself a reproduction of why the invariant matters)
//
// Expected shape: ordered >= random on throughput (more phase changes climb
// further when low nodes drain first), and ordered-with-reclaim stays flat
// on memory where the others grow.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "harness/bench_runner.hpp"
#include "harness/workloads.hpp"
#include "sched/runtime.hpp"
#include "snzi/stats.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace spdag;
  options opts(argc, argv);
  harness::json_open(opts, "abl_claim_order");
  const std::uint64_t n = static_cast<std::uint64_t>(opts.get_int("n", 1 << 16));
  const std::size_t procs = static_cast<std::size_t>(opts.get_int("proc", 2));
  const int runs = static_cast<int>(opts.get_int("runs", 3));
  const bool csv = opts.get_bool("csv", false);

  struct policy {
    std::string label;
    std::string counter;
    bool randomize;
  };
  const std::vector<policy> policies{
      {"ordered", "dyn:1", false},
      {"ordered-nr", "dyn:1:noreclaim", false},
      {"random-nr", "dyn:1:noreclaim", true},
  };

  std::printf("# abl_claim_order: fanin n=%llu at proc=%zu, threshold 1\n",
              static_cast<unsigned long long>(n), procs);

  result_table table({"policy", "mean_s", "ops/s/core", "depart_hops/op",
                      "pair_allocs"});
  for (const policy& p : policies) {
    snzi::tree_stats stats;
    runtime_config cfg{procs, p.counter, false, &stats};
    cfg.engine_options.randomize_claim_order = p.randomize;
    runtime rt(cfg);
    harness::fanin(rt, n);  // warm-up
    stats.reset();
    run_stats times;
    for (int r = 0; r < runs; ++r) {
      wall_timer t;
      harness::fanin(rt, n);
      times.add(t.elapsed_s());
    }
    const double ops = static_cast<double>(harness::counter_ops(n));
    const double departs = static_cast<double>(stats.departs.load()) +
                           static_cast<double>(stats.root_departs.load());
    const double dec_ops =
        static_cast<double>(rt.engine().stats().signals.load());
    table.add_row(
        {p.label, result_table::num(times.mean(), 4),
         result_table::num(ops / times.mean() / static_cast<double>(procs), 0),
         result_table::num(dec_ops > 0 ? departs / dec_ops : 0, 3),
         std::to_string(stats.grow_allocs.load())});
    if (harness::json_enabled()) {
      harness::json_record rec;
      rec.name = "abl_claim_order/";
      rec.name += p.label;
      rec.spec = p.counter;
      rec.proc = procs;
      rec.runs = runs;
      rec.wall_s = times.mean();
      rec.ops_per_s = times.mean() > 0 ? ops / times.mean() : 0.0;
      rec.extra.emplace_back("depart_hops_per_op",
                             dec_ops > 0 ? departs / dec_ops : 0.0);
      rec.extra.emplace_back("pair_allocs",
                             static_cast<double>(stats.grow_allocs.load()));
      harness::json_add(std::move(rec));
    }
  }
  table.print(std::cout);
  if (csv) table.print_csv(std::cout);
  return harness::json_write();
}
