// Broadcast pipeline: one producer, many consumers, via structured futures.
//
// A "snapshot" future is completed once by a producer and broadcast to a
// wave of consumer stages; each stage derives its own result and a second
// future layer broadcasts a reduced digest to a smaller wave. The waiter
// hand-off runs on the out-set subsystem (src/outset/), so the same program
// can be pointed at the single CAS-list baseline or the grow-on-contention
// tree with one spec string — compare the printed add-retry counts.
//
// Build & run:  ./build/broadcast_pipeline [-consumers 4096] [-workers N]

#include <atomic>
#include <cstdio>
#include <string>

#include "dag/future.hpp"
#include "harness/workloads.hpp"
#include "sched/runtime.hpp"
#include "util/cli.hpp"
#include "util/dummy_work.hpp"
#include "util/timer.hpp"

namespace {

using namespace spdag;

struct pipeline_result {
  std::uint64_t stage1_sum = 0;
  std::uint64_t stage2_sum = 0;
  double seconds = 0;
  outset_totals totals;
};

// Registers `k` consumers against `snapshot`; each consumer folds the value
// into `stage1`, and the last k/8 of them also feed a second broadcast.
void consume_wave(future<std::uint64_t> snapshot,
                  std::atomic<std::uint64_t>* stage1,
                  std::atomic<std::uint64_t>* stage2, std::uint64_t k) {
  if (k >= 2) {
    fork2([=] { consume_wave(snapshot, stage1, stage2, k / 2); },
          [=] { consume_wave(snapshot, stage1, stage2, k - k / 2); });
    return;
  }
  if (k != 1) return;
  // Stage 1: every consumer derives a per-consumer digest from the snapshot.
  future_then(snapshot, [=](std::uint64_t v) {
    stage1->fetch_add(v, std::memory_order_relaxed);
    // Stage 2: a nested producer/consumer pair — each digest is itself a
    // future another task consumes, exercising future churn and pooling.
    fork2_future<std::uint64_t>(
        [v] { return v * 2; },
        [stage2](future<std::uint64_t> digest) {
          future_then(digest, [stage2](std::uint64_t d) {
            stage2->fetch_add(d, std::memory_order_relaxed);
          });
        });
  });
}

pipeline_result run_pipeline(const std::string& outset_spec,
                             std::size_t workers, std::uint64_t consumers) {
  runtime_config cfg{workers, "dyn"};
  cfg.outset = outset_spec;
  runtime rt(cfg);
  pipeline_result r;
  std::atomic<std::uint64_t> stage1{0}, stage2{0};
  auto* s1 = &stage1;
  auto* s2 = &stage2;
  wall_timer t;
  rt.run([s1, s2, consumers] {
    fork2_future<std::uint64_t>(
        [] {
          spin_ns(200'000);  // the producer "computes the snapshot"
          return std::uint64_t{7};
        },
        [s1, s2, consumers](future<std::uint64_t> snapshot) {
          consume_wave(snapshot, s1, s2, consumers);
        });
  });
  r.seconds = t.elapsed_s();
  r.stage1_sum = stage1.load();
  r.stage2_sum = stage2.load();
  r.totals = rt.outsets().totals();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  options opts(argc, argv);
  const std::uint64_t consumers =
      static_cast<std::uint64_t>(opts.get_int("consumers", 1 << 12));
  const std::size_t workers =
      static_cast<std::size_t>(opts.get_int("workers", 4));

  std::printf("broadcast pipeline: 1 producer -> %llu consumers -> %llu "
              "digest futures, %zu workers\n\n",
              static_cast<unsigned long long>(consumers),
              static_cast<unsigned long long>(consumers), workers);

  for (const std::string spec : {"simple", "tree"}) {
    const pipeline_result r = run_pipeline(spec, workers, consumers);
    const bool ok =
        r.stage1_sum == 7 * consumers && r.stage2_sum == 14 * consumers;
    std::printf("outset:%-6s  %.3f ms  stage1=%llu stage2=%llu (%s)\n",
                spec.c_str(), r.seconds * 1e3,
                static_cast<unsigned long long>(r.stage1_sum),
                static_cast<unsigned long long>(r.stage2_sum),
                ok ? "exactly-once OK" : "DELIVERY BUG");
    std::printf("              adds=%llu retries=%llu rejected=%llu "
                "delivered=%llu\n",
                static_cast<unsigned long long>(r.totals.adds),
                static_cast<unsigned long long>(r.totals.add_cas_retries),
                static_cast<unsigned long long>(r.totals.rejected_adds),
                static_cast<unsigned long long>(r.totals.delivered));
  }
  return 0;
}
