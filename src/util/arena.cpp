#include "util/arena.hpp"

// block_arena is fully defined in the header; this TU anchors the library.
namespace spdag {
namespace {
// Sanity: a chunk header plus one cache line must fit in the minimum arena.
static_assert(sizeof(block_arena) <= 2 * cache_line_size);
}  // namespace
}  // namespace spdag
