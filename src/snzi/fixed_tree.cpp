#include "snzi/fixed_tree.hpp"

#include <stdexcept>

namespace spdag::snzi {

fixed_tree::fixed_tree(int depth, std::uint64_t initial_surplus,
                       tree_stats* stats, object_pool* pairs)
    : depth_(depth),
      tree_(0, tree_config{/*grow_threshold=*/1, /*reclaim=*/false, stats,
                           pairs}) {
  if (depth < 0 || depth > 24) {
    throw std::invalid_argument("fixed_tree depth out of range [0, 24]");
  }
  build();
  // The initial surplus lives at the same hashed leaf root_token-style
  // departs will target (key 0), keeping arrive/depart placement matched.
  for (std::uint64_t i = 0; i < initial_surplus; ++i) leaf_for(0)->arrive();
}

void fixed_tree::build() {
  // Grow eagerly, level by level, using the dynamic grow with threshold 1;
  // the final frontier becomes the hashed-placement leaf set.
  std::vector<node*> frontier{tree_.base()};
  for (int level = 0; level < depth_; ++level) {
    std::vector<node*> next;
    next.reserve(frontier.size() * 2);
    for (node* n : frontier) {
      auto [l, r] = n->grow(/*threshold=*/1);
      next.push_back(l);
      next.push_back(r);
    }
    frontier = std::move(next);
  }
  leaves_ = std::move(frontier);
}

void fixed_tree::reset(std::uint64_t initial_surplus) {
  tree_.reset(0);
  build();
  for (std::uint64_t i = 0; i < initial_surplus; ++i) leaf_for(0)->arrive();
}

}  // namespace spdag::snzi
