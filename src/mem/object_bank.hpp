#pragma once
// object_bank<Base>: registry-backed pooling for polymorphic runtime
// objects (dependency counters, out-sets).
//
// The counter and out-set factories used to carry their own object pooling:
// a make_unique per fresh object, a vector<unique_ptr> for ownership, and a
// Treiber stack of retirees. That worked, but it left the factories' own
// allocations — the one malloc the pooled-allocation story didn't cover —
// outside the pool_registry, invisible to its stats and exempt from its
// trim machinery. An object_bank closes that gap: objects are CELLS of a
// registry pool (one pool per concrete geometry, same keying as every other
// runtime structure), the bank tracks them for lifetime ownership, and the
// recycle path stays the same intrusive tagged Treiber stack (T must expose
// `std::atomic<T*> pool_next`).
//
// Homogeneity: a bank serves exactly one concrete type — the first
// emplace<T> binds the pool geometry and destroy function, and every later
// emplace must use the same T (asserted). That mirrors the factories, each
// of which creates a single concrete counter/out-set type.
//
// Lifetime: cells are allocated from the registry and stay LIVE (from the
// pool's point of view) until the bank is destroyed — the free stack parks
// constructed objects for reuse, it never returns their storage. So a
// trim_live() can never retire a slab under a banked object, and the
// stack's pop-side stale `pool_next` read stays a read of live, mapped
// memory guarded by the tagged head. The registry must outlive the bank
// (the runtime already orders registry destruction last).

#include <atomic>
#include <cassert>
#include <cstddef>
#include <mutex>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "mem/registry.hpp"
#include "util/treiber_stack.hpp"

namespace spdag {

template <typename Base>
class object_bank {
 public:
  // `name` keys the backing pool in the registry ("counter", "outset");
  // the concrete geometry is appended by pool_registry::get at first use.
  object_bank(pool_registry& registry, std::string name)
      : registry_(registry), name_(std::move(name)) {}

  ~object_bank() {
    for (Base* obj : all_) destroy_(*pool_.load(std::memory_order_relaxed), obj);
  }

  object_bank(const object_bank&) = delete;
  object_bank& operator=(const object_bank&) = delete;

  // Constructs a T in a registry pool cell and tracks it for the bank's
  // lifetime. Thread-safe. Returns it LIVE (not on the free stack): the
  // caller hands it out, and it comes back later through push().
  template <typename T, typename... Args>
  T* emplace(Args&&... args) {
    static_assert(std::is_base_of_v<Base, T>,
                  "object_bank emplaces derived types only");
    object_pool* p = pool_.load(std::memory_order_acquire);
    if (p == nullptr) {
      std::lock_guard<std::mutex> lock(all_mu_);
      p = pool_.load(std::memory_order_relaxed);
      if (p == nullptr) {
        p = &registry_.get(name_, sizeof(T), alignof(T));
        destroy_ = [](object_pool& pool, Base* b) noexcept {
          pool_delete(pool, static_cast<T*>(b));
        };
        pool_.store(p, std::memory_order_release);
      }
    }
    assert(p->object_bytes() == sizeof(T) &&
           "object_bank is single-geometry: one concrete type per bank");
    T* obj = pool_new<T>(*p, std::forward<Args>(args)...);
    {
      std::lock_guard<std::mutex> lock(all_mu_);
      all_.push_back(obj);
    }
    return obj;
  }

  // Recycle stack: pop a retired object (nullptr when empty) / park one.
  Base* pop() noexcept { return free_.pop(); }
  void push(Base* obj) noexcept { free_.push(obj); }

  // Objects ever constructed (pool effectiveness: created() stops moving
  // once the working set recycles).
  std::size_t created() const {
    std::lock_guard<std::mutex> lock(all_mu_);
    return all_.size();
  }

  // Visits every object ever created (live or parked) — totals() sums.
  template <typename F>
  void for_each(F&& f) const {
    std::lock_guard<std::mutex> lock(all_mu_);
    for (Base* obj : all_) f(*obj);
  }

 private:
  pool_registry& registry_;
  std::string name_;
  std::atomic<object_pool*> pool_{nullptr};
  void (*destroy_)(object_pool&, Base*) noexcept = nullptr;
  treiber_stack<Base> free_;
  mutable std::mutex all_mu_;
  std::vector<Base*> all_;
};

}  // namespace spdag
