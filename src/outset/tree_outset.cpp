#include "outset/tree_outset.hpp"

#include <algorithm>
#include <cassert>

#include "util/rng.hpp"

namespace spdag {

tree_outset::tree_outset(tree_outset_config cfg)
    : cfg_(cfg),
      // A chunk must fit at least one child group (header + fanout nodes),
      // or block_arena::allocate would loop forever growing chunks that can
      // never satisfy the request.
      arena_(std::max<std::size_t>(
          cfg.arena_chunk_bytes,
          cache_line_size * (std::size_t{cfg.fanout} + 1))) {
  assert(cfg_.fanout >= 2 && "a tree out-set needs at least two children");
}

bool tree_outset::add(outset_waiter* w) noexcept {
  tree_node* n = &base_;
  std::uint32_t depth = 0;
  for (;;) {
    outset_waiter* head = n->head.load(std::memory_order_acquire);
    for (;;) {
      if (head == terminated_waiter()) {
        // This node was drained, so the whole out-set is finalizing (only
        // finalize installs the sentinel); the hand-off is the caller's.
        count_rejected();
        return false;
      }
      w->next.store(head, std::memory_order_relaxed);
      if (n->head.compare_exchange_weak(head, w, std::memory_order_release,
                                        std::memory_order_acquire)) {
        count_add();
        return true;
      }
      count_retry();
      // Another consumer hit this cache line in our window — the contention
      // signal. Move down to spread out, unless the depth cap says to stay
      // and fight on this line.
      if (depth < cfg_.max_depth) break;
    }
    tree_node* kids = n->children.load(std::memory_order_acquire);
    if (kids == nullptr) kids = grow(n);
    if (kids == terminated_children()) {
      // finalize sealed this node before any group could be installed; the
      // future is completed and the caller delivers its consumer itself.
      count_rejected();
      return false;
    }
    n = kids + thread_rng().below(cfg_.fanout);
    ++depth;
  }
}

tree_outset::tree_node* tree_outset::grow(tree_node* n) noexcept {
  node_group* g = free_groups_.pop();
  if (g == nullptr) {
    // Fresh group: one header line + fanout node lines, bump-allocated so
    // growth on the registration critical path never calls malloc.
    void* raw = arena_.allocate(
        cache_line_size + cfg_.fanout * sizeof(tree_node), cache_line_size);
    g = ::new (raw) node_group{};
    for (std::uint32_t i = 0; i < cfg_.fanout; ++i) {
      ::new (g->nodes() + i) tree_node{};
    }
  }
  // Pooled groups were scrubbed by reset_node before being pushed.
  tree_node* expected = nullptr;
  if (n->children.compare_exchange_strong(expected, g->nodes(),
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
    return g->nodes();
  }
  free_groups_.push(g);
  return expected;  // the winning group — or the finalizer's sentinel
}

void tree_outset::finalize(waiter_sink sink, void* ctx) {
  finalize_node(&base_, sink, ctx);
}

void tree_outset::finalize_node(tree_node* n, waiter_sink sink, void* ctx) {
  // Seal the children pointer BEFORE draining the list head. The pointer is
  // write-once: either we read an installed group here (and will descend
  // into it), or our sentinel lands and no group can ever be installed —
  // so no add can sneak a waiter under a node we already passed.
  tree_node* kids = n->children.load(std::memory_order_acquire);
  if (kids == nullptr) {
    n->children.compare_exchange_strong(kids, terminated_children(),
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire);
    // On failure a concurrent grow won; `kids` now holds its group.
  }
  outset_waiter* w =
      n->head.exchange(terminated_waiter(), std::memory_order_acq_rel);
  // Stream this node's waiters out before touching descendants: consumers
  // captured near the top of the tree are already running on other workers
  // while deeper nodes drain — the broadcast proceeds in parallel down the
  // tree.
  drain_chain(w, sink, ctx);
  if (kids != nullptr && kids != terminated_children()) {
    for (std::uint32_t i = 0; i < cfg_.fanout; ++i) {
      finalize_node(kids + i, sink, ctx);
    }
  }
}

void tree_outset::reset(waiter_sink sink, void* ctx) {
  reset_node(&base_, sink, ctx);
}

void tree_outset::reset_node(tree_node* n, waiter_sink sink, void* ctx) {
  // Abandoned registrations go back to the pool undelivered.
  scrub_chain(n->head.exchange(nullptr, std::memory_order_relaxed), sink, ctx);
  tree_node* kids = n->children.exchange(nullptr, std::memory_order_relaxed);
  if (kids != nullptr && kids != terminated_children()) {
    for (std::uint32_t i = 0; i < cfg_.fanout; ++i) {
      reset_node(kids + i, sink, ctx);
    }
    free_groups_.push(node_group::from_nodes(kids));
  }
}

std::size_t tree_outset::count_nodes(const tree_node* n, std::uint32_t fanout) {
  std::size_t total = 1;
  const tree_node* kids = n->children.load(std::memory_order_acquire);
  if (kids != nullptr && kids != terminated_children()) {
    for (std::uint32_t i = 0; i < fanout; ++i) {
      total += count_nodes(kids + i, fanout);
    }
  }
  return total;
}

std::size_t tree_outset::depth_below(const tree_node* n, std::uint32_t fanout) {
  std::size_t deepest = 0;
  const tree_node* kids = n->children.load(std::memory_order_acquire);
  if (kids != nullptr && kids != terminated_children()) {
    for (std::uint32_t i = 0; i < fanout; ++i) {
      const std::size_t d = 1 + depth_below(kids + i, fanout);
      if (d > deepest) deepest = d;
    }
  }
  return deepest;
}

std::size_t tree_outset::node_count() const {
  return count_nodes(&base_, cfg_.fanout);
}

std::size_t tree_outset::max_depth() const {
  return depth_below(&base_, cfg_.fanout);
}

std::size_t tree_outset::recycled_group_count() const {
  return free_groups_.size_slow();
}

}  // namespace spdag
