#pragma once
// pool_registry: get-or-create directory of object_pools keyed by
// (name, cell size), selected by spec string through runtime_config —
// mirroring the in-counter/out-set factory pattern.
//
// Spec strings (accepted with or without the "alloc:" prefix):
//   "malloc"          every pool is a malloc_pool passthrough (baseline)
//   "pool"            slab pools with the default slab block size
//   "pool:<bytes>"    slab pools with the given upstream block size
//                     (bytes in [4096, 1<<24])
// Throws std::invalid_argument on anything else.
//
// One registry per runtime: the runtime constructs it first and destroys it
// last, so every structure above it (engine, counter factory, out-set
// factory) can cache `object_pool&` references for its lifetime. A
// process-wide default registry (slab pools) backs engines and futures
// created outside any runtime.

#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "mem/pool.hpp"

namespace spdag {

// One row of a registry stats snapshot.
struct pool_registry_row {
  std::string name;          // composed key, e.g. "future_state:48:a8"
  std::size_t object_bytes;
  pool_stats stats;
};

class pool_registry {
 public:
  virtual ~pool_registry() = default;

  // Thread-safe get-or-create. Pools are keyed by name, cell size AND
  // alignment, so one logical name used at several geometries
  // (future_state<T> across Ts, out-set groups across fanouts) maps to one
  // pool per geometry. The reference stays valid until the registry dies.
  // Callers on hot paths should cache it (the lookup takes a mutex).
  object_pool& get(const std::string& name, std::size_t bytes,
                   std::size_t align);

  // Snapshot of every pool, creation order.
  std::vector<pool_registry_row> rows() const;

  // All pools summed — the headline bench stat.
  pool_stats totals() const;

  // The spec string this registry was built from ("malloc", "pool", ...).
  virtual std::string spec() const = 0;

 protected:
  virtual std::unique_ptr<object_pool> create(std::string name,
                                              std::size_t bytes,
                                              std::size_t align) = 0;

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<object_pool>> pools_;
};

class malloc_pool_registry final : public pool_registry {
 public:
  std::string spec() const override { return "malloc"; }

 protected:
  std::unique_ptr<object_pool> create(std::string name, std::size_t bytes,
                                      std::size_t align) override;
};

class slab_pool_registry final : public pool_registry {
 public:
  explicit slab_pool_registry(std::size_t slab_bytes = 0) noexcept
      : slab_bytes_(slab_bytes) {}  // 0 = slab_cache's default
  std::string spec() const override;

 protected:
  std::unique_ptr<object_pool> create(std::string name, std::size_t bytes,
                                      std::size_t align) override;

 private:
  std::size_t slab_bytes_;
};

// Parses an alloc spec (see file comment).
std::unique_ptr<pool_registry> make_pool_registry(const std::string& spec);

// Process-wide slab registry used by engines, counters, and futures that
// were not handed an explicit registry.
pool_registry& default_pool_registry();

}  // namespace spdag
