#pragma once
// inline_function<Sig, N>: a move-only callable with inline storage.
//
// Sp-dag vertex bodies are tiny closures created and destroyed millions of
// times per second; std::function's possible heap allocation would dominate
// the cost of the counter operations we are trying to measure. This type
// stores the closure inline (static_assert'ed to fit) and dispatches through
// a single function pointer.

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace spdag {

template <typename Signature, std::size_t N = 56>
class inline_function;

template <typename R, typename... Args, std::size_t N>
class inline_function<R(Args...), N> {
 public:
  inline_function() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, inline_function> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  inline_function(F&& f) {  // NOLINT(google-explicit-constructor): mirrors std::function
    emplace(std::forward<F>(f));
  }

  inline_function(inline_function&& other) noexcept { move_from(other); }

  inline_function& operator=(inline_function&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  inline_function(const inline_function&) = delete;
  inline_function& operator=(const inline_function&) = delete;

  ~inline_function() { reset(); }

  template <typename F>
  void emplace(F&& f) {
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= N, "closure too large for inline_function storage");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "closure over-aligned for inline_function storage");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "closure must be nothrow-movable");
    reset();
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
    vtable_ = &vtable_for<Fn>;
  }

  void reset() noexcept {
    if (vtable_ != nullptr) {
      vtable_->destroy(storage_);
      vtable_ = nullptr;
    }
  }

  explicit operator bool() const noexcept { return vtable_ != nullptr; }

  R operator()(Args... args) {
    return vtable_->invoke(storage_, std::forward<Args>(args)...);
  }

 private:
  struct vtable {
    R (*invoke)(void*, Args&&...);
    void (*destroy)(void*) noexcept;
    void (*relocate)(void* dst, void* src) noexcept;  // move-construct + destroy src
  };

  template <typename Fn>
  static constexpr vtable vtable_for = {
      [](void* s, Args&&... args) -> R {
        return (*static_cast<Fn*>(s))(std::forward<Args>(args)...);
      },
      [](void* s) noexcept { static_cast<Fn*>(s)->~Fn(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
        static_cast<Fn*>(src)->~Fn();
      },
  };

  void move_from(inline_function& other) noexcept {
    vtable_ = other.vtable_;
    if (vtable_ != nullptr) {
      vtable_->relocate(storage_, other.storage_);
      other.vtable_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[N];
  const vtable* vtable_ = nullptr;
};

}  // namespace spdag
