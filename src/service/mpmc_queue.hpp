#pragma once
// Michael–Scott MPMC queue over an index-linked node arena — the
// submission hand-off of the resident dag_service.
//
// Many client threads push concurrently; the service loop (and, at
// shutdown, whoever drains) pops. This is the classic two-CAS non-blocking
// queue of Michael & Scott (PODC'96), with one twist matched to this
// repo's memory discipline: nodes live in a grow-only chunked arena and
// links/head/tail are {index:32, tag:32} words packed into one 64-bit
// atomic. The 32-bit tag is the original algorithm's modification counter,
// which makes every CAS ABA-safe without a 128-bit CAS or hazard pointers.
//
// Stale-read safety: the slab pools reclaim memory under the epoch protocol
// (src/mem/epoch.hpp — pinned readers, 2-epoch limbo delay). The queue does
// NOT need that machinery, and the reason is worth stating precisely: its
// nodes recycle through an internal tagged Treiber free list but their
// storage is never unmapped before the queue is destroyed (chunks are freed
// only in the destructor, after every user thread is gone). A lagging
// thread that dereferences a recycled node therefore reads stale-but-MAPPED
// memory, and the tag-checked CAS it performs next rejects the stale value.
// That is the same end state the epoch protocol buys the pools — no read of
// unmapped memory, no acted-upon stale value — reached here by bounding the
// arena instead of delaying the unmap, which is the right trade for a
// structure whose node population is capped by admission control anyway.
//
// The cap is explicit: the arena holds at most MaxChunks * 256 nodes, and
// exhausting it is an ADMISSION FAILURE, not an exception — push() returns
// false (counted in failed_pushes()) and the caller surfaces the reject.
// A queue that reaches its high-water mark below the cap stops allocating
// entirely, recycling through the free list.
//
// The queue stores plain pointers; it does not own what they point at.

#include <array>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <mutex>
#include <new>

namespace spdag {

template <typename T, std::size_t MaxChunks = 4096>
class mpmc_queue {
 public:
  mpmc_queue() {
    // Seed the arena and install the initial dummy node (MS queue shape:
    // head always points at a dummy; head == tail means empty). The first
    // allocation cannot fail: the arena is empty and MaxChunks >= 1.
    static_assert(MaxChunks >= 1, "mpmc_queue needs at least one chunk");
    const std::uint32_t dummy = alloc_node();
    assert(dummy != null_idx);
    node_at(dummy)->next.store(pack(null_idx, 0), std::memory_order_relaxed);
    head_.store(pack(dummy, 0), std::memory_order_relaxed);
    tail_.store(pack(dummy, 0), std::memory_order_relaxed);
  }

  mpmc_queue(const mpmc_queue&) = delete;
  mpmc_queue& operator=(const mpmc_queue&) = delete;

  ~mpmc_queue() {
    for (auto& slot : chunks_) delete[] slot.load(std::memory_order_relaxed);
  }

  // Enqueues `value`. Returns false — without blocking, throwing, or
  // touching the queue — when the node arena is exhausted (the MaxChunks
  // cap); the reject is tallied in failed_pushes() and the caller decides
  // how to surface it (the dag_service reports it as an admission reject).
  [[nodiscard]] bool push(T* value) {
    const std::uint32_t n = alloc_node();
    if (n == null_idx) {
      failed_pushes_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    node* nn = node_at(n);
    nn->value.store(value, std::memory_order_relaxed);
    nn->next.store(pack(null_idx, tag_of(nn->next.load(
                                      std::memory_order_relaxed)) + 1),
                   std::memory_order_relaxed);
    for (;;) {
      const std::uint64_t t = tail_.load(std::memory_order_acquire);
      node* tn = node_at(idx_of(t));
      const std::uint64_t next = tn->next.load(std::memory_order_acquire);
      if (t != tail_.load(std::memory_order_acquire)) continue;
      if (idx_of(next) == null_idx) {
        // Tail is really last: link the new node behind it.
        std::uint64_t expect = next;
        if (tn->next.compare_exchange_strong(expect,
                                             pack(n, tag_of(next) + 1),
                                             std::memory_order_acq_rel)) {
          // Swing tail (best effort; a helper may have done it already).
          std::uint64_t t2 = t;
          tail_.compare_exchange_strong(t2, pack(n, tag_of(t) + 1),
                                        std::memory_order_acq_rel);
          size_.fetch_add(1, std::memory_order_release);
          pushes_.fetch_add(1, std::memory_order_relaxed);
          return true;
        }
      } else {
        // Tail lagging: help swing it forward, then retry.
        std::uint64_t t2 = t;
        tail_.compare_exchange_strong(t2, pack(idx_of(next), tag_of(t) + 1),
                                      std::memory_order_acq_rel);
      }
    }
  }

  // Pops the oldest value, or nullptr when the queue is (momentarily) empty.
  T* pop() {
    for (;;) {
      const std::uint64_t h = head_.load(std::memory_order_acquire);
      const std::uint64_t t = tail_.load(std::memory_order_acquire);
      node* hn = node_at(idx_of(h));
      const std::uint64_t next = hn->next.load(std::memory_order_acquire);
      if (h != head_.load(std::memory_order_acquire)) continue;
      if (idx_of(h) == idx_of(t)) {
        if (idx_of(next) == null_idx) return nullptr;  // empty
        // Tail lagging behind a completed push: help, then retry.
        std::uint64_t t2 = t;
        tail_.compare_exchange_strong(t2, pack(idx_of(next), tag_of(t) + 1),
                                      std::memory_order_acq_rel);
        continue;
      }
      // Read the value BEFORE the CAS (the successor may be recycled the
      // moment head moves past it). If the node was already recycled this
      // read is stale garbage — mapped, thanks to the arena — and the
      // tag-checked CAS below rejects it. Atomic relaxed: the read may race
      // free_node()/push() writes to a recycled node by design.
      T* value = node_at(idx_of(next))->value.load(std::memory_order_relaxed);
      std::uint64_t h2 = h;
      if (head_.compare_exchange_strong(h2, pack(idx_of(next), tag_of(h) + 1),
                                        std::memory_order_acq_rel)) {
        free_node(idx_of(h));  // the old dummy
        size_.fetch_sub(1, std::memory_order_release);
        pops_.fetch_add(1, std::memory_order_relaxed);
        return value;
      }
    }
  }

  // Lock-free emptiness/size probe; exact only at quiescence.
  bool empty() const noexcept {
    return size_.load(std::memory_order_acquire) == 0;
  }
  std::size_t approx_size() const noexcept {
    return size_.load(std::memory_order_acquire);
  }

  std::uint64_t pushes() const noexcept {
    return pushes_.load(std::memory_order_relaxed);
  }
  std::uint64_t pops() const noexcept {
    return pops_.load(std::memory_order_relaxed);
  }
  // push() calls rejected because the node arena hit its MaxChunks cap.
  std::uint64_t failed_pushes() const noexcept {
    return failed_pushes_.load(std::memory_order_relaxed);
  }
  // Nodes ever allocated (the arena's high-water mark; tests pin that a
  // bounded-inflight service stops growing it).
  std::size_t nodes_allocated() const noexcept {
    return allocated_.load(std::memory_order_acquire);
  }

 private:
  static constexpr std::uint32_t null_idx = 0xffffffffu;
  static constexpr std::size_t chunk_nodes = 256;
  // Chunk table capacity. Fixed so node_at readers index stable storage for
  // the queue's whole lifetime (no reallocation to race with); the default
  // 4096 chunks of 256 nodes bound the queue at ~1M simultaneously-linked
  // nodes, far above any bounded-admission service's reachable depth. Tests
  // shrink it to exercise the exhaustion reject cheaply.
  static constexpr std::size_t max_chunks = MaxChunks;

  struct node {
    std::atomic<std::uint64_t> next{0};  // packed {index, tag}
    // Atomic because a pop() may read a just-recycled successor's value
    // concurrently with free_node()/push() writing it; the stale read is
    // discarded by the tag-checked head CAS, but the accesses must still be
    // atomic to be defined behavior (and TSan-clean). Relaxed is enough —
    // real publication ordering comes from the link/head CASes.
    std::atomic<T*> value{nullptr};
  };

  static constexpr std::uint64_t pack(std::uint32_t idx,
                                      std::uint64_t tag) noexcept {
    return (tag << 32) | idx;
  }
  static constexpr std::uint32_t idx_of(std::uint64_t r) noexcept {
    return static_cast<std::uint32_t>(r & 0xffffffffu);
  }
  static constexpr std::uint64_t tag_of(std::uint64_t r) noexcept {
    // Tags wrap at 32 bits; 2^32 in-window reuses of one node between a
    // thread's read and its CAS would be needed to alias.
    return (r >> 32) & 0xffffffffu;
  }

  node* node_at(std::uint32_t idx) const noexcept {
    // The slot is written once (under grow_mu_) before the first index into
    // the chunk is published through a release operation the caller has
    // acquired, so a relaxed-published pointer would already be visible;
    // acquire keeps the read independently self-contained.
    node* chunk = chunks_[idx / chunk_nodes].load(std::memory_order_acquire);
    return chunk + (idx % chunk_nodes);
  }

  // Returns a node index, or null_idx when the arena is at its cap and the
  // free list is empty (push() turns that into a clean admission reject).
  std::uint32_t alloc_node() {
    // Fast path: tagged Treiber free list of recycled nodes.
    for (;;) {
      const std::uint64_t top = free_.load(std::memory_order_acquire);
      if (idx_of(top) == null_idx) break;
      const std::uint64_t next =
          node_at(idx_of(top))->next.load(std::memory_order_acquire);
      std::uint64_t expect = top;
      if (free_.compare_exchange_weak(expect,
                                      pack(idx_of(next), tag_of(top) + 1),
                                      std::memory_order_acq_rel)) {
        return idx_of(top);
      }
    }
    // Cold path: carve from the arena, growing it by one chunk if spent.
    // The chunk table itself is a fixed array of atomic slots, so readers
    // in node_at never touch storage that moves or is freed; growth only
    // ever publishes a fresh chunk pointer into an all-null slot.
    std::lock_guard<std::mutex> lock(grow_mu_);
    const std::size_t n = allocated_.load(std::memory_order_relaxed);
    if (n % chunk_nodes == 0) {
      const std::size_t slot = n / chunk_nodes;
      if (slot == max_chunks) return null_idx;  // at cap: clean reject
      chunks_[slot].store(new node[chunk_nodes], std::memory_order_release);
    }
    allocated_.store(n + 1, std::memory_order_release);
    return static_cast<std::uint32_t>(n);
  }

  void free_node(std::uint32_t idx) noexcept {
    node* nn = node_at(idx);
    nn->value.store(nullptr, std::memory_order_relaxed);
    for (;;) {
      const std::uint64_t top = free_.load(std::memory_order_acquire);
      nn->next.store(pack(idx_of(top),
                          tag_of(nn->next.load(std::memory_order_relaxed)) + 1),
                     std::memory_order_relaxed);
      std::uint64_t expect = top;
      if (free_.compare_exchange_weak(expect, pack(idx, tag_of(top) + 1),
                                      std::memory_order_acq_rel)) {
        return;
      }
    }
  }

  alignas(64) std::atomic<std::uint64_t> head_{0};
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  alignas(64) std::atomic<std::uint64_t> free_{pack(null_idx, 0)};
  alignas(64) std::atomic<std::size_t> size_{0};
  std::atomic<std::uint64_t> pushes_{0};
  std::atomic<std::uint64_t> pops_{0};
  std::atomic<std::uint64_t> failed_pushes_{0};
  std::atomic<std::size_t> allocated_{0};
  std::mutex grow_mu_;
  // Fixed-capacity chunk table (see max_chunks): slots start null and are
  // written exactly once each, under grow_mu_. Never reallocates, so the
  // lock-free node_at readers have stable storage for the queue's lifetime.
  std::array<std::atomic<node*>, max_chunks> chunks_{};
};

}  // namespace spdag
