// Tests for the private-deques scheduler (Acar-Charguéraud-Rainey,
// PPoPP'13) and cross-scheduler equivalence checks.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <tuple>

#include "harness/workloads.hpp"
#include "sched/runtime.hpp"

namespace spdag {
namespace {

runtime_config pd(std::size_t workers, const std::string& counter = "dyn") {
  runtime_config cfg{workers, counter};
  cfg.sched = "private";
  return cfg;
}

TEST(PrivateDeques, RunsTrivialDag) {
  runtime rt(pd(2));
  std::atomic<int> ran{0};
  rt.run([&ran] { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 1);
}

TEST(PrivateDeques, SingleWorkerNeverSteals) {
  runtime rt(pd(1));
  harness::fanin(rt, 1 << 10);
  EXPECT_EQ(rt.sched().totals().steals, 0u);
  EXPECT_EQ(rt.engine().live_vertices(), 0u);
}

TEST(PrivateDeques, StealsMigrateWorkAcrossWorkers) {
  runtime rt(pd(4));
  rt.sched().reset_totals();
  harness::fanin(rt, 1 << 14);
  EXPECT_GT(rt.sched().totals().steals, 0u)
      << "a wide fanin should trigger at least one successful steal request";
}

TEST(PrivateDeques, RepeatedRunsStaySound) {
  runtime rt(pd(3));
  for (int i = 0; i < 30; ++i) {
    EXPECT_EQ(harness::fib(rt, 14), 377u) << "run " << i;
    EXPECT_EQ(rt.engine().live_vertices(), 0u);
  }
}

class PrivateDequesMatrix
    : public ::testing::TestWithParam<std::tuple<std::string, std::size_t>> {};

TEST_P(PrivateDequesMatrix, FibCorrect) {
  runtime rt(pd(std::get<1>(GetParam()), std::get<0>(GetParam())));
  EXPECT_EQ(harness::fib(rt, 18), 2584u);
}

TEST_P(PrivateDequesMatrix, FaninConserves) {
  runtime rt(pd(std::get<1>(GetParam()), std::get<0>(GetParam())));
  harness::fanin(rt, 1 << 11);
  const auto& st = rt.engine().stats();
  EXPECT_EQ(st.vertices_created.load(), st.vertices_recycled.load());
  EXPECT_EQ(rt.engine().live_vertices(), 0u);
}

TEST_P(PrivateDequesMatrix, Indegree2Conserves) {
  runtime rt(pd(std::get<1>(GetParam()), std::get<0>(GetParam())));
  harness::indegree2(rt, 1 << 11);
  EXPECT_EQ(rt.engine().live_vertices(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AlgosAndWorkers, PrivateDequesMatrix,
    ::testing::Combine(::testing::Values("faa", "snzi:2", "dyn:1", "dyn"),
                       ::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{4}, std::size_t{8})),
    [](const ::testing::TestParamInfo<std::tuple<std::string, std::size_t>>& info) {
      std::string algo = std::get<0>(info.param);
      for (char& ch : algo) {
        if (ch == ':') ch = '_';
      }
      return algo + "_w" + std::to_string(std::get<1>(info.param));
    });

// Both schedulers must produce identical program results and conservation
// properties on the same workloads.
class SchedulerEquivalence : public ::testing::TestWithParam<std::string> {};

TEST_P(SchedulerEquivalence, SameFibAcrossSchedulers) {
  runtime_config cfg{3, "dyn"};
  cfg.sched = GetParam();
  runtime rt(cfg);
  EXPECT_EQ(harness::fib(rt, 20), 6765u);
  EXPECT_EQ(rt.engine().live_vertices(), 0u);
}

TEST_P(SchedulerEquivalence, GranularityWorkload) {
  runtime_config cfg{2, "dyn"};
  cfg.sched = GetParam();
  runtime rt(cfg);
  harness::fanin(rt, 1 << 8, /*work_ns=*/200);
  EXPECT_EQ(rt.engine().live_vertices(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Schedulers, SchedulerEquivalence,
                         ::testing::Values("ws", "private"));

TEST(SchedulerSpec, UnknownSpecThrows) {
  runtime_config cfg{1, "dyn"};
  cfg.sched = "bogus";
  EXPECT_THROW(runtime rt(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace spdag
