// Figure 8: fanin benchmark, varying processors and counter algorithm.
//
// Paper setup: n = 8M asyncs synchronizing at one finish block; algorithms
// Fetch & Add, fixed SNZI depths 1..9, and the in-counter; metric is
// operations per second per core (higher is better). Expected shape: FAA
// best at 1 core and worst beyond; fixed SNZI improves with depth then
// plateaus; the in-counter wins for >= 2 cores.
//
// Scale knobs: -n / SPDAG_N (leaf count, default 1<<17 for CI-sized runs;
// paper used 8M), -proc / SPDAG_PROC (max workers), -runs / SPDAG_RUNS.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "harness/bench_runner.hpp"
#include "harness/workloads.hpp"
#include "sched/runtime.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"
#include "util/topology.hpp"

namespace {

using namespace spdag;

void register_config(const std::string& algo, std::size_t workers,
                     std::uint64_t n, int runs) {
  const std::string name =
      "fig08/fanin/" + algo + "/proc:" + std::to_string(workers);
  benchmark::RegisterBenchmark(name.c_str(), [=](benchmark::State& st) {
    runtime rt(runtime_config{workers, algo});
    harness::fanin(rt, n);  // warm-up: pools, pages, calibration
    double wall_sum_s = 0;
    for (auto _ : st) {
      wall_timer t;
      harness::fanin(rt, n);
      const double el = t.elapsed_s();
      st.SetIterationTime(el);
      wall_sum_s += el;
    }
    const double ops = static_cast<double>(harness::counter_ops(n));
    st.counters["ops/s"] = benchmark::Counter(
        ops, benchmark::Counter::kIsIterationInvariantRate);
    st.counters["ops/s/core"] = benchmark::Counter(
        ops / static_cast<double>(workers),
        benchmark::Counter::kIsIterationInvariantRate);
    harness::json_add_rate(name, algo, workers, runs, ops, wall_sum_s,
                           static_cast<double>(st.iterations()));
  })
      ->UseManualTime()
      ->Iterations(runs);
}

}  // namespace

int main(int argc, char** argv) {
  options opts(argc, argv);
  const auto common = harness::read_common(opts, /*default_n=*/1 << 17);
  harness::json_open(opts, "fig08_fanin_scalability");

  std::vector<std::string> algos{"faa"};
  for (int d = 1; d <= 9; ++d) algos.push_back("snzi:" + std::to_string(d));
  algos.push_back("dyn");

  for (const auto& algo : algos) {
    for (std::size_t p : harness::worker_sweep(common.max_proc)) {
      register_config(algo, p, common.n, common.runs);
    }
  }

  std::printf("# fig08: fanin, n=%llu, max_proc=%zu, runs=%d (paper: n=8M, 40 cores)\n",
              static_cast<unsigned long long>(common.n), common.max_proc,
              common.runs);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return harness::json_write();
}
