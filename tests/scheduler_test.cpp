// Tests for the Chase-Lev deque and the work-stealing scheduler.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "harness/workloads.hpp"
#include "sched/chase_lev.hpp"
#include "sched/runtime.hpp"
#include "sched/scheduler.hpp"

namespace spdag {
namespace {

// --- Chase-Lev deque -------------------------------------------------------

struct item {
  explicit item(int v) : value(v) {}
  int value;
};

TEST(ChaseLev, LifoForOwner) {
  chase_lev_deque<item> d;
  item a(1), b(2), c(3);
  d.push_bottom(&a);
  d.push_bottom(&b);
  d.push_bottom(&c);
  EXPECT_EQ(d.pop_bottom(), &c);
  EXPECT_EQ(d.pop_bottom(), &b);
  EXPECT_EQ(d.pop_bottom(), &a);
  EXPECT_EQ(d.pop_bottom(), nullptr);
}

TEST(ChaseLev, FifoForThieves) {
  chase_lev_deque<item> d;
  item a(1), b(2), c(3);
  d.push_bottom(&a);
  d.push_bottom(&b);
  d.push_bottom(&c);
  EXPECT_EQ(d.steal_top(), &a);
  EXPECT_EQ(d.steal_top(), &b);
  EXPECT_EQ(d.steal_top(), &c);
  EXPECT_EQ(d.steal_top(), nullptr);
}

TEST(ChaseLev, GrowsPastInitialCapacity) {
  chase_lev_deque<item> d(/*initial_log_capacity=*/2);  // 4 slots
  std::vector<std::unique_ptr<item>> items;
  for (int i = 0; i < 1000; ++i) {
    items.push_back(std::make_unique<item>(i));
    d.push_bottom(items.back().get());
  }
  EXPECT_GE(d.capacity(), 1000u);
  for (int i = 999; i >= 0; --i) {
    item* it = d.pop_bottom();
    ASSERT_NE(it, nullptr);
    EXPECT_EQ(it->value, i);
  }
}

TEST(ChaseLev, EveryItemTakenExactlyOnceUnderTheft) {
  constexpr int kItems = 30000;
  constexpr int kThieves = 3;
  chase_lev_deque<item> d;
  std::vector<std::unique_ptr<item>> items;
  items.reserve(kItems);
  for (int i = 0; i < kItems; ++i) items.push_back(std::make_unique<item>(i));

  std::vector<std::vector<int>> stolen(kThieves);
  std::vector<int> popped;
  std::atomic<bool> owner_done{false};

  std::vector<std::thread> thieves;
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&, t] {
      while (!owner_done.load(std::memory_order_acquire) || d.size_estimate() > 0) {
        if (item* it = d.steal_top()) stolen[static_cast<size_t>(t)].push_back(it->value);
      }
    });
  }
  // Owner interleaves pushes and pops.
  for (int i = 0; i < kItems; ++i) {
    d.push_bottom(items[static_cast<size_t>(i)].get());
    if ((i & 3) == 0) {
      if (item* it = d.pop_bottom()) popped.push_back(it->value);
    }
  }
  for (;;) {
    item* it = d.pop_bottom();
    if (it == nullptr) break;
    popped.push_back(it->value);
  }
  owner_done.store(true, std::memory_order_release);
  for (auto& th : thieves) th.join();

  std::vector<int> all(popped);
  for (const auto& s : stolen) all.insert(all.end(), s.begin(), s.end());
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), static_cast<std::size_t>(kItems))
      << "items lost or duplicated under concurrent stealing";
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(all[static_cast<size_t>(i)], i);
}

// --- scheduler -------------------------------------------------------------

TEST(Scheduler, WorkerCountDefaultsToHardware) {
  scheduler s;
  EXPECT_GE(s.worker_count(), 1u);
}

TEST(Scheduler, RunsTrivialDag) {
  runtime rt(runtime_config{2, "dyn:1"});
  std::atomic<int> ran{0};
  rt.run([&ran] { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 1);
}

TEST(Scheduler, RunIsRepeatable) {
  runtime rt(runtime_config{2, "dyn:1"});
  std::atomic<int> ran{0};
  for (int i = 0; i < 50; ++i) {
    rt.run([&ran] { ran.fetch_add(1); });
  }
  EXPECT_EQ(ran.load(), 50);
}

class SchedulerWorkers : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SchedulerWorkers, ParallelFibIsCorrect) {
  runtime rt(runtime_config{GetParam(), "dyn"});
  EXPECT_EQ(harness::fib(rt, 20), 6765u);
}

TEST_P(SchedulerWorkers, FaninCompletesAndConserves) {
  runtime rt(runtime_config{GetParam(), "dyn"});
  harness::fanin(rt, 1 << 12);
  const auto& st = rt.engine().stats();
  EXPECT_EQ(st.vertices_created.load(), st.vertices_recycled.load());
  EXPECT_EQ(rt.engine().live_vertices(), 0u);
}

TEST_P(SchedulerWorkers, Indegree2Completes) {
  runtime rt(runtime_config{GetParam(), "dyn"});
  harness::indegree2(rt, 1 << 12);
  EXPECT_EQ(rt.engine().live_vertices(), 0u);
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, SchedulerWorkers,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST(Scheduler, StealsHappenWithMultipleWorkers) {
  runtime rt(runtime_config{4, "dyn"});
  rt.sched().reset_totals();
  harness::fanin(rt, 1 << 14);
  const scheduler_totals t = rt.sched().totals();
  EXPECT_GT(t.executions, 0u);
  // On a multi-worker run of a wide dag some work should migrate. (This can
  // be flaky only if one worker does everything; the fanin tree is wide
  // enough that at least one steal is essentially certain.)
  EXPECT_GT(t.steals, 0u);
}

TEST(Scheduler, ExternalEnqueueGoesThroughInjectionQueue) {
  // run() is called from this (non-worker) thread, so the root is injected;
  // the dag still completes.
  runtime rt(runtime_config{1, "faa"});
  std::atomic<bool> ran{false};
  rt.run([&ran] { ran.store(true); });
  EXPECT_TRUE(ran.load());
}

TEST(Scheduler, ManyConsecutiveRunsDoNotLeakVertices) {
  runtime rt(runtime_config{2, "dyn"});
  for (int i = 0; i < 20; ++i) {
    harness::fanin(rt, 1 << 8);
    EXPECT_EQ(rt.engine().live_vertices(), 0u) << "leak after run " << i;
  }
}

TEST(Scheduler, CurrentWorkerIdIsMinusOneOutside) {
  EXPECT_EQ(scheduler::current_worker_id(), -1);
}

}  // namespace
}  // namespace spdag
