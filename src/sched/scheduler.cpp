#include "sched/scheduler.hpp"

#include <cassert>

#include "mem/epoch.hpp"
#include "obs/trace.hpp"
#include "outset/outset.hpp"
#include "util/backoff.hpp"
#include "util/topology.hpp"

namespace spdag {

namespace {
thread_local int tls_worker_id = -1;
thread_local scheduler* tls_scheduler = nullptr;
}  // namespace

int scheduler::current_worker_id() noexcept { return tls_worker_id; }

scheduler::scheduler(scheduler_config cfg) : cfg_(cfg) {
  const std::size_t n = cfg_.workers == 0 ? hardware_core_count() : cfg_.workers;
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<padded<worker>>());
  }
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { worker_main(i); });
  }
}

scheduler::~scheduler() {
  shutdown_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(park_mu_);
    park_cv_.notify_all();
  }
  for (auto& t : threads_) t.join();
  // Drains must have quiesced: run() waits for the lane to empty, and the
  // runtime destroys its engine BEFORE this scheduler, so a task still
  // queued here could only come from unstructured direct executor use —
  // and running it now would deliver waiters into a destroyed engine.
  // Assert loudly instead of executing use-after-destruction.
  assert(drains_pending_.load(std::memory_order_acquire) == 0 &&
         "scheduler destroyed with pending subtree drains; drive the "
         "drain lane to quiescence (run()) before teardown");
}

void scheduler::enqueue(vertex* v) {
  if (tls_scheduler == this && tls_worker_id >= 0) {
    workers_[static_cast<std::size_t>(tls_worker_id)]->value.deque.push_bottom(v);
  } else {
    std::lock_guard<std::mutex> lock(inject_mu_);
    injected_.push_back(v);
    injected_size_.fetch_add(1, std::memory_order_release);
  }
  obs::gauge_add(obs::g_runnable, 1);
  unpark_some();
}

void scheduler::enqueue_drain(outset_drain_task* t) {
  const int from = tls_scheduler == this ? tls_worker_id : -1;
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    drains_.push_back({t, from});
    drain_size_.fetch_add(1, std::memory_order_release);
  }
  drains_pending_.fetch_add(1, std::memory_order_acq_rel);
  obs::gauge_add(obs::g_drains_pending, 1);
  obs::emit(obs::ev_drain_enqueue);
  unpark_some();
}

bool scheduler::run_one_drain(int id) {
  if (drain_size_.load(std::memory_order_acquire) == 0) return false;
  drain_item item{nullptr, -1};
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    if (drains_.empty()) return false;
    item = drains_.front();
    drains_.pop_front();
    drain_size_.fetch_sub(1, std::memory_order_release);
  }
  {
    obs::span_guard sg(obs::sp_drain);
    item.task->run();
  }
  obs::gauge_add(obs::g_drains_pending, -1);
  drains_executed_.fetch_add(1, std::memory_order_relaxed);
  if (item.from != id) {
    drains_stolen_.fetch_add(1, std::memory_order_relaxed);
    obs::emit(obs::ev_drain_steal);
  }
  // Decrement AFTER run(): pending==0 must mean fully delivered, not merely
  // dequeued (run() below spins on it for quiescence).
  drains_pending_.fetch_sub(1, std::memory_order_acq_rel);
  return true;
}

vertex* scheduler::pop_injected() {
  if (injected_size_.load(std::memory_order_acquire) == 0) return nullptr;
  std::lock_guard<std::mutex> lock(inject_mu_);
  if (injected_.empty()) return nullptr;
  vertex* v = injected_.front();
  injected_.pop_front();
  injected_size_.fetch_sub(1, std::memory_order_release);
  return v;
}

void scheduler::unpark_some() {
  if (parked_.load(std::memory_order_acquire) > 0) {
    std::lock_guard<std::mutex> lock(park_mu_);
    park_cv_.notify_one();
  }
}

vertex* scheduler::find_work(std::size_t id, xoshiro256& rng) {
  worker& me = workers_[id]->value;
  if (vertex* v = me.deque.pop_bottom()) return v;
  if (vertex* v = pop_injected()) return v;
  // Steal sweeps: random victims, a few rounds, then report failure so the
  // caller can park.
  obs::span_guard steal_span(obs::sp_steal);
  const std::size_t n = workers_.size();
  for (std::size_t sweep = 0; sweep < cfg_.steal_sweeps_before_park; ++sweep) {
    for (std::size_t attempt = 0; attempt < 2 * n; ++attempt) {
      const std::size_t victim = static_cast<std::size_t>(rng.below(n));
      if (victim == id) continue;
      obs::emit(obs::ev_steal_attempt, static_cast<std::uint16_t>(victim));
      if (vertex* v = workers_[victim]->value.deque.steal_top()) {
        me.steals.fetch_add(1, std::memory_order_relaxed);
        obs::emit(obs::ev_steal_success, static_cast<std::uint16_t>(victim));
        return v;
      }
    }
    if (vertex* v = pop_injected()) return v;
    cpu_relax();
  }
  me.failed_steal_sweeps.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

void scheduler::worker_main(std::size_t id) {
  tls_worker_id = static_cast<int>(id);
  tls_scheduler = this;
  if (cfg_.pin_threads) pin_current_thread(id);
  xoshiro256 rng(mix64(0x9e3779b97f4a7c15ULL ^ (id + 1)));

  // Workers stay epoch-pinned for their whole loop: every stale read a
  // worker can perform — SNZI pair reuse inside execute(), out-set node
  // walks in a drain, the pool's own recycle-list pops — is then covered by
  // the pin, and trim_live() can run concurrently without a stop-the-world
  // phase. The pin is REFRESHED (never held across an epoch boundary while
  // stale pointers exist) at the loop top, where the worker provably holds
  // no runtime pointers; steal/idle transitions additionally tick() the
  // advance machinery, so a busy scheduler makes epoch progress without any
  // dedicated reclaimer thread.
  mem::epoch::pin_guard eg;

  while (!shutdown_.load(std::memory_order_acquire)) {
    mem::epoch::refresh();
    vertex* v = find_work(id, rng);
    if (v != nullptr) {
      dag_engine* eng = engine_.load(std::memory_order_acquire);
      assert(eng != nullptr && "work found with no engine attached");
      const bool is_final = (v == stop_vertex_.load(std::memory_order_relaxed));
      active_.fetch_add(1, std::memory_order_acq_rel);
      obs::gauge_add(obs::g_runnable, -1);
      {
        obs::span_guard sg(obs::sp_work);
        eng->execute(v);
      }
      active_.fetch_sub(1, std::memory_order_acq_rel);
      workers_[id]->value.executions.fetch_add(1, std::memory_order_relaxed);
      if (is_final) {
        std::lock_guard<std::mutex> lock(done_mu_);
        done_.store(true, std::memory_order_release);
        done_cv_.notify_all();
      }
      continue;
    }
    // No vertex anywhere: a steal-failure transition is a natural epoch
    // communication point — no stale pointers are held, so tick the advance
    // machinery before looking for drain work.
    mem::epoch::tick();
    // An idle worker is exactly who should steal a subtree drain (the dag's
    // critical path keeps priority over broadcast bookkeeping).
    if (run_one_drain(static_cast<int>(id))) continue;
    // Out of work: park briefly. The timeout (rather than precise wakeup
    // accounting) keeps the protocol simple and bounds lost-wakeup cost.
    // Unpin across the wait — a sleeping worker must not stall the global
    // epoch — and re-pin on wake, before the loop touches anything pooled.
    // The shutdown check is an if-guard (not a break) so the unpin/pin
    // bracket stays balanced; the loop condition re-checks shutdown.
    mem::epoch::unpin();
    {
      std::unique_lock<std::mutex> lock(park_mu_);
      if (!shutdown_.load(std::memory_order_acquire)) {
        workers_[id]->value.parks.fetch_add(1, std::memory_order_relaxed);
        parked_.fetch_add(1, std::memory_order_acq_rel);
        {
          obs::span_guard sg(obs::sp_idle);
          park_cv_.wait_for(lock, cfg_.park_timeout);
        }
        parked_.fetch_sub(1, std::memory_order_acq_rel);
      }
    }
    mem::epoch::pin();
  }
}

void scheduler::begin_service(dag_engine& engine) {
  assert(&engine.exec() == static_cast<executor*>(this) &&
         "engine must be bound to this scheduler");
  assert(done_.load(std::memory_order_acquire) &&
         "begin_service may not overlap run()");
  assert(!service_.load(std::memory_order_acquire) &&
         "begin_service called twice");
  // Clear the stale stop vertex from any previous run(): pooled vertices
  // recycle addresses, so a service-mode vertex could alias it and fire the
  // (harmless, but confusing) done_ notification path.
  stop_vertex_.store(nullptr, std::memory_order_release);
  service_.store(true, std::memory_order_release);
  engine_.store(&engine, std::memory_order_release);
}

void scheduler::end_service() {
  assert(service_.load(std::memory_order_acquire) &&
         "end_service without begin_service");
  // The caller guarantees no further roots will be injected; spin out
  // whatever is still in flight. Termination: with no external producer,
  // workers only shrink the injected/deque/drain population, and parked
  // workers re-check on their timeout.
  backoff b;
  while (!service_idle()) b.pause();
  engine_.store(nullptr, std::memory_order_release);
  service_.store(false, std::memory_order_release);
}

bool scheduler::service_idle() const {
  return injected_size_.load(std::memory_order_acquire) == 0 &&
         drain_size_.load(std::memory_order_acquire) == 0 &&
         drains_pending_.load(std::memory_order_acquire) == 0 &&
         active_.load(std::memory_order_acquire) == 0;
}

void scheduler::run(dag_engine& engine, vertex* root, vertex* final_v) {
  assert(&engine.exec() == static_cast<executor*>(this) &&
         "engine must be bound to this scheduler");
  assert(!service_.load(std::memory_order_acquire) &&
         "run() may not overlap resident-service mode");
  engine_.store(&engine, std::memory_order_release);
  stop_vertex_.store(final_v, std::memory_order_release);
  done_.store(false, std::memory_order_release);
  enqueue(root);
  {
    std::lock_guard<std::mutex> lock(park_mu_);
    park_cv_.notify_all();
  }
  {
    std::unique_lock<std::mutex> lock(done_mu_);
    done_cv_.wait(lock, [this] { return done_.load(std::memory_order_acquire); });
  }
  // The final vertex ran, but a worker may still be in the epilogue of a
  // chained/spawned vertex (recycling it), and empty-subtree drain tasks
  // (no consumer gated the finish on them) may still sit in the drain lane
  // holding pinned future states. Spin out both so that returning from
  // run() implies every vertex is recycled and every drain delivered.
  backoff b;
  while (active_.load(std::memory_order_acquire) != 0 ||
         drains_pending_.load(std::memory_order_acquire) != 0) {
    b.pause();
  }
  stop_vertex_.store(nullptr, std::memory_order_release);
}

scheduler_totals scheduler::totals() const {
  scheduler_totals t;
  for (const auto& w : workers_) {
    t.executions += w->value.executions.load(std::memory_order_relaxed);
    t.steals += w->value.steals.load(std::memory_order_relaxed);
    t.failed_steal_sweeps += w->value.failed_steal_sweeps.load(std::memory_order_relaxed);
    t.parks += w->value.parks.load(std::memory_order_relaxed);
  }
  t.drains_executed = drains_executed_.load(std::memory_order_relaxed);
  t.drains_stolen = drains_stolen_.load(std::memory_order_relaxed);
  // The shared lane IS this scheduler's transfer mechanism: every drain that
  // ran on a non-enqueuing worker left its enqueuer through it.
  t.drains_handed_off = t.drains_stolen;
  return t;
}

void scheduler::reset_totals() {
  for (auto& w : workers_) {
    w->value.executions.store(0, std::memory_order_relaxed);
    w->value.steals.store(0, std::memory_order_relaxed);
    w->value.failed_steal_sweeps.store(0, std::memory_order_relaxed);
    w->value.parks.store(0, std::memory_order_relaxed);
  }
  drains_executed_.store(0, std::memory_order_relaxed);
  drains_stolen_.store(0, std::memory_order_relaxed);
}

}  // namespace spdag
