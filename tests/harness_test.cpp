// Tests for the benchmark harness itself: workload correctness, the sweep
// generators, and the config runner.

#include <gtest/gtest.h>

#include "harness/bench_runner.hpp"
#include "harness/workloads.hpp"
#include "incounter/incounter.hpp"
#include "sched/runtime.hpp"

namespace spdag::harness {
namespace {

TEST(Workloads, FibKnownValues) {
  runtime rt(runtime_config{2, "dyn"});
  EXPECT_EQ(fib(rt, 0), 0u);
  EXPECT_EQ(fib(rt, 1), 1u);
  EXPECT_EQ(fib(rt, 2), 1u);
  EXPECT_EQ(fib(rt, 10), 55u);
  EXPECT_EQ(fib(rt, 21), 10946u);
}

TEST(Workloads, FaninLeafCountMatchesN) {
  // The spawn tree over n leaves performs exactly n-1 spawns.
  runtime rt(runtime_config{1, "dyn"});
  for (std::uint64_t n : {2ull, 3ull, 7ull, 64ull, 100ull}) {
    rt.engine().stats().reset();
    fanin(rt, n);
    EXPECT_EQ(rt.engine().stats().spawns.load(), n - 1) << "n=" << n;
  }
}

TEST(Workloads, Indegree2CreatesOneFinishPerSplit) {
  runtime rt(runtime_config{1, "dyn"});
  rt.engine().stats().reset();
  indegree2(rt, 8);  // splits: 8 -> (4,4) -> (2,2,2,2): 7 splits
  EXPECT_EQ(rt.engine().stats().chains.load(), 7u);
  EXPECT_EQ(rt.engine().stats().spawns.load(), 7u);
}

TEST(Workloads, NonPowerOfTwoSizes) {
  runtime rt(runtime_config{2, "dyn"});
  rt.engine().stats().reset();
  fanin(rt, 1000);
  EXPECT_EQ(rt.engine().stats().spawns.load(), 999u);
  indegree2(rt, 999);
  EXPECT_EQ(rt.engine().live_vertices(), 0u);
}

TEST(WorkerSweep, SmallMaxEnumeratesAll) {
  EXPECT_EQ(worker_sweep(1), (std::vector<std::size_t>{1}));
  EXPECT_EQ(worker_sweep(4), (std::vector<std::size_t>{1, 2, 3, 4}));
}

TEST(WorkerSweep, LargeMaxIsThinnedAndEndsAtMax) {
  const auto s = worker_sweep(40, 8);
  EXPECT_LE(s.size(), 8u);
  EXPECT_EQ(s.front(), 1u);
  EXPECT_EQ(s.back(), 40u);
  for (std::size_t i = 1; i < s.size(); ++i) EXPECT_GT(s[i], s[i - 1]);
}

TEST(WorkerSweep, ZeroIsTreatedAsOne) {
  EXPECT_EQ(worker_sweep(0), (std::vector<std::size_t>{1}));
}

TEST(RunConfig, ProducesSaneThroughput) {
  bench_config cfg;
  cfg.workload = "fanin";
  cfg.algo = "faa";
  cfg.workers = 1;
  cfg.n = 1 << 10;
  cfg.repetitions = 2;
  const bench_result r = run_config(cfg);
  EXPECT_GT(r.mean_s, 0.0);
  EXPECT_GE(r.max_s, r.min_s);
  EXPECT_GT(r.ops_per_s_per_core, 0.0);
  EXPECT_DOUBLE_EQ(r.ops_per_s, r.ops_per_s_per_core);  // 1 worker
}

TEST(RunConfig, RejectsUnknownWorkload) {
  bench_config cfg;
  cfg.workload = "bogus";
  EXPECT_THROW(run_config(cfg), std::invalid_argument);
}

TEST(RunConfig, ChurnWorkloadSurfacesPoolStats) {
  bench_config cfg;
  cfg.workload = "churn";
  cfg.algo = "dyn";
  cfg.workers = 1;
  cfg.n = 1 << 9;
  cfg.repetitions = 2;
  cfg.alloc = "pool";
  const bench_result r = run_config(cfg);
  EXPECT_GT(r.ops_per_s, 0.0);
  ASSERT_FALSE(r.pools.empty()) << "run_config must snapshot the registry";
  std::uint64_t allocs = 0;
  bool saw_future_state = false;
  for (const auto& row : r.pools) {
    allocs += row.stats.allocs;
    saw_future_state |= row.name.rfind("future_state", 0) == 0;
  }
  EXPECT_GT(allocs, 0u);
  EXPECT_TRUE(saw_future_state);
  // The warm-up run carved the slabs; the measured runs must not grow them
  // (the same steady-state claim bench/future_churn makes, single worker
  // here so magazine contents cannot migrate between runs).
  EXPECT_EQ(r.measured_slab_growths, 0u);
}

TEST(RunConfig, MallocAllocSpecCountsEveryUpstreamTrip) {
  bench_config cfg;
  cfg.workload = "churn";
  cfg.algo = "faa";
  cfg.workers = 1;
  cfg.n = 1 << 8;
  cfg.repetitions = 1;
  cfg.alloc = "malloc";
  const bench_result r = run_config(cfg);
  pool_stats totals;
  for (const auto& row : r.pools) totals += row.stats;
  EXPECT_EQ(totals.slab_growths, totals.allocs)
      << "under alloc:malloc every allocation is an upstream trip";
  EXPECT_GT(r.measured_slab_growths, 0u);
}

TEST(CounterOps, MatchesReportingConvention) {
  EXPECT_EQ(counter_ops(1), 2u);
  EXPECT_EQ(counter_ops(1 << 20), 2ull << 20);
}

// Counter-style use of the in-counter with initial surplus > 1: the dag only
// needs {0,1}, but the structure itself supports any n at the base.
TEST(IncounterMultiSurplus, BaseHoldsArbitraryInitialSurplus) {
  incounter ic(5);
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(ic.depart(ic.root_token()));
  }
  EXPECT_FALSE(ic.is_zero());
  EXPECT_TRUE(ic.depart(ic.root_token()));
  EXPECT_TRUE(ic.is_zero());
}

}  // namespace
}  // namespace spdag::harness
