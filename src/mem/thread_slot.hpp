#pragma once
// Process-wide worker slot ids for per-worker pool magazines.
//
// Every thread that touches a slab_cache gets a small dense id on first use,
// held for the thread's lifetime and returned to a free bitmap when the
// thread exits — so a scheduler that parks and respawns workers (or a test
// that loops raw std::threads) reuses the same few slots instead of growing
// an unbounded directory. A slot is owned by exactly one live thread at a
// time, which is the invariant that lets magazines be accessed without
// synchronization beyond their own relaxed counters.
//
// Slots are deliberately NOT the scheduler's worker ids: pools outlive any
// one scheduler, and non-worker threads (the blocked caller of run(), test
// threads) allocate too.
//
// Resident-service clients: every thread that calls dag_service::submit()
// (or destroys a ticket) touches pooled allocation and therefore claims a
// slot on first use, held until the THREAD exits — not until the ticket
// resolves. A service fed by more than max_thread_slots concurrently live
// client threads stays correct: threads past the cap get -1 and fall back
// to the shared lock-free recycle list, i.e. submissions get slower, never
// wrong (tests/service_stress_test.cpp pins this). Long-running clients
// from bounded thread pools are the intended shape; an unbounded
// thread-per-request frontend merely forfeits magazine caching on the
// overflow threads while they live.

namespace spdag::mem {

// Upper bound on concurrently live threads that get magazine caching. A
// thread past the cap receives -1 and slab_cache falls back to the shared
// lock-free recycle list (correct, just uncached).
inline constexpr int max_thread_slots = 256;

// This thread's slot in [0, max_thread_slots), or -1 when over-subscribed.
// First call on a thread claims the slot; the thread keeps it until exit.
int thread_slot() noexcept;

// Number of slots currently claimed (tests / observability).
int claimed_thread_slots() noexcept;

}  // namespace spdag::mem
