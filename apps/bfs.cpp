// apps/bfs: frontier-synchronous BFS on a synthetic random graph — the
// application-tier bench for the batched spawn path. Sweeps both schedulers
// x batch {off, on} and emits one schema-2 JSON record per configuration
// with the amortization ledger (`edges`, `counter_ops`,
// `counter_ops_per_edge`) and the conservation pair (`completed`,
// `spawned`) that scripts/perf_smoke_gate.py --apps checks in CI.
//
// Usage: app_bfs [-n vertices] [-degree 8] [-proc P] [-runs R] [-json path]

#include <cstdio>
#include <string>
#include <vector>

#include "apps/bfs.hpp"
#include "harness/bench_runner.hpp"
#include "util/cli.hpp"
#include "util/histogram.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace spdag;
  options opts(argc, argv);
  const auto common = harness::read_common(opts, /*default_n=*/1 << 15);
  harness::json_open(opts, "apps");
  const std::uint64_t degree =
      static_cast<std::uint64_t>(opts.get_int("degree", 8));

  const apps::bfs_graph g = apps::make_bfs_graph(common.n, degree, /*seed=*/42);
  std::printf("# apps/bfs: n=%llu edges=%llu proc=%zu runs=%d\n",
              static_cast<unsigned long long>(g.vertex_count()),
              static_cast<unsigned long long>(g.edge_count()), common.max_proc,
              common.runs);

  result_table table({"sched", "batch", "mean_s", "Medges/s", "ops_per_edge"});
  for (const char* sched : {"ws", "private"}) {
    for (const bool batch : {false, true}) {
      runtime_config rc;
      rc.workers = common.max_proc;
      rc.sched = sched;
      runtime rt(rc);
      const apps::bfs_config cfg{/*grain=*/64, batch};
      // Warm-up populates the pools AND fixes the golden distance vector the
      // measured runs must reproduce byte-identically.
      const std::vector<std::int32_t> golden = apps::bfs_run(rt, g, cfg);
      rt.engine().stats().reset();  // scope the ledger to the measured runs

      run_stats stats;
      latency_histogram hist;
      for (int r = 0; r < common.runs; ++r) {
        wall_timer t;
        const std::vector<std::int32_t> d = apps::bfs_run(rt, g, cfg);
        const double s = t.elapsed_s();
        stats.add(s);
        hist.record(static_cast<std::uint64_t>(s * 1e9));
        if (d != golden) {
          std::fprintf(stderr, "bfs: nondeterministic distance vector "
                               "(sched=%s batch=%d run=%d)\n",
                       sched, batch ? 1 : 0, r);
          return 1;
        }
      }

      const engine_stats& es = rt.engine().stats();
      const double edges =
          static_cast<double>(es.edges.load(std::memory_order_relaxed));
      const double cops = static_cast<double>(
          es.counter_incs.load(std::memory_order_relaxed) +
          es.counter_decs.load(std::memory_order_relaxed));
      const double ratio = edges > 0 ? cops / (2.0 * edges) : 0.0;
      const double medges =
          stats.mean() > 0
              ? static_cast<double>(g.edge_count()) / stats.mean() / 1e6
              : 0.0;
      table.add_row({sched, batch ? "on" : "off",
                     result_table::num(stats.mean(), 4),
                     result_table::num(medges, 1),
                     result_table::num(ratio, 4)});

      if (harness::json_enabled()) {
        harness::json_record rec;
        rec.name = "bfs/dyn/sched:";
        rec.name += sched;
        rec.name += "/proc:";
        rec.name += std::to_string(common.max_proc);
        if (batch) rec.name += "/batch";
        rec.spec = "dyn";
        rec.sched = sched;
        rec.proc = common.max_proc;
        rec.runs = common.runs;
        rec.ops_per_s = stats.mean() > 0
                            ? static_cast<double>(g.edge_count()) / stats.mean()
                            : 0.0;
        rec.wall_s = stats.mean();
        rec.lat_p50_ms = static_cast<double>(hist.percentile_ns(0.50)) * 1e-6;
        rec.lat_p95_ms = static_cast<double>(hist.percentile_ns(0.95)) * 1e-6;
        rec.lat_p99_ms = static_cast<double>(hist.percentile_ns(0.99)) * 1e-6;
        rec.pools = rt.pools().rows();
        rec.pool_totals = rt.pools().totals();
        rec.outsets = rt.outsets().totals();
        rec.sched_totals = rt.sched().totals();
        rec.extra.emplace_back("edges", edges);
        rec.extra.emplace_back("counter_ops", cops);
        rec.extra.emplace_back("counter_ops_per_edge", ratio);
        rec.extra.emplace_back(
            "completed", static_cast<double>(
                             es.executions.load(std::memory_order_relaxed)));
        rec.extra.emplace_back(
            "spawned",
            static_cast<double>(
                es.vertices_created.load(std::memory_order_relaxed)));
        rec.extra.emplace_back("batch", batch ? 1.0 : 0.0);
        harness::json_add(std::move(rec));
      }
    }
  }
  harness::emit(table, common.csv);
  return harness::json_write();
}
