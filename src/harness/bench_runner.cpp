#include "harness/bench_runner.hpp"

#include <iostream>
#include <stdexcept>

#include "harness/workloads.hpp"
#include "sched/runtime.hpp"
#include "util/timer.hpp"
#include "util/topology.hpp"

namespace spdag::harness {

bench_result run_config(const bench_config& cfg) {
  runtime_config rt_cfg{cfg.workers, cfg.algo, /*pin_threads=*/false,
                        /*snzi_stats=*/nullptr};
  rt_cfg.alloc = cfg.alloc;
  runtime rt(rt_cfg);
  auto once = [&] {
    if (cfg.workload == "fanin") {
      fanin(rt, cfg.n, cfg.work_ns);
    } else if (cfg.workload == "indegree2") {
      indegree2(rt, cfg.n, cfg.work_ns);
    } else if (cfg.workload == "fib") {
      fib(rt, static_cast<unsigned>(cfg.n));
    } else if (cfg.workload == "churn") {
      future_churn(rt, cfg.n, cfg.work_ns);
    } else {
      throw std::invalid_argument("unknown workload: " + cfg.workload);
    }
  };

  // One untimed warm-up populates the object pools and the page cache so the
  // measured runs see steady state (the paper's artifact averages 30 runs
  // for the same reason).
  once();
  const std::uint64_t warm_growths = rt.pools().totals().slab_growths;

  run_stats stats;
  for (int r = 0; r < cfg.repetitions; ++r) {
    wall_timer t;
    once();
    stats.add(t.elapsed_s());
  }

  bench_result res;
  res.cfg = cfg;
  res.mean_s = stats.mean();
  res.min_s = stats.min();
  res.max_s = stats.max();
  res.rsd = stats.rsd();
  const double ops = static_cast<double>(
      cfg.workload == "churn" ? churn_futures(cfg.n) : counter_ops(cfg.n));
  res.ops_per_s = res.mean_s > 0 ? ops / res.mean_s : 0;
  res.ops_per_s_per_core = res.ops_per_s / static_cast<double>(cfg.workers);
  res.pools = rt.pools().rows();
  res.measured_slab_growths =
      rt.pools().totals().slab_growths - warm_growths;
  res.outsets = rt.outsets().totals();
  res.sched = rt.sched().totals();
  return res;
}

void print_pool_stats(std::ostream& os,
                      const std::vector<pool_registry_row>& rows) {
  for (const auto& row : rows) {
    os << "# pool " << row.name << ": allocs=" << row.stats.allocs
       << " recycles=" << row.stats.recycles
       << " slab_growths=" << row.stats.slab_growths
       << " remote_frees=" << row.stats.remote_frees
       << " live=" << row.stats.live() << "\n";
  }
}

void print_broadcast_stats(std::ostream& os, const outset_totals& outsets,
                           const scheduler_totals& sched) {
  os << "# outset: adds=" << outsets.adds
     << " delivered=" << outsets.delivered
     << " retries=" << outsets.add_cas_retries
     << " rejected=" << outsets.rejected_adds
     << " subtrees_offloaded=" << outsets.subtrees_offloaded
     << " drains_executed=" << sched.drains_executed
     << " drains_stolen=" << sched.drains_stolen
     << " drains_handed_off=" << sched.drains_handed_off << "\n";
}

std::vector<std::size_t> worker_sweep(std::size_t max_workers, std::size_t points) {
  std::vector<std::size_t> out;
  if (max_workers == 0) max_workers = 1;
  if (max_workers <= points) {
    for (std::size_t w = 1; w <= max_workers; ++w) out.push_back(w);
    return out;
  }
  // 1 plus (points-1) evenly spaced values ending at max_workers.
  out.push_back(1);
  for (std::size_t i = 1; i < points; ++i) {
    const std::size_t w = 1 + i * (max_workers - 1) / (points - 1);
    if (w != out.back()) out.push_back(w);
  }
  return out;
}

common_options read_common(const options& opts, std::uint64_t default_n) {
  common_options c;
  c.n = static_cast<std::uint64_t>(
      opts.get_int("n", static_cast<std::int64_t>(default_n)));
  c.max_proc = static_cast<std::size_t>(opts.get_int(
      "proc", static_cast<std::int64_t>(hardware_core_count())));
  c.runs = static_cast<int>(opts.get_int("runs", 3));
  c.csv = opts.get_bool("csv", false);
  return c;
}

void emit(result_table& table, bool csv) {
  table.print(std::cout);
  if (csv) {
    std::cout << "\n-- csv --\n";
    table.print_csv(std::cout);
  }
  std::cout.flush();
}

}  // namespace spdag::harness
