#pragma once
// tree_outset: a lock-free, grow-on-contention out-set tree — the symmetric
// counterpart of snzi_tree::grow() on the fan-out side.
//
// Shape. Every node owns one cache line holding a waiter-list head and a
// children pointer. A registering consumer starts at the base node and tries
// one CAS on the current node's list head. Success means the consumer has
// claimed a slot on that node's line and is done. Failure means another
// consumer hit the same line in the same window — the very contention signal
// snzi's grow() keys off — so the add *grows* the node (installing a group
// of `fanout` fresh children, each on its own cache line, with a single CAS,
// exactly like grow() installs a child_pair) and descends into a child
// chosen by a thread-local coin. Concurrent adds therefore separate after
// O(log_fanout c) failures in expectation and keep landing on disjoint
// lines; a single-threaded add is one uncontended CAS on the base, the same
// cost as simple_outset.
//
// Finalize. The producer walks the tree top-down, iteratively (an explicit
// frame stack, so depth is bounded by the heap, never the call stack). At
// each node it first seals the children pointer (CASing in a terminated
// sentinel when the node is childless, so no group can be installed under an
// already-drained node), then exchanges the list head for the
// terminated-waiter sentinel and streams the captured waiters to the sink
// *before* touching descendants — consumers registered near the top of the
// tree are running on other workers while deeper nodes are still being
// drained. With the parallel overload the walk itself is partitioned: every
// child group discovered at depth >= offload_depth is packaged as an
// outset_drain_task (one pool cell from the registry's "outset_drain" pool)
// and handed to the caller's spawner instead of being walked here, so idle
// workers steal whole subtree drains; each task drains its group the same
// way and re-offloads the groups below it. The add/finalize race is resolved
// per node regardless of which thread drains it: an add that loses a head
// CAS to the sentinel, or a grow that loses the children CAS to the
// sentinel, returns false and the registrant schedules its consumer itself
// (the future is already completed — both sentinels are only ever installed
// by the finalize walk, which starts after the value is published).
//
// Growth damping. Like the in-counter's grow(), descending can be gated on
// a 1/grow_threshold coin flipped per contention signal: with threshold t a
// collided add stays and fights on the current line with probability
// 1 - 1/t, so the tree grows roughly t-times slower under the same
// contention (threshold 1 = always grow, the analyzed setting; 0 = never,
// degenerating to simple_outset on the base line — a supported ablation, see
// factory.hpp).
//
// Deep-broadcast mode. scatter_depth > 0 makes every add dive that many
// levels (growing groups along a random path) before its first CAS, forcing
// the deep, wide trees that contention would build on a many-core box — the
// deterministic workload for measuring finalize-to-last-delivery latency and
// the parallel drain machinery on any hardware.
//
// Memory. Child groups (fanout cache-line nodes, one pool cell) and drain
// tasks come from the shared registry pools (src/mem/), so Figure-10 style
// churn (one future per iteration, millions of iterations) measures the
// structure, not malloc — and groups freed by reset() recirculate through
// the pool's per-worker magazines instead of a per-outset stash.

#include <cstdint>

#include "mem/registry.hpp"
#include "outset/outset.hpp"
#include "util/cache_aligned.hpp"

namespace spdag {

// THE node-group pool of a registry for one fanout (a group is `fanout`
// cache-line nodes in one cell) — the single definition of its identity,
// shared by every call site so factories and stand-alone trees can never
// diverge onto disjoint pools.
inline object_pool& tree_outset_group_pool(pool_registry& pools,
                                           std::uint32_t fanout) {
  return pools.get("outset_group", std::size_t{fanout} * cache_line_size,
                   cache_line_size);
}

// THE waiter-record pool of a registry — same single-definition rule. The
// factory acquires registrations from it, and ~tree_outset returns records
// stranded at destruction to it, so the two can never disagree.
inline object_pool& outset_waiter_pool(pool_registry& pools) {
  return pools.get("outset_waiter", sizeof(outset_waiter),
                   alignof(outset_waiter));
}

struct tree_outset_config {
  // Children installed per grow. 2 mirrors snzi's child_pair; wider fanouts
  // trade tree depth for a bigger finalize frontier.
  std::uint32_t fanout = 2;
  // Depth at which adds stop growing and spin on the deepest node's line.
  // Bounds the tree at fanout^max_depth nodes; with grow-on-contention the
  // expected depth is log_fanout(concurrent adders), far below the cap.
  std::uint32_t max_depth = 12;
  // A collided add descends with probability 1/grow_threshold (see file
  // comment); 1 = always, 0 = never.
  std::uint64_t grow_threshold = 1;
  // Parallel finalize: child groups at depth >= offload_depth are handed to
  // the spawner as drain tasks (when one is supplied). 1 = every group; the
  // base node is always drained by the finalizing thread itself.
  std::uint32_t offload_depth = 1;
  // Deep-broadcast mode (see file comment): adds dive this many levels on a
  // random path before their first CAS. 0 = off (grow on contention only).
  // The dive grows groups unconditionally — it forces structure, bypassing
  // the grow_threshold coin — so combining it with the never-grow threshold
  // 0 is contradictory (the spec parser rejects "tree:<f>:0:<scatter>").
  std::uint32_t scatter_depth = 0;
  // Registry supplying node groups, drain tasks, and the waiter pool that
  // destruction-stranded records return to; null = the process-wide default
  // registry. Borrowed, must outlive the out-set — and must be the registry
  // the out-set's waiter records were drawn from.
  pool_registry* pools = nullptr;
};

class tree_outset final : public outset {
 public:
  explicit tree_outset(tree_outset_config cfg = {});
  ~tree_outset() override;

  bool add(outset_waiter* w) noexcept override;
  // All-or-nothing: runs the same grow/descend walk as add, but the CAS that
  // wins lands the whole pre-linked chain on one node (returns n); losing to
  // a finalize sentinel rejects the group whole (returns 0).
  std::uint32_t add_group(outset_waiter* head, outset_waiter* tail,
                          std::uint32_t n) noexcept override;
  void finalize(waiter_sink sink, void* ctx) override;
  void finalize(waiter_sink sink, void* ctx, drain_spawner spawn,
                void* spawn_ctx) override;
  void reset(waiter_sink sink, void* ctx) override;

  std::uint32_t fanout() const noexcept { return cfg_.fanout; }
  std::uint64_t grow_threshold() const noexcept { return cfg_.grow_threshold; }
  std::uint32_t scatter_depth() const noexcept { return cfg_.scatter_depth; }

  // --- non-concurrent introspection (tests, space accounting) ---
  std::size_t node_count() const;  // reachable nodes incl. base
  std::size_t max_depth() const;   // base = depth 0
  // Groups ever returned to the backing pool (pool-scoped, monotone; a
  // lower bound on reuse since the pool is shared across out-sets).
  std::size_t recycled_group_count() const;

 private:
  struct alignas(cache_line_size) tree_node {
    std::atomic<outset_waiter*> head{nullptr};
    // First node of a `fanout`-wide child group, terminated_children(), or
    // nullptr while childless.
    std::atomic<tree_node*> children{nullptr};
  };
  static_assert(sizeof(tree_node) == cache_line_size,
                "an out-set node must own exactly one cache line");

  // One stolen finalize unit: a child group awaiting drain (tree_outset.cpp).
  struct drain_task;

  static tree_node* terminated_children() noexcept {
    return reinterpret_cast<tree_node*>(std::uintptr_t{1});
  }

  // Returns n's children, installing a fresh group if absent. May return
  // terminated_children() when finalize sealed the node first.
  tree_node* grow(tree_node* n) noexcept;

  // The iterative finalize walk over `count` nodes starting at `first`
  // (depth of those nodes given). Seals + drains each node, pushes kept
  // child groups on an explicit stack, and offloads groups at depth >=
  // offload_depth through `spawn` when present. Shared by finalize() (from
  // the base node) and drain_task::run() (from a stolen group).
  void drain_nodes(tree_node* first, std::uint32_t count, std::uint32_t depth,
                   waiter_sink sink, void* ctx, drain_spawner spawn,
                   void* spawn_ctx);

  tree_outset_config cfg_;
  object_pool* groups_;   // one `fanout`-node group per cell
  object_pool* waiters_;  // registry waiter pool (destructor reclamation)
  object_pool* drains_;   // drain_task cells for the parallel finalize
  tree_node base_;
};

}  // namespace spdag
