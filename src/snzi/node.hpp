#pragma once
// SNZI hierarchical node with the dynamic `grow` extension (paper section 2).
//
// The per-node protocol is the original SNZI algorithm of Ellen et al.
// (PODC'07, Figure "hierarchical SNZI object"): the node word packs a counter
// in *half units* (so the intermediate 1/2 state used to make a 0 -> positive
// transition atomic w.r.t. the parent arrival is exact integer arithmetic)
// together with a version number that serializes 1/2 -> 1 commits.
//
// grow() is this paper's extension: a childless node may be extended with a
// freshly allocated pair of children, guarded by a 1/threshold-biased coin
// flipped BEFORE the children pointer is read (section 2 explains why the
// order matters: an adversary that cannot see local coin flips cannot force
// more than `threshold` childless returns in expectation).
//
// Reclamation (appendix B): with threshold == 1 the paper proves that a node
// whose surplus returned to zero can never be reached again, so when both
// nodes of a child pair have phase-changed back to zero the pair is unlinked
// from its parent and pushed onto a recycling pool that grow() consults
// before drawing a fresh pair from the shared slab pool (src/mem/).

#include <atomic>
#include <cassert>
#include <cstdint>
#include <utility>

#include "mem/registry.hpp"
#include "snzi/root.hpp"
#include "snzi/stats.hpp"
#include "util/cache_aligned.hpp"

namespace spdag::snzi {

class node;
struct child_pair;

// Shared context: every node of one tree points here.
struct tree_context {
  root_node* root = nullptr;
  object_pool* pairs = nullptr;              // child_pair slab pool (src/mem/)
  tree_stats* stats = nullptr;               // nullable
  std::atomic<std::uint64_t> free_pairs{0};  // tagged-pointer Treiber stack
  std::atomic<std::uint64_t> pair_allocs{0};  // pairs this tree drew from pool
  std::uint64_t grow_threshold = 1;          // p = 1/grow_threshold; 0 = never grow
  bool reclaim = false;                      // appendix-B recycling (threshold==1 only)
};

class alignas(cache_line_size) node {
 public:
  node() = default;
  node(const node&) = delete;
  node& operator=(const node&) = delete;

  // (Re)initializes this node as a fresh zero-surplus member of `ctx`'s
  // tree. `parent == nullptr` means the parent is the tree root. No reader
  // synchronizes on these fields directly (handle transfer orders through
  // children_/the engine). A stale reader racing a pooled pair's re-init is
  // safe on two levels, both stated once and relied on here:
  //   * VALUES: a pair is always re-init'ed under the same parent/tree
  //     while any such reader can exist, so the racing read observes the
  //     SAME values — the fields are relaxed atomics to make that exact.
  //   * STORAGE: the read targets a mapped cell because the epoch protocol
  //     (src/mem/epoch.hpp) says so — the reader runs on a pinned worker,
  //     and a pinned thread's reachable pool memory cannot be unmapped
  //     until two epoch advances prove it has refreshed past the retire.
  //     (This file used to assume "slabs are only freed at quiescence";
  //     trim_live() retired that assumption, the pin replaces it.)
  void init(node* parent, child_pair* self_pair, tree_context* ctx) noexcept {
    cv_.store(pack(0, 0), std::memory_order_relaxed);
    children_.store(nullptr, std::memory_order_relaxed);
    parent_.store(parent, std::memory_order_relaxed);
    self_pair_.store(self_pair, std::memory_order_relaxed);
    ctx_.store(ctx, std::memory_order_relaxed);
    ops_.store(0, std::memory_order_relaxed);
  }

  // SNZI arrive: adds `n` surplus units at this node (n >= 1), propagating a
  // phase change to the parent. Returns the number of nodes visited including
  // the root (>= 1); with grow probability 1 the paper proves this is <= 3
  // amortized for n == 1. A batched arrive is exactly-once equivalent to n
  // singles — the surplus lands in at most two CASes on the common path (one
  // 0 -> 1/2 install plus one commit of all n units) — and the resulting
  // surplus supports n independent depart() calls on this node.
  int arrive(std::uint32_t n) noexcept;
  int arrive() noexcept { return arrive(1); }

  // SNZI depart: removes one surplus. Requires surplus >= 1 here (valid
  // executions only pass decrement handles returned by prior increments).
  // Returns true iff the *root* surplus reached zero due to this depart.
  bool depart() noexcept;

  // Retires this node if it was never arrived at (version 0, no surplus, no
  // children) — the Theorem B.3 case: a vertex that signals without ever
  // using its increment handle abandons the handle's node, and since the
  // handle was unique (Lemma 4.3) nobody can ever reach the node again.
  // No-op unless the tree reclaims. Never races with a depart-side retire:
  // those require a prior arrive, which makes version() nonzero.
  void retire_if_unused() noexcept {
    if (context()->reclaim && surplus_half() == 0 && version() == 0 &&
        !has_children()) {
      retire();
    }
  }

  // Dynamic-SNZI grow (paper Figure 2). Returns this node's children,
  // creating them (coin-flip permitting) if absent; returns (this, this)
  // when the node remains childless.
  std::pair<node*, node*> grow() noexcept {
    return grow(context()->grow_threshold);
  }
  std::pair<node*, node*> grow(std::uint64_t threshold) noexcept;

  // --- introspection (tests / space accounting) ---
  bool has_children() const noexcept {
    return children_.load(std::memory_order_acquire) != nullptr;
  }
  child_pair* children() const noexcept {
    return children_.load(std::memory_order_acquire);
  }
  node* parent() const noexcept {
    return parent_.load(std::memory_order_relaxed);
  }
  tree_context* context() const noexcept {
    return ctx_.load(std::memory_order_relaxed);
  }
  // Surplus in half units: 0 = zero, 1 = the transient 1/2 state, 2k = k.
  std::uint32_t surplus_half() const noexcept {
    return half_of(cv_.load(std::memory_order_acquire));
  }
  std::uint32_t version() const noexcept {
    return ver_of(cv_.load(std::memory_order_acquire));
  }
  std::uint32_t ops() const noexcept { return ops_.load(std::memory_order_relaxed); }

 private:
  static constexpr std::uint64_t pack(std::uint32_t half, std::uint32_t ver) noexcept {
    return static_cast<std::uint64_t>(half) | (static_cast<std::uint64_t>(ver) << 32);
  }
  static constexpr std::uint32_t half_of(std::uint64_t x) noexcept {
    return static_cast<std::uint32_t>(x);
  }
  static constexpr std::uint32_t ver_of(std::uint64_t x) noexcept {
    return static_cast<std::uint32_t>(x >> 32);
  }

  int arrive_parent() noexcept;
  bool depart_parent() noexcept;
  void retire() noexcept;
  void visit() noexcept {
    if (context()->stats != nullptr) {
      ops_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  std::atomic<std::uint64_t> cv_{0};
  std::atomic<child_pair*> children_{nullptr};
  // Relaxed atomics per init()'s comment; nullptr parent => ctx root.
  std::atomic<node*> parent_{nullptr};
  std::atomic<child_pair*> self_pair_{nullptr};  // nullptr for the base node
  std::atomic<tree_context*> ctx_{nullptr};
  std::atomic<std::uint32_t> ops_{0};  // instrumentation only
};

static_assert(sizeof(node) == cache_line_size,
              "a SNZI node must own exactly one cache line");

// Two sibling nodes allocated together so grow() installs both with one CAS.
// Each node is cache-line aligned; `retired` counts siblings whose surplus
// phase-changed back to zero (2 => the pair is recyclable, appendix B).
struct child_pair {
  node left;
  node right;
  std::atomic<child_pair*> next_free{nullptr};
  std::atomic<std::uint32_t> retired{0};
};

// --- recycling pool (tagged-pointer Treiber stack; tag defeats ABA) ---
// The pop-side `next_free` read can race a concurrent pop/re-init of the
// same pair: the tag CAS rejects the torn result, and the dereference
// itself is of a live pool cell — pairs on this list are never returned to
// the slab pool until the owning tree's (quiescent) destructor, so even a
// live trim (trim_live + epoch limbo, src/mem/epoch.hpp) cannot unmap a
// slab under them. The safety argument is the epoch protocol's, not a
// bespoke one: live cells are ipso facto not retireable.
void free_pair_push(tree_context& ctx, child_pair* pair) noexcept;
child_pair* free_pair_pop(tree_context& ctx) noexcept;
std::size_t free_pair_count(const tree_context& ctx) noexcept;

// THE child-pair pool of a registry — the single definition of its
// (name, geometry) identity, shared by every call site so trees and
// counter factories can never diverge onto disjoint pools.
inline object_pool& child_pair_pool(pool_registry& pools) {
  return pools.get("snzi_pair", sizeof(child_pair), alignof(child_pair));
}

}  // namespace spdag::snzi
