#pragma once
// Minimal command-line / environment option parsing for benches & examples.
//
// Conventions follow the paper's artifact: options are `-key value` pairs
// (e.g. `-n 8000000 -proc 40 -threshold 100`). Environment variables of the
// form SPDAG_KEY override nothing but provide defaults, so the benchmark
// suite can be scaled globally (SPDAG_N, SPDAG_PROC, ...).

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace spdag {

class options {
 public:
  options() = default;
  options(int argc, char** argv) { parse(argc, argv); }

  // Parses `-key value` pairs; unknown keys are retained (callers decide).
  void parse(int argc, char** argv);

  // Lookup order: command line, then environment SPDAG_<KEY>, then fallback.
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  std::string get_string(const std::string& key, const std::string& fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  bool has(const std::string& key) const;

  // Keys seen on the command line (for echoing configuration).
  std::vector<std::string> keys() const;

 private:
  std::optional<std::string> raw(const std::string& key) const;
  std::map<std::string, std::string> values_;
};

}  // namespace spdag
