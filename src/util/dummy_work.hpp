#pragma once
// Calibrated dummy work for the granularity study (paper appendix C.3).
//
// The paper's granularity experiments attach "approximately one nanosecond
// per unit" of busy work to each leaf task. We calibrate a spin kernel once
// per process so `spin_ns(k)` burns roughly k nanoseconds, independent of
// compiler optimization (the kernel's result is fed into a sink).

#include <cstdint>

namespace spdag {

// Executes `units` iterations of the calibration kernel. Returns a value
// that callers should feed to `sink` (or otherwise consume) so the loop
// cannot be optimized away.
std::uint64_t spin_work(std::uint64_t units) noexcept;

// Burns approximately `ns` nanoseconds of CPU.
void spin_ns(std::uint64_t ns) noexcept;

// Units of spin_work per nanosecond, measured once on first use.
double spin_units_per_ns() noexcept;

// Consumes a value with a compiler barrier.
void sink(std::uint64_t v) noexcept;

}  // namespace spdag
