#include "outset/simple_outset.hpp"

namespace spdag {

bool simple_outset::add(outset_waiter* w) noexcept {
  outset_waiter* head = head_.load(std::memory_order_acquire);
  for (;;) {
    if (head == terminated_waiter()) {
      // The producer finalized first; the hand-off is the caller's.
      count_rejected();
      return false;
    }
    w->next.store(head, std::memory_order_relaxed);
    if (head_.compare_exchange_weak(head, w, std::memory_order_release,
                                    std::memory_order_acquire)) {
      count_add();
      return true;
    }
    count_retry();
  }
}

std::uint32_t simple_outset::add_group(outset_waiter* head,
                                       outset_waiter* tail,
                                       std::uint32_t n) noexcept {
  outset_waiter* old = head_.load(std::memory_order_acquire);
  for (;;) {
    if (old == terminated_waiter()) {
      // Finalized: the whole group bounces and the caller delivers it.
      count_rejected(n);
      return 0;
    }
    // Splice the pre-linked chain in front of the current list: one CAS
    // registers all n waiters (vs n CASes — the add-side amortization).
    tail->next.store(old, std::memory_order_relaxed);
    if (head_.compare_exchange_weak(old, head, std::memory_order_release,
                                    std::memory_order_acquire)) {
      count_add(n);
      count_group_add();
      return n;
    }
    count_retry();
  }
}

void simple_outset::finalize(waiter_sink sink, void* ctx) {
  // One exchange atomically captures every waiter that won its add-CAS and
  // terminates the out-set: adds that lose from here on see the sentinel.
  outset_waiter* w =
      head_.exchange(terminated_waiter(), std::memory_order_acq_rel);
  drain_chain(w, sink, ctx);
}

void simple_outset::reset(waiter_sink sink, void* ctx) {
  // Registrations an abandoned future left behind go back to the pool.
  scrub_chain(head_.exchange(nullptr, std::memory_order_relaxed), sink, ctx);
}

}  // namespace spdag
