// Tests for the fixed-depth SNZI tree with hashed leaf placement
// (the paper's fixed-SNZI baseline, section 5).

#include <gtest/gtest.h>

#include <map>
#include <thread>
#include <vector>

#include "snzi/fixed_tree.hpp"

namespace spdag::snzi {
namespace {

TEST(FixedTree, DepthZeroIsSingleNode) {
  fixed_tree t(0);
  EXPECT_EQ(t.node_count(), 1u);
  EXPECT_EQ(t.leaf_count(), 1u);
  EXPECT_FALSE(t.query());
}

TEST(FixedTree, NodeCountMatchesPaperFormula) {
  // 2^{d+1} - 1 nodes for depth d.
  for (int d = 0; d <= 6; ++d) {
    fixed_tree t(d);
    EXPECT_EQ(t.node_count(), (std::size_t{2} << d) - 1) << "depth " << d;
    EXPECT_EQ(t.leaf_count(), std::size_t{1} << d) << "depth " << d;
  }
}

TEST(FixedTree, RejectsAbsurdDepths) {
  EXPECT_THROW(fixed_tree(-1), std::invalid_argument);
  EXPECT_THROW(fixed_tree(25), std::invalid_argument);
}

TEST(FixedTree, LeafPlacementIsDeterministic) {
  fixed_tree t(4);
  for (std::uint64_t k = 0; k < 64; ++k) {
    EXPECT_EQ(t.leaf_for(k), t.leaf_for(k));
  }
}

TEST(FixedTree, HashSpreadsKeysAcrossLeaves) {
  fixed_tree t(4);  // 16 leaves
  std::map<node*, int> histogram;
  constexpr int kKeys = 1600;
  for (std::uint64_t k = 0; k < kKeys; ++k) histogram[t.leaf_for(k)]++;
  EXPECT_EQ(histogram.size(), t.leaf_count())
      << "every leaf should receive some keys";
  for (const auto& [leaf, count] : histogram) {
    EXPECT_GT(count, kKeys / 32) << "pathologically cold leaf";
    EXPECT_LT(count, kKeys / 4) << "pathologically hot leaf";
  }
}

TEST(FixedTree, MatchedArriveDepartRoundTrip) {
  fixed_tree t(3);
  std::vector<node*> tokens;
  tokens.reserve(100);
  for (std::uint64_t k = 0; k < 100; ++k) tokens.push_back(t.arrive(k));
  EXPECT_TRUE(t.query());
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    EXPECT_FALSE(t.depart(tokens[i]));
  }
  EXPECT_TRUE(t.depart(tokens.back()));
  EXPECT_FALSE(t.query());
}

TEST(FixedTree, InitialSurplusDepartsViaInitialLeaf) {
  fixed_tree t(2, /*initial_surplus=*/1);
  EXPECT_TRUE(t.query());
  EXPECT_TRUE(t.depart(t.leaf_for(0)));
  EXPECT_FALSE(t.query());
}

TEST(FixedTree, ResetRebuildsCleanTree) {
  fixed_tree t(3);
  node* tok = t.arrive(7);
  t.depart(tok);
  t.reset(1);
  EXPECT_EQ(t.node_count(), 15u);
  EXPECT_TRUE(t.query());
  EXPECT_TRUE(t.depart(t.leaf_for(0)));
}

TEST(FixedTreeConcurrent, ManyThreadsBalancedOps) {
  fixed_tree t(4);
  constexpr int kThreads = 8;
  constexpr int kOps = 10000;
  std::vector<std::thread> threads;
  for (int id = 0; id < kThreads; ++id) {
    threads.emplace_back([&t, id] {
      for (int i = 0; i < kOps; ++i) {
        node* tok = t.arrive(static_cast<std::uint64_t>(id) * kOps + i);
        t.depart(tok);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(t.query());
  t.tree().for_each_node(
      [](const node& n, std::size_t) { EXPECT_EQ(n.surplus_half(), 0u); });
}

TEST(FixedTreeConcurrent, ZeroDetectionUnderContention) {
  for (int round = 0; round < 50; ++round) {
    fixed_tree t(2);
    constexpr int kThreads = 4;
    std::vector<node*> tokens;
    for (int i = 0; i < kThreads; ++i) {
      tokens.push_back(t.arrive(static_cast<std::uint64_t>(i)));
    }
    std::atomic<int> zeros{0};
    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; ++i) {
      threads.emplace_back([&t, &zeros, tok = tokens[static_cast<size_t>(i)]] {
        if (t.depart(tok)) zeros.fetch_add(1);
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(zeros.load(), 1) << "exactly one depart zeroes the tree";
    EXPECT_FALSE(t.query());
  }
}

}  // namespace
}  // namespace spdag::snzi
