#include "harness/workloads.hpp"

#include <atomic>
#include <chrono>

#include "dag/future.hpp"
#include "dag/parallel_for.hpp"
#include "util/dummy_work.hpp"

namespace spdag::harness {

namespace {

void indegree2_rec(std::uint64_t n, std::uint64_t work_ns) {
  if (n >= 2) {
    finish_then(
        [n, work_ns] {
          fork2([n, work_ns] { indegree2_rec(n / 2, work_ns); },
                [n, work_ns] { indegree2_rec(n - n / 2, work_ns); });
        },
        [] {});
  } else if (work_ns != 0) {
    spin_ns(work_ns);
  }
}

void fanout_rec(future<std::uint64_t> f, std::atomic<std::uint64_t>* sum,
                std::uint64_t k, std::uint64_t work_ns) {
  if (k >= 2) {
    fork2([f, sum, k, work_ns] { fanout_rec(f, sum, k / 2, work_ns); },
          [f, sum, k, work_ns] { fanout_rec(f, sum, k - k / 2, work_ns); });
  } else if (k == 1) {
    future_then(f, [sum, work_ns](std::uint64_t v) {
      if (work_ns != 0) spin_ns(work_ns);
      sum->fetch_add(v, std::memory_order_relaxed);
    });
  }
}

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// CAS-max: record `t` in *dest if it is the latest delivery seen so far.
void stamp_latest(std::atomic<std::int64_t>* dest, std::int64_t t) {
  std::int64_t prev = dest->load(std::memory_order_relaxed);
  while (prev < t &&
         !dest->compare_exchange_weak(prev, t, std::memory_order_relaxed)) {
  }
}

void fanout_timed_rec(future<std::uint64_t> f, std::atomic<std::uint64_t>* sum,
                      std::atomic<std::int64_t>* latest,
                      std::atomic<std::int64_t>* t0,
                      latency_histogram* hist, std::uint64_t k,
                      std::uint64_t work_ns) {
  if (k >= 2) {
    fork2([=] { fanout_timed_rec(f, sum, latest, t0, hist, k / 2, work_ns); },
          [=] {
            fanout_timed_rec(f, sum, latest, t0, hist, k - k / 2, work_ns);
          });
  } else if (k == 1) {
    future_then(f, [sum, latest, t0, hist, work_ns](std::uint64_t v) {
      // Stamp BEFORE the dummy work: delivery latency, not work time.
      const std::int64_t now = now_ns();
      stamp_latest(latest, now);
      if (hist != nullptr) {
        const std::int64_t start = t0->load(std::memory_order_relaxed);
        hist->record(now > start ? static_cast<std::uint64_t>(now - start)
                                 : 0);
      }
      if (work_ns != 0) spin_ns(work_ns);
      sum->fetch_add(v, std::memory_order_relaxed);
    });
  }
}

void churn_rec(std::atomic<std::uint64_t>* sum, std::uint64_t k,
               std::uint64_t work_ns) {
  if (k >= 2) {
    fork2([sum, k, work_ns] { churn_rec(sum, k / 2, work_ns); },
          [sum, k, work_ns] { churn_rec(sum, k - k / 2, work_ns); });
  } else if (k == 1) {
    // One full future lifecycle per leaf: make + complete + one
    // registration + destroy, nothing shared across leaves.
    fork2_future<std::uint64_t>(
        [work_ns] {
          if (work_ns != 0) spin_ns(work_ns);
          return std::uint64_t{1};
        },
        [sum](future<std::uint64_t> f) {
          future_then(f, [sum](std::uint64_t v) {
            sum->fetch_add(v, std::memory_order_relaxed);
          });
        });
  }
}

void churn_timed_rec(std::atomic<std::uint64_t>* sum, latency_histogram* hist,
                     std::uint64_t k, std::uint64_t work_ns) {
  if (k >= 2) {
    fork2([=] { churn_timed_rec(sum, hist, k / 2, work_ns); },
          [=] { churn_timed_rec(sum, hist, k - k / 2, work_ns); });
  } else if (k == 1) {
    // Same lifecycle as churn_rec, but the producer returns its completion
    // timestamp AS the future's value; the consumer's delta is then the
    // complete-to-delivery latency with zero extra state per iteration.
    fork2_future<std::uint64_t>(
        [work_ns] {
          if (work_ns != 0) spin_ns(work_ns);
          return static_cast<std::uint64_t>(now_ns());
        },
        [sum, hist](future<std::uint64_t> f) {
          future_then(f, [sum, hist](std::uint64_t v) {
            const std::int64_t now = now_ns();
            const std::int64_t start = static_cast<std::int64_t>(v);
            hist->record(now > start ? static_cast<std::uint64_t>(now - start)
                                     : 0);
            sum->fetch_add(1, std::memory_order_relaxed);
          });
        });
  }
}

void fib_rec(unsigned n, std::uint64_t* dest) {
  if (n <= 1) {
    *dest = n;
    return;
  }
  // The paper's Figure 4: a chain whose first vertex spawns the two
  // recursive calls and whose second vertex sums the results.
  auto* res = new std::pair<std::uint64_t, std::uint64_t>{0, 0};
  finish_then(
      [n, res] {
        fork2([n, res] { fib_rec(n - 1, &res->first); },
              [n, res] { fib_rec(n - 2, &res->second); });
      },
      [res, dest] {
        *dest = res->first + res->second;
        delete res;
      });
}

}  // namespace

void fanin(runtime& rt, std::uint64_t n, std::uint64_t work_ns, bool batch) {
  if (work_ns != 0) spin_units_per_ns();  // calibrate outside the timed region
  // The fan-out IS parallel_for with grain 1 (n leaves under one finish) —
  // the former private fanin_rec splitter duplicated pfor_range verbatim,
  // so the benches now exercise the same builder the apps use.
  rt.run([n, work_ns, batch] {
    finish_then(
        [n, work_ns, batch] {
          auto leaf = [work_ns](std::size_t) {
            if (work_ns != 0) spin_ns(work_ns);
          };
          if (batch) {
            parallel_for_blocked(0, static_cast<std::size_t>(n), 1, leaf);
          } else {
            parallel_for(0, static_cast<std::size_t>(n), 1, leaf);
          }
        },
        [] {});
  });
}

void indegree2(runtime& rt, std::uint64_t n, std::uint64_t work_ns) {
  if (work_ns != 0) spin_units_per_ns();
  rt.run([n, work_ns] { indegree2_rec(n, work_ns); });
}

std::uint64_t fanout(runtime& rt, std::uint64_t consumers,
                     std::uint64_t work_ns, std::uint64_t producer_ns) {
  if (work_ns != 0 || producer_ns != 0) spin_units_per_ns();
  std::atomic<std::uint64_t> sum{0};
  auto* s = &sum;
  rt.run([s, consumers, work_ns, producer_ns] {
    fork2_future<std::uint64_t>(
        [producer_ns] {
          if (producer_ns != 0) spin_ns(producer_ns);
          return std::uint64_t{1};
        },
        [s, consumers, work_ns](future<std::uint64_t> f) {
          fanout_rec(f, s, consumers, work_ns);
        });
  });
  return sum.load();
}

std::uint64_t fanout_timed(runtime& rt, std::uint64_t consumers,
                           std::uint64_t work_ns, std::uint64_t producer_ns,
                           fanout_timing* timing, latency_histogram* hist) {
  if (work_ns != 0 || producer_ns != 0) spin_units_per_ns();
  std::atomic<std::uint64_t> sum{0};
  std::atomic<std::int64_t> t0{0};
  std::atomic<std::int64_t> latest{0};
  auto* s = &sum;
  auto* t0p = &t0;
  auto* lp = &latest;
  // Hand-rolled fork2_future so the finalize start can be stamped
  // immediately before complete() — the producer closure of fork2_future
  // offers no hook there.
  rt.run([s, t0p, lp, hist, consumers, work_ns, producer_ns] {
    future<std::uint64_t> f = future<std::uint64_t>::make();
    fork2(
        [f, t0p, producer_ns] {
          if (producer_ns != 0) spin_ns(producer_ns);
          t0p->store(now_ns(), std::memory_order_relaxed);
          f.complete(1, dag_engine::current_engine());
        },
        [f, s, lp, t0p, hist, consumers, work_ns] {
          fanout_timed_rec(f, s, lp, t0p, hist, consumers, work_ns);
        });
  });
  if (timing != nullptr) {
    const std::int64_t span = latest.load() - t0.load();
    timing->finalize_to_last_s =
        (consumers > 0 && span > 0) ? static_cast<double>(span) * 1e-9 : 0.0;
  }
  return sum.load();
}

std::uint64_t future_churn(runtime& rt, std::uint64_t n,
                           std::uint64_t work_ns) {
  if (work_ns != 0) spin_units_per_ns();
  std::atomic<std::uint64_t> sum{0};
  auto* s = &sum;
  rt.run([s, n, work_ns] { churn_rec(s, n, work_ns); });
  return sum.load();
}

std::uint64_t future_churn_timed(runtime& rt, std::uint64_t n,
                                 std::uint64_t work_ns,
                                 latency_histogram* hist) {
  if (work_ns != 0) spin_units_per_ns();
  std::atomic<std::uint64_t> sum{0};
  auto* s = &sum;
  rt.run([s, hist, n, work_ns] { churn_timed_rec(s, hist, n, work_ns); });
  return sum.load();
}

std::uint64_t fib(runtime& rt, unsigned n) {
  std::uint64_t result = 0;
  std::uint64_t* dest = &result;
  rt.run([n, dest] { fib_rec(n, dest); });
  return result;
}

std::uint64_t counter_ops(std::uint64_t n) {
  // Each of the n-1 spawns is one arrive; each of the n leaves plus the n-1
  // spawn continuations resolves one depart obligation. We report the
  // paper's convention (ops = n) scaled to arrive+depart pairs.
  return 2 * n;
}

std::uint64_t outset_ops(std::uint64_t n) {
  // One registration plus one delivery per consumer.
  return 2 * n;
}

std::uint64_t churn_futures(std::uint64_t n) {
  // One future lifecycle per leaf.
  return n;
}

}  // namespace spdag::harness
