#include "harness/workloads.hpp"

#include "util/dummy_work.hpp"

namespace spdag::harness {

namespace {

void fanin_rec(std::uint64_t n, std::uint64_t work_ns) {
  if (n >= 2) {
    fork2([n, work_ns] { fanin_rec(n / 2, work_ns); },
          [n, work_ns] { fanin_rec(n - n / 2, work_ns); });
  } else if (work_ns != 0) {
    spin_ns(work_ns);
  }
}

void indegree2_rec(std::uint64_t n, std::uint64_t work_ns) {
  if (n >= 2) {
    finish_then(
        [n, work_ns] {
          fork2([n, work_ns] { indegree2_rec(n / 2, work_ns); },
                [n, work_ns] { indegree2_rec(n - n / 2, work_ns); });
        },
        [] {});
  } else if (work_ns != 0) {
    spin_ns(work_ns);
  }
}

void fib_rec(unsigned n, std::uint64_t* dest) {
  if (n <= 1) {
    *dest = n;
    return;
  }
  // The paper's Figure 4: a chain whose first vertex spawns the two
  // recursive calls and whose second vertex sums the results.
  auto* res = new std::pair<std::uint64_t, std::uint64_t>{0, 0};
  finish_then(
      [n, res] {
        fork2([n, res] { fib_rec(n - 1, &res->first); },
              [n, res] { fib_rec(n - 2, &res->second); });
      },
      [res, dest] {
        *dest = res->first + res->second;
        delete res;
      });
}

}  // namespace

void fanin(runtime& rt, std::uint64_t n, std::uint64_t work_ns) {
  if (work_ns != 0) spin_units_per_ns();  // calibrate outside the timed region
  rt.run([n, work_ns] { finish_then([n, work_ns] { fanin_rec(n, work_ns); }, [] {}); });
}

void indegree2(runtime& rt, std::uint64_t n, std::uint64_t work_ns) {
  if (work_ns != 0) spin_units_per_ns();
  rt.run([n, work_ns] { indegree2_rec(n, work_ns); });
}

std::uint64_t fib(runtime& rt, unsigned n) {
  std::uint64_t result = 0;
  std::uint64_t* dest = &result;
  rt.run([n, dest] { fib_rec(n, dest); });
  return result;
}

std::uint64_t counter_ops(std::uint64_t n) {
  // Each of the n-1 spawns is one arrive; each of the n leaves plus the n-1
  // spawn continuations resolves one depart obligation. We report the
  // paper's convention (ops = n) scaled to arrive+depart pairs.
  return 2 * n;
}

}  // namespace spdag::harness
