#!/usr/bin/env python3
"""CI perf-smoke gate over BENCH_*.json telemetry.

Reads the future_churn JSON document (see harness::json_write) and fails
the job when pooled-allocator throughput drops below the malloc baseline
MEASURED IN THE SAME RUN. Comparing within one run makes the check safe on
shared CI runners: machine speed cancels out of the ratio, so the gate
catches a pool regression without pinning absolute numbers.

With --trace-compare, additionally enforces the tracing subsystem's
zero-cost claim: the main document (built with tracing compiled in, run
with `trace:off`) is compared against a second future_churn document from a
-DSPDAG_TRACE=OFF build of the same commit. The geometric mean of the
per-proc "pool" throughput ratios must stay within --max-trace-overhead
(default 3%) of the compiled-out build.

With --epoch-compare, enforces the same bounded-overhead claim for the
epoch-based reclamation layer (src/mem/epoch.hpp): the main document
(epoch compiled in — worker loops pin/refresh/tick) against a future_churn
document from a -DSPDAG_EPOCH=OFF build. Budget --max-epoch-overhead
(default 3% geomean).

With --service, additionally sanity-gates the dag_service traffic bench
(BENCH_service_traffic.json): every service/<sched>/clients:<c> record must
conserve submissions (completed == submitted - rejected, completed > 0),
report a finite positive sojourn p99 and a positive completion rate. When
the records were produced by an epoch-enabled build (extra.epoch_enabled),
each must also show busy trims actually firing, and ACROSS the document
some slabs must have made the full retire -> reclaim trip — the
busy-trim-under-load acceptance (the dispatcher only trims inside its
dispatch loop, so a nonzero count proves reclamation under live traffic).
This is a correctness gate, not a throughput gate — service rates depend on
the offered arrival schedule, so absolute numbers are not pinned.

With --apps, additionally sanity-gates the application-tier benches
(BENCH_apps.json, the merged bfs / wavefront_lcs / stream_pipeline
document). Every record must conserve vertices (completed == spawned,
both > 0) and report a finite positive p99 and rate; the amortization
claim is gated directly on the ledger: batch records (extra.batch == 1)
must report counter_ops_per_edge strictly < 1.0, unbatched records must
sit at exactly 1.0 (small tolerance for float serialization) — unbatched
execution pays one inc + one dec per edge by construction.

With --contention, additionally gates the contention-diffusion ablation
(BENCH_contention.json from bench/contention_ablation): every
contention/<family>/<spec>/proc:<p> record must conserve its operations
exactly (accounted == attempted > 0) and report a finite positive rate,
and every DIFFUSED spec (extra.diffused == 1: pool:elim / simple:fc / fc)
at procs >= 2 must show the diffusion machinery actually firing —
eliminations + combined_ops > 0. The storms retry a bounded number of
rounds specifically so this is deterministic on a 1-core runner.

With --selftest, runs the embedded good/bad fixture documents through
every gate (churn pool/malloc ratio, trace/epoch overhead compare,
service, apps, contention) and exits nonzero if any gate passes a bad
fixture or fails a good one — run this FIRST in CI so a refactor of this
script cannot silently pass everything.

Exit codes: 0 pass, 1 perf regression, 2 malformed/unusable input.

Usage: perf_smoke_gate.py BENCH_future_churn.json [--min-ratio 0.9]
           [--trace-compare BENCH_future_churn_notrace.json]
           [--max-trace-overhead 0.03]
           [--epoch-compare BENCH_future_churn_noepoch.json]
           [--max-epoch-overhead 0.03]
           [--service BENCH_service_traffic.json]
           [--apps BENCH_apps.json]
           [--contention BENCH_contention.json]
       perf_smoke_gate.py --selftest
"""

import argparse
import json
import math
import os
import sys
import tempfile


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"perf_smoke_gate: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    for key in ("schema", "bench", "git_sha", "records"):
        if key not in doc:
            print(f"perf_smoke_gate: {path} missing key '{key}'",
                  file=sys.stderr)
            sys.exit(2)
    return doc


def churn_pool_rates(doc):
    """proc -> ops_per_s for the gated churn/pool/... records."""
    rates = {}
    for rec in doc["records"]:
        if rec.get("name", "").startswith("churn/") and rec.get("spec") == "pool":
            rates[rec["proc"]] = rec["ops_per_s"]
    return rates


def overhead_gate(doc, compare_path, max_overhead, label):
    """True when the main run keeps up with the feature-compiled-out build.

    Shared by --trace-compare and --epoch-compare: both assert that a
    compile-time-removable layer costs at most `max_overhead` (geomean of
    per-proc pool-throughput ratios) when compiled in.
    """
    stripped = load(compare_path)
    enabled = churn_pool_rates(doc)
    baseline = churn_pool_rates(stripped)
    ratios = []
    for proc in sorted(baseline):
        if proc not in enabled or baseline[proc] <= 0:
            continue
        ratio = enabled[proc] / baseline[proc]
        ratios.append(ratio)
        print(f"  proc {proc}: {label} {enabled[proc]:,.0f} vs compiled-out "
              f"{baseline[proc]:,.0f} fut/s -> ratio {ratio:.3f}")
    if not ratios:
        print(f"perf_smoke_gate: no comparable record pairs for {label}",
              file=sys.stderr)
        sys.exit(2)
    geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
    floor = 1.0 - max_overhead
    verdict = "ok" if geomean >= floor else "REGRESSION"
    print(f"  {label} geomean ratio {geomean:.3f} "
          f"(floor {floor:.3f}) [{verdict}]")
    return geomean >= floor


def service_gate(path):
    """True when every dag_service traffic record is sane (see module doc)."""
    doc = load(path)
    checked = 0
    ok = True
    epoch_records = 0
    total_reclaimed = 0.0
    total_retired = 0.0
    for rec in doc["records"]:
        name = rec.get("name", "")
        if not name.startswith("service/"):
            continue
        checked += 1
        extra = rec.get("extra", {})
        submitted = extra.get("submitted", 0)
        rejected = extra.get("rejected", 0)
        completed = extra.get("completed", 0)
        p99 = rec.get("lat_p99_ms", 0)
        rate = rec.get("ops_per_s", 0)
        problems = []
        if completed <= 0:
            problems.append("completed == 0")
        if completed != submitted - rejected:
            problems.append(
                f"conservation: completed {completed:.0f} != submitted "
                f"{submitted:.0f} - rejected {rejected:.0f}")
        if not (math.isfinite(p99) and p99 > 0):
            problems.append(f"sojourn p99 not finite/positive: {p99}")
        if not (math.isfinite(rate) and rate > 0):
            problems.append(f"ops_per_s not finite/positive: {rate}")
        if extra.get("epoch_enabled", 0) > 0:
            epoch_records += 1
            busy_trims = extra.get("busy_trims", 0)
            total_retired += extra.get("slabs_retired", 0)
            total_reclaimed += extra.get("slabs_reclaimed", 0)
            # The cadence (busy_trim_every << dispatch count) guarantees
            # trims per record; slab yield varies with traffic shape, so
            # the retire/reclaim assertion is document-wide, below.
            if busy_trims <= 0:
                problems.append("epoch enabled but busy_trims == 0")
        verdict = "ok" if not problems else "FAIL: " + "; ".join(problems)
        print(f"  {name}: completed {completed:,.0f}/{submitted:,.0f} "
              f"@ {rate:,.0f}/s, sojourn p99 {p99:.3f}ms [{verdict}]")
        if problems:
            ok = False
    if checked == 0:
        print(f"perf_smoke_gate: no service/ records in {path}",
              file=sys.stderr)
        sys.exit(2)
    if epoch_records > 0:
        reclaim_ok = total_reclaimed > 0
        verdict = "ok" if reclaim_ok else "FAIL"
        print(f"  busy-trim acceptance: slabs retired {total_retired:.0f}, "
              f"reclaimed {total_reclaimed:.0f} across {epoch_records} "
              f"epoch-enabled records [{verdict}]")
        if not reclaim_ok:
            print("perf_smoke_gate: epoch-enabled service never reclaimed a "
                  "slab under load — busy trim is not doing its job",
                  file=sys.stderr)
            ok = False
    return ok


def apps_gate(path):
    """True when every application-tier record is sane (see module doc)."""
    doc = load(path)
    checked = 0
    batch_records = 0
    ok = True
    for rec in doc["records"]:
        name = rec.get("name", "")
        extra = rec.get("extra", {})
        if "counter_ops_per_edge" not in extra:
            continue
        checked += 1
        completed = extra.get("completed", 0)
        spawned = extra.get("spawned", 0)
        ratio = extra.get("counter_ops_per_edge", 0)
        batch = extra.get("batch", 0) > 0
        p99 = rec.get("lat_p99_ms", 0)
        rate = rec.get("ops_per_s", 0)
        problems = []
        if completed <= 0:
            problems.append("completed == 0")
        if completed != spawned:
            problems.append(
                f"conservation: completed {completed:.0f} != spawned "
                f"{spawned:.0f}")
        if batch:
            batch_records += 1
            if not (math.isfinite(ratio) and 0 < ratio < 1.0):
                problems.append(
                    f"batch run did not amortize: counter_ops_per_edge "
                    f"{ratio} (need strictly < 1.0)")
        else:
            # One inc + one dec per edge, exactly; tolerance only for float
            # round-trip through JSON.
            if not (math.isfinite(ratio) and abs(ratio - 1.0) < 1e-9):
                problems.append(
                    f"unbatched counter_ops_per_edge {ratio} != 1.0")
        if not (math.isfinite(p99) and p99 > 0):
            problems.append(f"p99 not finite/positive: {p99}")
        if not (math.isfinite(rate) and rate > 0):
            problems.append(f"ops_per_s not finite/positive: {rate}")
        verdict = "ok" if not problems else "FAIL: " + "; ".join(problems)
        print(f"  {name}: {completed:,.0f} vertices @ {rate:,.0f}/s, "
              f"ops/edge {ratio:.4f}, p99 {p99:.3f}ms [{verdict}]")
        if problems:
            ok = False
    if checked == 0:
        print(f"perf_smoke_gate: no app records in {path}", file=sys.stderr)
        sys.exit(2)
    if batch_records == 0:
        print(f"perf_smoke_gate: no batch app records in {path} — the "
              f"amortization claim went unexercised", file=sys.stderr)
        sys.exit(2)
    return ok


def contention_gate(path):
    """True when every contention-ablation record is sane (see module doc)."""
    doc = load(path)
    checked = 0
    ok = True
    for rec in doc["records"]:
        name = rec.get("name", "")
        if not name.startswith("contention/"):
            continue
        checked += 1
        extra = rec.get("extra", {})
        attempted = extra.get("attempted", 0)
        accounted = extra.get("accounted", 0)
        diffused = extra.get("diffused", 0) > 0
        fired = extra.get("eliminations", 0) + extra.get("combined_ops", 0)
        rate = rec.get("ops_per_s", 0)
        proc = rec.get("proc", 0)
        problems = []
        if attempted <= 0:
            problems.append("attempted == 0")
        if accounted != attempted:
            problems.append(
                f"conservation: accounted {accounted:.0f} != attempted "
                f"{attempted:.0f}")
        if not (math.isfinite(rate) and rate > 0):
            problems.append(f"ops_per_s not finite/positive: {rate}")
        if diffused and proc >= 2 and fired <= 0:
            problems.append(
                "diffused spec never diffused: eliminations + combined_ops "
                "== 0 at procs >= 2")
        verdict = "ok" if not problems else "FAIL: " + "; ".join(problems)
        print(f"  {name}: {attempted:,.0f} ops @ {rate:,.0f}/s, "
              f"diffusion events {fired:,.0f} [{verdict}]")
        if problems:
            ok = False
    if checked == 0:
        print(f"perf_smoke_gate: no contention/ records in {path}",
              file=sys.stderr)
        sys.exit(2)
    return ok


def churn_gate(doc, min_ratio):
    """True when pooled churn throughput keeps up with same-run malloc.

    churn/<alloc-spec>/proc:<p> records; "pool" is the gated spec,
    "pool:adaptive" is reported for the trajectory but not gated (its
    magazines re-size mid-run, so its smoke-sized numbers are noisier).
    """
    by_spec = {}
    for rec in doc["records"]:
        if not rec.get("name", "").startswith("churn/"):
            continue
        by_spec.setdefault(rec["spec"], {})[rec["proc"]] = rec["ops_per_s"]

    base = by_spec.get("malloc", {})
    pool = by_spec.get("pool", {})
    adaptive = by_spec.get("pool:adaptive", {})

    ok = True
    checked = 0
    for proc in sorted(base):
        if proc not in pool or base[proc] <= 0:
            continue
        checked += 1
        ratio = pool[proc] / base[proc]
        verdict = "ok" if ratio >= min_ratio else "REGRESSION"
        print(f"  proc {proc}: pool {pool[proc]:,.0f} vs malloc "
              f"{base[proc]:,.0f} fut/s -> ratio {ratio:.3f} [{verdict}]")
        if ratio < min_ratio:
            ok = False
        if proc in adaptive and base[proc] > 0:
            print(f"  proc {proc}: pool:adaptive {adaptive[proc]:,.0f} fut/s "
                  f"-> ratio {adaptive[proc] / base[proc]:.3f} [info]")

    if checked == 0:
        print("perf_smoke_gate: no comparable pool/malloc record pairs found",
              file=sys.stderr)
        sys.exit(2)
    return ok


# --- selftest fixtures -------------------------------------------------------

def _fixture(records):
    return {"schema": 2, "bench": "fixture", "git_sha": "0" * 40,
            "generated_unix": 0, "records": records}


def _churn_rec(spec, proc, rate):
    return {"name": f"churn/{spec}/proc:{proc}", "spec": spec, "proc": proc,
            "ops_per_s": rate}


def _service_rec(completed, submitted, rejected=0, p99=1.0, rate=100.0):
    return {"name": "service/default/clients:2", "proc": 2, "ops_per_s": rate,
            "lat_p99_ms": p99,
            "extra": {"submitted": submitted, "rejected": rejected,
                      "completed": completed}}


def _app_rec(batch, ratio, completed=100, spawned=100, p99=1.0, rate=100.0):
    return {"name": f"apps/bfs/batch:{batch}", "proc": 2, "ops_per_s": rate,
            "lat_p99_ms": p99,
            "extra": {"completed": completed, "spawned": spawned,
                      "counter_ops_per_edge": ratio, "batch": batch}}


def _contention_rec(spec, proc, diffused, elim=0, combined=0, attempted=100,
                    accounted=None, rate=100.0):
    return {"name": f"contention/x/{spec}/proc:{proc}", "spec": spec,
            "proc": proc, "ops_per_s": rate,
            "extra": {"attempted": attempted,
                      "accounted": attempted if accounted is None
                      else accounted,
                      "diffused": diffused, "eliminations": elim,
                      "combined_ops": combined}}


def selftest():
    """Runs every gate over embedded good/bad fixtures; 0 iff all behave."""
    failures = []

    def expect(label, want, fn):
        try:
            got = "pass" if fn() else "fail"
        except SystemExit as e:
            got = f"exit{e.code}"
        verdict = "ok" if got == want else "SELFTEST FAIL"
        print(f"  selftest {label}: want {want}, got {got} [{verdict}]")
        if got != want:
            failures.append(label)

    with tempfile.TemporaryDirectory() as tmp:
        def write(name, doc):
            path = os.path.join(tmp, name)
            with open(path, "w") as f:
                json.dump(doc, f)
            return path

        # churn pool/malloc ratio gate
        churn_good = _fixture([_churn_rec("malloc", 1, 100.0),
                               _churn_rec("pool", 1, 120.0)])
        churn_bad = _fixture([_churn_rec("malloc", 1, 100.0),
                              _churn_rec("pool", 1, 50.0)])
        expect("churn good", "pass", lambda: churn_gate(churn_good, 0.9))
        expect("churn bad", "fail", lambda: churn_gate(churn_bad, 0.9))
        expect("churn empty", "exit2", lambda: churn_gate(_fixture([]), 0.9))

        # trace/epoch overhead compare (same code path for both flags)
        flat = write("flat.json", churn_good)
        slow = _fixture([_churn_rec("malloc", 1, 100.0),
                         _churn_rec("pool", 1, 60.0)])
        expect("overhead good", "pass",
               lambda: overhead_gate(churn_good, flat, 0.03, "selftest"))
        expect("overhead bad", "fail",
               lambda: overhead_gate(slow, flat, 0.03, "selftest"))
        empty = write("empty.json", _fixture([]))
        expect("overhead empty", "exit2",
               lambda: overhead_gate(churn_good, empty, 0.03, "selftest"))

        # service gate
        svc_good = write("svc_good.json", _fixture([_service_rec(100, 100)]))
        svc_bad = write("svc_bad.json", _fixture([_service_rec(90, 100)]))
        expect("service good", "pass", lambda: service_gate(svc_good))
        expect("service bad", "fail", lambda: service_gate(svc_bad))
        expect("service empty", "exit2", lambda: service_gate(empty))

        # apps gate
        apps_good = write("apps_good.json",
                          _fixture([_app_rec(1, 0.53), _app_rec(0, 1.0)]))
        apps_bad = write("apps_bad.json",
                         _fixture([_app_rec(1, 1.2), _app_rec(0, 1.0)]))
        apps_nobatch = write("apps_nobatch.json",
                             _fixture([_app_rec(0, 1.0)]))
        expect("apps good", "pass", lambda: apps_gate(apps_good))
        expect("apps bad", "fail", lambda: apps_gate(apps_bad))
        expect("apps no-batch", "exit2", lambda: apps_gate(apps_nobatch))
        expect("apps empty", "exit2", lambda: apps_gate(empty))

        # contention gate
        cont_good = write("cont_good.json", _fixture([
            _contention_rec("pool", 2, 0),
            _contention_rec("pool:elim", 2, 1, elim=8),
            _contention_rec("simple:fc", 2, 1, combined=40),
            _contention_rec("simple:fc", 1, 1),  # 1 proc: no firing needed
        ]))
        cont_undiffused = write("cont_undiffused.json", _fixture([
            _contention_rec("pool:elim", 2, 1, elim=0, combined=0)]))
        cont_leak = write("cont_leak.json", _fixture([
            _contention_rec("pool", 2, 0, accounted=99)]))
        cont_rate = write("cont_rate.json", _fixture([
            _contention_rec("pool", 2, 0, rate=0.0)]))
        expect("contention good", "pass", lambda: contention_gate(cont_good))
        expect("contention undiffused", "fail",
               lambda: contention_gate(cont_undiffused))
        expect("contention leak", "fail", lambda: contention_gate(cont_leak))
        expect("contention rate", "fail", lambda: contention_gate(cont_rate))
        expect("contention empty", "exit2", lambda: contention_gate(empty))
        truncated = os.path.join(tmp, "truncated.json")
        with open(truncated, "w") as f:
            f.write("{\"schema\": 2, \"records\": [")
        expect("contention malformed", "exit2",
               lambda: contention_gate(truncated))

    if failures:
        print(f"perf_smoke_gate: SELFTEST FAILED: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    print("perf_smoke_gate: selftest PASS")
    return 0


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("json_path", nargs="?", default=None)
    ap.add_argument("--min-ratio", type=float, default=0.9,
                    help="minimum pool/malloc ops-per-second ratio "
                         "(default 0.9: a little head-room for runner noise; "
                         "steady state has measured ~1.2x on 1 core)")
    ap.add_argument("--trace-compare", metavar="NOTRACE_JSON", default=None,
                    help="future_churn document from a -DSPDAG_TRACE=OFF "
                         "build; enforces the trace:off zero-cost claim")
    ap.add_argument("--max-trace-overhead", type=float, default=0.03,
                    help="max geomean throughput loss of trace:off vs the "
                         "compiled-out build (default 0.03)")
    ap.add_argument("--epoch-compare", metavar="NOEPOCH_JSON", default=None,
                    help="future_churn document from a -DSPDAG_EPOCH=OFF "
                         "build; bounds the pin/refresh/tick overhead of "
                         "the epoch reclamation layer")
    ap.add_argument("--max-epoch-overhead", type=float, default=0.03,
                    help="max geomean throughput loss of the epoch-enabled "
                         "build vs the compiled-out one (default 0.03)")
    ap.add_argument("--service", metavar="SERVICE_JSON", default=None,
                    help="service_traffic document; sanity-gates the "
                         "dag_service records (conservation + finite p99)")
    ap.add_argument("--apps", metavar="APPS_JSON", default=None,
                    help="merged application-tier document; gates vertex "
                         "conservation and counter_ops_per_edge < 1.0 on "
                         "batch configs")
    ap.add_argument("--contention", metavar="CONTENTION_JSON", default=None,
                    help="contention_ablation document; gates exactly-once "
                         "conservation and diffused specs actually firing "
                         "(eliminations + combined_ops > 0 at procs >= 2)")
    ap.add_argument("--selftest", action="store_true",
                    help="run every gate over embedded good/bad fixtures "
                         "and exit (no input document needed)")
    args = ap.parse_args()

    if args.selftest:
        sys.exit(selftest())
    if args.json_path is None:
        ap.error("json_path is required unless --selftest is given")

    doc = load(args.json_path)
    print(f"perf_smoke_gate: {doc['bench']} @ {doc['git_sha'][:12]}, "
          f"{len(doc['records'])} records")

    failed = not churn_gate(doc, args.min_ratio)
    if args.contention is not None:
        if not contention_gate(args.contention):
            print("perf_smoke_gate: FAIL - contention-ablation records "
                  "violated conservation or a diffused spec never fired",
                  file=sys.stderr)
            sys.exit(1)
    if args.apps is not None:
        if not apps_gate(args.apps):
            print("perf_smoke_gate: FAIL - application-tier records violated "
                  "conservation or the batch amortization claim",
                  file=sys.stderr)
            sys.exit(1)
    if args.service is not None:
        if not service_gate(args.service):
            print("perf_smoke_gate: FAIL - dag_service traffic records "
                  "violated conservation or reported degenerate latency",
                  file=sys.stderr)
            sys.exit(1)
    if args.trace_compare is not None:
        if not overhead_gate(doc, args.trace_compare,
                             args.max_trace_overhead, "trace:off"):
            print(f"perf_smoke_gate: FAIL - trace:off lost more than "
                  f"{args.max_trace_overhead:.0%} vs the compiled-out build",
                  file=sys.stderr)
            sys.exit(1)
    if args.epoch_compare is not None:
        if not overhead_gate(doc, args.epoch_compare,
                             args.max_epoch_overhead, "epoch-on"):
            print(f"perf_smoke_gate: FAIL - the epoch layer cost more than "
                  f"{args.max_epoch_overhead:.0%} vs the compiled-out build",
                  file=sys.stderr)
            sys.exit(1)
    if failed:
        print(f"perf_smoke_gate: FAIL - pool fell below "
              f"{args.min_ratio:.2f}x malloc on the same run",
              file=sys.stderr)
        sys.exit(1)
    print("perf_smoke_gate: PASS")


if __name__ == "__main__":
    main()
